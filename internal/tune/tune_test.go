package tune

import (
	"strings"
	"testing"

	"dimboost/internal/core"
	"dimboost/internal/dataset"
)

func TestGridCartesianProduct(t *testing.T) {
	base := core.DefaultConfig()
	grid := Grid(base, LearningRate(0.1, 0.3), MaxDepth(3, 4, 5))
	if len(grid) != 6 {
		t.Fatalf("%d candidates, want 6", len(grid))
	}
	seen := map[string]bool{}
	for _, c := range grid {
		if seen[c.Name] {
			t.Fatalf("duplicate candidate %s", c.Name)
		}
		seen[c.Name] = true
		if !strings.Contains(c.Name, "lr=") || !strings.Contains(c.Name, "depth=") {
			t.Fatalf("name %q missing axes", c.Name)
		}
	}
	// values actually applied
	found := false
	for _, c := range grid {
		if c.Name == "lr=0.3,depth=5" {
			found = true
			if c.Config.LearningRate != 0.3 || c.Config.MaxDepth != 5 {
				t.Fatalf("config not applied: %+v", c.Config)
			}
		}
	}
	if !found {
		t.Fatal("expected candidate missing")
	}
	// base config untouched
	if base.LearningRate != core.DefaultConfig().LearningRate {
		t.Fatal("base mutated")
	}
}

func TestGridNoAxes(t *testing.T) {
	grid := Grid(core.DefaultConfig())
	if len(grid) != 1 || grid[0].Name != "base" {
		t.Fatalf("%+v", grid)
	}
}

func TestSearchRanksByScore(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 400, NumFeatures: 80, AvgNNZ: 8, Seed: 3, Zipf: 1.2, NoiseStd: 0.2})
	base := core.DefaultConfig()
	base.NumTrees = 4
	base.MaxDepth = 3
	base.Parallelism = 1
	// an absurd candidate (1 tree, depth 2, tiny lr) should rank below a
	// sensible one
	weak := base
	weak.NumTrees = 1
	weak.MaxDepth = 2
	weak.LearningRate = 0.01
	strong := base
	strong.NumTrees = 8
	strong.MaxDepth = 5
	strong.LearningRate = 0.3

	out, err := Search(d, []Candidate{{Name: "weak", Config: weak}, {Name: "strong", Config: strong}}, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("%d outcomes", len(out))
	}
	if out[0].CV.Mean > out[1].CV.Mean {
		t.Fatal("not sorted by mean score")
	}
	if out[0].Name != "strong" {
		t.Fatalf("winner %s (%.4f) vs %s (%.4f)", out[0].Name, out[0].CV.Mean, out[1].Name, out[1].CV.Mean)
	}
}

func TestSearchErrors(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 50, NumFeatures: 10, AvgNNZ: 3, Seed: 5})
	if _, err := Search(d, nil, 3, 1); err == nil {
		t.Fatal("no candidates should fail")
	}
	bad := core.DefaultConfig()
	bad.NumTrees = 0
	if _, err := Search(d, []Candidate{{Name: "bad", Config: bad}}, 3, 1); err == nil {
		t.Fatal("invalid config should fail with candidate name in error")
	}
}

func TestAxisHelpers(t *testing.T) {
	cfg := core.DefaultConfig()
	Lambda(2.5).Set(&cfg, 2.5)
	NumCandidates(30).Set(&cfg, 30)
	FeatureSample(0.5).Set(&cfg, 0.5)
	if cfg.Lambda != 2.5 || cfg.NumCandidates != 30 || cfg.FeatureSampleRatio != 0.5 {
		t.Fatalf("axis setters broken: %+v", cfg)
	}
}
