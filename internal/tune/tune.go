// Package tune provides grid search over GBDT hyper-parameters, scored by
// k-fold cross-validation — how the paper's hyper-parameters (η, d, K, λ)
// would be chosen in practice.
package tune

import (
	"fmt"
	"sort"
	"strings"

	"dimboost/internal/core"
	"dimboost/internal/cv"
	"dimboost/internal/dataset"
)

// Axis is one hyper-parameter dimension of a grid.
type Axis struct {
	// Name labels the axis in candidate names, e.g. "lr".
	Name string
	// Values are the settings to try.
	Values []float64
	// Set writes one value into a config.
	Set func(*core.Config, float64)
}

// Candidate is one point of the grid.
type Candidate struct {
	Name   string
	Config core.Config
}

// Grid expands the cartesian product of the axes over a base config.
func Grid(base core.Config, axes ...Axis) []Candidate {
	out := []Candidate{{Name: "base", Config: base}}
	if len(axes) == 0 {
		return out
	}
	out = out[:0]
	var expand func(prefix []string, cfg core.Config, rest []Axis)
	expand = func(prefix []string, cfg core.Config, rest []Axis) {
		if len(rest) == 0 {
			out = append(out, Candidate{Name: strings.Join(prefix, ","), Config: cfg})
			return
		}
		ax := rest[0]
		for _, v := range ax.Values {
			c := cfg
			ax.Set(&c, v)
			expand(append(prefix, fmt.Sprintf("%s=%g", ax.Name, v)), c, rest[1:])
		}
	}
	expand(nil, base, axes)
	return out
}

// Outcome is one candidate's cross-validated result.
type Outcome struct {
	Candidate
	CV *cv.Result
}

// Search cross-validates every candidate and returns them sorted best
// (lowest mean score) first. Ties break toward the lower standard deviation
// and then the earlier candidate.
func Search(d *dataset.Dataset, candidates []Candidate, k int, seed int64) ([]Outcome, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("tune: no candidates")
	}
	out := make([]Outcome, 0, len(candidates))
	for i, c := range candidates {
		res, err := cv.Run(d, c.Config, k, seed)
		if err != nil {
			return nil, fmt.Errorf("tune: candidate %d (%s): %w", i, c.Name, err)
		}
		out = append(out, Outcome{Candidate: c, CV: res})
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].CV.Mean != out[b].CV.Mean {
			return out[a].CV.Mean < out[b].CV.Mean
		}
		return out[a].CV.Std < out[b].CV.Std
	})
	return out, nil
}

// Common axes.

// LearningRate varies η.
func LearningRate(values ...float64) Axis {
	return Axis{Name: "lr", Values: values, Set: func(c *core.Config, v float64) { c.LearningRate = v }}
}

// MaxDepth varies d.
func MaxDepth(values ...float64) Axis {
	return Axis{Name: "depth", Values: values, Set: func(c *core.Config, v float64) { c.MaxDepth = int(v) }}
}

// Lambda varies the L2 regularizer.
func Lambda(values ...float64) Axis {
	return Axis{Name: "lambda", Values: values, Set: func(c *core.Config, v float64) { c.Lambda = v }}
}

// NumCandidates varies K.
func NumCandidates(values ...float64) Axis {
	return Axis{Name: "k", Values: values, Set: func(c *core.Config, v float64) { c.NumCandidates = int(v) }}
}

// FeatureSample varies σ.
func FeatureSample(values ...float64) Axis {
	return Axis{Name: "sigma", Values: values, Set: func(c *core.Config, v float64) { c.FeatureSampleRatio = v }}
}
