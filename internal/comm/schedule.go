package comm

// A Transfer is one point-to-point message of a communication schedule.
type Transfer struct {
	From, To int
	Bytes    int64
}

// A Round is a set of transfers that proceed in parallel; rounds execute
// sequentially ("communication steps" in Table 1).
type Round []Transfer

// Schedule is the abstract communication pattern of one aggregation
// operation. internal/simnet evaluates schedules under the α/β/γ cost
// model; the totals also cross-validate the live Mesh implementations.
type Schedule []Round

// TotalBytes sums the bytes of every transfer.
func (s Schedule) TotalBytes() int64 {
	var n int64
	for _, r := range s {
		for _, t := range r {
			n += t.Bytes
		}
	}
	return n
}

// NumRounds returns the number of sequential communication steps.
func (s Schedule) NumRounds() int { return len(s) }

// ScheduleFlatReduce is MLlib's all-to-one reduce: one step in which every
// non-root worker sends its full h bytes to the coordinator.
func ScheduleFlatReduce(w int, h int64) Schedule {
	var r Round
	for i := 1; i < w; i++ {
		r = append(r, Transfer{From: i, To: 0, Bytes: h})
	}
	return Schedule{r}
}

// ScheduleBinomialReduce is XGBoost's binomial-tree reduce: ⌈log₂ w⌉ steps,
// each moving full h-byte messages one level up the tree.
func ScheduleBinomialReduce(w int, h int64) Schedule {
	var s Schedule
	for mask := 1; mask < w; mask <<= 1 {
		var r Round
		for rank := mask; rank < w; rank += 2 * mask {
			// ranks whose lowest set bit is mask send to rank &^ mask
			r = append(r, Transfer{From: rank, To: rank &^ mask, Bytes: h})
		}
		if len(r) > 0 {
			s = append(s, r)
		}
	}
	return s
}

// ScheduleBinomialBroadcast mirrors the reduce top-down with message size b
// (the small model/split payload in XGBoost's case).
func ScheduleBinomialBroadcast(w int, b int64) Schedule {
	masks := []int{}
	for mask := topMask(w) >> 1; mask >= 1; mask >>= 1 {
		masks = append(masks, mask)
	}
	var s Schedule
	for _, mask := range masks {
		var r Round
		for rank := 0; rank+mask < w; rank += 2 * mask {
			r = append(r, Transfer{From: rank, To: rank + mask, Bytes: b})
		}
		if len(r) > 0 {
			s = append(s, r)
		}
	}
	return s
}

// ScheduleReduceScatterHalving is LightGBM's recursive halving: a
// preliminary fold-in when w is not a power of two, then log₂(p2) exchange
// steps whose payloads halve each time.
func ScheduleReduceScatterHalving(w int, h int64) Schedule {
	p2 := topMask(w)
	if p2 > w {
		p2 >>= 1
	}
	r := w - p2
	toReal := func(nr int) int {
		if nr < r {
			return 2 * nr
		}
		return nr + r
	}
	var s Schedule
	if r > 0 {
		var pre Round
		for odd := 1; odd < 2*r; odd += 2 {
			pre = append(pre, Transfer{From: odd, To: odd - 1, Bytes: h})
		}
		s = append(s, pre)
	}
	// Track the per-participant remaining range sizes exactly as the live
	// implementation splits them (integer halving of [lo,hi)).
	lo := make([]int64, p2)
	hi := make([]int64, p2)
	for i := range hi {
		hi[i] = h
	}
	for dist := p2 / 2; dist >= 1; dist /= 2 {
		var round Round
		for nr := 0; nr < p2; nr++ {
			partner := nr ^ dist
			mid := lo[nr] + (hi[nr]-lo[nr])/2
			if nr&dist == 0 {
				round = append(round, Transfer{From: toReal(nr), To: toReal(partner), Bytes: hi[nr] - mid})
			} else {
				round = append(round, Transfer{From: toReal(nr), To: toReal(partner), Bytes: mid - lo[nr]})
			}
		}
		for nr := 0; nr < p2; nr++ {
			mid := lo[nr] + (hi[nr]-lo[nr])/2
			if nr&dist == 0 {
				hi[nr] = mid
			} else {
				lo[nr] = mid
			}
		}
		s = append(s, round)
	}
	return s
}

// SchedulePS is DimBoost's parameter-server scatter-gather: a single step in
// which every rank pushes (w−1) packages of h/w bytes, one to each
// co-located server shard.
func SchedulePS(w int, h int64) Schedule {
	var r Round
	for i := 0; i < w; i++ {
		for j := 0; j < w; j++ {
			if i == j {
				continue
			}
			lo, hiB := BlockRange(int(h), w, j)
			r = append(r, Transfer{From: i, To: j, Bytes: int64(hiB - lo)})
		}
	}
	return Schedule{r}
}
