// Package comm implements the collective communication operators the paper
// analyzes in §3: all-to-one Reduce (MLlib), binomial-tree AllReduce
// (XGBoost), recursive-halving ReduceScatter (LightGBM), and the parameter-
// server scatter-gather DimBoost uses. Each operator both moves real data
// across an in-process mesh (so baseline trainers aggregate correctly) and
// has a schedule generator consumed by internal/simnet to evaluate the
// paper's α/β/γ cost model (Table 1).
package comm

import (
	"fmt"
	"sync/atomic"
)

// Mesh is a w-rank all-to-all point-to-point fabric built on buffered
// channels. One goroutine per rank drives a collective by calling the
// operator with its own rank. Payloads are accounted at float32 wire size
// (4 bytes per element), the paper's histogram format.
type Mesh struct {
	w     int
	ch    [][]chan []float64
	bytes atomic.Int64
	msgs  atomic.Int64
	// per-rank counters for the cost model (α·msgs + β·bytes per node)
	rankBytesOut []atomic.Int64
	rankBytesIn  []atomic.Int64
	rankMsgsOut  []atomic.Int64
}

// NewMesh returns a mesh over w ranks.
func NewMesh(w int) *Mesh {
	if w < 1 {
		panic("comm: mesh needs at least one rank")
	}
	m := &Mesh{
		w:            w,
		ch:           make([][]chan []float64, w),
		rankBytesOut: make([]atomic.Int64, w),
		rankBytesIn:  make([]atomic.Int64, w),
		rankMsgsOut:  make([]atomic.Int64, w),
	}
	for i := range m.ch {
		m.ch[i] = make([]chan []float64, w)
		for j := range m.ch[i] {
			// Buffered generously so that a round's sends never block on
			// the matching receives.
			m.ch[i][j] = make(chan []float64, 1024)
		}
	}
	return m
}

// MaxPerRank returns the per-rank maxima of bytes (max of in/out) and
// messages sent — the quantities the §3 cost model prices with β and α.
func (m *Mesh) MaxPerRank() (maxBytes, maxMsgs int64) {
	for r := 0; r < m.w; r++ {
		b := m.rankBytesOut[r].Load()
		if in := m.rankBytesIn[r].Load(); in > b {
			b = in
		}
		if b > maxBytes {
			maxBytes = b
		}
		if mm := m.rankMsgsOut[r].Load(); mm > maxMsgs {
			maxMsgs = mm
		}
	}
	return
}

// Size returns the number of ranks.
func (m *Mesh) Size() int { return m.w }

// BytesMoved returns the float32-accounted bytes transferred so far.
func (m *Mesh) BytesMoved() int64 { return m.bytes.Load() }

// MsgsMoved returns the number of point-to-point messages so far.
func (m *Mesh) MsgsMoved() int64 { return m.msgs.Load() }

// ResetStats zeroes the traffic counters.
func (m *Mesh) ResetStats() {
	m.bytes.Store(0)
	m.msgs.Store(0)
	for r := 0; r < m.w; r++ {
		m.rankBytesOut[r].Store(0)
		m.rankBytesIn[r].Store(0)
		m.rankMsgsOut[r].Store(0)
	}
}

// send transmits a copy of data from one rank to another.
func (m *Mesh) send(from, to int, data []float64) {
	cp := make([]float64, len(data))
	copy(cp, data)
	n := int64(len(data)) * 4
	m.bytes.Add(n)
	m.msgs.Add(1)
	m.rankBytesOut[from].Add(n)
	m.rankBytesIn[to].Add(n)
	m.rankMsgsOut[from].Add(1)
	m.ch[from][to] <- cp
}

// recv blocks until a message from `from` arrives at `to`.
func (m *Mesh) recv(to, from int) []float64 {
	return <-m.ch[from][to]
}

// Send transmits a copy of data between ranks; exported for protocols built
// on top of the collectives (split-decision exchanges in
// internal/baselines).
func (m *Mesh) Send(from, to int, data []float64) { m.send(from, to, data) }

// Recv blocks until a message from `from` arrives at `to`.
func (m *Mesh) Recv(to, from int) []float64 { return m.recv(to, from) }

func addInto(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("comm: merging %d into %d elements", len(src), len(dst)))
	}
	for i, v := range src {
		dst[i] += v
	}
}

// BlockRange returns the [lo, hi) element range of block i when an n-element
// vector is cut into w near-equal blocks (the per-server shards of
// ReduceScatter and the parameter server).
func BlockRange(n, w, i int) (lo, hi int) {
	base, rem := n/w, n%w
	lo = base*i + minInt(i, rem)
	sz := base
	if i < rem {
		sz++
	}
	return lo, lo + sz
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func lowbit(x int) int { return x & (-x) }

// topMask returns the smallest power of two >= w.
func topMask(w int) int {
	m := 1
	for m < w {
		m <<= 1
	}
	return m
}
