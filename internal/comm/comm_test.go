package comm

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// runCollective drives a w-rank collective concurrently and returns each
// rank's result.
func runCollective(w int, f func(rank int) []float64) [][]float64 {
	out := make([][]float64, w)
	var wg sync.WaitGroup
	for r := 0; r < w; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			out[r] = f(r)
		}(r)
	}
	wg.Wait()
	return out
}

// randVectors builds w local vectors and their exact element-wise sum.
func randVectors(w, n int, seed int64) (vecs [][]float64, sum []float64) {
	rng := rand.New(rand.NewSource(seed))
	vecs = make([][]float64, w)
	sum = make([]float64, n)
	for r := range vecs {
		vecs[r] = make([]float64, n)
		for i := range vecs[r] {
			vecs[r][i] = rng.NormFloat64()
			sum[i] += vecs[r][i]
		}
	}
	return
}

func approxEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

var workerCounts = []int{1, 2, 3, 4, 5, 7, 8, 13, 16}

func TestReduceToRoot(t *testing.T) {
	for _, w := range workerCounts {
		vecs, want := randVectors(w, 40, int64(w))
		m := NewMesh(w)
		got := runCollective(w, func(r int) []float64 { return m.ReduceToRoot(r, vecs[r]) })
		if !approxEqual(got[0], want, 1e-9) {
			t.Fatalf("w=%d: root result wrong", w)
		}
		for r := 1; r < w; r++ {
			if got[r] != nil {
				t.Fatalf("w=%d: rank %d should return nil", w, r)
			}
		}
		if wantBytes := int64((w - 1) * 40 * 4); m.BytesMoved() != wantBytes {
			t.Fatalf("w=%d: moved %d bytes, want %d", w, m.BytesMoved(), wantBytes)
		}
	}
}

func TestBinomialReduceToRoot(t *testing.T) {
	for _, w := range workerCounts {
		vecs, want := randVectors(w, 33, int64(w)+100)
		m := NewMesh(w)
		got := runCollective(w, func(r int) []float64 { return m.BinomialReduceToRoot(r, vecs[r]) })
		if !approxEqual(got[0], want, 1e-9) {
			t.Fatalf("w=%d: root result wrong", w)
		}
		for r := 1; r < w; r++ {
			if got[r] != nil {
				t.Fatalf("w=%d: rank %d should return nil", w, r)
			}
		}
	}
}

func TestBroadcastBinomial(t *testing.T) {
	for _, w := range workerCounts {
		src := []float64{1, 2, 3, 4.5}
		m := NewMesh(w)
		got := runCollective(w, func(r int) []float64 {
			if r == 0 {
				return m.BroadcastBinomial(r, src)
			}
			return m.BroadcastBinomial(r, nil)
		})
		for r := 0; r < w; r++ {
			if !approxEqual(got[r], src, 0) {
				t.Fatalf("w=%d: rank %d got %v", w, r, got[r])
			}
		}
	}
}

func TestAllReduceBinomial(t *testing.T) {
	for _, w := range workerCounts {
		vecs, want := randVectors(w, 25, int64(w)+200)
		m := NewMesh(w)
		got := runCollective(w, func(r int) []float64 { return m.AllReduceBinomial(r, vecs[r]) })
		for r := 0; r < w; r++ {
			if !approxEqual(got[r], want, 1e-9) {
				t.Fatalf("w=%d: rank %d result wrong", w, r)
			}
		}
	}
}

func TestReduceScatterHalving(t *testing.T) {
	for _, w := range workerCounts {
		n := 64
		vecs, want := randVectors(w, n, int64(w)+300)
		m := NewMesh(w)
		results := make([]ReduceScatterResult, w)
		runCollective(w, func(r int) []float64 {
			results[r] = m.ReduceScatterHalving(r, vecs[r])
			return nil
		})
		// blocks must tile [0, n) exactly and hold the merged values
		covered := make([]bool, n)
		for r, res := range results {
			for i, v := range res.Block {
				pos := res.Start + i
				if covered[pos] {
					t.Fatalf("w=%d: position %d covered twice", w, pos)
				}
				covered[pos] = true
				if math.Abs(v-want[pos]) > 1e-9 {
					t.Fatalf("w=%d rank %d: block[%d] = %v, want %v", w, r, i, v, want[pos])
				}
			}
		}
		for pos, ok := range covered {
			if !ok {
				t.Fatalf("w=%d: position %d uncovered", w, pos)
			}
		}
	}
}

func TestPSScatterGather(t *testing.T) {
	for _, w := range workerCounts {
		n := 50
		vecs, want := randVectors(w, n, int64(w)+400)
		m := NewMesh(w)
		results := make([]ReduceScatterResult, w)
		runCollective(w, func(r int) []float64 {
			results[r] = m.PSScatterGather(r, vecs[r])
			return nil
		})
		for r, res := range results {
			lo, hi := BlockRange(n, w, r)
			if res.Start != lo || len(res.Block) != hi-lo {
				t.Fatalf("w=%d rank %d: block [%d,%d), want [%d,%d)", w, r, res.Start, res.Start+len(res.Block), lo, hi)
			}
			for i, v := range res.Block {
				if math.Abs(v-want[lo+i]) > 1e-9 {
					t.Fatalf("w=%d rank %d: wrong merge at %d", w, r, lo+i)
				}
			}
		}
	}
}

func TestAllGatherBlocks(t *testing.T) {
	for _, w := range workerCounts {
		n := 48
		vecs, want := randVectors(w, n, int64(w)+500)
		m := NewMesh(w)
		full := runCollective(w, func(r int) []float64 {
			res := m.PSScatterGather(r, vecs[r])
			return m.AllGatherBlocks(r, n, res)
		})
		for r := 0; r < w; r++ {
			if !approxEqual(full[r], want, 1e-9) {
				t.Fatalf("w=%d: rank %d allgather wrong", w, r)
			}
		}
	}
}

func TestReduceScatterAfterAllGatherNonPow2(t *testing.T) {
	// idle ranks (non-power-of-two fold-in) still recover the full vector
	w, n := 6, 64
	vecs, want := randVectors(w, n, 77)
	m := NewMesh(w)
	full := runCollective(w, func(r int) []float64 {
		res := m.ReduceScatterHalving(r, vecs[r])
		return m.AllGatherBlocks(r, n, res)
	})
	for r := 0; r < w; r++ {
		if !approxEqual(full[r], want, 1e-9) {
			t.Fatalf("rank %d wrong", r)
		}
	}
}

func TestAllStrategiesAgree(t *testing.T) {
	for _, w := range []int{3, 4, 8, 11} {
		n := 32 * w // divisible so every block is non-trivial
		vecs, want := randVectors(w, n, int64(w)+600)
		for name, run := range map[string]func() []float64{
			"flat": func() []float64 {
				m := NewMesh(w)
				return runCollective(w, func(r int) []float64 { return m.ReduceToRoot(r, vecs[r]) })[0]
			},
			"binomial": func() []float64 {
				m := NewMesh(w)
				return runCollective(w, func(r int) []float64 { return m.BinomialReduceToRoot(r, vecs[r]) })[0]
			},
			"reducescatter": func() []float64 {
				m := NewMesh(w)
				out := make([]float64, n)
				var mu sync.Mutex
				runCollective(w, func(r int) []float64 {
					res := m.ReduceScatterHalving(r, vecs[r])
					mu.Lock()
					copy(out[res.Start:res.Start+len(res.Block)], res.Block)
					mu.Unlock()
					return nil
				})
				return out
			},
			"ps": func() []float64 {
				m := NewMesh(w)
				out := make([]float64, n)
				var mu sync.Mutex
				runCollective(w, func(r int) []float64 {
					res := m.PSScatterGather(r, vecs[r])
					mu.Lock()
					copy(out[res.Start:res.Start+len(res.Block)], res.Block)
					mu.Unlock()
					return nil
				})
				return out
			},
		} {
			if got := run(); !approxEqual(got, want, 1e-9) {
				t.Fatalf("w=%d: strategy %s disagrees with exact sum", w, name)
			}
		}
	}
}

func TestMeshBytesMatchSchedules(t *testing.T) {
	// the live implementations and the abstract schedules must agree on
	// total bytes moved — this ties the cost model to the real code
	for _, w := range []int{2, 4, 5, 8, 12, 16} {
		n := 16 * w * 2 // even splits all the way down for halving
		h := int64(n * 4)
		vecs, _ := randVectors(w, n, int64(w)+700)

		m := NewMesh(w)
		runCollective(w, func(r int) []float64 { return m.ReduceToRoot(r, vecs[r]) })
		if got, want := m.BytesMoved(), ScheduleFlatReduce(w, h).TotalBytes(); got != want {
			t.Errorf("w=%d flat: mesh %d vs schedule %d", w, got, want)
		}

		m = NewMesh(w)
		runCollective(w, func(r int) []float64 { return m.BinomialReduceToRoot(r, vecs[r]) })
		if got, want := m.BytesMoved(), ScheduleBinomialReduce(w, h).TotalBytes(); got != want {
			t.Errorf("w=%d binomial: mesh %d vs schedule %d", w, got, want)
		}

		m = NewMesh(w)
		runCollective(w, func(r int) []float64 { m.ReduceScatterHalving(r, vecs[r]); return nil })
		if got, want := m.BytesMoved(), ScheduleReduceScatterHalving(w, h).TotalBytes(); got != want {
			t.Errorf("w=%d halving: mesh %d vs schedule %d", w, got, want)
		}

		m = NewMesh(w)
		runCollective(w, func(r int) []float64 { m.PSScatterGather(r, vecs[r]); return nil })
		if got, want := m.BytesMoved(), SchedulePS(w, h).TotalBytes(); got != want {
			t.Errorf("w=%d ps: mesh %d vs schedule %d", w, got, want)
		}
	}
}

func TestScheduleRoundCounts(t *testing.T) {
	// Table 1 "# comm steps": MLlib 1, XGBoost log w, LightGBM log w
	// (+1 fold-in off powers of two), DimBoost 1.
	cases := []struct {
		w                        int
		flat, binom, halving, ps int
	}{
		{2, 1, 1, 1, 1},
		{4, 1, 2, 2, 1},
		{8, 1, 3, 3, 1},
		{16, 1, 4, 4, 1},
		{5, 1, 3, 3, 1}, // halving: fold-in + log2(4)
		{12, 1, 4, 4, 1},
	}
	for _, c := range cases {
		if got := ScheduleFlatReduce(c.w, 1000).NumRounds(); got != c.flat {
			t.Errorf("w=%d flat rounds %d, want %d", c.w, got, c.flat)
		}
		if got := ScheduleBinomialReduce(c.w, 1000).NumRounds(); got != c.binom {
			t.Errorf("w=%d binomial rounds %d, want %d", c.w, got, c.binom)
		}
		if got := ScheduleReduceScatterHalving(c.w, 1024).NumRounds(); got != c.halving {
			t.Errorf("w=%d halving rounds %d, want %d", c.w, got, c.halving)
		}
		if got := SchedulePS(c.w, 1000).NumRounds(); got != c.ps {
			t.Errorf("w=%d ps rounds %d, want %d", c.w, got, c.ps)
		}
	}
}

func TestBlockRange(t *testing.T) {
	prev := 0
	for i := 0; i < 7; i++ {
		lo, hi := BlockRange(100, 7, i)
		if lo != prev {
			t.Fatalf("gap at block %d", i)
		}
		if hi-lo < 100/7 || hi-lo > 100/7+1 {
			t.Fatalf("unbalanced block %d: %d", i, hi-lo)
		}
		prev = hi
	}
	if prev != 100 {
		t.Fatalf("blocks cover %d, want 100", prev)
	}
}

func TestMeshSingleRank(t *testing.T) {
	m := NewMesh(1)
	v := []float64{1, 2, 3}
	if got := m.ReduceToRoot(0, v); !approxEqual(got, v, 0) {
		t.Fatal("w=1 flat reduce")
	}
	if got := m.BinomialReduceToRoot(0, v); !approxEqual(got, v, 0) {
		t.Fatal("w=1 binomial")
	}
	res := m.ReduceScatterHalving(0, v)
	if res.Start != 0 || !approxEqual(res.Block, v, 0) {
		t.Fatal("w=1 halving")
	}
	res = m.PSScatterGather(0, v)
	if !approxEqual(res.Block, v, 0) {
		t.Fatal("w=1 ps")
	}
	if m.BytesMoved() != 0 {
		t.Fatal("w=1 should move no bytes")
	}
}

func TestNewMeshPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMesh(0)
}

func TestQuickAllStrategiesAgree(t *testing.T) {
	f := func(seed int64, wRaw, nRaw uint8) bool {
		w := int(wRaw)%10 + 1
		n := (int(nRaw)%8 + 1) * w * 4 // block-friendly sizes
		vecs, want := randVectors(w, n, seed)

		m := NewMesh(w)
		flat := runCollective(w, func(r int) []float64 { return m.ReduceToRoot(r, vecs[r]) })[0]
		if !approxEqual(flat, want, 1e-9) {
			return false
		}
		m = NewMesh(w)
		binom := runCollective(w, func(r int) []float64 { return m.BinomialReduceToRoot(r, vecs[r]) })[0]
		if !approxEqual(binom, want, 1e-9) {
			return false
		}
		m = NewMesh(w)
		out := make([]float64, n)
		var mu sync.Mutex
		runCollective(w, func(r int) []float64 {
			res := m.ReduceScatterHalving(r, vecs[r])
			mu.Lock()
			copy(out[res.Start:res.Start+len(res.Block)], res.Block)
			mu.Unlock()
			return nil
		})
		if !approxEqual(out, want, 1e-9) {
			return false
		}
		m = NewMesh(w)
		out2 := make([]float64, n)
		runCollective(w, func(r int) []float64 {
			res := m.PSScatterGather(r, vecs[r])
			mu.Lock()
			copy(out2[res.Start:res.Start+len(res.Block)], res.Block)
			mu.Unlock()
			return nil
		})
		return approxEqual(out2, want, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
