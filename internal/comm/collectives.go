package comm

// This file implements the four aggregation strategies. Every operator is
// called concurrently by w goroutines, each passing its own rank and its
// local vector (which the operator may modify in place as a scratch merge
// buffer).

// ReduceToRoot is MLlib's MapReduce-style aggregation (§2.3): every non-root
// rank sends its whole vector to rank 0, which merges them. The merged
// vector is returned at rank 0; other ranks return nil.
func (m *Mesh) ReduceToRoot(rank int, data []float64) []float64 {
	if rank != 0 {
		m.send(rank, 0, data)
		return nil
	}
	out := make([]float64, len(data))
	copy(out, data)
	for src := 1; src < m.w; src++ {
		addInto(out, m.recv(0, src))
	}
	return out
}

// BinomialReduceToRoot is XGBoost's aggregation (§2.3): workers form a
// binomial tree; statistics flow bottom-up in log₂(w) non-overlapping steps,
// each moving the full h bytes. Rank 0 returns the merged vector; other
// ranks return nil. (XGBoost then broadcasts only the small split decision —
// use BroadcastBinomial for that.)
func (m *Mesh) BinomialReduceToRoot(rank int, data []float64) []float64 {
	buf := make([]float64, len(data))
	copy(buf, data)
	// A rank absorbs children (rank | mask) for masks below its own lowest
	// set bit, then sends to its parent (rank &^ lowbit) and is done.
	for mask := 1; mask < m.w; mask <<= 1 {
		if rank&mask != 0 {
			m.send(rank, rank&^mask, buf)
			return nil
		}
		if src := rank | mask; src < m.w && src != rank {
			addInto(buf, m.recv(rank, src))
		}
	}
	return buf
}

// BroadcastBinomial distributes rank 0's vector to every rank along the
// binomial tree (the "up-bottom" model distribution of §2.3). Non-root
// ranks pass data == nil and receive the broadcast value.
func (m *Mesh) BroadcastBinomial(rank int, data []float64) []float64 {
	start := topMask(m.w)
	if rank != 0 {
		data = m.recv(rank, rank&^lowbit(rank))
		start = lowbit(rank)
	}
	for mask := start >> 1; mask >= 1; mask >>= 1 {
		if child := rank | mask; child < m.w && child != rank {
			m.send(rank, child, data)
		}
	}
	return data
}

// AllReduceBinomial composes the binomial reduce and broadcast so every rank
// returns the merged vector; kept for completeness and tests.
func (m *Mesh) AllReduceBinomial(rank int, data []float64) []float64 {
	merged := m.BinomialReduceToRoot(rank, data)
	return m.BroadcastBinomial(rank, merged)
}

// ReduceScatterResult is a rank's owned block of the merged vector.
type ReduceScatterResult struct {
	// Block is the merged elements this rank owns (nil when the rank is
	// idle after a non-power-of-two fold-in).
	Block []float64
	// Start is the offset of Block in the full vector.
	Start int
}

// ReduceScatterHalving is LightGBM's recursive-halving ReduceScatter (§2.3,
// §3): each step exchanges half the remaining range with a partner half the
// previous distance away. Non-power-of-two worker counts run a preliminary
// fold-in step — the reason the paper notes LightGBM's cost doubles off
// powers of two. Each participating rank ends owning a contiguous block of
// the fully merged vector.
func (m *Mesh) ReduceScatterHalving(rank int, data []float64) ReduceScatterResult {
	w := m.w
	buf := make([]float64, len(data))
	copy(buf, data)

	// Fold the extra ranks into their even neighbours so p2 = 2^k ranks
	// remain. Ranks [0, 2r): odd ranks send everything to rank-1 and go
	// idle; even ranks absorb. Ranks [2r, w) participate directly.
	p2 := topMask(w)
	if p2 > w {
		p2 >>= 1
	}
	r := w - p2
	newRank := -1 // participant index in [0, p2)
	switch {
	case rank < 2*r && rank%2 == 1:
		m.send(rank, rank-1, buf)
		return ReduceScatterResult{}
	case rank < 2*r:
		addInto(buf, m.recv(rank, rank+1))
		newRank = rank / 2
	default:
		newRank = rank - r
	}
	toReal := func(nr int) int {
		if nr < r {
			return 2 * nr
		}
		return nr + r
	}

	lo, hi := 0, len(buf)
	for dist := p2 / 2; dist >= 1; dist /= 2 {
		partner := toReal(newRank ^ dist)
		mid := lo + (hi-lo)/2
		if newRank&dist == 0 {
			// keep lower half, ship upper half
			m.send(rank, partner, buf[mid:hi])
			addInto(buf[lo:mid], m.recv(rank, partner))
			hi = mid
		} else {
			m.send(rank, partner, buf[lo:mid])
			addInto(buf[mid:hi], m.recv(rank, partner))
			lo = mid
		}
	}
	return ReduceScatterResult{Block: buf[lo:hi], Start: lo}
}

// PSScatterGather is DimBoost's parameter-server aggregation (§3): the
// vector is cut into w blocks (servers are co-located with workers); rank i
// pushes block j to rank j for all j ≠ i in one batch — a single
// communication step of (w−1) packages of h/w bytes — and merges the w−1
// blocks it receives into its own. Each rank returns its merged block.
func (m *Mesh) PSScatterGather(rank int, data []float64) ReduceScatterResult {
	w := m.w
	for j := 0; j < w; j++ {
		if j == rank {
			continue
		}
		lo, hi := BlockRange(len(data), w, j)
		m.send(rank, j, data[lo:hi])
	}
	lo, hi := BlockRange(len(data), w, rank)
	block := make([]float64, hi-lo)
	copy(block, data[lo:hi])
	// Merge in rank order for deterministic float association.
	for j := 0; j < w; j++ {
		if j == rank {
			continue
		}
		addInto(block, m.recv(rank, j))
	}
	return ReduceScatterResult{Block: block, Start: lo}
}

// AllGatherBlocks distributes every rank's block to all ranks,
// reassembling the full merged vector everywhere. Baseline trainers use it
// after a ReduceScatter when every worker needs the whole histogram.
func (m *Mesh) AllGatherBlocks(rank, n int, res ReduceScatterResult) []float64 {
	out := make([]float64, n)
	if res.Block != nil {
		copy(out[res.Start:], res.Block)
		for j := 0; j < m.w; j++ {
			if j == rank {
				continue
			}
			header := append([]float64{float64(res.Start), float64(len(res.Block))}, res.Block...)
			m.send(rank, j, header)
		}
	} else {
		for j := 0; j < m.w; j++ {
			if j == rank {
				continue
			}
			m.send(rank, j, []float64{0, 0})
		}
	}
	for j := 0; j < m.w; j++ {
		if j == rank {
			continue
		}
		msg := m.recv(rank, j)
		start, ln := int(msg[0]), int(msg[1])
		copy(out[start:start+ln], msg[2:])
	}
	return out
}
