package sketch

import (
	"errors"
	"math"
	"sort"
)

// WeightedGK is a Greenwald–Khanna-style quantile summary over weighted
// observations: ranks are cumulative weights rather than counts. It backs
// hessian-weighted split candidates (the "weighted quantile sketch" of
// XGBoost, which the paper cites as WOS in §2.2): each instance
// contributes its second-order gradient h_i as weight, so buckets hold
// equal hessian mass instead of equal instance counts.
type WeightedGK struct {
	eps    float64
	weight float64 // total inserted weight
	tuples []wtuple
	buf    []wpair
	bufCap int
}

type wtuple struct {
	v     float64
	g     float64 // absorbed weight
	delta float64 // rank uncertainty (weight units)
}

type wpair struct {
	v, w float64
}

// NewWeightedGK returns an empty weighted summary with relative rank error
// ε (in weight units).
func NewWeightedGK(eps float64) *WeightedGK {
	if eps <= 0 || eps >= 1 {
		panic("sketch: eps must be in (0,1)")
	}
	bc := int(1.0/(2.0*eps)) + 1
	if bc < 16 {
		bc = 16
	}
	return &WeightedGK{eps: eps, bufCap: bc}
}

// Insert adds an observation with the given positive weight. Non-finite
// values and non-positive weights are ignored.
func (s *WeightedGK) Insert(v, w float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) || !(w > 0) || math.IsInf(w, 0) {
		return
	}
	s.buf = append(s.buf, wpair{v, w})
	if len(s.buf) >= s.bufCap {
		s.flush()
	}
}

// Weight returns the total inserted weight.
func (s *WeightedGK) Weight() float64 {
	w := s.weight
	for _, p := range s.buf {
		w += p.w
	}
	return w
}

func (s *WeightedGK) flush() {
	if len(s.buf) == 0 {
		return
	}
	sort.Slice(s.buf, func(a, b int) bool { return s.buf[a].v < s.buf[b].v })
	merged := make([]wtuple, 0, len(s.tuples)+len(s.buf))
	i, j := 0, 0
	var pending float64
	for _, p := range s.buf {
		pending += p.w
	}
	newTotal := s.weight + pending
	for i < len(s.tuples) || j < len(s.buf) {
		if j >= len(s.buf) || (i < len(s.tuples) && s.tuples[i].v <= s.buf[j].v) {
			merged = append(merged, s.tuples[i])
			i++
			continue
		}
		p := s.buf[j]
		j++
		var delta float64
		if len(merged) > 0 && i < len(s.tuples) {
			if d := 2 * s.eps * newTotal; d > p.w {
				delta = d - p.w
			}
		}
		merged = append(merged, wtuple{v: p.v, g: p.w, delta: delta})
	}
	s.weight = newTotal
	s.buf = s.buf[:0]
	s.tuples = merged
	s.compress()
}

func (s *WeightedGK) compress() {
	if len(s.tuples) < 3 {
		return
	}
	limit := 2 * s.eps * s.weight
	out := s.tuples[:0]
	out = append(out, s.tuples[0])
	for i := 1; i < len(s.tuples)-1; i++ {
		t := s.tuples[i]
		next := s.tuples[i+1]
		if t.g+next.g+next.delta <= limit {
			s.tuples[i+1].g += t.g
			continue
		}
		out = append(out, t)
	}
	out = append(out, s.tuples[len(s.tuples)-1])
	s.tuples = out
}

// Query returns a value whose weighted rank is within εW of φ·W.
func (s *WeightedGK) Query(phi float64) (float64, error) {
	s.flush()
	if s.weight == 0 {
		return 0, errors.New("sketch: empty weighted summary")
	}
	if phi <= 0 {
		return s.tuples[0].v, nil
	}
	if phi >= 1 {
		return s.tuples[len(s.tuples)-1].v, nil
	}
	target := phi * s.weight
	best := s.tuples[0].v
	bestDist := math.Inf(1)
	var rmin float64
	for _, t := range s.tuples {
		rmin += t.g
		mid := rmin + t.delta/2
		if d := math.Abs(mid - target); d < bestDist {
			bestDist = d
			best = t.v
		}
	}
	return best, nil
}

// Merge folds other into s.
func (s *WeightedGK) Merge(other *WeightedGK) {
	other.flush()
	s.flush()
	if other.weight == 0 {
		return
	}
	merged := make([]wtuple, 0, len(s.tuples)+len(other.tuples))
	i, j := 0, 0
	for i < len(s.tuples) || j < len(other.tuples) {
		if j >= len(other.tuples) || (i < len(s.tuples) && s.tuples[i].v <= other.tuples[j].v) {
			merged = append(merged, s.tuples[i])
			i++
		} else {
			merged = append(merged, other.tuples[j])
			j++
		}
	}
	s.tuples = merged
	s.weight += other.weight
	s.compress()
}

// ProposeWeighted extracts at most k cut points from the weighted sketch as
// equal-weight quantiles, always including the zero cut.
func ProposeWeighted(s *WeightedGK, k int) Candidates {
	if s == nil || s.Weight() == 0 {
		return newCandidates(nil)
	}
	cuts := make([]float64, 0, k)
	for i := 1; i <= k; i++ {
		q, err := s.Query(float64(i) / float64(k))
		if err != nil {
			break
		}
		cuts = append(cuts, q)
	}
	return newCandidates(cuts)
}
