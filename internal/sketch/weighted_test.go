package sketch

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// weightedRank computes the exact cumulative weight of values <= v.
func weightedRank(vals, weights []float64, v float64) float64 {
	var r float64
	for i, x := range vals {
		if x <= v {
			r += weights[i]
		}
	}
	return r
}

func checkWeightedEps(t *testing.T, s *WeightedGK, vals, weights []float64, eps float64) {
	t.Helper()
	var total float64
	for _, w := range weights {
		total += w
	}
	for _, phi := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		got, err := s.Query(phi)
		if err != nil {
			t.Fatal(err)
		}
		// rank interval of got: [rank(<got), rank(<=got)]
		lo := weightedRank(vals, weights, math.Nextafter(got, math.Inf(-1)))
		hi := weightedRank(vals, weights, got)
		target := phi * total
		dist := 0.0
		if target < lo {
			dist = lo - target
		} else if target > hi {
			dist = target - hi
		}
		if dist > 2.5*eps*total {
			t.Errorf("phi=%v: value %v ranks [%v,%v], target %v ± %v", phi, got, lo, hi, target, 2.5*eps*total)
		}
	}
}

func TestWeightedGKUniformWeights(t *testing.T) {
	// with equal weights it behaves like plain GK
	rng := rand.New(rand.NewSource(1))
	s := NewWeightedGK(0.02)
	n := 10000
	vals := make([]float64, n)
	weights := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64()
		weights[i] = 1
		s.Insert(vals[i], 1)
	}
	checkWeightedEps(t, s, vals, weights, 0.02)
}

func TestWeightedGKSkewedWeights(t *testing.T) {
	// heavy weights shift quantiles toward the heavy values
	rng := rand.New(rand.NewSource(2))
	s := NewWeightedGK(0.02)
	n := 8000
	vals := make([]float64, n)
	weights := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64() * 100
		if vals[i] > 80 {
			weights[i] = 50 // top 20% of values carry most weight
		} else {
			weights[i] = 1
		}
		s.Insert(vals[i], weights[i])
	}
	checkWeightedEps(t, s, vals, weights, 0.02)
	med, err := s.Query(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if med < 75 {
		t.Fatalf("weighted median %v should sit in the heavy region (>80ish)", med)
	}
}

func TestWeightedGKIgnoresBadInput(t *testing.T) {
	s := NewWeightedGK(0.1)
	s.Insert(math.NaN(), 1)
	s.Insert(1, 0)
	s.Insert(1, -2)
	s.Insert(math.Inf(1), 1)
	s.Insert(1, math.Inf(1))
	if s.Weight() != 0 {
		t.Fatalf("weight %v after garbage inserts", s.Weight())
	}
	if _, err := s.Query(0.5); err == nil {
		t.Fatal("empty query should error")
	}
}

func TestWeightedGKMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var vals, weights []float64
	parts := make([]*WeightedGK, 4)
	for p := range parts {
		parts[p] = NewWeightedGK(0.02)
		for i := 0; i < 3000; i++ {
			v := rng.NormFloat64() + float64(p)
			w := rng.Float64()*2 + 0.1
			parts[p].Insert(v, w)
			vals = append(vals, v)
			weights = append(weights, w)
		}
	}
	merged := NewWeightedGK(0.02)
	for _, p := range parts {
		merged.Merge(p)
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	if math.Abs(merged.Weight()-total) > 1e-6*total {
		t.Fatalf("merged weight %v, want %v", merged.Weight(), total)
	}
	checkWeightedEps(t, merged, vals, weights, 2*0.02)
}

func TestWeightedGKSpaceStaysBounded(t *testing.T) {
	s := NewWeightedGK(0.02)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100000; i++ {
		s.Insert(rng.NormFloat64(), rng.Float64()+0.01)
	}
	s.flush()
	if len(s.tuples) > 5000 {
		t.Fatalf("summary has %d tuples", len(s.tuples))
	}
}

func TestProposeWeighted(t *testing.T) {
	s := NewWeightedGK(0.02)
	for i := 1; i <= 1000; i++ {
		s.Insert(float64(i), 1)
	}
	c := ProposeWeighted(s, 10)
	if !sort.Float64sAreSorted(c.Cuts) {
		t.Fatal("cuts not sorted")
	}
	hasZero := false
	for _, v := range c.Cuts {
		if v == 0 {
			hasZero = true
		}
	}
	if !hasZero {
		t.Fatal("zero cut missing")
	}
	if c.NumBuckets() < 8 {
		t.Fatalf("only %d buckets for 1000 distinct values", c.NumBuckets())
	}
	// empty propose
	if ProposeWeighted(nil, 5).NumBuckets() != 1 {
		t.Fatal("nil propose")
	}
	if ProposeWeighted(NewWeightedGK(0.1), 5).NumBuckets() != 1 {
		t.Fatal("empty propose")
	}
}

func TestWeightedExtremes(t *testing.T) {
	s := NewWeightedGK(0.05)
	for i := 1; i <= 100; i++ {
		s.Insert(float64(i), float64(i))
	}
	lo, _ := s.Query(0)
	hi, _ := s.Query(1)
	if lo != 1 || hi != 100 {
		t.Fatalf("extremes %v..%v", lo, hi)
	}
}
