package sketch

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// rankInterval returns the 1-based [min,max] rank interval of v in sorted xs
// (duplicate values occupy a whole interval of ranks).
func rankInterval(xs []float64, v float64) (lo, hi float64) {
	lo = float64(sort.SearchFloat64s(xs, v)) + 1
	hi = float64(sort.SearchFloat64s(xs, math.Nextafter(v, math.Inf(1))))
	if hi < lo {
		hi = lo // v absent: degenerate interval at its insertion point
	}
	return
}

// checkEps verifies that every φ-quantile query lands within εn ranks of the
// exact quantile, measuring distance to the returned value's rank interval.
func checkEps(t *testing.T, s *GK, sorted []float64, eps float64) {
	t.Helper()
	n := float64(len(sorted))
	slack := eps*n + 1 // +1 for integer rounding at small n
	for _, phi := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got, err := s.Query(phi)
		if err != nil {
			t.Fatalf("Query(%v): %v", phi, err)
		}
		lo, hi := rankInterval(sorted, got)
		want := phi * n
		dist := 0.0
		if want < lo {
			dist = lo - want
		} else if want > hi {
			dist = want - hi
		}
		if dist > 2*slack {
			t.Errorf("phi=%v: value %v has ranks [%v,%v], want %v ± %v", phi, got, lo, hi, want, 2*slack)
		}
	}
}

func TestGKUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	const eps = 0.01
	s := NewGK(eps)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 100
		s.Insert(xs[i])
	}
	sort.Float64s(xs)
	checkEps(t, s, xs, eps)
}

func TestGKSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 20000
	const eps = 0.02
	s := NewGK(eps)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64() * 3) // heavy tail
		s.Insert(xs[i])
	}
	sort.Float64s(xs)
	checkEps(t, s, xs, eps)
}

func TestGKDuplicateHeavy(t *testing.T) {
	s := NewGK(0.01)
	xs := make([]float64, 0, 10000)
	for i := 0; i < 10000; i++ {
		v := float64(i % 5)
		s.Insert(v)
		xs = append(xs, v)
	}
	sort.Float64s(xs)
	checkEps(t, s, xs, 0.01)
}

func TestGKExtremes(t *testing.T) {
	s := NewGK(0.05)
	for i := 1; i <= 1000; i++ {
		s.Insert(float64(i))
	}
	lo, _ := s.Query(0)
	hi, _ := s.Query(1)
	if lo != 1 {
		t.Errorf("min = %v, want 1", lo)
	}
	if hi != 1000 {
		t.Errorf("max = %v, want 1000", hi)
	}
}

func TestGKEmptyAndNaN(t *testing.T) {
	s := NewGK(0.1)
	if _, err := s.Query(0.5); err == nil {
		t.Fatal("expected error on empty sketch")
	}
	s.Insert(math.NaN())
	if s.Count() != 0 {
		t.Fatal("NaN should be ignored")
	}
	s.Insert(7)
	v, err := s.Query(0.5)
	if err != nil || v != 7 {
		t.Fatalf("single-element query = %v, %v", v, err)
	}
}

func TestGKBadEps(t *testing.T) {
	for _, eps := range []float64{0, -1, 1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGK(%v) should panic", eps)
				}
			}()
			NewGK(eps)
		}()
	}
}

func TestGKSpaceBound(t *testing.T) {
	s := NewGK(0.01)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200000; i++ {
		s.Insert(rng.NormFloat64())
	}
	s.flush()
	// GK guarantees O((1/eps) log(eps n)); allow a generous constant.
	bound := int(11.0 / 0.01 * math.Log2(0.01*200000))
	if len(s.tuples) > bound {
		t.Fatalf("summary has %d tuples, bound %d", len(s.tuples), bound)
	}
}

func TestGKMergePreservesBound(t *testing.T) {
	const eps = 0.02
	rng := rand.New(rand.NewSource(4))
	parts := make([]*GK, 8)
	var all []float64
	for p := range parts {
		parts[p] = NewGK(eps)
		for i := 0; i < 3000; i++ {
			v := rng.NormFloat64()*float64(p+1) + float64(p) // shards have different distributions
			parts[p].Insert(v)
			all = append(all, v)
		}
	}
	merged := NewGK(eps)
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != uint64(len(all)) {
		t.Fatalf("merged count %d, want %d", merged.Count(), len(all))
	}
	sort.Float64s(all)
	// merging k summaries can roughly double the error; allow 2eps here and
	// checkEps itself allows a 2x cushion.
	checkEps(t, merged, all, 2*eps)
}

func TestGKMergeIntoEmpty(t *testing.T) {
	a := NewGK(0.05)
	b := NewGK(0.05)
	for i := 0; i < 100; i++ {
		b.Insert(float64(i))
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Fatalf("count %d", a.Count())
	}
	v, _ := a.Query(0.5)
	if v < 30 || v > 70 {
		t.Fatalf("median %v far off", v)
	}
	// merging an empty sketch is a no-op
	before := a.Count()
	a.Merge(NewGK(0.05))
	if a.Count() != before {
		t.Fatal("merging empty changed count")
	}
}

func TestGKSummaryRestore(t *testing.T) {
	s := NewGK(0.02)
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.Float64()
		s.Insert(xs[i])
	}
	vals, gs, deltas := s.Summary()
	r, err := Restore(0.02, vals, gs, deltas)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != s.Count() {
		t.Fatalf("restored count %d, want %d", r.Count(), s.Count())
	}
	sort.Float64s(xs)
	checkEps(t, r, xs, 0.02)

	if _, err := Restore(0.02, []float64{1, 2}, []uint64{1}, []uint64{0, 0}); err == nil {
		t.Fatal("expected mismatched-array error")
	}
	if _, err := Restore(0.02, []float64{2, 1}, []uint64{1, 1}, []uint64{0, 0}); err == nil {
		t.Fatal("expected unsorted error")
	}
}
