package sketch

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dimboost/internal/dataset"
)

func TestCandidatesZeroCutAlwaysPresent(t *testing.T) {
	s := NewGK(0.05)
	for i := 1; i <= 100; i++ {
		s.Insert(float64(i))
	}
	c := Propose(s, 10)
	found := false
	for _, v := range c.Cuts {
		if v == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("zero cut missing")
	}
	if c.ZeroBucket != c.Bucket(0) {
		t.Fatal("ZeroBucket cache wrong")
	}
	if c.Cuts[c.ZeroBucket] != 0 {
		t.Fatalf("zero bucket cut = %v, want 0", c.Cuts[c.ZeroBucket])
	}
}

func TestCandidatesSortedDeduped(t *testing.T) {
	s := NewGK(0.05)
	for i := 0; i < 1000; i++ {
		s.Insert(float64(i % 3)) // only values 0,1,2
	}
	c := Propose(s, 20)
	if !sort.Float64sAreSorted(c.Cuts) {
		t.Fatal("cuts not sorted")
	}
	for i := 1; i < len(c.Cuts); i++ {
		if c.Cuts[i] == c.Cuts[i-1] {
			t.Fatal("duplicate cuts")
		}
	}
	if len(c.Cuts) > 4 {
		t.Fatalf("3-valued data proposed %d cuts", len(c.Cuts))
	}
}

func TestBucketSemantics(t *testing.T) {
	c := newCandidates([]float64{-2, 1, 5}) // plus injected 0 -> cuts {-2,0,1,5}
	want := map[float64]int{
		-3:   0, // below every cut -> first bucket
		-2:   0, // equal to cut -> that bucket
		-1:   1,
		0:    1,
		0.5:  2,
		1:    2,
		3:    3,
		5:    3,
		1000: 3, // above the largest cut -> last bucket
	}
	for v, k := range want {
		if got := c.Bucket(v); got != k {
			t.Errorf("Bucket(%v) = %d, want %d", v, got, k)
		}
	}
	if c.NumBuckets() != 4 {
		t.Fatalf("buckets = %d, want 4", c.NumBuckets())
	}
	if c.SplitValue(1) != 0 {
		t.Fatalf("SplitValue(1) = %v", c.SplitValue(1))
	}
}

func TestBucketMonotone(t *testing.T) {
	// property: Bucket is monotone non-decreasing in v, and every bucket
	// k < last satisfies v <= SplitValue(k) iff Bucket(v) <= k.
	f := func(raw []float64, probe float64) bool {
		cuts := make([]float64, 0, len(raw))
		for _, v := range raw {
			if v == v && v > -1e12 && v < 1e12 { // finite
				cuts = append(cuts, v)
			}
		}
		c := newCandidates(cuts)
		k := c.Bucket(probe)
		if k < 0 || k >= c.NumBuckets() {
			return false
		}
		for s := 0; s < c.NumBuckets()-1; s++ {
			left := probe <= c.SplitValue(s)
			if left != (k <= s) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestProposeEmpty(t *testing.T) {
	c := Propose(nil, 10)
	if c.NumBuckets() != 1 || c.Cuts[0] != 0 {
		t.Fatalf("empty propose = %v", c.Cuts)
	}
	c2 := Propose(NewGK(0.1), 10)
	if c2.NumBuckets() != 1 {
		t.Fatalf("empty sketch propose = %v", c2.Cuts)
	}
}

func TestSetAddDatasetAndCandidates(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 300, NumFeatures: 50, AvgNNZ: 10, Seed: 11})
	set := NewSet(d.NumFeatures, 0.02)
	set.AddDataset(d)
	if set.NumFeatures() != 50 {
		t.Fatalf("features = %d", set.NumFeatures())
	}
	cands := set.Candidates(16)
	if len(cands) != 50 {
		t.Fatalf("candidates for %d features", len(cands))
	}
	nonTrivial := 0
	for f, c := range cands {
		if c.NumBuckets() < 1 {
			t.Fatalf("feature %d has no buckets", f)
		}
		if c.NumBuckets() > 17 {
			t.Fatalf("feature %d has %d buckets > k+1", f, c.NumBuckets())
		}
		if c.NumBuckets() > 2 {
			nonTrivial++
		}
	}
	if nonTrivial == 0 {
		t.Fatal("all features trivial; generator or sketching broken")
	}
}

func TestSetMergeMatchesUnion(t *testing.T) {
	cfg := dataset.SyntheticConfig{NumRows: 400, NumFeatures: 30, AvgNNZ: 8, Seed: 12}
	d := dataset.Generate(cfg)
	shards := dataset.PartitionRows(d, 4)

	whole := NewSet(30, 0.02)
	whole.AddDataset(d)

	merged := NewSet(30, 0.02)
	for _, sh := range shards {
		local := NewSet(30, 0.02)
		local.AddDataset(sh)
		merged.Merge(local)
	}

	for f := 0; f < 30; f++ {
		w, m := whole.Feature(f), merged.Feature(f)
		if (w == nil) != (m == nil) {
			t.Fatalf("feature %d: presence mismatch", f)
		}
		if w == nil {
			continue
		}
		if w.Count() != m.Count() {
			t.Fatalf("feature %d: counts %d vs %d", f, w.Count(), m.Count())
		}
		// the merged median should land inside the whole-data IQR
		b, _ := m.Query(0.5)
		lo, _ := w.Query(0.25)
		hi, _ := w.Query(0.75)
		if b < lo || b > hi {
			t.Errorf("feature %d: merged median %v outside IQR [%v,%v]", f, b, lo, hi)
		}
	}
}
