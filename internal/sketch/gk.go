// Package sketch implements mergeable quantile sketches used to propose
// split candidates for every feature (the paper's CREATE_SKETCH /
// PULL_SKETCH phases, §4.4). The primary algorithm is the Greenwald–Khanna
// (GK) ε-approximate quantile summary [GK01], the same family the paper
// cites for distributed quantile computation; a weighted wrapper supports
// XGBoost-style hessian-weighted candidates.
package sketch

import (
	"errors"
	"math"
	"sort"
)

// tuple is one GK summary entry: a stored value v, the number of observations
// it absorbs (g), and the uncertainty of its rank (delta). The minimum rank
// of v is the running sum of g up to and including the entry; the maximum
// rank adds delta.
type tuple struct {
	v     float64
	g     uint64
	delta uint64
}

// GK is a Greenwald–Khanna quantile summary with additive rank error εN.
// The zero value is not usable; construct with NewGK. GK is not safe for
// concurrent use.
type GK struct {
	eps     float64
	n       uint64
	tuples  []tuple
	buf     []float64
	bufSize int
}

// NewGK returns an empty summary with rank error ε (0 < ε < 1). Typical ε
// for split-candidate proposal is 1/(2K) for K candidates.
func NewGK(eps float64) *GK {
	if eps <= 0 || eps >= 1 {
		panic("sketch: eps must be in (0,1)")
	}
	bs := int(1.0/(2.0*eps)) + 1
	if bs < 16 {
		bs = 16
	}
	return &GK{eps: eps, bufSize: bs}
}

// Eps returns the configured rank error.
func (s *GK) Eps() float64 { return s.eps }

// Count returns the number of inserted observations, including those still
// in the insertion buffer.
func (s *GK) Count() uint64 { return s.n + uint64(len(s.buf)) }

// Insert adds one observation. NaN values are rejected silently (GBDT treats
// missing as zero at a higher layer, so NaN never reaches the sketch in
// normal operation).
func (s *GK) Insert(v float64) {
	if math.IsNaN(v) {
		return
	}
	s.buf = append(s.buf, v)
	if len(s.buf) >= s.bufSize {
		s.flush()
	}
}

// flush merges the buffered values into the summary and compresses it.
func (s *GK) flush() {
	if len(s.buf) == 0 {
		return
	}
	sort.Float64s(s.buf)
	merged := make([]tuple, 0, len(s.tuples)+len(s.buf))
	i, j := 0, 0
	for i < len(s.tuples) || j < len(s.buf) {
		if j >= len(s.buf) || (i < len(s.tuples) && s.tuples[i].v <= s.buf[j]) {
			merged = append(merged, s.tuples[i])
			i++
			continue
		}
		v := s.buf[j]
		j++
		var delta uint64
		// New elements inserted strictly inside the summary get
		// delta = floor(2εn) - 1; extremes are exact.
		if len(merged) > 0 && (i < len(s.tuples)) {
			if d := uint64(2 * s.eps * float64(s.n+uint64(j))); d > 0 {
				delta = d - 1
			}
		}
		merged = append(merged, tuple{v: v, g: 1, delta: delta})
	}
	s.n += uint64(len(s.buf))
	s.buf = s.buf[:0]
	s.tuples = merged
	s.compress()
}

// compress removes tuples whose neighbour can absorb them without violating
// the g + delta <= 2εn invariant.
func (s *GK) compress() {
	if len(s.tuples) < 3 {
		return
	}
	limit := uint64(2 * s.eps * float64(s.n))
	out := s.tuples[:0]
	out = append(out, s.tuples[0])
	for i := 1; i < len(s.tuples)-1; i++ {
		t := s.tuples[i]
		next := s.tuples[i+1]
		if t.g+next.g+next.delta <= limit {
			// merge t into next
			s.tuples[i+1].g += t.g
			continue
		}
		out = append(out, t)
	}
	out = append(out, s.tuples[len(s.tuples)-1])
	s.tuples = out
}

// Query returns an ε-approximate φ-quantile (0 ≤ φ ≤ 1). It returns an error
// on an empty sketch.
func (s *GK) Query(phi float64) (float64, error) {
	s.flush()
	if s.n == 0 {
		return 0, errors.New("sketch: empty summary")
	}
	if phi <= 0 {
		return s.tuples[0].v, nil
	}
	if phi >= 1 {
		return s.tuples[len(s.tuples)-1].v, nil
	}
	target := phi * float64(s.n)
	// Return the tuple whose rank interval midpoint is closest to the
	// target rank. Under the GK invariant (g+delta <= 2εn) the best tuple
	// is within εn ranks of the exact quantile.
	best := s.tuples[0].v
	bestDist := math.Inf(1)
	var rmin uint64
	for _, t := range s.tuples {
		rmin += t.g
		mid := float64(rmin) + float64(t.delta)/2
		if d := math.Abs(mid - target); d < bestDist {
			bestDist = d
			best = t.v
		}
	}
	return best, nil
}

// Merge folds other into s. Both sketches keep operating afterwards; the
// merged summary's error is bounded by max(ε_s, ε_other) + small constant,
// which is why the system constructs worker-local sketches with half the
// target ε. Merging is what the parameter server does in CREATE_SKETCH.
func (s *GK) Merge(other *GK) {
	other.flush()
	s.flush()
	if other.n == 0 {
		return
	}
	// Standard mergeable-summary construction: concatenate tuple lists in
	// value order; deltas of foreign tuples inherit their own uncertainty.
	merged := make([]tuple, 0, len(s.tuples)+len(other.tuples))
	i, j := 0, 0
	for i < len(s.tuples) || j < len(other.tuples) {
		if j >= len(other.tuples) || (i < len(s.tuples) && s.tuples[i].v <= other.tuples[j].v) {
			merged = append(merged, s.tuples[i])
			i++
		} else {
			merged = append(merged, other.tuples[j])
			j++
		}
	}
	s.tuples = merged
	s.n += other.n
	s.compress()
}

// Summary returns the stored values and cumulative min-ranks, primarily for
// serialization. Values are in ascending order.
func (s *GK) Summary() (values []float64, gs, deltas []uint64) {
	s.flush()
	values = make([]float64, len(s.tuples))
	gs = make([]uint64, len(s.tuples))
	deltas = make([]uint64, len(s.tuples))
	for i, t := range s.tuples {
		values[i] = t.v
		gs[i] = t.g
		deltas[i] = t.delta
	}
	return
}

// Restore rebuilds a sketch from Summary output. count must equal the sum of
// gs; eps must match the producer's eps for the error bound to hold.
func Restore(eps float64, values []float64, gs, deltas []uint64) (*GK, error) {
	if len(values) != len(gs) || len(values) != len(deltas) {
		return nil, errors.New("sketch: mismatched summary arrays")
	}
	s := NewGK(eps)
	var n uint64
	for i := range values {
		if i > 0 && values[i] < values[i-1] {
			return nil, errors.New("sketch: summary values not sorted")
		}
		s.tuples = append(s.tuples, tuple{v: values[i], g: gs[i], delta: deltas[i]})
		n += gs[i]
	}
	s.n = n
	return s, nil
}
