package sketch

import (
	"sort"

	"dimboost/internal/dataset"
)

// Candidates holds the split cut points of one feature in ascending order.
// Bucket k holds values in (Cuts[k-1], Cuts[k]]; the last bucket additionally
// absorbs everything above the largest cut. One cut always equals 0, so the
// "zero bucket" of the sparsity-aware histogram construction (§5.1) is well
// defined even for features with negative values.
type Candidates struct {
	Cuts []float64
	// ZeroBucket caches Bucket(0).
	ZeroBucket int
}

// NumBuckets returns the number of histogram buckets for this feature.
func (c Candidates) NumBuckets() int { return len(c.Cuts) }

// Bucket maps a feature value to its histogram bucket: the smallest k with
// v <= Cuts[k], or the last bucket when v exceeds every cut.
func (c Candidates) Bucket(v float64) int {
	k := sort.SearchFloat64s(c.Cuts, v)
	// SearchFloat64s finds the first cut >= v; bucket semantics are
	// v <= cut, which is the same index except when v equals a cut —
	// Search already returns that cut's index, which is correct.
	if k >= len(c.Cuts) {
		return len(c.Cuts) - 1
	}
	return k
}

// SplitValue returns the threshold of splitting after bucket k ("x <= value
// goes left"). Splits at the last bucket are not meaningful (everything goes
// left) and are never proposed by the split finder.
func (c Candidates) SplitValue(k int) float64 { return c.Cuts[k] }

// newCandidates sorts, deduplicates, and injects the zero cut.
func newCandidates(cuts []float64) Candidates {
	cuts = append(cuts, 0)
	sort.Float64s(cuts)
	out := cuts[:0]
	for i, v := range cuts {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	c := Candidates{Cuts: out}
	c.ZeroBucket = c.Bucket(0)
	return c
}

// FromCuts rebuilds a Candidates value from serialized cut points (which
// already include the zero cut and are sorted and deduplicated).
func FromCuts(cuts []float64) Candidates {
	c := Candidates{Cuts: cuts}
	c.ZeroBucket = c.Bucket(0)
	return c
}

// Propose extracts at most k cut points from the sketch as the 1/k .. k/k
// quantiles (the paper's percentile-based candidate proposal, §2.2). The
// zero cut is always added. An empty sketch yields the single zero cut.
func Propose(s *GK, k int) Candidates {
	if s == nil || s.Count() == 0 {
		return newCandidates(nil)
	}
	cuts := make([]float64, 0, k)
	for i := 1; i <= k; i++ {
		q, err := s.Query(float64(i) / float64(k))
		if err != nil {
			break
		}
		cuts = append(cuts, q)
	}
	return newCandidates(cuts)
}

// Set is a per-feature collection of GK sketches over the nonzero values of
// each feature. Workers build a local Set over their shard and the parameter
// server merges them (CREATE_SKETCH / PULL_SKETCH).
type Set struct {
	eps      float64
	sketches []*GK // nil until a feature sees a nonzero value
}

// NewSet creates an empty sketch set for numFeatures features with rank
// error eps per feature.
func NewSet(numFeatures int, eps float64) *Set {
	return &Set{eps: eps, sketches: make([]*GK, numFeatures)}
}

// NumFeatures returns the number of features covered.
func (t *Set) NumFeatures() int { return len(t.sketches) }

// Feature returns the sketch of feature f, or nil if f never had a nonzero.
func (t *Set) Feature(f int) *GK { return t.sketches[f] }

// Add inserts one observation for feature f.
func (t *Set) Add(f int, v float64) {
	s := t.sketches[f]
	if s == nil {
		s = NewGK(t.eps)
		t.sketches[f] = s
	}
	s.Insert(v)
}

// AddDataset inserts every nonzero entry of the dataset.
func (t *Set) AddDataset(d *dataset.Dataset) {
	for i := 0; i < d.NumRows(); i++ {
		in := d.Row(i)
		for j, f := range in.Indices {
			t.Add(int(f), float64(in.Values[j]))
		}
	}
}

// Merge folds other into t feature by feature.
func (t *Set) Merge(other *Set) {
	for f, os := range other.sketches {
		if os == nil {
			continue
		}
		if t.sketches[f] == nil {
			t.sketches[f] = NewGK(t.eps)
		}
		t.sketches[f].Merge(os)
	}
}

// Candidates proposes k split candidates per feature.
func (t *Set) Candidates(k int) []Candidates {
	out := make([]Candidates, len(t.sketches))
	for f, s := range t.sketches {
		out[f] = Propose(s, k)
	}
	return out
}
