package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLimiterBoundsConcurrency hammers a small limiter from many
// goroutines and checks true concurrency never exceeds MaxConcurrent,
// waiters never exceed QueueDepth, and everything either runs or sheds.
func TestLimiterBoundsConcurrency(t *testing.T) {
	const limit, queue, callers = 3, 5, 64
	l := NewLimiter(AdmissionConfig{MaxConcurrent: limit, QueueDepth: queue, QueueTimeout: 2 * time.Second})

	var active, maxActive, admitted, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := l.Acquire(context.Background(), nil)
			if err != nil {
				if !errors.Is(err, ErrQueueFull) && !errors.Is(err, ErrQueueTimeout) {
					t.Errorf("unexpected shed error: %v", err)
				}
				shed.Add(1)
				return
			}
			defer release()
			a := active.Add(1)
			for {
				m := maxActive.Load()
				if a <= m || maxActive.CompareAndSwap(m, a) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			active.Add(-1)
			admitted.Add(1)
		}()
	}
	wg.Wait()

	if got := maxActive.Load(); got > limit {
		t.Fatalf("max concurrent %d exceeds limit %d", got, limit)
	}
	if admitted.Load()+shed.Load() != callers {
		t.Fatalf("admitted %d + shed %d != %d callers", admitted.Load(), shed.Load(), callers)
	}
	if admitted.Load() < limit {
		t.Fatalf("only %d admitted, want at least %d", admitted.Load(), limit)
	}
	if l.Active() != 0 || l.Queued() != 0 {
		t.Fatalf("limiter not drained: active %d queued %d", l.Active(), l.Queued())
	}
}

// TestLimiterQueueFull fills every slot and queue position, then checks
// the next arrival sheds immediately with ErrQueueFull.
func TestLimiterQueueFull(t *testing.T) {
	l := NewLimiter(AdmissionConfig{MaxConcurrent: 1, QueueDepth: 1})
	release, err := l.Acquire(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}

	queuedUp := make(chan error, 1)
	go func() {
		r, err := l.Acquire(context.Background(), nil)
		if err == nil {
			defer r()
		}
		queuedUp <- err
	}()
	waitFor(t, func() bool { return l.Queued() == 1 })

	if _, err := l.Acquire(context.Background(), nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full queue: got %v, want ErrQueueFull", err)
	}
	release()
	if err := <-queuedUp; err != nil {
		t.Fatalf("queued caller: %v", err)
	}
}

// TestLimiterQueueTimeout parks a waiter behind a stuck slot and checks
// it sheds with ErrQueueTimeout once its queue budget runs out.
func TestLimiterQueueTimeout(t *testing.T) {
	l := NewLimiter(AdmissionConfig{MaxConcurrent: 1, QueueDepth: 4, QueueTimeout: 20 * time.Millisecond})
	release, err := l.Acquire(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	start := time.Now()
	if _, err := l.Acquire(context.Background(), nil); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("got %v, want ErrQueueTimeout", err)
	}
	if waited := time.Since(start); waited < 15*time.Millisecond {
		t.Fatalf("shed after only %s, before the queue budget", waited)
	}
	if l.Queued() != 0 {
		t.Fatalf("queued %d after timeout", l.Queued())
	}
}

// TestLimiterContextCancel checks a queued request whose client goes away
// releases its queue position with ErrCanceled.
func TestLimiterContextCancel(t *testing.T) {
	l := NewLimiter(AdmissionConfig{MaxConcurrent: 1, QueueDepth: 4})
	release, err := l.Acquire(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := l.Acquire(ctx, nil)
		done <- err
	}()
	waitFor(t, func() bool { return l.Queued() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if l.Queued() != 0 {
		t.Fatalf("queued %d after cancel", l.Queued())
	}
}

// TestLimiterDraining checks new arrivals are refused the moment draining
// flips, while a request already queued keeps its place and completes.
func TestLimiterDraining(t *testing.T) {
	l := NewLimiter(AdmissionConfig{MaxConcurrent: 1, QueueDepth: 4, QueueTimeout: 2 * time.Second})
	var draining atomic.Bool

	release, err := l.Acquire(context.Background(), &draining)
	if err != nil {
		t.Fatal(err)
	}

	queued := make(chan error, 1)
	go func() {
		r, err := l.Acquire(context.Background(), &draining)
		if err == nil {
			r()
		}
		queued <- err
	}()
	waitFor(t, func() bool { return l.Queued() == 1 })

	draining.Store(true)
	if _, err := l.Acquire(context.Background(), &draining); !errors.Is(err, ErrDraining) {
		t.Fatalf("new arrival while draining: got %v, want ErrDraining", err)
	}
	release()
	if err := <-queued; err != nil {
		t.Fatalf("queued request must complete through drain, got %v", err)
	}
}

// TestLimiterNoGoroutineLeak runs an overload burst and checks the
// goroutine count settles back — shed paths must not strand waiters.
func TestLimiterNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	l := NewLimiter(AdmissionConfig{MaxConcurrent: 2, QueueDepth: 2, QueueTimeout: 5 * time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := l.Acquire(context.Background(), nil)
			if err == nil {
				time.Sleep(100 * time.Microsecond)
				release()
			}
		}()
	}
	wg.Wait()
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before+2 })
	if l.Active() != 0 || l.Queued() != 0 {
		t.Fatalf("limiter state leaked: active %d queued %d", l.Active(), l.Queued())
	}
}

// waitFor polls cond with a deadline; test helpers that need another
// goroutine to reach a state without sleeping a fixed amount.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(200 * time.Microsecond)
	}
}
