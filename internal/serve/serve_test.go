package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"dimboost/internal/core"
	"dimboost/internal/dataset"
	"dimboost/internal/loss"
	"dimboost/internal/obs"
)

func trainedModel(t *testing.T) (*core.Model, *dataset.Dataset) {
	t.Helper()
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 400, NumFeatures: 60, AvgNNZ: 8, Seed: 5, Zipf: 1.2})
	cfg := core.DefaultConfig()
	cfg.NumTrees = 4
	cfg.MaxDepth = 4
	cfg.Parallelism = 1
	m, err := core.Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, d
}

func TestHealthz(t *testing.T) {
	m, _ := trainedModel(t)
	srv := httptest.NewServer(New(m))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestModelInfo(t *testing.T) {
	m, _ := trainedModel(t)
	srv := httptest.NewServer(New(m))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info struct {
		Loss  string `json:"loss"`
		Trees int    `json:"trees"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Loss != "logistic" || info.Trees != 4 {
		t.Fatalf("info %+v", info)
	}
}

func TestImportanceEndpoint(t *testing.T) {
	m, _ := trainedModel(t)
	srv := httptest.NewServer(New(m))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/importance?top=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []struct {
		Gain float64 `json:"gain"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 || len(out) > 3 {
		t.Fatalf("%d entries", len(out))
	}
	// bad top parameter
	resp2, _ := http.Get(srv.URL + "/importance?top=zero")
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad top: status %d", resp2.StatusCode)
	}
}

func TestPredictJSON(t *testing.T) {
	m, d := trainedModel(t)
	srv := httptest.NewServer(New(m))
	defer srv.Close()

	// take two real rows and submit them with unsorted indices
	var req predictRequest
	want := make([]float64, 0, 2)
	for i := 0; i < 2; i++ {
		in := d.Row(i)
		ji := jsonInstance{}
		// reverse order to exercise server-side sorting
		for j := len(in.Indices) - 1; j >= 0; j-- {
			ji.Indices = append(ji.Indices, in.Indices[j])
			ji.Values = append(ji.Values, in.Values[j])
		}
		req.Instances = append(req.Instances, ji)
		want = append(want, m.Predict(in))
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Scores) != 2 || len(out.Probabilities) != 2 {
		t.Fatalf("response %+v", out)
	}
	for i := range want {
		if math.Abs(out.Scores[i]-want[i]) > 1e-12 {
			t.Fatalf("score %d: %v want %v", i, out.Scores[i], want[i])
		}
		if p := out.Probabilities[i]; math.Abs(p-loss.Sigmoid(want[i])) > 1e-12 {
			t.Fatalf("probability %d: %v", i, p)
		}
	}
}

func TestPredictLibSVM(t *testing.T) {
	m, d := trainedModel(t)
	srv := httptest.NewServer(New(m))
	defer srv.Close()

	var buf bytes.Buffer
	sub := d.Subset(0, 3)
	if err := dataset.WriteLibSVM(&buf, sub); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/predict", "text/libsvm", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Scores) != 3 {
		t.Fatalf("%d scores", len(out.Scores))
	}
	for i := 0; i < 3; i++ {
		if math.Abs(out.Scores[i]-m.Predict(sub.Row(i))) > 1e-6 {
			t.Fatalf("score %d mismatch", i)
		}
	}
}

func TestPredictErrors(t *testing.T) {
	m, _ := trainedModel(t)
	srv := httptest.NewServer(New(m))
	defer srv.Close()

	cases := []struct {
		ct     string
		body   string
		status int
	}{
		{"application/json", "{not json", http.StatusBadRequest},
		{"application/json", `{"instances":[]}`, http.StatusBadRequest},
		{"application/json", `{"instances":[{"indices":[1,2],"values":[1]}]}`, http.StatusBadRequest},
		{"application/json", `{"instances":[{"indices":[-1],"values":[1]}]}`, http.StatusBadRequest},
		{"application/json", `{"instances":[{"indices":[2,2],"values":[1,1]}]}`, http.StatusBadRequest},
		{"text/libsvm", "1 notapair\n", http.StatusBadRequest},
		{"application/xml", "<nope/>", http.StatusUnsupportedMediaType},
	}
	for i, c := range cases {
		resp, err := http.Post(srv.URL+"/predict", c.ct, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Fatalf("case %d: status %d, want %d", i, resp.StatusCode, c.status)
		}
	}
	// wrong method
	resp, _ := http.Get(srv.URL + "/predict")
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("GET /predict should fail")
	}
}

func TestBodyLimit(t *testing.T) {
	m, _ := trainedModel(t)
	h := New(m)
	h.MaxBodyBytes = 64
	srv := httptest.NewServer(h)
	defer srv.Close()
	big := `{"instances":[{"indices":[1],"values":[1.0]},{"indices":[2],"values":[2.0]}]}`
	resp, err := http.Post(srv.URL+"/predict", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d", resp.StatusCode)
	}
	// the LibSVM path classifies the same way
	var svm bytes.Buffer
	for i := 0; i < 20; i++ {
		svm.WriteString("1 1:0.5 2:0.25 3:0.125\n")
	}
	resp2, err := http.Post(srv.URL+"/predict", "text/libsvm", &svm)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized LibSVM body: status %d", resp2.StatusCode)
	}
}

// TestConcurrentSwap hammers /predict while hot-swapping the model; run
// under -race this proves the swap path is data-race free, and every
// response must score with one coherent model.
func TestConcurrentSwap(t *testing.T) {
	m1, d := trainedModel(t)
	m2 := &core.Model{Loss: m1.Loss, BaseScore: m1.BaseScore, Trees: m1.Trees[:1]}
	h := New(m1)
	srv := httptest.NewServer(h)
	defer srv.Close()

	in := d.Row(0)
	want1, want2 := m1.Predict(in), m2.Predict(in)
	body, _ := json.Marshal(predictRequest{Instances: []jsonInstance{{Indices: in.Indices, Values: in.Values}}})

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if i%2 == 0 {
				h.Swap(m2)
			} else {
				h.Swap(m1)
			}
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var out predictResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				got := out.Scores[0]
				if math.Abs(got-want1) > 1e-12 && math.Abs(got-want2) > 1e-12 {
					errs <- fmt.Errorf("score %v matches neither model (%v / %v)", got, want1, want2)
					return
				}
			}
		}()
	}
	wg.Wait()
	<-done
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	m, _ := trainedModel(t)
	srv := httptest.NewServer(New(m))
	defer srv.Close()

	// generate some traffic first so the scrape carries request series
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(bytes.NewReader(raw)); err != nil {
		t.Fatalf("exposition: %v\n%s", err, raw)
	}
	for _, want := range []string{"dimboost_http_requests_total", "dimboost_serve_model_trees"} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("scrape missing %s", want)
		}
	}

	var dbg struct {
		Metrics []json.RawMessage `json:"metrics"`
	}
	resp, err = http.Get(srv.URL + "/debug/obs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	if len(dbg.Metrics) == 0 {
		t.Fatal("debug snapshot has no metrics")
	}
}

func TestReload(t *testing.T) {
	m1, _ := trainedModel(t)
	h := New(m1)
	srv := httptest.NewServer(h)
	defer srv.Close()

	// not enabled
	resp, err := http.Post(srv.URL+"/model/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("reload without hook: status %d", resp.StatusCode)
	}

	m2 := &core.Model{Loss: m1.Loss, Trees: m1.Trees[:1]}
	h.OnReload = func() (*core.Model, error) { return m2, nil }
	resp, err = http.Post(srv.URL+"/model/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]int
	err = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || out["trees"] != 1 {
		t.Fatalf("reload: status %d, body %v", resp.StatusCode, out)
	}

	h.OnReload = func() (*core.Model, error) { return nil, fmt.Errorf("corrupt file") }
	resp, err = http.Post(srv.URL+"/model/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failed reload: status %d", resp.StatusCode)
	}
	// the failed reload must not disturb the served model
	infoResp, err := http.Get(srv.URL + "/model")
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		Trees int `json:"trees"`
	}
	err = json.NewDecoder(infoResp.Body).Decode(&info)
	infoResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if info.Trees != 1 {
		t.Fatalf("after failed reload: %d trees, want 1", info.Trees)
	}
}

func TestDrainingHealthz(t *testing.T) {
	m, _ := trainedModel(t)
	h := New(m)
	srv := httptest.NewServer(h)
	defer srv.Close()

	h.SetDraining(true)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: status %d", resp.StatusCode)
	}
	// other endpoints keep working while draining
	resp, err = http.Get(srv.URL + "/model")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining /model: status %d", resp.StatusCode)
	}
	h.SetDraining(false)
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("undrained healthz: status %d", resp.StatusCode)
	}
}

func TestHotSwap(t *testing.T) {
	m1, d := trainedModel(t)
	h := New(m1)
	srv := httptest.NewServer(h)
	defer srv.Close()

	// a different model: single tree
	m2 := &core.Model{Loss: m1.Loss, Trees: m1.Trees[:1]}
	h.Swap(m2)

	in := d.Row(0)
	body, _ := json.Marshal(predictRequest{Instances: []jsonInstance{{Indices: in.Indices, Values: in.Values}}})
	resp, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Scores[0]-m2.Predict(in)) > 1e-12 {
		t.Fatal("swap did not take effect")
	}
}

// --- admission, quota, registry-backed reload, and drain tests ---

func TestPredictRejectsNonFiniteJSON(t *testing.T) {
	// Unit level: the JSON instance validator agrees with the LibSVM
	// parser, which errors on non-finite labels/values.
	for _, v := range []float32{float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1))} {
		ji := jsonInstance{Indices: []int32{3}, Values: []float32{v}}
		if _, err := jsonToInstance(ji); err == nil {
			t.Fatalf("value %v accepted", v)
		}
	}
	// HTTP level: a number JSON cannot represent finitely is a 400, never
	// a scored request.
	m, _ := trainedModel(t)
	srv := httptest.NewServer(New(m))
	defer srv.Close()
	body := `{"instances":[{"indices":[1],"values":[1e999]}]}`
	resp, err := http.Post(srv.URL+"/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("1e999 value: status %d, want 400", resp.StatusCode)
	}
}

func TestPredictQuota(t *testing.T) {
	m, d := trainedModel(t)
	h := New(m)
	h.Quota = NewQuotas(QuotaConfig{Rate: 0.01, Burst: 2})
	srv := httptest.NewServer(h)
	defer srv.Close()

	in := d.Row(0)
	body, _ := json.Marshal(predictRequest{Instances: []jsonInstance{{Indices: in.Indices, Values: in.Values}}})
	post := func(tenant string) *http.Response {
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/predict", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	for i := 0; i < 2; i++ {
		if resp := post("teamA"); resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d: status %d", i, resp.StatusCode)
		}
	}
	resp := post("teamA")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over quota: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 must carry Retry-After")
	}
	// Another tenant (and the default tenant) still gets its own burst.
	if resp := post("teamB"); resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant B: status %d", resp.StatusCode)
	}
	if resp := post(""); resp.StatusCode != http.StatusOK {
		t.Fatalf("default tenant: status %d", resp.StatusCode)
	}
}

// TestOverloadAdmission is the acceptance scenario: open-loop style
// concurrent load at 4× the admission window against a pinned backend.
// In-flight scoring work must never exceed MaxConcurrent, accepted work
// never exceeds MaxConcurrent+QueueDepth, the excess sheds fast with
// 503 + Retry-After, nothing hangs, and every accepted request returns
// the correct score.
func TestOverloadAdmission(t *testing.T) {
	const limit, queueDepth = 2, 2
	const window = limit + queueDepth
	const callers = 4 * window

	m, d := trainedModel(t)
	h := New(m)
	h.Limiter = NewLimiter(AdmissionConfig{MaxConcurrent: limit, QueueDepth: queueDepth, QueueTimeout: 5 * time.Second})

	gate := make(chan struct{})
	var scoring, maxScoring int64
	var mu sync.Mutex
	h.predictHook = func() {
		mu.Lock()
		scoring++
		if scoring > maxScoring {
			maxScoring = scoring
		}
		mu.Unlock()
		<-gate
		mu.Lock()
		scoring--
		mu.Unlock()
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	in := d.Row(0)
	want := m.Predict(in)
	body, _ := json.Marshal(predictRequest{Instances: []jsonInstance{{Indices: in.Indices, Values: in.Values}}})

	goroutinesBefore := runtime.NumGoroutine()
	tr := &http.Transport{}
	client := &http.Client{Transport: tr, Timeout: 30 * time.Second}
	type outcome struct {
		status     int
		retryAfter string
		score      float64
	}
	results := make(chan outcome, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("request error: %v", err)
				return
			}
			defer resp.Body.Close()
			o := outcome{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
			if resp.StatusCode == http.StatusOK {
				var out predictResponse
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					t.Errorf("decode: %v", err)
					return
				}
				o.score = out.Scores[0]
			}
			results <- o
		}()
	}

	// Release the backend once the overload is fully established: every
	// caller is either scoring, queued, or already shed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		s := scoring
		mu.Unlock()
		if s == limit && int(s)+h.Limiter.Queued()+len(results) == callers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("overload never settled: scoring %d queued %d shed %d", s, h.Limiter.Queued(), len(results))
		}
		time.Sleep(200 * time.Microsecond)
	}
	close(gate)
	wg.Wait()
	close(results)

	var accepted, shed int
	for o := range results {
		switch o.status {
		case http.StatusOK:
			accepted++
			if math.Abs(o.score-want) > 1e-12 {
				t.Fatalf("accepted request returned wrong score %v, want %v", o.score, want)
			}
		case http.StatusServiceUnavailable, http.StatusTooManyRequests:
			shed++
			if o.retryAfter == "" {
				t.Fatal("shed response missing Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d", o.status)
		}
	}
	if accepted+shed != callers {
		t.Fatalf("accepted %d + shed %d != %d", accepted, shed, callers)
	}
	if accepted > window {
		t.Fatalf("accepted %d exceeds admission window %d", accepted, window)
	}
	if accepted < limit {
		t.Fatalf("accepted %d, want at least the %d slots", accepted, limit)
	}
	if shed < callers-window {
		t.Fatalf("shed %d, want at least %d", shed, callers-window)
	}
	mu.Lock()
	peak := maxScoring
	mu.Unlock()
	if peak > limit {
		t.Fatalf("max concurrent scoring %d exceeds limit %d", peak, limit)
	}
	// No goroutine may outlive the burst (queued waiters, hook blockers).
	// Idle keep-alive connections are torn down first so only real leaks
	// — stranded limiter waiters or hook blockers — can fail this.
	tr.CloseIdleConnections()
	gleakDeadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore+3 {
		if time.Now().After(gleakDeadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", goroutinesBefore, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
	if h.Limiter.Active() != 0 || h.Limiter.Queued() != 0 {
		t.Fatalf("limiter state leaked: active %d queued %d", h.Limiter.Active(), h.Limiter.Queued())
	}
}

// TestReloadSingleFlight fires concurrent reloads and checks OnReload is
// never invoked in parallel and the registry's version history stays
// strictly linear.
func TestReloadSingleFlight(t *testing.T) {
	m1, _ := trainedModel(t)
	h := New(m1)
	m2 := &core.Model{Loss: m1.Loss, BaseScore: m1.BaseScore, Trees: m1.Trees[:1]}

	var inReload, maxInReload, calls int64
	var mu sync.Mutex
	h.OnReload = func() (*core.Model, error) {
		mu.Lock()
		inReload++
		calls++
		if inReload > maxInReload {
			maxInReload = inReload
		}
		mu.Unlock()
		time.Sleep(2 * time.Millisecond)
		mu.Lock()
		inReload--
		mu.Unlock()
		return m2, nil
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	const reloaders = 8
	var wg sync.WaitGroup
	for i := 0; i < reloaders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/model/reload", "", nil)
			if err != nil {
				t.Errorf("reload: %v", err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("reload status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if maxInReload != 1 {
		t.Fatalf("OnReload ran %d-way concurrent, want single-flight", maxInReload)
	}
	if calls != reloaders {
		t.Fatalf("%d OnReload calls, want %d", calls, reloaders)
	}
	hist := h.Registry().History()
	for i := 1; i < len(hist); i++ {
		if hist[i].ID != hist[i-1].ID+1 {
			t.Fatalf("version history not linear: %+v", hist)
		}
	}
	if _, v := h.Registry().Current(); v.ID != int64(reloaders)+1 {
		t.Fatalf("final version %d, want %d", v.ID, reloaders+1)
	}
}

// TestReloadRollback is the acceptance scenario: a reload producing a
// corrupt (compile-failing) or validation-failing model leaves the
// previous model serving, increments the rollback metric, and /model
// reports the retained version.
func TestReloadRollback(t *testing.T) {
	m1, d := trainedModel(t)
	h := New(m1)
	h.Registry().Validate = ProbeValidator(d.Subset(0, 50), 0)
	srv := httptest.NewServer(h)
	defer srv.Close()

	modelVersion := func() (trees int, version int64) {
		resp, err := http.Get(srv.URL + "/model")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var info struct {
			Trees   int   `json:"trees"`
			Version int64 `json:"version"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		return info.Trees, info.Version
	}

	// A corrupt model file that still decodes: compile fails.
	h.OnReload = func() (*core.Model, error) { return corruptModel(), nil }
	before := rollbacks("compile")
	resp, err := http.Post(srv.URL+"/model/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt reload: status %d, want 422", resp.StatusCode)
	}
	if got := rollbacks("compile"); got != before+1 {
		t.Fatalf("compile rollback counter %d, want %d", got, before+1)
	}
	if trees, version := modelVersion(); trees != len(m1.Trees) || version != 1 {
		t.Fatalf("after corrupt reload: %d trees v%d, want %d trees v1", trees, version, len(m1.Trees))
	}

	// A model that compiles but fails probe validation: all-Inf scores.
	h.OnReload = func() (*core.Model, error) {
		bad := &core.Model{Loss: m1.Loss, BaseScore: math.Inf(1), Trees: m1.Trees[:1]}
		return bad, nil
	}
	before = rollbacks("validate")
	resp, err = http.Post(srv.URL+"/model/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("invalid reload: status %d, want 422", resp.StatusCode)
	}
	if got := rollbacks("validate"); got != before+1 {
		t.Fatalf("validate rollback counter %d, want %d", got, before+1)
	}
	if trees, version := modelVersion(); trees != len(m1.Trees) || version != 1 {
		t.Fatalf("after invalid reload: %d trees v%d, want retained v1", trees, version)
	}

	// A good model still goes through, as version 2.
	good := &core.Model{Loss: m1.Loss, BaseScore: m1.BaseScore, Trees: m1.Trees[:2]}
	h.OnReload = func() (*core.Model, error) { return good, nil }
	resp, err = http.Post(srv.URL+"/model/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("good reload: status %d", resp.StatusCode)
	}
	if trees, version := modelVersion(); trees != 2 || version != 2 {
		t.Fatalf("after good reload: %d trees v%d, want 2 trees v2", trees, version)
	}
}

// TestGracefulDrainInFlight runs a real http.Server through shutdown: an
// in-flight slow /predict completes during the drain, a request arriving
// after Shutdown is refused at the connection level, and /healthz reports
// 503 throughout the drain.
func TestGracefulDrainInFlight(t *testing.T) {
	m, d := trainedModel(t)
	h := New(m)
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	h.predictHook = func() {
		once.Do(func() { close(entered) })
		<-gate
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: h}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	// Fresh connection per request so refused connections are visible.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 5 * time.Second}

	in := d.Row(0)
	want := m.Predict(in)
	body, _ := json.Marshal(predictRequest{Instances: []jsonInstance{{Indices: in.Indices, Values: in.Values}}})

	slowDone := make(chan error, 1)
	go func() {
		resp, err := client.Post(base+"/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			slowDone <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			slowDone <- fmt.Errorf("slow request status %d", resp.StatusCode)
			return
		}
		var out predictResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			slowDone <- err
			return
		}
		if math.Abs(out.Scores[0]-want) > 1e-12 {
			slowDone <- fmt.Errorf("slow request score %v, want %v", out.Scores[0], want)
			return
		}
		slowDone <- nil
	}()
	<-entered

	// Begin the drain while the slow request is in flight.
	h.SetDraining(true)
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: status %d, want 503", resp.StatusCode)
	}
	// New scoring work is refused immediately, with Retry-After.
	resp, err = client.Post(base+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining predict: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining predict must carry Retry-After")
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Once the listener closes, a request arriving after Shutdown cannot
	// connect at all.
	refusedDeadline := time.Now().Add(2 * time.Second)
	for {
		_, err := client.Get(base + "/healthz")
		if err != nil {
			break
		}
		if time.Now().After(refusedDeadline) {
			t.Fatal("requests still accepted after Shutdown")
		}
		time.Sleep(time.Millisecond)
	}

	// The in-flight request still completes, correctly, during the drain.
	close(gate)
	if err := <-slowDone; err != nil {
		t.Fatal(err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown did not drain cleanly: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("serve: %v", err)
	}
}
