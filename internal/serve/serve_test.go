package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"dimboost/internal/core"
	"dimboost/internal/dataset"
	"dimboost/internal/loss"
	"dimboost/internal/obs"
)

func trainedModel(t *testing.T) (*core.Model, *dataset.Dataset) {
	t.Helper()
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 400, NumFeatures: 60, AvgNNZ: 8, Seed: 5, Zipf: 1.2})
	cfg := core.DefaultConfig()
	cfg.NumTrees = 4
	cfg.MaxDepth = 4
	cfg.Parallelism = 1
	m, err := core.Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, d
}

func TestHealthz(t *testing.T) {
	m, _ := trainedModel(t)
	srv := httptest.NewServer(New(m))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestModelInfo(t *testing.T) {
	m, _ := trainedModel(t)
	srv := httptest.NewServer(New(m))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info struct {
		Loss  string `json:"loss"`
		Trees int    `json:"trees"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Loss != "logistic" || info.Trees != 4 {
		t.Fatalf("info %+v", info)
	}
}

func TestImportanceEndpoint(t *testing.T) {
	m, _ := trainedModel(t)
	srv := httptest.NewServer(New(m))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/importance?top=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []struct {
		Gain float64 `json:"gain"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 || len(out) > 3 {
		t.Fatalf("%d entries", len(out))
	}
	// bad top parameter
	resp2, _ := http.Get(srv.URL + "/importance?top=zero")
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad top: status %d", resp2.StatusCode)
	}
}

func TestPredictJSON(t *testing.T) {
	m, d := trainedModel(t)
	srv := httptest.NewServer(New(m))
	defer srv.Close()

	// take two real rows and submit them with unsorted indices
	var req predictRequest
	want := make([]float64, 0, 2)
	for i := 0; i < 2; i++ {
		in := d.Row(i)
		ji := jsonInstance{}
		// reverse order to exercise server-side sorting
		for j := len(in.Indices) - 1; j >= 0; j-- {
			ji.Indices = append(ji.Indices, in.Indices[j])
			ji.Values = append(ji.Values, in.Values[j])
		}
		req.Instances = append(req.Instances, ji)
		want = append(want, m.Predict(in))
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Scores) != 2 || len(out.Probabilities) != 2 {
		t.Fatalf("response %+v", out)
	}
	for i := range want {
		if math.Abs(out.Scores[i]-want[i]) > 1e-12 {
			t.Fatalf("score %d: %v want %v", i, out.Scores[i], want[i])
		}
		if p := out.Probabilities[i]; math.Abs(p-loss.Sigmoid(want[i])) > 1e-12 {
			t.Fatalf("probability %d: %v", i, p)
		}
	}
}

func TestPredictLibSVM(t *testing.T) {
	m, d := trainedModel(t)
	srv := httptest.NewServer(New(m))
	defer srv.Close()

	var buf bytes.Buffer
	sub := d.Subset(0, 3)
	if err := dataset.WriteLibSVM(&buf, sub); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/predict", "text/libsvm", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Scores) != 3 {
		t.Fatalf("%d scores", len(out.Scores))
	}
	for i := 0; i < 3; i++ {
		if math.Abs(out.Scores[i]-m.Predict(sub.Row(i))) > 1e-6 {
			t.Fatalf("score %d mismatch", i)
		}
	}
}

func TestPredictErrors(t *testing.T) {
	m, _ := trainedModel(t)
	srv := httptest.NewServer(New(m))
	defer srv.Close()

	cases := []struct {
		ct     string
		body   string
		status int
	}{
		{"application/json", "{not json", http.StatusBadRequest},
		{"application/json", `{"instances":[]}`, http.StatusBadRequest},
		{"application/json", `{"instances":[{"indices":[1,2],"values":[1]}]}`, http.StatusBadRequest},
		{"application/json", `{"instances":[{"indices":[-1],"values":[1]}]}`, http.StatusBadRequest},
		{"application/json", `{"instances":[{"indices":[2,2],"values":[1,1]}]}`, http.StatusBadRequest},
		{"text/libsvm", "1 notapair\n", http.StatusBadRequest},
		{"application/xml", "<nope/>", http.StatusUnsupportedMediaType},
	}
	for i, c := range cases {
		resp, err := http.Post(srv.URL+"/predict", c.ct, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Fatalf("case %d: status %d, want %d", i, resp.StatusCode, c.status)
		}
	}
	// wrong method
	resp, _ := http.Get(srv.URL + "/predict")
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("GET /predict should fail")
	}
}

func TestBodyLimit(t *testing.T) {
	m, _ := trainedModel(t)
	h := New(m)
	h.MaxBodyBytes = 64
	srv := httptest.NewServer(h)
	defer srv.Close()
	big := `{"instances":[{"indices":[1],"values":[1.0]},{"indices":[2],"values":[2.0]}]}`
	resp, err := http.Post(srv.URL+"/predict", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d", resp.StatusCode)
	}
	// the LibSVM path classifies the same way
	var svm bytes.Buffer
	for i := 0; i < 20; i++ {
		svm.WriteString("1 1:0.5 2:0.25 3:0.125\n")
	}
	resp2, err := http.Post(srv.URL+"/predict", "text/libsvm", &svm)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized LibSVM body: status %d", resp2.StatusCode)
	}
}

// TestConcurrentSwap hammers /predict while hot-swapping the model; run
// under -race this proves the swap path is data-race free, and every
// response must score with one coherent model.
func TestConcurrentSwap(t *testing.T) {
	m1, d := trainedModel(t)
	m2 := &core.Model{Loss: m1.Loss, BaseScore: m1.BaseScore, Trees: m1.Trees[:1]}
	h := New(m1)
	srv := httptest.NewServer(h)
	defer srv.Close()

	in := d.Row(0)
	want1, want2 := m1.Predict(in), m2.Predict(in)
	body, _ := json.Marshal(predictRequest{Instances: []jsonInstance{{Indices: in.Indices, Values: in.Values}}})

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if i%2 == 0 {
				h.Swap(m2)
			} else {
				h.Swap(m1)
			}
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var out predictResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				got := out.Scores[0]
				if math.Abs(got-want1) > 1e-12 && math.Abs(got-want2) > 1e-12 {
					errs <- fmt.Errorf("score %v matches neither model (%v / %v)", got, want1, want2)
					return
				}
			}
		}()
	}
	wg.Wait()
	<-done
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	m, _ := trainedModel(t)
	srv := httptest.NewServer(New(m))
	defer srv.Close()

	// generate some traffic first so the scrape carries request series
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(bytes.NewReader(raw)); err != nil {
		t.Fatalf("exposition: %v\n%s", err, raw)
	}
	for _, want := range []string{"dimboost_http_requests_total", "dimboost_serve_model_trees"} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("scrape missing %s", want)
		}
	}

	var dbg struct {
		Metrics []json.RawMessage `json:"metrics"`
	}
	resp, err = http.Get(srv.URL + "/debug/obs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	if len(dbg.Metrics) == 0 {
		t.Fatal("debug snapshot has no metrics")
	}
}

func TestReload(t *testing.T) {
	m1, _ := trainedModel(t)
	h := New(m1)
	srv := httptest.NewServer(h)
	defer srv.Close()

	// not enabled
	resp, err := http.Post(srv.URL+"/model/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("reload without hook: status %d", resp.StatusCode)
	}

	m2 := &core.Model{Loss: m1.Loss, Trees: m1.Trees[:1]}
	h.OnReload = func() (*core.Model, error) { return m2, nil }
	resp, err = http.Post(srv.URL+"/model/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]int
	err = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || out["trees"] != 1 {
		t.Fatalf("reload: status %d, body %v", resp.StatusCode, out)
	}

	h.OnReload = func() (*core.Model, error) { return nil, fmt.Errorf("corrupt file") }
	resp, err = http.Post(srv.URL+"/model/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failed reload: status %d", resp.StatusCode)
	}
	// the failed reload must not disturb the served model
	infoResp, err := http.Get(srv.URL + "/model")
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		Trees int `json:"trees"`
	}
	err = json.NewDecoder(infoResp.Body).Decode(&info)
	infoResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if info.Trees != 1 {
		t.Fatalf("after failed reload: %d trees, want 1", info.Trees)
	}
}

func TestDrainingHealthz(t *testing.T) {
	m, _ := trainedModel(t)
	h := New(m)
	srv := httptest.NewServer(h)
	defer srv.Close()

	h.SetDraining(true)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: status %d", resp.StatusCode)
	}
	// other endpoints keep working while draining
	resp, err = http.Get(srv.URL + "/model")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining /model: status %d", resp.StatusCode)
	}
	h.SetDraining(false)
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("undrained healthz: status %d", resp.StatusCode)
	}
}

func TestHotSwap(t *testing.T) {
	m1, d := trainedModel(t)
	h := New(m1)
	srv := httptest.NewServer(h)
	defer srv.Close()

	// a different model: single tree
	m2 := &core.Model{Loss: m1.Loss, Trees: m1.Trees[:1]}
	h.Swap(m2)

	in := d.Row(0)
	body, _ := json.Marshal(predictRequest{Instances: []jsonInstance{{Indices: in.Indices, Values: in.Values}}})
	resp, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Scores[0]-m2.Predict(in)) > 1e-12 {
		t.Fatal("swap did not take effect")
	}
}
