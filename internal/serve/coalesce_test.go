package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dimboost/internal/core"
	"dimboost/internal/dataset"
)

// coalesceInstance draws a sparse row carrying negative values — the
// standardized-feature shape whose batch scoring diverges most from solo in
// cost (and must not diverge at all in bits).
func coalesceInstance(rng *rand.Rand, features int) dataset.Instance {
	n := 1 + rng.Intn(12)
	seen := map[int32]bool{}
	var idx []int32
	for len(idx) < n {
		f := int32(rng.Intn(features))
		if !seen[f] {
			seen[f] = true
			idx = append(idx, f)
		}
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(math.Round(rng.NormFloat64()*100) / 100)
	}
	return dataset.Instance{Indices: idx, Values: vals}
}

func registrySource(h *Handler) func() *core.Model {
	return func() *core.Model {
		m, _ := h.registry.Current()
		return m
	}
}

// TestCoalesceDifferentialConcurrent is the headline invariant (DESIGN
// invariant 19): under concurrent load, every score a coalesced call
// returns is Float64bits-identical to scoring the same instance alone.
// Run under -race in CI.
func TestCoalesceDifferentialConcurrent(t *testing.T) {
	m, _ := trainedModel(t)
	eng, err := m.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoalescer(func() *core.Model { return m }, eng, CoalesceConfig{Window: 200 * time.Microsecond})
	defer c.Close()

	const workers = 8
	const perWorker = 300
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			out := make([]float64, 4)
			for i := 0; i < perWorker; i++ {
				ins := make([]dataset.Instance, 1+rng.Intn(4))
				for j := range ins {
					ins[j] = coalesceInstance(rng, 80)
				}
				bm, err := c.Score(ins, out[:len(ins)])
				if err != nil {
					errs <- fmt.Errorf("score: %w", err)
					return
				}
				if bm != m {
					errs <- fmt.Errorf("wrong model returned")
					return
				}
				for j, in := range ins {
					want := eng.Predict(in)
					if math.Float64bits(out[j]) != math.Float64bits(want) {
						errs <- fmt.Errorf("row %d: coalesced %v != solo %v", j, out[j], want)
						return
					}
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Requests != workers*perWorker {
		t.Fatalf("scored %d requests, want %d", st.Requests, workers*perWorker)
	}
	if st.MeanOccupancy() <= 1 {
		t.Logf("mean occupancy %.2f (single-core host may serialize submissions)", st.MeanOccupancy())
	}
	if st.Full+st.Linger+st.Solo+st.Drain != st.Batches {
		t.Fatalf("flush reasons %d+%d+%d+%d don't sum to %d batches", st.Full, st.Linger, st.Solo, st.Drain, st.Batches)
	}
}

// TestCoalesceHTTPDifferential drives the whole handler path — admission,
// pooled decode, coalescer, demux, response encode — concurrently and holds
// every returned score to bit-equality with the interpreted model.
func TestCoalesceHTTPDifferential(t *testing.T) {
	m, _ := trainedModel(t)
	h := New(m)
	h.Limiter = NewLimiter(AdmissionConfig{MaxConcurrent: 4, QueueDepth: 64, QueueTimeout: time.Second})
	h.EnableCoalescing(CoalesceConfig{Window: 300 * time.Microsecond})
	defer h.Close()
	srv := httptest.NewServer(h)
	defer srv.Close()

	eng, err := m.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	const workers = 6
	const perWorker = 60
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				in := coalesceInstance(rng, 80)
				body, _ := json.Marshal(map[string]any{"instances": []map[string]any{
					{"indices": in.Indices, "values": in.Values},
				}})
				resp, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var pr predictResponse
				err = json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d err %v", resp.StatusCode, err)
					return
				}
				want := eng.Predict(in)
				if len(pr.Scores) != 1 || math.Float64bits(pr.Scores[0]) != math.Float64bits(want) {
					errs <- fmt.Errorf("scores %v, want exactly [%v]", pr.Scores, want)
					return
				}
			}
		}(int64(w) + 100)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := h.Coalescer().Stats(); st.Requests != workers*perWorker {
		t.Fatalf("coalescer scored %d requests, want %d (direct=%d rejected=%d)",
			st.Requests, workers*perWorker, st.Direct, st.Rejected)
	}
}

// TestCoalesceMalformedIsolation: a request whose instance would crash the
// engine fails alone — submit-time validation rejects it, and concurrent
// well-formed requests keep scoring exactly.
func TestCoalesceMalformedIsolation(t *testing.T) {
	m, _ := trainedModel(t)
	eng, err := m.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoalescer(func() *core.Model { return m }, eng, CoalesceConfig{Window: 200 * time.Microsecond})
	defer c.Close()

	var wg sync.WaitGroup
	var badSent, badErrs, goodFails atomic.Int64
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			out := make([]float64, 1)
			for i := 0; i < 200; i++ {
				if i%7 == 3 {
					badSent.Add(1)
					bad := dataset.Instance{Indices: []int32{1, 2, 3}, Values: []float32{0.5}}
					if _, err := c.Score([]dataset.Instance{bad}, out); err != nil {
						badErrs.Add(1)
					}
					continue
				}
				in := coalesceInstance(rng, 80)
				if _, err := c.Score([]dataset.Instance{in}, out); err != nil {
					goodFails.Add(1)
					continue
				}
				if math.Float64bits(out[0]) != math.Float64bits(eng.Predict(in)) {
					goodFails.Add(1)
				}
			}
		}(int64(w) + 7)
	}
	wg.Wait()
	if goodFails.Load() != 0 {
		t.Fatalf("%d well-formed requests failed or scored wrong", goodFails.Load())
	}
	if badErrs.Load() != badSent.Load() {
		t.Fatalf("%d of %d malformed requests rejected", badErrs.Load(), badSent.Load())
	}
}

// TestCoalescePanicIsolation exercises the defense-in-depth layer directly:
// a batch containing an instance that panics the engine (a shape submit
// validation cannot see from outside) degrades to per-request scoring, and
// only the offending request errors.
func TestCoalescePanicIsolation(t *testing.T) {
	m, _ := trainedModel(t)
	eng, err := m.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	good1, good2 := coalesceInstance(rng, 80), coalesceInstance(rng, 80)
	// Indices with nil values: the engine indexes values[j] and panics.
	bad := dataset.Instance{Indices: []int32{0, 1, 2}, Values: nil}
	calls := []*coalesceCall{
		{ins: []dataset.Instance{good1}, out: make([]float64, 1)},
		{ins: []dataset.Instance{bad}, out: make([]float64, 1)},
		{ins: []dataset.Instance{good2}, out: make([]float64, 1)},
	}
	var ins []dataset.Instance
	for _, c := range calls {
		ins = append(ins, c.ins...)
	}
	out := make([]float64, len(ins))
	if err := scoreBatch(m, ins, out, calls); err != nil {
		t.Fatalf("scoreBatch: %v", err)
	}
	if calls[1].err == nil {
		t.Fatal("panicking request did not error")
	}
	if calls[0].err != nil || calls[2].err != nil {
		t.Fatalf("batchmates failed: %v / %v", calls[0].err, calls[2].err)
	}
	if math.Float64bits(out[0]) != math.Float64bits(eng.Predict(good1)) ||
		math.Float64bits(out[2]) != math.Float64bits(eng.Predict(good2)) {
		t.Fatal("batchmates scored wrong after isolation")
	}
}

// TestCoalesceDrainFlushesWaiters pins the shutdown contract: Close while
// requests are parked scores every one of them (no stranding, no error),
// and submissions after Close fall back to direct scoring.
func TestCoalesceDrainFlushesWaiters(t *testing.T) {
	m, _ := trainedModel(t)
	eng, err := m.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	// The first flush's model resolution blocks until released, pinning the
	// scorer while more requests park behind it.
	gate := make(chan struct{})
	var once sync.Once
	c := NewCoalescer(func() *core.Model {
		once.Do(func() { <-gate })
		return m
	}, eng, CoalesceConfig{Window: 50 * time.Millisecond, MaxBatch: 4})

	rng := rand.New(rand.NewSource(9))
	const n = 12
	var wg sync.WaitGroup
	results := make([]error, n)
	scores := make([][]float64, n)
	instances := make([]dataset.Instance, n)
	for i := 0; i < n; i++ {
		instances[i] = coalesceInstance(rng, 80)
		scores[i] = make([]float64, 1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, results[i] = c.Score([]dataset.Instance{instances[i]}, scores[i])
		}(i)
	}
	// Wait until the scorer is pinned inside source() and the rest are
	// parked, then close concurrently with the release.
	deadline := time.Now().Add(2 * time.Second)
	for c.pending.Load() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	closed := make(chan struct{})
	go func() {
		c.Close()
		close(closed)
	}()
	close(gate)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not complete")
	}
	wg.Wait()
	for i := range results {
		if results[i] != nil {
			t.Fatalf("request %d stranded by drain: %v", i, results[i])
		}
		if math.Float64bits(scores[i][0]) != math.Float64bits(eng.Predict(instances[i])) {
			t.Fatalf("request %d scored wrong across drain", i)
		}
	}
	// After close: direct scoring, still exact.
	in := coalesceInstance(rng, 80)
	out := make([]float64, 1)
	if _, err := c.Score([]dataset.Instance{in}, out); err != nil {
		t.Fatalf("score after close: %v", err)
	}
	if math.Float64bits(out[0]) != math.Float64bits(eng.Predict(in)) {
		t.Fatal("post-close direct score wrong")
	}
	if st := c.Stats(); st.Direct == 0 {
		t.Fatal("post-close call did not take the direct path")
	}
}

// TestCoalescePendingBound: with the scorer pinned, offered work beyond
// MaxPending is refused fast with ErrCoalesceFull instead of queueing
// without bound.
func TestCoalescePendingBound(t *testing.T) {
	m, _ := trainedModel(t)
	gate := make(chan struct{})
	var once sync.Once
	c := NewCoalescer(func() *core.Model {
		once.Do(func() { <-gate })
		return m
	}, nil, CoalesceConfig{Window: time.Millisecond, MaxBatch: 2, MaxPending: 8})
	defer c.Close()

	var wg sync.WaitGroup
	var full atomic.Int64
	const n = 40
	var rngMu sync.Mutex
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rngMu.Lock()
			in := coalesceInstance(rng, 80)
			rngMu.Unlock()
			out := make([]float64, 1)
			_, err := c.Score([]dataset.Instance{in}, out)
			if err == ErrCoalesceFull {
				full.Add(1)
			} else if err != nil {
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	// With the scorer pinned, submissions beyond MaxPending must trip the
	// bound; the parked ones are released only once that has happened.
	deadline := time.Now().Add(5 * time.Second)
	for full.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if full.Load() == 0 {
		t.Fatal("pending bound never tripped")
	}
	if c.pending.Load() != 0 {
		t.Fatalf("pending leaked: %d", c.pending.Load())
	}
}

// TestCoalesceSoloFastPath: an uncontended request must not linger — the
// idle-pipe check flushes it immediately even with a huge window.
func TestCoalesceSoloFastPath(t *testing.T) {
	m, _ := trainedModel(t)
	eng, err := m.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoalescer(func() *core.Model { return m }, eng, CoalesceConfig{Window: 10 * time.Second})
	defer c.Close()
	rng := rand.New(rand.NewSource(21))
	in := coalesceInstance(rng, 80)
	out := make([]float64, 1)
	start := time.Now()
	if _, err := c.Score([]dataset.Instance{in}, out); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("solo request took %v with a 10s window — lingered instead of flushing", d)
	}
	if st := c.Stats(); st.Solo == 0 {
		t.Fatalf("expected a solo flush, got %+v", st)
	}
}

// TestPredictBufferReuse: the pooled decode path must not leak one
// request's instance data into the next when later JSON omits keys.
func TestPredictBufferReuse(t *testing.T) {
	m, _ := trainedModel(t)
	h := New(m)
	srv := httptest.NewServer(h)
	defer srv.Close()

	post := func(body string) (*http.Response, predictResponse) {
		resp, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		var pr predictResponse
		json.NewDecoder(resp.Body).Decode(&pr) //nolint:errcheck
		resp.Body.Close()
		return resp, pr
	}

	// Seed the pool with a wide request.
	resp, _ := post(`{"instances":[{"indices":[1,5,9,12,20],"values":[1,2,3,4,5]},{"indices":[2,3],"values":[1,1]}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed request: %d", resp.StatusCode)
	}
	// An empty instance decoded into the pooled buffer must score as the
	// empty row, not inherit the previous request's features.
	resp, pr := post(`{"instances":[{}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty instance: %d", resp.StatusCode)
	}
	want := m.Predict(dataset.Instance{})
	if len(pr.Scores) != 1 || math.Float64bits(pr.Scores[0]) != math.Float64bits(want) {
		t.Fatalf("empty instance scored %v, want [%v] — pooled buffer leaked state", pr.Scores, want)
	}
	// Indices present with values omitted must be a length mismatch (400),
	// not silently paired with a predecessor's pooled values.
	resp, _ = post(`{"instances":[{"indices":[1,2]}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("indices-without-values: %d, want 400", resp.StatusCode)
	}
}

// TestQuotaEvictionConcurrentChurn hammers the tenant-bucket cap from many
// goroutines (satellite: evict-fullest under concurrent churn, run with
// -race): the map never exceeds the cap, and a drained (hottest) tenant is
// never the eviction victim — fresh buckets have more headroom.
func TestQuotaEvictionConcurrentChurn(t *testing.T) {
	q := NewQuotas(QuotaConfig{Rate: 0.0001, Burst: 2})
	// Drain the hot tenant to zero tokens.
	q.Allow("hot")
	q.Allow("hot")
	if ok, _ := q.Allow("hot"); ok {
		t.Fatal("hot tenant not drained")
	}

	const workers = 8
	const perWorker = 1500 // 12000 distinct tenants, ~3× the cap
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q.Allow(fmt.Sprintf("tenant-%d-%d", w, i))
				if i%64 == 0 {
					if n := q.Tenants(); n > maxTenantBuckets {
						t.Errorf("bucket map grew to %d, cap %d", n, maxTenantBuckets)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if n := q.Tenants(); n > maxTenantBuckets {
		t.Fatalf("bucket map %d after churn, cap %d", n, maxTenantBuckets)
	}
	// The drained bucket must have survived 12000 evict-fullest rounds: a
	// fresh Allow for it is still throttled. (If it had been evicted, the
	// tenant would get a fresh bucket and sail through — a quota reset.)
	if ok, _ := q.Allow("hot"); ok {
		t.Fatal("drained tenant was evicted during churn — quota reset under pressure")
	}
}
