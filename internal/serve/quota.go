package serve

import (
	"math"
	"sync"
	"time"
)

// DefaultTenant is the quota key for requests that carry no X-Tenant header.
const DefaultTenant = "default"

// maxTenantBuckets bounds the bucket map so a client spraying random
// X-Tenant values cannot grow memory without bound; past the cap the
// fullest (least-recently-throttled) bucket is evicted, which loses no
// throttling state worth keeping.
const maxTenantBuckets = 4096

// QuotaConfig is a token-bucket rate: Rate tokens/second refill up to Burst
// capacity, one token per admitted request. Rate <= 0 disables the quota.
type QuotaConfig struct {
	Rate  float64
	Burst float64
}

func (c QuotaConfig) enabled() bool { return c.Rate > 0 }

// Quotas applies per-tenant token-bucket quotas, keyed on the X-Tenant
// request header (DefaultTenant when absent). Tenants without an explicit
// override share the same default shape but each get their own bucket, so
// one tenant's burst never spends another's tokens.
type Quotas struct {
	mu        sync.Mutex
	def       QuotaConfig
	overrides map[string]QuotaConfig
	buckets   map[string]*tokenBucket
	now       func() time.Time // injectable for tests
}

type tokenBucket struct {
	cfg    QuotaConfig
	tokens float64
	last   time.Time
}

// NewQuotas returns a quota table with the given default per-tenant shape.
func NewQuotas(def QuotaConfig) *Quotas {
	return &Quotas{
		def:       def,
		overrides: map[string]QuotaConfig{},
		buckets:   map[string]*tokenBucket{},
		now:       time.Now,
	}
}

// SetTenant installs a per-tenant override of the default bucket shape.
func (q *Quotas) SetTenant(tenant string, cfg QuotaConfig) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.overrides[tenant] = cfg
	delete(q.buckets, tenant) // rebuilt with the new shape on next use
}

// Allow spends one token from the tenant's bucket. When the bucket is
// empty it reports false plus how long until a token refills — the 429
// Retry-After value.
func (q *Quotas) Allow(tenant string) (ok bool, retryAfter time.Duration) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	cfg := q.def
	if o, hit := q.overrides[tenant]; hit {
		cfg = o
	}
	if !cfg.enabled() {
		return true, 0
	}
	now := q.now()
	b := q.buckets[tenant]
	if b == nil {
		if len(q.buckets) >= maxTenantBuckets {
			q.evictFullestLocked()
		}
		b = &tokenBucket{cfg: cfg, tokens: cfg.Burst, last: now}
		q.buckets[tenant] = b
	}
	b.tokens = math.Min(b.cfg.Burst, b.tokens+b.cfg.Rate*now.Sub(b.last).Seconds())
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	// Seconds until one whole token exists, rounded up to a positive value
	// so Retry-After never advertises "now" while we still say no.
	wait := time.Duration((1 - b.tokens) / b.cfg.Rate * float64(time.Second))
	if wait <= 0 {
		wait = time.Second
	}
	return false, wait
}

// Tenants returns the number of live buckets (for tests and metrics).
func (q *Quotas) Tenants() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buckets)
}

// evictFullestLocked drops the bucket closest to full. A full bucket
// carries no throttling debt, so forgetting it is harmless; a drained
// bucket is exactly the state we must keep.
func (q *Quotas) evictFullestLocked() {
	var victim string
	best := -1.0
	for t, b := range q.buckets {
		if headroom := b.tokens / math.Max(b.cfg.Burst, 1); headroom > best {
			best, victim = headroom, t
		}
	}
	delete(q.buckets, victim)
}
