package serve

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"dimboost/internal/core"
	"dimboost/internal/dataset"
	"dimboost/internal/loss"
)

// historyDepth bounds the retained version log.
const historyDepth = 16

// ModelVersion describes one entry of the registry's version history.
type ModelVersion struct {
	ID        int64     `json:"id"`
	Trees     int       `json:"trees"`
	Source    string    `json:"source,omitempty"`
	SwappedAt time.Time `json:"swapped_at"`
}

// Registry is a versioned model store with validated hot swap. An incoming
// model must compile and pass the optional Validate hook (typically a
// held-out probe set, see ProbeValidator) before it becomes current; a
// model that fails either check is discarded and the last-good version
// keeps serving — the rollback is that the commit never happens, observed
// as dimboost_serve_rollbacks_total{reason} and an unchanged /model
// version. Reads are lock-free; swaps serialize on a mutex so the version
// history stays linear.
type Registry struct {
	current atomic.Pointer[registryEntry]

	mu      sync.Mutex
	nextID  int64
	history []ModelVersion

	// Validate, when set, gates every Swap. It runs outside the registry
	// lock-free read path but inside the swap critical section.
	Validate func(*core.Model) error
}

type registryEntry struct {
	model   *core.Model
	version ModelVersion
}

// NewRegistry seeds the registry with the bootstrap model as version 1.
// The initial model is compiled but not validated: refusing to start with
// the only model we have helps nobody, and the operator just loaded it
// deliberately.
func NewRegistry(m *core.Model) *Registry {
	r := &Registry{nextID: 1}
	m.Compiled() //nolint:errcheck // invalid models fall back to the interpreted walk
	v := ModelVersion{ID: 1, Trees: len(m.Trees), Source: "boot", SwappedAt: time.Now()}
	r.current.Store(&registryEntry{model: m, version: v})
	r.history = []ModelVersion{v}
	serveMetrics().trees.Set(int64(len(m.Trees)))
	serveMetrics().modelVersion.Set(1)
	return r
}

// Current returns the serving model and its version. Safe for concurrent
// use with Swap; a reader always observes one coherent (model, version)
// pair.
func (r *Registry) Current() (*core.Model, ModelVersion) {
	e := r.current.Load()
	return e.model, e.version
}

// History returns the retained version log, oldest first.
func (r *Registry) History() []ModelVersion {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]ModelVersion(nil), r.history...)
}

// Swap validates the incoming model and, only if it compiles and passes
// the Validate hook, commits it as the next version. On failure the
// previous model keeps serving, the rollback counter ticks, and the error
// explains which gate refused the model.
func (r *Registry) Swap(m *core.Model, source string) (ModelVersion, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, retained := r.Current()
	if m == nil {
		serveMetrics().rollback("nil_model")
		return retained, fmt.Errorf("serve: nil model; version %d retained", retained.ID)
	}
	if _, err := m.Compiled(); err != nil {
		serveMetrics().rollback("compile")
		return retained, fmt.Errorf("serve: model failed to compile (version %d retained): %w", retained.ID, err)
	}
	if r.Validate != nil {
		if err := r.Validate(m); err != nil {
			serveMetrics().rollback("validate")
			return retained, fmt.Errorf("serve: model failed validation (version %d retained): %w", retained.ID, err)
		}
	}
	r.nextID++
	v := ModelVersion{ID: r.nextID, Trees: len(m.Trees), Source: source, SwappedAt: time.Now()}
	r.current.Store(&registryEntry{model: m, version: v})
	r.history = append(r.history, v)
	if len(r.history) > historyDepth {
		r.history = r.history[len(r.history)-historyDepth:]
	}
	serveMetrics().trees.Set(int64(len(m.Trees)))
	serveMetrics().modelVersion.Set(v.ID)
	return v, nil
}

// ProbeValidator returns a Validate hook that scores a held-out probe set
// with the candidate model and rejects it when any score is non-finite,
// when the compiled engine (whichever backend auto-selection picked for
// this ensemble) disagrees bit-for-bit with the interpreted reference walk
// on any probe row, or when maxMeanLoss > 0 and the probe's mean loss
// exceeds it. This is the sanity gate between "the file decoded" and "we
// serve it to everyone": a truncated or mistrained model that still parses
// gets caught here, and so would a miscompiled scoring backend — the swap
// rolls back instead of serving wrong scores.
func ProbeValidator(probe *dataset.Dataset, maxMeanLoss float64) func(*core.Model) error {
	return func(m *core.Model) error {
		if probe == nil || probe.NumRows() == 0 {
			return nil
		}
		preds := m.PredictBatch(probe)
		ref := m.PredictBatchInterpreted(probe)
		for i, p := range preds {
			if math.IsNaN(p) || math.IsInf(p, 0) {
				return fmt.Errorf("probe row %d scored non-finite %v", i, p)
			}
			if math.Float64bits(p) != math.Float64bits(ref[i]) {
				eng, _ := m.Compiled()
				return fmt.Errorf("probe row %d: %v engine scored %v, interpreted walk %v",
					i, eng.Backend(), p, ref[i])
			}
		}
		if maxMeanLoss > 0 {
			ml := loss.MeanLoss(loss.New(m.Loss), probe.Labels, preds)
			if math.IsNaN(ml) || ml > maxMeanLoss {
				return fmt.Errorf("probe mean loss %.6f exceeds limit %.6f", ml, maxMeanLoss)
			}
		}
		return nil
	}
}
