package serve

import (
	"strconv"
	"sync"

	"dimboost/internal/obs"
)

// serveObs groups the scoring server's instruments. Per-path/per-code
// request counters are resolved through the registry on demand — the set of
// served paths is small and fixed (unknown paths collapse to "other"), so
// cardinality stays bounded.
type serveObs struct {
	reg        *obs.Registry
	inflight   *obs.Gauge
	trees      *obs.Gauge
	reloads    *obs.Counter
	reloadErrs *obs.Counter
}

var (
	soOnce sync.Once
	soInst *serveObs
)

func serveMetrics() *serveObs {
	soOnce.Do(func() {
		r := obs.Default()
		soInst = &serveObs{
			reg:        r,
			inflight:   r.Gauge("dimboost_http_inflight", "HTTP requests currently in flight."),
			trees:      r.Gauge("dimboost_serve_model_trees", "Trees in the currently served model."),
			reloads:    r.Counter("dimboost_serve_reloads_total", "Successful model reloads."),
			reloadErrs: r.Counter("dimboost_serve_reload_errors_total", "Failed model reload attempts."),
		}
	})
	return soInst
}

// request records one finished HTTP request.
func (m *serveObs) request(path string, code int, secs float64) {
	m.reg.Counter("dimboost_http_requests_total", "HTTP requests served, by path and status code.",
		obs.L("path", path), obs.L("code", strconv.Itoa(code))).Inc()
	m.reg.Histogram("dimboost_http_request_seconds", "HTTP request latency, by path.",
		nil, obs.L("path", path)).Observe(secs)
}

// metricPath maps a request path onto the bounded label set.
func metricPath(p string) string {
	switch p {
	case "/healthz", "/model", "/importance", "/predict", "/model/reload", "/metrics", "/debug/obs":
		return p
	}
	return "other"
}
