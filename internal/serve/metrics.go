package serve

import (
	"strconv"
	"sync"

	"dimboost/internal/obs"
)

// serveObs groups the scoring server's instruments. Per-path/per-code
// request counters are resolved through the registry on demand — the set of
// served paths is small and fixed (unknown paths collapse to "other"), so
// cardinality stays bounded. Shed and rollback reasons are likewise a
// small fixed vocabulary.
type serveObs struct {
	reg               *obs.Registry
	inflight          *obs.Gauge
	trees             *obs.Gauge
	modelVersion      *obs.Gauge
	reloads           *obs.Counter
	reloadErrs        *obs.Counter
	queueDepth        *obs.Gauge
	queueWait         *obs.Histogram
	coalesceWait      *obs.Histogram
	coalesceOccupancy *obs.Histogram
}

// waitBuckets resolves admission and coalesce waits down to 10µs: both are
// routinely sub-millisecond (the coalesce linger window defaults to 500µs),
// and the default bucket ladder's 250µs→1ms gap hid every p99 of interest.
var waitBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 0.1, 0.25, 1, 2.5,
}

// occupancyBuckets covers requests-per-flush from solo to a full chunk grid.
var occupancyBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

var (
	soOnce sync.Once
	soInst *serveObs
)

func serveMetrics() *serveObs {
	soOnce.Do(func() {
		r := obs.Default()
		soInst = &serveObs{
			reg:          r,
			inflight:     r.Gauge("dimboost_http_inflight", "HTTP requests currently in flight."),
			trees:        r.Gauge("dimboost_serve_model_trees", "Trees in the currently served model."),
			modelVersion: r.Gauge("dimboost_serve_model_version", "Registry version of the currently served model."),
			reloads:      r.Counter("dimboost_serve_reloads_total", "Successful model reloads."),
			reloadErrs:   r.Counter("dimboost_serve_reload_errors_total", "Failed model reload attempts."),
			queueDepth:   r.Gauge("dimboost_serve_queue_depth", "Requests currently waiting for an admission slot."),
			queueWait: r.Histogram("dimboost_serve_queue_wait_seconds",
				"Time requests spent queued for admission (both admitted and shed).", waitBuckets),
			coalesceWait: r.Histogram("dimboost_serve_coalesce_wait_seconds",
				"Time requests spent parked in the coalescer before their batch was scored.", waitBuckets),
			coalesceOccupancy: r.Histogram("dimboost_serve_coalesce_batch_occupancy",
				"Requests merged into each coalesced scoring batch.", occupancyBuckets),
		}
	})
	return soInst
}

// request records one finished HTTP request.
func (m *serveObs) request(path string, code int, secs float64) {
	m.reg.Counter("dimboost_http_requests_total", "HTTP requests served, by path and status code.",
		obs.L("path", path), obs.L("code", strconv.Itoa(code))).Inc()
	m.reg.Histogram("dimboost_http_request_seconds", "HTTP request latency, by path.",
		nil, obs.L("path", path)).Observe(secs)
}

// coalesceFlush records one scored batch by its flush reason: full (batch
// cap reached), linger (window expired), solo (pipe idle — nothing left to
// linger for; usually, but not necessarily, a single-request batch, since a
// greedy drain may have merged a burst first), drain (Close flushed the
// remainder).
func (m *serveObs) coalesceFlush(reason string) {
	m.reg.Counter("dimboost_serve_coalesce_flushes_total",
		"Coalesced batches scored, by flush reason.", obs.L("reason", reason)).Inc()
}

// shed records one request refused by the admission layer. Reasons:
// quota, queue_full, queue_timeout, draining, canceled, coalesce_full.
func (m *serveObs) shed(reason string) {
	m.reg.Counter("dimboost_serve_shed_total", "Requests shed by the admission layer, by reason.",
		obs.L("reason", reason)).Inc()
}

// rollback records one refused model swap (the last-good version keeps
// serving). Reasons: compile, validate, nil_model.
func (m *serveObs) rollback(reason string) {
	m.reg.Counter("dimboost_serve_rollbacks_total",
		"Model swaps refused by validation or compile; the previous version was retained.",
		obs.L("reason", reason)).Inc()
}

// metricPath maps a request path onto the bounded label set.
func metricPath(p string) string {
	switch p {
	case "/healthz", "/model", "/importance", "/predict", "/model/reload", "/metrics", "/debug/obs":
		return p
	}
	return "other"
}
