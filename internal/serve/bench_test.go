package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"dimboost/internal/core"
	"dimboost/internal/dataset"
)

// benchModel trains a small model once per benchmark binary.
func benchModel(b *testing.B) *core.Model {
	b.Helper()
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 400, NumFeatures: 60, AvgNNZ: 8, Seed: 5, Zipf: 1.2})
	cfg := core.DefaultConfig()
	cfg.NumTrees = 4
	cfg.MaxDepth = 4
	cfg.Parallelism = 1
	m, err := core.Train(d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkPredictHandler measures the single-instance /predict hot path
// end to end (mux, admission, pooled JSON decode, scoring, encode) without
// a network in between. ReportAllocs tracks the decode-buffer pooling: the
// request-scoped instance/score/probability slices must come from the pool,
// not fresh per request.
func BenchmarkPredictHandler(b *testing.B) {
	m := benchModel(b)
	rng := rand.New(rand.NewSource(7))
	in := coalesceInstance(rng, 60)
	body, err := json.Marshal(map[string]any{"instances": []map[string]any{
		{"indices": in.Indices, "values": in.Values},
	}})
	if err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, h *Handler) {
		b.Helper()
		req := httptest.NewRequest("POST", "/predict", nil)
		req.Header.Set("Content-Type", "application/json")
		reader := bytes.NewReader(body)
		// Warm the pools once.
		req.Body = readCloser{reader}
		h.ServeHTTP(httptest.NewRecorder(), req)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reader.Reset(body)
			req.Body = readCloser{reader}
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != 200 {
				b.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
		}
	}

	b.Run("uncoalesced", func(b *testing.B) {
		run(b, New(m))
	})
	b.Run("coalesced", func(b *testing.B) {
		h := New(m)
		h.EnableCoalescing(CoalesceConfig{Window: 200 * time.Microsecond})
		defer h.Close()
		run(b, h)
	})
}

type readCloser struct{ *bytes.Reader }

func (readCloser) Close() error { return nil }
