package serve

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"dimboost/internal/core"
	"dimboost/internal/obs"
	"dimboost/internal/predict"
	"dimboost/internal/tree"
)

// corruptModel returns a model whose tree fails validation, standing in
// for a truncated or bit-rotted model file that still gob-decodes.
func corruptModel() *core.Model {
	return &core.Model{Trees: []*tree.Tree{{MaxDepth: 2, Nodes: make([]tree.Node, 7)}}}
}

func rollbacks(reason string) int64 {
	return obs.Default().Counter("dimboost_serve_rollbacks_total",
		"Model swaps refused by validation or compile; the previous version was retained.",
		obs.L("reason", reason)).Value()
}

func TestRegistrySwapAdvancesVersion(t *testing.T) {
	m1, _ := trainedModel(t)
	r := NewRegistry(m1)
	if _, v := r.Current(); v.ID != 1 || v.Trees != len(m1.Trees) {
		t.Fatalf("boot version %+v", v)
	}

	m2 := &core.Model{Loss: m1.Loss, BaseScore: m1.BaseScore, Trees: m1.Trees[:1]}
	v, err := r.Swap(m2, "reload")
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != 2 || v.Trees != 1 || v.Source != "reload" {
		t.Fatalf("swapped version %+v", v)
	}
	cur, cv := r.Current()
	if cur != m2 || cv.ID != 2 {
		t.Fatalf("current (%p, %+v), want m2 version 2", cur, cv)
	}
	hist := r.History()
	if len(hist) != 2 || hist[0].ID != 1 || hist[1].ID != 2 {
		t.Fatalf("history %+v", hist)
	}
}

func TestRegistryRollbackOnCompileFailure(t *testing.T) {
	m1, _ := trainedModel(t)
	r := NewRegistry(m1)
	before := rollbacks("compile")

	if _, err := r.Swap(corruptModel(), "reload"); err == nil {
		t.Fatal("corrupt model swapped in")
	} else if !strings.Contains(err.Error(), "version 1 retained") {
		t.Fatalf("error must name the retained version: %v", err)
	}
	cur, v := r.Current()
	if cur != m1 || v.ID != 1 {
		t.Fatalf("after failed swap current is (%p, v%d), want original v1", cur, v.ID)
	}
	if got := rollbacks("compile"); got != before+1 {
		t.Fatalf("rollback counter %d, want %d", got, before+1)
	}
	if len(r.History()) != 1 {
		t.Fatalf("failed swap entered history: %+v", r.History())
	}
}

func TestRegistryRollbackOnValidationFailure(t *testing.T) {
	m1, _ := trainedModel(t)
	r := NewRegistry(m1)
	r.Validate = func(*core.Model) error { return fmt.Errorf("probe loss through the roof") }
	before := rollbacks("validate")

	m2 := &core.Model{Loss: m1.Loss, BaseScore: m1.BaseScore, Trees: m1.Trees[:1]}
	if _, err := r.Swap(m2, "reload"); err == nil {
		t.Fatal("validation-failing model swapped in")
	}
	if cur, v := r.Current(); cur != m1 || v.ID != 1 {
		t.Fatalf("validation failure must retain v1, got v%d", v.ID)
	}
	if got := rollbacks("validate"); got != before+1 {
		t.Fatalf("rollback counter %d, want %d", got, before+1)
	}

	// Clearing the gate lets the same model through, as version 2.
	r.Validate = nil
	v, err := r.Swap(m2, "reload")
	if err != nil || v.ID != 2 {
		t.Fatalf("swap after clearing validation: v%d, %v", v.ID, err)
	}
}

func TestProbeValidator(t *testing.T) {
	m, d := trainedModel(t)
	probe := d.Subset(0, 50)

	if err := ProbeValidator(probe, 0)(m); err != nil {
		t.Fatalf("trained model must pass its own data: %v", err)
	}
	// A generous loss bound passes; an absurdly tight one rejects.
	if err := ProbeValidator(probe, 100)(m); err != nil {
		t.Fatalf("loose loss bound: %v", err)
	}
	if err := ProbeValidator(probe, 1e-9)(m); err == nil {
		t.Fatal("tight loss bound must reject")
	} else if !strings.Contains(err.Error(), "mean loss") {
		t.Fatalf("unexpected rejection: %v", err)
	}
	// Nil / empty probe disables the check rather than failing.
	if err := ProbeValidator(nil, 0)(m); err != nil {
		t.Fatalf("nil probe: %v", err)
	}
}

func TestProbeValidatorRejectsNonFinite(t *testing.T) {
	m, d := trainedModel(t)
	probe := d.Subset(0, 10)
	// A leaf weight of +Inf makes every score non-finite without breaking
	// tree structure validation.
	bad := &core.Model{Loss: m.Loss, BaseScore: m.BaseScore}
	for _, tr := range m.Trees {
		cp := &tree.Tree{MaxDepth: tr.MaxDepth, Nodes: append([]tree.Node(nil), tr.Nodes...)}
		bad.Trees = append(bad.Trees, cp)
	}
	for i := range bad.Trees[0].Nodes {
		n := &bad.Trees[0].Nodes[i]
		if n.Used && n.Leaf {
			n.Weight = math.Inf(1)
			break
		}
	}
	if err := ProbeValidator(probe, 0)(bad); err == nil {
		t.Fatal("non-finite scores must fail validation")
	} else if !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("unexpected rejection: %v", err)
	}
}

// TestProbeValidatorCatchesEngineDrift: the probe gate cross-checks the
// compiled engine against the interpreted walk bit for bit, so an engine
// that no longer matches the ensemble (here: a leaf weight mutated in place
// after compilation, which the snapshot-identity cache cannot see) is
// refused instead of served. Depth-4 trees auto-select the bitvector
// backend, so this also exercises the new backend through the swap gate.
func TestProbeValidatorCatchesEngineDrift(t *testing.T) {
	m, d := trainedModel(t)
	probe := d.Subset(0, 20)
	eng, err := m.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	if eng.Backend() != predict.BackendBitvector {
		t.Fatalf("depth-4 ensemble auto-selected %v, want bitvector", eng.Backend())
	}
	if err := ProbeValidator(probe, 0)(m); err != nil {
		t.Fatalf("fresh engine must pass: %v", err)
	}
	for i := range m.Trees[0].Nodes {
		n := &m.Trees[0].Nodes[i]
		if n.Used && n.Leaf {
			n.Weight += 1000
			break
		}
	}
	if err := ProbeValidator(probe, 0)(m); err == nil {
		t.Fatal("engine drifted from the ensemble and still passed")
	} else if !strings.Contains(err.Error(), "interpreted walk") {
		t.Fatalf("unexpected rejection: %v", err)
	}
}

func TestRegistryHistoryBounded(t *testing.T) {
	m1, _ := trainedModel(t)
	r := NewRegistry(m1)
	m2 := &core.Model{Loss: m1.Loss, BaseScore: m1.BaseScore, Trees: m1.Trees[:1]}
	for i := 0; i < historyDepth+10; i++ {
		if _, err := r.Swap(m2, "reload"); err != nil {
			t.Fatal(err)
		}
	}
	hist := r.History()
	if len(hist) != historyDepth {
		t.Fatalf("history length %d, want %d", len(hist), historyDepth)
	}
	if hist[len(hist)-1].ID != int64(historyDepth+11) {
		t.Fatalf("latest version %d, want %d", hist[len(hist)-1].ID, historyDepth+11)
	}
}
