// Package serve exposes a trained GBDT model over HTTP — the scoring-side
// counterpart of the training system, for deployments that serve the model
// the paper's pipeline produces. Endpoints:
//
//	GET  /healthz            liveness probe (503 while draining)
//	GET  /model              model summary (loss, trees, node counts)
//	GET  /importance?top=N   gain-based feature importance
//	POST /predict            score instances (JSON or LibSVM lines)
//	POST /model/reload       re-read the model via OnReload (when set)
//	GET  /metrics            Prometheus text exposition
//	GET  /debug/obs          metrics + span timeline as JSON
//
// The handler is safe for concurrent use and supports atomic hot model
// swaps.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"dimboost/internal/core"
	"dimboost/internal/dataset"
	"dimboost/internal/loss"
	"dimboost/internal/obs"
)

// Handler serves a model over HTTP.
type Handler struct {
	model atomic.Pointer[core.Model]
	mux   *http.ServeMux
	// MaxBodyBytes caps request bodies (default 32 MiB).
	MaxBodyBytes int64
	// OnReload, when set, enables POST /model/reload: it re-reads the model
	// from wherever it came from and the handler swaps the result in.
	OnReload func() (*core.Model, error)

	draining atomic.Bool
}

// New returns a handler serving the given model. The model's inference
// engine is compiled eagerly so the first /predict request doesn't pay the
// compile latency.
func New(m *core.Model) *Handler {
	h := &Handler{mux: http.NewServeMux(), MaxBodyBytes: 32 << 20}
	h.model.Store(m)
	m.Compiled() //nolint:errcheck // invalid models fall back to the interpreted walk
	serveMetrics().trees.Set(int64(len(m.Trees)))
	h.mux.HandleFunc("GET /healthz", h.healthz)
	h.mux.HandleFunc("GET /model", h.modelInfo)
	h.mux.HandleFunc("GET /importance", h.importance)
	h.mux.HandleFunc("POST /predict", h.predict)
	h.mux.HandleFunc("POST /model/reload", h.reload)
	h.mux.Handle("GET /metrics", obs.Default().Handler())
	h.mux.Handle("GET /debug/obs", obs.Default().DebugHandler())
	return h
}

// statusWriter captures the response status for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	m := serveMetrics()
	m.inflight.Inc()
	defer m.inflight.Dec()
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	h.mux.ServeHTTP(sw, r)
	m.request(metricPath(r.URL.Path), sw.code, time.Since(start).Seconds())
}

// Swap atomically replaces the served model (hot reload). The incoming
// model's engine is compiled before the swap, so requests never observe a
// model whose compiled path is cold.
func (h *Handler) Swap(m *core.Model) {
	m.Compiled() //nolint:errcheck // invalid models fall back to the interpreted walk
	h.model.Store(m)
	serveMetrics().trees.Set(int64(len(m.Trees)))
}

// SetDraining flips the health probe: while draining, /healthz answers 503
// so load balancers stop routing here, while in-flight and follow-up
// requests still succeed.
func (h *Handler) SetDraining(v bool) { h.draining.Store(v) }

func (h *Handler) healthz(w http.ResponseWriter, _ *http.Request) {
	if h.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n") //nolint:errcheck
		return
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n") //nolint:errcheck
}

func (h *Handler) reload(w http.ResponseWriter, _ *http.Request) {
	if h.OnReload == nil {
		httpError(w, http.StatusNotFound, "reload not enabled")
		return
	}
	m, err := h.OnReload()
	if err != nil {
		serveMetrics().reloadErrs.Inc()
		httpError(w, http.StatusInternalServerError, "reload: %v", err)
		return
	}
	h.Swap(m)
	serveMetrics().reloads.Inc()
	writeJSON(w, http.StatusOK, map[string]int{"trees": len(m.Trees)})
}

type modelInfo struct {
	Loss          string `json:"loss"`
	Trees         int    `json:"trees"`
	InternalNodes int    `json:"internal_nodes"`
	Leaves        int    `json:"leaves"`
	FeaturesUsed  int    `json:"features_used"`
}

func (h *Handler) modelInfo(w http.ResponseWriter, _ *http.Request) {
	m := h.model.Load()
	internal, leaves := m.NumNodes()
	writeJSON(w, http.StatusOK, modelInfo{
		Loss:          m.Loss.String(),
		Trees:         len(m.Trees),
		InternalNodes: internal,
		Leaves:        leaves,
		FeaturesUsed:  len(m.Importance()),
	})
}

type importanceEntry struct {
	Feature int32   `json:"feature"`
	Gain    float64 `json:"gain"`
	Splits  int     `json:"splits"`
}

func (h *Handler) importance(w http.ResponseWriter, r *http.Request) {
	top := 20
	if s := r.URL.Query().Get("top"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			httpError(w, http.StatusBadRequest, "bad top parameter %q", s)
			return
		}
		top = v
	}
	imp := h.model.Load().Importance()
	if len(imp) > top {
		imp = imp[:top]
	}
	out := make([]importanceEntry, len(imp))
	for i, fi := range imp {
		out[i] = importanceEntry{Feature: fi.Feature, Gain: fi.Gain, Splits: fi.Splits}
	}
	writeJSON(w, http.StatusOK, out)
}

// predictRequest is the JSON scoring request.
type predictRequest struct {
	Instances []jsonInstance `json:"instances"`
}

type jsonInstance struct {
	Indices []int32   `json:"indices"`
	Values  []float32 `json:"values"`
}

// predictResponse is the JSON scoring response.
type predictResponse struct {
	Scores []float64 `json:"scores"`
	// Probabilities is present for logistic models.
	Probabilities []float64 `json:"probabilities,omitempty"`
}

func (h *Handler) predict(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, h.MaxBodyBytes)
	defer body.Close()

	var instances []dataset.Instance
	ct := r.Header.Get("Content-Type")
	switch {
	case strings.HasPrefix(ct, "application/json"), ct == "":
		var req predictRequest
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			httpError(w, bodyErrStatus(err), "bad JSON: %v", err)
			return
		}
		for i, ji := range req.Instances {
			in, err := jsonToInstance(ji)
			if err != nil {
				httpError(w, http.StatusBadRequest, "instance %d: %v", i, err)
				return
			}
			instances = append(instances, in)
		}
	case strings.HasPrefix(ct, "text/libsvm"):
		d, err := dataset.ReadLibSVM(body, 0)
		if err != nil {
			httpError(w, bodyErrStatus(err), "bad LibSVM body: %v", err)
			return
		}
		for i := 0; i < d.NumRows(); i++ {
			instances = append(instances, d.Row(i))
		}
	default:
		httpError(w, http.StatusUnsupportedMediaType, "use application/json or text/libsvm")
		return
	}
	if len(instances) == 0 {
		httpError(w, http.StatusBadRequest, "no instances")
		return
	}

	m := h.model.Load()
	var resp predictResponse
	if eng, err := m.Compiled(); err == nil {
		resp.Scores = eng.PredictInstances(instances)
	} else {
		resp.Scores = make([]float64, len(instances))
		for i, in := range instances {
			resp.Scores[i] = m.Predict(in)
		}
	}
	if m.Loss == loss.Logistic {
		resp.Probabilities = make([]float64, len(instances))
		for i, s := range resp.Scores {
			resp.Probabilities[i] = loss.Sigmoid(s)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// jsonToInstance validates and sorts a JSON instance into dataset form.
func jsonToInstance(ji jsonInstance) (dataset.Instance, error) {
	if len(ji.Indices) != len(ji.Values) {
		return dataset.Instance{}, fmt.Errorf("%d indices vs %d values", len(ji.Indices), len(ji.Values))
	}
	type pair struct {
		f int32
		v float32
	}
	pairs := make([]pair, len(ji.Indices))
	for i := range ji.Indices {
		if ji.Indices[i] < 0 {
			return dataset.Instance{}, fmt.Errorf("negative feature index %d", ji.Indices[i])
		}
		pairs[i] = pair{ji.Indices[i], ji.Values[i]}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].f < pairs[b].f })
	idx := make([]int32, 0, len(pairs))
	vals := make([]float32, 0, len(pairs))
	for i, p := range pairs {
		if i > 0 && p.f == pairs[i-1].f {
			return dataset.Instance{}, fmt.Errorf("duplicate feature index %d", p.f)
		}
		idx = append(idx, p.f)
		vals = append(vals, p.v)
	}
	return dataset.Instance{Indices: idx, Values: vals}, nil
}

// bodyErrStatus distinguishes a body that tripped MaxBytesReader (413) from
// one that merely failed to parse (400).
func bodyErrStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
