// Package serve exposes a trained GBDT model over HTTP — the scoring-side
// counterpart of the training system, for deployments that serve the model
// the paper's pipeline produces. Endpoints:
//
//	GET  /healthz            liveness probe (503 while draining)
//	GET  /model              model summary + registry version history
//	GET  /importance?top=N   gain-based feature importance
//	POST /predict            score instances (JSON or LibSVM lines)
//	POST /model/reload       re-read the model via OnReload (when set)
//	GET  /metrics            Prometheus text exposition
//	GET  /debug/obs          metrics + span timeline as JSON
//
// The handler is safe for concurrent use and supports validated atomic hot
// model swaps with rollback (Registry). The /predict path sits behind an
// admission layer: per-tenant token-bucket quotas (X-Tenant header, 429 +
// Retry-After on violation) and a concurrency limiter with a bounded
// deadline-aware wait queue (503 + Retry-After when saturated), so the
// process sheds overload instead of collapsing under it.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dimboost/internal/core"
	"dimboost/internal/dataset"
	"dimboost/internal/loss"
	"dimboost/internal/obs"
	"dimboost/internal/predict"
)

// Handler serves a model over HTTP.
type Handler struct {
	registry *Registry
	mux      *http.ServeMux
	// MaxBodyBytes caps request bodies (default 32 MiB).
	MaxBodyBytes int64
	// OnReload, when set, enables POST /model/reload: it re-reads the model
	// from wherever it came from and the handler swaps the result in through
	// the registry's validate-then-commit path. Reloads are single-flight.
	OnReload func() (*core.Model, error)
	// Limiter, when set, bounds concurrent /predict work (admission
	// control). Configure before serving traffic.
	Limiter *Limiter
	// Quota, when set, applies per-tenant token buckets to /predict keyed
	// on the X-Tenant header. Configure before serving traffic.
	Quota *Quotas

	// coalescer, when set (EnableCoalescing, before serving traffic),
	// batches concurrent /predict scoring into single engine calls. A
	// coalesced request releases its admission slot before parking — the
	// limiter keeps bounding concurrent decode/score work while the
	// coalescer's own MaxPending bounds the parked queue.
	coalescer *Coalescer

	reloadMu sync.Mutex
	draining atomic.Bool

	// predictHook, when set (tests), runs after admission while the request
	// holds its concurrency slot — the seam overload tests use to pin
	// in-flight work and count true scoring concurrency.
	predictHook func()
}

// New returns a handler serving the given model as registry version 1. The
// model's inference engine is compiled eagerly so the first /predict
// request doesn't pay the compile latency.
func New(m *core.Model) *Handler {
	h := &Handler{
		registry:     NewRegistry(m),
		mux:          http.NewServeMux(),
		MaxBodyBytes: 32 << 20,
	}
	h.mux.HandleFunc("GET /healthz", h.healthz)
	h.mux.HandleFunc("GET /model", h.modelInfo)
	h.mux.HandleFunc("GET /importance", h.importance)
	h.mux.HandleFunc("POST /predict", h.predict)
	h.mux.HandleFunc("POST /model/reload", h.reload)
	h.mux.Handle("GET /metrics", obs.Default().Handler())
	h.mux.Handle("GET /debug/obs", obs.Default().DebugHandler())
	return h
}

// Registry exposes the handler's model registry so operators can install a
// validation hook (Registry.Validate) or inspect version history.
func (h *Handler) Registry() *Registry { return h.registry }

// EnableCoalescing turns on request coalescing for /predict scoring (see
// coalesce.go). Call before serving traffic. Batches resolve the model
// through the registry at flush time, so hot swaps stay coherent per batch.
func (h *Handler) EnableCoalescing(cfg CoalesceConfig) *Coalescer {
	m, _ := h.registry.Current()
	var eng *predict.Engine
	if e, err := m.Compiled(); err == nil {
		eng = e
	}
	h.coalescer = NewCoalescer(func() *core.Model {
		cm, _ := h.registry.Current()
		return cm
	}, eng, cfg)
	return h.coalescer
}

// Coalescer returns the coalescing layer, or nil when disabled.
func (h *Handler) Coalescer() *Coalescer { return h.coalescer }

// Close releases the handler's background resources: it drains the
// coalescer (every parked request is scored — no waiter is stranded) and
// stops its scorer. Call after the HTTP server has stopped accepting work;
// requests that slip in afterwards fall back to direct scoring.
func (h *Handler) Close() {
	if h.coalescer != nil {
		h.coalescer.Close()
	}
}

// statusWriter captures the response status for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	m := serveMetrics()
	m.inflight.Inc()
	defer m.inflight.Dec()
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	h.mux.ServeHTTP(sw, r)
	m.request(metricPath(r.URL.Path), sw.code, time.Since(start).Seconds())
}

// Swap replaces the served model through the registry's validated hot-swap
// path: the incoming model is compiled and (when Registry.Validate is set)
// probe-checked before the atomic commit; on failure the previous version
// keeps serving and the error reports the retained version.
func (h *Handler) Swap(m *core.Model) error {
	_, err := h.registry.Swap(m, "swap")
	return err
}

// SetDraining flips the server into shutdown mode: /healthz answers 503 so
// load balancers stop routing here, and new /predict work is refused
// immediately — while requests already admitted or queued still complete.
func (h *Handler) SetDraining(v bool) { h.draining.Store(v) }

func (h *Handler) healthz(w http.ResponseWriter, _ *http.Request) {
	if h.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n") //nolint:errcheck
		return
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n") //nolint:errcheck
}

func (h *Handler) reload(w http.ResponseWriter, _ *http.Request) {
	if h.OnReload == nil {
		httpError(w, http.StatusNotFound, "reload not enabled")
		return
	}
	// Single-flight: concurrent reloads would interleave OnReload and Swap
	// and scramble the registry's version history.
	h.reloadMu.Lock()
	defer h.reloadMu.Unlock()
	m, err := h.OnReload()
	if err != nil {
		serveMetrics().reloadErrs.Inc()
		httpError(w, http.StatusInternalServerError, "reload: %v", err)
		return
	}
	v, err := h.registry.Swap(m, "reload")
	if err != nil {
		// Validation or compile refused the model: the previous version is
		// still serving (auto-rollback) and the client learns which one.
		serveMetrics().reloadErrs.Inc()
		httpError(w, http.StatusUnprocessableEntity, "reload rejected: %v", err)
		return
	}
	serveMetrics().reloads.Inc()
	writeJSON(w, http.StatusOK, map[string]any{"trees": len(m.Trees), "version": v.ID})
}

type modelInfo struct {
	Loss          string         `json:"loss"`
	Trees         int            `json:"trees"`
	InternalNodes int            `json:"internal_nodes"`
	Leaves        int            `json:"leaves"`
	FeaturesUsed  int            `json:"features_used"`
	Version       int64          `json:"version"`
	History       []ModelVersion `json:"history"`
}

func (h *Handler) modelInfo(w http.ResponseWriter, _ *http.Request) {
	m, v := h.registry.Current()
	internal, leaves := m.NumNodes()
	writeJSON(w, http.StatusOK, modelInfo{
		Loss:          m.Loss.String(),
		Trees:         len(m.Trees),
		InternalNodes: internal,
		Leaves:        leaves,
		FeaturesUsed:  len(m.Importance()),
		Version:       v.ID,
		History:       h.registry.History(),
	})
}

type importanceEntry struct {
	Feature int32   `json:"feature"`
	Gain    float64 `json:"gain"`
	Splits  int     `json:"splits"`
}

func (h *Handler) importance(w http.ResponseWriter, r *http.Request) {
	top := 20
	if s := r.URL.Query().Get("top"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			httpError(w, http.StatusBadRequest, "bad top parameter %q", s)
			return
		}
		top = v
	}
	m, _ := h.registry.Current()
	imp := m.Importance()
	if len(imp) > top {
		imp = imp[:top]
	}
	out := make([]importanceEntry, len(imp))
	for i, fi := range imp {
		out[i] = importanceEntry{Feature: fi.Feature, Gain: fi.Gain, Splits: fi.Splits}
	}
	writeJSON(w, http.StatusOK, out)
}

// predictRequest is the JSON scoring request.
type predictRequest struct {
	Instances []jsonInstance `json:"instances"`
}

type jsonInstance struct {
	Indices []int32   `json:"indices"`
	Values  []float32 `json:"values"`
}

// predictResponse is the JSON scoring response.
type predictResponse struct {
	Scores []float64 `json:"scores"`
	// Probabilities is present for logistic models.
	Probabilities []float64 `json:"probabilities,omitempty"`
}

// admit runs the /predict request through quota and concurrency admission.
// It reports whether the request may proceed; when it may not, the 429/503
// response (with Retry-After) has already been written.
func (h *Handler) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if h.draining.Load() {
		serveMetrics().shed("draining")
		shedError(w, http.StatusServiceUnavailable, time.Second, "draining")
		return nil, false
	}
	if h.Quota != nil {
		tenant := r.Header.Get("X-Tenant")
		if allowed, retryAfter := h.Quota.Allow(tenant); !allowed {
			serveMetrics().shed("quota")
			shedError(w, http.StatusTooManyRequests, retryAfter,
				"tenant %q over quota", tenantLabel(tenant))
			return nil, false
		}
	}
	if h.Limiter == nil {
		return func() {}, true
	}
	release, err := h.Limiter.Acquire(r.Context(), &h.draining)
	if err == nil {
		return release, true
	}
	retryAfter := h.Limiter.Config().QueueTimeout
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	switch {
	case errors.Is(err, ErrQueueFull):
		serveMetrics().shed("queue_full")
		shedError(w, http.StatusServiceUnavailable, retryAfter, "admission queue full")
	case errors.Is(err, ErrQueueTimeout):
		serveMetrics().shed("queue_timeout")
		shedError(w, http.StatusServiceUnavailable, retryAfter, "timed out waiting for admission")
	case errors.Is(err, ErrDraining):
		serveMetrics().shed("draining")
		shedError(w, http.StatusServiceUnavailable, time.Second, "draining")
	default: // ErrCanceled: the client is gone; the write goes nowhere.
		serveMetrics().shed("canceled")
		shedError(w, http.StatusServiceUnavailable, retryAfter, "canceled while queued")
	}
	return nil, false
}

// predictBuf is the pooled per-request scoring state: the JSON decode
// target (whose per-instance Indices/Values slices are reused across
// requests), the validated instances, and the score/probability buffers.
// One request checks a buf out for its whole lifetime — decode through
// response encode — and returns it afterwards, so the steady-state JSON
// path stops allocating per request.
type predictBuf struct {
	req       predictRequest
	instances []dataset.Instance
	scores    []float64
	probs     []float64
	pairs     []featPair
}

var predictBufPool = sync.Pool{New: func() any { return new(predictBuf) }}

// resetReq prepares the decode target for reuse: every element within
// capacity gets its inner slices truncated (capacity retained). Decoding
// appends into that capacity, and an instance whose JSON omits a key sees
// the truncated empty slice rather than a stale predecessor's data.
func (b *predictBuf) resetReq() {
	s := b.req.Instances[:cap(b.req.Instances)]
	for i := range s {
		s[i].Indices = s[i].Indices[:0]
		s[i].Values = s[i].Values[:0]
	}
	b.req.Instances = s[:0]
}

func (h *Handler) predict(w http.ResponseWriter, r *http.Request) {
	release, ok := h.admit(w, r)
	if !ok {
		return
	}
	released := false
	defer func() {
		if !released {
			release()
		}
	}()
	if h.predictHook != nil {
		h.predictHook()
	}

	body := http.MaxBytesReader(w, r.Body, h.MaxBodyBytes)
	defer body.Close()

	buf := predictBufPool.Get().(*predictBuf)
	defer predictBufPool.Put(buf)

	instances := buf.instances[:0]
	ct := r.Header.Get("Content-Type")
	switch {
	case strings.HasPrefix(ct, "application/json"), ct == "":
		buf.resetReq()
		if err := json.NewDecoder(body).Decode(&buf.req); err != nil {
			httpError(w, bodyErrStatus(err), "bad JSON: %v", err)
			return
		}
		for i, ji := range buf.req.Instances {
			var dst dataset.Instance
			if i < len(buf.instances) {
				dst = buf.instances[i] // reuse the prior request's backing slices
			}
			in, err := jsonToInstanceInto(ji, dst, buf)
			if err != nil {
				httpError(w, http.StatusBadRequest, "instance %d: %v", i, err)
				return
			}
			instances = append(instances, in)
		}
	case strings.HasPrefix(ct, "text/libsvm"):
		d, err := dataset.ReadLibSVM(body, 0)
		if err != nil {
			httpError(w, bodyErrStatus(err), "bad LibSVM body: %v", err)
			return
		}
		for i := 0; i < d.NumRows(); i++ {
			instances = append(instances, d.Row(i))
		}
	default:
		httpError(w, http.StatusUnsupportedMediaType, "use application/json or text/libsvm")
		return
	}
	buf.instances = instances
	if len(instances) == 0 {
		httpError(w, http.StatusBadRequest, "no instances")
		return
	}

	if cap(buf.scores) < len(instances) {
		buf.scores = make([]float64, len(instances))
	}
	scores := buf.scores[:len(instances)]

	var m *core.Model
	if h.coalescer != nil {
		// The admission slot bounded this request's decode work; scoring is
		// the scorer goroutine's, bounded by the coalescer itself. Release
		// the slot before parking so parked requests don't starve admission.
		release()
		released = true
		cm, err := h.coalescer.Score(instances, scores)
		if err != nil {
			if errors.Is(err, ErrCoalesceFull) {
				serveMetrics().shed("coalesce_full")
				shedError(w, http.StatusServiceUnavailable, h.coalescer.Config().Window, "scoring queue full")
				return
			}
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		m = cm
	} else {
		m, _ = h.registry.Current()
		if eng, err := m.Compiled(); err == nil {
			eng.PredictInstancesInto(instances, scores)
		} else {
			for i, in := range instances {
				scores[i] = m.Predict(in)
			}
		}
	}

	resp := predictResponse{Scores: scores}
	if m.Loss == loss.Logistic {
		if cap(buf.probs) < len(scores) {
			buf.probs = make([]float64, len(scores))
		}
		resp.Probabilities = buf.probs[:len(scores)]
		for i, s := range scores {
			resp.Probabilities[i] = loss.Sigmoid(s)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// featPair is a (feature, value) entry, used only when an instance arrives
// with unsorted indices and must be reordered.
type featPair struct {
	f int32
	v float32
}

// jsonToInstance validates and sorts a JSON instance into dataset form.
// Non-finite values are refused so the JSON path agrees with the LibSVM
// parser, which errors on NaN/±Inf.
func jsonToInstance(ji jsonInstance) (dataset.Instance, error) {
	return jsonToInstanceInto(ji, dataset.Instance{}, &predictBuf{})
}

// jsonToInstanceInto is jsonToInstance writing into dst's backing slices
// (grown only when capacity runs out) with buf.pairs as sort scratch, so
// the pooled request path validates without per-instance allocations.
// Already-sorted indices — the overwhelmingly common client behavior —
// take a copy-through path that never touches the pair scratch.
func jsonToInstanceInto(ji jsonInstance, dst dataset.Instance, buf *predictBuf) (dataset.Instance, error) {
	if len(ji.Indices) != len(ji.Values) {
		return dataset.Instance{}, fmt.Errorf("%d indices vs %d values", len(ji.Indices), len(ji.Values))
	}
	sorted := true
	for i := range ji.Indices {
		if ji.Indices[i] < 0 {
			return dataset.Instance{}, fmt.Errorf("negative feature index %d", ji.Indices[i])
		}
		if v := float64(ji.Values[i]); math.IsNaN(v) || math.IsInf(v, 0) {
			return dataset.Instance{}, fmt.Errorf("non-finite value %v at feature %d", v, ji.Indices[i])
		}
		if i > 0 && ji.Indices[i] <= ji.Indices[i-1] {
			if ji.Indices[i] == ji.Indices[i-1] {
				return dataset.Instance{}, fmt.Errorf("duplicate feature index %d", ji.Indices[i])
			}
			sorted = false
		}
	}
	idx := append(dst.Indices[:0], ji.Indices...)
	vals := append(dst.Values[:0], ji.Values...)
	if !sorted {
		pairs := buf.pairs[:0]
		for i := range idx {
			pairs = append(pairs, featPair{idx[i], vals[i]})
		}
		buf.pairs = pairs
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].f < pairs[b].f })
		for i, p := range pairs {
			if i > 0 && p.f == pairs[i-1].f {
				return dataset.Instance{}, fmt.Errorf("duplicate feature index %d", p.f)
			}
			idx[i], vals[i] = p.f, p.v
		}
	}
	return dataset.Instance{Indices: idx, Values: vals}, nil
}

// tenantLabel keeps error messages readable for the default tenant.
func tenantLabel(t string) string {
	if t == "" {
		return DefaultTenant
	}
	return t
}

// bodyErrStatus distinguishes a body that tripped MaxBytesReader (413) from
// one that merely failed to parse (400).
func bodyErrStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

// shedError writes an admission refusal with a Retry-After hint (whole
// seconds, rounded up, at least 1).
func shedError(w http.ResponseWriter, status int, retryAfter time.Duration, format string, args ...any) {
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	httpError(w, status, format, args...)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
