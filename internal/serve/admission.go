package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Admission errors. Each maps onto one shed reason and HTTP status in the
// predict path: the server never blocks a caller past its deadline and never
// admits more work than the configured window.
var (
	// ErrQueueFull means the wait queue was at capacity on arrival (503).
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrQueueTimeout means the request waited its full queue budget without
	// a slot freeing up (503).
	ErrQueueTimeout = errors.New("serve: timed out waiting for admission")
	// ErrDraining means the server is shutting down and refuses new work
	// immediately; already-queued requests still complete (503).
	ErrDraining = errors.New("serve: draining")
	// ErrCanceled means the client went away while queued (no response goes
	// out, but the slot is never leaked).
	ErrCanceled = errors.New("serve: request canceled while queued")
)

// AdmissionConfig bounds concurrent scoring work.
type AdmissionConfig struct {
	// MaxConcurrent is the number of requests allowed to execute at once.
	MaxConcurrent int
	// QueueDepth is how many requests may wait for a slot beyond
	// MaxConcurrent. 0 means no queue: the limit sheds immediately.
	QueueDepth int
	// QueueTimeout caps how long one request may wait in the queue. A
	// request's own context deadline still applies if sooner. 0 means wait
	// is bounded only by the request context.
	QueueTimeout time.Duration
}

// Limiter is a concurrency limiter with a bounded, deadline-aware wait
// queue — the admission valve in front of /predict. At most MaxConcurrent
// requests hold a slot; up to QueueDepth more wait FIFO-ish (Go channel
// wakeup order) for a slot; everything past that is shed immediately so
// overload degrades into fast 503s instead of unbounded goroutine pileup.
type Limiter struct {
	cfg    AdmissionConfig
	slots  chan struct{}
	queued atomic.Int64
}

// NewLimiter returns a limiter for the given bounds. MaxConcurrent < 1 is
// treated as 1: an admission layer that admits nothing is never useful.
func NewLimiter(cfg AdmissionConfig) *Limiter {
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 1
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	return &Limiter{cfg: cfg, slots: make(chan struct{}, cfg.MaxConcurrent)}
}

// Config returns the limiter's bounds.
func (l *Limiter) Config() AdmissionConfig { return l.cfg }

// Active returns the number of currently held slots.
func (l *Limiter) Active() int { return len(l.slots) }

// Queued returns the number of requests currently waiting.
func (l *Limiter) Queued() int { return int(l.queued.Load()) }

// Acquire admits the request or reports why it was shed. On success the
// returned release func must be called exactly once when the work is done.
// draining short-circuits new arrivals; callers already in the queue when
// draining flips keep their place and complete.
func (l *Limiter) Acquire(ctx context.Context, draining *atomic.Bool) (release func(), err error) {
	if draining != nil && draining.Load() {
		return nil, ErrDraining
	}
	// Fast path: a free slot, no queueing.
	select {
	case l.slots <- struct{}{}:
		return l.release, nil
	default:
	}
	// Claim a queue position; shed immediately when the queue is full. The
	// CAS loop bounds waiters exactly at QueueDepth under contention.
	for {
		q := l.queued.Load()
		if q >= int64(l.cfg.QueueDepth) {
			return nil, ErrQueueFull
		}
		if l.queued.CompareAndSwap(q, q+1) {
			break
		}
	}
	m := serveMetrics()
	m.queueDepth.Set(l.queued.Load())
	start := time.Now()
	defer func() {
		m.queueDepth.Set(l.queued.Add(-1))
		m.queueWait.ObserveSince(start)
	}()

	var timeout <-chan time.Time
	if l.cfg.QueueTimeout > 0 {
		t := time.NewTimer(l.cfg.QueueTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case l.slots <- struct{}{}:
		return l.release, nil
	case <-timeout:
		return nil, ErrQueueTimeout
	case <-ctx.Done():
		return nil, ErrCanceled
	}
}

func (l *Limiter) release() { <-l.slots }
