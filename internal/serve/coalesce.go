package serve

// Request coalescing (PR 10): the layer between admission control and the
// inference engine that turns many concurrent small /predict requests into
// engine-sized batches.
//
// Solo scoring pays per-request costs the engine's batch path amortizes —
// per-call bookkeeping, scratch checkout, and (on standardized features)
// the absent-feature negative-prefix pass that the tile-shared batch kernel
// in internal/predict pays once per 16 rows instead of once per row. Under
// heavy concurrent load from single-instance requests those per-row costs
// dominate, so feeding the engine batches raises sustainable throughput at
// identical offered load.
//
// Shape: requests that cleared admission and decoding deposit their
// instances into a bounded channel and park; one scorer goroutine drains it
// into batches and scores each batch with a single engine call. A request
// releases its admission slot before parking — a parked request consumes no
// CPU, its memory is the already-decoded instances, and the coalescer's own
// MaxPending bound caps how many may park — so admission keeps bounding
// concurrent *work* (decode and scoring) while the coalescer governs the
// scoring queue.
//
// Flush policy (the state machine DESIGN §15 documents):
//
//	full    the gathered batch reached MaxBatch instances
//	solo    the pipe went idle — nothing else is parked or in flight, so
//	        waiting longer cannot grow the batch; flush immediately (a
//	        single uncontended request therefore never lingers)
//	linger  other requests were in flight but the Window deadline (default
//	        500µs, the p99-latency guard) expired first
//	drain   Close cut the batch short; parked waiters are still scored
//
// Correctness contract, enforced by the tests in coalesce_test.go:
//
//   - Scores are math.Float64bits-identical to scoring the same instance
//     alone: the engine's batch path is bit-identical per row, each batch
//     is scored against one coherent model snapshot, and scores are copied
//     back per request without rounding detours.
//   - One request's malformed instance cannot fail its batchmates: Score
//     validates shape at submit (before parking), and a scoring panic falls
//     back to per-request scoring so only the offending request errors.
//   - Drain never strands a waiter: Close flushes everything parked, and
//     submissions after Close fall back to direct scoring.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dimboost/internal/core"
	"dimboost/internal/dataset"
	"dimboost/internal/predict"
)

// ErrCoalesceFull reports that the coalescer's parked-instance bound was
// reached; the caller sheds the request (503) rather than queue unboundedly.
var ErrCoalesceFull = errors.New("serve: coalescer pending limit reached")

// CoalesceConfig tunes the coalescing layer. The zero value picks defaults.
type CoalesceConfig struct {
	// Window bounds how long a batch may linger waiting for more requests
	// once at least one is parked (default 500µs). It is a deadline from the
	// first linger, not a per-arrival reset, so p99 added latency is bounded
	// by Window + one batch's scoring time.
	Window time.Duration
	// MaxBatch is the target instances per flush (default: the compiled
	// engine's PreferredBatch — enough rows to fill its scoring chunk grid).
	MaxBatch int
	// MaxPending bounds instances parked in the coalescer (default
	// 16×MaxBatch); beyond it Score fails fast with ErrCoalesceFull.
	MaxPending int
}

func (c CoalesceConfig) withDefaults(eng *predict.Engine) CoalesceConfig {
	if c.Window <= 0 {
		c.Window = 500 * time.Microsecond
	}
	if c.MaxBatch <= 0 {
		if eng != nil {
			c.MaxBatch = eng.PreferredBatch()
		} else {
			c.MaxBatch = 256
		}
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 16 * c.MaxBatch
	}
	return c
}

// CoalesceStats is a point-in-time snapshot of the coalescer's counters.
type CoalesceStats struct {
	Batches   int64 // flushes scored
	Requests  int64 // requests scored through batches
	Instances int64 // instances scored through batches
	Full      int64 // flush reasons
	Linger    int64
	Solo      int64
	Drain     int64
	Rejected  int64 // Score calls refused by the MaxPending bound
	Direct    int64 // Score calls served by direct scoring after Close
}

// MeanOccupancy is the average requests per scored batch — the number the
// serve bench gates on (> 1 means coalescing actually merged requests).
func (s CoalesceStats) MeanOccupancy() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Requests) / float64(s.Batches)
}

// coalesceCall is one parked request: its instances, the caller's score
// buffer, and the completion signal. Calls are pooled; done is a 1-buffered
// channel reused across checkouts (exactly one send per wait).
type coalesceCall struct {
	ins   []dataset.Instance
	out   []float64
	model *core.Model
	err   error
	enq   time.Time
	done  chan struct{}
}

// Coalescer batches concurrent Score calls into single engine invocations.
// Create with NewCoalescer; Close flushes and stops the scorer.
type Coalescer struct {
	cfg    CoalesceConfig
	source func() *core.Model

	calls chan *coalesceCall
	// waiters counts calls submitted but not yet claimed by the scorer; the
	// increment happens before the channel send, so the scorer seeing
	// waiters > 0 knows more work is in flight and lingering can pay off.
	waiters atomic.Int64
	// pending counts parked instances against MaxPending.
	pending atomic.Int64

	mu     sync.RWMutex // closed vs. in-flight channel sends
	closed bool
	done   chan struct{} // scorer exited (channel fully drained)

	callPool sync.Pool

	stats struct {
		batches, requests, instances atomic.Int64
		full, linger, solo, drain    atomic.Int64
		rejected, direct             atomic.Int64
	}
}

// NewCoalescer starts a coalescer whose batches score against source() —
// typically the handler registry's current model, resolved once per flush
// so every request in a batch sees one coherent model even across hot
// swaps. eng (may be nil) only seeds the default MaxBatch.
func NewCoalescer(source func() *core.Model, eng *predict.Engine, cfg CoalesceConfig) *Coalescer {
	cfg = cfg.withDefaults(eng)
	c := &Coalescer{
		cfg:    cfg,
		source: source,
		// Capacity MaxPending: every parked call holds ≥1 instance, so the
		// pending bound proves sends never block (and thus never hold the
		// read lock across a stalled scorer).
		calls: make(chan *coalesceCall, cfg.MaxPending),
		done:  make(chan struct{}),
	}
	c.callPool.New = func() any { return &coalesceCall{done: make(chan struct{}, 1)} }
	go c.run()
	return c
}

// Config returns the resolved configuration.
func (c *Coalescer) Config() CoalesceConfig { return c.cfg }

// Stats snapshots the coalescer's counters.
func (c *Coalescer) Stats() CoalesceStats {
	return CoalesceStats{
		Batches:   c.stats.batches.Load(),
		Requests:  c.stats.requests.Load(),
		Instances: c.stats.instances.Load(),
		Full:      c.stats.full.Load(),
		Linger:    c.stats.linger.Load(),
		Solo:      c.stats.solo.Load(),
		Drain:     c.stats.drain.Load(),
		Rejected:  c.stats.rejected.Load(),
		Direct:    c.stats.direct.Load(),
	}
}

// Score submits instances for batched scoring and blocks until they are
// scored (bounded by Window plus one batch's scoring time — there is no
// unbounded wait to select on). Scores are written into out (len(ins));
// the returned model is the snapshot the batch was scored against, so the
// caller derives probabilities consistently with the scores. After Close,
// Score degrades to direct scoring rather than failing or stranding.
func (c *Coalescer) Score(ins []dataset.Instance, out []float64) (*core.Model, error) {
	if len(out) != len(ins) {
		return nil, fmt.Errorf("serve: score buffer length %d for %d instances", len(out), len(ins))
	}
	if len(ins) == 0 {
		return c.source(), nil
	}
	// Shape validation before parking: an instance the engine would panic
	// on must fail here, where the error is attributable to this request,
	// not inside a shared batch.
	for i, in := range ins {
		if len(in.Indices) != len(in.Values) {
			return nil, fmt.Errorf("serve: instance %d: %d indices vs %d values", i, len(in.Indices), len(in.Values))
		}
	}
	if c.pending.Add(int64(len(ins))) > int64(c.cfg.MaxPending) {
		c.pending.Add(-int64(len(ins)))
		c.stats.rejected.Add(1)
		return nil, ErrCoalesceFull
	}

	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		c.pending.Add(-int64(len(ins)))
		c.stats.direct.Add(1)
		m := c.source()
		return m, scoreDirect(m, ins, out)
	}
	call := c.callPool.Get().(*coalesceCall)
	call.ins, call.out, call.model, call.err = ins, out, nil, nil
	call.enq = time.Now()
	c.waiters.Add(1)
	c.calls <- call // never blocks: see channel capacity
	c.mu.RUnlock()

	<-call.done
	m, err := call.model, call.err
	call.ins, call.out, call.model = nil, nil, nil
	c.callPool.Put(call)
	return m, err
}

// Close stops accepting parked work, flushes everything already parked
// (no waiter is ever stranded), and waits for the scorer to exit. Further
// Score calls fall back to direct scoring. Safe to call more than once.
func (c *Coalescer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.done
		return
	}
	c.closed = true
	close(c.calls)
	c.mu.Unlock()
	<-c.done
}

// run is the scorer loop: claim one parked call, gather greedily, linger
// only while more work is provably in flight, score once, demultiplex.
func (c *Coalescer) run() {
	defer close(c.done)
	m := serveMetrics()
	var (
		batch []*coalesceCall
		ins   []dataset.Instance // gather buffer, reused across flushes
		out   []float64          // score buffer, reused across flushes
	)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		first, ok := <-c.calls
		if !ok {
			return
		}
		c.waiters.Add(-1)
		batch = append(batch[:0], first)
		n := len(first.ins)
		reason := ""
		lingering := false
	gather:
		for n < c.cfg.MaxBatch {
			// Greedy drain: take everything already parked without waiting.
			select {
			case call, ok := <-c.calls:
				if !ok {
					reason = "drain"
					break gather
				}
				c.waiters.Add(-1)
				batch = append(batch, call)
				n += len(call.ins)
				continue
			default:
			}
			if c.waiters.Load() == 0 {
				// Pipe idle: no submitted-but-unclaimed work exists, so
				// lingering cannot grow the batch. The common uncontended
				// single request flushes here with zero added latency.
				reason = "solo"
				break gather
			}
			if !lingering {
				timer.Reset(c.cfg.Window)
				lingering = true
			}
			select {
			case call, ok := <-c.calls:
				if !ok {
					reason = "drain"
					break gather
				}
				c.waiters.Add(-1)
				batch = append(batch, call)
				n += len(call.ins)
			case <-timer.C:
				lingering = false
				reason = "linger"
				break gather
			}
		}
		if lingering && !timer.Stop() {
			<-timer.C
		}
		if reason == "" {
			reason = "full"
		}

		// Assemble the flush and record wait times before scoring starts.
		ins = ins[:0]
		for _, call := range batch {
			ins = append(ins, call.ins...)
			m.coalesceWait.Observe(time.Since(call.enq).Seconds())
		}
		if cap(out) < n {
			out = make([]float64, n)
		}
		out = out[:n]

		model := c.source()
		err := scoreBatch(model, ins, out, batch)

		off := 0
		for _, call := range batch {
			k := len(call.ins)
			if err == nil && call.err == nil {
				copy(call.out, out[off:off+k])
				call.model = model
			} else if call.err == nil {
				call.err = err
			}
			off += k
			c.pending.Add(-int64(k))
			call.done <- struct{}{}
		}

		c.stats.batches.Add(1)
		c.stats.requests.Add(int64(len(batch)))
		c.stats.instances.Add(int64(n))
		m.coalesceOccupancy.Observe(float64(len(batch)))
		m.coalesceFlush(reason)
		switch reason {
		case "full":
			c.stats.full.Add(1)
		case "linger":
			c.stats.linger.Add(1)
		case "solo":
			c.stats.solo.Add(1)
		case "drain":
			c.stats.drain.Add(1)
		}
		for i := range batch {
			batch[i] = nil
		}
	}
}

// scoreBatch scores one assembled batch with a single engine call. A panic
// (an instance shape the submit-time validation could not catch) degrades
// to per-request scoring so only the offending request fails — batch
// isolation is preserved even against engine bugs.
func scoreBatch(m *core.Model, ins []dataset.Instance, out []float64, batch []*coalesceCall) (err error) {
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("serve: batch scoring panic: %v", r)
			}
		}()
		err = scoreDirect(m, ins, out)
	}()
	if err == nil {
		return nil
	}
	// Isolate: score each request alone; a request that panics again keeps
	// its own error, everyone else gets scores.
	off := 0
	for _, call := range batch {
		k := len(call.ins)
		call.err = func() (cerr error) {
			defer func() {
				if r := recover(); r != nil {
					cerr = fmt.Errorf("serve: scoring panic: %v", r)
				}
			}()
			return scoreDirect(m, call.ins, out[off:off+k])
		}()
		off += k
	}
	return nil
}

// scoreDirect scores instances against the model's compiled engine, falling
// back to the interpreted walk when compilation is unavailable — the same
// choice the uncoalesced handler path makes, so results are identical.
func scoreDirect(m *core.Model, ins []dataset.Instance, out []float64) error {
	if eng, err := m.Compiled(); err == nil {
		eng.PredictInstancesInto(ins, out)
		return nil
	}
	for i, in := range ins {
		out[i] = m.Predict(in)
	}
	return nil
}
