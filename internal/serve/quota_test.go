package serve

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock drives quota refill deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeQuotas(cfg QuotaConfig) (*Quotas, *fakeClock) {
	q := NewQuotas(cfg)
	c := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	q.now = c.now
	return q, c
}

func TestQuotaBurstThenThrottle(t *testing.T) {
	q, clock := newFakeQuotas(QuotaConfig{Rate: 2, Burst: 3})

	for i := 0; i < 3; i++ {
		if ok, _ := q.Allow("a"); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, retry := q.Allow("a")
	if ok {
		t.Fatal("request past burst admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry-after %s, want (0, 1s] at 2 tokens/s", retry)
	}

	// Half a second refills one token at rate 2.
	clock.advance(500 * time.Millisecond)
	if ok, _ := q.Allow("a"); !ok {
		t.Fatal("refilled token refused")
	}
	if ok, _ := q.Allow("a"); ok {
		t.Fatal("second request on one refilled token admitted")
	}
}

func TestQuotaTenantsIsolated(t *testing.T) {
	q, _ := newFakeQuotas(QuotaConfig{Rate: 1, Burst: 1})
	if ok, _ := q.Allow("a"); !ok {
		t.Fatal("tenant a first request refused")
	}
	if ok, _ := q.Allow("b"); !ok {
		t.Fatal("tenant b must have its own bucket")
	}
	if ok, _ := q.Allow("a"); ok {
		t.Fatal("tenant a second request admitted")
	}
}

func TestQuotaDefaultTenant(t *testing.T) {
	q, _ := newFakeQuotas(QuotaConfig{Rate: 1, Burst: 1})
	// The empty tenant and DefaultTenant share one bucket.
	if ok, _ := q.Allow(""); !ok {
		t.Fatal("default tenant refused")
	}
	if ok, _ := q.Allow(DefaultTenant); ok {
		t.Fatal("empty and explicit default tenant must share a bucket")
	}
}

func TestQuotaOverride(t *testing.T) {
	q, _ := newFakeQuotas(QuotaConfig{Rate: 1, Burst: 1})
	q.SetTenant("vip", QuotaConfig{Rate: 100, Burst: 5})
	for i := 0; i < 5; i++ {
		if ok, _ := q.Allow("vip"); !ok {
			t.Fatalf("vip burst request %d refused", i)
		}
	}
	if ok, _ := q.Allow("other"); !ok {
		t.Fatal("default-shaped tenant refused its burst")
	}
	if ok, _ := q.Allow("other"); ok {
		t.Fatal("default-shaped tenant admitted past burst 1")
	}
	// Overriding an existing tenant rebuilds its bucket with the new shape.
	q.SetTenant("other", QuotaConfig{Rate: 10, Burst: 2})
	if ok, _ := q.Allow("other"); !ok {
		t.Fatal("reshaped tenant refused")
	}
}

func TestQuotaDisabled(t *testing.T) {
	q, _ := newFakeQuotas(QuotaConfig{})
	for i := 0; i < 100; i++ {
		if ok, _ := q.Allow("anyone"); !ok {
			t.Fatal("disabled quota refused a request")
		}
	}
	if q.Tenants() != 0 {
		t.Fatalf("disabled quota grew %d buckets", q.Tenants())
	}
}

// TestQuotaBucketCap sprays more tenants than the cap and checks the map
// stays bounded — a client inventing X-Tenant values cannot grow memory
// without limit.
func TestQuotaBucketCap(t *testing.T) {
	q, _ := newFakeQuotas(QuotaConfig{Rate: 1, Burst: 1})
	for i := 0; i < maxTenantBuckets+100; i++ {
		q.Allow(fmt.Sprintf("tenant-%d", i))
	}
	if n := q.Tenants(); n > maxTenantBuckets {
		t.Fatalf("%d buckets, cap %d", n, maxTenantBuckets)
	}
}
