package cv

import (
	"testing"

	"dimboost/internal/core"
	"dimboost/internal/dataset"
	"dimboost/internal/loss"
)

func TestFoldsPartition(t *testing.T) {
	folds, err := Folds(103, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("%d folds", len(folds))
	}
	seen := map[int32]bool{}
	for _, f := range folds {
		if len(f) < 103/5 || len(f) > 103/5+1 {
			t.Fatalf("unbalanced fold size %d", len(f))
		}
		for _, r := range f {
			if seen[r] {
				t.Fatalf("row %d in two folds", r)
			}
			seen[r] = true
		}
	}
	if len(seen) != 103 {
		t.Fatalf("%d rows covered", len(seen))
	}
}

func TestFoldsErrors(t *testing.T) {
	if _, err := Folds(10, 1, 1); err == nil {
		t.Fatal("k=1 should fail")
	}
	if _, err := Folds(3, 4, 1); err == nil {
		t.Fatal("k>n should fail")
	}
}

func TestFoldsDeterministic(t *testing.T) {
	a, _ := Folds(50, 3, 7)
	b, _ := Folds(50, 3, 7)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("fold sizes differ")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("folds differ for same seed")
			}
		}
	}
	c, _ := Folds(50, 3, 8)
	same := true
	for i := range a {
		for j := range a[i] {
			if j < len(c[i]) && a[i][j] != c[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds gave identical folds")
	}
}

func TestRunClassification(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 600, NumFeatures: 100, AvgNNZ: 10, Seed: 3, Zipf: 1.2, NoiseStd: 0.2})
	cfg := core.DefaultConfig()
	cfg.NumTrees = 6
	cfg.MaxDepth = 4
	cfg.Parallelism = 1
	res, err := Run(d, cfg, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FoldScores) != 4 || len(res.FoldLogLoss) != 4 {
		t.Fatalf("fold counts %d/%d", len(res.FoldScores), len(res.FoldLogLoss))
	}
	if res.Mean <= 0 || res.Mean >= 0.5 {
		t.Fatalf("mean error %v implausible", res.Mean)
	}
	if res.Std < 0 {
		t.Fatalf("negative std %v", res.Std)
	}
	for _, ll := range res.FoldLogLoss {
		if ll <= 0 || ll > 1.5 {
			t.Fatalf("logloss %v implausible", ll)
		}
	}
}

func TestRunRegression(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 400, NumFeatures: 60, AvgNNZ: 8, Seed: 5, Regression: true, NoiseStd: 0.1, Zipf: 1.2})
	cfg := core.DefaultConfig()
	cfg.Loss = loss.Squared
	cfg.NumTrees = 8
	cfg.MaxDepth = 4
	cfg.Parallelism = 1
	res, err := Run(d, cfg, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	// CV RMSE must beat the zero predictor's RMSE
	zero := loss.RMSE(d.Labels, make([]float64, d.NumRows()))
	if res.Mean >= zero {
		t.Fatalf("cv RMSE %v not better than zero predictor %v", res.Mean, zero)
	}
}

func TestRunBadK(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 20, NumFeatures: 10, AvgNNZ: 3, Seed: 7})
	if _, err := Run(d, core.DefaultConfig(), 1, 1); err == nil {
		t.Fatal("k=1 should fail")
	}
}

func TestGatherSemantics(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 10, NumFeatures: 15, AvgNNZ: 4, Seed: 13})
	g := d.Gather([]int32{3, 3, 0})
	if g.NumRows() != 3 {
		t.Fatalf("%d rows", g.NumRows())
	}
	if g.Labels[0] != d.Labels[3] || g.Labels[1] != d.Labels[3] || g.Labels[2] != d.Labels[0] {
		t.Fatal("gather picked wrong rows")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
