// Package cv provides k-fold cross-validation over the GBDT trainer — the
// standard protocol for hyper-parameter selection on datasets too small for
// a fixed held-out split.
package cv

import (
	"fmt"
	"math"
	"math/rand"

	"dimboost/internal/core"
	"dimboost/internal/dataset"
	"dimboost/internal/loss"
)

// Result aggregates per-fold evaluation.
type Result struct {
	// FoldScores holds one score per fold: classification error for
	// logistic models, RMSE for squared loss (lower is better for both).
	FoldScores []float64
	// Mean and Std summarize the folds.
	Mean, Std float64
	// FoldLogLoss holds the per-fold mean loss (the training objective).
	FoldLogLoss []float64
}

// Folds assigns n rows to k folds after a seeded shuffle; fold i's rows are
// the returned slice's i-th entry.
func Folds(n, k int, seed int64) ([][]int32, error) {
	if k < 2 || k > n {
		return nil, fmt.Errorf("cv: k=%d outside [2,%d]", k, n)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	out := make([][]int32, k)
	for i, r := range perm {
		f := i % k
		out[f] = append(out[f], int32(r))
	}
	return out, nil
}

// Run trains k models, each holding one fold out, and evaluates on the
// held-out fold.
func Run(d *dataset.Dataset, cfg core.Config, k int, seed int64) (*Result, error) {
	folds, err := Folds(d.NumRows(), k, seed)
	if err != nil {
		return nil, err
	}
	lf := loss.New(cfg.Loss)
	res := &Result{}
	for f := 0; f < k; f++ {
		var trainRows []int32
		for g := 0; g < k; g++ {
			if g != f {
				trainRows = append(trainRows, folds[g]...)
			}
		}
		train := d.Gather(trainRows)
		test := d.Gather(folds[f])
		model, err := core.Train(train, cfg)
		if err != nil {
			return nil, fmt.Errorf("cv: fold %d: %w", f, err)
		}
		preds := model.PredictBatch(test)
		var score float64
		if cfg.Loss == loss.Logistic {
			score = loss.ErrorRate(test.Labels, preds)
		} else {
			score = loss.RMSE(test.Labels, preds)
		}
		res.FoldScores = append(res.FoldScores, score)
		res.FoldLogLoss = append(res.FoldLogLoss, loss.MeanLoss(lf, test.Labels, preds))
	}
	var sum, sq float64
	for _, s := range res.FoldScores {
		sum += s
	}
	res.Mean = sum / float64(k)
	for _, s := range res.FoldScores {
		sq += (s - res.Mean) * (s - res.Mean)
	}
	res.Std = math.Sqrt(sq / float64(k))
	return res, nil
}
