package obs

import (
	"sync"
	"time"
)

// SpanEvent is one recorded phase segment of the training timeline. Layer
// -1 marks tree-level phases (sketching, gradients); Tree -1 marks
// run-level phases.
type SpanEvent struct {
	Worker int    `json:"worker"`
	Tree   int    `json:"tree"`
	Layer  int    `json:"layer"`
	Phase  string `json:"phase"`
	// StartMS is the offset from the span log's creation, DurMS the
	// segment's duration, both in milliseconds.
	StartMS float64 `json:"start_ms"`
	DurMS   float64 `json:"dur_ms"`
}

// SpanLog is a bounded, concurrency-safe timeline of training-phase spans.
// Every recorded span also lands in the owning registry as an observation
// of dimboost_<name>_phase_seconds{phase=...}, so the same instrumentation
// feeds both the aggregate histograms and the structured timeline dump on
// /debug/obs. When the ring fills, the oldest events are dropped — the
// histograms keep the full aggregate either way.
type SpanLog struct {
	name  string
	reg   *Registry
	start time.Time

	mu    sync.Mutex
	ring  []SpanEvent
	next  int
	full  bool
	hists map[string]*Histogram
}

// SpanLog returns (creating on first use) the named span log with the given
// ring capacity. The capacity of the first registration wins.
func (r *Registry) SpanLog(name string, capacity int) *SpanLog {
	if capacity < 1 {
		capacity = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	l := r.spans[name]
	if l == nil {
		l = &SpanLog{
			name:  name,
			reg:   r,
			start: time.Now(),
			ring:  make([]SpanEvent, capacity),
			hists: make(map[string]*Histogram),
		}
		r.spans[name] = l
	}
	return l
}

// spanLogs snapshots the registered span logs.
func (r *Registry) spanLogs() map[string]*SpanLog {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*SpanLog, len(r.spans))
	for k, v := range r.spans {
		out[k] = v
	}
	return out
}

// Record adds one span and feeds its duration into the phase histogram.
// start is the segment's wall-clock start; d its duration.
func (l *SpanLog) Record(worker, tree, layer int, phase string, start time.Time, d time.Duration) {
	l.hist(phase).Observe(d.Seconds())
	ev := SpanEvent{
		Worker:  worker,
		Tree:    tree,
		Layer:   layer,
		Phase:   phase,
		StartMS: float64(start.Sub(l.start)) / float64(time.Millisecond),
		DurMS:   float64(d) / float64(time.Millisecond),
	}
	l.mu.Lock()
	l.ring[l.next] = ev
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.full = true
	}
	l.mu.Unlock()
}

// hist returns the phase's aggregate histogram, caching the lookup.
func (l *SpanLog) hist(phase string) *Histogram {
	l.mu.Lock()
	h := l.hists[phase]
	l.mu.Unlock()
	if h != nil {
		return h
	}
	h = l.reg.Histogram("dimboost_"+l.name+"_phase_seconds",
		"Wall time of one "+l.name+" phase segment.", nil, L("phase", phase))
	l.mu.Lock()
	l.hists[phase] = h
	l.mu.Unlock()
	return h
}

// Events returns the retained timeline in chronological order.
func (l *SpanLog) Events() []SpanEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []SpanEvent
	if l.full {
		out = append(out, l.ring[l.next:]...)
	}
	return append(out, l.ring[:l.next]...)
}
