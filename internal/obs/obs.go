// Package obs is DimBoost's stdlib-only observability subsystem: a metrics
// registry of atomic counters, gauges, and fixed-bucket histograms with
// label support, plus lightweight training-phase span logs. Every runtime
// layer (trainer, parameter server, transport, cluster, serving) records
// into the process-wide Default registry; /metrics exposes it in Prometheus
// text format and /debug/obs as a JSON snapshot including span timelines.
//
// The paper's evaluation (§7) is built on per-phase cost accounting —
// sketch, histogram build, split find, aggregation bytes — and this package
// makes the same accounting available from a live process instead of only
// from the experiment harness.
//
// Hot-path cost: instruments are resolved once (a registry lookup under a
// mutex) and then held as pointers; recording is one or two atomic adds, or
// for histograms a binary search over ~16 bounds plus three atomic updates.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension. Keep label values low-cardinality: op
// names, phase names, endpoint paths, status codes — never per-call ids.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Metric type names, as exposed on the TYPE line.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// DefBuckets are the default latency buckets in seconds: 10µs up to 10s,
// wide enough for both in-memory RPCs and multi-second training phases.
var DefBuckets = []float64{
	10e-6, 25e-6, 100e-6, 250e-6,
	1e-3, 2.5e-3, 10e-3, 25e-3,
	0.1, 0.25, 1, 2.5, 10,
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are a programming error and are ignored.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds a (possibly negative) delta.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets (upper bounds,
// ascending; an implicit +Inf bucket catches the rest) and tracks their sum
// and count. Observations are lock-free; a concurrent scrape may see a sum
// slightly ahead of the bucket counts, which Prometheus semantics allow.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1, last is +Inf
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v <= le
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// series is one labeled instance of a metric family.
type series struct {
	labels []Label // sorted by key
	metric any     // *Counter, *Gauge, or *Histogram
}

// family groups all label combinations of one metric name.
type family struct {
	name    string
	help    string
	typ     string
	buckets []float64 // histograms only
	series  map[string]*series
}

// Registry holds metric families and span logs. All methods are safe for
// concurrent use. The zero value is not usable; call New.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	spans    map[string]*SpanLog
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		families: make(map[string]*family),
		spans:    make(map[string]*SpanLog),
	}
}

var defaultRegistry = New()

// Default returns the process-wide registry every instrumented layer
// records into.
func Default() *Registry { return defaultRegistry }

// Counter returns (creating on first use) the counter with the given name
// and labels. Registering the same name with a different type panics: that
// is a programming error, not a runtime condition.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.metric(name, help, TypeCounter, nil, labels).(*Counter)
}

// Gauge returns (creating on first use) the gauge with the given name and
// labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.metric(name, help, TypeGauge, nil, labels).(*Gauge)
}

// Histogram returns (creating on first use) the histogram with the given
// name, bucket bounds, and labels. nil buckets selects DefBuckets; all
// series of one family share the first registration's buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return r.metric(name, help, TypeHistogram, buckets, labels).(*Histogram)
}

func (r *Registry) metric(name, help, typ string, buckets []float64, labels []Label) any {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelKey(l.Key) {
			panic(fmt.Sprintf("obs: invalid label key %q on metric %q", l.Key, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		b := buckets
		if typ == TypeHistogram {
			if len(b) == 0 {
				b = DefBuckets
			}
			b = append([]float64(nil), b...)
			if !sort.Float64sAreSorted(b) {
				panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
			}
		}
		f = &family{name: name, help: help, typ: typ, buckets: b, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	if f.help == "" {
		f.help = help
	}
	ls := sortedLabels(labels)
	key := labelKey(ls)
	se := f.series[key]
	if se == nil {
		se = &series{labels: ls}
		switch typ {
		case TypeCounter:
			se.metric = &Counter{}
		case TypeGauge:
			se.metric = &Gauge{}
		case TypeHistogram:
			se.metric = &Histogram{bounds: f.buckets, counts: make([]atomic.Uint64, len(f.buckets)+1)}
		}
		f.series[key] = se
	}
	return se.metric
}

// sortedLabels copies and key-sorts a label list so series identity is
// independent of argument order.
func sortedLabels(labels []Label) []Label {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(a, b int) bool { return ls[a].Key < ls[b].Key })
	return ls
}

// labelKey serializes sorted labels into the series map key.
func labelKey(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, l := range ls {
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
		sb.WriteByte(',')
	}
	return sb.String()
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelKey(key string) bool {
	if key == "" {
		return false
	}
	for i, c := range key {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
