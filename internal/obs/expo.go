package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is the JSON form of one metric family.
type Snapshot struct {
	Name   string   `json:"name"`
	Type   string   `json:"type"`
	Help   string   `json:"help,omitempty"`
	Series []Series `json:"series"`
}

// Series is one labeled instance inside a Snapshot.
type Series struct {
	Labels map[string]string `json:"labels,omitempty"`
	// Value carries counter and gauge readings.
	Value int64 `json:"value,omitempty"`
	// Count/Sum/Buckets carry histogram readings.
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one cumulative histogram bucket. LE is a string because the
// last bucket's bound is +Inf, which JSON numbers cannot represent.
type Bucket struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// Snapshot returns a point-in-time copy of every family, sorted by name.
func (r *Registry) Snapshot() []Snapshot {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(a, b int) bool { return fams[a].name < fams[b].name })

	out := make([]Snapshot, 0, len(fams))
	for _, f := range fams {
		snap := Snapshot{Name: f.name, Type: f.typ, Help: f.help}
		for _, se := range sortedSeries(f) {
			s := Series{}
			if len(se.labels) > 0 {
				s.Labels = make(map[string]string, len(se.labels))
				for _, l := range se.labels {
					s.Labels[l.Key] = l.Value
				}
			}
			switch m := se.metric.(type) {
			case *Counter:
				s.Value = m.Value()
			case *Gauge:
				s.Value = m.Value()
			case *Histogram:
				s.Count = m.Count()
				s.Sum = m.Sum()
				cum := uint64(0)
				for i, b := range m.bounds {
					cum += m.counts[i].Load()
					s.Buckets = append(s.Buckets, Bucket{LE: formatFloat(b), Count: cum})
				}
				cum += m.counts[len(m.bounds)].Load()
				s.Buckets = append(s.Buckets, Bucket{LE: "+Inf", Count: cum})
			}
			snap.Series = append(snap.Series, s)
		}
		out = append(out, snap)
	}
	return out
}

// sortedSeries returns a family's series in deterministic label order. The
// registry mutex is only needed for the map copy: series themselves are
// append-only.
func sortedSeries(f *family) []*series {
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*series, len(keys))
	for i, k := range keys {
		out[i] = f.series[k]
	}
	return out
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): HELP and TYPE metadata followed by one sample per
// series, histograms expanded into _bucket/_sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(a, b int) bool { return fams[a].name < fams[b].name })

	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, se := range sortedSeries(f) {
			switch m := se.metric.(type) {
			case *Counter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labelString(se.labels, "", ""), m.Value())
			case *Gauge:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labelString(se.labels, "", ""), m.Value())
			case *Histogram:
				cum := uint64(0)
				for i, b := range m.bounds {
					cum += m.counts[i].Load()
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, labelString(se.labels, "le", formatFloat(b)), cum)
				}
				cum += m.counts[len(m.bounds)].Load()
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, labelString(se.labels, "le", "+Inf"), cum)
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, labelString(se.labels, "", ""), formatFloat(m.Sum()))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, labelString(se.labels, "", ""), m.Count())
			}
		}
	}
	return bw.Flush()
}

// labelString renders `{k="v",...}` with an optional extra label appended
// (the histogram `le`); empty label sets render as nothing.
func labelString(ls []Label, extraKey, extraValue string) string {
	if len(ls) == 0 && extraKey == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	if extraKey != "" {
		if len(ls) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraKey)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(extraValue))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ValidateExposition checks that r holds well-formed Prometheus text-format
// output: every non-comment line is `name[{labels}] value [timestamp]`,
// names and label keys are legal, label values are properly quoted, values
// parse as floats, TYPE lines name known types, and every sample belongs to
// a family announced by a preceding TYPE line. CI scrapes a live /metrics
// handler through this so exposition can't silently break.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	typed := make(map[string]string) // family -> type
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, typed); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := validateSample(line, typed); err != nil {
			return fmt.Errorf("line %d: %q: %w", lineNo, line, err)
		}
	}
	return sc.Err()
}

func validateComment(line string, typed map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validName(fields[2]) {
			return fmt.Errorf("malformed HELP line")
		}
	case "TYPE":
		if len(fields) < 4 || !validName(fields[2]) {
			return fmt.Errorf("malformed TYPE line")
		}
		switch fields[3] {
		case TypeCounter, TypeGauge, TypeHistogram, "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		typed[fields[2]] = fields[3]
	}
	return nil
}

func validateSample(line string, typed map[string]string) error {
	name := line
	rest := ""
	if i := strings.IndexAny(line, "{ "); i >= 0 {
		name, rest = line[:i], line[i:]
	}
	if !validName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	if strings.HasPrefix(rest, "{") {
		end, err := scanLabels(rest)
		if err != nil {
			return err
		}
		rest = rest[end:]
	}
	rest = strings.TrimPrefix(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("want `value [timestamp]` after name, got %q", rest)
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		return fmt.Errorf("bad sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	base := name
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		trimmed := strings.TrimSuffix(name, suffix)
		if trimmed != name && typed[trimmed] == TypeHistogram {
			base = trimmed
			break
		}
	}
	if _, ok := typed[base]; !ok {
		return fmt.Errorf("sample for %q has no preceding TYPE line", base)
	}
	return nil
}

// scanLabels validates a `{k="v",...}` block and returns its length.
func scanLabels(s string) (int, error) {
	i := 1 // past '{'
	for {
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) || !validLabelKey(s[start:i]) {
			return 0, fmt.Errorf("bad label key in %q", s)
		}
		i++ // past '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value in %q", s)
		}
		i++ // past closing quote
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}
