package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("test_total", "help", L("k", "v"))
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// same name+labels resolves to the same instance
	if r.Counter("test_total", "", L("k", "v")) != c {
		t.Fatal("re-registration returned a different counter")
	}
	// different labels are a different series
	if r.Counter("test_total", "", L("k", "w")) == c {
		t.Fatal("different label value returned the same counter")
	}
	// label argument order is irrelevant
	c2 := r.Counter("multi_total", "", L("a", "1"), L("b", "2"))
	if r.Counter("multi_total", "", L("b", "2"), L("a", "1")) != c2 {
		t.Fatal("label order changed series identity")
	}

	g := r.Gauge("test_gauge", "")
	g.Set(7)
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat_seconds", "", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 5.565; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// cumulative buckets: le=0.01 → 2 (0.005 and the boundary value 0.01),
	// le=0.1 → 3, le=1 → 4, +Inf → 5
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("%d families", len(snap))
	}
	b := snap[0].Series[0].Buckets
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if b[i].Count != w {
			t.Fatalf("bucket %d (le=%s) = %d, want %d", i, b[i].LE, b[i].Count, w)
		}
	}
	if b[3].LE != "+Inf" {
		t.Fatalf("last bucket le = %q", b[3].LE)
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := New()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("gauge registration over a counter name did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := New()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.Counter("bad name", "")
}

func TestConcurrentUse(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c_total", "")
			h := r.Histogram("h_seconds", "", nil, L("phase", "x"))
			g := r.Gauge("g", "")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.001)
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h_seconds", "", nil, L("phase", "x")).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := New()
	r.Counter("dimboost_test_total", "A counter.", L("op", `quo"te`)).Add(3)
	r.Gauge("dimboost_test_inflight", "A gauge.").Set(-2)
	r.Histogram("dimboost_test_seconds", "A histogram.", []float64{0.5}).Observe(0.25)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE dimboost_test_total counter",
		`dimboost_test_total{op="quo\"te"} 3`,
		"dimboost_test_inflight -2",
		`dimboost_test_seconds_bucket{le="0.5"} 1`,
		`dimboost_test_seconds_bucket{le="+Inf"} 1`,
		"dimboost_test_seconds_sum 0.25",
		"dimboost_test_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("self-exposition invalid: %v", err)
	}
}

// TestMetricsHandlerScrape is the CI guard for exposition syntax: scrape a
// live /metrics handler and validate every line.
func TestMetricsHandlerScrape(t *testing.T) {
	r := New()
	r.Counter("dimboost_scrape_total", "Scrapes.", L("path", "/metrics")).Inc()
	r.Histogram("dimboost_scrape_seconds", "Scrape latency.", nil).Observe(0.001)
	r.SpanLog("train", 16).Record(0, 0, 1, "build_hist", time.Now(), 3*time.Millisecond)

	srv := httptest.NewServer(r.Mux())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	if !strings.Contains(string(body), "dimboost_train_phase_seconds_count") {
		t.Fatalf("span histogram missing from exposition:\n%s", body)
	}

	// /debug/obs carries the same state as JSON, spans included.
	resp2, err := http.Get(srv.URL + "/debug/obs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st DebugState
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Metrics) == 0 {
		t.Fatal("debug snapshot has no metrics")
	}
	evs := st.Spans["train"]
	if len(evs) != 1 || evs[0].Phase != "build_hist" || evs[0].Layer != 1 {
		t.Fatalf("span timeline %+v", evs)
	}
}

func TestValidateExpositionRejectsGarbage(t *testing.T) {
	cases := []string{
		"no_type_line 1\n",
		"# TYPE m counter\nm{key=unquoted} 1\n",
		"# TYPE m counter\nm 1 2 3\n",
		"# TYPE m counter\nm notafloat\n",
		"# TYPE m badtype\n",
		"# TYPE m counter\n2leadingdigit 1\n",
	}
	for i, c := range cases {
		if err := ValidateExposition(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted: %q", i, c)
		}
	}
	// and a valid document with the awkward-but-legal bits
	ok := "# HELP m help text\n# TYPE m histogram\n" +
		`m_bucket{le="+Inf"} 3` + "\nm_sum 1.5\nm_count 3\n\n# TYPE g gauge\ng -4 1700000000000\n"
	if err := ValidateExposition(strings.NewReader(ok)); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
}

func TestSpanLogRing(t *testing.T) {
	r := New()
	l := r.SpanLog("ring", 4)
	base := time.Now()
	for i := 0; i < 6; i++ {
		l.Record(0, i, -1, "p", base, time.Millisecond)
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("%d events retained, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Tree != i+2 {
			t.Fatalf("event %d tree = %d, want %d (oldest dropped, order kept)", i, ev.Tree, i+2)
		}
	}
	// the aggregate histogram saw every record, including the dropped ones
	h := r.Histogram("dimboost_ring_phase_seconds", "", nil, L("phase", "p"))
	if h.Count() != 6 {
		t.Fatalf("histogram count %d, want 6", h.Count())
	}
	// same name returns the same log
	if r.SpanLog("ring", 99) != l {
		t.Fatal("SpanLog re-registration returned a new log")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("a_total", "h", L("x", "y")).Add(2)
	r.Histogram("b_seconds", "", []float64{1}).Observe(0.5)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back []Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Name != "a_total" || back[0].Series[0].Value != 2 {
		t.Fatalf("round trip %+v", back)
	}
	if back[1].Series[0].Count != 1 || len(back[1].Series[0].Buckets) != 2 {
		t.Fatalf("histogram round trip %+v", back[1])
	}
}
