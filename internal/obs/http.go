package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"time"
)

// Handler serves the registry in Prometheus text exposition format — mount
// it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck
	})
}

// DebugState is the /debug/obs document: the full metric snapshot plus the
// retained span timelines.
type DebugState struct {
	Metrics []Snapshot             `json:"metrics"`
	Spans   map[string][]SpanEvent `json:"spans,omitempty"`
}

// DebugSnapshot assembles the /debug/obs document.
func (r *Registry) DebugSnapshot() DebugState {
	st := DebugState{Metrics: r.Snapshot()}
	logs := r.spanLogs()
	if len(logs) > 0 {
		st.Spans = make(map[string][]SpanEvent, len(logs))
		for name, l := range logs {
			st.Spans[name] = l.Events()
		}
	}
	return st
}

// DebugHandler serves the JSON snapshot — mount it at GET /debug/obs.
func (r *Registry) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.DebugSnapshot()) //nolint:errcheck
	})
}

// Mux returns a mux with the standard observability routes: GET /metrics
// (Prometheus text format) and GET /debug/obs (JSON snapshot + span
// timelines). The -metrics-listen flags of dimboost-train and
// dimboost-node serve exactly this.
func (r *Registry) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", r.Handler())
	mux.Handle("GET /debug/obs", r.DebugHandler())
	return mux
}

// Serve exposes Mux on addr from a background goroutine and returns the
// bound address (addr may use port 0). The server lives for the rest of the
// process — it exists so training binaries can flip on a metrics listener
// with one flag.
func (r *Registry) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: r.Mux(), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck
	return ln.Addr().String(), nil
}
