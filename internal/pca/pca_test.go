package pca

import (
	"math"
	"math/rand"
	"testing"

	"dimboost/internal/dataset"
)

// lowRankData builds an n×m dataset of known rank plus small noise.
func lowRankData(t *testing.T, n, m, rank int, noise float64, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	u := make([][]float64, n)
	v := make([][]float64, rank)
	for c := 0; c < rank; c++ {
		v[c] = make([]float64, m)
		for j := range v[c] {
			v[c][j] = rng.NormFloat64()
		}
	}
	b := dataset.NewBuilder(m)
	row := make([]float32, m)
	for i := 0; i < n; i++ {
		u[i] = make([]float64, rank)
		for c := range u[i] {
			// decaying component strengths
			u[i][c] = rng.NormFloat64() * float64(rank-c)
		}
		for j := 0; j < m; j++ {
			var s float64
			for c := 0; c < rank; c++ {
				s += u[i][c] * v[c][j]
			}
			row[j] = float32(s + rng.NormFloat64()*noise)
		}
		b.AddDense(row, float32(i%2))
	}
	return b.Build()
}

func TestFitRecoversRank(t *testing.T) {
	d := lowRankData(t, 200, 40, 3, 0.01, 1)
	res, err := Fit(d, 6, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// first 3 components dominate the variance
	top := res.Variance[0] + res.Variance[1] + res.Variance[2]
	tail := res.Variance[3] + res.Variance[4] + res.Variance[5]
	if tail > top*0.01 {
		t.Fatalf("variance not concentrated: top3 %v, next3 %v", top, tail)
	}
	// variance must be non-increasing
	for c := 1; c < res.K; c++ {
		if res.Variance[c] > res.Variance[c-1]+1e-9 {
			t.Fatalf("variance not sorted at %d", c)
		}
	}
}

func TestComponentsOrthonormal(t *testing.T) {
	d := lowRankData(t, 150, 30, 5, 0.1, 3)
	res, err := Fit(d, 5, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := d.NumFeatures
	for a := 0; a < res.K; a++ {
		ra := res.Components[a*m : (a+1)*m]
		for b := a; b < res.K; b++ {
			rb := res.Components[b*m : (b+1)*m]
			var dot float64
			for j := range ra {
				dot += ra[j] * rb[j]
			}
			want := 0.0
			if a == b {
				want = 1.0
			}
			if math.Abs(dot-want) > 1e-6 {
				t.Fatalf("components %d,%d dot %v, want %v", a, b, dot, want)
			}
		}
	}
}

func TestTransformCapturesVariance(t *testing.T) {
	d := lowRankData(t, 200, 50, 4, 0.05, 5)
	res, err := Fit(d, 4, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	red, err := res.Transform(d)
	if err != nil {
		t.Fatal(err)
	}
	if red.NumRows() != d.NumRows() || red.NumFeatures != 4 {
		t.Fatalf("reduced shape %dx%d", red.NumRows(), red.NumFeatures)
	}
	// labels preserved
	for i := range red.Labels {
		if red.Labels[i] != d.Labels[i] {
			t.Fatal("labels changed")
		}
	}
	// the projected variance should match the original total variance
	// closely for near-rank-4 data
	origVar := totalVariance(d.ToDense())
	projVar := totalVariance(red.ToDense())
	if projVar < 0.9*origVar {
		t.Fatalf("projection kept %v of %v variance", projVar, origVar)
	}
}

func totalVariance(rows [][]float32) float64 {
	n := len(rows)
	m := len(rows[0])
	mean := make([]float64, m)
	for _, r := range rows {
		for j, v := range r {
			mean[j] += float64(v)
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	var s float64
	for _, r := range rows {
		for j, v := range r {
			d := float64(v) - mean[j]
			s += d * d
		}
	}
	return s / float64(n-1)
}

func TestSparseInput(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 300, NumFeatures: 500, AvgNNZ: 20, Seed: 7, Zipf: 1.3})
	res, err := Fit(d, 10, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	red, err := res.Transform(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := red.Validate(); err != nil {
		t.Fatal(err)
	}
	if red.NumFeatures != 10 {
		t.Fatalf("reduced to %d dims", red.NumFeatures)
	}
}

func TestFitErrors(t *testing.T) {
	d := lowRankData(t, 20, 10, 2, 0.1, 9)
	for _, k := range []int{0, 11, 21} {
		if _, err := Fit(d, k, Options{}); err == nil {
			t.Errorf("k=%d should fail", k)
		}
	}
	res, _ := Fit(d, 2, Options{Seed: 1})
	other := lowRankData(t, 5, 7, 2, 0.1, 10)
	if _, err := res.Transform(other); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	d := lowRankData(t, 100, 20, 3, 0.05, 11)
	a, err := Fit(d, 3, Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(d, 3, Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Components {
		if a.Components[i] != b.Components[i] {
			t.Fatal("same seed should give identical components")
		}
	}
}

func TestJacobiEigenKnownMatrix(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1
	vals, vecs := jacobiEigen([]float64{2, 1, 1, 2}, 2)
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Fatalf("eigenvalues %v", vals)
	}
	// eigenvector for 3 is (1,1)/√2 up to sign
	if math.Abs(math.Abs(vecs[0*2+0])-1/math.Sqrt2) > 1e-10 ||
		math.Abs(vecs[0*2+0]-vecs[1*2+0]) > 1e-10 {
		t.Fatalf("eigenvector %v %v", vecs[0], vecs[2])
	}
}
