// Package pca implements randomized principal component analysis on sparse
// datasets, the dimension-reduction substrate of the paper's Table 6
// experiment (Spark MLlib's PCA in the original): project a high-dimensional
// sparse dataset onto its top-k principal directions and train GBDT on the
// reduced dense data.
//
// The algorithm is the standard randomized range finder with power
// iterations (Halko-Martinsson-Tropp): Y = (A−1μᵀ)Ω, a few subspace
// iterations with re-orthonormalization, then an exact eigendecomposition of
// the small projected Gram matrix via cyclic Jacobi.
package pca

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dimboost/internal/dataset"
)

// Result holds a fitted PCA model.
type Result struct {
	// K is the number of components.
	K int
	// Mean is the per-feature mean (length M).
	Mean []float64
	// Components holds the principal directions row-major: component c is
	// Components[c*M : (c+1)*M], unit length, mutually orthogonal.
	Components []float64
	// Variance is the explained variance per component, descending.
	Variance []float64

	m int
}

// Options tune the randomized algorithm.
type Options struct {
	// Oversample adds extra random probes beyond K (default 8).
	Oversample int
	// PowerIters is the number of subspace iterations (default 2).
	PowerIters int
	// Seed drives the random test matrix.
	Seed int64
}

// Fit computes the top-k principal components of the dataset's feature
// matrix.
func Fit(d *dataset.Dataset, k int, opts Options) (*Result, error) {
	n, m := d.NumRows(), d.NumFeatures
	if k < 1 || k > m || k > n {
		return nil, fmt.Errorf("pca: k=%d outside [1, min(%d,%d)]", k, n, m)
	}
	if opts.Oversample <= 0 {
		opts.Oversample = 8
	}
	if opts.PowerIters <= 0 {
		opts.PowerIters = 2
	}
	r := k + opts.Oversample
	if r > n {
		r = n
	}
	if r > m {
		r = m
	}
	if r < k {
		return nil, errors.New("pca: rank budget below k")
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	mean := columnMeans(d)

	// Y = Ac · Ω, with Ac = A − 1μᵀ applied implicitly.
	omega := randn(rng, m*r)
	y := centeredMul(d, mean, omega, r) // n×r
	orthonormalize(y, n, r)
	for it := 0; it < opts.PowerIters; it++ {
		z := centeredMulT(d, mean, y, r) // m×r = Acᵀ·Y
		orthonormalize(z, m, r)
		y = centeredMul(d, mean, z, r)
		orthonormalize(y, n, r)
	}

	// B = Yᵀ·Ac (r×m); G = B·Bᵀ (r×r) shares eigenvectors with the
	// projected covariance.
	b := centeredMulT(d, mean, y, r) // m×r, i.e. Bᵀ column-major by probe
	g := gram(b, m, r)               // r×r
	vals, vecs := jacobiEigen(g, r)

	// Principal directions: columns of Bᵀ·U, normalized. Eigen pairs are
	// sorted descending.
	res := &Result{K: k, Mean: mean, Components: make([]float64, k*m), Variance: make([]float64, k), m: m}
	for c := 0; c < k; c++ {
		row := res.Components[c*m : (c+1)*m]
		for j := 0; j < m; j++ {
			var s float64
			for t := 0; t < r; t++ {
				s += b[j*r+t] * vecs[t*r+c]
			}
			row[j] = s
		}
		norm := 0.0
		for _, v := range row {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm > 0 {
			for j := range row {
				row[j] /= norm
			}
		}
		if n > 1 {
			res.Variance[c] = vals[c] / float64(n-1)
		} else {
			res.Variance[c] = vals[c]
		}
	}
	return res, nil
}

// Transform projects a dataset onto the fitted components, producing a dense
// k-dimensional dataset with the original labels.
func (r *Result) Transform(d *dataset.Dataset) (*dataset.Dataset, error) {
	if d.NumFeatures != r.m {
		return nil, fmt.Errorf("pca: dataset has %d features, model fitted on %d", d.NumFeatures, r.m)
	}
	// Precompute component·mean offsets so sparse rows project in O(nnz·k).
	offsets := make([]float64, r.K)
	for c := 0; c < r.K; c++ {
		row := r.Components[c*r.m : (c+1)*r.m]
		var s float64
		for j, mu := range r.Mean {
			s += row[j] * mu
		}
		offsets[c] = s
	}
	b := dataset.NewBuilder(r.K)
	proj := make([]float32, r.K)
	for i := 0; i < d.NumRows(); i++ {
		in := d.Row(i)
		for c := 0; c < r.K; c++ {
			row := r.Components[c*r.m : (c+1)*r.m]
			s := -offsets[c]
			for j, f := range in.Indices {
				s += row[f] * float64(in.Values[j])
			}
			proj[c] = float32(s)
		}
		b.AddDense(proj, in.Label)
	}
	return b.Build(), nil
}

// columnMeans returns the per-feature means of the sparse matrix.
func columnMeans(d *dataset.Dataset) []float64 {
	mean := make([]float64, d.NumFeatures)
	for i := 0; i < d.NumRows(); i++ {
		in := d.Row(i)
		for j, f := range in.Indices {
			mean[f] += float64(in.Values[j])
		}
	}
	inv := 1.0 / float64(d.NumRows())
	for j := range mean {
		mean[j] *= inv
	}
	return mean
}

func randn(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

// centeredMul computes (A − 1μᵀ)·W for W m×r row-major; result n×r.
func centeredMul(d *dataset.Dataset, mean, w []float64, r int) []float64 {
	n := d.NumRows()
	out := make([]float64, n*r)
	muW := make([]float64, r) // μᵀ·W
	for j, mu := range mean {
		if mu == 0 {
			continue
		}
		row := w[j*r : (j+1)*r]
		for c := 0; c < r; c++ {
			muW[c] += mu * row[c]
		}
	}
	for i := 0; i < n; i++ {
		dst := out[i*r : (i+1)*r]
		copy(dst, muW)
		for c := range dst {
			dst[c] = -dst[c]
		}
		in := d.Row(i)
		for j, f := range in.Indices {
			v := float64(in.Values[j])
			row := w[int(f)*r : int(f+1)*r]
			for c := 0; c < r; c++ {
				dst[c] += v * row[c]
			}
		}
	}
	return out
}

// centeredMulT computes (A − 1μᵀ)ᵀ·Y for Y n×r row-major; result m×r.
func centeredMulT(d *dataset.Dataset, mean, y []float64, r int) []float64 {
	n, m := d.NumRows(), len(mean)
	out := make([]float64, m*r)
	colSum := make([]float64, r) // 1ᵀ·Y
	for i := 0; i < n; i++ {
		row := y[i*r : (i+1)*r]
		for c := 0; c < r; c++ {
			colSum[c] += row[c]
		}
		in := d.Row(i)
		for j, f := range in.Indices {
			v := float64(in.Values[j])
			dst := out[int(f)*r : int(f+1)*r]
			for c := 0; c < r; c++ {
				dst[c] += v * row[c]
			}
		}
	}
	for j, mu := range mean {
		if mu == 0 {
			continue
		}
		dst := out[j*r : (j+1)*r]
		for c := 0; c < r; c++ {
			dst[c] -= mu * colSum[c]
		}
	}
	return out
}

// orthonormalize runs modified Gram-Schmidt on the r columns of the n×r
// row-major matrix in place. Degenerate columns are replaced with zeros.
func orthonormalize(a []float64, n, r int) {
	for c := 0; c < r; c++ {
		for prev := 0; prev < c; prev++ {
			var dot float64
			for i := 0; i < n; i++ {
				dot += a[i*r+c] * a[i*r+prev]
			}
			for i := 0; i < n; i++ {
				a[i*r+c] -= dot * a[i*r+prev]
			}
		}
		var norm float64
		for i := 0; i < n; i++ {
			norm += a[i*r+c] * a[i*r+c]
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			for i := 0; i < n; i++ {
				a[i*r+c] = 0
			}
			continue
		}
		for i := 0; i < n; i++ {
			a[i*r+c] /= norm
		}
	}
}

// gram computes BᵀB for the m×r row-major matrix b — the r×r projected Gram
// matrix.
func gram(b []float64, m, r int) []float64 {
	g := make([]float64, r*r)
	for i := 0; i < m; i++ {
		row := b[i*r : (i+1)*r]
		for a := 0; a < r; a++ {
			va := row[a]
			if va == 0 {
				continue
			}
			for c := a; c < r; c++ {
				g[a*r+c] += va * row[c]
			}
		}
	}
	for a := 0; a < r; a++ {
		for c := 0; c < a; c++ {
			g[a*r+c] = g[c*r+a]
		}
	}
	return g
}

// jacobiEigen diagonalizes a symmetric r×r matrix with the cyclic Jacobi
// method, returning eigenvalues and row-major eigenvectors (columns are
// eigenvectors), sorted by descending eigenvalue.
func jacobiEigen(a []float64, r int) (vals []float64, vecs []float64) {
	v := make([]float64, r*r)
	for i := 0; i < r; i++ {
		v[i*r+i] = 1
	}
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < r; i++ {
			for j := i + 1; j < r; j++ {
				off += a[i*r+j] * a[i*r+j]
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < r-1; p++ {
			for q := p + 1; q < r; q++ {
				apq := a[p*r+q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := a[p*r+p], a[q*r+q]
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for i := 0; i < r; i++ {
					aip, aiq := a[i*r+p], a[i*r+q]
					a[i*r+p] = c*aip - s*aiq
					a[i*r+q] = s*aip + c*aiq
				}
				for i := 0; i < r; i++ {
					api, aqi := a[p*r+i], a[q*r+i]
					a[p*r+i] = c*api - s*aqi
					a[q*r+i] = s*api + c*aqi
				}
				for i := 0; i < r; i++ {
					vip, viq := v[i*r+p], v[i*r+q]
					v[i*r+p] = c*vip - s*viq
					v[i*r+q] = s*vip + c*viq
				}
			}
		}
	}
	vals = make([]float64, r)
	for i := 0; i < r; i++ {
		vals[i] = a[i*r+i]
	}
	// sort descending, permuting eigenvector columns alongside
	order := make([]int, r)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < r; i++ {
		best := i
		for j := i + 1; j < r; j++ {
			if vals[order[j]] > vals[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	sortedVals := make([]float64, r)
	sortedVecs := make([]float64, r*r)
	for c, o := range order {
		sortedVals[c] = vals[o]
		for i := 0; i < r; i++ {
			sortedVecs[i*r+c] = v[i*r+o]
		}
	}
	return sortedVals, sortedVecs
}
