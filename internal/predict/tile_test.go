package predict_test

// Differential coverage for the tile-shared negative-row batch path
// (bvtile.go): batches sized across every tile boundary, rows mixing
// negative, non-negative, NaN, explicit-zero, and empty shapes, single- and
// multi-block ensembles — all held to Float64bits equality against the
// interpreted walk and against solo Engine.Predict calls (the coalescer's
// invariant: batching must not change a single bit).

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dimboost/internal/core"
	"dimboost/internal/dataset"
	"dimboost/internal/loss"
	"dimboost/internal/predict"
)

// negInstance draws a sparse row guaranteed to carry at least one negative
// value, the shape standardized (zero-mean) features produce.
func negInstance(rng *rand.Rand, rowFeatures int) dataset.Instance {
	n := 1 + rng.Intn(min(rowFeatures, 48))
	seen := map[int32]bool{}
	var idx []int32
	for len(idx) < n {
		f := int32(rng.Intn(rowFeatures))
		if !seen[f] {
			seen[f] = true
			idx = append(idx, f)
		}
	}
	sortInt32s(idx)
	vals := make([]float32, n)
	for i := range vals {
		switch rng.Intn(6) {
		case 0:
			vals[i] = 0 // explicit zero inside a negative row
		case 1:
			vals[i] = float32(math.NaN())
		default:
			vals[i] = float32(math.Round(rng.NormFloat64()*100) / 100)
		}
	}
	vals[rng.Intn(n)] = -float32(0.01 + rng.Float64()) // force a negative
	return dataset.Instance{Indices: idx, Values: vals}
}

func TestDifferentialTileBatches(t *testing.T) {
	for _, tc := range []struct {
		name     string
		trees    int
		features int
	}{
		{"single-block", 40, 300},
		{"multi-block", predict.BlockTrees + 25, 200},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := newRand(977)
			m := &core.Model{Loss: loss.Squared, BaseScore: 0.25}
			for i := 0; i < tc.trees; i++ {
				m.Trees = append(m.Trees, randTree(rng, 1+rng.Intn(6), tc.features))
			}
			eng, err := predict.CompileBackend(m.Trees, m.BaseScore, predict.BackendBitvector)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			// Batch sizes straddle the tile width (16): partial tiles, exact
			// tiles, a tile plus a remainder, and multiple tiles.
			for _, size := range []int{1, 2, 15, 16, 17, 31, 32, 33, 61} {
				ins := make([]dataset.Instance, size)
				for i := range ins {
					if i%4 == 3 {
						// Interleave non-negative rows so the batch splits
						// between the tile path and the per-row fast path.
						ins[i] = randInstance(rng, tc.features)
					} else {
						ins[i] = negInstance(rng, tc.features)
					}
				}
				got := eng.PredictInstances(ins)
				for i, in := range ins {
					want := m.Predict(in)
					if math.Float64bits(got[i]) != math.Float64bits(want) {
						t.Fatalf("size %d row %d: batched %v != interpreted %v", size, i, got[i], want)
					}
					solo := eng.Predict(in)
					if math.Float64bits(got[i]) != math.Float64bits(solo) {
						t.Fatalf("size %d row %d: batched %v != solo %v", size, i, got[i], solo)
					}
				}
			}
		})
	}
}

// TestPredictInstancesInto pins the allocation-free contract the coalescer
// relies on, and the length panic.
func TestPredictInstancesInto(t *testing.T) {
	rng := newRand(31)
	m := randModel(rng, 80)
	eng, err := predict.Compile(m.Trees, m.BaseScore)
	if err != nil {
		t.Fatal(err)
	}
	ins := make([]dataset.Instance, 24)
	for i := range ins {
		ins[i] = negInstance(rng, 80)
	}
	out := make([]float64, len(ins))
	// Warm the scratch pool, then the steady state must not allocate (race
	// instrumentation allocates shadow state, so skip the count there).
	eng.PredictInstancesInto(ins, out)
	if !raceEnabled {
		allocs := testing.AllocsPerRun(50, func() {
			eng.PredictInstancesInto(ins, out)
		})
		if allocs != 0 {
			t.Fatalf("PredictInstancesInto allocates %.1f/op, want 0", allocs)
		}
	}
	want := eng.PredictInstances(ins)
	for i := range want {
		if math.Float64bits(out[i]) != math.Float64bits(want[i]) {
			t.Fatalf("row %d: into %v != alloc %v", i, out[i], want[i])
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("short out slice did not panic")
			}
		}()
		eng.PredictInstancesInto(ins, make([]float64, 3))
	}()
}

func TestPreferredBatch(t *testing.T) {
	rng := newRand(7)
	m := randModel(rng, 50)
	eng, err := predict.Compile(m.Trees, m.BaseScore)
	if err != nil {
		t.Fatal(err)
	}
	if pb := eng.PreferredBatch(); pb < 256 {
		t.Fatalf("PreferredBatch = %d, want >= one chunk (256)", pb)
	}
	eng.Workers = 3
	if pb := eng.PreferredBatch(); pb != 3*256 {
		t.Fatalf("PreferredBatch with 3 workers = %d, want %d", pb, 3*256)
	}
}

// BenchmarkTileNegativeRows records the tile-shared path against solo
// scoring on standardized (negative-carrying) rows — the workload the serve
// coalescer feeds. Solo scoring pays the absent-feature negative-prefix
// pass per row; the tile path pays it once per 16 rows.
func BenchmarkTileNegativeRows(b *testing.B) {
	for _, trees := range []int{512, 2048} {
		rng := newRand(55)
		m := &core.Model{Loss: loss.Squared, BaseScore: 0.5}
		for i := 0; i < trees; i++ {
			m.Trees = append(m.Trees, randTree(rng, 7, 5000))
		}
		eng, err := predict.CompileBackend(m.Trees, m.BaseScore, predict.BackendBitvector)
		if err != nil {
			b.Fatal(err)
		}
		ins := make([]dataset.Instance, 256)
		for i := range ins {
			ins[i] = negInstance(rng, 5000)
		}
		out := make([]float64, len(ins))
		b.Run(fmt.Sprintf("trees=%d/batched", trees), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.PredictInstancesInto(ins, out)
			}
			b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N*len(ins)), "µs/row")
		})
		b.Run(fmt.Sprintf("trees=%d/solo", trees), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, in := range ins {
					eng.Predict(in)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N*len(ins)), "µs/row")
		})
	}
}
