package predict_test

import (
	"math"
	"testing"

	"dimboost/internal/dataset"
	"dimboost/internal/predict"
	"dimboost/internal/tree"
)

func inst(kv map[int]float32) dataset.Instance {
	var idx []int32
	for f := range kv {
		idx = append(idx, int32(f))
	}
	sortInt32s(idx)
	vals := make([]float32, len(idx))
	for i, f := range idx {
		vals[i] = kv[int(f)]
	}
	return dataset.Instance{Indices: idx, Values: vals}
}

// TestEngineBoundarySemantics pins the exact-comparison contract: missing
// features read as 0, and x <= threshold goes left (including x == threshold
// and threshold 0 with the feature absent).
func TestEngineBoundarySemantics(t *testing.T) {
	tr := tree.New(3)
	tr.SetSplit(0, 7, 0, 1)       // x[7] <= 0 ?
	tr.SetSplit(1, 2, 0.25, 1)    // left:  x[2] <= 0.25 ?
	tr.SetLeaf(tree.Left(1), 10)  // x[7]<=0, x[2]<=0.25
	tr.SetLeaf(tree.Right(1), 20) // x[7]<=0, x[2]>0.25
	tr.SetLeaf(2, 30)             // x[7]>0

	eng, err := predict.Compile([]*tree.Tree{tr}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		in   dataset.Instance
		want float64
	}{
		{inst(nil), 10.5},                      // all missing: 0<=0 left, 0<=0.25 left
		{inst(map[int]float32{7: 0}), 10.5},    // explicit zero == missing
		{inst(map[int]float32{2: 0.25}), 10.5}, // exactly on the threshold goes left
		{inst(map[int]float32{2: 0.2500001}), 20.5},
		{inst(map[int]float32{7: -3, 2: 1}), 20.5},
		{inst(map[int]float32{7: 1e-9}), 30.5},
		{inst(map[int]float32{7: 5, 2: 5, 999: 1}), 30.5}, // index past the remap table
	}
	for i, c := range cases {
		if got := eng.Predict(c.in); got != c.want {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
		if got := tr.Predict(c.in) + 0.5; got != c.want {
			t.Errorf("case %d: interpreted reference drifted: %v != %v", i, got, c.want)
		}
	}
}

// TestEngineLeafOnlyEnsemble compiles trees with no splits at all: the
// compact feature space is empty and every row scores base + Σ weights.
func TestEngineLeafOnlyEnsemble(t *testing.T) {
	t1, t2 := tree.New(2), tree.New(4)
	t1.SetLeaf(0, 1.25)
	t2.SetLeaf(0, -0.5)
	eng, err := predict.Compile([]*tree.Tree{t1, t2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if eng.NumFeatures() != 0 {
		t.Fatalf("compact features = %d, want 0", eng.NumFeatures())
	}
	if eng.NumNodes() != 2 || eng.NumTrees() != 2 {
		t.Fatalf("nodes=%d trees=%d, want 2/2", eng.NumNodes(), eng.NumTrees())
	}
	if got := eng.Predict(inst(map[int]float32{3: 9})); got != 2.75 {
		t.Fatalf("got %v, want 2.75", got)
	}
}

// TestEngineEmptyEnsemble: zero trees score the base everywhere.
func TestEngineEmptyEnsemble(t *testing.T) {
	eng, err := predict.Compile(nil, -1.5)
	if err != nil {
		t.Fatal(err)
	}
	b := dataset.NewBuilder(4)
	_ = b.Add([]int32{1}, []float32{2}, 0)
	_ = b.Add(nil, nil, 0)
	out := eng.PredictBatch(b.Build())
	for i, v := range out {
		if v != -1.5 {
			t.Fatalf("row %d: got %v, want -1.5", i, v)
		}
	}
}

// TestCompileRejectsInvalidTree: structurally broken trees fail Compile
// rather than producing an engine with undefined behavior.
func TestCompileRejectsInvalidTree(t *testing.T) {
	bad := &tree.Tree{MaxDepth: 2, Nodes: make([]tree.Node, tree.MaxNodes(2))}
	// Root marked internal with no children created.
	bad.Nodes[0] = tree.Node{Used: true, Feature: 0}
	if _, err := predict.Compile([]*tree.Tree{bad}, 0); err == nil {
		t.Fatal("compile accepted an invalid tree")
	}
}

// TestPredictBatchIntoReuse: repeated Into calls over the same buffer give
// stable results — the scatter buffers fully reset between rows.
func TestPredictBatchIntoReuse(t *testing.T) {
	tr := tree.New(2)
	tr.SetSplit(0, 0, 0.5, 1)
	tr.SetLeaf(1, 1)
	tr.SetLeaf(2, 2)
	eng, err := predict.Compile([]*tree.Tree{tr}, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng.Workers = 1
	b := dataset.NewBuilder(1)
	_ = b.Add([]int32{0}, []float32{1}, 0) // > 0.5 → 2
	_ = b.Add(nil, nil, 0)                 // missing → 1
	ds := b.Build()
	out := make([]float64, ds.NumRows())
	for pass := 0; pass < 3; pass++ {
		eng.PredictBatchInto(ds, out)
		if out[0] != 2 || out[1] != 1 {
			t.Fatalf("pass %d: got %v, want [2 1]", pass, out)
		}
	}
}

// TestEngineParallelMatchesSerial: the worker pool partitions rows without
// changing a single bit relative to the inline path.
func TestEngineParallelMatchesSerial(t *testing.T) {
	rngModel := randModel(newRand(5), 2000)
	eng, err := predict.Compile(rngModel.Trees, rngModel.BaseScore)
	if err != nil {
		t.Fatal(err)
	}
	b := dataset.NewBuilder(0)
	rng := newRand(6)
	for r := 0; r < 2000; r++ { // several chunks' worth of rows
		in := randInstance(rng, 2000)
		if err := b.Add(in.Indices, in.Values, 0); err != nil {
			t.Fatal(err)
		}
	}
	ds := b.Build()
	eng.Workers = 1
	serial := eng.PredictBatch(ds)
	eng.Workers = 0
	parallel := eng.PredictBatch(ds)
	for i := range serial {
		if math.Float64bits(serial[i]) != math.Float64bits(parallel[i]) {
			t.Fatalf("row %d: serial %v != parallel %v", i, serial[i], parallel[i])
		}
	}
}
