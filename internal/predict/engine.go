// Package predict is DimBoost's compiled inference engine: it flattens a
// trained ensemble into a structure-of-arrays layout and scores rows against
// it without the per-node binary searches of the interpreted tree walk.
//
// The interpreted path (tree.Predict over dataset.Instance) answers "what is
// x[f]?" at every node visit with an O(log nnz) sort.Search over the sparse
// row — the same access pattern §5 of the paper eliminates from histogram
// construction with precomputed indices. The compiled engine applies the
// identical idea to serving, the way XGBoost's and LightGBM's predictors
// flatten trees into contiguous node arrays:
//
//   - Compile walks every tree once and emits its used nodes, breadth-first,
//     into four ensemble-wide parallel slices (feature, threshold, left
//     child, leaf weight). Sibling nodes are adjacent (right = left+1), so a
//     node visit is a couple of contiguous loads and one branch — no Node
//     struct, no Used bookkeeping, no pointer chasing.
//   - The global feature space (330K-wide for the paper's Gender dataset) is
//     remapped to the compact set of features the ensemble actually splits
//     on, which for depth-8 ensembles of a few hundred trees is a few
//     thousand at most.
//   - A row is scored by scattering its sparse entries once into a pooled
//     dense buffer over the compact feature space, walking every tree with
//     O(1) feature loads, then zeroing only the touched slots. Buffers are
//     recycled through a sync.Pool, so steady-state scoring allocates
//     nothing.
//
// Since PR 7 the engine has a second, faster representation: the
// QuickScorer-style bitvector backend (bitvector.go) replaces the per-node
// branches of the SoA walk with a branch-free sweep over per-feature sorted
// condition arrays. Compile auto-selects it whenever every tree fits the
// 64-bit leaf mask; CompileBackend forces either representation, and both
// sit behind the same Engine API.
//
// Exactness: both backends are bit-identical to the interpreted walk, and
// the differential tests in this package prove it. Missing features read as
// 0 (the scatter buffer's resting state), the split comparison preserves
// float64(float32 value) <= threshold semantics exactly (the bitvector
// backend via a rounding-aware float32 threshold compilation), and trees
// accumulate in the same order with the same float64 additions, so every
// rounding step matches.
package predict

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dimboost/internal/dataset"
	"dimboost/internal/obs"
	"dimboost/internal/tree"
)

// Backend selects the scoring representation an Engine compiles to.
type Backend uint8

const (
	// BackendAuto picks the bitvector backend when every tree fits the
	// leaf-mask width (BitvectorMaxLeaves) and falls back to the SoA walk
	// otherwise.
	BackendAuto Backend = iota
	// BackendSoA is the structure-of-arrays root-to-leaf walk (PR 4).
	BackendSoA
	// BackendBitvector is the QuickScorer-style branch-free traversal; see
	// bitvector.go. Compiling an ensemble with a tree past
	// BitvectorMaxLeaves leaves fails.
	BackendBitvector
)

// String returns the flag-friendly backend name.
func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendSoA:
		return "soa"
	case BackendBitvector:
		return "bitvector"
	}
	return fmt.Sprintf("backend(%d)", uint8(b))
}

// ParseBackend parses a -engine style selector value.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "auto", "":
		return BackendAuto, nil
	case "soa":
		return BackendSoA, nil
	case "bitvector", "bv", "quickscorer":
		return BackendBitvector, nil
	}
	return BackendAuto, fmt.Errorf("predict: unknown backend %q (want auto, soa, or bitvector)", s)
}

// Engine scores rows against a compiled ensemble. It is safe for concurrent
// use; all fields are read-only after Compile.
type Engine struct {
	// Workers bounds the goroutines a batch call may use; 0 means
	// runtime.GOMAXPROCS(0). Set it before the first batch call.
	Workers int

	base    float64
	backend Backend // resolved: BackendSoA or BackendBitvector
	nodes   int     // used nodes across all trees, backend-independent

	// Structure-of-arrays node storage, ensemble-wide (SoA backend only).
	// Node i is a leaf iff left[i] < 0; leaves read weight[i], internal
	// nodes read feature[i] (a compact feature id), threshold[i], and
	// children left[i], left[i]+1.
	feature   []int32
	threshold []float64
	left      []int32
	weight    []float64
	// roots[t] is the slot of tree t's root.
	roots []int32

	// bv32/bv64 are the bitvector backend's storage at its compiled mask
	// width (both nil for the SoA backend; at most one is set).
	bv32 *bvEngine[uint32]
	bv64 *bvEngine[uint64]

	// remap translates global feature ids to compact ids ([0, numCompact));
	// -1 marks features the ensemble never splits on. Global ids past
	// len(remap) are likewise unused.
	remap      []int32
	numCompact int
	numTrees   int

	// Per-backend instruments, resolved once at compile so the hot path
	// pays two atomic adds per batch regardless of backend.
	mRows  *obs.Counter
	mBatch *obs.Histogram

	pool sync.Pool // *scratch
}

// scratch is one worker's scoring state: a dense buffer over the compact
// feature space, the list of slots the current row dirtied, and (bitvector
// backend) one block's worth of per-tree leaf vectors.
type scratch struct {
	dense   []float32
	touched []int32
	// vals pairs with touched on the bitvector path: the row's values in
	// compact-feature order, so the common sweep never builds the dense
	// buffer at all.
	vals []float32
	// vec32/vec64 are fixed-width arrays (not slices) so the sweep's
	// leaf-vector updates index them as vec[tree&(bvBlockTrees-1)] — a
	// no-op mask that proves the index in-bounds and drops the bounds
	// check from the hottest loop in the backend. Only the engine's
	// compiled mask width is allocated.
	vec32 *[bvBlockTrees]uint32
	vec64 *[bvBlockTrees]uint64

	// Tile-shared batch scoring state (bvtile.go): the shared base vector,
	// per-tile-row staged features, the tile union with its membership
	// stamps, and the resolved per-block union runs.
	tileVec32   *[bvBlockTrees]uint32
	tileVec64   *[bvBlockTrees]uint64
	tileRows    []int32
	tileTouched [bvTileRows][]int32
	tileVals    [bvTileRows][]float32
	stamp       []int32
	stampEpoch  int32
	union       []int32
	unionRuns   []bvUnionRun
}

// Compile flattens a trained ensemble (trees plus base score) into an
// Engine, auto-selecting the backend. Each tree must satisfy tree.Validate;
// the trees are not retained and may be mutated afterwards without affecting
// the engine.
func Compile(trees []*tree.Tree, baseScore float64) (*Engine, error) {
	return CompileBackend(trees, baseScore, BackendAuto)
}

// CompileBackend is Compile with an explicit backend selection.
// BackendBitvector fails when any tree has more than BitvectorMaxLeaves
// used leaves; BackendAuto falls back to BackendSoA in that case.
func CompileBackend(trees []*tree.Tree, baseScore float64, backend Backend) (*Engine, error) {
	start := time.Now()

	// Pass 1: validate, count nodes, collect the features the ensemble
	// references (shared by both backends).
	maxFeat := int32(-1)
	used := map[int32]struct{}{}
	nodes := 0
	for ti, t := range trees {
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("predict: tree %d: %w", ti, err)
		}
		for i := range t.Nodes {
			n := &t.Nodes[i]
			if !n.Used {
				continue
			}
			nodes++
			if n.Leaf {
				continue
			}
			if n.Feature < 0 {
				return nil, fmt.Errorf("predict: tree %d node %d: negative feature %d", ti, i, n.Feature)
			}
			used[n.Feature] = struct{}{}
			if n.Feature > maxFeat {
				maxFeat = n.Feature
			}
		}
	}

	resolved := backend
	if maxL, at := maxLeafCount(trees); maxL > BitvectorMaxLeaves {
		switch backend {
		case BackendBitvector:
			return nil, fmt.Errorf("predict: tree %d has %d leaves: %w", at, maxL, errTooManyLeaves)
		case BackendAuto:
			resolved = BackendSoA
		}
	} else if backend == BackendAuto {
		resolved = BackendBitvector
	}

	e := &Engine{
		base:       baseScore,
		backend:    resolved,
		nodes:      nodes,
		numCompact: len(used),
		numTrees:   len(trees),
	}

	// Compact ids follow global feature order so the layout is deterministic.
	feats := make([]int32, 0, len(used))
	for f := range used {
		feats = append(feats, f)
	}
	sort.Slice(feats, func(a, b int) bool { return feats[a] < feats[b] })
	e.remap = make([]int32, maxFeat+1)
	for i := range e.remap {
		e.remap[i] = -1
	}
	for c, f := range feats {
		e.remap[f] = int32(c)
	}

	if resolved == BackendBitvector {
		compileBitvector(e, trees)
	} else {
		compileSoA(e, trees, nodes)
	}

	e.pool.New = func() any {
		s := &scratch{dense: make([]float32, e.numCompact)}
		if e.bv32 != nil {
			s.vec32 = new([bvBlockTrees]uint32)
			s.tileVec32 = new([bvBlockTrees]uint32)
		} else if e.bv64 != nil {
			s.vec64 = new([bvBlockTrees]uint64)
			s.tileVec64 = new([bvBlockTrees]uint64)
		}
		if e.bv32 != nil || e.bv64 != nil {
			s.stamp = make([]int32, e.numCompact)
		}
		return s
	}
	pm := predictMetrics()
	be := pm.backend(resolved.String())
	e.mRows = be.rows
	e.mBatch = be.batchSeconds
	be.compiles.Inc()
	be.compileSeconds.ObserveSince(start)
	pm.engineNodes.Set(int64(nodes))
	pm.engineFeatures.Set(int64(e.numCompact))
	return e, nil
}

// compileSoA emits each tree's used nodes breadth-first into the four
// parallel node slices. Visiting a split appends both children
// consecutively, so right = left+1 ensemble-wide.
func compileSoA(e *Engine, trees []*tree.Tree, nodes int) {
	e.feature = make([]int32, 0, nodes)
	e.threshold = make([]float64, 0, nodes)
	e.left = make([]int32, 0, nodes)
	e.weight = make([]float64, 0, nodes)
	e.roots = make([]int32, 0, len(trees))
	type pending struct{ implicit, slot int32 }
	var queue []pending
	for _, t := range trees {
		root := e.newNode()
		e.roots = append(e.roots, root)
		queue = append(queue[:0], pending{0, root})
		for head := 0; head < len(queue); head++ {
			p := queue[head]
			n := &t.Nodes[p.implicit]
			if n.Leaf {
				e.left[p.slot] = -1
				e.weight[p.slot] = n.Weight
				continue
			}
			l := e.newNode()
			e.newNode() // right child, slot l+1
			e.feature[p.slot] = e.remap[n.Feature]
			e.threshold[p.slot] = n.Value
			e.left[p.slot] = l
			queue = append(queue,
				pending{int32(tree.Left(int(p.implicit))), l},
				pending{int32(tree.Right(int(p.implicit))), l + 1})
		}
	}
}

// newNode appends one zeroed node slot and returns its index.
func (e *Engine) newNode() int32 {
	i := int32(len(e.left))
	e.feature = append(e.feature, 0)
	e.threshold = append(e.threshold, 0)
	e.left = append(e.left, 0)
	e.weight = append(e.weight, 0)
	return i
}

// Backend returns the resolved backend the engine compiled to (never
// BackendAuto).
func (e *Engine) Backend() Backend { return e.backend }

// NumNodes returns the compiled node count (used nodes across all trees).
func (e *Engine) NumNodes() int { return e.nodes }

// NumTrees returns the number of trees in the compiled ensemble.
func (e *Engine) NumTrees() int { return e.numTrees }

// NumFeatures returns the size of the compact feature space — the distinct
// features the ensemble splits on.
func (e *Engine) NumFeatures() int { return e.numCompact }

// SizeBytes estimates the engine's in-memory footprint.
func (e *Engine) SizeBytes() int64 {
	n := int64(len(e.remap)) * 4
	if e.bv32 != nil {
		return n + e.bv32.sizeBytes()
	}
	if e.bv64 != nil {
		return n + e.bv64.sizeBytes()
	}
	return n + int64(len(e.left))*(4+8+4+8) + int64(len(e.roots))*4
}

// predictRow scatters one sparse row into the scratch buffer, scores it
// through the resolved backend, and restores the buffer to all-zero. It
// allocates only when the row's nonzero count exceeds every earlier row's
// (growing touched).
func (e *Engine) predictRow(s *scratch, indices []int32, values []float32) float64 {
	if e.backend == BackendBitvector {
		return e.predictRowBV(s, indices, values)
	}
	return e.predictRowSoA(s, indices, values)
}

// predictRowSoA is the PR 4 root-to-leaf walk over the structure-of-arrays
// node slices — one data-dependent branch per node visit.
func (e *Engine) predictRowSoA(s *scratch, indices []int32, values []float32) float64 {
	remap := e.remap
	for j, idx := range indices {
		if int(idx) >= len(remap) {
			// Indices are sorted ascending; everything after is unused too.
			break
		}
		if c := remap[idx]; c >= 0 {
			s.dense[c] = values[j]
			s.touched = append(s.touched, c)
		}
	}
	sum := e.base
	for _, i := range e.roots {
		for e.left[i] >= 0 {
			if float64(s.dense[e.feature[i]]) <= e.threshold[i] {
				i = e.left[i]
			} else {
				i = e.left[i] + 1
			}
		}
		sum += e.weight[i]
	}
	for _, c := range s.touched {
		s.dense[c] = 0
	}
	s.touched = s.touched[:0]
	return sum
}

// predictRows scores rows [lo, hi) of a batch on one scratch. The bitvector
// backend routes through predictRowsBV, which batches rows with negative
// values into tile-shared scoring (bvtile.go); results are bit-identical to
// per-row scoring either way.
func (e *Engine) predictRows(s *scratch, bt batch, lo, hi int, out []float64) {
	if e.backend == BackendBitvector {
		e.predictRowsBV(s, bt, lo, hi, out)
		return
	}
	for i := lo; i < hi; i++ {
		idx, vals := bt.row(i)
		out[i] = e.predictRow(s, idx, vals)
	}
}

// Predict scores a single instance.
func (e *Engine) Predict(in dataset.Instance) float64 {
	s := e.pool.Get().(*scratch)
	v := e.predictRow(s, in.Indices, in.Values)
	e.pool.Put(s)
	return v
}

// PredictBatch scores every row of a dataset in parallel and returns the raw
// model outputs.
func (e *Engine) PredictBatch(d *dataset.Dataset) []float64 {
	return e.PredictBatchInto(d, make([]float64, d.NumRows()))
}

// PredictBatchInto is PredictBatch writing into a caller-provided slice of
// length d.NumRows(), for allocation-free steady-state scoring.
func (e *Engine) PredictBatchInto(d *dataset.Dataset, out []float64) []float64 {
	if len(out) != d.NumRows() {
		panic(fmt.Sprintf("predict: out length %d for %d rows", len(out), d.NumRows()))
	}
	e.predictAll(d.NumRows(), batch{d: d}, out)
	return out
}

// PredictInstances scores a slice of instances in parallel — the serving
// path, where requests arrive as instances rather than a Dataset.
func (e *Engine) PredictInstances(ins []dataset.Instance) []float64 {
	return e.PredictInstancesInto(ins, make([]float64, len(ins)))
}

// PredictInstancesInto is PredictInstances writing into a caller-provided
// slice of length len(ins). The single-worker steady state allocates
// nothing, which is what the serve coalescer relies on: it reuses one
// gather buffer and one score buffer across every flushed batch.
func (e *Engine) PredictInstancesInto(ins []dataset.Instance, out []float64) []float64 {
	if len(out) != len(ins) {
		panic(fmt.Sprintf("predict: out length %d for %d instances", len(out), len(ins)))
	}
	e.predictAll(len(ins), batch{ins: ins}, out)
	return out
}

// PreferredBatch returns the batch geometry the compiled backend is tuned
// for: enough rows to fill one scoring chunk per worker, so a batch call
// saturates the worker pool without leaving chunks stranded. Callers that
// assemble batches (the serve coalescer) use it as their target flush size.
func (e *Engine) PreferredBatch() int {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return chunkRows * workers
}

// batch lets Dataset and []Instance scoring share predictAll without a
// heap-allocated row-accessor closure (a plain value struct keeps the
// single-worker path at zero allocations).
type batch struct {
	d   *dataset.Dataset
	ins []dataset.Instance
}

func (bt batch) row(i int) ([]int32, []float32) {
	if bt.d != nil {
		lo, hi := bt.d.RowPtr[i], bt.d.RowPtr[i+1]
		return bt.d.Indices[lo:hi], bt.d.Values[lo:hi]
	}
	return bt.ins[i].Indices, bt.ins[i].Values
}

// chunkRows is the unit of work a batch worker claims at a time: large
// enough to amortize the claim, small enough to balance skewed rows.
const chunkRows = 256

// predictAll scores rows [0, n) through the worker pool.
func (e *Engine) predictAll(n int, bt batch, out []float64) {
	if n == 0 {
		return
	}
	start := time.Now()
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunks := (n + chunkRows - 1) / chunkRows
	if workers > chunks {
		workers = chunks
	}
	if workers == 1 {
		// Inline on the caller's goroutine: the steady-state path allocates
		// nothing (the scratch comes from the pool, out from the caller).
		s := e.pool.Get().(*scratch)
		e.predictRows(s, bt, 0, n, out)
		e.pool.Put(s)
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				s := e.pool.Get().(*scratch)
				defer e.pool.Put(s)
				for {
					c := int(next.Add(1)) - 1
					if c >= chunks {
						return
					}
					lo, hi := c*chunkRows, min((c+1)*chunkRows, n)
					e.predictRows(s, bt, lo, hi, out)
				}
			}()
		}
		wg.Wait()
	}
	e.mRows.Add(int64(n))
	e.mBatch.ObserveSince(start)
}
