package predict_test

// Metrics accounting contract: dimboost_predict_rows_total{backend} and the
// dimboost_predict_batch_seconds{backend} histogram count each row exactly
// once per batch, and each batch exactly once, on every engine backend —
// for Dataset batches, instance batches, and across serial and parallel
// worker pools. (The single-row Predict path is deliberately unmetered: a
// per-call atomic on the µs-scale serving path is not worth it, and the
// serving tier meters requests itself.)

import (
	"testing"

	"dimboost/internal/dataset"
	"dimboost/internal/obs"
	"dimboost/internal/predict"
)

func TestMetricsCountRowsOncePerBatch(t *testing.T) {
	m := randModel(newRand(77), 120)
	b := dataset.NewBuilder(0)
	rng := newRand(78)
	for r := 0; r < 517; r++ { // not a multiple of the 256-row chunk size
		in := randInstance(rng, 120)
		if err := b.Add(in.Indices, in.Values, 0); err != nil {
			t.Fatal(err)
		}
	}
	ds := b.Build()
	ins := make([]dataset.Instance, 33)
	for i := range ins {
		ins[i] = randInstance(rng, 240)
	}

	for _, backend := range []predict.Backend{predict.BackendSoA, predict.BackendBitvector} {
		eng, err := predict.CompileBackend(m.Trees, m.BaseScore, backend)
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		// Resolving the instruments with the same name+labels returns the
		// live series, so deltas isolate this test from everything else the
		// package has already recorded.
		label := obs.L("backend", backend.String())
		rows := obs.Default().Counter("dimboost_predict_rows_total", "", label)
		batches := obs.Default().Histogram("dimboost_predict_batch_seconds", "", nil, label)
		rows0, batches0 := rows.Value(), batches.Count()

		out := make([]float64, ds.NumRows())
		eng.Workers = 1
		eng.PredictBatchInto(ds, out) // serial dataset batch
		eng.Workers = 0
		eng.PredictBatchInto(ds, out) // parallel dataset batch
		eng.PredictInstances(ins)     // instance batch
		eng.PredictBatch(ds)          // allocating dataset batch
		eng.PredictInstances(nil)     // empty batch: no rows, no observation
		wantRows := int64(3*ds.NumRows() + len(ins))
		const wantBatches = 4

		if got := rows.Value() - rows0; got != wantRows {
			t.Errorf("%v: rows_total delta = %d, want %d", backend, got, wantRows)
		}
		if got := batches.Count() - batches0; got != uint64(wantBatches) {
			t.Errorf("%v: batch_seconds count delta = %d, want %d", backend, got, wantBatches)
		}

		// The other backend's series must not move: scoring on one backend
		// never leaks into the other's accounting.
		other := predict.BackendSoA
		if backend == predict.BackendSoA {
			other = predict.BackendBitvector
		}
		otherRows := obs.Default().Counter("dimboost_predict_rows_total", "", obs.L("backend", other.String()))
		before := otherRows.Value()
		eng.PredictBatch(ds)
		if otherRows.Value() != before {
			t.Errorf("%v: scoring moved the %v rows_total series", backend, other)
		}
	}
}
