//go:build !race

package predict_test

const raceEnabled = false
