package predict_test

// FuzzEngineBackendsAgree is the native-fuzz arm of invariant 13: a random
// ensemble (derived deterministically from the fuzzed seed, with hostile
// thresholds — duplicates, non-float32-representable values, ±Inf, NaN) and
// a raw-bytes instance (hostile values including NaN/Inf bit patterns) must
// score bit-identically through the interpreted walk, the SoA engine, and
// the bitvector engine. Tree shapes are capped at depth 7 so the bitvector
// backend is always eligible and never silently skipped.

import (
	"math"
	"math/rand"
	"testing"

	"dimboost/internal/dataset"
	"dimboost/internal/predict"
	"dimboost/internal/tree"
)

// fuzzThresholds mixes exactly-representable values, float32 rounding
// boundaries, duplicates, and non-finite values.
var fuzzThresholds = []float64{
	-2.5, -1, 0, 0, 0.25, 0.25, 0.5, 1, 3,
	0.1, -0.3, 1.0 / 3.0, 1e-40, -1e-40, 3.5e38, -3.5e38,
	math.Inf(1), math.Inf(-1), math.NaN(),
	math.Copysign(0, -1), 5e-324,
}

// fuzzTree grows one tree from the rng; depth ≤ 7 keeps every tree inside
// the bitvector leaf-mask width.
func fuzzTree(rng *rand.Rand, maxDepth, numFeatures int) *tree.Tree {
	t := tree.New(maxDepth)
	var grow func(node, depth int)
	grow = func(node, depth int) {
		if depth >= maxDepth || rng.Float64() > 0.72 {
			t.SetLeaf(node, math.Round(rng.NormFloat64()*1000)/1000)
			return
		}
		v := fuzzThresholds[rng.Intn(len(fuzzThresholds))]
		if rng.Float64() < 0.25 {
			v = rng.NormFloat64()
		}
		t.SetSplit(node, int32(rng.Intn(numFeatures)), v, 1)
		grow(tree.Left(node), depth+1)
		grow(tree.Right(node), depth+1)
	}
	grow(0, 1)
	return t
}

// fuzzInstance decodes the raw fuzz bytes into a sparse instance: groups of
// five bytes become (index gap, float32 bits) pairs, so indices are always
// sorted strictly ascending while values cover every float32 bit pattern,
// NaNs and infinities included.
func fuzzInstance(raw []byte) dataset.Instance {
	var in dataset.Instance
	idx := int32(-1)
	for len(raw) >= 5 {
		idx += int32(raw[0]) + 1
		bits := uint32(raw[1]) | uint32(raw[2])<<8 | uint32(raw[3])<<16 | uint32(raw[4])<<24
		in.Indices = append(in.Indices, idx)
		in.Values = append(in.Values, math.Float32frombits(bits))
		raw = raw[5:]
	}
	return in
}

func FuzzEngineBackendsAgree(f *testing.F) {
	f.Add(int64(1), uint8(3), []byte{0, 0, 0, 128, 62})                         // 0.25 at feature 0
	f.Add(int64(7), uint8(40), []byte{2, 205, 204, 204, 61, 1, 0, 0, 192, 127}) // 0.1 then NaN
	f.Add(int64(99), uint8(0), []byte{})                                        // empty row
	f.Add(int64(-5), uint8(255), []byte{0, 0, 0, 128, 255, 0, 0, 0, 128, 127})  // -Inf, +Inf
	f.Add(int64(1234), uint8(17), []byte{10, 255, 255, 255, 255, 10, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, seed int64, shape uint8, raw []byte) {
		rng := rand.New(rand.NewSource(seed))
		maxDepth := 1 + int(shape)%7
		numTrees := 1 + int(shape/7)%8
		numFeatures := 1 + rng.Intn(300)

		trees := make([]*tree.Tree, numTrees)
		for i := range trees {
			trees[i] = fuzzTree(rng, 1+rng.Intn(maxDepth), numFeatures)
		}
		base := math.Round(rng.NormFloat64()*100) / 100

		soa, err := predict.CompileBackend(trees, base, predict.BackendSoA)
		if err != nil {
			t.Fatalf("soa compile: %v", err)
		}
		bv, err := predict.CompileBackend(trees, base, predict.BackendBitvector)
		if err != nil {
			t.Fatalf("bitvector compile (depth ≤ 7 must be eligible): %v", err)
		}

		in := fuzzInstance(raw)
		want := base
		for _, tr := range trees {
			want += tr.Predict(in)
		}
		for _, eng := range []*predict.Engine{soa, bv} {
			got := eng.Predict(in)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%v engine: %v (bits %x) != interpreted %v (bits %x)",
					eng.Backend(), got, math.Float64bits(got), want, math.Float64bits(want))
			}
			batch := eng.PredictInstances([]dataset.Instance{in, in})
			for i, g := range batch {
				if math.Float64bits(g) != math.Float64bits(want) {
					t.Fatalf("%v engine batch row %d: %v != %v", eng.Backend(), i, g, want)
				}
			}
		}
	})
}
