package predict

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dimboost/internal/dataset"
	"dimboost/internal/tree"
)

// TestBVThreshold32 pins the narrowing rule: bvThreshold32(t) is the largest
// float32 c with float64(c) <= t, so x <= c iff float64(x) <= t for every
// float32 x. Checked exhaustively around the rounding boundary of random and
// special thresholds.
func TestBVThreshold32(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	thrs := []float64{
		0, 1, -1, 0.1, -0.3, 1.0 / 3.0, 5e-324, -5e-324, 1e-40, -1e-40,
		3.4e38, -3.4e38, 3.5e38, -3.5e38, 1e300, -1e300,
		math.MaxFloat64, -math.MaxFloat64, math.Inf(1), math.Inf(-1),
		math.Copysign(0, -1),
	}
	for i := 0; i < 2000; i++ {
		thrs = append(thrs, rng.NormFloat64()*math.Pow(10, float64(rng.Intn(80)-40)))
	}
	for _, thr := range thrs {
		c := bvThreshold32(thr)
		if float64(c) > thr {
			t.Fatalf("bvThreshold32(%v) = %v widens above the threshold", thr, c)
		}
		// Probe x at the compiled threshold, one ulp either side, the raw
		// float32 rounding of t, and infinities.
		probes := []float32{
			c,
			math.Nextafter32(c, float32(math.Inf(1))),
			math.Nextafter32(c, float32(math.Inf(-1))),
			float32(thr), 0,
			float32(math.Inf(1)), float32(math.Inf(-1)),
		}
		for _, x := range probes {
			got := x <= c
			want := float64(x) <= thr
			if got != want {
				t.Fatalf("thr %v (c=%v) x=%v: float32 compare %v, float64 compare %v",
					thr, c, x, got, want)
			}
		}
	}
}

// TestBackendSelection covers the auto-selection rule and forced backends.
func TestBackendSelection(t *testing.T) {
	small := tree.New(3)
	small.SetSplit(0, 1, 0.5, 1)
	small.SetLeaf(1, 1)
	small.SetLeaf(2, 2)

	// 128 leaves: one past the mask width in every direction.
	wide := tree.New(8)
	var grow func(node, level int)
	grow = func(node, level int) {
		if level == 8 {
			t := float64(node)
			wide.SetLeaf(node, t)
			return
		}
		wide.SetSplit(node, int32(level), 0.25, 1)
		grow(tree.Left(node), level+1)
		grow(tree.Right(node), level+1)
	}
	grow(0, 1)

	cases := []struct {
		name    string
		trees   []*tree.Tree
		backend Backend
		want    Backend
		wantErr string
	}{
		{"auto-small", []*tree.Tree{small}, BackendAuto, BackendBitvector, ""},
		{"auto-wide", []*tree.Tree{small, wide}, BackendAuto, BackendSoA, ""},
		{"forced-soa", []*tree.Tree{small}, BackendSoA, BackendSoA, ""},
		{"forced-bv", []*tree.Tree{small}, BackendBitvector, BackendBitvector, ""},
		{"forced-bv-wide", []*tree.Tree{small, wide}, BackendBitvector, 0, "128 leaves"},
		{"empty", nil, BackendAuto, BackendBitvector, ""},
	}
	for _, c := range cases {
		eng, err := CompileBackend(c.trees, 0.5, c.backend)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("%s: err = %v, want mention of %q", c.name, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if eng.Backend() != c.want {
			t.Fatalf("%s: backend = %v, want %v", c.name, eng.Backend(), c.want)
		}
	}

	// A depth-7 complete tree has exactly 64 leaves — the widest eligible
	// shape; a depth-17 path tree is deep but narrow and stays eligible.
	exact := tree.New(7)
	var grow7 func(node, level int)
	grow7 = func(node, level int) {
		if level == 7 {
			exact.SetLeaf(node, 1)
			return
		}
		exact.SetSplit(node, 0, 0.5, 1)
		grow7(tree.Left(node), level+1)
		grow7(tree.Right(node), level+1)
	}
	grow7(0, 1)
	if exact.NumLeaves() != BitvectorMaxLeaves {
		t.Fatalf("depth-7 complete tree has %d leaves", exact.NumLeaves())
	}
	eng, err := CompileBackend([]*tree.Tree{exact}, 0, BackendBitvector)
	if err != nil {
		t.Fatalf("64-leaf tree refused: %v", err)
	}
	if eng.NumConditions() != 63 {
		t.Fatalf("conditions = %d, want 63", eng.NumConditions())
	}
}

// TestParseBackend round-trips the selector values.
func TestParseBackend(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Backend
		ok   bool
	}{
		{"auto", BackendAuto, true}, {"", BackendAuto, true},
		{"soa", BackendSoA, true}, {"bitvector", BackendBitvector, true},
		{"bv", BackendBitvector, true}, {"quickscorer", BackendBitvector, true},
		{"compiled", 0, false}, {"BITVECTOR", 0, false},
	} {
		got, err := ParseBackend(c.in)
		if c.ok != (err == nil) || (c.ok && got != c.want) {
			t.Fatalf("ParseBackend(%q) = %v, %v", c.in, got, err)
		}
	}
	for _, b := range []Backend{BackendAuto, BackendSoA, BackendBitvector} {
		rt, err := ParseBackend(b.String())
		if err != nil || rt != b {
			t.Fatalf("round-trip %v: %v, %v", b, rt, err)
		}
	}
}

// TestBVNaNThresholdFold: a NaN split threshold means "x <= NaN" is false
// for every x — the condition folds into the tree's initial bitvector and
// every row exits through the right subtree, exactly like the interpreted
// walk.
func TestBVNaNThresholdFold(t *testing.T) {
	tr := tree.New(3)
	tr.SetSplit(0, 2, math.NaN(), 1)
	tr.SetLeaf(1, 100) // unreachable: 0 <= NaN is false
	tr.SetSplit(2, 2, 0.5, 1)
	tr.SetLeaf(tree.Left(2), 7)
	tr.SetLeaf(tree.Right(2), 9)

	eng, err := CompileBackend([]*tree.Tree{tr}, 0, BackendBitvector)
	if err != nil {
		t.Fatal(err)
	}
	// The NaN condition is folded, not stored.
	if eng.NumConditions() != 1 {
		t.Fatalf("conditions = %d, want 1 (NaN condition folded)", eng.NumConditions())
	}
	for _, c := range []struct {
		x    float32
		want float64
	}{{0, 7}, {0.5, 7}, {0.6, 9}, {-5, 7}, {float32(math.NaN()), 9}} {
		in := instOne(2, c.x)
		if got := eng.Predict(in); got != c.want {
			t.Fatalf("x=%v: bitvector %v, want %v", c.x, got, c.want)
		}
		if ref := tr.Predict(in); ref != c.want {
			t.Fatalf("x=%v: interpreted reference drifted: %v != %v", c.x, ref, c.want)
		}
	}
}

func instOne(f int32, v float32) dataset.Instance {
	return dataset.Instance{Indices: []int32{f}, Values: []float32{v}}
}
