package predict_test

import (
	"sync"
	"testing"

	"dimboost/internal/core"
	"dimboost/internal/dataset"
	"dimboost/internal/predict"
)

// benchFixture is a trained ensemble plus a scoring set, built once and
// shared across benchmarks: an RCV1-shaped high-dimensional sparse workload.
type benchFixture struct {
	model *core.Model
	data  *dataset.Dataset
}

var (
	bfOnce sync.Once
	bf     benchFixture
)

func fixture(b *testing.B) benchFixture {
	bfOnce.Do(func() {
		d := dataset.Generate(dataset.SyntheticConfig{
			NumRows: 6000, NumFeatures: 47_000, AvgNNZ: 76, Zipf: 0.9, Seed: 7,
		})
		train, test := d.Split(0.75)
		cfg := core.DefaultConfig()
		cfg.NumTrees = 200
		cfg.MaxDepth = 6
		m, err := core.Train(train, cfg)
		if err != nil {
			panic(err)
		}
		bf = benchFixture{model: m, data: test}
	})
	if bf.model == nil {
		b.Fatal("fixture failed to build")
	}
	return bf
}

// BenchmarkPredictBatch compares the interpreted tree walk against the
// compiled engine on the same ensemble and rows. The compiled sub-benchmark
// runs single-worker with a reused output buffer — the steady-state serving
// loop — and must report 0 allocs/op; compiled-parallel adds the worker
// pool (its allocations are the per-call goroutine closures).
func BenchmarkPredictBatch(b *testing.B) {
	f := fixture(b)
	rows := int64(f.data.NumRows())

	b.Run("interpreted", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(0)
		for i := 0; i < b.N; i++ {
			f.model.PredictBatchInterpreted(f.data)
		}
		b.ReportMetric(float64(b.N)*float64(rows)/b.Elapsed().Seconds(), "rows/s")
	})

	for _, backend := range []predict.Backend{predict.BackendSoA, predict.BackendBitvector} {
		b.Run(backend.String(), func(b *testing.B) {
			eng, err := predict.CompileBackend(f.model.Trees, f.model.BaseScore, backend)
			if err != nil {
				b.Fatal(err)
			}
			eng.Workers = 1
			out := make([]float64, f.data.NumRows())
			eng.PredictBatchInto(f.data, out) // warm the scratch pool
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.PredictBatchInto(f.data, out)
			}
			b.ReportMetric(float64(b.N)*float64(rows)/b.Elapsed().Seconds(), "rows/s")
		})

		b.Run(backend.String()+"-parallel", func(b *testing.B) {
			eng, err := predict.CompileBackend(f.model.Trees, f.model.BaseScore, backend)
			if err != nil {
				b.Fatal(err)
			}
			out := make([]float64, f.data.NumRows())
			eng.PredictBatchInto(f.data, out)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.PredictBatchInto(f.data, out)
			}
			b.ReportMetric(float64(b.N)*float64(rows)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkPredictSingle measures one-row latency on the serving path.
func BenchmarkPredictSingle(b *testing.B) {
	f := fixture(b)
	b.Run("interpreted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.model.Predict(f.data.Row(i % f.data.NumRows()))
		}
	})
	for _, backend := range []predict.Backend{predict.BackendSoA, predict.BackendBitvector} {
		b.Run(backend.String(), func(b *testing.B) {
			eng, err := predict.CompileBackend(f.model.Trees, f.model.BaseScore, backend)
			if err != nil {
				b.Fatal(err)
			}
			eng.Predict(f.data.Row(0))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Predict(f.data.Row(i % f.data.NumRows()))
			}
		})
	}
}

// BenchmarkEngineCompile measures ensemble-to-engine compile latency — the
// cost a model reload pays before the first request is served.
func BenchmarkEngineCompile(b *testing.B) {
	f := fixture(b)
	for _, backend := range []predict.Backend{predict.BackendSoA, predict.BackendBitvector} {
		b.Run(backend.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := predict.CompileBackend(f.model.Trees, f.model.BaseScore, backend); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
