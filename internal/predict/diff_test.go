package predict_test

// Differential property tests: the compiled engine must be bit-identical to
// the interpreted tree walk on every input — randomized ensembles (varying
// depth, unused slots, duplicate thresholds, features no row carries) ×
// randomized rows (sparse, dense, empty, explicit zeros, indices past the
// ensemble's feature space). PredictBatch runs with its parallel worker
// pool enabled, so `go test -race` exercises the scatter-buffer pooling.

import (
	"math"
	"math/rand"
	"testing"

	"dimboost/internal/core"
	"dimboost/internal/dataset"
	"dimboost/internal/loss"
	"dimboost/internal/predict"
	"dimboost/internal/tree"
)

// thresholdPalette deliberately repeats values so trees carry duplicate
// thresholds, and includes 0 so the missing-feature-reads-as-0 boundary is
// hit on both sides.
var thresholdPalette = []float64{-2.5, -1, 0, 0, 0.25, 0.25, 0.5, 1, 3}

// randTree grows a random tree: each leaf splits with decaying probability,
// so shallow trees, full trees, and trees with many unused slots all occur.
func randTree(rng *rand.Rand, maxDepth, numFeatures int) *tree.Tree {
	t := tree.New(maxDepth)
	var grow func(node, depth int)
	grow = func(node, depth int) {
		if depth >= maxDepth || rng.Float64() > 0.7 {
			t.SetLeaf(node, math.Round(rng.NormFloat64()*1000)/1000)
			return
		}
		f := int32(rng.Intn(numFeatures))
		v := thresholdPalette[rng.Intn(len(thresholdPalette))]
		if rng.Float64() < 0.3 {
			v = math.Round(rng.NormFloat64()*100) / 100
		}
		t.SetSplit(node, f, v, rng.Float64())
		grow(tree.Left(node), depth+1)
		grow(tree.Right(node), depth+1)
	}
	grow(0, 1)
	return t
}

// randInstance draws one row from a mix of shapes. rowFeatures bounds the
// indices rows actually carry — it may be smaller than the ensemble's
// feature space (features absent from every row) or larger (row features
// the ensemble never references).
func randInstance(rng *rand.Rand, rowFeatures int) dataset.Instance {
	switch rng.Intn(5) {
	case 0: // empty row
		return dataset.Instance{}
	case 1: // dense row over a prefix of the feature space
		n := 1 + rng.Intn(min(rowFeatures, 64))
		idx := make([]int32, n)
		vals := make([]float32, n)
		for i := range idx {
			idx[i] = int32(i)
			vals[i] = float32(math.Round(rng.NormFloat64()*100) / 100)
		}
		return dataset.Instance{Indices: idx, Values: vals}
	case 2: // all explicit zeros (distinct storage, identical semantics)
		n := 1 + rng.Intn(min(rowFeatures, 16))
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(i)
		}
		return dataset.Instance{Indices: idx, Values: make([]float32, n)}
	default: // sparse row: sorted unique random indices
		n := rng.Intn(min(rowFeatures, 40)) + 1
		seen := map[int32]bool{}
		var idx []int32
		for len(idx) < n {
			f := int32(rng.Intn(rowFeatures))
			if !seen[f] {
				seen[f] = true
				idx = append(idx, f)
			}
		}
		sortInt32s(idx)
		vals := make([]float32, n)
		for i := range vals {
			// Values land on the threshold palette often enough to probe the
			// x <= v boundary exactly.
			if rng.Float64() < 0.5 {
				vals[i] = float32(thresholdPalette[rng.Intn(len(thresholdPalette))])
			} else {
				vals[i] = float32(math.Round(rng.NormFloat64()*100) / 100)
			}
		}
		return dataset.Instance{Indices: idx, Values: vals}
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func sortInt32s(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func randModel(rng *rand.Rand, numFeatures int) *core.Model {
	m := &core.Model{Loss: loss.Squared, BaseScore: math.Round(rng.NormFloat64()*1000) / 1000}
	for i, n := 0, 1+rng.Intn(8); i < n; i++ {
		m.Trees = append(m.Trees, randTree(rng, 1+rng.Intn(6), numFeatures))
	}
	return m
}

// TestDifferentialPredictBatch is the headline property: across ≥ 1000
// randomized ensemble×row cases, Engine.PredictBatch (parallel pool
// enabled) is bit-exact against the interpreted Model.Predict.
func TestDifferentialPredictBatch(t *testing.T) {
	featureSpaces := []int{1, 3, 17, 500, 33_000}
	cases := 0
	for trial := 0; trial < 48; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*7919 + 1))
		nf := featureSpaces[trial%len(featureSpaces)]
		// Rows cover half, exactly, or double the ensemble's feature space.
		rowFeatures := []int{(nf + 1) / 2, nf, 2 * nf}[trial%3]
		m := randModel(rng, nf)

		eng, err := predict.Compile(m.Trees, m.BaseScore)
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}

		b := dataset.NewBuilder(0)
		const rows = 30
		for r := 0; r < rows; r++ {
			in := randInstance(rng, rowFeatures)
			if err := b.Add(in.Indices, in.Values, 0); err != nil {
				t.Fatalf("trial %d row %d: %v", trial, r, err)
			}
		}
		ds := b.Build()

		got := eng.PredictBatch(ds)
		for i := 0; i < ds.NumRows(); i++ {
			want := m.Predict(ds.Row(i))
			if math.Float64bits(got[i]) != math.Float64bits(want) {
				t.Fatalf("trial %d row %d: compiled %v (bits %x) != interpreted %v (bits %x)",
					trial, i, got[i], math.Float64bits(got[i]), want, math.Float64bits(want))
			}
		}
		cases += ds.NumRows()
	}
	if cases < 1000 {
		t.Fatalf("only %d differential cases, want >= 1000", cases)
	}
}

// TestDifferentialPredictInstances covers the serving entry point with
// explicit-zero storage (the Builder drops zeros, instances keep them) and
// the single-row Predict path.
func TestDifferentialPredictInstances(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*104729 + 17))
		nf := []int{2, 40, 1000}[trial%3]
		m := randModel(rng, nf)
		eng, err := predict.Compile(m.Trees, m.BaseScore)
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		ins := make([]dataset.Instance, 25)
		for i := range ins {
			ins[i] = randInstance(rng, 2*nf)
		}
		got := eng.PredictInstances(ins)
		for i, in := range ins {
			want := m.Predict(in)
			if math.Float64bits(got[i]) != math.Float64bits(want) {
				t.Fatalf("trial %d instance %d: compiled %v != interpreted %v", trial, i, got[i], want)
			}
			if one := eng.Predict(in); math.Float64bits(one) != math.Float64bits(want) {
				t.Fatalf("trial %d instance %d: Predict %v != interpreted %v", trial, i, one, want)
			}
		}
	}
}

// TestDifferentialTrainedModel runs the property on a genuinely trained
// ensemble (not just synthetic random trees) over its own training data.
func TestDifferentialTrainedModel(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{
		NumRows: 600, NumFeatures: 5000, AvgNNZ: 40, Zipf: 0.8, Seed: 99,
	})
	cfg := core.DefaultConfig()
	cfg.NumTrees = 8
	cfg.MaxDepth = 5
	m, err := core.Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := m.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	got := eng.PredictBatch(d)
	for i := 0; i < d.NumRows(); i++ {
		want := m.Predict(d.Row(i))
		if math.Float64bits(got[i]) != math.Float64bits(want) {
			t.Fatalf("row %d: compiled %v != interpreted %v", i, got[i], want)
		}
	}
}
