package predict_test

// Differential property tests: the compiled engine must be bit-identical to
// the interpreted tree walk on every input — randomized ensembles (varying
// depth, unused slots, duplicate thresholds, features no row carries) ×
// randomized rows (sparse, dense, empty, explicit zeros, indices past the
// ensemble's feature space). PredictBatch runs with its parallel worker
// pool enabled, so `go test -race` exercises the scatter-buffer pooling.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dimboost/internal/core"
	"dimboost/internal/dataset"
	"dimboost/internal/loss"
	"dimboost/internal/predict"
	"dimboost/internal/tree"
)

// thresholdPalette deliberately repeats values so trees carry duplicate
// thresholds, and includes 0 so the missing-feature-reads-as-0 boundary is
// hit on both sides.
var thresholdPalette = []float64{-2.5, -1, 0, 0, 0.25, 0.25, 0.5, 1, 3}

// randTree grows a random tree: each leaf splits with decaying probability,
// so shallow trees, full trees, and trees with many unused slots all occur.
func randTree(rng *rand.Rand, maxDepth, numFeatures int) *tree.Tree {
	t := tree.New(maxDepth)
	var grow func(node, depth int)
	grow = func(node, depth int) {
		if depth >= maxDepth || rng.Float64() > 0.7 {
			t.SetLeaf(node, math.Round(rng.NormFloat64()*1000)/1000)
			return
		}
		f := int32(rng.Intn(numFeatures))
		v := thresholdPalette[rng.Intn(len(thresholdPalette))]
		if rng.Float64() < 0.3 {
			v = math.Round(rng.NormFloat64()*100) / 100
		}
		t.SetSplit(node, f, v, rng.Float64())
		grow(tree.Left(node), depth+1)
		grow(tree.Right(node), depth+1)
	}
	grow(0, 1)
	return t
}

// randInstance draws one row from a mix of shapes. rowFeatures bounds the
// indices rows actually carry — it may be smaller than the ensemble's
// feature space (features absent from every row) or larger (row features
// the ensemble never references).
func randInstance(rng *rand.Rand, rowFeatures int) dataset.Instance {
	switch rng.Intn(5) {
	case 0: // empty row
		return dataset.Instance{}
	case 1: // dense row over a prefix of the feature space
		n := 1 + rng.Intn(min(rowFeatures, 64))
		idx := make([]int32, n)
		vals := make([]float32, n)
		for i := range idx {
			idx[i] = int32(i)
			vals[i] = float32(math.Round(rng.NormFloat64()*100) / 100)
		}
		return dataset.Instance{Indices: idx, Values: vals}
	case 2: // all explicit zeros (distinct storage, identical semantics)
		n := 1 + rng.Intn(min(rowFeatures, 16))
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(i)
		}
		return dataset.Instance{Indices: idx, Values: make([]float32, n)}
	default: // sparse row: sorted unique random indices
		n := rng.Intn(min(rowFeatures, 40)) + 1
		seen := map[int32]bool{}
		var idx []int32
		for len(idx) < n {
			f := int32(rng.Intn(rowFeatures))
			if !seen[f] {
				seen[f] = true
				idx = append(idx, f)
			}
		}
		sortInt32s(idx)
		vals := make([]float32, n)
		for i := range vals {
			// Values land on the threshold palette often enough to probe the
			// x <= v boundary exactly.
			if rng.Float64() < 0.5 {
				vals[i] = float32(thresholdPalette[rng.Intn(len(thresholdPalette))])
			} else {
				vals[i] = float32(math.Round(rng.NormFloat64()*100) / 100)
			}
		}
		return dataset.Instance{Indices: idx, Values: vals}
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func sortInt32s(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func randModel(rng *rand.Rand, numFeatures int) *core.Model {
	m := &core.Model{Loss: loss.Squared, BaseScore: math.Round(rng.NormFloat64()*1000) / 1000}
	for i, n := 0, 1+rng.Intn(8); i < n; i++ {
		m.Trees = append(m.Trees, randTree(rng, 1+rng.Intn(6), numFeatures))
	}
	return m
}

// bothBackends compiles the ensemble with each backend forced (skipping
// bitvector when a tree exceeds the leaf-mask width) so every differential
// case gates the SoA walk and the QuickScorer rewrite alike.
func bothBackends(t *testing.T, m *core.Model) []*predict.Engine {
	t.Helper()
	soa, err := predict.CompileBackend(m.Trees, m.BaseScore, predict.BackendSoA)
	if err != nil {
		t.Fatalf("compile soa: %v", err)
	}
	engines := []*predict.Engine{soa}
	bv, err := predict.CompileBackend(m.Trees, m.BaseScore, predict.BackendBitvector)
	if err == nil {
		engines = append(engines, bv)
	} else {
		// Ineligible ensembles must say why, and auto must agree by
		// resolving to the SoA walk.
		auto, aerr := predict.Compile(m.Trees, m.BaseScore)
		if aerr != nil {
			t.Fatalf("auto compile after bitvector refusal: %v", aerr)
		}
		if auto.Backend() != predict.BackendSoA {
			t.Fatalf("auto backend = %v for bitvector-ineligible ensemble", auto.Backend())
		}
	}
	return engines
}

// diffBatch checks one ensemble × dataset case on every backend, bitwise,
// and returns the number of (row × backend) comparisons performed.
func diffBatch(t *testing.T, m *core.Model, ds *dataset.Dataset, tag string) int {
	t.Helper()
	want := make([]float64, ds.NumRows())
	for i := range want {
		want[i] = m.Predict(ds.Row(i))
	}
	cases := 0
	for _, eng := range bothBackends(t, m) {
		got := eng.PredictBatch(ds)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("%s row %d [%v]: compiled %v (bits %x) != interpreted %v (bits %x)",
					tag, i, eng.Backend(), got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
			}
		}
		cases += ds.NumRows()
	}
	return cases
}

// TestDifferentialPredictBatch is the headline property: across ≥ 1400
// randomized ensemble×row×backend cases, Engine.PredictBatch (parallel pool
// enabled, both backends) is bit-exact against the interpreted
// Model.Predict.
func TestDifferentialPredictBatch(t *testing.T) {
	featureSpaces := []int{1, 3, 17, 500, 33_000}
	cases := 0
	for trial := 0; trial < 48; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*7919 + 1))
		nf := featureSpaces[trial%len(featureSpaces)]
		// Rows cover half, exactly, or double the ensemble's feature space.
		rowFeatures := []int{(nf + 1) / 2, nf, 2 * nf}[trial%3]
		m := randModel(rng, nf)

		b := dataset.NewBuilder(0)
		const rows = 30
		for r := 0; r < rows; r++ {
			in := randInstance(rng, rowFeatures)
			if err := b.Add(in.Indices, in.Values, 0); err != nil {
				t.Fatalf("trial %d row %d: %v", trial, r, err)
			}
		}
		cases += diffBatch(t, m, b.Build(), fmt.Sprintf("trial %d", trial))
	}
	if cases < 1400 {
		t.Fatalf("only %d differential cases, want >= 1400", cases)
	}
}

// TestDifferentialMultiBlock crosses the tree-blocking boundary: ensembles
// larger than one cache block take the staged sweep path — touched-feature
// staging per block instead of the fused direct table — and must stay
// bit-exact there too, including on rows with negative and NaN values.
func TestDifferentialMultiBlock(t *testing.T) {
	rng := newRand(431)
	m := &core.Model{Loss: loss.Squared, BaseScore: 0.5}
	for i := 0; i < predict.BlockTrees+18; i++ {
		m.Trees = append(m.Trees, randTree(rng, 1+rng.Intn(4), 120))
	}

	b := dataset.NewBuilder(0)
	for r := 0; r < 40; r++ {
		in := randInstance(rng, 150)
		if err := b.Add(in.Indices, in.Values, 0); err != nil {
			t.Fatalf("row %d: %v", r, err)
		}
	}
	diffBatch(t, m, b.Build(), "multi-block")

	// NaN and negative values force the always-false full-run sweep and the
	// negative-prefix second pass on the staged path.
	insts := []dataset.Instance{
		{Indices: []int32{3, 40, 77}, Values: []float32{float32(math.NaN()), -1, 0.25}},
		{Indices: []int32{0, 119}, Values: []float32{-2.5, float32(math.NaN())}},
		{},
	}
	for _, eng := range bothBackends(t, m) {
		got := eng.PredictInstances(insts)
		for i, in := range insts {
			want := m.Predict(in)
			if math.Float64bits(got[i]) != math.Float64bits(want) {
				t.Fatalf("multi-block inst %d [%v]: compiled %v != interpreted %v",
					i, eng.Backend(), got[i], want)
			}
		}
	}
}

// TestDifferentialPredictInstances covers the serving entry point with
// explicit-zero storage (the Builder drops zeros, instances keep them) and
// the single-row Predict path.
func TestDifferentialPredictInstances(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*104729 + 17))
		nf := []int{2, 40, 1000}[trial%3]
		m := randModel(rng, nf)
		ins := make([]dataset.Instance, 25)
		for i := range ins {
			ins[i] = randInstance(rng, 2*nf)
		}
		for _, eng := range bothBackends(t, m) {
			got := eng.PredictInstances(ins)
			for i, in := range ins {
				want := m.Predict(in)
				if math.Float64bits(got[i]) != math.Float64bits(want) {
					t.Fatalf("trial %d instance %d [%v]: compiled %v != interpreted %v", trial, i, eng.Backend(), got[i], want)
				}
				if one := eng.Predict(in); math.Float64bits(one) != math.Float64bits(want) {
					t.Fatalf("trial %d instance %d [%v]: Predict %v != interpreted %v", trial, i, eng.Backend(), one, want)
				}
			}
		}
	}
}

// TestDifferentialTrainedModel runs the property on a genuinely trained
// ensemble (not just synthetic random trees) over its own training data.
func TestDifferentialTrainedModel(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{
		NumRows: 600, NumFeatures: 5000, AvgNNZ: 40, Zipf: 0.8, Seed: 99,
	})
	cfg := core.DefaultConfig()
	cfg.NumTrees = 8
	cfg.MaxDepth = 5
	m, err := core.Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The model cache's auto engine and both forced backends all score the
	// trained ensemble bit-identically to the interpreted walk.
	eng, err := m.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	if eng.Backend() != predict.BackendBitvector {
		t.Fatalf("trained depth-5 model auto-selected %v, want bitvector", eng.Backend())
	}
	diffBatch(t, m, d, "trained")
	got := eng.PredictBatch(d)
	for i := 0; i < d.NumRows(); i++ {
		want := m.Predict(d.Row(i))
		if math.Float64bits(got[i]) != math.Float64bits(want) {
			t.Fatalf("row %d: compiled %v != interpreted %v", i, got[i], want)
		}
	}
}

// ---- Adversarial cases the bitvector rewrite must survive. These landed
// ahead of the backend so they gate it: every case runs against both
// backends through diffBatch and is checked bitwise.

// pathTree builds a depth-`depth` tree that is a single root-to-leaf chain
// (each split's non-chain child is a leaf): maximal depth, minimal leaf
// count, the shape that stresses deep masks without tripping the leaf-width
// limit. turn selects whether the chain descends left or right at each
// level; features and thresholds cycle through the given palettes.
func pathTree(depth int, feats []int32, thrs []float64, turn func(level int) bool) *tree.Tree {
	t := tree.New(depth)
	node := 0
	for level := 0; level < depth-1; level++ {
		t.SetSplit(node, feats[level%len(feats)], thrs[level%len(thrs)], 1)
		if turn(level) {
			t.SetLeaf(tree.Right(node), float64(level)+0.5)
			node = tree.Left(node)
		} else {
			t.SetLeaf(tree.Left(node), -float64(level)-0.5)
			node = tree.Right(node)
		}
	}
	t.SetLeaf(node, 99.25)
	return t
}

// fullTree builds a complete tree of the given depth (2^(depth-1) leaves)
// splitting on the given feature palette with the given thresholds.
func fullTree(depth int, feats []int32, thrs []float64) *tree.Tree {
	t := tree.New(depth)
	leaf := 0.0
	var grow func(node, level int)
	grow = func(node, level int) {
		if level == depth {
			leaf++
			t.SetLeaf(node, leaf/8)
			return
		}
		t.SetSplit(node, feats[level%len(feats)], thrs[level%len(thrs)], 1)
		grow(tree.Left(node), level+1)
		grow(tree.Right(node), level+1)
	}
	grow(0, 1)
	return t
}

// notF32 is a palette of thresholds that are NOT exactly representable in
// float32 — the values where a naive float32 threshold cast would flip the
// comparison — plus magnitudes past the float32 range and a subnormal.
var notF32 = []float64{
	0.1, -0.3, 1.0 / 3.0, 2.718281828459045, -1e-40, 1e-40,
	3.5e38, -3.5e38, 1e300, -1e300, 5e-324, math.MaxFloat64,
}

// boundaryRows builds instances whose values sit exactly at
// float32(threshold) and one ulp to either side, for every threshold in the
// palette — the float64(float32 x) <= t boundary in all three positions.
func boundaryRows(feats []int32, thrs []float64) []dataset.Instance {
	var ins []dataset.Instance
	for _, tv := range thrs {
		c := float32(tv)
		for _, x := range []float32{
			c,
			math.Nextafter32(c, float32(math.Inf(1))),
			math.Nextafter32(c, float32(math.Inf(-1))),
			0, float32(math.Inf(1)), float32(math.Inf(-1)),
		} {
			kv := map[int]float32{}
			for _, f := range feats {
				kv[int(f)] = x
			}
			ins = append(ins, inst(kv))
		}
	}
	return ins
}

func instancesToDataset(t *testing.T, ins []dataset.Instance) *dataset.Dataset {
	t.Helper()
	b := dataset.NewBuilder(0)
	for _, in := range ins {
		if err := b.Add(in.Indices, in.Values, 0); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// TestDifferentialDeepTrees: depth-17 chains (16 splits on a root-to-leaf
// path, 17 leaves) in every zigzag pattern, plus a depth-8 complete tree
// (128 leaves) that must force the SoA fallback under auto selection.
func TestDifferentialDeepTrees(t *testing.T) {
	feats := []int32{0, 3, 7, 11}
	m := &core.Model{Loss: loss.Squared, BaseScore: 0.125}
	m.Trees = append(m.Trees,
		pathTree(17, feats, notF32, func(int) bool { return true }),
		pathTree(17, feats, notF32, func(int) bool { return false }),
		pathTree(17, feats, notF32, func(l int) bool { return l%2 == 0 }),
		pathTree(17, feats, thresholdPalette, func(l int) bool { return l%3 != 0 }),
	)
	rng := newRand(41)
	ins := boundaryRows(feats, notF32)
	for i := 0; i < 60; i++ {
		ins = append(ins, randInstance(rng, 16))
	}
	diffBatch(t, m, instancesToDataset(t, ins), "deep-path")

	// A 128-leaf tree exceeds the 64-bit mask: bitvector must refuse it by
	// name and auto must fall back — bothBackends asserts both.
	wide := &core.Model{Loss: loss.Squared}
	wide.Trees = append(wide.Trees, fullTree(8, feats, notF32), m.Trees[0])
	if _, err := predict.CompileBackend(wide.Trees, 0, predict.BackendBitvector); err == nil {
		t.Fatal("bitvector backend accepted a 128-leaf tree")
	}
	diffBatch(t, wide, instancesToDataset(t, ins), "wide-fallback")
}

// TestDifferentialDuplicateThresholds: one feature carries the same
// threshold at many nodes of one tree and across trees — the sorted
// condition array has long runs of equal keys whose relative order must not
// matter.
func TestDifferentialDuplicateThresholds(t *testing.T) {
	const f = int32(5)
	dup := []float64{0.25, 0.25, 0.25}
	m := &core.Model{Loss: loss.Squared, BaseScore: -1}
	m.Trees = append(m.Trees,
		fullTree(5, []int32{f}, dup),    // same feature+threshold at all 15 splits
		fullTree(4, []int32{f, 2}, dup), // interleaved with a second feature
		pathTree(10, []int32{f}, dup, func(l int) bool { return l%2 == 0 }),
		fullTree(3, []int32{f}, []float64{0.25, math.Nextafter(0.25, 1)}),
	)
	ins := boundaryRows([]int32{f, 2}, []float64{0.25})
	ins = append(ins, inst(map[int]float32{int(f): 0.25}), inst(nil),
		inst(map[int]float32{int(f): 0.2500001}), inst(map[int]float32{2: 0.25}))
	rng := newRand(43)
	for i := 0; i < 40; i++ {
		ins = append(ins, randInstance(rng, 8))
	}
	diffBatch(t, m, instancesToDataset(t, ins), "dup-thresholds")
}

// TestDifferentialSingleLeafTrees: depth-1 trees (a bare root leaf) mixed
// into an ensemble — no conditions, the leaf bitvector is a single bit.
func TestDifferentialSingleLeafTrees(t *testing.T) {
	leaf1, leaf2 := tree.New(1), tree.New(1)
	leaf1.SetLeaf(0, 3.5)
	leaf2.SetLeaf(0, -0.125)
	m := &core.Model{Loss: loss.Squared, BaseScore: 2}
	m.Trees = append(m.Trees, leaf1, fullTree(4, []int32{1, 9}, notF32), leaf2)
	rng := newRand(47)
	ins := boundaryRows([]int32{1, 9}, notF32)
	for i := 0; i < 40; i++ {
		ins = append(ins, randInstance(rng, 12))
	}
	diffBatch(t, m, instancesToDataset(t, ins), "single-leaf")

	only := &core.Model{Loss: loss.Squared, BaseScore: -4}
	only.Trees = []*tree.Tree{leaf1, leaf2}
	diffBatch(t, only, instancesToDataset(t, ins), "all-single-leaf")
}

// TestDifferentialF32BoundaryThresholds: ensembles whose thresholds are not
// float32-representable, scored on rows whose values sit exactly at
// float64(float32(threshold)) and one ulp off — the cases where the
// bitvector backend's threshold narrowing must round in the provably safe
// direction.
func TestDifferentialF32BoundaryThresholds(t *testing.T) {
	feats := []int32{0, 1, 2, 3}
	m := &core.Model{Loss: loss.Squared, BaseScore: 0.5}
	m.Trees = append(m.Trees,
		fullTree(5, feats, notF32),
		fullTree(4, feats, []float64{notF32[0], notF32[3], notF32[6], notF32[9]}),
		pathTree(13, feats, notF32, func(l int) bool { return l%2 == 1 }),
	)
	ins := boundaryRows(feats, notF32)
	rng := newRand(53)
	for i := 0; i < 60; i++ {
		ins = append(ins, randInstance(rng, 8))
	}
	diffBatch(t, m, instancesToDataset(t, ins), "f32-boundary")
}
