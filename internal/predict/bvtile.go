package predict

// Tile-shared batch scoring for rows with negative values (PR 10).
//
// bvScoreGeneral pays a per-row "pass 2": for every negative-threshold
// feature the row does not carry, apply that feature's negative prefix. On
// wide ensembles over standardized (zero-mean) features that pass dominates
// — thousands of absent features per row, each a scan plus a handful of
// mask ANDs — and it is almost identical from row to row, because sparse
// rows carry only a few dozen of those features.
//
// Batch scoring can hoist it. For a tile of rows, split the block's
// negative-prefix work into two parts:
//
//   - features absent from EVERY row of the tile (the overwhelming
//     majority): their prefixes are applied once into a shared tile base
//     vector. Leaf-mask application is AND, which is commutative,
//     associative, and idempotent, so the base vector equals "initVec with
//     those conditions applied" no matter the order — each row then starts
//     from a copy of it.
//   - features carried by at least one tile row (the tile union): handled
//     per row. A row that carries the feature with x != 0 sweeps the full
//     run from the start (for any x, the false set {t : x > t} is a prefix
//     of the ascending run); a row where it is absent or explicitly zero
//     applies just the negative prefix.
//
// Per row, the union of applied conditions is exactly the row's false set —
// the same set bvScoreGeneral applies — so the final leaf vectors, exit
// leaves, and per-row summation order (base, then blocks ascending, trees
// ascending within each block) are identical bit for bit. The differential
// tests in this package hold the tile path to math.Float64bits equality
// against solo scoring.
//
// The amortization factor is the tile size: the absent-feature scan and its
// ANDs are paid once per tile instead of once per row. Measured on a
// single-core host (2048 trees × depth 7 over 5000 standardized features,
// 50 nnz/row): 381µs/row solo vs 136µs/row tiled — 2.8×; 512 trees: 1.9×.
// Rows without negative values keep the existing zeroVec fast path, which
// pays no absent-feature work at all and cannot be beaten by tiling (the
// earlier row-tiled variant of the non-negative sweep measured 0.64–0.98×
// and was dropped).

// bvTileRows is the tile width for negative-row batch scoring: large enough
// to amortize the shared-base build across rows, small enough that the tile
// union (the features any tile row carries, all handled per row) stays a
// small fraction of the block's features. 8/16/32 measured 2.6×/2.8×/2.5×
// at 2048 trees; 16 also won at 512.
const bvTileRows = 16

// bvUnionRun is one tile-union feature's condition run within a block,
// resolved once per (tile, block) so the per-row loop reads a flat list
// instead of chasing featIndex/featStart per row.
type bvUnionRun struct {
	f      int32 // compact feature id (dense-buffer slot)
	lo     int32 // full run start in conds
	negEnd int32 // end of the negative prefix (lo + negCount)
	hi     int32 // full run end
}

// predictRowsBV scores rows [lo, hi) of a batch on one scratch, routing
// rows with negative values through the tile-shared path and everything
// else through the per-row fast path. Classification is a heuristic only —
// both paths are bit-identical for every row — so peeking at the raw values
// (before the feature remap) is fine: a row whose only negatives sit on
// features the model ignores just takes the tile path and still scores
// exactly.
func (e *Engine) predictRowsBV(s *scratch, bt batch, lo, hi int, out []float64) {
	tile := s.tileRows[:0]
	for i := lo; i < hi; i++ {
		idx, vals := bt.row(i)
		if len(vals) > len(idx) {
			vals = vals[:len(idx)]
		}
		neg := false
		for _, v := range vals {
			if v < 0 {
				neg = true
				break
			}
		}
		if !neg {
			out[i] = e.predictRow(s, idx, vals)
			continue
		}
		tile = append(tile, int32(i))
		if len(tile) == bvTileRows {
			e.scoreTile(s, bt, tile, out)
			tile = tile[:0]
		}
	}
	if len(tile) > 0 {
		e.scoreTile(s, bt, tile, out)
		tile = tile[:0]
	}
	s.tileRows = tile
}

// scoreTile dispatches one tile of negative rows at the engine's compiled
// mask width.
func (e *Engine) scoreTile(s *scratch, bt batch, rows []int32, out []float64) {
	if e.bv32 != nil {
		bvScoreTile(e, e.bv32, s.vec32, s.tileVec32, s, bt, rows, out)
	} else {
		bvScoreTile(e, e.bv64, s.vec64, s.tileVec64, s, bt, rows, out)
	}
}

// bvScoreTile scores one tile of rows (1 ≤ len(rows) ≤ bvTileRows) with the
// shared-base scheme described at the top of the file.
func bvScoreTile[W bvWord](e *Engine, bv *bvEngine[W], vec, tileVec *[bvBlockTrees]W, s *scratch, bt batch, rows []int32, out []float64) {
	remap := e.remap
	// Stamp epoch marks tile-union membership in O(1) without clearing the
	// stamp array between tiles; on the (unreachable in practice) wrap the
	// array is reset wholesale.
	s.stampEpoch++
	if s.stampEpoch <= 0 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.stampEpoch = 1
	}
	epoch := s.stampEpoch
	union := s.union[:0]
	for r, ri := range rows {
		touched, vals := s.tileTouched[r][:0], s.tileVals[r][:0]
		idx, v := bt.row(int(ri))
		for j, id := range idx {
			if int(id) >= len(remap) {
				// Indices are sorted ascending; everything after is unused.
				break
			}
			if c := remap[id]; c >= 0 {
				touched = append(touched, c)
				vals = append(vals, v[j])
				if s.stamp[c] != epoch {
					s.stamp[c] = epoch
					union = append(union, c)
				}
			}
		}
		s.tileTouched[r], s.tileVals[r] = touched, vals
		out[ri] = e.base
	}
	s.union = union

	for bi := range bv.blocks {
		b := &bv.blocks[bi]
		nt := int(b.numTrees)
		featIndex, featStart, negCount, conds := b.featIndex, b.featStart, b.negCount, b.conds

		// Shared tile base: initVec plus the negative prefixes of every
		// negative-threshold feature no tile row carries — paid once per
		// tile instead of once per row.
		copy(tileVec[:nt], bv.initVec[b.firstTree:b.firstTree+int32(nt)])
		for _, fi := range b.negFeats {
			if s.stamp[b.feats[fi]] == epoch {
				continue // in the tile union: handled per row below
			}
			lo := featStart[fi]
			for _, c := range conds[lo : lo+negCount[fi]] {
				tileVec[c.tree&(bvBlockTrees-1)] &= c.mask
			}
		}

		// Resolve the union's condition runs once for this block.
		runs := s.unionRuns[:0]
		for _, f := range union {
			fi := featIndex[f]
			if fi < 0 {
				continue
			}
			runs = append(runs, bvUnionRun{
				f:      f,
				lo:     featStart[fi],
				negEnd: featStart[fi] + negCount[fi],
				hi:     featStart[fi+1],
			})
		}
		s.unionRuns = runs

		for r := range rows {
			touched, vals := s.tileTouched[r], s.tileVals[r]
			for k, c := range touched {
				s.dense[c] = vals[k]
			}
			copy(vec[:nt], tileVec[:nt])
			for _, ur := range runs {
				x := s.dense[ur.f]
				if x != 0 {
					run := conds[ur.lo:ur.hi]
					if x == x {
						// Two-wide false-prefix sweep; see bvPredictRow.
						j := 0
						for j+1 < len(run) && x > run[j+1].thr {
							vec[run[j].tree&(bvBlockTrees-1)] &= run[j].mask
							vec[run[j+1].tree&(bvBlockTrees-1)] &= run[j+1].mask
							j += 2
						}
						if j < len(run) && x > run[j].thr {
							vec[run[j].tree&(bvBlockTrees-1)] &= run[j].mask
						}
					} else {
						// NaN fails every comparison — apply the whole run.
						for _, c := range run {
							vec[c.tree&(bvBlockTrees-1)] &= c.mask
						}
					}
				} else {
					// Absent from this row (or explicitly zero): exactly the
					// negative prefix is false.
					for _, c := range conds[ur.lo:ur.negEnd] {
						vec[c.tree&(bvBlockTrees-1)] &= c.mask
					}
				}
			}
			out[rows[r]] = bvFinish(bv, b, vec, out[rows[r]])
			for _, c := range touched {
				s.dense[c] = 0
			}
		}
	}
}
