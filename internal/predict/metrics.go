package predict

import (
	"sync"

	"dimboost/internal/obs"
)

// backendObs holds one backend's instruments. Compile counts/latency and
// scored-row throughput carry a backend label so the two representations
// (soa, bitvector) are separable on /metrics; the series share the
// dimboost_predict_* family names PR 4 introduced.
type backendObs struct {
	compiles       *obs.Counter
	compileSeconds *obs.Histogram
	rows           *obs.Counter
	batchSeconds   *obs.Histogram
}

// predictObs groups the inference engine's instruments.
type predictObs struct {
	mu       sync.Mutex
	backends map[string]*backendObs

	engineNodes    *obs.Gauge
	engineFeatures *obs.Gauge
}

var (
	poOnce sync.Once
	poInst *predictObs
)

func predictMetrics() *predictObs {
	poOnce.Do(func() {
		r := obs.Default()
		poInst = &predictObs{
			backends:       make(map[string]*backendObs),
			engineNodes:    r.Gauge("dimboost_predict_engine_nodes", "Compiled nodes in the most recently built engine."),
			engineFeatures: r.Gauge("dimboost_predict_engine_features", "Compact feature-space size of the most recently built engine."),
		}
	})
	return poInst
}

// backend resolves (creating on first use) the instruments of one engine
// backend. Called once per Compile; the returned pointers are cached on the
// Engine so scoring never takes this lock.
func (p *predictObs) backend(name string) *backendObs {
	p.mu.Lock()
	defer p.mu.Unlock()
	if b, ok := p.backends[name]; ok {
		return b
	}
	r := obs.Default()
	l := obs.L("backend", name)
	b := &backendObs{
		compiles:       r.Counter("dimboost_predict_compiles_total", "Inference engines compiled from ensembles.", l),
		compileSeconds: r.Histogram("dimboost_predict_compile_seconds", "Ensemble-to-engine compile latency.", nil, l),
		rows:           r.Counter("dimboost_predict_rows_total", "Rows scored through the compiled engine.", l),
		batchSeconds:   r.Histogram("dimboost_predict_batch_seconds", "Batch scoring latency (one observation per batch).", nil, l),
	}
	p.backends[name] = b
	return b
}
