package predict

import (
	"sync"

	"dimboost/internal/obs"
)

// predictObs groups the inference engine's instruments: compile counts and
// latency, scored-row throughput, and gauges describing the live engine.
type predictObs struct {
	compiles       *obs.Counter
	compileSeconds *obs.Histogram
	rows           *obs.Counter
	batchSeconds   *obs.Histogram
	engineNodes    *obs.Gauge
	engineFeatures *obs.Gauge
}

var (
	poOnce sync.Once
	poInst *predictObs
)

func predictMetrics() *predictObs {
	poOnce.Do(func() {
		r := obs.Default()
		poInst = &predictObs{
			compiles:       r.Counter("dimboost_predict_compiles_total", "Inference engines compiled from ensembles."),
			compileSeconds: r.Histogram("dimboost_predict_compile_seconds", "Ensemble-to-engine compile latency.", nil),
			rows:           r.Counter("dimboost_predict_rows_total", "Rows scored through the compiled engine."),
			batchSeconds:   r.Histogram("dimboost_predict_batch_seconds", "Batch scoring latency (one observation per batch).", nil),
			engineNodes:    r.Gauge("dimboost_predict_engine_nodes", "Compiled nodes in the most recently built engine."),
			engineFeatures: r.Gauge("dimboost_predict_engine_features", "Compact feature-space size of the most recently built engine."),
		}
	})
	return poInst
}
