package predict

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"dimboost/internal/tree"
)

// The bitvector backend is the QuickScorer/V-QuickScorer traversal family
// applied to DimBoost's ensembles: instead of routing each row root-to-leaf
// through every tree (a data-dependent branch per node, mispredicted roughly
// half the time on real data), the ensemble is compiled into per-feature
// condition arrays and scoring becomes a branch-free sweep:
//
//   - Every internal node "x[f] <= t" becomes a *condition* on feature f. A
//     condition that evaluates FALSE (x > t) makes the node's left subtree
//     unreachable, so each condition carries a leaf mask with zeros at the
//     left subtree's leaf positions (leaves are numbered left to right).
//   - Conditions are grouped per compact feature and sorted by threshold
//     ascending. For a row value x, the false conditions are exactly an
//     ascending prefix (x > t is monotone in t), so scoring walks each
//     feature's array ANDing masks until the first true comparison — no
//     per-node branches, no tree recursion, purely sequential loads.
//   - Each tree keeps a leaf bitvector, initialized to all-ones over its
//     leaf count. After every feature is processed, the exit leaf is the
//     lowest set bit: any leaf left of the true exit shares an ancestor with
//     it whose condition was false and which masked it out, and the exit
//     leaf itself is only ever masked by conditions on its own root path
//     that evaluated true — so it survives, and survives leftmost.
//   - Trees are processed in cache-sized blocks (bvBlockTrees per block):
//     one block's condition arrays and leaf vectors stay resident while the
//     row sweeps it, the QuickScorer ∆-blocking scheme.
//   - The mask word is sized to the ensemble, the scalar analog of
//     V-QuickScorer's width specialization: when every tree has at most 32
//     used leaves (shallow serving ensembles, the common case) the whole
//     engine compiles with uint32 masks — 12-byte conditions instead of 16
//     and half the leaf-vector bytes per row — and falls back to uint64 for
//     anything up to BitvectorMaxLeaves.
//
// Exactness. The interpreted walk compares float64(x32) <= t with a float64
// threshold; this backend stores float32 thresholds and compares in float32.
// The two are made bit-equivalent — not approximately equal — by compiling
// each threshold to bvThreshold32(t): the largest float32 whose float64
// widening is <= t. float64 widening of float32 is monotone and injective,
// so x32 <= bvThreshold32(t) iff float64(x32) <= t for every float32 x32
// (including ±Inf; NaN values are handled as an always-false sweep of the
// whole condition array, matching the interpreted walk's "NaN <= t is
// false"). NaN *thresholds* make a condition false for every x, so they are
// folded into the tree's initial bitvector at compile time and never
// consulted at scoring time. The differential and fuzz tests in this package
// hold the backends to math.Float64bits equality on every row.

// BitvectorMaxLeaves is the widest leaf-mask: a tree is eligible for the
// bitvector backend iff it has at most this many used leaves. Depth does not
// matter — a depth-16 path tree has 16 leaves and compiles fine; a complete
// depth-7 tree (64 leaves) is the widest complete shape that fits.
const BitvectorMaxLeaves = 64

// bvWord is the leaf-mask storage width. Compile picks the narrowest word
// the ensemble's widest tree fits.
type bvWord interface {
	~uint32 | ~uint64
}

// bvBlockTrees is the tree-blocking factor: per row, one block's leaf
// vectors (one mask word per tree) plus the touched slices of its condition
// arrays are the working set. On sparse rows only a small fraction of each
// block's conditions is read, so blocks are sized for the leaf vectors to
// stay L1-resident rather than for total condition bytes (4KB at uint64
// width); most serving ensembles fit a single block, which also means the
// row's feature list is swept exactly once.
const bvBlockTrees = 512

// BlockTrees is bvBlockTrees for callers and tests that need to know where
// the single-block fast path ends (e.g. to build an ensemble that crosses
// into multi-block sweeping).
const BlockTrees = bvBlockTrees

// bvEngine is the compiled bitvector form of an ensemble, specialized to a
// mask width.
type bvEngine[W bvWord] struct {
	blocks []bvBlock[W]
	// initVec[t] is tree t's starting leaf bitvector: its leaf-count low
	// bits set, minus the folds of always-false (NaN-threshold) conditions.
	initVec []W
	// zeroVec[t] is the all-zeros row's leaf bitvector: initVec with every
	// negative-threshold condition's mask pre-applied (0 > t iff t < 0).
	// Rows with no negative values start from it — any x > 0 exceeds every
	// negative threshold, so its correct false-prefix is a superset of the
	// pre-applied one and AND monotonicity makes the head start exact.
	zeroVec []W
	// direct fuses the engine's feature remap, the block's featIndex, and
	// the run table into one original-feature-id → condition-run table,
	// built only for single-block ensembles (≤ bvBlockTrees trees, the
	// common serving shape). It lets the fast path score a row in one pass
	// over its sparse indices — no touched-feature staging, and the
	// per-feature load chain is two hops (direct entry → conditions)
	// instead of three (remap → run index → run bounds → conditions):
	// those hops serialize inside the sweep, so each one removed is
	// latency off every touched feature. Features the model never splits
	// on hold the empty run {0, 0}. Nil for multi-block engines, which
	// sweep each block from the staged touched list instead.
	direct []bvRun
	// leafStart[t] offsets into leafWeight; leaves are stored per tree in
	// left-to-right order, so "lowest set bit" indexes directly.
	leafStart  []int32
	leafWeight []float64
	numConds   int
}

// bvBlock holds the conditions of one contiguous run of trees, grouped by
// compact feature id and sorted by threshold ascending within each feature.
type bvBlock[W bvWord] struct {
	firstTree int32
	numTrees  int32

	feats []int32 // compact feature ids present in this block, hot-first
	// (longest condition run first — see the layout comment in compileBV)
	featStart []int32 // len(feats)+1 offsets into conds
	negCount  []int32 // per feature: conditions with threshold < 0 (the
	// exact false-prefix for x == 0, i.e. missing features)
	// posRun[fi] is the [lo, hi) conds range the zeroVec paths walk: lo
	// skips the negative prefix (featStart[fi]+negCount[fi]), hi is
	// featStart[fi+1]. Packed as a pair so the sweep resolves a feature's
	// run with a single 8-byte load.
	posRun []bvRun

	// featIndex inverts feats over the whole compact space (-1 = feature
	// not in this block), so a row's touched features resolve to their
	// condition runs in O(1) — the sparse-row adaptation of QuickScorer:
	// rows carry far fewer features than the ensemble splits on, so the
	// sweep visits the row's features, not every feature of the block.
	featIndex []int32
	// negFeats lists the positions in feats with negCount > 0 — the only
	// features whose conditions can evaluate false when the row doesn't
	// carry them (x = 0 > t requires t < 0). Everything else is skipped
	// entirely for missing features.
	negFeats []int32

	conds []bvPacked[W] // featStart-indexed runs, thresholds ascending per run
}

// bvPacked is one compiled condition: threshold, block-local tree index and
// the leaf mask interleaved in one struct (12 bytes at uint32 width, 16 at
// uint64), so the sweep reads a single sequential stream. Two layouts were
// measured slower on the gender-shaped benchmark: separately indexed
// threshold/tree/mask streams (range over the interleaved stream is
// bounds-check-free, split streams are not), and threshold-deduplicated
// (threshold, cut) segments ahead of compare-free (tree, mask) pairs — the
// second per-feature loop costs an extra exit misprediction per touched
// feature, which outweighs the compares it saves.
type bvPacked[W bvWord] struct {
	thr  float32
	tree int32
	mask W
}

// bvRun is a half-open [lo, hi) range into a block's conds array.
type bvRun struct {
	lo, hi int32
}

// bvThreshold32 compiles a float64 split threshold into the largest float32
// c with float64(c) <= t, so that for every float32 x: x <= c iff
// float64(x) <= t. The caller folds NaN thresholds before calling.
func bvThreshold32(t float64) float32 {
	c := float32(t)
	if float64(c) > t {
		c = math.Nextafter32(c, float32(math.Inf(-1)))
	}
	return c
}

// bvCond is the pre-layout form of one condition, used only during compile.
// Masks build in uint64 and narrow at packing time.
type bvCond struct {
	feat  int32
	thr   float32
	ltree int32
	mask  uint64
}

// compileBitvector builds the bitvector backend at the narrowest mask width
// the ensemble fits. Caller has already validated the trees and checked
// every leaf count against BitvectorMaxLeaves.
func compileBitvector(e *Engine, trees []*tree.Tree) {
	if maxL, _ := maxLeafCount(trees); maxL <= 32 {
		e.bv32 = compileBV[uint32](e, trees)
	} else {
		e.bv64 = compileBV[uint64](e, trees)
	}
}

func compileBV[W bvWord](e *Engine, trees []*tree.Tree) *bvEngine[W] {
	bv := &bvEngine[W]{
		initVec:   make([]W, len(trees)),
		leafStart: make([]int32, len(trees)+1),
	}
	numBlocks := (len(trees) + bvBlockTrees - 1) / bvBlockTrees
	bv.blocks = make([]bvBlock[W], numBlocks)
	var conds []bvCond // reused across blocks

	for bi := 0; bi < numBlocks; bi++ {
		first := bi * bvBlockTrees
		last := min(first+bvBlockTrees, len(trees))
		conds = conds[:0]
		for gt := first; gt < last; gt++ {
			t := trees[gt]
			bv.leafStart[gt] = int32(len(bv.leafWeight))
			nLeaves, fold := int32(0), ^uint64(0)
			// Walk assigns leaf positions left to right and returns the
			// subtree's [lo, hi) leaf range; a condition's mask clears its
			// left child's range.
			var walk func(node int) (lo, hi int32)
			walk = func(node int) (int32, int32) {
				n := &t.Nodes[node]
				if n.Leaf {
					pos := nLeaves
					nLeaves++
					bv.leafWeight = append(bv.leafWeight, n.Weight)
					return pos, pos + 1
				}
				lLo, lHi := walk(tree.Left(node))
				_, rHi := walk(tree.Right(node))
				mask := ^(((uint64(1) << uint(lHi-lLo)) - 1) << uint(lLo))
				if math.IsNaN(n.Value) {
					// x <= NaN is false for every x: fold the always-taken
					// mask into the starting vector instead of storing a
					// condition that would need a NaN-aware comparison.
					fold &= mask
					return lLo, rHi
				}
				conds = append(conds, bvCond{
					feat:  e.remap[n.Feature],
					thr:   bvThreshold32(n.Value),
					ltree: int32(gt - first),
					mask:  mask,
				})
				return lLo, rHi
			}
			walk(0)
			allOnes := ^uint64(0)
			if nLeaves < 64 {
				allOnes = (uint64(1) << uint(nLeaves)) - 1
			}
			// Narrowing is exact: the width was chosen so every live leaf
			// bit fits W, and masks only matter on live bits.
			bv.initVec[gt] = W(allOnes & fold)
		}

		// Deterministic layout: by feature, then threshold ascending (the
		// sweep's prefix invariant), then tree and mask as total-order tie
		// breaks. Masks of distinct nodes differ, so the order is unique.
		sort.Slice(conds, func(a, b int) bool {
			ca, cb := &conds[a], &conds[b]
			if ca.feat != cb.feat {
				return ca.feat < cb.feat
			}
			if ca.thr != cb.thr {
				return ca.thr < cb.thr
			}
			if ca.ltree != cb.ltree {
				return ca.ltree < cb.ltree
			}
			return ca.mask < cb.mask
		})

		b := &bv.blocks[bi]
		b.firstTree = int32(first)
		b.numTrees = int32(last - first)

		// Group boundaries in the sorted (feature, threshold) order.
		type group struct{ lo, hi int32 }
		var groups []group
		for i := 0; i < len(conds); {
			j := i + 1
			for j < len(conds) && conds[j].feat == conds[i].feat {
				j++
			}
			groups = append(groups, group{int32(i), int32(j)})
			i = j
		}
		// Hot-first layout: pack longer runs at the front of conds. Trees
		// split most often on their informative features, which are also the
		// features real rows carry most often, so the condition bytes a row
		// actually sweeps concentrate in one contiguous front region that
		// stays cache-resident from row to row instead of scattering across
		// the whole array. The sweep reaches a group only through
		// featIndex/posRun, so group order is free to permute; ties break on
		// feature id to keep the layout deterministic.
		sort.Slice(groups, func(a, b int) bool {
			ga, gb := groups[a], groups[b]
			if la, lb := ga.hi-ga.lo, gb.hi-gb.lo; la != lb {
				return la > lb
			}
			return conds[ga.lo].feat < conds[gb.lo].feat
		})

		b.conds = make([]bvPacked[W], 0, len(conds))
		for _, g := range groups {
			b.feats = append(b.feats, conds[g.lo].feat)
			b.featStart = append(b.featStart, int32(len(b.conds)))
			neg := int32(0)
			for _, c := range conds[g.lo:g.hi] {
				if c.thr < 0 {
					neg++
				}
				b.conds = append(b.conds, bvPacked[W]{thr: c.thr, tree: c.ltree, mask: W(c.mask)})
			}
			b.negCount = append(b.negCount, neg)
		}
		b.featStart = append(b.featStart, int32(len(b.conds)))
		b.featIndex = make([]int32, e.numCompact)
		for i := range b.featIndex {
			b.featIndex[i] = -1
		}
		b.posRun = make([]bvRun, len(b.feats))
		for fi, f := range b.feats {
			b.featIndex[f] = int32(fi)
			b.posRun[fi] = bvRun{lo: b.featStart[fi] + b.negCount[fi], hi: b.featStart[fi+1]}
			if b.negCount[fi] > 0 {
				b.negFeats = append(b.negFeats, int32(fi))
			}
		}
		bv.numConds += len(conds)
	}
	bv.leafStart[len(trees)] = int32(len(bv.leafWeight))
	bv.zeroVec = make([]W, len(trees))
	copy(bv.zeroVec, bv.initVec)
	for bi := range bv.blocks {
		b := &bv.blocks[bi]
		for _, c := range b.conds {
			if c.thr < 0 {
				bv.zeroVec[b.firstTree+c.tree] &= c.mask
			}
		}
	}
	if numBlocks == 1 {
		b := &bv.blocks[0]
		bv.direct = make([]bvRun, len(e.remap))
		for orig, c := range e.remap {
			if c >= 0 {
				if fi := b.featIndex[c]; fi >= 0 {
					bv.direct[orig] = b.posRun[fi]
				}
				// featIndex can be -1 even for a referenced feature: one
				// whose every split has a NaN threshold compiles entirely
				// into initVec and owns no condition run.
			}
			// Unmapped entries keep the zero value {0, 0} — the empty run —
			// so unused features sweep zero conditions without a
			// data-dependent branch.
		}
	}
	return bv
}

// predictRowBV scores one row against the bitvector backend at its compiled
// mask width.
func (e *Engine) predictRowBV(s *scratch, indices []int32, values []float32) float64 {
	if e.bv32 != nil {
		return bvPredictRow(e, e.bv32, s.vec32, s, indices, values)
	}
	return bvPredictRow(e, e.bv64, s.vec64, s, indices, values)
}

// bvPredictRow scores one row. Single-block ensembles take the fused fast
// path: one pass over the row's sparse indices, each resolved through the
// direct table straight to its condition run — no staging of touched
// features, no per-feature second lookup. The pass is optimistic about
// signs (the overwhelmingly common shape for sparse count/tf-idf features
// is non-negative): vectors start from zeroVec, which is exact for x >= 0
// and NaN by AND monotonicity, and the first negative value abandons the
// row to the general sweep, whose initVec + negative-prefix second pass
// handles signs exactly.
func bvPredictRow[W bvWord](e *Engine, bv *bvEngine[W], vec *[bvBlockTrees]W, s *scratch, indices []int32, values []float32) float64 {
	if direct := bv.direct; direct != nil {
		b := &bv.blocks[0]
		copy(vec[:b.numTrees], bv.zeroVec[:b.numTrees])
		conds := b.conds
		if len(values) < len(indices) {
			return bvPredictRowStaged(e, bv, vec, s, indices, values)
		}
		// Indices are sorted ascending, so entries past the table (features
		// no tree references) form a suffix; trimming it here keeps the hot
		// loop free of that compare.
		n := len(indices)
		for n > 0 && int(indices[n-1]) >= len(direct) {
			n--
		}
		indices = indices[:n]
		values = values[:n] // drops the per-entry bounds check
		// Software pipelining: each feature's sweep starts with a serial
		// load chain (direct entry, then its first conditions), and the
		// table is too large to stay L1-resident under random feature-id
		// access. Loading the NEXT feature's entry before sweeping the
		// current run lets that miss overlap the sweep instead of stalling
		// after it.
		var r bvRun
		if n > 0 {
			r = direct[indices[0]]
		}
		for j := 0; j < n; j++ {
			var rNext bvRun
			if j+1 < n {
				rNext = direct[indices[j+1]]
			}
			// Unused features resolve to the empty run, so there is no
			// data-dependent "unused?" branch here — on real sparse rows
			// roughly a fifth of the entries are unused and that branch
			// mispredicts constantly.
			x := values[j]
			if x > 0 {
				run := conds[r.lo:r.hi:r.hi]
				// Ascending thresholds: apply while the condition is false
				// (x > t); the first true comparison ends the prefix. Since
				// x > run[k+1].thr implies x > run[k].thr, the two-wide loop
				// pays one compare and one branch per two conditions — this
				// loop is where a scored row spends most of its time. (A
				// four-wide variant measured slower: its scalar tail loop
				// adds a second mispredicting exit per touched feature.)
				k := 0
				for k+1 < len(run) && x > run[k+1].thr {
					vec[run[k].tree&(bvBlockTrees-1)] &= run[k].mask
					vec[run[k+1].tree&(bvBlockTrees-1)] &= run[k+1].mask
					k += 2
				}
				if k < len(run) && x > run[k].thr {
					vec[run[k].tree&(bvBlockTrees-1)] &= run[k].mask
				}
			} else if x < 0 {
				return bvPredictRowStaged(e, bv, vec, s, indices, values)
			} else if x != x {
				// NaN: x > t and x <= t are both false; the interpreted
				// walk goes right at every node — apply the whole run
				// (empty for unused features). Negative-threshold
				// conditions are already in zeroVec.
				for _, c := range conds[r.lo:r.hi] {
					vec[c.tree&(bvBlockTrees-1)] &= c.mask
				}
			}
			// x == 0 (either sign): zeroVec already holds exactly this
			// feature's false prefix.
			r = rNext
		}
		return bvFinish(bv, b, vec, e.base)
	}
	return bvPredictRowStaged(e, bv, vec, s, indices, values)
}

// bvPredictRowStaged is the multi-block (and negative-row) scoring path: it
// stages the row's model-relevant features once into scratch, then sweeps
// every block from that list, so the sparse indices and the remap table are
// read once rather than once per block.
func bvPredictRowStaged[W bvWord](e *Engine, bv *bvEngine[W], vec *[bvBlockTrees]W, s *scratch, indices []int32, values []float32) float64 {
	remap := e.remap
	rowNeg := false
	touched, vals := s.touched, s.vals
	for j, idx := range indices {
		if int(idx) >= len(remap) {
			// Indices are sorted ascending; everything after is unused too.
			break
		}
		if c := remap[idx]; c >= 0 {
			v := values[j]
			touched = append(touched, c)
			vals = append(vals, v)
			if v < 0 {
				rowNeg = true
			}
		}
	}
	s.touched, s.vals = touched, vals
	var sum float64
	if rowNeg {
		sum = bvScoreGeneral(e, bv, vec, s)
	} else {
		sum = bvScoreNonNeg(e, bv, vec, s)
	}
	s.touched = s.touched[:0]
	s.vals = s.vals[:0]
	return sum
}

// bvScoreNonNeg sweeps a staged row with no negative values. Leaf vectors
// start from zeroVec — every negative-threshold condition pre-applied —
// which is exact here: a feature at zero has precisely the negative prefix
// false, and a feature at x > 0 has a false-prefix that contains it (x
// exceeds every negative threshold), so the walk just continues from the
// run's non-negative start. A NaN value fails every comparison, so its
// whole run applies — again a superset of the pre-applied prefix. No second
// pass over absent features.
func bvScoreNonNeg[W bvWord](e *Engine, bv *bvEngine[W], vec *[bvBlockTrees]W, s *scratch) float64 {
	sum := e.base
	for bi := range bv.blocks {
		b := &bv.blocks[bi]
		copy(vec[:b.numTrees], bv.zeroVec[b.firstTree:b.firstTree+b.numTrees])
		featIndex, runs, conds := b.featIndex, b.posRun, b.conds
		for k, f := range s.touched {
			fi := featIndex[f]
			if fi < 0 {
				continue
			}
			x := s.vals[k]
			if x == 0 {
				continue // zeroVec already holds exactly this feature's prefix
			}
			r := runs[fi]
			run := conds[r.lo:r.hi]
			if x == x {
				// Two-wide false-prefix sweep; see bvPredictRow for why.
				j := 0
				for j+1 < len(run) && x > run[j+1].thr {
					vec[run[j].tree&(bvBlockTrees-1)] &= run[j].mask
					vec[run[j+1].tree&(bvBlockTrees-1)] &= run[j+1].mask
					j += 2
				}
				if j < len(run) && x > run[j].thr {
					vec[run[j].tree&(bvBlockTrees-1)] &= run[j].mask
				}
			} else {
				// NaN: x > t and x <= t are both false; the interpreted
				// walk goes right at every node — apply the whole run.
				for _, c := range run {
					vec[c.tree&(bvBlockTrees-1)] &= c.mask
				}
			}
		}
		sum = bvFinish(bv, b, vec, sum)
	}
	return sum
}

// bvScoreGeneral is the unrestricted sweep: leaf vectors start from initVec,
// the row's features walk their full runs, and a second pass applies the
// negative prefixes of features the row doesn't carry. The absent-feature
// pass needs random-access lookups, so this path scatters the row into the
// dense buffer first (and restores it before returning).
func bvScoreGeneral[W bvWord](e *Engine, bv *bvEngine[W], vec *[bvBlockTrees]W, s *scratch) float64 {
	for k, c := range s.touched {
		s.dense[c] = s.vals[k]
	}
	sum := e.base
	for bi := range bv.blocks {
		b := &bv.blocks[bi]
		copy(vec[:b.numTrees], bv.initVec[b.firstTree:b.firstTree+b.numTrees])
		featIndex, featStart, conds := b.featIndex, b.featStart, b.conds
		// Pass 1: the row's own features. Features the row doesn't carry
		// (the vast majority on sparse data) never enter this loop.
		for _, f := range s.touched {
			fi := featIndex[f]
			if fi < 0 {
				continue
			}
			x := s.dense[f]
			if x == 0 {
				// Explicit zero behaves exactly like missing (0 > t iff
				// t < 0); pass 2 covers it via the negative prefix.
				continue
			}
			run := conds[featStart[fi]:featStart[fi+1]]
			if x == x {
				for _, c := range run {
					if x <= c.thr {
						break
					}
					vec[c.tree&(bvBlockTrees-1)] &= c.mask
				}
			} else {
				// NaN fails every comparison — apply the whole run.
				for _, c := range run {
					vec[c.tree&(bvBlockTrees-1)] &= c.mask
				}
			}
		}
		// Pass 2: features absent from the row (or present as zero) whose
		// condition arrays start with negative thresholds — the exact false
		// set for x = 0 — applied with no comparisons at all.
		for _, fi := range b.negFeats {
			if s.dense[b.feats[fi]] != 0 {
				continue // carried by the row with x != 0: pass 1 handled it
			}
			lo := featStart[fi]
			for _, c := range conds[lo : lo+b.negCount[fi]] {
				vec[c.tree&(bvBlockTrees-1)] &= c.mask
			}
		}
		sum = bvFinish(bv, b, vec, sum)
	}
	for _, c := range s.touched {
		s.dense[c] = 0
	}
	return sum
}

// bvFinish folds one block's leaf vectors into the running score: each
// tree's exit leaf is the lowest surviving bit. Trees are added in ensemble
// order, preserving the interpreted walk's summation order bit for bit.
// The exit bit always exists — the rightmost leaf is in the right subtree
// of every ancestor, and masks only ever clear left subtrees — so the
// vector is never zero and the uint64 widening is exact at either width.
func bvFinish[W bvWord](bv *bvEngine[W], b *bvBlock[W], vec *[bvBlockTrees]W, sum float64) float64 {
	base := int(b.firstTree)
	ls := bv.leafStart[base : base+int(b.numTrees)]
	lw := bv.leafWeight
	for t, start := range ls {
		leaf := bits.TrailingZeros64(uint64(vec[t&(bvBlockTrees-1)]))
		sum += lw[int(start)+leaf]
	}
	return sum
}

// NumConditions returns the compiled condition count of the bitvector
// backend (0 for the SoA backend).
func (e *Engine) NumConditions() int {
	switch {
	case e.bv32 != nil:
		return e.bv32.numConds
	case e.bv64 != nil:
		return e.bv64.numConds
	}
	return 0
}

// MaskBits returns the bitvector backend's compiled leaf-mask width in bits
// (32 or 64), or 0 for the SoA backend.
func (e *Engine) MaskBits() int {
	switch {
	case e.bv32 != nil:
		return 32
	case e.bv64 != nil:
		return 64
	}
	return 0
}

// sizeBytes estimates the bitvector backend's in-memory footprint.
func (bv *bvEngine[W]) sizeBytes() int64 {
	word := int64(8)
	if uint64(^W(0)) <= uint64(^uint32(0)) {
		word = 4
	}
	n := int64(len(bv.initVec))*word + int64(len(bv.zeroVec))*word + int64(len(bv.direct))*8
	n += int64(len(bv.leafStart))*4 + int64(len(bv.leafWeight))*8
	for i := range bv.blocks {
		b := &bv.blocks[i]
		n += int64(len(b.feats))*4 + int64(len(b.featStart))*4 + int64(len(b.negCount))*4
		n += int64(len(b.featIndex))*4 + int64(len(b.negFeats))*4 + int64(len(b.posRun))*8
		n += int64(len(b.conds)) * (8 + word)
	}
	return n
}

// maxLeafCount returns the largest used-leaf count across the trees, for
// backend eligibility and mask-width selection.
func maxLeafCount(trees []*tree.Tree) (int, int) {
	maxL, at := 0, -1
	for i, t := range trees {
		if l := t.NumLeaves(); l > maxL {
			maxL, at = l, i
		}
	}
	return maxL, at
}

var errTooManyLeaves = fmt.Errorf("predict: tree exceeds %d leaves for the bitvector backend", BitvectorMaxLeaves)
