//go:build race

package predict_test

// raceEnabled gates allocation-count assertions: race instrumentation
// allocates shadow state, so zero-alloc contracts are checked only in
// uninstrumented runs.
const raceEnabled = true
