package ps

import (
	"errors"
	"math"
	"testing"

	"dimboost/internal/compress"
	"dimboost/internal/dataset"
	"dimboost/internal/histogram"
	"dimboost/internal/wire"
)

// TestStalePartitionPushRejected is the regression for the decode path that
// used to trust the client-sent bits/N header: a client whose layout comes
// from an older NEW_TREE (fewer sampled features, so fewer buckets) pushes a
// mis-sized shard, and the server must answer with a typed ShapeError — not
// accept it into the merge buffer, and not panic at merge time.
func TestStalePartitionPushRejected(t *testing.T) {
	const m, p, w = 40, 2, 2
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 200, NumFeatures: m, AvgNNZ: 8, Seed: 21, Zipf: 1.2})
	fx := newFixture(t, m, p, w)
	buildDistributedHistograms(t, fx, d, 0) // installs the current layout

	// The stale client still thinks only the first half of the features were
	// sampled this tree, so its shards are strictly smaller.
	stale := fx.clients[1]
	cands, err := fx.clients[0].PullCandidates(10)
	if err != nil {
		t.Fatal(err)
	}
	oldLayout, err := histogram.NewLayout(histogram.AllFeatures(m/2), cands, m)
	if err != nil {
		t.Fatal(err)
	}
	local := histogram.New(oldLayout)
	for _, bits := range []uint{0, 8} {
		stale.Bits = bits
		err = stale.PushHistogram(0, local)
		var shape *ShapeError
		if !errors.As(err, &shape) {
			t.Fatalf("bits=%d: stale push got %v, want ShapeError", bits, err)
		}
		if shape.Got == shape.Want {
			t.Fatalf("bits=%d: ShapeError with equal geometry: %+v", bits, shape)
		}
	}

	// The buffered state must still be intact: the valid pushes from before
	// still merge and split.
	if _, err := fx.clients[0].PullSplit(0, 1.0, 0.0, 1e-4); err != nil {
		t.Fatalf("pull after rejected stale push: %v", err)
	}
}

// TestHostileHistHeadersRejected drives raw crafted push bodies at the
// server: undecodable widths, non-finite MaxAbs, short payloads, overflowing
// sparse spans. Every one must come back as a typed error; before the header
// admission check existed the bits=200 case reached the fixed-point decoder
// at merge time.
func TestHostileHistHeadersRejected(t *testing.T) {
	const m = 20
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 100, NumFeatures: m, AvgNNZ: 6, Seed: 23, Zipf: 1.2})
	fx := newFixture(t, m, 1, 1)
	_, layout := buildDistributedHistograms(t, fx, d, 0)
	buckets := 0
	for _, f := range fx.part.FeaturesOf(0, layout.Features) {
		lo, hi := layout.BucketRange(int(layout.Pos(f)))
		buckets += hi - lo
	}
	c := fx.clients[0]

	// goodF32 is a well-formed float32 h vector; the hostile g vector before
	// it must already have been rejected.
	goodF32 := func(w *wire.Writer) {
		w.Uint8(VecFloat32)
		w.Float64sAs32(make([]float64, buckets))
	}
	cases := []struct {
		name  string
		build func(w *wire.Writer)
		want  error
	}{
		{"undecodable width", func(w *wire.Writer) {
			w.Uint8(VecFixed)
			w.Uint8(200) // would shift out of range in Decode
			w.Uint32(uint32(buckets))
			w.Float64(1.0)
			w.Bytes32(make([]byte, buckets))
			goodF32(w)
		}, compress.ErrBadWidth},
		{"NaN MaxAbs", func(w *wire.Writer) {
			w.Uint8(VecFixed)
			w.Uint8(8)
			w.Uint32(uint32(buckets))
			w.Float64(math.NaN())
			w.Bytes32(make([]byte, buckets))
			goodF32(w)
		}, compress.ErrBadHeader},
		{"data shorter than N", func(w *wire.Writer) {
			w.Uint8(VecFixed)
			w.Uint8(8)
			w.Uint32(uint32(buckets))
			w.Float64(1.0)
			w.Bytes32(make([]byte, buckets/2))
			goodF32(w)
		}, compress.ErrSizeMismatch},
		{"sparse span overflow", func(w *wire.Writer) {
			w.Uint8(VecSparse)
			s := &compress.Sparse{Bits: compress.RawFloat32, N: buckets,
				Spans: []compress.Span{{Start: uint32(buckets - 1), Count: 1 << 30}}}
			s.WriteTo(w)
			goodF32(w)
		}, compress.ErrSpanRange},
	}
	for _, tc := range cases {
		w := wire.NewWriter(64)
		w.Int32(0) // node
		tc.build(w)
		_, err := c.call(0, OpPushHist, w.Bytes())
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

// sparseData generates a high-dimensional, mostly-empty workload — the
// regime the sparse encoding exists for.
func sparseData(m int) *dataset.Dataset {
	return dataset.Generate(dataset.SyntheticConfig{NumRows: 300, NumFeatures: m, AvgNNZ: 6, Seed: 31, Zipf: 1.4})
}

// TestExactSparsePullBitIdentical: with Exact+Sparse the whole loop — push,
// server merge, pull — must reproduce the worker-side union to the bit,
// because sparse spans carry float64 verbatim and elided buckets are exact
// zeros on both sides (invariant 18).
func TestExactSparsePullBitIdentical(t *testing.T) {
	const m, p, w = 200, 3, 2
	fx := newFixture(t, m, p, w)
	for _, c := range fx.clients {
		c.Exact = true
		c.Sparse = true
	}
	union, layout := buildDistributedHistograms(t, fx, sparseData(m), 0)
	perOpBefore, _ := WireBytes()
	got, err := fx.clients[0].PullHistogram(0, layout)
	if err != nil {
		t.Fatal(err)
	}
	for i := range union.G {
		if math.Float64bits(got.G[i]) != math.Float64bits(union.G[i]) ||
			math.Float64bits(got.H[i]) != math.Float64bits(union.H[i]) {
			t.Fatalf("bucket %d: (%v,%v) != (%v,%v)", i, got.G[i], got.H[i], union.G[i], union.H[i])
		}
	}
	// The per-op accounting must attribute the pull's response bytes.
	perOpAfter, _ := WireBytes()
	if perOpAfter["pull_hist_shard/out"] <= perOpBefore["pull_hist_shard/out"] {
		t.Fatal("pull_hist_shard/out bytes did not grow")
	}
}

// TestCompressedSparsePullApproximates: fixed-point pushes and pulls with
// sparse payloads stay within the quantization error bound of the union, and
// buckets no row touched stay exactly zero through the round trip.
func TestCompressedSparsePullApproximates(t *testing.T) {
	const m, p, w = 200, 3, 2
	fx := newFixture(t, m, p, w)
	for _, c := range fx.clients {
		c.Sparse = true
		c.PullBits = 8
	}
	union, layout := buildDistributedHistograms(t, fx, sparseData(m), 8)
	got, err := fx.clients[0].PullHistogram(0, layout)
	if err != nil {
		t.Fatal(err)
	}
	maxAbs := 0.0
	for i := range union.G {
		maxAbs = math.Max(maxAbs, math.Max(math.Abs(union.G[i]), math.Abs(union.H[i])))
	}
	// One 8-bit quantization per worker push plus one on the pull, each off
	// by at most maxAbs/127; doubled for per-shard scale slack.
	tol := 2 * float64(w+1) * maxAbs / 127
	for i := range union.G {
		if math.Abs(got.G[i]-union.G[i]) > tol || math.Abs(got.H[i]-union.H[i]) > tol {
			t.Fatalf("bucket %d: (%v,%v) vs (%v,%v), tol %v", i, got.G[i], got.H[i], union.G[i], union.H[i], tol)
		}
		// Hessians are positive, so a zero H bucket means no row landed
		// there on any worker; quantization must keep it exactly zero.
		if union.H[i] == 0 && (got.G[i] != 0 || got.H[i] != 0) {
			t.Fatalf("untouched bucket %d became (%v,%v)", i, got.G[i], got.H[i])
		}
	}
}

// TestCompactSplitRecords: a nonzero pull width narrows split statistics to
// float32 but must keep Found/Feature/Value exact — bin recovery inside
// SplitPredicate depends on the cut value surviving the wire bit-for-bit.
func TestCompactSplitRecords(t *testing.T) {
	const m, p, w = 50, 3, 2
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 400, NumFeatures: m, AvgNNZ: 10, Seed: 37, Zipf: 1.2})
	full := newFixture(t, m, p, w)
	buildDistributedHistograms(t, full, d, 0)
	want, err := full.clients[0].PullSplit(0, 1.0, 0.0, 1e-4)
	if err != nil {
		t.Fatal(err)
	}

	fx := newFixture(t, m, p, w)
	for _, c := range fx.clients {
		c.PullBits = 8
	}
	buildDistributedHistograms(t, fx, d, 0)
	got, err := fx.clients[0].PullSplit(0, 1.0, 0.0, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Split.Found || !want.Split.Found {
		t.Fatal("no split found")
	}
	if got.Split.Feature != want.Split.Feature ||
		math.Float64bits(got.Split.Value) != math.Float64bits(want.Split.Value) {
		t.Fatalf("split moved under compact records: (%d,%v) vs (%d,%v)",
			got.Split.Feature, got.Split.Value, want.Split.Feature, want.Split.Value)
	}
	relErr := math.Abs(got.Split.Gain-want.Split.Gain) / (1 + math.Abs(want.Split.Gain))
	if relErr > 1e-6 {
		t.Fatalf("gain %v vs %v (rel %v)", got.Split.Gain, want.Split.Gain, relErr)
	}

	// Stored split results travel at full precision on push; a compact pull
	// may narrow the gain but must preserve the exact cut value.
	if err := fx.clients[0].PushSplitResult(1, want); err != nil {
		t.Fatal(err)
	}
	back, err := fx.clients[1].PullSplitResults([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := back[1]
	if !ok {
		t.Fatal("stored split missing")
	}
	if math.Float64bits(rec.Split.Value) != math.Float64bits(want.Split.Value) {
		t.Fatal("compact stored split lost the exact cut value")
	}
}

// TestBadPullEncodingRejected: a malformed negotiation triple (unsupported
// width, or exact+compressed) is rejected before any histogram work.
func TestBadPullEncodingRejected(t *testing.T) {
	const m = 20
	fx := newFixture(t, m, 1, 1)
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 100, NumFeatures: m, AvgNNZ: 6, Seed: 41, Zipf: 1.2})
	buildDistributedHistograms(t, fx, d, 0)
	c := fx.clients[0]

	w := wire.NewWriter(16)
	w.Int32(0)
	w.Uint8(3) // unsupported fixed-point width
	w.Bool(false)
	w.Bool(false)
	if _, err := c.call(0, OpPullHistShard, w.Bytes()); !errors.Is(err, compress.ErrBadWidth) {
		t.Fatalf("width 3: %v", err)
	}

	w = wire.NewWriter(16)
	w.Int32(0)
	w.Uint8(8)
	w.Bool(true) // exact + 8-bit: contradictory
	w.Bool(false)
	if _, err := c.call(0, OpPullHistShard, w.Bytes()); err == nil {
		t.Fatal("exact+compressed encoding accepted")
	}
}

// TestVectorByteAccounting: the per-encoding byte counters must grow by
// exactly the payload sizes that cross the codec, attributed to the encoding
// actually chosen.
func TestVectorByteAccounting(t *testing.T) {
	vs := make([]float64, 1000)
	vs[10], vs[500], vs[501] = 1.5, -2.25, 3.0

	_, before := WireBytes()
	w := wire.NewWriter(64)
	ev := vecEncoding{exact: true, sparse: true}
	if err := writeHistVector(w, nil, vs, ev); err != nil {
		t.Fatal(err)
	}
	if w.Bytes()[0] != VecSparse {
		t.Fatalf("3-of-1000 vector encoded dense (tag %d)", w.Bytes()[0])
	}
	if _, err := readHistVector(wire.NewReader(w.Bytes()), "v", len(vs)); err != nil {
		t.Fatal(err)
	}
	_, after := WireBytes()
	n := int64(w.Len())
	if got := after["sparse/encode"] - before["sparse/encode"]; got != n {
		t.Fatalf("sparse/encode grew %d, want %d", got, n)
	}
	if got := after["sparse/decode"] - before["sparse/decode"]; got != n {
		t.Fatalf("sparse/decode grew %d, want %d", got, n)
	}

	// A dense-favored vector must land on the dense counter instead.
	dense := []float64{1, 2, 3, 4}
	_, before = WireBytes()
	w = wire.NewWriter(64)
	if err := writeHistVector(w, nil, dense, vecEncoding{sparse: true}); err != nil {
		t.Fatal(err)
	}
	if w.Bytes()[0] != VecFloat32 {
		t.Fatalf("dense vector encoded as tag %d", w.Bytes()[0])
	}
	if _, err := readHistVector(wire.NewReader(w.Bytes()), "v", len(dense)); err != nil {
		t.Fatal(err)
	}
	_, after = WireBytes()
	if after["float32/encode"]-before["float32/encode"] != int64(w.Len()) {
		t.Fatal("dense bytes not attributed to float32")
	}
	if after["sparse/encode"] != before["sparse/encode"] {
		t.Fatal("sparse counter grew on a dense write")
	}
}
