package ps

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"dimboost/internal/compress"
	"dimboost/internal/core"
	"dimboost/internal/histogram"
	"dimboost/internal/sketch"
	"dimboost/internal/transport"
	"dimboost/internal/wire"
)

// Server is one parameter-server shard. It owns the features of its hash
// ranges: their quantile sketches, split candidates, histogram buckets of
// every active tree node, and the split results of the nodes it is the
// NodeOwner of. All state is guarded by one mutex; handlers are invoked
// concurrently by the transport.
type Server struct {
	id   int
	part *Partition
	eps  float64 // sketch rank error

	mu sync.Mutex
	// pendingSketches buffers per-worker sketch pushes; they merge in
	// worker-id order at candidate proposal so the result is independent
	// of push arrival order (GK merging is not order-commutative at the
	// bit level).
	pendingSketches map[int32]map[int32]*sketch.GK
	sketches        map[int32]*sketch.GK
	cands           map[int32]sketch.Candidates
	sampled         []int32
	layout          *histogram.Layout // shard layout: owned ∩ sampled features
	// pending holds per-node, per-worker pushed shards awaiting the
	// deterministic worker-ordered merge. Shards stay in their wire format
	// (tagged vectors: float32/float64/fixed/sparse) until the merge,
	// keeping server memory at wire size rather than decoded float64 size.
	pending map[int32]map[int32]*wireShard
	merged  map[int32]*shard
	splits  map[int32]splitRecord
	// applied is the highest request seq applied per worker (see the
	// envelope notes in proto.go). A mutating request at or below it is a
	// duplicate — a transport-level retry whose original did land — and is
	// acknowledged without re-applying. Never reset by NEW_TREE: seqs span
	// the whole training run.
	applied map[int32]uint64
}

// shard is the G/H bucket arrays of one node restricted to this server's
// features, laid out per s.layout.
type shard struct {
	g, h []float64
}

// wireShard is a pushed histogram shard still in wire format: two tagged
// G/H vectors, validated at push time, decoded at merge.
type wireShard struct {
	body []byte
}

// serverEnc encodes pull responses. It rounds to nearest (no RNG), so it is
// safe under concurrent handlers and — critically — a retried pull or a
// pull from a different worker produces byte-identical responses; stochastic
// rounding here would make training depend on request arrival order.
var serverEnc = compress.NewDeterministicEncoder()

// NewServer constructs a server for shard id under the partition.
func NewServer(id int, part *Partition, sketchEps float64) *Server {
	return &Server{
		id:              id,
		part:            part,
		eps:             sketchEps,
		pendingSketches: make(map[int32]map[int32]*sketch.GK),
		sketches:        make(map[int32]*sketch.GK),
		cands:           make(map[int32]sketch.Candidates),
		pending:         make(map[int32]map[int32]*wireShard),
		merged:          make(map[int32]*shard),
		splits:          make(map[int32]splitRecord),
		applied:         make(map[int32]uint64),
	}
}

// isDuplicate reports whether a mutating request's seq was already applied
// for the worker.
func (s *Server) isDuplicate(worker int32, seq uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return seq <= s.applied[worker]
}

// recordApplied advances the worker's applied-seq watermark.
func (s *Server) recordApplied(worker int32, seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq > s.applied[worker] {
		s.applied[worker] = seq
	}
}

// Handler returns the transport handler serving the PS protocol. Every
// request starts with the (worker, seq) envelope; duplicate mutating
// requests — retries whose original attempt did apply — are acknowledged
// without re-applying.
func (s *Server) Handler() transport.Handler {
	m, _ := psMetrics()
	inner := func(from string, req transport.Message) (transport.Message, error) {
		r := wire.NewReader(req.Body)
		worker := r.Int32()
		seq := r.Uint64()
		if err := r.Err(); err != nil {
			return transport.Message{}, fmt.Errorf("ps: server %d: op %d: bad envelope: %w", s.id, req.Op, err)
		}
		mutating := mutatingOp(req.Op)
		if mutating && s.isDuplicate(worker, seq) {
			// Mutating ops answer with empty bodies, so the duplicate ack is
			// byte-identical to the original response.
			m.dedupHits.Inc()
			return transport.Message{Op: req.Op}, nil
		}
		var resp *wire.Writer
		var err error
		switch req.Op {
		case OpPushSketch:
			resp, err = s.pushSketch(worker, r)
		case OpPullCandidates:
			resp, err = s.pullCandidates(r)
		case OpPushSampled:
			resp, err = s.pushSampled(r)
		case OpPullSampled:
			resp, err = s.pullSampled()
		case OpNewTree:
			resp, err = s.newTree(r)
		case OpPushHist:
			resp, err = s.pushHist(worker, r)
		case OpPullSplit:
			resp, err = s.pullSplit(r)
		case OpPullHistShard:
			resp, err = s.pullHistShard(r)
		case OpPushSplitResult:
			resp, err = s.pushSplitResult(r)
		case OpPullSplitResults:
			resp, err = s.pullSplitResults(r)
		default:
			return transport.Message{}, fmt.Errorf("ps: server %d: unknown op %d", s.id, req.Op)
		}
		if err != nil {
			return transport.Message{}, fmt.Errorf("ps: server %d: op %d: %w", s.id, req.Op, err)
		}
		if rerr := r.Err(); rerr != nil {
			return transport.Message{}, fmt.Errorf("ps: server %d: op %d: %w", s.id, req.Op, rerr)
		}
		if mutating {
			s.recordApplied(worker, seq)
		}
		if resp == nil {
			resp = wire.NewWriter(0)
		}
		return transport.Message{Op: req.Op, Body: resp.Bytes()}, nil
	}
	return func(from string, req transport.Message) (transport.Message, error) {
		start := time.Now()
		resp, err := inner(from, req)
		m.observe(req.Op, req.Size(), resp.Size(), time.Since(start).Seconds(), err)
		return resp, err
	}
}

// pushSketch buffers a batch of per-feature sketch summaries from one
// worker.
func (s *Server) pushSketch(worker int32, r *wire.Reader) (*wire.Writer, error) {
	n := int(r.Uint32())
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < n; i++ {
		f := r.Int32()
		values := r.Float64s()
		gs := r.Uint64s()
		deltas := r.Uint64s()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if s.part.ServerOf(f) != s.id {
			return nil, fmt.Errorf("feature %d pushed to wrong server", f)
		}
		in, err := sketch.Restore(s.eps, values, gs, deltas)
		if err != nil {
			return nil, err
		}
		byWorker := s.pendingSketches[f]
		if byWorker == nil {
			byWorker = make(map[int32]*sketch.GK)
			s.pendingSketches[f] = byWorker
		}
		byWorker[worker] = in
	}
	return nil, nil
}

// mergeSketches folds buffered per-worker sketches in worker-id order.
// Caller holds s.mu.
func (s *Server) mergeSketches() {
	for f, byWorker := range s.pendingSketches {
		workers := make([]int32, 0, len(byWorker))
		for wk := range byWorker {
			workers = append(workers, wk)
		}
		sort.Slice(workers, func(a, b int) bool { return workers[a] < workers[b] })
		cur := s.sketches[f]
		for _, wk := range workers {
			if cur == nil {
				cur = byWorker[wk]
			} else {
				cur.Merge(byWorker[wk])
			}
		}
		s.sketches[f] = cur
		delete(s.pendingSketches, f)
	}
}

// pullCandidates proposes (and caches) split candidates for this server's
// features that have sketches.
func (s *Server) pullCandidates(r *wire.Reader) (*wire.Writer, error) {
	k := int(r.Uint32())
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mergeSketches()
	feats := make([]int32, 0, len(s.sketches))
	for f := range s.sketches {
		feats = append(feats, f)
	}
	sort.Slice(feats, func(a, b int) bool { return feats[a] < feats[b] })
	w := wire.NewWriter(len(feats) * 64)
	w.Uint32(uint32(len(feats)))
	for _, f := range feats {
		c, ok := s.cands[f]
		if !ok {
			c = sketch.Propose(s.sketches[f], k)
			s.cands[f] = c
		}
		w.Int32(f)
		w.Float64s(c.Cuts)
	}
	return w, nil
}

func (s *Server) pushSampled(r *wire.Reader) (*wire.Writer, error) {
	feats := r.Int32s()
	if r.Err() != nil {
		return nil, r.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sampled = feats
	return nil, nil
}

func (s *Server) pullSampled() (*wire.Writer, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := wire.NewWriter(4 * len(s.sampled))
	w.Int32s(s.sampled)
	return w, nil
}

// newTree resets per-tree state and builds the shard layout over
// (owned ∩ sampled) features. The sampled list travels in the request so
// NEW_TREE is a single round trip.
func (s *Server) newTree(r *wire.Reader) (*wire.Writer, error) {
	sampled := r.Int32s()
	if r.Err() != nil {
		return nil, r.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sampled = sampled
	mine := s.part.FeaturesOf(s.id, sampled)
	candsByFeature := make([]sketch.Candidates, s.part.NumFeatures)
	for _, f := range mine {
		c, ok := s.cands[f]
		if !ok {
			// feature never saw a nonzero value anywhere: single zero cut
			c = sketch.Propose(nil, 1)
			s.cands[f] = c
		}
		candsByFeature[f] = c
	}
	layout, err := histogram.NewLayout(mine, candsByFeature, s.part.NumFeatures)
	if err != nil {
		return nil, err
	}
	s.layout = layout
	s.pending = make(map[int32]map[int32]*wireShard)
	s.merged = make(map[int32]*shard)
	s.splits = make(map[int32]splitRecord)
	return nil, nil
}

// pushHist stores one worker's shard of one node's histogram. Shards are
// buffered in wire format and merged (decoded) in worker-id order at first
// read, so the global histogram is independent of push arrival order and
// server memory stays proportional to the compressed wire size.
func (s *Server) pushHist(worker int32, r *wire.Reader) (*wire.Writer, error) {
	node := r.Int32()
	body := make([]byte, len(r.Rest()))
	copy(body, r.Rest())
	r.Skip(len(body))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.layout == nil {
		return nil, fmt.Errorf("push before NEW_TREE")
	}
	// Validate the payload shape from headers only — every declared width
	// and element count is checked against this server's layout before the
	// shard is accepted, so a stale-partition client (or hostile peer)
	// cannot mis-size the merge buffer or smuggle an undecodable width to
	// the merge. Bucket data itself is decoded once, at the worker-ordered
	// merge.
	cr := wire.NewReader(body)
	if err := checkHistVector(cr, "pushed g shard", s.layout.TotalBuckets); err != nil {
		return nil, err
	}
	if err := checkHistVector(cr, "pushed h shard", s.layout.TotalBuckets); err != nil {
		return nil, err
	}
	if cr.Remaining() != 0 {
		return nil, fmt.Errorf("push has %d trailing bytes", cr.Remaining())
	}
	byWorker := s.pending[node]
	if byWorker == nil {
		byWorker = make(map[int32]*wireShard)
		s.pending[node] = byWorker
	}
	byWorker[worker] = &wireShard{body: body}
	delete(s.merged, node) // new data invalidates a previous merge
	return nil, nil
}

// mergedShard folds pending pushes (worker-id order) into the node's global
// shard. Caller holds s.mu.
func (s *Server) mergedShard(node int32) (*shard, error) {
	if m := s.merged[node]; m != nil {
		return m, nil
	}
	byWorker := s.pending[node]
	if len(byWorker) == 0 {
		return nil, fmt.Errorf("no histogram pushed for node %d", node)
	}
	workers := make([]int32, 0, len(byWorker))
	for wk := range byWorker {
		workers = append(workers, wk)
	}
	sort.Slice(workers, func(a, b int) bool { return workers[a] < workers[b] })
	out := &shard{g: make([]float64, s.layout.TotalBuckets), h: make([]float64, s.layout.TotalBuckets)}
	for _, wk := range workers {
		r := wire.NewReader(byWorker[wk].body)
		if err := readHistVectorInto(r, "pushed g shard", out.g); err != nil {
			return nil, err
		}
		if err := readHistVectorInto(r, "pushed h shard", out.h); err != nil {
			return nil, err
		}
	}
	delete(s.pending, node) // wire buffers are no longer needed
	s.merged[node] = out
	return out, nil
}

// pullSplit is the user-defined pull of §6.3: run Algorithm 1 over this
// shard only and answer with one split record instead of the shard's bytes.
func (s *Server) pullSplit(r *wire.Reader) (*wire.Writer, error) {
	node := r.Int32()
	lambda := r.Float64()
	gamma := r.Float64()
	minChild := r.Float64()
	ev, err := readEncoding(r)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	w := wire.NewWriter(96)
	if s.layout == nil || s.layout.NumFeatures() == 0 {
		writeSplitRecord(w, splitRecord{}, ev.compactSplits())
		return w, nil
	}
	sh, err := s.mergedShard(node)
	if err != nil {
		return nil, err
	}
	hist := &histogram.Histogram{Layout: s.layout, G: sh.g, H: sh.h}
	// Every feature's buckets sum to the node totals (Algorithm 2
	// invariant), so the shard alone recovers them.
	totalG, totalH := hist.FeatureTotals(0)
	split := core.FindSplit(hist, totalG, totalH, lambda, gamma, minChild)
	writeSplitRecord(w, splitRecord{Split: split, HasTotals: true, NodeG: totalG, NodeH: totalH}, ev.compactSplits())
	return w, nil
}

// pullHistShard returns the merged shard under the encoding the client
// negotiated (two-phase disabled). The deterministic server encoder keeps
// responses byte-identical across retries and across workers.
func (s *Server) pullHistShard(r *wire.Reader) (*wire.Writer, error) {
	node := r.Int32()
	ev, err := readEncoding(r)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.layout == nil || s.layout.NumFeatures() == 0 {
		w := wire.NewWriter(16)
		if err := writeHistVector(w, serverEnc, nil, ev); err != nil {
			return nil, err
		}
		if err := writeHistVector(w, serverEnc, nil, ev); err != nil {
			return nil, err
		}
		return w, nil
	}
	sh, err := s.mergedShard(node)
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter(8 * len(sh.g))
	if err := writeHistVector(w, serverEnc, sh.g, ev); err != nil {
		return nil, err
	}
	if err := writeHistVector(w, serverEnc, sh.h, ev); err != nil {
		return nil, err
	}
	return w, nil
}

func (s *Server) pushSplitResult(r *wire.Reader) (*wire.Writer, error) {
	node := r.Int32()
	rec, err := readSplitRecord(r)
	if err != nil {
		return nil, err
	}
	if s.part.NodeOwner(int(node)) != s.id {
		return nil, fmt.Errorf("node %d split pushed to wrong server", node)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.splits[node] = rec
	return nil, nil
}

func (s *Server) pullSplitResults(r *wire.Reader) (*wire.Writer, error) {
	nodes := r.Int32s()
	ev, err := readEncoding(r)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	w := wire.NewWriter(96 * len(nodes))
	w.Uint32(uint32(len(nodes)))
	for _, node := range nodes {
		rec, ok := s.splits[node]
		w.Int32(node)
		w.Bool(ok)
		writeSplitRecord(w, rec, ev.compactSplits())
	}
	return w, nil
}

// NumSketches reports how many features this server holds sketches for
// (observability/tests).
func (s *Server) NumSketches() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mergeSketches()
	return len(s.sketches)
}

// ShardFeatures returns the server's current shard feature list
// (observability/tests).
func (s *Server) ShardFeatures() []int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.layout == nil {
		return nil
	}
	return s.layout.Features
}
