package ps

import (
	"math"
	"testing"

	"dimboost/internal/core"
	"dimboost/internal/dataset"
	"dimboost/internal/histogram"
	"dimboost/internal/sketch"
	"dimboost/internal/transport"
)

func TestPartitionCoversAllFeatures(t *testing.T) {
	for _, tc := range []struct{ m, p, r int }{
		{100, 1, 0}, {100, 4, 0}, {330, 7, 0}, {10, 3, 5}, {5, 8, 0}, {1000, 50, 0},
	} {
		part, err := NewPartition(tc.m, tc.p, tc.r)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, tc.p)
		for f := 0; f < tc.m; f++ {
			sv := part.ServerOf(int32(f))
			if sv < 0 || sv >= tc.p {
				t.Fatalf("m=%d p=%d: feature %d on server %d", tc.m, tc.p, f, sv)
			}
			counts[sv]++
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != tc.m {
			t.Fatalf("m=%d p=%d: covered %d", tc.m, tc.p, total)
		}
	}
}

func TestPartitionRangesContiguous(t *testing.T) {
	part, _ := NewPartition(101, 4, 7)
	covered := 0
	for r := 0; r < part.NumRanges; r++ {
		lo, hi := part.RangeBounds(r)
		if int(lo) != covered {
			t.Fatalf("range %d starts at %d, want %d", r, lo, covered)
		}
		covered = int(hi)
		// every feature in the range maps back to this range's server
		sv := part.serverOfRange(r)
		for f := lo; f < hi; f++ {
			if part.ServerOf(f) != sv {
				t.Fatalf("feature %d: server %d, range server %d", f, part.ServerOf(f), sv)
			}
		}
	}
	if covered != 101 {
		t.Fatalf("ranges cover %d", covered)
	}
}

func TestPartitionBalance(t *testing.T) {
	// with the default 8 ranges/server, no server should be starved
	part, _ := NewPartition(100_000, 10, 0)
	counts := make([]int, 10)
	for f := 0; f < 100_000; f++ {
		counts[part.ServerOf(int32(f))]++
	}
	for sv, c := range counts {
		if c == 0 {
			t.Fatalf("server %d owns no features", sv)
		}
		if c > 40_000 {
			t.Fatalf("server %d owns %d features — hash badly skewed", sv, c)
		}
	}
}

func TestPartitionErrorsAndPanics(t *testing.T) {
	if _, err := NewPartition(0, 1, 0); err == nil {
		t.Fatal("0 features should fail")
	}
	if _, err := NewPartition(10, 0, 0); err == nil {
		t.Fatal("0 servers should fail")
	}
	part, _ := NewPartition(10, 2, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range feature should panic")
		}
	}()
	part.ServerOf(10)
}

func TestFeaturesOfPreservesOrder(t *testing.T) {
	part, _ := NewPartition(50, 3, 0)
	all := make([]int32, 50)
	for i := range all {
		all[i] = int32(i)
	}
	seen := 0
	for sv := 0; sv < 3; sv++ {
		fs := part.FeaturesOf(sv, all)
		for i := 1; i < len(fs); i++ {
			if fs[i] <= fs[i-1] {
				t.Fatal("FeaturesOf not sorted")
			}
		}
		seen += len(fs)
	}
	if seen != 50 {
		t.Fatalf("FeaturesOf covered %d", seen)
	}
}

// cluster is a test fixture: p servers and w clients over a MemNetwork.
type psFixture struct {
	net     *transport.MemNetwork
	part    *Partition
	servers []*Server
	clients []*Client
}

func newFixture(t *testing.T, numFeatures, p, w int) *psFixture {
	t.Helper()
	net := transport.NewMemNetwork()
	part, err := NewPartition(numFeatures, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	fx := &psFixture{net: net, part: part}
	names := make([]string, p)
	for i := 0; i < p; i++ {
		names[i] = serverName(i)
		ep, err := net.Endpoint(names[i])
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(i, part, 0.02)
		ep.Handle(srv.Handler())
		fx.servers = append(fx.servers, srv)
	}
	for i := 0; i < w; i++ {
		ep, err := net.Endpoint(workerName(i))
		if err != nil {
			t.Fatal(err)
		}
		fx.clients = append(fx.clients, NewClient(ep, part, names, i))
	}
	return fx
}

func serverName(i int) string { return "server-" + string(rune('0'+i)) }
func workerName(i int) string { return "worker-" + string(rune('0'+i)) }

func TestSketchPushPullEndToEnd(t *testing.T) {
	const m, p, w = 60, 3, 4
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 400, NumFeatures: m, AvgNNZ: 10, Seed: 3, Zipf: 1.2})
	shards := dataset.PartitionRows(d, w)
	fx := newFixture(t, m, p, w)

	for i, c := range fx.clients {
		set := sketch.NewSet(m, 0.02)
		set.AddDataset(shards[i])
		if err := c.PushSketches(set); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, srv := range fx.servers {
		total += srv.NumSketches()
	}
	// every feature with at least one nonzero has a sketch on exactly one server
	whole := sketch.NewSet(m, 0.02)
	whole.AddDataset(d)
	want := 0
	for f := 0; f < m; f++ {
		if whole.Feature(f) != nil {
			want++
		}
	}
	if total != want {
		t.Fatalf("servers hold %d sketches, want %d", total, want)
	}

	cands, err := fx.clients[0].PullCandidates(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != m {
		t.Fatalf("candidates for %d features", len(cands))
	}
	ref := whole.Candidates(12)
	for f := 0; f < m; f++ {
		if whole.Feature(f) == nil {
			if cands[f].NumBuckets() != 1 {
				t.Fatalf("feature %d should be trivial", f)
			}
			continue
		}
		if cands[f].NumBuckets() < 1 || cands[f].NumBuckets() > ref[f].NumBuckets()+12 {
			t.Fatalf("feature %d has implausible bucket count %d", f, cands[f].NumBuckets())
		}
		if cands[f].Cuts[cands[f].ZeroBucket] != 0 {
			t.Fatalf("feature %d lost its zero bucket", f)
		}
	}
}

func TestSampledFeaturesRoundTrip(t *testing.T) {
	fx := newFixture(t, 30, 2, 2)
	feats := []int32{1, 5, 9, 22}
	if err := fx.clients[0].PushSampled(feats); err != nil {
		t.Fatal(err)
	}
	got, err := fx.clients[1].PullSampled()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(feats) {
		t.Fatalf("got %v", got)
	}
	for i := range feats {
		if got[i] != feats[i] {
			t.Fatalf("got %v", got)
		}
	}
}

// buildDistributedHistograms pushes per-worker histograms for node 0 and
// returns the worker-side union histogram and layout for comparison.
func buildDistributedHistograms(t *testing.T, fx *psFixture, d *dataset.Dataset, bits uint) (*histogram.Histogram, *histogram.Layout) {
	t.Helper()
	m := d.NumFeatures
	w := len(fx.clients)
	shards := dataset.PartitionRows(d, w)
	for i, c := range fx.clients {
		set := sketch.NewSet(m, 0.02)
		set.AddDataset(shards[i])
		if err := c.PushSketches(set); err != nil {
			t.Fatal(err)
		}
	}
	cands, err := fx.clients[0].PullCandidates(10)
	if err != nil {
		t.Fatal(err)
	}
	sampled := histogram.AllFeatures(m)
	if err := fx.clients[0].NewTree(sampled); err != nil {
		t.Fatal(err)
	}
	layout, err := histogram.NewLayout(sampled, cands, m)
	if err != nil {
		t.Fatal(err)
	}
	union := histogram.New(layout)
	for i, c := range fx.clients {
		c.Bits = bits
		sh := shards[i]
		grad := make([]float64, sh.NumRows())
		hess := make([]float64, sh.NumRows())
		rows := make([]int32, sh.NumRows())
		for r := range rows {
			rows[r] = int32(r)
			grad[r] = math.Sin(float64(i*1000 + r))
			hess[r] = 0.3 + 0.05*float64(r%4)
		}
		local := histogram.New(layout)
		histogram.BuildSparse(local, sh, rows, grad, hess)
		union.Add(local)
		if err := c.PushHistogram(0, local); err != nil {
			t.Fatal(err)
		}
	}
	return union, layout
}

func TestTwoPhaseSplitMatchesLocal(t *testing.T) {
	const m, p, w = 50, 3, 4
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 500, NumFeatures: m, AvgNNZ: 10, Seed: 7, Zipf: 1.2})
	fx := newFixture(t, m, p, w)
	union, _ := buildDistributedHistograms(t, fx, d, 0)

	totalG, totalH := union.FeatureTotals(0)
	want := core.FindSplit(union, totalG, totalH, 1.0, 0.0, 1e-4)

	res, err := fx.clients[1].PullSplit(0, 1.0, 0.0, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasTotals {
		t.Fatal("no totals returned")
	}
	// float32 wire narrowing costs ~1e-7 relative precision
	if math.Abs(res.NodeG-totalG) > 1e-3 || math.Abs(res.NodeH-totalH) > 1e-3 {
		t.Fatalf("totals (%v,%v), want (%v,%v)", res.NodeG, res.NodeH, totalG, totalH)
	}
	if !want.Found || !res.Split.Found {
		t.Fatalf("splits not found: local %v remote %v", want.Found, res.Split.Found)
	}
	if res.Split.Feature != want.Feature || math.Abs(res.Split.Value-want.Value) > 1e-6 {
		t.Fatalf("split (%d,%v), want (%d,%v)", res.Split.Feature, res.Split.Value, want.Feature, want.Value)
	}
	if math.Abs(res.Split.Gain-want.Gain) > 1e-3*(1+math.Abs(want.Gain)) {
		t.Fatalf("gain %v, want %v", res.Split.Gain, want.Gain)
	}
}

func TestPullHistogramReassembles(t *testing.T) {
	const m, p, w = 40, 4, 3
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 300, NumFeatures: m, AvgNNZ: 8, Seed: 11, Zipf: 1.2})
	fx := newFixture(t, m, p, w)
	union, layout := buildDistributedHistograms(t, fx, d, 0)

	got, err := fx.clients[0].PullHistogram(0, layout)
	if err != nil {
		t.Fatal(err)
	}
	for i := range union.G {
		if math.Abs(got.G[i]-union.G[i]) > 1e-3 {
			t.Fatalf("G[%d]: %v vs %v", i, got.G[i], union.G[i])
		}
		if math.Abs(got.H[i]-union.H[i]) > 1e-3 {
			t.Fatalf("H[%d]: %v vs %v", i, got.H[i], union.H[i])
		}
	}
}

func TestCompressedPushStillFindsGoodSplit(t *testing.T) {
	const m, p, w = 50, 3, 4
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 500, NumFeatures: m, AvgNNZ: 10, Seed: 13, Zipf: 1.2})

	fxFull := newFixture(t, m, p, w)
	unionFull, _ := buildDistributedHistograms(t, fxFull, d, 0)
	totalG, totalH := unionFull.FeatureTotals(0)
	exact := core.FindSplit(unionFull, totalG, totalH, 1.0, 0.0, 1e-4)

	fx := newFixture(t, m, p, w)
	buildDistributedHistograms(t, fx, d, 8)
	res, err := fx.clients[0].PullSplit(0, 1.0, 0.0, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Split.Found {
		t.Fatal("compressed path found no split")
	}
	// the 8-bit split's gain must be close to the exact best gain
	if res.Split.Gain < exact.Gain*0.8 {
		t.Fatalf("compressed gain %v far below exact %v", res.Split.Gain, exact.Gain)
	}
}

func TestSplitResultStoreFetch(t *testing.T) {
	fx := newFixture(t, 20, 3, 2)
	s1 := SplitResult{Split: core.Split{Found: true, Feature: 3, Value: 1.5, Gain: 2.0, LeftG: 1, LeftH: 2, RightG: 3, RightH: 4}, HasTotals: true, NodeG: 4, NodeH: 6}
	s2 := SplitResult{Split: core.Split{Found: true, Feature: 7, Value: -0.5, Gain: 1.0}}
	if err := fx.clients[0].PushSplitResult(1, s1); err != nil {
		t.Fatal(err)
	}
	if err := fx.clients[1].PushSplitResult(2, s2); err != nil {
		t.Fatal(err)
	}
	got, err := fx.clients[0].PullSplitResults([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d results", len(got))
	}
	if got[1] != s1 || got[2] != s2 {
		t.Fatalf("round trip mangled splits: %+v", got)
	}
	if _, ok := got[3]; ok {
		t.Fatal("node 3 should be absent")
	}
}

func TestServerRejectsBadTraffic(t *testing.T) {
	fx := newFixture(t, 20, 2, 1)
	ep, _ := fx.net.Endpoint("rogue")
	// unknown op
	if _, err := ep.Call(serverName(0), transport.Message{Op: 200}); err == nil {
		t.Fatal("unknown op should fail")
	}
	// push histogram before NEW_TREE
	c := fx.clients[0]
	cands := make([]sketch.Candidates, 20)
	for i := range cands {
		cands[i] = sketch.FromCuts([]float64{0})
	}
	layout, _ := histogram.NewLayout(histogram.AllFeatures(20), cands, 20)
	if err := c.PushHistogram(0, histogram.New(layout)); err == nil {
		t.Fatal("push before NEW_TREE should fail")
	}
	// pull split with nothing pushed
	if err := c.NewTree(histogram.AllFeatures(20)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PullSplit(0, 1, 0, 0); err == nil {
		t.Fatal("pull split with no pushes should fail")
	}
	// truncated body
	if _, err := ep.Call(serverName(0), transport.Message{Op: OpPushHist, Body: []byte{1, 2}}); err == nil {
		t.Fatal("truncated body should fail")
	}
}

// recordingEndpoint captures the last request per op so tests can replay
// byte-identical duplicates — what a transport retry produces when the
// original attempt landed but its response was lost.
type recordingEndpoint struct {
	transport.Endpoint
	lastTo  map[uint8]string
	lastReq map[uint8]transport.Message
}

func newRecordingEndpoint(ep transport.Endpoint) *recordingEndpoint {
	return &recordingEndpoint{
		Endpoint: ep,
		lastTo:   make(map[uint8]string),
		lastReq:  make(map[uint8]transport.Message),
	}
}

func (e *recordingEndpoint) Call(to string, req transport.Message) (transport.Message, error) {
	e.lastTo[req.Op] = to
	e.lastReq[req.Op] = req
	return e.Endpoint.Call(to, req)
}

func (e *recordingEndpoint) replay(op uint8) (transport.Message, error) {
	return e.Endpoint.Call(e.lastTo[op], e.lastReq[op])
}

// TestDuplicatePushDoesNotDoubleCount: a replayed PUSH_HIST must not corrupt
// the merged histogram. Without seq-based dedupe the duplicate re-creates
// the node's pending set with only one worker's shard and invalidates the
// merge, so a later pull would see a histogram missing every other worker.
func TestDuplicatePushDoesNotDoubleCount(t *testing.T) {
	const m, p, w = 40, 1, 2
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 300, NumFeatures: m, AvgNNZ: 8, Seed: 17, Zipf: 1.2})
	fx := newFixture(t, m, p, w)
	// route worker 0 through a recording endpoint
	rec := newRecordingEndpoint(fx.clients[0].ep)
	fx.clients[0].ep = rec

	buildDistributedHistograms(t, fx, d, 0)
	res1, err := fx.clients[0].PullSplit(0, 1.0, 0.0, 1e-4)
	if err != nil {
		t.Fatal(err)
	}

	// replay worker 0's histogram push: must be acknowledged, not re-applied
	if _, err := rec.replay(OpPushHist); err != nil {
		t.Fatalf("duplicate push rejected: %v", err)
	}
	res2, err := fx.clients[0].PullSplit(0, 1.0, 0.0, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if res2.NodeG != res1.NodeG || res2.NodeH != res1.NodeH {
		t.Fatalf("duplicate push changed totals: (%v,%v) vs (%v,%v)",
			res2.NodeG, res2.NodeH, res1.NodeG, res1.NodeH)
	}
	if res2.Split != res1.Split {
		t.Fatalf("duplicate push changed the split: %+v vs %+v", res2.Split, res1.Split)
	}
}

// TestDuplicateNewTreeDoesNotResetState: a replayed NEW_TREE must not wipe
// histograms pushed after the original.
func TestDuplicateNewTreeDoesNotResetState(t *testing.T) {
	const m, p, w = 40, 1, 2
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 300, NumFeatures: m, AvgNNZ: 8, Seed: 19, Zipf: 1.2})
	fx := newFixture(t, m, p, w)
	rec := newRecordingEndpoint(fx.clients[0].ep)
	fx.clients[0].ep = rec

	buildDistributedHistograms(t, fx, d, 0) // client 0 issues NEW_TREE inside
	if _, err := rec.replay(OpNewTree); err != nil {
		t.Fatalf("duplicate NEW_TREE rejected: %v", err)
	}
	if _, err := fx.clients[0].PullSplit(0, 1.0, 0.0, 1e-4); err != nil {
		t.Fatalf("pushed histograms were lost to a duplicate NEW_TREE: %v", err)
	}
}

func TestNodeOwnerSpread(t *testing.T) {
	part, _ := NewPartition(10, 4, 0)
	owners := map[int]bool{}
	for n := 0; n < 8; n++ {
		owners[part.NodeOwner(n)] = true
	}
	if len(owners) != 4 {
		t.Fatalf("node ownership uses %d servers, want 4", len(owners))
	}
}
