package ps

import (
	"dimboost/internal/core"
	"dimboost/internal/wire"
)

// Operation codes of the parameter-server protocol. Workers are the
// clients; servers answer. The master's barrier op lives in
// internal/cluster.
const (
	// OpPushSketch merges worker-local quantile sketches into the server's
	// shard (CREATE_SKETCH).
	OpPushSketch uint8 = iota + 1
	// OpPullCandidates returns the split candidates of the server's
	// features (PULL_SKETCH).
	OpPullCandidates
	// OpPushSampled stores the leader's sampled feature list for the
	// current tree (NEW_TREE).
	OpPushSampled
	// OpPullSampled returns the sampled feature list.
	OpPullSampled
	// OpNewTree resets per-tree state (histograms, splits) and builds the
	// server's shard layout for the sampled features.
	OpNewTree
	// OpPushHist accumulates a worker's local histogram shard for one tree
	// node (FIND_SPLIT, push half).
	OpPushHist
	// OpPullSplit runs Algorithm 1 on the server's shard and returns the
	// local best split — the server-side phase of two-phase split finding.
	OpPullSplit
	// OpPullHistShard returns the server's merged raw shard; used when
	// two-phase split finding is disabled (ablation).
	OpPullHistShard
	// OpPushSplitResult stores the global best split of a node.
	OpPushSplitResult
	// OpPullSplitResults returns the stored splits of a node set
	// (SPLIT_TREE).
	OpPullSplitResults
)

// Request envelope. Every client→server request body starts with
// (worker int32, seq uint64): the sending worker's id and a per-worker
// strictly increasing sequence number. The transport retries transient
// failures by resending the identical message — same seq — and a server
// deduplicates mutating ops by remembering the highest seq it has applied
// per worker. A retried PUSH whose first attempt did reach the server (the
// response was lost) is therefore acknowledged without re-applying, so it
// can never double-accumulate into a histogram or re-reset per-tree state.
//
// The client issues requests to any single server sequentially (fan-outs
// send one message per server), so per (worker, server) the seq stream is
// strictly increasing and "seq already seen" exactly identifies duplicates.

// OpName returns the human-readable op label used by the ps metrics.
func OpName(op uint8) string {
	switch op {
	case OpPushSketch:
		return "push_sketch"
	case OpPullCandidates:
		return "pull_candidates"
	case OpPushSampled:
		return "push_sampled"
	case OpPullSampled:
		return "pull_sampled"
	case OpNewTree:
		return "new_tree"
	case OpPushHist:
		return "push_hist"
	case OpPullSplit:
		return "pull_split"
	case OpPullHistShard:
		return "pull_hist_shard"
	case OpPushSplitResult:
		return "push_split_result"
	case OpPullSplitResults:
		return "pull_split_results"
	}
	return "unknown"
}

// mutatingOp reports whether an op changes server state and therefore needs
// duplicate suppression. Pull ops are naturally idempotent (their caches
// are memoized) and skip the check.
func mutatingOp(op uint8) bool {
	switch op {
	case OpPushSketch, OpPushSampled, OpNewTree, OpPushHist, OpPushSplitResult:
		return true
	}
	return false
}

// writeEnvelope prepends the idempotency header to a request body.
func writeEnvelope(worker int32, seq uint64, body []byte) []byte {
	w := wire.NewWriter(12 + len(body))
	w.Int32(worker)
	w.Uint64(seq)
	w.Raw(body)
	return w.Bytes()
}

// Histogram wire formats.
const (
	// FormatFloat32 sends buckets as float32 — "full precision" in the
	// paper's comparison (4 bytes per statistic).
	FormatFloat32 uint8 = 0
	// FormatCompressed sends low-precision fixed-point buckets (§6.1).
	FormatCompressed uint8 = 1
	// FormatFloat64 sends full float64 buckets; twice the bytes of the
	// paper's format, used by tests that need bit-level reproducibility
	// between distributed and single-process training.
	FormatFloat64 uint8 = 2
)

// splitRecord is the two-phase split response: a candidate split plus the
// node totals the server derived from its own shard.
type splitRecord struct {
	Split     core.Split
	HasTotals bool
	NodeG     float64
	NodeH     float64
}

func writeSplit(w *wire.Writer, s core.Split) {
	w.Bool(s.Found)
	w.Int32(s.Feature)
	w.Float64(s.Value)
	w.Float64(s.Gain)
	w.Float64(s.LeftG)
	w.Float64(s.LeftH)
	w.Float64(s.RightG)
	w.Float64(s.RightH)
}

func readSplit(r *wire.Reader) core.Split {
	var s core.Split
	s.Found = r.Bool()
	s.Feature = r.Int32()
	s.Value = r.Float64()
	s.Gain = r.Float64()
	s.LeftG = r.Float64()
	s.LeftH = r.Float64()
	s.RightG = r.Float64()
	s.RightH = r.Float64()
	return s
}

func writeSplitRecord(w *wire.Writer, rec splitRecord) {
	writeSplit(w, rec.Split)
	w.Bool(rec.HasTotals)
	w.Float64(rec.NodeG)
	w.Float64(rec.NodeH)
}

func readSplitRecord(r *wire.Reader) splitRecord {
	var rec splitRecord
	rec.Split = readSplit(r)
	rec.HasTotals = r.Bool()
	rec.NodeG = r.Float64()
	rec.NodeH = r.Float64()
	return rec
}
