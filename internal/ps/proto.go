package ps

import (
	"fmt"
	"math"

	"dimboost/internal/compress"
	"dimboost/internal/core"
	"dimboost/internal/wire"
)

// Operation codes of the parameter-server protocol. Workers are the
// clients; servers answer. The master's barrier op lives in
// internal/cluster.
const (
	// OpPushSketch merges worker-local quantile sketches into the server's
	// shard (CREATE_SKETCH).
	OpPushSketch uint8 = iota + 1
	// OpPullCandidates returns the split candidates of the server's
	// features (PULL_SKETCH).
	OpPullCandidates
	// OpPushSampled stores the leader's sampled feature list for the
	// current tree (NEW_TREE).
	OpPushSampled
	// OpPullSampled returns the sampled feature list.
	OpPullSampled
	// OpNewTree resets per-tree state (histograms, splits) and builds the
	// server's shard layout for the sampled features.
	OpNewTree
	// OpPushHist accumulates a worker's local histogram shard for one tree
	// node (FIND_SPLIT, push half).
	OpPushHist
	// OpPullSplit runs Algorithm 1 on the server's shard and returns the
	// local best split — the server-side phase of two-phase split finding.
	OpPullSplit
	// OpPullHistShard returns the server's merged raw shard; used when
	// two-phase split finding is disabled (ablation).
	OpPullHistShard
	// OpPushSplitResult stores the global best split of a node.
	OpPushSplitResult
	// OpPullSplitResults returns the stored splits of a node set
	// (SPLIT_TREE).
	OpPullSplitResults
)

// Request envelope. Every client→server request body starts with
// (worker int32, seq uint64): the sending worker's id and a per-worker
// strictly increasing sequence number. The transport retries transient
// failures by resending the identical message — same seq — and a server
// deduplicates mutating ops by remembering the highest seq it has applied
// per worker. A retried PUSH whose first attempt did reach the server (the
// response was lost) is therefore acknowledged without re-applying, so it
// can never double-accumulate into a histogram or re-reset per-tree state.
//
// The client issues requests to any single server sequentially (fan-outs
// send one message per server), so per (worker, server) the seq stream is
// strictly increasing and "seq already seen" exactly identifies duplicates.

// OpName returns the human-readable op label used by the ps metrics.
func OpName(op uint8) string {
	switch op {
	case OpPushSketch:
		return "push_sketch"
	case OpPullCandidates:
		return "pull_candidates"
	case OpPushSampled:
		return "push_sampled"
	case OpPullSampled:
		return "pull_sampled"
	case OpNewTree:
		return "new_tree"
	case OpPushHist:
		return "push_hist"
	case OpPullSplit:
		return "pull_split"
	case OpPullHistShard:
		return "pull_hist_shard"
	case OpPushSplitResult:
		return "push_split_result"
	case OpPullSplitResults:
		return "pull_split_results"
	}
	return "unknown"
}

// mutatingOp reports whether an op changes server state and therefore needs
// duplicate suppression. Pull ops are naturally idempotent (their caches
// are memoized) and skip the check.
func mutatingOp(op uint8) bool {
	switch op {
	case OpPushSketch, OpPushSampled, OpNewTree, OpPushHist, OpPushSplitResult:
		return true
	}
	return false
}

// writeEnvelope prepends the idempotency header to a request body.
func writeEnvelope(worker int32, seq uint64, body []byte) []byte {
	w := wire.NewWriter(12 + len(body))
	w.Int32(worker)
	w.Uint64(seq)
	w.Raw(body)
	return w.Bytes()
}

// Per-vector histogram wire tags. Every gradient/hessian vector on the wire
// leads with one of these, so push and pull payloads are self-describing and
// each vector independently picks the cheapest encoding (a sparse shard next
// to a dense one in the same message is legal).
const (
	// VecFloat32 is the paper's "full precision" format: raw float32
	// buckets, 4 bytes per statistic.
	VecFloat32 uint8 = 0
	// VecFixed is dense low-precision fixed point (§6.1).
	VecFixed uint8 = 1
	// VecFloat64 is raw float64 buckets — twice the paper's bytes, used by
	// the ExactWire modes that need bit-level reproducibility.
	VecFloat64 uint8 = 2
	// VecSparse is a compress.Sparse payload: zero runs elided, span values
	// at any of the above widths.
	VecSparse uint8 = 3
)

// vecName labels a vector tag for the per-encoding byte metrics.
func vecName(tag uint8) string {
	switch tag {
	case VecFloat32:
		return "float32"
	case VecFixed:
		return "fixed"
	case VecFloat64:
		return "float64"
	case VecSparse:
		return "sparse"
	}
	return "unknown"
}

// ShapeError reports a payload whose declared geometry disagrees with the
// receiver's expectation — typically a stale-partition client pushing or
// pulling against a layout from an earlier NEW_TREE. It is a rejection of
// the request, not of the connection; the client should refresh its layout.
type ShapeError struct {
	What string // which vector or record was mis-shaped
	Got  int    // declared element count
	Want int    // expected element count
}

func (e *ShapeError) Error() string {
	return fmt.Sprintf("ps: %s has %d values, expected %d", e.What, e.Got, e.Want)
}

// vecEncoding is a negotiated histogram-vector encoding: the client states
// it in pull requests (and applies it itself on pushes), the server honors
// it when writing responses. The zero value means raw float32 — the wire
// default matching the paper.
type vecEncoding struct {
	bits   uint // fixed-point width; 0 = raw floats
	exact  bool // float64 instead of float32 wherever raw floats appear
	sparse bool // allow run-length sparse payloads when they are smaller
}

// spanBits maps the encoding onto the width used inside a sparse payload.
func (ev vecEncoding) spanBits() uint {
	switch {
	case ev.bits != 0:
		return ev.bits
	case ev.exact:
		return compress.RawFloat64
	default:
		return compress.RawFloat32
	}
}

// compactSplits reports whether split records may narrow their statistics
// to float32. Split values always stay float64 — bin recovery inside
// SplitPredicate depends on exact cut values.
func (ev vecEncoding) compactSplits() bool { return ev.bits != 0 && !ev.exact }

// writeEncoding appends the negotiation triple to a pull request.
func writeEncoding(w *wire.Writer, ev vecEncoding) {
	w.Uint8(uint8(ev.bits))
	w.Bool(ev.exact)
	w.Bool(ev.sparse)
}

// readEncoding consumes and validates a negotiation triple.
func readEncoding(r *wire.Reader) (vecEncoding, error) {
	ev := vecEncoding{bits: uint(r.Uint8())}
	ev.exact = r.Bool()
	ev.sparse = r.Bool()
	if err := r.Err(); err != nil {
		return ev, err
	}
	if ev.bits != 0 && !compress.ValidWidth(ev.bits) {
		return ev, fmt.Errorf("%w: %d", compress.ErrBadWidth, ev.bits)
	}
	if ev.bits != 0 && ev.exact {
		return ev, fmt.Errorf("ps: exact and %d-bit response encoding are mutually exclusive", ev.bits)
	}
	return ev, nil
}

// denseVecSize predicts the on-wire size of a dense vector of n buckets
// under the encoding (tag byte included).
func denseVecSize(n int, ev vecEncoding) int {
	switch {
	case ev.bits != 0:
		return 1 + 1 + 4 + 8 + 4 + (n*int(ev.bits)+7)/8
	case ev.exact:
		return 1 + 4 + 8*n
	default:
		return 1 + 4 + 4*n
	}
}

// writeHistVector appends one gradient/hessian vector under the encoding,
// automatically switching to the sparse form when its exact predicted size
// is smaller. Fixed-point widths draw rounding from enc; raw widths never
// touch it, so a nil enc is legal for exact/float32 encodings.
func writeHistVector(w *wire.Writer, enc *compress.Encoder, vs []float64, ev vecEncoding) error {
	start := w.Len()
	tag, err := writeHistVectorBody(w, enc, vs, ev)
	if err != nil {
		return err
	}
	vectorBytes(tag, dirEncode, int64(w.Len()-start))
	return nil
}

func writeHistVectorBody(w *wire.Writer, enc *compress.Encoder, vs []float64, ev vecEncoding) (uint8, error) {
	if ev.sparse {
		nnz, spans := compress.SpanStats(vs)
		if 1+compress.SparseWireSize(nnz, spans, ev.spanBits()) < denseVecSize(len(vs), ev) {
			s, err := compress.EncodeSparse(enc, vs, ev.spanBits())
			if err != nil {
				return VecSparse, err
			}
			w.Uint8(VecSparse)
			s.WriteTo(w)
			return VecSparse, nil
		}
	}
	switch {
	case ev.bits != 0:
		c, err := enc.Encode(vs, ev.bits)
		if err != nil {
			return VecFixed, err
		}
		w.Uint8(VecFixed)
		w.Uint8(uint8(c.Bits))
		w.Uint32(uint32(c.N))
		w.Float64(c.MaxAbs)
		w.Bytes32(c.Data)
		return VecFixed, nil
	case ev.exact:
		w.Uint8(VecFloat64)
		w.Float64s(vs)
		return VecFloat64, nil
	default:
		w.Uint8(VecFloat32)
		w.Float64sAs32(vs)
		return VecFloat32, nil
	}
}

// readFixedVector consumes a dense fixed-point payload into a validated
// compress.Compressed. what names the vector for error messages.
func readFixedVector(r *wire.Reader, what string, wantN int) (*compress.Compressed, error) {
	c := &compress.Compressed{Bits: uint(r.Uint8())}
	c.N = int(r.Uint32())
	c.MaxAbs = r.Float64()
	c.Data = r.Bytes32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if c.N != wantN {
		return nil, &ShapeError{What: what, Got: c.N, Want: wantN}
	}
	return c, nil
}

// readHistVectorInto consumes one tagged vector and merges (adds) it into
// dst, which must already have the expected bucket count. Every payload is
// validated — width, header geometry, span structure — before any decode
// touches dst, so hostile or stale-layout messages yield typed errors, never
// panics or partial merges.
func readHistVectorInto(r *wire.Reader, what string, dst []float64) error {
	start := r.Remaining()
	tag := r.Uint8()
	if err := r.Err(); err != nil {
		return err
	}
	var err error
	switch tag {
	case VecFloat32:
		vs := r.Float64sFrom32()
		if err = r.Err(); err != nil {
			return err
		}
		if len(vs) != len(dst) {
			return &ShapeError{What: what, Got: len(vs), Want: len(dst)}
		}
		for i, v := range vs {
			dst[i] += v
		}
	case VecFloat64:
		vs := r.Float64s()
		if err = r.Err(); err != nil {
			return err
		}
		if len(vs) != len(dst) {
			return &ShapeError{What: what, Got: len(vs), Want: len(dst)}
		}
		for i, v := range vs {
			dst[i] += v
		}
	case VecFixed:
		c, cerr := readFixedVector(r, what, len(dst))
		if cerr != nil {
			return cerr
		}
		if err = compress.DecodeInto(dst, c); err != nil {
			return err
		}
	case VecSparse:
		s, serr := compress.ReadSparse(r)
		if serr != nil {
			return serr
		}
		if s.N != len(dst) {
			return &ShapeError{What: what, Got: s.N, Want: len(dst)}
		}
		if err = s.DecodeInto(dst); err != nil {
			return err
		}
	default:
		return fmt.Errorf("ps: unknown histogram vector tag %d", tag)
	}
	vectorBytes(tag, dirDecode, int64(start-r.Remaining()))
	return nil
}

// readHistVector consumes one tagged vector into a fresh slice of wantN
// values.
func readHistVector(r *wire.Reader, what string, wantN int) ([]float64, error) {
	dst := make([]float64, wantN)
	if err := readHistVectorInto(r, what, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// checkHistVector validates one tagged vector from its headers and advances
// past it without decoding values — the push path's admission check. The
// cost is O(1) for dense payloads and O(spans) for sparse ones; bucket data
// is never materialized.
func checkHistVector(r *wire.Reader, what string, wantN int) error {
	tag := r.Uint8()
	if err := r.Err(); err != nil {
		return err
	}
	switch tag {
	case VecFloat32, VecFloat64:
		n := int(r.Uint32())
		if err := r.Err(); err != nil {
			return err
		}
		if n != wantN {
			return &ShapeError{What: what, Got: n, Want: wantN}
		}
		elem := 4
		if tag == VecFloat64 {
			elem = 8
		}
		r.Skip(n * elem)
		return r.Err()
	case VecFixed:
		bits := uint(r.Uint8())
		n := int(r.Uint32())
		maxAbs := r.Float64()
		ln := int(r.Uint32())
		if err := r.Err(); err != nil {
			return err
		}
		if !compress.ValidWidth(bits) {
			return fmt.Errorf("%w: %d", compress.ErrBadWidth, bits)
		}
		if math.IsNaN(maxAbs) || math.IsInf(maxAbs, 0) || maxAbs < 0 {
			return fmt.Errorf("%w: MaxAbs %v", compress.ErrBadHeader, maxAbs)
		}
		if n != wantN {
			return &ShapeError{What: what, Got: n, Want: wantN}
		}
		if want := (n*int(bits) + 7) / 8; ln != want {
			return fmt.Errorf("%w: %d data bytes for %d %d-bit values (want %d)",
				compress.ErrSizeMismatch, ln, n, bits, want)
		}
		r.Skip(ln)
		return r.Err()
	case VecSparse:
		s, err := compress.ReadSparse(r)
		if err != nil {
			return err
		}
		if s.N != wantN {
			return &ShapeError{What: what, Got: s.N, Want: wantN}
		}
		return nil
	default:
		return fmt.Errorf("ps: unknown histogram vector tag %d", tag)
	}
}

// Split-record layouts. Full records carry every statistic as float64;
// compact ones (negotiated via a nonzero pull width) narrow the gain and
// child aggregates to float32 while keeping Found/Feature/Value exact —
// the split value must survive the wire bit-exactly because SplitPredicate
// recovers the bin from it.
const (
	splitFull    uint8 = 0
	splitCompact uint8 = 1
)

// splitRecord is the two-phase split response: a candidate split plus the
// node totals the server derived from its own shard.
type splitRecord struct {
	Split     core.Split
	HasTotals bool
	NodeG     float64
	NodeH     float64
}

func writeSplitRecord(w *wire.Writer, rec splitRecord, compact bool) {
	if compact {
		w.Uint8(splitCompact)
		w.Bool(rec.Split.Found)
		w.Int32(rec.Split.Feature)
		w.Float64(rec.Split.Value)
		w.Float32(float32(rec.Split.Gain))
		w.Float32(float32(rec.Split.LeftG))
		w.Float32(float32(rec.Split.LeftH))
		w.Float32(float32(rec.Split.RightG))
		w.Float32(float32(rec.Split.RightH))
		w.Bool(rec.HasTotals)
		w.Float32(float32(rec.NodeG))
		w.Float32(float32(rec.NodeH))
		return
	}
	w.Uint8(splitFull)
	w.Bool(rec.Split.Found)
	w.Int32(rec.Split.Feature)
	w.Float64(rec.Split.Value)
	w.Float64(rec.Split.Gain)
	w.Float64(rec.Split.LeftG)
	w.Float64(rec.Split.LeftH)
	w.Float64(rec.Split.RightG)
	w.Float64(rec.Split.RightH)
	w.Bool(rec.HasTotals)
	w.Float64(rec.NodeG)
	w.Float64(rec.NodeH)
}

func readSplitRecord(r *wire.Reader) (splitRecord, error) {
	var rec splitRecord
	layout := r.Uint8()
	switch layout {
	case splitFull:
		rec.Split.Found = r.Bool()
		rec.Split.Feature = r.Int32()
		rec.Split.Value = r.Float64()
		rec.Split.Gain = r.Float64()
		rec.Split.LeftG = r.Float64()
		rec.Split.LeftH = r.Float64()
		rec.Split.RightG = r.Float64()
		rec.Split.RightH = r.Float64()
		rec.HasTotals = r.Bool()
		rec.NodeG = r.Float64()
		rec.NodeH = r.Float64()
	case splitCompact:
		rec.Split.Found = r.Bool()
		rec.Split.Feature = r.Int32()
		rec.Split.Value = r.Float64()
		rec.Split.Gain = float64(r.Float32())
		rec.Split.LeftG = float64(r.Float32())
		rec.Split.LeftH = float64(r.Float32())
		rec.Split.RightG = float64(r.Float32())
		rec.Split.RightH = float64(r.Float32())
		rec.HasTotals = r.Bool()
		rec.NodeG = float64(r.Float32())
		rec.NodeH = float64(r.Float32())
	default:
		if err := r.Err(); err != nil {
			return rec, err
		}
		return rec, fmt.Errorf("ps: unknown split record layout %d", layout)
	}
	return rec, r.Err()
}
