package ps

import (
	"sync"

	"dimboost/internal/obs"
)

// serverMetrics instrument the parameter-server handler: per-op request
// counts and latency, byte totals both directions, and idempotency dedup
// hits. Per-op instruments are materialized once for the whole protocol so
// the handler path never takes the registry lock.
type serverMetrics struct {
	requests  map[uint8]*obs.Counter
	errors    map[uint8]*obs.Counter
	latency   map[uint8]*obs.Histogram
	dedupHits *obs.Counter
	bytesIn   *obs.Counter
	bytesOut  *obs.Counter
}

// clientMetrics instrument the worker-side client.
type clientMetrics struct {
	requests *obs.Counter
	bytesOut *obs.Counter
	bytesIn  *obs.Counter
}

var (
	pmOnce sync.Once
	srvM   *serverMetrics
	cliM   *clientMetrics
)

func psMetrics() (*serverMetrics, *clientMetrics) {
	pmOnce.Do(func() {
		r := obs.Default()
		srvM = &serverMetrics{
			requests:  make(map[uint8]*obs.Counter),
			errors:    make(map[uint8]*obs.Counter),
			latency:   make(map[uint8]*obs.Histogram),
			dedupHits: r.Counter("dimboost_ps_dedup_hits_total", "Duplicate mutating requests acknowledged without re-applying (idempotency envelope)."),
			bytesIn:   r.Counter("dimboost_ps_bytes_total", "Request/response payload bytes through the PS handler.", obs.L("direction", "in")),
			bytesOut:  r.Counter("dimboost_ps_bytes_total", "", obs.L("direction", "out")),
		}
		for op := OpPushSketch; op <= OpPullSplitResults; op++ {
			l := obs.L("op", OpName(op))
			srvM.requests[op] = r.Counter("dimboost_ps_requests_total", "Requests served by the parameter server, by op.", l)
			srvM.errors[op] = r.Counter("dimboost_ps_request_errors_total", "Requests the parameter server failed, by op.", l)
			srvM.latency[op] = r.Histogram("dimboost_ps_request_seconds", "Server-side handler latency, by op.", nil, l)
		}
		cliM = &clientMetrics{
			requests: r.Counter("dimboost_ps_client_requests_total", "Requests issued by worker clients."),
			bytesOut: r.Counter("dimboost_ps_client_bytes_total", "Payload bytes through worker clients.", obs.L("direction", "out")),
			bytesIn:  r.Counter("dimboost_ps_client_bytes_total", "", obs.L("direction", "in")),
		}
	})
	return srvM, cliM
}

// observe records one handled request. Unknown ops have no per-op
// instruments (the handler rejects them) and only count bytes in.
func (m *serverMetrics) observe(op uint8, reqBytes, respBytes int64, secs float64, err error) {
	m.bytesIn.Add(reqBytes)
	if err != nil {
		if c := m.errors[op]; c != nil {
			c.Inc()
		}
		return
	}
	m.bytesOut.Add(respBytes)
	if c := m.requests[op]; c != nil {
		c.Inc()
	}
	if h := m.latency[op]; h != nil {
		h.Observe(secs)
	}
}
