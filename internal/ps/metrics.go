package ps

import (
	"sync"

	"dimboost/internal/obs"
)

// serverMetrics instrument the parameter-server handler: per-op request
// counts, latency and byte totals, overall byte totals both directions, and
// idempotency dedup hits. Per-op instruments are materialized once for the
// whole protocol so the handler path never takes the registry lock.
type serverMetrics struct {
	requests   map[uint8]*obs.Counter
	errors     map[uint8]*obs.Counter
	latency    map[uint8]*obs.Histogram
	opBytesIn  map[uint8]*obs.Counter
	opBytesOut map[uint8]*obs.Counter
	dedupHits  *obs.Counter
	bytesIn    *obs.Counter
	bytesOut   *obs.Counter
}

// clientMetrics instrument the worker-side client.
type clientMetrics struct {
	requests *obs.Counter
	bytesOut *obs.Counter
	bytesIn  *obs.Counter
}

// Directions of a histogram-vector codec operation, as seen by whichever
// side performs it (clients encode pushes and decode pulls; servers do the
// reverse). Encoded and decoded logical bytes match because the wire is
// lossless in transit.
const (
	dirEncode = 0
	dirDecode = 1
)

// vecBytes[dir][tag] counts logical bytes-on-wire of histogram vectors by
// encoding — the payload accounting behind `dimboost-bench comm`.
var vecBytes [2][4]*obs.Counter

var (
	pmOnce sync.Once
	srvM   *serverMetrics
	cliM   *clientMetrics
)

func psMetrics() (*serverMetrics, *clientMetrics) {
	pmOnce.Do(func() {
		r := obs.Default()
		srvM = &serverMetrics{
			requests:   make(map[uint8]*obs.Counter),
			errors:     make(map[uint8]*obs.Counter),
			latency:    make(map[uint8]*obs.Histogram),
			opBytesIn:  make(map[uint8]*obs.Counter),
			opBytesOut: make(map[uint8]*obs.Counter),
			dedupHits:  r.Counter("dimboost_ps_dedup_hits_total", "Duplicate mutating requests acknowledged without re-applying (idempotency envelope)."),
			bytesIn:    r.Counter("dimboost_ps_bytes_total", "Request/response payload bytes through the PS handler.", obs.L("direction", "in")),
			bytesOut:   r.Counter("dimboost_ps_bytes_total", "", obs.L("direction", "out")),
		}
		for op := OpPushSketch; op <= OpPullSplitResults; op++ {
			l := obs.L("op", OpName(op))
			srvM.requests[op] = r.Counter("dimboost_ps_requests_total", "Requests served by the parameter server, by op.", l)
			srvM.errors[op] = r.Counter("dimboost_ps_request_errors_total", "Requests the parameter server failed, by op.", l)
			srvM.latency[op] = r.Histogram("dimboost_ps_request_seconds", "Server-side handler latency, by op.", nil, l)
			srvM.opBytesIn[op] = r.Counter("dimboost_ps_op_bytes_total", "Request/response payload bytes through the PS handler, by op and direction.", l, obs.L("direction", "in"))
			srvM.opBytesOut[op] = r.Counter("dimboost_ps_op_bytes_total", "", l, obs.L("direction", "out"))
		}
		for tag := uint8(0); tag < 4; tag++ {
			l := obs.L("encoding", vecName(tag))
			vecBytes[dirEncode][tag] = r.Counter("dimboost_ps_vector_bytes_total", "Logical bytes-on-wire of histogram vectors, by encoding and codec direction.", l, obs.L("direction", "encode"))
			vecBytes[dirDecode][tag] = r.Counter("dimboost_ps_vector_bytes_total", "", l, obs.L("direction", "decode"))
		}
		cliM = &clientMetrics{
			requests: r.Counter("dimboost_ps_client_requests_total", "Requests issued by worker clients."),
			bytesOut: r.Counter("dimboost_ps_client_bytes_total", "Payload bytes through worker clients.", obs.L("direction", "out")),
			bytesIn:  r.Counter("dimboost_ps_client_bytes_total", "", obs.L("direction", "in")),
		}
	})
	return srvM, cliM
}

// vectorBytes records one encoded or decoded histogram vector's wire bytes.
func vectorBytes(tag uint8, dir int, n int64) {
	psMetrics()
	if tag < 4 {
		vecBytes[dir][tag].Add(n)
	}
}

// observe records one handled request. Unknown ops have no per-op
// instruments (the handler rejects them) and only count bytes in.
func (m *serverMetrics) observe(op uint8, reqBytes, respBytes int64, secs float64, err error) {
	m.bytesIn.Add(reqBytes)
	if c := m.opBytesIn[op]; c != nil {
		c.Add(reqBytes)
	}
	if err != nil {
		if c := m.errors[op]; c != nil {
			c.Inc()
		}
		return
	}
	m.bytesOut.Add(respBytes)
	if c := m.opBytesOut[op]; c != nil {
		c.Add(respBytes)
	}
	if c := m.requests[op]; c != nil {
		c.Inc()
	}
	if h := m.latency[op]; h != nil {
		h.Observe(secs)
	}
}

// WireBytes snapshots the parameter server's logical bytes-on-wire: perOp
// maps "op/direction" (e.g. "push_hist/in") to handler payload bytes,
// perEncoding maps "encoding/direction" (e.g. "sparse/encode") to histogram
// vector bytes. Benches difference two snapshots around a run to attribute
// traffic to an encoding choice.
func WireBytes() (perOp, perEncoding map[string]int64) {
	m, _ := psMetrics()
	perOp = make(map[string]int64)
	for op := OpPushSketch; op <= OpPullSplitResults; op++ {
		perOp[OpName(op)+"/in"] = m.opBytesIn[op].Value()
		perOp[OpName(op)+"/out"] = m.opBytesOut[op].Value()
	}
	perEncoding = make(map[string]int64)
	for tag := uint8(0); tag < 4; tag++ {
		perEncoding[vecName(tag)+"/encode"] = vecBytes[dirEncode][tag].Value()
		perEncoding[vecName(tag)+"/decode"] = vecBytes[dirDecode][tag].Value()
	}
	return perOp, perEncoding
}
