// Package ps implements DimBoost's parameter server (§4): servers store
// model shards — quantile sketches, split candidates, sampled features,
// gradient histograms, and split results — partitioned over the feature
// space with the paper's hybrid range-hash strategy (§4.3). Servers expose
// push and pull with user-defined semantics; in particular the histogram
// pull runs Algorithm 1 on the server's own shard and returns only a split
// record, which is the server-side half of two-phase split finding (§6.3).
package ps

import (
	"fmt"
	"hash/fnv"
)

// Partition maps features to parameter servers using range-hash
// partitioning: the feature space [0, M) is cut into NumRanges contiguous
// ranges and each range is hashed onto a server. Contiguous ranges keep
// range queries (histogram shards) compact while hashing balances load.
type Partition struct {
	NumFeatures int
	NumServers  int
	NumRanges   int
}

// NewPartition builds a partition. numRanges < 1 defaults to 8 ranges per
// server — more ranges than the paper's default of one per server, which
// smooths the hash-assignment imbalance at the small server counts used on
// a single machine.
func NewPartition(numFeatures, numServers, numRanges int) (*Partition, error) {
	if numFeatures < 1 || numServers < 1 {
		return nil, fmt.Errorf("ps: bad partition %d features over %d servers", numFeatures, numServers)
	}
	if numRanges < 1 {
		numRanges = 8 * numServers
	}
	if numRanges > numFeatures {
		numRanges = numFeatures
	}
	return &Partition{NumFeatures: numFeatures, NumServers: numServers, NumRanges: numRanges}, nil
}

// rangeOf returns the range index of a feature. Ranges are the near-equal
// contiguous blocks of the feature space.
func (p *Partition) rangeOf(f int32) int {
	base, rem := p.NumFeatures/p.NumRanges, p.NumFeatures%p.NumRanges
	cut := rem * (base + 1)
	if int(f) < cut {
		return int(f) / (base + 1)
	}
	if base == 0 {
		return p.NumRanges - 1
	}
	return rem + (int(f)-cut)/base
}

// RangeBounds returns the [lo, hi) feature bounds of range r.
func (p *Partition) RangeBounds(r int) (lo, hi int32) {
	base, rem := p.NumFeatures/p.NumRanges, p.NumFeatures%p.NumRanges
	l := base*r + min(r, rem)
	sz := base
	if r < rem {
		sz++
	}
	return int32(l), int32(l + sz)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// serverOfRange hashes a range index onto a server.
func (p *Partition) serverOfRange(r int) int {
	h := fnv.New32a()
	var buf [4]byte
	buf[0] = byte(r)
	buf[1] = byte(r >> 8)
	buf[2] = byte(r >> 16)
	buf[3] = byte(r >> 24)
	h.Write(buf[:])
	return int(h.Sum32() % uint32(p.NumServers))
}

// ServerOf returns the server owning a feature.
func (p *Partition) ServerOf(f int32) int {
	if f < 0 || int(f) >= p.NumFeatures {
		panic(fmt.Sprintf("ps: feature %d outside [0,%d)", f, p.NumFeatures))
	}
	return p.serverOfRange(p.rangeOf(f))
}

// FeaturesOf filters the sorted feature list down to those owned by the
// given server, preserving order.
func (p *Partition) FeaturesOf(server int, features []int32) []int32 {
	var out []int32
	for _, f := range features {
		if p.ServerOf(f) == server {
			out = append(out, f)
		}
	}
	return out
}

// NodeOwner returns the server that stores the split result of a tree node.
func (p *Partition) NodeOwner(node int) int { return node % p.NumServers }
