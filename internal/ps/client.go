package ps

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dimboost/internal/compress"
	"dimboost/internal/core"
	"dimboost/internal/histogram"
	"dimboost/internal/sketch"
	"dimboost/internal/transport"
	"dimboost/internal/wire"
)

// Client is a worker's view of the parameter-server fleet. It shards pushes
// by the partition, fans pulls out to every server in parallel, and folds
// two-phase split responses with core.BestOf. A Client is used by a single
// worker goroutine; the compressor it owns is seeded per worker so
// stochastic rounding is reproducible.
type Client struct {
	ep      transport.Endpoint
	part    *Partition
	servers []string
	worker  int32

	// Bits selects the compressed histogram width for pushes; 0 sends
	// float32.
	Bits uint
	// PullBits asks servers to fixed-point compress pull responses (merged
	// histograms, split results) at this width; 0 pulls raw floats.
	PullBits uint
	// Exact sends and pulls float64 buckets (twice the paper's wire size);
	// used by tests needing bit-level agreement with single-process
	// training. Mutually exclusive with Bits and PullBits.
	Exact bool
	// Sparse lets both directions elide zero buckets with the run-length
	// sparse encoding whenever it is smaller than the dense form. Lossless
	// under Exact (span values stay float64), so it composes with the
	// determinism modes.
	Sparse bool

	enc *compress.Encoder
	// seq numbers every outgoing request (see the envelope notes in
	// proto.go); a transport-level retry resends the same seq, which is
	// what lets servers drop duplicates of mutating ops.
	seq atomic.Uint64
}

// NewClient binds a worker endpoint to the server fleet. serverNames is
// indexed by server id.
func NewClient(ep transport.Endpoint, part *Partition, serverNames []string, workerID int) *Client {
	return &Client{
		ep:      ep,
		part:    part,
		servers: serverNames,
		worker:  int32(workerID),
		enc:     compress.NewEncoder(int64(workerID) + 1),
	}
}

// call sends one enveloped request to server sv. The envelope (and its seq)
// is built once per logical request; retries inside the endpoint resend the
// identical bytes.
func (c *Client) call(sv int, op uint8, body []byte) (transport.Message, error) {
	_, m := psMetrics()
	seq := c.seq.Add(1)
	req := transport.Message{Op: op, Body: writeEnvelope(c.worker, seq, body)}
	m.requests.Inc()
	m.bytesOut.Add(req.Size())
	resp, err := c.ep.Call(c.servers[sv], req)
	if err == nil {
		m.bytesIn.Add(resp.Size())
	}
	return resp, err
}

// fanOut calls every server concurrently and collects responses in server
// order.
func (c *Client) fanOut(op uint8, body func(server int) []byte) ([]transport.Message, error) {
	resps := make([]transport.Message, len(c.servers))
	errs := make([]error, len(c.servers))
	var wg sync.WaitGroup
	for sv := range c.servers {
		wg.Add(1)
		go func(sv int) {
			defer wg.Done()
			b := body(sv)
			if b == nil {
				return
			}
			resps[sv], errs[sv] = c.call(sv, op, b)
		}(sv)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return resps, nil
}

// PushSketches sends each server the sketch summaries of the features it
// owns (CREATE_SKETCH).
func (c *Client) PushSketches(set *sketch.Set) error {
	_, err := c.fanOut(OpPushSketch, func(sv int) []byte {
		w := wire.NewWriter(1024)
		count := 0
		lenPos := w.Len()
		w.Uint32(0) // patched below
		for f := 0; f < set.NumFeatures(); f++ {
			gk := set.Feature(f)
			if gk == nil || c.part.ServerOf(int32(f)) != sv {
				continue
			}
			values, gs, deltas := gk.Summary()
			w.Int32(int32(f))
			w.Float64s(values)
			w.Uint64s(gs)
			w.Uint64s(deltas)
			count++
		}
		patchUint32(w.Bytes(), lenPos, uint32(count))
		return w.Bytes()
	})
	return err
}

// patchUint32 overwrites a previously reserved length slot.
func patchUint32(buf []byte, pos int, v uint32) {
	buf[pos] = byte(v)
	buf[pos+1] = byte(v >> 8)
	buf[pos+2] = byte(v >> 16)
	buf[pos+3] = byte(v >> 24)
}

// PullCandidates fetches every server's candidates and assembles the full
// per-feature table (PULL_SKETCH). Features without data get the trivial
// zero-cut candidate set.
func (c *Client) PullCandidates(k int) ([]sketch.Candidates, error) {
	req := func(int) []byte {
		w := wire.NewWriter(4)
		w.Uint32(uint32(k))
		return w.Bytes()
	}
	resps, err := c.fanOut(OpPullCandidates, req)
	if err != nil {
		return nil, err
	}
	out := make([]sketch.Candidates, c.part.NumFeatures)
	for f := range out {
		out[f] = sketch.FromCuts([]float64{0})
	}
	for _, resp := range resps {
		r := wire.NewReader(resp.Body)
		n := int(r.Uint32())
		for i := 0; i < n; i++ {
			f := r.Int32()
			cuts := r.Float64s()
			if r.Err() != nil {
				return nil, r.Err()
			}
			out[f] = sketch.FromCuts(cuts)
		}
	}
	return out, nil
}

// PushSampled stores the sampled feature list on every server; the leader
// worker calls this once per tree.
func (c *Client) PushSampled(features []int32) error {
	_, err := c.fanOut(OpPushSampled, func(int) []byte {
		w := wire.NewWriter(4 + 4*len(features))
		w.Int32s(features)
		return w.Bytes()
	})
	return err
}

// PullSampled fetches the sampled feature list from server 0.
func (c *Client) PullSampled() ([]int32, error) {
	resp, err := c.call(0, OpPullSampled, nil)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(resp.Body)
	feats := r.Int32s()
	return feats, r.Err()
}

// NewTree resets per-tree server state and installs the shard layouts.
func (c *Client) NewTree(sampled []int32) error {
	_, err := c.fanOut(OpNewTree, func(int) []byte {
		w := wire.NewWriter(4 + 4*len(sampled))
		w.Int32s(sampled)
		return w.Bytes()
	})
	return err
}

// shardArrays extracts this server's bucket ranges from the worker's full
// histogram, in the server's shard order (ascending feature id).
func (c *Client) shardArrays(sv int, hist *histogram.Histogram) (g, h []float64) {
	l := hist.Layout
	mine := c.part.FeaturesOf(sv, l.Features)
	for _, f := range mine {
		p := l.Pos(f)
		lo, hi := l.BucketRange(int(p))
		g = append(g, hist.G[lo:hi]...)
		h = append(h, hist.H[lo:hi]...)
	}
	return
}

// pushEncoding is the vector encoding applied to outgoing histograms.
func (c *Client) pushEncoding() vecEncoding {
	return vecEncoding{bits: c.Bits, exact: c.Exact, sparse: c.Sparse}
}

// pullEncoding is the vector encoding requested for server responses.
func (c *Client) pullEncoding() vecEncoding {
	return vecEncoding{bits: c.PullBits, exact: c.Exact, sparse: c.Sparse}
}

// PushHistogram shards a node's local histogram across the fleet, applying
// the configured low-precision compression (FIND_SPLIT, push half). Each
// G/H vector is tagged per-vector, so a sparse shard rides next to a dense
// one when only part of the feature space is populated.
func (c *Client) PushHistogram(node int, hist *histogram.Histogram) error {
	// Encoding happens inside fanOut bodies, but the stochastic compressor
	// is not concurrency-safe; precompute bodies serially.
	ev := c.pushEncoding()
	bodies := make([][]byte, len(c.servers))
	for sv := range c.servers {
		g, h := c.shardArrays(sv, hist)
		w := wire.NewWriter(16 + 8*len(g))
		w.Int32(int32(node))
		if err := writeHistVector(w, c.enc, g, ev); err != nil {
			return err
		}
		if err := writeHistVector(w, c.enc, h, ev); err != nil {
			return err
		}
		bodies[sv] = w.Bytes()
	}
	_, err := c.fanOut(OpPushHist, func(sv int) []byte { return bodies[sv] })
	return err
}

// SplitResult is a two-phase pull outcome: the global best split and the
// node's gradient totals.
type SplitResult struct {
	Split     core.Split
	NodeG     float64
	NodeH     float64
	HasTotals bool
}

// PullSplit asks every server for its shard-local best split and folds them
// into the global best (two-phase split finding, §6.3).
func (c *Client) PullSplit(node int, lambda, gamma, minChild float64) (SplitResult, error) {
	req := func(int) []byte {
		w := wire.NewWriter(36)
		w.Int32(int32(node))
		w.Float64(lambda)
		w.Float64(gamma)
		w.Float64(minChild)
		writeEncoding(w, c.pullEncoding())
		return w.Bytes()
	}
	resps, err := c.fanOut(OpPullSplit, req)
	if err != nil {
		return SplitResult{}, err
	}
	var out SplitResult
	for _, resp := range resps {
		r := wire.NewReader(resp.Body)
		rec, err := readSplitRecord(r)
		if err != nil {
			return SplitResult{}, err
		}
		if rec.Split.Better(out.Split) {
			out.Split = rec.Split
		}
		if rec.HasTotals && !out.HasTotals {
			out.NodeG, out.NodeH, out.HasTotals = rec.NodeG, rec.NodeH, true
		}
	}
	return out, nil
}

// PullHistogram reassembles the full merged histogram from server shards
// (the two-phase-disabled path), under the negotiated response encoding.
// layout must be the worker's full layout.
func (c *Client) PullHistogram(node int, layout *histogram.Layout) (*histogram.Histogram, error) {
	req := func(int) []byte {
		w := wire.NewWriter(8)
		w.Int32(int32(node))
		writeEncoding(w, c.pullEncoding())
		return w.Bytes()
	}
	resps, err := c.fanOut(OpPullHistShard, req)
	if err != nil {
		return nil, err
	}
	hist := histogram.New(layout)
	for sv, resp := range resps {
		// The expected shard length is derived from the client's own
		// partition view, so a response shaped for a different layout is
		// rejected with a typed ShapeError inside the vector read.
		mine := c.part.FeaturesOf(sv, layout.Features)
		wantN := 0
		for _, f := range mine {
			lo, hi := layout.BucketRange(int(layout.Pos(f)))
			wantN += hi - lo
		}
		r := wire.NewReader(resp.Body)
		g, err := readHistVector(r, fmt.Sprintf("g shard from server %d", sv), wantN)
		if err != nil {
			return nil, err
		}
		h, err := readHistVector(r, fmt.Sprintf("h shard from server %d", sv), wantN)
		if err != nil {
			return nil, err
		}
		off := 0
		for _, f := range mine {
			p := layout.Pos(f)
			lo, hi := layout.BucketRange(int(p))
			n := hi - lo
			copy(hist.G[lo:hi], g[off:off+n])
			copy(hist.H[lo:hi], h[off:off+n])
			off += n
		}
	}
	return hist, nil
}

// PushSplitResult stores a node's global best split (plus its node totals,
// needed by peers to weight unsplit leaves) on its owner server.
func (c *Client) PushSplitResult(node int, res SplitResult) error {
	w := wire.NewWriter(96)
	w.Int32(int32(node))
	// Stored split results are authoritative for tree construction; they
	// always travel at full precision regardless of the pull encoding.
	writeSplitRecord(w, splitRecord{Split: res.Split, HasTotals: res.HasTotals, NodeG: res.NodeG, NodeH: res.NodeH}, false)
	owner := c.part.NodeOwner(node)
	_, err := c.call(owner, OpPushSplitResult, w.Bytes())
	return err
}

// PullSplitResults fetches the stored splits for a node set (SPLIT_TREE).
// Nodes without a stored split are absent from the result map.
func (c *Client) PullSplitResults(nodes []int) (map[int]SplitResult, error) {
	byServer := make(map[int][]int32)
	for _, n := range nodes {
		owner := c.part.NodeOwner(n)
		byServer[owner] = append(byServer[owner], int32(n))
	}
	out := make(map[int]SplitResult, len(nodes))
	resps, err := c.fanOut(OpPullSplitResults, func(sv int) []byte {
		ns := byServer[sv]
		if len(ns) == 0 {
			return nil // skip servers owning none of the nodes
		}
		w := wire.NewWriter(8 + 4*len(ns))
		w.Int32s(ns)
		writeEncoding(w, c.pullEncoding())
		return w.Bytes()
	})
	if err != nil {
		return nil, err
	}
	for sv, resp := range resps {
		if len(byServer[sv]) == 0 {
			continue
		}
		r := wire.NewReader(resp.Body)
		n := int(r.Uint32())
		for i := 0; i < n; i++ {
			node := r.Int32()
			ok := r.Bool()
			rec, err := readSplitRecord(r)
			if err != nil {
				return nil, err
			}
			if ok {
				out[int(node)] = SplitResult{Split: rec.Split, HasTotals: rec.HasTotals, NodeG: rec.NodeG, NodeH: rec.NodeH}
			}
		}
	}
	return out, nil
}
