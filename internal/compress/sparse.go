package compress

import (
	"fmt"
	"math"

	"dimboost/internal/wire"
)

// Sparse widths beyond the fixed-point set: raw spans carry IEEE floats
// verbatim, so a sparse payload can be lossless (RawFloat64 backs the
// ExactWire modes) or match the paper's float32 "full precision" format
// while still eliding the zero buckets that dominate high-dimensional
// histograms.
const (
	// RawFloat32 stores span values as float32 (lossy narrowing).
	RawFloat32 uint = 0
	// RawFloat64 stores span values as float64 (bit-exact).
	RawFloat64 uint = 64
)

// Typed sparse decode errors, additional to ErrBadWidth / ErrBadHeader /
// ErrSizeMismatch which sparse validation shares with the dense codec.
var (
	// ErrSpanOrder reports spans that are out of order or overlapping.
	ErrSpanOrder = fmt.Errorf("%w: spans out of order", ErrBadHeader)
	// ErrSpanRange reports a span extending past the declared vector length.
	ErrSpanRange = fmt.Errorf("%w: span out of range", ErrBadHeader)
)

// Span is one dense run of nonzero buckets: Count values starting at
// bucket index Start. Buckets outside every span are exactly zero.
type Span struct {
	Start, Count uint32
}

// Sparse is a run-length encoding of a mostly-zero histogram vector: the
// zero buckets are elided entirely and only the dense spans carry data,
// packed back to back in Data at the declared width. Bits 2–16 reuse the
// fixed-point quantizer (MaxAbs scaling); RawFloat32/RawFloat64 store the
// span values as IEEE floats and ignore MaxAbs for decoding.
type Sparse struct {
	Bits   uint
	N      int
	MaxAbs float64
	Spans  []Span
	Data   []byte
}

func validSparseBits(bits uint) bool {
	return bits == RawFloat32 || bits == RawFloat64 || validBits(bits)
}

// NNZ returns the total number of values stored across all spans.
func (s *Sparse) NNZ() int {
	n := 0
	for _, sp := range s.Spans {
		n += int(sp.Count)
	}
	return n
}

// dataSize returns the exact Data length for nnz values at the given width.
func dataSize(nnz int, bits uint) int {
	switch bits {
	case RawFloat32:
		return 4 * nnz
	case RawFloat64:
		return 8 * nnz
	default:
		return (nnz*int(bits) + 7) / 8
	}
}

// SpanStats scans a vector and reports the number of nonzero entries and
// the number of dense runs they form — enough to predict the sparse wire
// size without encoding. Negative zero counts as zero (its decoded merge
// contribution is identical).
func SpanStats(values []float64) (nnz, spans int) {
	inSpan := false
	for _, v := range values {
		if v != 0 {
			nnz++
			if !inSpan {
				spans++
				inSpan = true
			}
		} else {
			inSpan = false
		}
	}
	return nnz, spans
}

// SparseWireSize predicts the WriteTo size of a sparse payload with the
// given shape: header (bits, N, MaxAbs), span array, length-prefixed data.
func SparseWireSize(nnz, spans int, bits uint) int {
	return 1 + 4 + 8 + 4 + 8*spans + 4 + dataSize(nnz, bits)
}

// WireSize returns the exact number of bytes WriteTo will append.
func (s *Sparse) WireSize() int {
	return 1 + 4 + 8 + 4 + 8*len(s.Spans) + 4 + len(s.Data)
}

// EncodeSparse run-length encodes values at the given width. Fixed-point
// widths draw rounding decisions from enc (required); raw widths never
// consume randomness and accept a nil encoder. Inputs must be finite.
func EncodeSparse(enc *Encoder, values []float64, bits uint) (*Sparse, error) {
	if !validSparseBits(bits) {
		return nil, fmt.Errorf("%w: %d", ErrBadWidth, bits)
	}
	s := &Sparse{Bits: bits, N: len(values)}
	var nz []float64
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("compress: non-finite input at %d", i)
		}
		if a := math.Abs(v); a > s.MaxAbs {
			s.MaxAbs = a
		}
		if v == 0 {
			continue
		}
		if n := len(s.Spans); n > 0 && int(s.Spans[n-1].Start+s.Spans[n-1].Count) == i {
			s.Spans[n-1].Count++
		} else {
			s.Spans = append(s.Spans, Span{Start: uint32(i), Count: 1})
		}
		nz = append(nz, v)
	}
	switch bits {
	case RawFloat32:
		w := wire.NewWriter(4 * len(nz))
		for _, v := range nz {
			w.Float32(float32(v))
		}
		s.Data = w.Bytes()
	case RawFloat64:
		w := wire.NewWriter(8 * len(nz))
		for _, v := range nz {
			w.Float64(v)
		}
		s.Data = w.Bytes()
	default:
		if enc == nil {
			return nil, fmt.Errorf("compress: nil encoder for %d-bit sparse encode", bits)
		}
		c, err := enc.Encode(nz, bits)
		if err != nil {
			return nil, err
		}
		s.MaxAbs = c.MaxAbs
		s.Data = c.Data
	}
	return s, nil
}

// Validate checks an untrusted sparse payload: supported width, in-range
// header, ordered non-overlapping spans inside [0, N), and a data length
// that exactly matches the span population. Decode and DecodeInto assume a
// validated receiver; ReadSparse and UnmarshalSparse validate for you.
func (s *Sparse) Validate() error {
	if !validSparseBits(s.Bits) {
		return fmt.Errorf("%w: %d", ErrBadWidth, s.Bits)
	}
	if s.N < 0 || s.N > math.MaxUint32 {
		return fmt.Errorf("%w: element count %d", ErrBadHeader, s.N)
	}
	if math.IsNaN(s.MaxAbs) || math.IsInf(s.MaxAbs, 0) || s.MaxAbs < 0 {
		return fmt.Errorf("%w: MaxAbs %v", ErrBadHeader, s.MaxAbs)
	}
	var nnz, next int64
	for i, sp := range s.Spans {
		if sp.Count == 0 {
			return fmt.Errorf("%w: empty span %d", ErrSpanOrder, i)
		}
		if int64(sp.Start) < next {
			return fmt.Errorf("%w: span %d starts at %d, previous ends at %d", ErrSpanOrder, i, sp.Start, next)
		}
		next = int64(sp.Start) + int64(sp.Count)
		if next > int64(s.N) {
			return fmt.Errorf("%w: span %d ends at %d, vector has %d", ErrSpanRange, i, next, s.N)
		}
		nnz += int64(sp.Count)
	}
	if want := dataSize(int(nnz), s.Bits); len(s.Data) != want {
		return fmt.Errorf("%w: %d data bytes for %d %d-bit span values (want %d)",
			ErrSizeMismatch, len(s.Data), nnz, s.Bits, want)
	}
	return nil
}

// Decode reconstructs the full vector with zeros outside the spans.
func (s *Sparse) Decode() []float64 {
	out := make([]float64, s.N)
	s.DecodeInto(out)
	return out
}

// DecodeInto adds the decoded span values onto dst — the merge operation a
// parameter server applies for incoming shards. Buckets outside every span
// contribute nothing, so dst is untouched there. dst must have length N and
// the receiver must have passed Validate.
func (s *Sparse) DecodeInto(dst []float64) error {
	if len(dst) != s.N {
		return fmt.Errorf("compress: decode into %d values, payload has %d", len(dst), s.N)
	}
	switch s.Bits {
	case RawFloat32:
		r := wire.NewReader(s.Data)
		for _, sp := range s.Spans {
			for i := sp.Start; i < sp.Start+sp.Count; i++ {
				dst[i] += float64(r.Float32())
			}
		}
		return r.Err()
	case RawFloat64:
		r := wire.NewReader(s.Data)
		for _, sp := range s.Spans {
			for i := sp.Start; i < sp.Start+sp.Count; i++ {
				dst[i] += r.Float64()
			}
		}
		return r.Err()
	default:
		if s.MaxAbs == 0 {
			return nil
		}
		levels := float64(int64(1)<<(s.Bits-1) - 1)
		inv := s.MaxAbs / levels
		j := 0
		for _, sp := range s.Spans {
			for i := sp.Start; i < sp.Start+sp.Count; i++ {
				q := signExtend(getBits(s.Data, j, s.Bits), s.Bits)
				dst[i] += float64(q) * inv
				j++
			}
		}
		return nil
	}
}

// WriteTo appends the wire form: width byte, element count, MaxAbs, span
// array (start/count pairs), length-prefixed data.
func (s *Sparse) WriteTo(w *wire.Writer) {
	w.Uint8(uint8(s.Bits))
	w.Uint32(uint32(s.N))
	w.Float64(s.MaxAbs)
	flat := make([]uint32, 0, 2*len(s.Spans))
	for _, sp := range s.Spans {
		flat = append(flat, sp.Start, sp.Count)
	}
	w.Uint32s(flat)
	w.Bytes32(s.Data)
}

// ReadSparse consumes one sparse payload from r and validates it. Hostile
// input — truncated runs, overlapping spans, mismatched lengths — yields a
// typed error (wire.ErrTruncated or one of this package's Err* values),
// never a panic.
func ReadSparse(r *wire.Reader) (*Sparse, error) {
	s := &Sparse{Bits: uint(r.Uint8())}
	s.N = int(r.Uint32())
	s.MaxAbs = r.Float64()
	flat := r.Uint32s()
	s.Data = r.Bytes32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(flat)%2 != 0 {
		return nil, fmt.Errorf("%w: odd span array length %d", ErrBadHeader, len(flat))
	}
	s.Spans = make([]Span, len(flat)/2)
	for i := range s.Spans {
		s.Spans[i] = Span{Start: flat[2*i], Count: flat[2*i+1]}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Marshal returns the standalone wire form of s.
func (s *Sparse) Marshal() []byte {
	w := wire.NewWriter(s.WireSize())
	s.WriteTo(w)
	return w.Bytes()
}

// UnmarshalSparse parses a standalone payload produced by Marshal,
// rejecting trailing garbage.
func UnmarshalSparse(b []byte) (*Sparse, error) {
	r := wire.NewReader(b)
	s, err := ReadSparse(r)
	if err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSizeMismatch, r.Remaining())
	}
	return s, nil
}
