package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripWithinOneStep(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, bits := range SupportedBits {
		enc := NewEncoder(2)
		values := make([]float64, 500)
		for i := range values {
			values[i] = rng.NormFloat64() * 100
		}
		c, err := enc.Encode(values, bits)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		got := Decode(c)
		step := c.MaxError()
		for i, v := range values {
			if math.Abs(got[i]-v) > step+1e-9 {
				t.Fatalf("bits=%d idx=%d: |%v - %v| > step %v", bits, i, got[i], v, step)
			}
		}
	}
}

func TestCompressionRatio(t *testing.T) {
	values := make([]float64, 4096)
	for i := range values {
		values[i] = float64(i)
	}
	enc := NewEncoder(3)
	c8, _ := enc.Encode(values, 8)
	if len(c8.Data) != 4096 {
		t.Fatalf("8-bit payload %d bytes, want 4096", len(c8.Data))
	}
	c4, _ := enc.Encode(values, 4)
	if len(c4.Data) != 2048 {
		t.Fatalf("4-bit payload %d bytes, want 2048", len(c4.Data))
	}
	c2, _ := enc.Encode(values, 2)
	if len(c2.Data) != 1024 {
		t.Fatalf("2-bit payload %d bytes, want 1024", len(c2.Data))
	}
	c16, _ := enc.Encode(values, 16)
	if len(c16.Data) != 8192 {
		t.Fatalf("16-bit payload %d bytes, want 8192", len(c16.Data))
	}
	if CompressedSize(4096, 8) != 4096+16 {
		t.Fatalf("CompressedSize(4096,8) = %d", CompressedSize(4096, 8))
	}
}

func TestUnbiasedExpectation(t *testing.T) {
	// Appendix A.1: E[decode(encode(q))] = q thanks to Bernoulli rounding.
	enc := NewEncoder(4)
	const trials = 4000
	values := []float64{0.37, -1.91, 2.44, -0.003, 3.0}
	sums := make([]float64, len(values))
	for trial := 0; trial < trials; trial++ {
		c, err := enc.Encode(values, 8)
		if err != nil {
			t.Fatal(err)
		}
		dec := Decode(c)
		for i, v := range dec {
			sums[i] += v
		}
	}
	step := 3.0 / 127 // |c| = 3.0
	for i, v := range values {
		mean := sums[i] / trials
		// standard error of the mean is step/sqrt(12*trials); allow 6 sigma
		tol := 6 * step / math.Sqrt(12*trials)
		if math.Abs(mean-v) > tol {
			t.Errorf("value %v: mean decode %v differs by more than %v", v, mean, tol)
		}
	}
}

func TestZeroVector(t *testing.T) {
	enc := NewEncoder(5)
	c, err := enc.Encode(make([]float64, 100), 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxAbs != 0 {
		t.Fatalf("MaxAbs = %v", c.MaxAbs)
	}
	for _, v := range Decode(c) {
		if v != 0 {
			t.Fatal("zero vector should decode to zeros")
		}
	}
	if c.MaxError() != 0 {
		t.Fatal("zero vector MaxError should be 0")
	}
}

func TestEmptyVector(t *testing.T) {
	enc := NewEncoder(5)
	c, err := enc.Encode(nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(Decode(c)) != 0 {
		t.Fatal("empty vector decode")
	}
}

func TestUnsupportedBits(t *testing.T) {
	enc := NewEncoder(6)
	for _, bits := range []uint{0, 1, 3, 7, 9, 32} {
		if _, err := enc.Encode([]float64{1}, bits); err == nil {
			t.Errorf("bits=%d should be rejected", bits)
		}
	}
}

func TestNonFiniteInput(t *testing.T) {
	enc := NewEncoder(7)
	if _, err := enc.Encode([]float64{math.Inf(1)}, 8); err == nil {
		t.Fatal("expected error for +Inf")
	}
	if _, err := enc.Encode([]float64{math.NaN()}, 8); err == nil {
		t.Fatal("expected error for NaN")
	}
}

func TestDecodeInto(t *testing.T) {
	enc := NewEncoder(8)
	values := []float64{1, -2, 3}
	c, err := enc.Encode(values, 16)
	if err != nil {
		t.Fatal(err)
	}
	dst := []float64{10, 10, 10}
	if err := DecodeInto(dst, c); err != nil {
		t.Fatal(err)
	}
	step := c.MaxError()
	for i := range dst {
		if math.Abs(dst[i]-(10+values[i])) > step+1e-9 {
			t.Fatalf("DecodeInto[%d] = %v", i, dst[i])
		}
	}
	if err := DecodeInto(make([]float64, 2), c); err == nil {
		t.Fatal("length mismatch should error")
	}
	// zero payload DecodeInto is a no-op
	cz, _ := enc.Encode(make([]float64, 3), 8)
	before := append([]float64(nil), dst...)
	if err := DecodeInto(dst, cz); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != before[i] {
			t.Fatal("zero DecodeInto changed dst")
		}
	}
}

func TestMaxValueRepresentable(t *testing.T) {
	// the max-abs element itself must round-trip near-exactly (it maps to
	// the top level, possibly +1 from stochastic rounding then clamped)
	enc := NewEncoder(9)
	values := []float64{-5, 5}
	for trial := 0; trial < 100; trial++ {
		c, _ := enc.Encode(values, 8)
		dec := Decode(c)
		if math.Abs(dec[1]-5) > 1e-9 {
			t.Fatalf("max element decoded to %v", dec[1])
		}
		if math.Abs(dec[0]+5) > c.MaxError()+1e-9 {
			t.Fatalf("min element decoded to %v", dec[0])
		}
	}
}

func TestQuickRoundTripProperty(t *testing.T) {
	enc := NewEncoder(10)
	f := func(raw []float64) bool {
		values := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e15 {
				values = append(values, v)
			}
		}
		for _, bits := range SupportedBits {
			c, err := enc.Encode(values, bits)
			if err != nil {
				return false
			}
			dec := Decode(c)
			step := c.MaxError()
			for i := range values {
				if math.Abs(dec[i]-values[i]) > step*(1+1e-12)+1e-300 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	values := []float64{0.1, 0.2, 0.3, -0.7}
	a, _ := NewEncoder(42).Encode(values, 8)
	b, _ := NewEncoder(42).Encode(values, 8)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed should encode identically")
		}
	}
}

func TestSignExtend(t *testing.T) {
	if signExtend(0xFF, 8) != -1 {
		t.Fatal("0xFF as int8 should be -1")
	}
	if signExtend(0x7F, 8) != 127 {
		t.Fatal("0x7F as int8 should be 127")
	}
	if signExtend(0x80, 8) != -128 {
		t.Fatal("0x80 as int8 should be -128")
	}
	if signExtend(0x3, 2) != -1 {
		t.Fatal("0b11 as 2-bit should be -1")
	}
	if signExtend(0x1, 2) != 1 {
		t.Fatal("0b01 as 2-bit should be 1")
	}
}
