package compress

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"dimboost/internal/wire"
)

// sparseWidths is every width the sparse codec accepts.
var sparseWidths = []uint{RawFloat32, 2, 4, 8, 16, RawFloat64}

// sparseVec builds a mostly-zero vector with a few dense runs.
func sparseVec(n int, density float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := 0; i < n; {
		if rng.Float64() < density {
			run := 1 + rng.Intn(5)
			for j := 0; j < run && i < n; j++ {
				out[i] = rng.NormFloat64() * 50
				i++
			}
		} else {
			i += 1 + rng.Intn(10)
		}
	}
	return out
}

func TestSparseRoundTripAllWidths(t *testing.T) {
	values := sparseVec(5000, 0.05, 7)
	for _, bits := range sparseWidths {
		enc := NewEncoder(11)
		s, err := EncodeSparse(enc, values, bits)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("bits=%d: self-validate: %v", bits, err)
		}
		b := s.Marshal()
		if len(b) != s.WireSize() {
			t.Fatalf("bits=%d: WireSize %d, marshal %d", bits, s.WireSize(), len(b))
		}
		s2, err := UnmarshalSparse(b)
		if err != nil {
			t.Fatalf("bits=%d: unmarshal: %v", bits, err)
		}
		if !bytes.Equal(s2.Marshal(), b) {
			t.Fatalf("bits=%d: remarshal differs", bits)
		}
		got := s2.Decode()
		var bound float64
		switch bits {
		case RawFloat64:
			bound = 0
		case RawFloat32:
			bound = 0 // checked via float32 narrowing below
		default:
			bound = s.MaxAbs / float64(int64(1)<<(bits-1)-1)
		}
		for i, v := range values {
			switch {
			case v == 0:
				if got[i] != 0 {
					t.Fatalf("bits=%d idx=%d: zero bucket decoded %v", bits, i, got[i])
				}
			case bits == RawFloat64:
				if math.Float64bits(got[i]) != math.Float64bits(v) {
					t.Fatalf("bits=%d idx=%d: %v != %v", bits, i, got[i], v)
				}
			case bits == RawFloat32:
				if got[i] != float64(float32(v)) {
					t.Fatalf("bits=%d idx=%d: %v != float32(%v)", bits, i, got[i], v)
				}
			default:
				if math.Abs(got[i]-v) > bound+1e-9 {
					t.Fatalf("bits=%d idx=%d: |%v-%v| > %v", bits, i, got[i], v, bound)
				}
			}
		}
	}
}

func TestSparseSpanStructure(t *testing.T) {
	values := []float64{0, 1, 2, 0, 0, 3, 0, 4, 5, 6}
	s, err := EncodeSparse(nil, values, RawFloat64)
	if err != nil {
		t.Fatal(err)
	}
	want := []Span{{1, 2}, {5, 1}, {7, 3}}
	if len(s.Spans) != len(want) {
		t.Fatalf("spans %v, want %v", s.Spans, want)
	}
	for i := range want {
		if s.Spans[i] != want[i] {
			t.Fatalf("span %d: %v, want %v", i, s.Spans[i], want[i])
		}
	}
	nnz, spans := SpanStats(values)
	if nnz != 6 || spans != 3 {
		t.Fatalf("SpanStats = (%d,%d), want (6,3)", nnz, spans)
	}
	if s.NNZ() != 6 {
		t.Fatalf("NNZ = %d", s.NNZ())
	}
	if got := SparseWireSize(nnz, spans, RawFloat64); got != s.WireSize() {
		t.Fatalf("SparseWireSize %d, WireSize %d", got, s.WireSize())
	}
}

func TestSparseNegativeZeroTreatedAsZero(t *testing.T) {
	values := []float64{math.Copysign(0, -1), 1, math.Copysign(0, -1)}
	s, err := EncodeSparse(nil, values, RawFloat64)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Spans) != 1 || s.Spans[0] != (Span{1, 1}) {
		t.Fatalf("spans %v, want [{1 1}]", s.Spans)
	}
	got := s.Decode()
	// A merge of -0.0 into a +0.0 accumulator yields +0.0, so dropping the
	// bucket is bit-identical to shipping it.
	if math.Signbit(got[0]) || math.Signbit(got[2]) {
		t.Fatal("decode resurrected a negative zero")
	}
}

func TestSparseDecodeIntoMerges(t *testing.T) {
	values := sparseVec(200, 0.1, 3)
	s, err := EncodeSparse(nil, values, RawFloat64)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 200)
	for i := range dst {
		dst[i] = 1
	}
	if err := s.DecodeInto(dst); err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		if dst[i] != 1+v {
			t.Fatalf("idx %d: %v, want %v", i, dst[i], 1+v)
		}
	}
	if err := s.DecodeInto(make([]float64, 3)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestSparseAllZeroAndEmpty(t *testing.T) {
	for _, bits := range sparseWidths {
		s, err := EncodeSparse(NewEncoder(1), make([]float64, 64), bits)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		if len(s.Spans) != 0 || len(s.Data) != 0 {
			t.Fatalf("bits=%d: all-zero vector carries payload %v", bits, s)
		}
		for _, v := range s.Decode() {
			if v != 0 {
				t.Fatalf("bits=%d: nonzero decode", bits)
			}
		}
		e, err := EncodeSparse(NewEncoder(1), nil, bits)
		if err != nil {
			t.Fatalf("bits=%d empty: %v", bits, err)
		}
		if e.N != 0 || len(e.Decode()) != 0 {
			t.Fatalf("bits=%d: empty vector decoded %d values", bits, e.N)
		}
	}
}

func TestSparseRejectsBadInput(t *testing.T) {
	if _, err := EncodeSparse(nil, []float64{1, math.NaN()}, RawFloat64); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := EncodeSparse(nil, []float64{math.Inf(1)}, RawFloat32); err == nil {
		t.Fatal("+Inf accepted")
	}
	if _, err := EncodeSparse(NewEncoder(1), []float64{1}, 3); !errors.Is(err, ErrBadWidth) {
		t.Fatalf("width 3: %v", err)
	}
	if _, err := EncodeSparse(nil, []float64{1}, 8); err == nil {
		t.Fatal("nil encoder accepted for fixed-point width")
	}
}

func TestSparseValidateHostile(t *testing.T) {
	base := func() *Sparse {
		s, err := EncodeSparse(nil, []float64{0, 1, 2, 0, 3}, RawFloat32)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []struct {
		name   string
		mutate func(*Sparse)
		want   error
	}{
		{"bad width", func(s *Sparse) { s.Bits = 7 }, ErrBadWidth},
		{"NaN MaxAbs", func(s *Sparse) { s.MaxAbs = math.NaN() }, ErrBadHeader},
		{"negative MaxAbs", func(s *Sparse) { s.MaxAbs = -1 }, ErrBadHeader},
		{"empty span", func(s *Sparse) { s.Spans[0].Count = 0 }, ErrSpanOrder},
		{"overlap", func(s *Sparse) { s.Spans = []Span{{1, 2}, {2, 1}} }, ErrSpanOrder},
		{"out of order", func(s *Sparse) { s.Spans = []Span{{4, 1}, {1, 2}} }, ErrSpanOrder},
		{"past end", func(s *Sparse) { s.Spans[1].Count = 40 }, ErrSpanRange},
		{"overflowing span", func(s *Sparse) { s.Spans = []Span{{math.MaxUint32, math.MaxUint32}} }, ErrSpanRange},
		{"short data", func(s *Sparse) { s.Data = s.Data[:len(s.Data)-1] }, ErrSizeMismatch},
		{"long data", func(s *Sparse) { s.Data = append(s.Data, 0) }, ErrSizeMismatch},
	}
	for _, tc := range cases {
		s := base()
		tc.mutate(s)
		err := s.Validate()
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
		// The wire path must reject it too, with the same typed error.
		if _, werr := UnmarshalSparse(s.Marshal()); !errors.Is(werr, tc.want) {
			t.Errorf("%s: unmarshal got %v, want %v", tc.name, werr, tc.want)
		}
	}
	// Negative N never survives the wire (it marshals as a huge uint32),
	// so it is a Validate-only rejection.
	s0 := base()
	s0.N = -1
	if err := s0.Validate(); !errors.Is(err, ErrBadHeader) {
		t.Errorf("negative N: %v", err)
	}
	// "overlapping span" case above mutates Spans without data; reconfirm the
	// adjacent-but-not-overlapping layout is legal.
	s := base()
	s.Spans = []Span{{1, 2}, {3, 1}}
	if err := s.Validate(); err != nil {
		t.Fatalf("adjacent spans rejected: %v", err)
	}
}

func TestSparseReadTruncated(t *testing.T) {
	s, err := EncodeSparse(NewEncoder(5), sparseVec(300, 0.1, 9), 8)
	if err != nil {
		t.Fatal(err)
	}
	b := s.Marshal()
	for cut := 0; cut < len(b); cut++ {
		if _, err := UnmarshalSparse(b[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := UnmarshalSparse(append(append([]byte(nil), b...), 0xff)); !errors.Is(err, ErrSizeMismatch) {
		t.Fatalf("trailing byte: %v", err)
	}
}

func TestSparseWriteToComposes(t *testing.T) {
	// Sparse payloads embed in larger messages: fields around them must
	// survive, and ReadSparse must consume exactly its own bytes.
	s, err := EncodeSparse(nil, []float64{0, 0, 2.5, -1, 0}, RawFloat64)
	if err != nil {
		t.Fatal(err)
	}
	w := wire.NewWriter(0)
	w.Uint32(0xfeedface)
	s.WriteTo(w)
	w.Uint32(0xcafed00d)
	r := wire.NewReader(w.Bytes())
	if r.Uint32() != 0xfeedface {
		t.Fatal("prefix lost")
	}
	s2, err := ReadSparse(r)
	if err != nil {
		t.Fatal(err)
	}
	if r.Uint32() != 0xcafed00d || r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("suffix lost: err=%v remaining=%d", r.Err(), r.Remaining())
	}
	got := s2.Decode()
	want := []float64{0, 0, 2.5, -1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("idx %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestChoosingSparseByPredictedSize(t *testing.T) {
	// At 5% density the sparse form must be far smaller than dense; at
	// full density it must be larger (span + header overhead), which is
	// what the auto-chooser in internal/ps relies on.
	sparse := sparseVec(10000, 0.02, 13)
	nnz, spans := SpanStats(sparse)
	if SparseWireSize(nnz, spans, 8) >= 10000 {
		t.Fatalf("sparse %d bytes not smaller than dense %d", SparseWireSize(nnz, spans, 8), 10000)
	}
	densev := make([]float64, 100)
	for i := range densev {
		densev[i] = float64(i + 1)
	}
	nnz, spans = SpanStats(densev)
	if nnz != 100 || spans != 1 {
		t.Fatalf("SpanStats dense = (%d,%d)", nnz, spans)
	}
	if SparseWireSize(nnz, spans, 8) <= 100 {
		t.Fatal("fully dense vector predicted smaller as sparse")
	}
}
