package compress

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// fuzzWidth maps a fuzzed selector byte onto a supported sparse width.
func fuzzWidth(sel uint8) uint {
	widths := []uint{RawFloat32, 2, 4, 8, 16, RawFloat64}
	return widths[int(sel)%len(widths)]
}

// fuzzValues derives a finite, partly-sparse float vector from raw bytes:
// each 8-byte group is a float64 bit pattern; non-finite patterns and
// every group whose low three bits are zero become exact zeros, giving the
// encoder realistic zero runs to elide.
func fuzzValues(blob []byte) []float64 {
	out := make([]float64, 0, len(blob)/8)
	for i := 0; i+8 <= len(blob); i += 8 {
		u := binary.LittleEndian.Uint64(blob[i : i+8])
		v := math.Float64frombits(u)
		if math.IsNaN(v) || math.IsInf(v, 0) || u&0x7 == 0 {
			v = 0
		}
		out = append(out, v)
	}
	return out
}

// FuzzSparseRoundTrip checks the encode side: any finite vector, at any
// width, must encode → marshal → unmarshal → re-marshal bit-exactly, decode
// zeros as exact zeros, and decode span values within the width's error
// bound (bit-exact for RawFloat64).
func FuzzSparseRoundTrip(f *testing.F) {
	f.Add(uint8(5), []byte{})
	f.Add(uint8(0), bytes.Repeat([]byte{0}, 64))
	seed := make([]byte, 0, 128)
	for _, v := range []float64{0, 1.5, -2.25, 0, 0, 1e300, -1e-300, 3, 0, 7} {
		seed = binary.LittleEndian.AppendUint64(seed, math.Float64bits(v))
	}
	for sel := uint8(0); sel < 6; sel++ {
		f.Add(sel, seed)
	}
	f.Fuzz(func(t *testing.T, sel uint8, blob []byte) {
		bits := fuzzWidth(sel)
		values := fuzzValues(blob)
		s, err := EncodeSparse(NewEncoder(int64(sel)+1), values, bits)
		if err != nil {
			t.Fatalf("encode rejected finite input: %v", err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("encoder output invalid: %v", err)
		}
		nnz, spans := SpanStats(values)
		if s.NNZ() != nnz || len(s.Spans) != spans {
			t.Fatalf("shape (%d,%d) != SpanStats (%d,%d)", s.NNZ(), len(s.Spans), nnz, spans)
		}
		b := s.Marshal()
		if len(b) != s.WireSize() || len(b) != SparseWireSize(nnz, spans, bits) {
			t.Fatalf("size %d, WireSize %d, predicted %d", len(b), s.WireSize(), SparseWireSize(nnz, spans, bits))
		}
		s2, err := UnmarshalSparse(b)
		if err != nil {
			t.Fatalf("unmarshal of own output: %v", err)
		}
		if !bytes.Equal(s2.Marshal(), b) {
			t.Fatal("re-marshal differs")
		}
		got := s2.Decode()
		if len(got) != len(values) {
			t.Fatalf("decoded %d values, want %d", len(got), len(values))
		}
		step := 0.0
		if bits != RawFloat32 && bits != RawFloat64 && s.MaxAbs > 0 {
			step = s.MaxAbs / float64(int64(1)<<(bits-1)-1)
		}
		for i, v := range values {
			switch {
			case v == 0:
				if got[i] != 0 {
					t.Fatalf("idx %d: zero decoded as %v", i, got[i])
				}
			case bits == RawFloat64:
				if math.Float64bits(got[i]) != math.Float64bits(v) {
					t.Fatalf("idx %d: raw64 %v != %v", i, got[i], v)
				}
			case bits == RawFloat32:
				if got[i] != float64(float32(v)) {
					t.Fatalf("idx %d: raw32 %v != %v", i, got[i], v)
				}
			default:
				// The absolute 1e-300 term absorbs ulp-level rounding when
				// MaxAbs/levels is subnormal and has only a few mantissa bits.
				if math.Abs(got[i]-v) > step*(1+1e-9)+1e-300 {
					t.Fatalf("idx %d: error %v > step %v", i, math.Abs(got[i]-v), step)
				}
			}
		}
	})
}

// FuzzSparseDecode checks the hostile side: arbitrary bytes fed to the
// sparse decoder must never panic — they either fail with a typed error or
// yield a validated payload whose re-marshal reproduces the input exactly
// and whose decode stays in bounds.
func FuzzSparseDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{64, 0, 0, 0, 0})
	// Well-formed payload to mutate from.
	good, err := EncodeSparse(NewEncoder(1), []float64{0, 1.5, -2, 0, 0, 3, 0}, 8)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good.Marshal())
	raw, err := EncodeSparse(nil, []float64{0, 0, 1e9, -1e-9, 0}, RawFloat64)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw.Marshal())
	// Hostile shapes: truncated run, overlapping spans, N mismatch.
	trunc := good.Marshal()
	f.Add(trunc[:len(trunc)-3])
	bad := *good
	bad.Spans = []Span{{1, 2}, {2, 1}}
	f.Add(bad.Marshal())
	short := *good
	short.N = 1
	f.Add(short.Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalSparse(data)
		if err != nil {
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("unmarshal accepted invalid payload: %v", verr)
		}
		if !bytes.Equal(s.Marshal(), data) {
			t.Fatal("accepted payload does not re-marshal to itself")
		}
		if s.N > 1<<20 {
			// Header-only giants (huge N, no spans) are valid but not worth
			// materializing under fuzz.
			return
		}
		dst := make([]float64, s.N)
		if err := s.DecodeInto(dst); err != nil {
			t.Fatalf("validated payload failed decode: %v", err)
		}
	})
}
