package compress

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// Edge-case coverage for the fixed-point codec: degenerate headers, extreme
// widths and magnitudes, and the quantization-error bound the distributed
// quality analysis depends on.

func TestMaxAbsZeroShard(t *testing.T) {
	// A shard whose buckets are all exactly zero (a worker saw no rows for
	// the partition) must encode with MaxAbs=0, validate, and merge as a
	// no-op regardless of what the payload bytes claim.
	for _, bits := range SupportedBits {
		c, err := NewEncoder(1).Encode(make([]float64, 33), bits)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		if c.MaxAbs != 0 {
			t.Fatalf("bits=%d: MaxAbs %v", bits, c.MaxAbs)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		dst := []float64{1, 2, 3}
		dst = append(dst, make([]float64, 30)...)
		if err := DecodeInto(dst, c); err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		if dst[0] != 1 || dst[1] != 2 || dst[2] != 3 {
			t.Fatalf("bits=%d: zero shard mutated dst", bits)
		}
	}
}

func TestOneBitWidthRejected(t *testing.T) {
	// 1-bit signed fixed point has no positive level (the only values are
	// 0 and -1), so the codec refuses it rather than encode garbage.
	if _, err := NewEncoder(1).Encode([]float64{1, -1}, 1); !errors.Is(err, ErrBadWidth) {
		t.Fatalf("1-bit encode: %v", err)
	}
	c := &Compressed{Bits: 1, N: 2, Data: []byte{0x3}}
	if err := c.Validate(); !errors.Is(err, ErrBadWidth) {
		t.Fatalf("1-bit validate: %v", err)
	}
}

func TestSixteenBitExtremes(t *testing.T) {
	// 16-bit is the widest format: huge magnitudes, denormals, and mixed
	// signs must all stay within one quantization step.
	values := []float64{
		math.MaxFloat64 / 4, -math.MaxFloat64 / 4,
		5e-324, -5e-324, // denormals quantize to 0 at this scale
		0, 1, -1,
	}
	c, err := NewEncoder(2).Encode(values, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	dec := Decode(c)
	step := c.MaxError()
	for i, v := range values {
		if math.Abs(dec[i]-v) > step*(1+1e-12) {
			t.Fatalf("idx %d: |%v - %v| > step %v", i, dec[i], v, step)
		}
	}
}

func TestNegativeInfRejected(t *testing.T) {
	if _, err := NewEncoder(3).Encode([]float64{math.Inf(-1)}, 8); err == nil {
		t.Fatal("-Inf accepted")
	}
}

func TestDeterministicEncoderHalfStepBound(t *testing.T) {
	// Nearest rounding (the server-side pull encoder) halves the error
	// bound: |decode(encode(v)) − v| ≤ MaxAbs/2^(bits−1) — tighter than
	// the stochastic encoder's full step MaxAbs/(2^(bits−1)−1).
	rng := rand.New(rand.NewSource(17))
	values := make([]float64, 2000)
	for i := range values {
		values[i] = rng.NormFloat64() * 1e3
	}
	enc := NewDeterministicEncoder()
	for _, bits := range SupportedBits {
		c, err := enc.Encode(values, bits)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		bound := c.MaxAbs / float64(int64(1)<<(bits-1))
		dec := Decode(c)
		for i, v := range values {
			if math.Abs(dec[i]-v) > bound*(1+1e-12) {
				t.Fatalf("bits=%d idx=%d: |%v − %v| = %v > MaxAbs/2^(bits−1) = %v",
					bits, i, dec[i], v, math.Abs(dec[i]-v), bound)
			}
		}
	}
}

func TestDeterministicEncoderIsReproducibleAndConcurrent(t *testing.T) {
	values := []float64{0.3, -0.7, 12.5, 0}
	a, err := NewDeterministicEncoder().Encode(values, 8)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Compressed, 8)
	shared := NewDeterministicEncoder()
	for i := 0; i < 8; i++ {
		go func() {
			c, _ := shared.Encode(values, 8)
			done <- c
		}()
	}
	for i := 0; i < 8; i++ {
		c := <-done
		if c == nil {
			t.Fatal("concurrent encode failed")
		}
		for j := range a.Data {
			if c.Data[j] != a.Data[j] {
				t.Fatal("deterministic encodes differ")
			}
		}
	}
}

func TestStochasticQuantizationErrorBound(t *testing.T) {
	// The stochastic encoder's bound is one full step (MaxError); assert it
	// across widths so a regression in clamping or packing is caught here
	// rather than as a distributed quality drift.
	rng := rand.New(rand.NewSource(23))
	values := make([]float64, 2000)
	for i := range values {
		values[i] = rng.NormFloat64() * 250
	}
	enc := NewEncoder(29)
	for _, bits := range SupportedBits {
		c, err := enc.Encode(values, bits)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		step := c.MaxError()
		dec := Decode(c)
		for i, v := range values {
			if math.Abs(dec[i]-v) > step*(1+1e-12) {
				t.Fatalf("bits=%d idx=%d: error %v exceeds step %v", bits, i, math.Abs(dec[i]-v), step)
			}
		}
	}
}

func TestCompressedValidate(t *testing.T) {
	c, err := NewEncoder(4).Encode([]float64{1, 2, 3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Compressed)
		want   error
	}{
		{"width", func(c *Compressed) { c.Bits = 200 }, ErrBadWidth},
		{"negative N", func(c *Compressed) { c.N = -1 }, ErrBadHeader},
		{"Inf MaxAbs", func(c *Compressed) { c.MaxAbs = math.Inf(1) }, ErrBadHeader},
		{"short data", func(c *Compressed) { c.Data = c.Data[:1] }, ErrSizeMismatch},
		{"long data", func(c *Compressed) { c.Data = append(c.Data, 0, 0) }, ErrSizeMismatch},
	}
	for _, tc := range cases {
		d := *c
		d.Data = append([]byte(nil), c.Data...)
		tc.mutate(&d)
		if err := d.Validate(); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}
