// Package compress implements the low-precision gradient-histogram
// compressor of §6.1: 32-bit floating-point histogram entries are quantized
// to d-bit signed fixed-point integers with max-abs scaling and stochastic
// (Bernoulli) rounding, so the decoded value is unbiased in expectation
// (Appendix A.1). The default d=8 yields the paper's 4× compression over the
// float32 wire format.
package compress

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Typed decode errors. Wire-facing decoders (internal/ps, fuzz targets)
// match on these with errors.Is to distinguish hostile payloads from
// programming mistakes.
var (
	// ErrBadWidth reports a quantization width outside SupportedBits.
	ErrBadWidth = errors.New("compress: unsupported bit width")
	// ErrBadHeader reports an out-of-range header field (negative N,
	// non-finite or negative MaxAbs).
	ErrBadHeader = errors.New("compress: invalid header")
	// ErrSizeMismatch reports a payload whose data length disagrees with
	// the element count declared in its header.
	ErrSizeMismatch = errors.New("compress: payload size mismatch")
)

// SupportedBits lists the allowed quantization widths. Widths below 8 pack
// multiple values per byte; 16 uses two bytes per value.
var SupportedBits = []uint{2, 4, 8, 16}

// ValidWidth reports whether bits is a supported fixed-point width.
func ValidWidth(bits uint) bool { return validBits(bits) }

func validBits(bits uint) bool {
	for _, b := range SupportedBits {
		if b == bits {
			return true
		}
	}
	return false
}

// Compressed is a quantized vector: Data packs len(values) signed bits-wide
// integers little-endian within each byte group, and MaxAbs is the scaling
// constant |c| (the largest absolute value in the original vector).
type Compressed struct {
	Bits   uint
	N      int
	MaxAbs float64
	Data   []byte
}

// Size returns the wire size in bytes of the compressed payload (excluding
// the small fixed header the transport adds).
func (c *Compressed) Size() int { return len(c.Data) + 8 /* MaxAbs */ + 8 /* bits+n */ }

// CompressedSize predicts the payload size for n values at the given width.
func CompressedSize(n int, bits uint) int {
	return (n*int(bits)+7)/8 + 16
}

// Encoder quantizes vectors. It carries its own RNG so that stochastic
// rounding is deterministic given a seed — distributed tests rely on this.
// An Encoder with an RNG is not safe for concurrent use; create one per
// goroutine. A deterministic Encoder (nil RNG) is stateless and safe to
// share.
type Encoder struct {
	rng *rand.Rand
}

// NewEncoder returns an Encoder seeded for reproducible stochastic rounding.
func NewEncoder(seed int64) *Encoder {
	return &Encoder{rng: rand.New(rand.NewSource(seed))}
}

// NewDeterministicEncoder returns an Encoder that rounds to nearest instead
// of stochastically. Its output depends only on the input vector, so it is
// safe for concurrent use and retried encodes are byte-identical — the
// parameter server uses it for pull responses, where rounding that depends
// on request arrival order would break run-to-run determinism. The error
// bound tightens to half a quantization step.
func NewDeterministicEncoder() *Encoder {
	return &Encoder{}
}

// Encode quantizes values into a d-bit fixed-point representation:
//
//	q' = floor(q/|c| · (2^(d-1)-1)) + Bernoulli(frac)
//
// so that E[decode(q')] = q. A zero vector encodes with MaxAbs = 0 and an
// all-zero payload.
func (e *Encoder) Encode(values []float64, bits uint) (*Compressed, error) {
	if !validBits(bits) {
		return nil, fmt.Errorf("%w: %d", ErrBadWidth, bits)
	}
	maxAbs := 0.0
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, errors.New("compress: non-finite input")
		}
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	c := &Compressed{Bits: bits, N: len(values), MaxAbs: maxAbs}
	c.Data = make([]byte, (len(values)*int(bits)+7)/8)
	if maxAbs == 0 {
		return c, nil
	}
	levels := float64(int64(1)<<(bits-1) - 1) // e.g. 127 for 8 bits
	lo, hi := -(int64(1) << (bits - 1)), int64(1)<<(bits-1)-1
	for i, v := range values {
		// Normalize before scaling: v/maxAbs is always in [-1, 1], whereas
		// levels/maxAbs overflows to +Inf when maxAbs is denormal.
		t := v / maxAbs * levels
		var q int64
		if e.rng != nil {
			f := math.Floor(t)
			q = int64(f)
			if e.rng.Float64() < t-f {
				q++
			}
		} else {
			q = int64(math.Round(t))
		}
		if q < lo {
			q = lo
		}
		if q > hi {
			q = hi
		}
		putBits(c.Data, i, bits, uint64(q)&((1<<bits)-1))
	}
	return c, nil
}

// Decode reconstructs the float64 vector: q” = q' / (2^(d-1)-1) · |c|.
func Decode(c *Compressed) []float64 {
	out := make([]float64, c.N)
	if c.MaxAbs == 0 {
		return out
	}
	levels := float64(int64(1)<<(c.Bits-1) - 1)
	inv := c.MaxAbs / levels
	for i := range out {
		raw := getBits(c.Data, i, c.Bits)
		q := signExtend(raw, c.Bits)
		out[i] = float64(q) * inv
	}
	return out
}

// DecodeInto adds the decoded values onto dst, the common case when a
// parameter server merges an incoming compressed histogram into the global
// one. dst must have length c.N.
func DecodeInto(dst []float64, c *Compressed) error {
	if len(dst) != c.N {
		return fmt.Errorf("compress: decode into %d values, payload has %d", len(dst), c.N)
	}
	if c.MaxAbs == 0 {
		return nil
	}
	levels := float64(int64(1)<<(c.Bits-1) - 1)
	inv := c.MaxAbs / levels
	for i := range dst {
		q := signExtend(getBits(c.Data, i, c.Bits), c.Bits)
		dst[i] += float64(q) * inv
	}
	return nil
}

// Validate checks that a payload read off the wire is internally consistent
// before any decode touches it: the width is supported, the header fields
// are in range, and the data length matches the declared element count.
// Decode and DecodeInto index Data by N and shift by Bits, so skipping this
// on untrusted input risks a panic.
func (c *Compressed) Validate() error {
	if !validBits(c.Bits) {
		return fmt.Errorf("%w: %d", ErrBadWidth, c.Bits)
	}
	if c.N < 0 {
		return fmt.Errorf("%w: negative element count %d", ErrBadHeader, c.N)
	}
	if math.IsNaN(c.MaxAbs) || math.IsInf(c.MaxAbs, 0) || c.MaxAbs < 0 {
		return fmt.Errorf("%w: MaxAbs %v", ErrBadHeader, c.MaxAbs)
	}
	if want := (c.N*int(c.Bits) + 7) / 8; len(c.Data) != want {
		return fmt.Errorf("%w: %d data bytes for %d %d-bit values (want %d)",
			ErrSizeMismatch, len(c.Data), c.N, c.Bits, want)
	}
	return nil
}

// MaxError returns the worst-case absolute reconstruction error for this
// payload: one quantization step.
func (c *Compressed) MaxError() float64 {
	if c.MaxAbs == 0 {
		return 0
	}
	return c.MaxAbs / float64(int64(1)<<(c.Bits-1)-1)
}

// putBits writes the low `bits` bits of v at element index i.
func putBits(data []byte, i int, bits uint, v uint64) {
	bitPos := i * int(bits)
	for b := uint(0); b < bits; b += 8 {
		byteIdx := (bitPos + int(b)) / 8
		shift := uint(bitPos+int(b)) % 8
		chunk := byte(v >> b)
		if bits-b < 8 {
			chunk &= (1 << (bits - b)) - 1
		}
		data[byteIdx] |= chunk << shift
		if shift != 0 && int(8-shift) < int(bits-b) {
			data[byteIdx+1] |= chunk >> (8 - shift)
		}
	}
}

// getBits reads `bits` bits at element index i.
func getBits(data []byte, i int, bits uint) uint64 {
	bitPos := i * int(bits)
	var v uint64
	for b := uint(0); b < bits; b += 8 {
		byteIdx := (bitPos + int(b)) / 8
		shift := uint(bitPos+int(b)) % 8
		chunk := uint64(data[byteIdx] >> shift)
		if shift != 0 && byteIdx+1 < len(data) {
			chunk |= uint64(data[byteIdx+1]) << (8 - shift)
		}
		width := bits - b
		if width > 8 {
			width = 8
		}
		v |= (chunk & ((1 << width) - 1)) << b
	}
	return v
}

// signExtend interprets the low `bits` bits of raw as a signed integer.
func signExtend(raw uint64, bits uint) int64 {
	shift := 64 - bits
	return int64(raw<<shift) >> shift
}
