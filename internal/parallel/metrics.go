package parallel

import (
	"sync"

	"dimboost/internal/obs"
)

// poolObs groups the pool's observability instruments: chunk-grain task
// throughput, how often dynamic claiming deviated from the static
// round-robin assignment (i.e. rebalanced work), and the configured worker
// bound of the most recently constructed pool.
type poolObs struct {
	tasks   *obs.Counter
	steals  *obs.Counter
	workers *obs.Gauge
}

var (
	poOnce sync.Once
	poInst *poolObs
)

func poolMetrics() *poolObs {
	poOnce.Do(func() {
		r := obs.Default()
		poInst = &poolObs{
			tasks:   r.Counter("dimboost_parallel_tasks_total", "Chunks executed by the shared training worker pool."),
			steals:  r.Counter("dimboost_parallel_steals_total", "Chunks claimed off their static round-robin owner (dynamic rebalancing)."),
			workers: r.Gauge("dimboost_parallel_workers", "Worker bound of the most recently constructed training pool (resolved Config.Parallelism)."),
		}
	})
	return poInst
}
