// Package parallel is the shared worker pool of the training loop: chunked
// parallel-for and ordered reduction over a fixed chunk grid, the
// multi-core counterpart of the batch machinery §5.2 applies to histogram
// construction.
//
// The design contract is determinism at any parallelism:
//
//   - The chunk grid over an index range [0, n) depends only on n and the
//     chunk size — never on the worker count. Workers claim chunks off an
//     atomic counter (the same scheme proven in internal/predict), so load
//     balances dynamically, but the set of chunks is invariant.
//   - Reductions merge per-chunk partial results in ascending chunk order.
//     A chunk's partial is a pure function of its index range, and the
//     merge sequence is a pure function of the grid, so the reduced value
//     is bit-identical for every worker count, including one.
//
// Together these make every phase of training routed through the pool —
// gradients, weighted sketches, histogram merges, split finding, row
// partitioning — produce bit-identical models at any Config.Parallelism
// (DESIGN.md invariant 15).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Default chunk sizes shared by the training phases. They are part of the
// determinism contract: results may depend on these constants (they fix the
// reduction grid) but never on the worker count.
const (
	// RowChunk is the per-chunk row count for elementwise passes
	// (gradients, prediction updates) and row partitioning.
	RowChunk = 4096
	// SketchChunk is the per-chunk row count for weighted-sketch
	// construction; larger than RowChunk because each chunk pays a
	// per-feature merge.
	SketchChunk = 8192
	// PosChunk is the per-chunk sampled-feature count for split finding.
	PosChunk = 64
)

// Pool runs chunked loops with a bounded number of workers. The zero value
// is not useful; construct with New. A Pool is stateless between calls and
// safe for concurrent use.
type Pool struct {
	workers int
}

// New returns a pool with the given worker bound; values < 1 mean
// runtime.GOMAXPROCS(0).
func New(workers int) *Pool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	poolMetrics().workers.Set(int64(workers))
	return &Pool{workers: workers}
}

// Workers returns the pool's worker bound.
func (p *Pool) Workers() int { return p.workers }

// Grid returns the number of chunks covering [0, n) at the given chunk
// size, and the normalized size. chunk values < 1 are treated as 1. The
// grid is the chunk-source abstraction shared by every consumer of the
// pool: in-memory passes, the predict scorer, and the out-of-core chunk
// caches all address work by the same (n, chunk) → chunk-index mapping, so
// a pass can swap its data source without perturbing the reduction order.
func Grid(n, chunk int) (chunks, size int) {
	if chunk < 1 {
		chunk = 1
	}
	return (n + chunk - 1) / chunk, chunk
}

// ChunkBounds returns chunk c's index range [lo, hi) on a grid of the given
// normalized chunk size over [0, n).
func ChunkBounds(c, size, n int) (lo, hi int) {
	lo = c * size
	hi = lo + size
	if hi > n {
		hi = n
	}
	return
}

// grid and bounds are the internal spellings.
func grid(n, chunk int) (chunks, size int) { return Grid(n, chunk) }
func bounds(c, size, n int) (lo, hi int)   { return ChunkBounds(c, size, n) }

// ForChunks calls fn(c, lo, hi) for every chunk of the fixed grid over
// [0, n). Chunks run concurrently on up to p.Workers() goroutines; with one
// worker (or one chunk) everything runs inline on the caller's goroutine in
// ascending chunk order. fn must not assume any chunk ordering when workers
// exceed one.
func (p *Pool) ForChunks(n, chunk int, fn func(c, lo, hi int)) {
	chunks, size := grid(n, chunk)
	if chunks == 0 {
		return
	}
	m := poolMetrics()
	m.tasks.Add(int64(chunks))
	workers := p.workers
	if workers > chunks {
		workers = chunks
	}
	if workers == 1 {
		for c := 0; c < chunks; c++ {
			lo, hi := bounds(c, size, n)
			fn(c, lo, hi)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				// A chunk claimed off its static round-robin owner means
				// the dynamic scheme actually rebalanced work.
				if c%workers != w {
					m.steals.Inc()
				}
				lo, hi := bounds(c, size, n)
				fn(c, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// For is ForChunks for elementwise work that does not need the chunk index.
func (p *Pool) For(n, chunk int, fn func(lo, hi int)) {
	p.ForChunks(n, chunk, func(_, lo, hi int) { fn(lo, hi) })
}

// Tasks runs fn(task) for every task in [0, k): a chunk grid of size one,
// for coarse-grained task lists such as (node × feature-range) split
// finding.
func (p *Pool) Tasks(k int, fn func(task int)) {
	p.ForChunks(k, 1, func(c, _, _ int) { fn(c) })
}

// ReduceOrdered runs produce over every chunk of the fixed grid and calls
// merge once per chunk in ascending chunk order. produce calls run
// concurrently; merge calls are serialized and ordered, and may run
// concurrently with later produce calls (eager prefix merging, so partials
// can be recycled as soon as they are folded in). The merged result is
// therefore a pure function of (n, chunk, produce, merge) — the worker
// count cannot influence it.
func ReduceOrdered[T any](p *Pool, n, chunk int, produce func(c, lo, hi int) T, merge func(c int, part T)) {
	chunks, size := grid(n, chunk)
	if chunks == 0 {
		return
	}
	m := poolMetrics()
	m.tasks.Add(int64(chunks))
	workers := p.workers
	if workers > chunks {
		workers = chunks
	}
	if workers == 1 {
		for c := 0; c < chunks; c++ {
			lo, hi := bounds(c, size, n)
			merge(c, produce(c, lo, hi))
		}
		return
	}
	var (
		next     atomic.Int64
		mu       sync.Mutex
		ready    = make([]T, chunks)
		done     = make([]bool, chunks)
		frontier int
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				if c%workers != w {
					m.steals.Inc()
				}
				lo, hi := bounds(c, size, n)
				part := produce(c, lo, hi)
				mu.Lock()
				ready[c], done[c] = part, true
				// Drain the ready prefix: whoever finishes the chunk at the
				// frontier merges everything contiguous behind it, so after
				// the last chunk completes the fold is already finished.
				for frontier < chunks && done[frontier] {
					merge(frontier, ready[frontier])
					var zero T
					ready[frontier] = zero
					frontier++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
}
