package parallel

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestForChunksCoversRangeOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 5, 100, 1000} {
			p := New(workers)
			hits := make([]atomic.Int32, n)
			p.ForChunks(n, 7, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForChunksGridIndependentOfWorkers(t *testing.T) {
	// The (chunk, lo, hi) set must depend only on (n, chunk size).
	collect := func(workers int) map[[3]int]bool {
		p := New(workers)
		seen := make(chan [3]int, 64)
		p.ForChunks(100, 16, func(c, lo, hi int) { seen <- [3]int{c, lo, hi} })
		close(seen)
		out := map[[3]int]bool{}
		for v := range seen {
			out[v] = true
		}
		return out
	}
	ref := collect(1)
	for _, w := range []int{2, 3, 8} {
		got := collect(w)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d chunks, want %d", w, len(got), len(ref))
		}
		for v := range ref {
			if !got[v] {
				t.Fatalf("workers=%d: missing chunk %v", w, v)
			}
		}
	}
}

// TestReduceOrderedIsOrderDeterministic exploits float non-associativity:
// folding per-chunk sums in ascending order must give the same bits at
// every worker count, which only holds if the merge order is fixed.
func TestReduceOrderedIsOrderDeterministic(t *testing.T) {
	n := 10_000
	vals := make([]float64, n)
	x := 0.5
	for i := range vals {
		// Spread magnitudes over ~30 decades so association order matters.
		x = 4 * x * (1 - x)
		vals[i] = math.Ldexp(1+x, (i%97)-48)
	}
	sum := func(workers int) uint64 {
		p := New(workers)
		total := 0.0
		ReduceOrdered(p, n, 64,
			func(_, lo, hi int) float64 {
				s := 0.0
				for i := lo; i < hi; i++ {
					s += vals[i]
				}
				return s
			},
			func(_ int, part float64) { total += part })
		return math.Float64bits(total)
	}
	ref := sum(1)
	for _, w := range []int{2, 3, 4, 8} {
		if got := sum(w); got != ref {
			t.Fatalf("workers=%d: sum bits %x != %x at workers=1", w, got, ref)
		}
	}
}

func TestReduceOrderedMergesAscending(t *testing.T) {
	for _, workers := range []int{1, 2, 5} {
		p := New(workers)
		var order []int
		ReduceOrdered(p, 50, 4,
			func(c, _, _ int) int { return c },
			func(c int, part int) {
				if part != c {
					t.Fatalf("chunk %d merged with partial %d", c, part)
				}
				order = append(order, c)
			})
		for i, c := range order {
			if c != i {
				t.Fatalf("workers=%d: merge order %v not ascending", workers, order)
			}
		}
		if len(order) != 13 {
			t.Fatalf("workers=%d: %d merges, want 13", workers, len(order))
		}
	}
}

func TestTasks(t *testing.T) {
	p := New(4)
	hits := make([]atomic.Int32, 37)
	p.Tasks(len(hits), func(task int) { hits[task].Add(1) })
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("task %d ran %d times", i, hits[i].Load())
		}
	}
}

func TestNewResolvesWorkerBound(t *testing.T) {
	if got := New(3).Workers(); got != 3 {
		t.Fatalf("Workers() = %d, want 3", got)
	}
	if got := New(0).Workers(); got < 1 {
		t.Fatalf("New(0).Workers() = %d, want >= 1", got)
	}
	if got := New(-5).Workers(); got < 1 {
		t.Fatalf("New(-5).Workers() = %d, want >= 1", got)
	}
}

func TestPoolMetricsCountTasks(t *testing.T) {
	m := poolMetrics()
	before := m.tasks.Value()
	New(2).ForChunks(100, 10, func(_, _, _ int) {})
	if got := m.tasks.Value() - before; got != 10 {
		t.Fatalf("tasks counter advanced by %d, want 10", got)
	}
}
