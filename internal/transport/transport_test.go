package transport

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestMemNetworkBasicRPC(t *testing.T) {
	net := NewMemNetwork()
	a, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	b.Handle(func(from string, req Message) (Message, error) {
		if from != "a" {
			t.Errorf("from = %q", from)
		}
		return Message{Op: req.Op + 1, Body: append([]byte("echo:"), req.Body...)}, nil
	})
	resp, err := a.Call("b", Message{Op: 7, Body: []byte("hi")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Op != 8 || string(resp.Body) != "echo:hi" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestMemNetworkErrors(t *testing.T) {
	net := NewMemNetwork()
	a, _ := net.Endpoint("a")
	if _, err := net.Endpoint("a"); err == nil {
		t.Fatal("duplicate endpoint should fail")
	}
	if _, err := a.Call("ghost", Message{}); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("err = %v", err)
	}
	b, _ := net.Endpoint("b")
	if _, err := a.Call("b", Message{}); err == nil {
		t.Fatal("no-handler call should fail")
	}
	b.Handle(func(string, Message) (Message, error) { return Message{}, errors.New("boom") })
	if _, err := a.Call("b", Message{}); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("handler error not propagated: %v", err)
	}
	a.Close()
	if _, err := a.Call("b", Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed call err = %v", err)
	}
	net.Close()
	if _, err := net.Endpoint("c"); !errors.Is(err, ErrClosed) {
		t.Fatal("closed network should reject endpoints")
	}
}

func TestMeterAccounting(t *testing.T) {
	net := NewMemNetwork()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	b.Handle(func(_ string, req Message) (Message, error) {
		return Message{Body: make([]byte, 10)}, nil
	})
	if _, err := a.Call("b", Message{Body: make([]byte, 100)}); err != nil {
		t.Fatal(err)
	}
	ca := net.Meter().Node("a")
	cb := net.Meter().Node("b")
	if ca.BytesSent != 101 || ca.BytesRecv != 11 || ca.MsgsSent != 1 {
		t.Fatalf("a = %+v", ca)
	}
	if cb.BytesRecv != 101 || cb.BytesSent != 11 || cb.MsgsRecv != 1 {
		t.Fatalf("b = %+v", cb)
	}
	tot := net.Meter().Totals()
	if tot.BytesSent != 112 || tot.MsgsSent != 1 || tot.MsgsRecv != 1 {
		t.Fatalf("totals = %+v", tot)
	}
	mx := net.Meter().MaxPerNode()
	if mx.BytesSent != 101 || mx.BytesRecv != 101 {
		t.Fatalf("max = %+v", mx)
	}
	net.Meter().Reset()
	if net.Meter().Totals().BytesSent != 0 {
		t.Fatal("reset failed")
	}
}

func TestMemNetworkConcurrentCalls(t *testing.T) {
	net := NewMemNetwork()
	srv, _ := net.Endpoint("srv")
	var mu sync.Mutex
	seen := map[string]int{}
	srv.Handle(func(from string, req Message) (Message, error) {
		mu.Lock()
		seen[from]++
		mu.Unlock()
		return Message{Op: req.Op}, nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		ep, err := net.Endpoint(fmt.Sprintf("w%d", i))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(ep Endpoint) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := ep.Call("srv", Message{Op: 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}(ep)
	}
	wg.Wait()
	total := 0
	for _, n := range seen {
		total += n
	}
	if total != 16*50 {
		t.Fatalf("server saw %d calls", total)
	}
}

func TestTCPBasicRPC(t *testing.T) {
	a, err := NewTCPEndpoint("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPEndpoint("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer("b", b.Addr())
	b.AddPeer("a", a.Addr())

	b.Handle(func(from string, req Message) (Message, error) {
		return Message{Op: req.Op * 2, Body: append([]byte(from+":"), req.Body...)}, nil
	})
	resp, err := a.Call("b", Message{Op: 21, Body: []byte("ping")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Op != 42 || string(resp.Body) != "a:ping" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestTCPBidirectionalAndLarge(t *testing.T) {
	a, _ := NewTCPEndpoint("a", "127.0.0.1:0")
	defer a.Close()
	b, _ := NewTCPEndpoint("b", "127.0.0.1:0")
	defer b.Close()
	a.AddPeer("b", b.Addr())
	b.AddPeer("a", a.Addr())

	big := make([]byte, 4<<20)
	for i := range big {
		big[i] = byte(i)
	}
	a.Handle(func(_ string, req Message) (Message, error) {
		return Message{Op: 1, Body: req.Body}, nil
	})
	b.Handle(func(_ string, req Message) (Message, error) {
		// call back into a from b's handler over a fresh dial
		return a.Call("b", Message{Op: 9}) // nested call the other way
	})
	// large payload echo through a's handler
	resp, err := b.Call("a", Message{Op: 5, Body: big})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Body) != len(big) || resp.Body[1<<20] != big[1<<20] {
		t.Fatal("large payload corrupted")
	}
}

func TestTCPConcurrentCalls(t *testing.T) {
	srv, _ := NewTCPEndpoint("srv", "127.0.0.1:0")
	defer srv.Close()
	srv.Handle(func(_ string, req Message) (Message, error) {
		return Message{Op: req.Op, Body: req.Body}, nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		cl, err := NewTCPEndpoint(fmt.Sprintf("c%d", i), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cl.AddPeer("srv", srv.Addr())
		wg.Add(1)
		go func(cl *TCPEndpoint, i int) {
			defer wg.Done()
			defer cl.Close()
			for j := 0; j < 30; j++ {
				body := []byte(fmt.Sprintf("%d-%d", i, j))
				resp, err := cl.Call("srv", Message{Op: uint8(i), Body: body})
				if err != nil {
					t.Error(err)
					return
				}
				if string(resp.Body) != string(body) {
					t.Errorf("echo mismatch: %q vs %q", resp.Body, body)
					return
				}
			}
		}(cl, i)
	}
	wg.Wait()
}

func TestTCPHandlerError(t *testing.T) {
	a, _ := NewTCPEndpoint("a", "127.0.0.1:0")
	defer a.Close()
	b, _ := NewTCPEndpoint("b", "127.0.0.1:0")
	defer b.Close()
	a.AddPeer("b", b.Addr())
	b.Handle(func(string, Message) (Message, error) {
		return Message{}, errors.New("server exploded")
	})
	if _, err := a.Call("b", Message{}); err == nil || !strings.Contains(err.Error(), "server exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPUnknownPeerAndClosed(t *testing.T) {
	a, _ := NewTCPEndpoint("a", "127.0.0.1:0")
	if _, err := a.Call("nobody", Message{}); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("err = %v", err)
	}
	a.Close()
	if _, err := a.Call("nobody", Message{}); err == nil {
		t.Fatal("closed endpoint should fail")
	}
	// double close is fine
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPPeerCrashUnblocksCalls(t *testing.T) {
	a, _ := NewTCPEndpoint("a", "127.0.0.1:0")
	defer a.Close()
	b, _ := NewTCPEndpoint("b", "127.0.0.1:0")
	a.AddPeer("b", b.Addr())
	started := make(chan struct{})
	b.Handle(func(string, Message) (Message, error) {
		close(started)
		select {} // hang forever
	})
	done := make(chan error, 1)
	go func() {
		_, err := a.Call("b", Message{Op: 1})
		done <- err
	}()
	<-started
	b.Close() // kill the peer while the call is outstanding
	if err := <-done; err == nil {
		t.Fatal("call should fail when peer dies")
	}
}
