package transport

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestMemNetworkCloseClosesEndpoints: closing the network must close every
// endpoint it handed out. (Regression: endpoints used to keep succeeding
// through their cached handler references after net.Close.)
func TestMemNetworkCloseClosesEndpoints(t *testing.T) {
	net := NewMemNetwork()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	b.Handle(func(string, Message) (Message, error) { return Message{}, nil })
	if _, err := a.Call("b", Message{}); err != nil {
		t.Fatal(err)
	}
	net.Close()
	if _, err := a.Call("b", Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("call through closed network: err = %v, want ErrClosed", err)
	}
}

func TestIsRetryable(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("plain"), false},
		{ErrTimeout, true},
		{ErrUnavailable, true},
		{timeoutError("x"), true},
		{MarkRetryable(errors.New("wrapped")), true},
	} {
		if got := IsRetryable(tc.err); got != tc.want {
			t.Errorf("IsRetryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
	if MarkRetryable(nil) != nil {
		t.Fatal("MarkRetryable(nil) must stay nil")
	}
}

// flakyHandler fails the first n calls with the given error.
func flakyHandler(n int, err error) (Handler, *atomic.Int64) {
	var calls atomic.Int64
	return func(string, Message) (Message, error) {
		if calls.Add(1) <= int64(n) {
			return Message{}, err
		}
		return Message{Op: 42}, nil
	}, &calls
}

func newRetryPair(t *testing.T, n int, failErr error, policy RetryPolicy) (*RetryEndpoint, *atomic.Int64, *[]time.Duration) {
	t.Helper()
	net := NewMemNetwork()
	t.Cleanup(func() { net.Close() })
	srv, _ := net.Endpoint("srv")
	h, calls := flakyHandler(n, failErr)
	srv.Handle(h)
	cl, _ := net.Endpoint("cl")
	re := NewRetryEndpoint(cl, policy)
	var slept []time.Duration
	re.sleep = func(d time.Duration) { slept = append(slept, d) }
	return re, calls, &slept
}

// A handler error marked retryable is retried with exponential backoff and
// eventually succeeds.
func TestRetryEndpointRecovers(t *testing.T) {
	re, calls, slept := newRetryPair(t, 3, MarkRetryable(errors.New("busy")), RetryPolicy{
		MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 35 * time.Millisecond, Jitter: 0,
	})
	resp, err := re.Call("srv", Message{Op: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Op != 42 || calls.Load() != 4 {
		t.Fatalf("resp %+v after %d calls", resp, calls.Load())
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 35 * time.Millisecond}
	if len(*slept) != len(want) {
		t.Fatalf("slept %v, want %v", *slept, want)
	}
	for i, d := range want {
		if (*slept)[i] != d {
			t.Fatalf("backoff %d = %v, want %v (capped doubling)", i, (*slept)[i], d)
		}
	}
}

// A plain handler error is fatal: one attempt, the error verbatim.
func TestRetryEndpointFatalPassthrough(t *testing.T) {
	re, calls, slept := newRetryPair(t, 100, errors.New("schema violation"), RetryPolicy{MaxAttempts: 5})
	_, err := re.Call("srv", Message{})
	if err == nil || !strings.Contains(err.Error(), "schema violation") {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 1 || len(*slept) != 0 {
		t.Fatalf("fatal error retried: %d calls, %d sleeps", calls.Load(), len(*slept))
	}
}

// Exhausting MaxAttempts surfaces the attempt count and the last error.
func TestRetryEndpointExhaustion(t *testing.T) {
	re, calls, _ := newRetryPair(t, 100, MarkRetryable(errors.New("still down")), RetryPolicy{MaxAttempts: 3})
	_, err := re.Call("srv", Message{})
	if err == nil || !strings.Contains(err.Error(), "3 attempts") || !strings.Contains(err.Error(), "still down") {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("%d calls, want 3", calls.Load())
	}
	// The aggregate error is itself retryable (the cause was transient).
	if !IsRetryable(err) {
		t.Fatal("exhaustion error should stay retryable")
	}
}

// TestMemCallTimeout: a deadline on the in-memory transport returns
// ErrTimeout while the handler keeps running — the "response lost, side
// effects applied" hazard the PS idempotency envelope exists for.
func TestMemCallTimeout(t *testing.T) {
	net := NewMemNetwork()
	defer net.Close()
	srv, _ := net.Endpoint("srv")
	release := make(chan struct{})
	done := make(chan struct{})
	srv.Handle(func(string, Message) (Message, error) {
		<-release
		close(done)
		return Message{}, nil
	})
	cl, _ := net.Endpoint("cl")
	ct, ok := cl.(CallerWithTimeout)
	if !ok {
		t.Fatal("mem endpoint lost CallTimeout support")
	}
	_, err := ct.CallTimeout("srv", Message{}, 20*time.Millisecond)
	if !errors.Is(err, ErrTimeout) || !IsRetryable(err) {
		t.Fatalf("err = %v, want retryable ErrTimeout", err)
	}
	close(release) // the handler was still running; let it finish
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("handler did not keep running after the caller timed out")
	}
}

// TestTCPRetryableFlagCrossesWire: the retryable marking must survive the
// TCP error frame in both states.
func TestTCPRetryableFlagCrossesWire(t *testing.T) {
	a, _ := NewTCPEndpoint("a", "127.0.0.1:0")
	defer a.Close()
	b, _ := NewTCPEndpoint("b", "127.0.0.1:0")
	defer b.Close()
	a.AddPeer("b", b.Addr())
	b.Handle(func(_ string, req Message) (Message, error) {
		if req.Op == 1 {
			return Message{}, MarkRetryable(errors.New("transient"))
		}
		return Message{}, errors.New("permanent")
	})
	if _, err := a.Call("b", Message{Op: 1}); err == nil || !IsRetryable(err) {
		t.Fatalf("transient error lost its retryable flag: %v", err)
	}
	if _, err := a.Call("b", Message{Op: 2}); err == nil || IsRetryable(err) {
		t.Fatalf("permanent error gained a retryable flag: %v", err)
	}
}

// TestTCPCallTimeout: per-call deadlines on the TCP transport.
func TestTCPCallTimeout(t *testing.T) {
	a, _ := NewTCPEndpoint("a", "127.0.0.1:0")
	defer a.Close()
	b, _ := NewTCPEndpoint("b", "127.0.0.1:0")
	defer b.Close()
	a.AddPeer("b", b.Addr())
	release := make(chan struct{})
	defer close(release)
	b.Handle(func(string, Message) (Message, error) {
		<-release
		return Message{}, nil
	})
	_, err := a.CallTimeout("b", Message{}, 30*time.Millisecond)
	if !errors.Is(err, ErrTimeout) || !IsRetryable(err) {
		t.Fatalf("err = %v, want retryable ErrTimeout", err)
	}
}

// TestTCPDialFailureIsRetryable: a peer that is not listening yet is a
// transient condition.
func TestTCPDialFailureIsRetryable(t *testing.T) {
	a, _ := NewTCPEndpoint("a", "127.0.0.1:0")
	defer a.Close()
	b, _ := NewTCPEndpoint("b", "127.0.0.1:0")
	addr := b.Addr()
	b.Close() // nothing listens there anymore
	a.AddPeer("b", addr)
	_, err := a.Call("b", Message{})
	if err == nil || !errors.Is(err, ErrUnavailable) || !IsRetryable(err) {
		t.Fatalf("err = %v, want retryable ErrUnavailable", err)
	}
}
