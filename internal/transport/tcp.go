package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// frame kinds
const (
	kindRequest  = 1
	kindResponse = 2
	kindError    = 3
)

// maxFrame caps a single frame at 1 GiB to reject corrupt length prefixes.
const maxFrame = 1 << 30

// TCPEndpoint is a network node reachable over TCP. Frames are
// length-prefixed: u32 length, then u64 request id, u8 kind, u8 op,
// length-prefixed sender name, and the body.
type TCPEndpoint struct {
	name     string
	listener net.Listener
	handler  atomic.Value // Handler

	mu       sync.Mutex
	peers    map[string]string // name -> address
	conns    map[string]*tcpConn
	allConns map[*tcpConn]struct{} // dialed and accepted, for Close
	pending  map[uint64]chan Message
	nextID   uint64
	closed   bool

	wg sync.WaitGroup
}

type tcpConn struct {
	c       net.Conn
	writeMu sync.Mutex
}

// NewTCPEndpoint starts a listener on listenAddr (e.g. "127.0.0.1:0") and
// returns the endpoint. Addr reports the bound address for peer exchange.
func NewTCPEndpoint(name, listenAddr string) (*TCPEndpoint, error) {
	l, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	e := &TCPEndpoint{
		name:     name,
		listener: l,
		peers:    make(map[string]string),
		conns:    make(map[string]*tcpConn),
		allConns: make(map[*tcpConn]struct{}),
		pending:  make(map[uint64]chan Message),
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr returns the bound listen address.
func (e *TCPEndpoint) Addr() string { return e.listener.Addr().String() }

// Name implements Endpoint.
func (e *TCPEndpoint) Name() string { return e.name }

// Handle implements Endpoint.
func (e *TCPEndpoint) Handle(h Handler) { e.handler.Store(h) }

// AddPeer registers the address of a named peer.
func (e *TCPEndpoint) AddPeer(name, addr string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.peers[name] = addr
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		c, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		tc := &tcpConn{c: c}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			c.Close()
			continue
		}
		e.allConns[tc] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.readLoop(tc)
		}()
	}
}

// conn returns (dialing if necessary) the connection to a peer.
func (e *TCPEndpoint) conn(to string) (*tcpConn, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	if tc := e.conns[to]; tc != nil {
		e.mu.Unlock()
		return tc, nil
	}
	addr, ok := e.peers[to]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownEndpoint, to)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s (%s): %w", to, addr, err)
	}
	tc := &tcpConn{c: c}
	e.mu.Lock()
	if existing := e.conns[to]; existing != nil {
		e.mu.Unlock()
		c.Close()
		return existing, nil
	}
	e.conns[to] = tc
	e.allConns[tc] = struct{}{}
	e.mu.Unlock()
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		e.readLoop(tc)
	}()
	return tc, nil
}

// Call implements Endpoint.
func (e *TCPEndpoint) Call(to string, req Message) (Message, error) {
	tc, err := e.conn(to)
	if err != nil {
		return Message{}, err
	}
	id := atomic.AddUint64(&e.nextID, 1)
	ch := make(chan Message, 1)
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return Message{}, ErrClosed
	}
	e.pending[id] = ch
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.pending, id)
		e.mu.Unlock()
	}()

	if err := writeFrame(tc, id, kindRequest, req.Op, e.name, req.Body); err != nil {
		return Message{}, err
	}
	resp, ok := <-ch
	if !ok {
		return Message{}, ErrClosed
	}
	if resp.Op == 0 && len(resp.Body) > 0 && resp.Body[0] == kindError {
		return Message{}, fmt.Errorf("transport: remote error from %s: %s", to, resp.Body[1:])
	}
	return resp, nil
}

func (e *TCPEndpoint) readLoop(tc *tcpConn) {
	defer func() {
		tc.c.Close()
		e.mu.Lock()
		delete(e.allConns, tc)
		e.mu.Unlock()
	}()
	for {
		id, kind, op, from, body, err := readFrame(tc.c)
		if err != nil {
			e.failPending()
			return
		}
		switch kind {
		case kindRequest:
			go e.dispatch(tc, id, op, from, body)
		case kindResponse, kindError:
			e.mu.Lock()
			ch := e.pending[id]
			e.mu.Unlock()
			if ch != nil {
				if kind == kindError {
					ch <- Message{Op: 0, Body: append([]byte{kindError}, body...)}
				} else {
					ch <- Message{Op: op, Body: body}
				}
			}
		}
	}
}

func (e *TCPEndpoint) dispatch(tc *tcpConn, id uint64, op uint8, from string, body []byte) {
	h, _ := e.handler.Load().(Handler)
	if h == nil {
		writeFrame(tc, id, kindError, 0, e.name, []byte("no handler"))
		return
	}
	resp, err := h(from, Message{Op: op, Body: body})
	if err != nil {
		writeFrame(tc, id, kindError, 0, e.name, []byte(err.Error()))
		return
	}
	writeFrame(tc, id, kindResponse, resp.Op, e.name, resp.Body)
}

// failPending unblocks all waiting Calls after a connection failure.
func (e *TCPEndpoint) failPending() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for id, ch := range e.pending {
		close(ch)
		delete(e.pending, id)
	}
}

// Close implements Endpoint.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := make([]*tcpConn, 0, len(e.allConns))
	for tc := range e.allConns {
		conns = append(conns, tc)
	}
	e.conns = make(map[string]*tcpConn)
	e.mu.Unlock()

	e.listener.Close()
	for _, tc := range conns {
		tc.c.Close()
	}
	e.failPending()
	e.wg.Wait()
	return nil
}

func writeFrame(tc *tcpConn, id uint64, kind, op uint8, from string, body []byte) error {
	n := 8 + 1 + 1 + 4 + len(from) + len(body)
	buf := make([]byte, 4+n)
	binary.LittleEndian.PutUint32(buf, uint32(n))
	binary.LittleEndian.PutUint64(buf[4:], id)
	buf[12] = kind
	buf[13] = op
	binary.LittleEndian.PutUint32(buf[14:], uint32(len(from)))
	copy(buf[18:], from)
	copy(buf[18+len(from):], body)
	tc.writeMu.Lock()
	defer tc.writeMu.Unlock()
	_, err := tc.c.Write(buf)
	return err
}

func readFrame(c net.Conn) (id uint64, kind, op uint8, from string, body []byte, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(c, hdr[:]); err != nil {
		return
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 18-4 || n > maxFrame {
		err = fmt.Errorf("transport: bad frame length %d", n)
		return
	}
	buf := make([]byte, n)
	if _, err = io.ReadFull(c, buf); err != nil {
		return
	}
	id = binary.LittleEndian.Uint64(buf)
	kind = buf[8]
	op = buf[9]
	fl := binary.LittleEndian.Uint32(buf[10:])
	if 14+int(fl) > len(buf) {
		err = fmt.Errorf("transport: bad name length %d", fl)
		return
	}
	from = string(buf[14 : 14+fl])
	body = buf[14+fl:]
	return
}
