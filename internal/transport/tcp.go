package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// frame kinds
const (
	kindRequest  = 1
	kindResponse = 2
	kindError    = 3
)

// error-frame flag bytes: the first body byte of a kindError frame says
// whether the remote error was retryable, so transient-vs-fatal
// classification survives the wire.
const (
	errFlagFatal     = 0
	errFlagRetryable = 1
)

// maxFrame caps a single frame at 1 GiB to reject corrupt length prefixes.
const maxFrame = 1 << 30

// TCPEndpoint is a network node reachable over TCP. Frames are
// length-prefixed: u32 length, then u64 request id, u8 kind, u8 op,
// length-prefixed sender name, and the body.
type TCPEndpoint struct {
	name     string
	listener net.Listener
	handler  atomic.Value // Handler

	// WriteTimeout, when positive, bounds each frame write; a peer that
	// stops draining its socket fails the write instead of wedging the
	// sender forever. Set before the first Call.
	WriteTimeout time.Duration
	// ReadTimeout, when positive, bounds reading the remainder of a frame
	// once its length prefix has arrived. Idle connections are unaffected
	// (blocking barrier RPCs keep connections legitimately quiet), but a
	// peer dying mid-frame is detected instead of hanging the read loop.
	ReadTimeout time.Duration

	mu       sync.Mutex
	peers    map[string]string // name -> address
	conns    map[string]*tcpConn
	allConns map[*tcpConn]struct{} // dialed and accepted, for Close
	pending  map[uint64]chan callResult
	nextID   uint64
	closed   bool

	wg sync.WaitGroup
}

// callResult is what the read loop hands back to a waiting Call.
type callResult struct {
	msg Message
	err error
}

type tcpConn struct {
	c       net.Conn
	writeMu sync.Mutex
}

// NewTCPEndpoint starts a listener on listenAddr (e.g. "127.0.0.1:0") and
// returns the endpoint. Addr reports the bound address for peer exchange.
func NewTCPEndpoint(name, listenAddr string) (*TCPEndpoint, error) {
	l, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	e := &TCPEndpoint{
		name:     name,
		listener: l,
		peers:    make(map[string]string),
		conns:    make(map[string]*tcpConn),
		allConns: make(map[*tcpConn]struct{}),
		pending:  make(map[uint64]chan callResult),
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr returns the bound listen address.
func (e *TCPEndpoint) Addr() string { return e.listener.Addr().String() }

// Name implements Endpoint.
func (e *TCPEndpoint) Name() string { return e.name }

// Handle implements Endpoint.
func (e *TCPEndpoint) Handle(h Handler) { e.handler.Store(h) }

// AddPeer registers the address of a named peer.
func (e *TCPEndpoint) AddPeer(name, addr string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.peers[name] = addr
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		c, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		tc := &tcpConn{c: c}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			c.Close()
			continue
		}
		e.allConns[tc] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.readLoop(tc)
		}()
	}
}

// conn returns (dialing if necessary) the connection to a peer. Dial
// failures are retryable: the peer may be restarting.
func (e *TCPEndpoint) conn(to string) (*tcpConn, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	if tc := e.conns[to]; tc != nil {
		e.mu.Unlock()
		return tc, nil
	}
	addr, ok := e.peers[to]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownEndpoint, to)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s (%s): %v", ErrUnavailable, to, addr, err)
	}
	tc := &tcpConn{c: c}
	e.mu.Lock()
	if existing := e.conns[to]; existing != nil {
		e.mu.Unlock()
		c.Close()
		return existing, nil
	}
	e.conns[to] = tc
	e.allConns[tc] = struct{}{}
	e.mu.Unlock()
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		e.readLoop(tc)
	}()
	return tc, nil
}

// Call implements Endpoint.
func (e *TCPEndpoint) Call(to string, req Message) (Message, error) {
	return e.CallTimeout(to, req, 0)
}

// CallTimeout implements CallerWithTimeout: like Call but failing with a
// retryable ErrTimeout if no response arrives within the deadline. A
// timeout only abandons the response — the request may still execute on
// the peer, so retried operations must be idempotent.
func (e *TCPEndpoint) CallTimeout(to string, req Message, timeout time.Duration) (Message, error) {
	start := beginCall()
	resp, err := e.callTimeout(to, req, timeout)
	finishCall(start, err)
	return resp, err
}

func (e *TCPEndpoint) callTimeout(to string, req Message, timeout time.Duration) (Message, error) {
	tc, err := e.conn(to)
	if err != nil {
		return Message{}, err
	}
	id := atomic.AddUint64(&e.nextID, 1)
	ch := make(chan callResult, 1)
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return Message{}, ErrClosed
	}
	e.pending[id] = ch
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.pending, id)
		e.mu.Unlock()
	}()

	if err := e.writeFrame(tc, id, kindRequest, req.Op, e.name, req.Body); err != nil {
		return Message{}, fmt.Errorf("%w: write to %s: %v", ErrUnavailable, to, err)
	}
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case res := <-ch:
		if res.err != nil {
			return Message{}, res.err
		}
		return res.msg, nil
	case <-timer:
		return Message{}, timeoutError(to)
	}
}

func (e *TCPEndpoint) readLoop(tc *tcpConn) {
	defer func() {
		tc.c.Close()
		e.mu.Lock()
		delete(e.allConns, tc)
		e.mu.Unlock()
	}()
	for {
		id, kind, op, from, body, err := e.readFrame(tc.c)
		if err != nil {
			e.failPending()
			return
		}
		switch kind {
		case kindRequest:
			go e.dispatch(tc, id, op, from, body)
		case kindResponse, kindError:
			e.mu.Lock()
			ch := e.pending[id]
			delete(e.pending, id)
			e.mu.Unlock()
			if ch != nil {
				if kind == kindError {
					ch <- callResult{err: decodeRemoteError(from, body)}
				} else {
					ch <- callResult{msg: Message{Op: op, Body: body}}
				}
			}
		}
	}
}

// decodeRemoteError rebuilds a handler error from an error frame, restoring
// its retryable classification.
func decodeRemoteError(from string, body []byte) error {
	flag, msg := byte(errFlagFatal), ""
	if len(body) > 0 {
		flag, msg = body[0], string(body[1:])
	}
	err := fmt.Errorf("transport: remote error from %s: %s", from, msg)
	if flag == errFlagRetryable {
		return MarkRetryable(err)
	}
	return err
}

func (e *TCPEndpoint) dispatch(tc *tcpConn, id uint64, op uint8, from string, body []byte) {
	h, _ := e.handler.Load().(Handler)
	if h == nil {
		e.writeErrorFrame(tc, id, fmt.Errorf("no handler"))
		return
	}
	resp, err := h(from, Message{Op: op, Body: body})
	if err != nil {
		e.writeErrorFrame(tc, id, err)
		return
	}
	e.writeFrame(tc, id, kindResponse, resp.Op, e.name, resp.Body)
}

// writeErrorFrame sends a handler error with its retryable flag.
func (e *TCPEndpoint) writeErrorFrame(tc *tcpConn, id uint64, err error) {
	flag := byte(errFlagFatal)
	if IsRetryable(err) {
		flag = errFlagRetryable
	}
	body := append([]byte{flag}, err.Error()...)
	e.writeFrame(tc, id, kindError, 0, e.name, body)
}

// failPending unblocks all waiting Calls after a connection failure with a
// retryable error — the peer may come back.
func (e *TCPEndpoint) failPending() {
	e.mu.Lock()
	defer e.mu.Unlock()
	err := error(ErrClosed)
	if !e.closed {
		err = fmt.Errorf("%w: connection lost", ErrUnavailable)
	}
	for id, ch := range e.pending {
		ch <- callResult{err: err}
		delete(e.pending, id)
	}
}

// Close implements Endpoint.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := make([]*tcpConn, 0, len(e.allConns))
	for tc := range e.allConns {
		conns = append(conns, tc)
	}
	e.conns = make(map[string]*tcpConn)
	e.mu.Unlock()

	e.listener.Close()
	for _, tc := range conns {
		tc.c.Close()
	}
	e.failPending()
	e.wg.Wait()
	return nil
}

func (e *TCPEndpoint) writeFrame(tc *tcpConn, id uint64, kind, op uint8, from string, body []byte) error {
	n := 8 + 1 + 1 + 4 + len(from) + len(body)
	buf := make([]byte, 4+n)
	binary.LittleEndian.PutUint32(buf, uint32(n))
	binary.LittleEndian.PutUint64(buf[4:], id)
	buf[12] = kind
	buf[13] = op
	binary.LittleEndian.PutUint32(buf[14:], uint32(len(from)))
	copy(buf[18:], from)
	copy(buf[18+len(from):], body)
	tc.writeMu.Lock()
	defer tc.writeMu.Unlock()
	if e.WriteTimeout > 0 {
		tc.c.SetWriteDeadline(time.Now().Add(e.WriteTimeout))
		defer tc.c.SetWriteDeadline(time.Time{})
	}
	_, err := tc.c.Write(buf)
	return err
}

func (e *TCPEndpoint) readFrame(c net.Conn) (id uint64, kind, op uint8, from string, body []byte, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(c, hdr[:]); err != nil {
		return
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 18-4 || n > maxFrame {
		err = fmt.Errorf("transport: bad frame length %d", n)
		return
	}
	// The frame has started arriving: the rest must land within the read
	// timeout or the peer is considered dead mid-frame.
	if e.ReadTimeout > 0 {
		c.SetReadDeadline(time.Now().Add(e.ReadTimeout))
		defer c.SetReadDeadline(time.Time{})
	}
	buf := make([]byte, n)
	if _, err = io.ReadFull(c, buf); err != nil {
		return
	}
	id = binary.LittleEndian.Uint64(buf)
	kind = buf[8]
	op = buf[9]
	fl := binary.LittleEndian.Uint32(buf[10:])
	if 14+int(fl) > len(buf) {
		err = fmt.Errorf("transport: bad name length %d", fl)
		return
	}
	from = string(buf[14 : 14+fl])
	body = buf[14+fl:]
	return
}
