package transport

import (
	"errors"
	"sync"
	"time"

	"dimboost/internal/obs"
)

// transportMetrics are the RPC-substrate instruments, shared by the
// in-memory and TCP endpoints. They live in the process-wide obs registry;
// instruments are resolved once and recording is an atomic add, so the
// per-call overhead is negligible next to even an in-memory handler run.
type transportMetrics struct {
	calls    *obs.Counter
	errors   *obs.Counter
	retries  *obs.Counter
	timeouts *obs.Counter
	inflight *obs.Gauge
	latency  *obs.Histogram
}

var (
	tmOnce sync.Once
	tm     *transportMetrics
)

func metrics() *transportMetrics {
	tmOnce.Do(func() {
		r := obs.Default()
		tm = &transportMetrics{
			calls:    r.Counter("dimboost_transport_calls_total", "Completed RPC calls."),
			errors:   r.Counter("dimboost_transport_call_errors_total", "RPC calls that returned an error."),
			retries:  r.Counter("dimboost_transport_retries_total", "Retry attempts issued by RetryEndpoint after a retryable failure."),
			timeouts: r.Counter("dimboost_transport_timeouts_total", "RPC calls that exceeded their per-call deadline."),
			inflight: r.Gauge("dimboost_transport_inflight", "RPC calls currently awaiting a response."),
			latency:  r.Histogram("dimboost_transport_rpc_seconds", "RPC round-trip latency.", nil),
		}
	})
	return tm
}

// beginCall marks an outgoing RPC; finishCall closes it out. Instrumented
// at the concrete endpoints (mem, TCP), never at wrappers, so a retried
// call counts once per attempt and exactly once per attempt.
func beginCall() time.Time {
	metrics().inflight.Inc()
	return time.Now()
}

func finishCall(start time.Time, err error) {
	m := metrics()
	m.inflight.Dec()
	m.latency.ObserveSince(start)
	m.calls.Inc()
	if err != nil {
		m.errors.Inc()
		if errors.Is(err, ErrTimeout) {
			m.timeouts.Inc()
		}
	}
}
