package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// CallerWithTimeout is implemented by endpoints that support per-call
// deadlines. RetryEndpoint uses it when its policy sets a CallTimeout; both
// the TCP and in-memory endpoints implement it.
type CallerWithTimeout interface {
	CallTimeout(to string, req Message, timeout time.Duration) (Message, error)
}

// RetryPolicy shapes RetryEndpoint's capped exponential backoff.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first; values
	// below 1 select the default. 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further retry
	// doubles it up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff.
	MaxDelay time.Duration
	// Jitter randomizes each delay by ±Jitter fraction (0..1) so a fleet of
	// retrying workers does not hammer a recovering server in lockstep.
	Jitter float64
	// CallTimeout, when positive, bounds each attempt via CallerWithTimeout.
	// Endpoints without deadline support fall back to unbounded Call.
	CallTimeout time.Duration
	// Seed seeds the jitter RNG; 0 uses a fixed default, keeping retry
	// timing reproducible in tests.
	Seed int64
}

// DefaultRetryPolicy returns the policy the cluster runtime uses for
// worker→server calls: 5 attempts, 10ms base delay doubling to a 2s cap,
// 25% jitter, no per-attempt deadline.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Jitter:      0.25,
	}
}

// withDefaults fills unset fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts < 1 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// RetryEndpoint wraps an Endpoint and retries retryable call failures (see
// IsRetryable) with capped exponential backoff plus jitter. Fatal errors —
// handler/application errors, protocol violations — propagate immediately.
// Retried requests are resent byte-identical, so the receiver can deduplicate
// them by whatever sequence tags the payload carries.
type RetryEndpoint struct {
	inner  Endpoint
	policy RetryPolicy

	// OnRetry, when set, observes each retry (for logs and tests).
	OnRetry func(to string, attempt int, err error)
	// sleep is swappable for tests.
	sleep func(time.Duration)

	mu  sync.Mutex
	rng *rand.Rand
}

// NewRetryEndpoint wraps an endpoint with the given policy; zero-valued
// policy fields take defaults.
func NewRetryEndpoint(inner Endpoint, policy RetryPolicy) *RetryEndpoint {
	p := policy.withDefaults()
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	return &RetryEndpoint{
		inner:  inner,
		policy: p,
		sleep:  time.Sleep,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Policy returns the effective (defaulted) policy.
func (e *RetryEndpoint) Policy() RetryPolicy { return e.policy }

// Name implements Endpoint.
func (e *RetryEndpoint) Name() string { return e.inner.Name() }

// Handle implements Endpoint.
func (e *RetryEndpoint) Handle(h Handler) { e.inner.Handle(h) }

// Close implements Endpoint.
func (e *RetryEndpoint) Close() error { return e.inner.Close() }

// Inner returns the wrapped endpoint.
func (e *RetryEndpoint) Inner() Endpoint { return e.inner }

// Call implements Endpoint: it attempts the call up to MaxAttempts times,
// backing off between retryable failures.
func (e *RetryEndpoint) Call(to string, req Message) (Message, error) {
	var last error
	for attempt := 1; ; attempt++ {
		resp, err := e.callOnce(to, req)
		if err == nil {
			return resp, nil
		}
		if !IsRetryable(err) {
			return Message{}, err
		}
		last = err
		if attempt >= e.policy.MaxAttempts {
			break
		}
		metrics().retries.Inc()
		if e.OnRetry != nil {
			e.OnRetry(to, attempt, err)
		}
		e.sleep(e.backoff(attempt))
	}
	return Message{}, fmt.Errorf("transport: %d attempts to %q failed: %w", e.policy.MaxAttempts, to, last)
}

func (e *RetryEndpoint) callOnce(to string, req Message) (Message, error) {
	if e.policy.CallTimeout > 0 {
		if ct, ok := e.inner.(CallerWithTimeout); ok {
			return ct.CallTimeout(to, req, e.policy.CallTimeout)
		}
	}
	return e.inner.Call(to, req)
}

// backoff returns the sleep before retry #attempt (1-based): base·2^(a−1)
// capped at MaxDelay, jittered by ±Jitter.
func (e *RetryEndpoint) backoff(attempt int) time.Duration {
	d := e.policy.BaseDelay
	for i := 1; i < attempt && d < e.policy.MaxDelay; i++ {
		d *= 2
	}
	if d > e.policy.MaxDelay {
		d = e.policy.MaxDelay
	}
	if e.policy.Jitter > 0 {
		e.mu.Lock()
		f := 1 + e.policy.Jitter*(2*e.rng.Float64()-1)
		e.mu.Unlock()
		d = time.Duration(float64(d) * f)
	}
	if d < 0 {
		d = 0
	}
	return d
}
