package transport

import (
	"errors"
	"fmt"
)

// Typed error classes. Cluster code distinguishes transient failures (worth
// retrying against the same peer) from fatal ones (protocol violations,
// application errors) — the distinction Angel's PS client makes when it
// re-sends a request after a server hiccup.
var (
	// ErrTimeout marks a call that exceeded its deadline. Retryable: the
	// request may or may not have been processed, so retried operations must
	// be idempotent (the ps layer tags requests with sequence numbers for
	// exactly this reason).
	ErrTimeout = errors.New("transport: call timed out")
	// ErrUnavailable marks a peer that could not be reached or whose
	// connection broke mid-call. Retryable.
	ErrUnavailable = errors.New("transport: peer unavailable")
)

// retryable wraps an error to mark it as transient.
type retryable struct{ err error }

func (e *retryable) Error() string   { return e.err.Error() }
func (e *retryable) Unwrap() error   { return e.err }
func (e *retryable) Retryable() bool { return true }

// MarkRetryable marks an error as transient so IsRetryable reports true.
// Marking nil returns nil.
func MarkRetryable(err error) error {
	if err == nil {
		return nil
	}
	if IsRetryable(err) {
		return err
	}
	return &retryable{err: err}
}

// IsRetryable reports whether an error is transient: a timeout, an
// unavailable peer, or anything marked via MarkRetryable (fault injectors
// mark their synthetic errors the same way). Application/handler errors are
// not retryable unless explicitly marked.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrTimeout) || errors.Is(err, ErrUnavailable) {
		return true
	}
	var r interface{ Retryable() bool }
	return errors.As(err, &r) && r.Retryable()
}

// timeoutError constructs a retryable deadline error for a call to a peer.
func timeoutError(to string) error {
	return fmt.Errorf("%w: call to %q", ErrTimeout, to)
}
