// Package transport provides the RPC substrate the DimBoost cluster runs
// on: named endpoints exchanging request/response messages. Two
// implementations exist — an in-memory network with per-node traffic
// metering (used by the in-process cluster runtime and the communication
// cost experiments) and a TCP network with length-prefixed frames for
// genuinely distributed processes (the role Netty plays in the paper's
// implementation, §7.1).
package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Message is one RPC payload: an operation code plus an opaque wire-encoded
// body.
type Message struct {
	Op   uint8
	Body []byte
}

// Size returns the accounted wire size of the message.
func (m Message) Size() int64 { return int64(len(m.Body)) + 1 }

// Handler processes one incoming request and produces a response. Handlers
// run concurrently and must be safe for concurrent use; a handler may block
// (the master's barrier does).
type Handler func(from string, req Message) (Message, error)

// Endpoint is one named node on a network.
type Endpoint interface {
	// Name returns the endpoint's network-unique name.
	Name() string
	// Handle installs the request handler. It must be called before any
	// peer Calls this endpoint.
	Handle(h Handler)
	// Call sends a request to the named peer and waits for its response.
	Call(to string, req Message) (Message, error)
	// Close releases the endpoint.
	Close() error
}

// Network creates endpoints that can reach each other by name.
type Network interface {
	// Endpoint registers a new named endpoint.
	Endpoint(name string) (Endpoint, error)
	// Close shuts down the network and all endpoints.
	Close() error
}

// Counter accumulates one node's traffic statistics.
type Counter struct {
	BytesSent, BytesRecv int64
	MsgsSent, MsgsRecv   int64
}

// Meter tracks per-node traffic for the communication cost model. All
// methods are safe for concurrent use.
type Meter struct {
	mu    sync.Mutex
	nodes map[string]*counter
}

type counter struct {
	bytesSent, bytesRecv atomic.Int64
	msgsSent, msgsRecv   atomic.Int64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter { return &Meter{nodes: make(map[string]*counter)} }

func (m *Meter) node(name string) *counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.nodes[name]
	if c == nil {
		c = &counter{}
		m.nodes[name] = c
	}
	return c
}

// Record accounts one request/response exchange.
func (m *Meter) Record(from, to string, reqBytes, respBytes int64) {
	f, t := m.node(from), m.node(to)
	f.bytesSent.Add(reqBytes)
	f.bytesRecv.Add(respBytes)
	f.msgsSent.Add(1)
	t.bytesRecv.Add(reqBytes)
	t.bytesSent.Add(respBytes)
	t.msgsRecv.Add(1)
}

// Node returns the counters of one node.
func (m *Meter) Node(name string) Counter {
	c := m.node(name)
	return Counter{
		BytesSent: c.bytesSent.Load(),
		BytesRecv: c.bytesRecv.Load(),
		MsgsSent:  c.msgsSent.Load(),
		MsgsRecv:  c.msgsRecv.Load(),
	}
}

// Totals sums counters over every node. Because both directions of every
// exchange are recorded on both nodes, total bytes are double-counted
// relative to the wire; comparisons between strategies are unaffected.
func (m *Meter) Totals() Counter {
	m.mu.Lock()
	names := make([]string, 0, len(m.nodes))
	for n := range m.nodes {
		names = append(names, n)
	}
	m.mu.Unlock()
	var out Counter
	for _, n := range names {
		c := m.Node(n)
		out.BytesSent += c.BytesSent
		out.BytesRecv += c.BytesRecv
		out.MsgsSent += c.MsgsSent
		out.MsgsRecv += c.MsgsRecv
	}
	return out
}

// MaxPerNode returns the maxima over nodes, the quantities the cost model
// multiplies by β and α.
func (m *Meter) MaxPerNode() Counter {
	m.mu.Lock()
	names := make([]string, 0, len(m.nodes))
	for n := range m.nodes {
		names = append(names, n)
	}
	m.mu.Unlock()
	var out Counter
	for _, n := range names {
		c := m.Node(n)
		if c.BytesSent > out.BytesSent {
			out.BytesSent = c.BytesSent
		}
		if c.BytesRecv > out.BytesRecv {
			out.BytesRecv = c.BytesRecv
		}
		if c.MsgsSent > out.MsgsSent {
			out.MsgsSent = c.MsgsSent
		}
		if c.MsgsRecv > out.MsgsRecv {
			out.MsgsRecv = c.MsgsRecv
		}
	}
	return out
}

// Reset zeroes all counters.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nodes = make(map[string]*counter)
}

// Common errors.
var (
	ErrClosed          = errors.New("transport: endpoint closed")
	ErrUnknownEndpoint = errors.New("transport: unknown endpoint")
)

// MemNetwork is an in-process Network: calls invoke the target handler
// directly on the caller's goroutine. All traffic is metered.
type MemNetwork struct {
	mu        sync.RWMutex
	endpoints map[string]*memEndpoint
	meter     *Meter
	closed    bool
}

// NewMemNetwork returns an empty in-memory network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{endpoints: make(map[string]*memEndpoint), meter: NewMeter()}
}

// Meter exposes the network's traffic meter.
func (n *MemNetwork) Meter() *Meter { return n.meter }

// Endpoint implements Network.
func (n *MemNetwork) Endpoint(name string) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, dup := n.endpoints[name]; dup {
		return nil, fmt.Errorf("transport: duplicate endpoint %q", name)
	}
	ep := &memEndpoint{name: name, net: n}
	n.endpoints[name] = ep
	return ep, nil
}

// Close implements Network. Endpoints created earlier are closed too, so a
// Call through a cached endpoint (or cached handler reference) fails with
// ErrClosed instead of silently succeeding against a dead network.
func (n *MemNetwork) Close() error {
	n.mu.Lock()
	eps := make([]*memEndpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.closed = true
	n.endpoints = make(map[string]*memEndpoint)
	n.mu.Unlock()
	for _, ep := range eps {
		ep.mu.Lock()
		ep.closed = true
		ep.mu.Unlock()
	}
	return nil
}

type memEndpoint struct {
	name    string
	net     *MemNetwork
	mu      sync.RWMutex
	handler Handler
	closed  bool
}

func (e *memEndpoint) Name() string { return e.name }

func (e *memEndpoint) Handle(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

func (e *memEndpoint) Call(to string, req Message) (Message, error) {
	start := beginCall()
	resp, err := e.call(to, req)
	finishCall(start, err)
	return resp, err
}

func (e *memEndpoint) call(to string, req Message) (Message, error) {
	h, err := e.target(to)
	if err != nil {
		return Message{}, err
	}
	resp, err := h(e.name, req)
	if err != nil {
		return Message{}, err
	}
	e.net.meter.Record(e.name, to, req.Size(), resp.Size())
	return resp, nil
}

// target resolves the peer's handler, checking endpoint and network
// liveness.
func (e *memEndpoint) target(to string) (Handler, error) {
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	e.net.mu.RLock()
	netClosed := e.net.closed
	target := e.net.endpoints[to]
	e.net.mu.RUnlock()
	if netClosed {
		return nil, ErrClosed
	}
	if target == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownEndpoint, to)
	}
	target.mu.RLock()
	h := target.handler
	target.mu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("transport: endpoint %q has no handler", to)
	}
	return h, nil
}

// CallTimeout implements CallerWithTimeout. The handler runs on its own
// goroutine; on deadline expiry the caller gets a retryable ErrTimeout while
// the handler keeps running to completion — deliberately mirroring a real
// network's "response lost, side effects applied" hazard, which is what the
// ps layer's idempotent request tagging defends against.
func (e *memEndpoint) CallTimeout(to string, req Message, timeout time.Duration) (Message, error) {
	if timeout <= 0 {
		return e.Call(to, req)
	}
	start := beginCall()
	resp, err := e.callTimeout(to, req, timeout)
	finishCall(start, err)
	return resp, err
}

func (e *memEndpoint) callTimeout(to string, req Message, timeout time.Duration) (Message, error) {
	h, err := e.target(to)
	if err != nil {
		return Message{}, err
	}
	type result struct {
		resp Message
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := h(e.name, req)
		done <- result{resp, err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-done:
		if r.err != nil {
			return Message{}, r.err
		}
		e.net.meter.Record(e.name, to, req.Size(), r.resp.Size())
		return r.resp, nil
	case <-timer.C:
		return Message{}, timeoutError(to)
	}
}

func (e *memEndpoint) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.net.mu.Lock()
	delete(e.net.endpoints, e.name)
	e.net.mu.Unlock()
	return nil
}
