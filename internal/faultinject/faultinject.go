// Package faultinject wraps a transport.Network with deterministic, seeded
// fault injection: per-endpoint error, delay, response-loss, and partition
// faults on a programmable schedule. The cluster's failure tests and the
// dimboost-bench -fault-spec flag both use it to exercise the retry,
// idempotency, and checkpoint machinery against the kinds of hiccups shared
// clusters produce (§7 of the paper trains on busy Tencent machines; Angel's
// PS layer absorbs the resulting faults — this package lets the reproduction
// manufacture them on demand).
//
// Faults are decided on the caller side of Endpoint.Call, keyed by the
// callee name, so a rule targeting "server-1" affects every caller of
// server-1 regardless of which endpoint the caller obtained. Decisions use
// one seeded RNG stream, making a single-goroutine call sequence exactly
// reproducible; with concurrent callers the stream is still deterministic
// but its interleaving follows the scheduler.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"dimboost/internal/transport"
)

// ErrInjected is the root of every synthetic fault error.
var ErrInjected = errors.New("faultinject: injected fault")

// Rule describes one fault source. A rule matches calls by callee endpoint
// name and (optionally) message op, activates after `After` matching calls,
// and stays active for `Count` further calls (0 = forever). While active it
// injects, per matching call:
//
//   - with probability ErrRate: an error before delivery (the request is
//     lost; the handler never runs);
//   - with probability RespLossRate: delivery succeeds (the handler runs and
//     its side effects persist) but the response is discarded and the caller
//     gets an error — the scenario idempotent retry tagging exists for;
//   - a fixed Delay before delivery.
//
// Injected errors are retryable (transport.IsRetryable) unless Fatal is set.
type Rule struct {
	// Endpoint selects the callee: an exact name, a "prefix*" glob, or
	// ""/"*" for every endpoint.
	Endpoint string
	// Op restricts the rule to one message op; 0 matches all ops.
	Op uint8
	// After skips the first After matching calls before activating.
	After int
	// Count limits how many calls the active rule applies to; 0 = unlimited.
	Count int
	// ErrRate is the probability of failing a call before delivery.
	ErrRate float64
	// RespLossRate is the probability of running the handler but losing the
	// response.
	RespLossRate float64
	// Delay is added before delivery.
	Delay time.Duration
	// Fatal makes injected errors non-retryable.
	Fatal bool
}

// matches reports whether the rule applies to a call to `to` with op `op`.
func (r *Rule) matches(to string, op uint8) bool {
	if r.Op != 0 && r.Op != op {
		return false
	}
	switch {
	case r.Endpoint == "" || r.Endpoint == "*":
		return true
	case strings.HasSuffix(r.Endpoint, "*"):
		return strings.HasPrefix(to, strings.TrimSuffix(r.Endpoint, "*"))
	default:
		return r.Endpoint == to
	}
}

// Spec is a full fault schedule: a seed plus an ordered rule list. The first
// rule that decides to inject wins for a given call.
type Spec struct {
	Seed  int64
	Rules []Rule
}

// Stats counts injected faults, for assertions and bench reports.
type Stats struct {
	Errors     int64 // request-lost errors
	RespLosses int64 // delivered-but-response-lost errors
	Delays     int64
	Partitions int64 // calls refused by an active partition
}

// Network wraps an inner transport.Network with the fault schedule.
type Network struct {
	inner transport.Network
	spec  Spec

	mu          sync.Mutex
	rng         *rand.Rand
	counts      []int // per-rule matched-call counters
	partitioned map[[2]string]bool
	stats       Stats
}

// New wraps a network with a fault spec. Seed 0 selects a fixed default so
// unseeded specs are still reproducible.
func New(inner transport.Network, spec Spec) *Network {
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	return &Network{
		inner:       inner,
		spec:        spec,
		rng:         rand.New(rand.NewSource(seed)),
		counts:      make([]int, len(spec.Rules)),
		partitioned: make(map[[2]string]bool),
	}
}

// Endpoint implements transport.Network: the returned endpoint injects
// faults on its outgoing calls per the spec.
func (n *Network) Endpoint(name string) (transport.Endpoint, error) {
	ep, err := n.inner.Endpoint(name)
	if err != nil {
		return nil, err
	}
	return &endpoint{Endpoint: ep, net: n}, nil
}

// Close implements transport.Network.
func (n *Network) Close() error { return n.inner.Close() }

// Inner returns the wrapped network (e.g. to reach a MemNetwork's meter).
func (n *Network) Inner() transport.Network { return n.inner }

// Stats returns a snapshot of the injected-fault counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Partition makes calls between a and b (both directions) fail with a
// retryable error until Heal.
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitioned[pairKey(a, b)] = true
}

// Heal removes a partition installed by Partition.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitioned, pairKey(a, b))
}

// verdict is one call's fate, decided under the network lock.
type verdict struct {
	delay    time.Duration
	err      error // non-nil: fail before delivery
	loseResp bool  // deliver, then discard the response
}

// decide applies the partition set and rule schedule to one call.
func (n *Network) decide(from, to string, op uint8) verdict {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.partitioned[pairKey(from, to)] {
		n.stats.Partitions++
		return verdict{err: transport.MarkRetryable(fmt.Errorf("%w: partition between %q and %q", ErrInjected, from, to))}
	}
	var v verdict
	for i := range n.spec.Rules {
		r := &n.spec.Rules[i]
		if !r.matches(to, op) {
			continue
		}
		n.counts[i]++
		seq := n.counts[i] // 1-based position among this rule's matches
		if seq <= r.After {
			continue
		}
		if r.Count > 0 && seq > r.After+r.Count {
			continue
		}
		if r.Delay > 0 && r.Delay > v.delay {
			v.delay = r.Delay
			n.stats.Delays++
		}
		if v.err != nil || v.loseResp {
			continue // an earlier rule already decided the outcome
		}
		if r.ErrRate > 0 && n.rng.Float64() < r.ErrRate {
			err := fmt.Errorf("%w: call %s→%s op %d", ErrInjected, from, to, op)
			if !r.Fatal {
				err = transport.MarkRetryable(err)
			}
			n.stats.Errors++
			v.err = err
			continue
		}
		if r.RespLossRate > 0 && n.rng.Float64() < r.RespLossRate {
			n.stats.RespLosses++
			v.loseResp = true
		}
	}
	return v
}

// endpoint wraps one node's endpoint with the network's fault schedule.
type endpoint struct {
	transport.Endpoint
	net *Network
}

// Call implements transport.Endpoint with fault injection.
func (e *endpoint) Call(to string, req transport.Message) (transport.Message, error) {
	v := e.net.decide(e.Name(), to, req.Op)
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	if v.err != nil {
		return transport.Message{}, v.err
	}
	resp, err := e.Endpoint.Call(to, req)
	if err != nil {
		return transport.Message{}, err
	}
	if v.loseResp {
		return transport.Message{}, transport.MarkRetryable(
			fmt.Errorf("%w: response from %q lost", ErrInjected, to))
	}
	return resp, nil
}

// CallTimeout forwards per-call deadlines to the inner endpoint when it
// supports them, applying the same fault schedule.
func (e *endpoint) CallTimeout(to string, req transport.Message, timeout time.Duration) (transport.Message, error) {
	ct, ok := e.Endpoint.(transport.CallerWithTimeout)
	if !ok {
		return e.Call(to, req)
	}
	v := e.net.decide(e.Name(), to, req.Op)
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	if v.err != nil {
		return transport.Message{}, v.err
	}
	resp, err := ct.CallTimeout(to, req, timeout)
	if err != nil {
		return transport.Message{}, err
	}
	if v.loseResp {
		return transport.Message{}, transport.MarkRetryable(
			fmt.Errorf("%w: response from %q lost", ErrInjected, to))
	}
	return resp, nil
}

// ParseSpec parses the -fault-spec mini-language: semicolon-separated
// segments, each either `seed=N` or `<endpoint>:key=value,key=value,...`.
//
// Keys: err (error rate 0..1), resploss (response-loss rate 0..1), delay
// (Go duration), after (int), count (int), op (int), fatal (flag).
//
// Example:
//
//	seed=7;server-*:err=0.05,count=100;server-1:resploss=0.2,after=10,delay=2ms
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	for _, seg := range strings.Split(s, ";") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		if v, ok := strings.CutPrefix(seg, "seed="); ok {
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("faultinject: bad seed %q: %v", v, err)
			}
			spec.Seed = seed
			continue
		}
		ep, opts, ok := strings.Cut(seg, ":")
		if !ok {
			return Spec{}, fmt.Errorf("faultinject: segment %q wants <endpoint>:<options>", seg)
		}
		rule := Rule{Endpoint: strings.TrimSpace(ep)}
		for _, kv := range strings.Split(opts, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, _ := strings.Cut(kv, "=")
			var err error
			switch key {
			case "err":
				rule.ErrRate, err = parseRate(val)
			case "resploss":
				rule.RespLossRate, err = parseRate(val)
			case "delay":
				rule.Delay, err = time.ParseDuration(val)
			case "after":
				rule.After, err = strconv.Atoi(val)
			case "count":
				rule.Count, err = strconv.Atoi(val)
			case "op":
				var op int
				op, err = strconv.Atoi(val)
				if err == nil && (op < 0 || op > 255) {
					err = fmt.Errorf("op out of range")
				}
				rule.Op = uint8(op)
			case "fatal":
				if val == "" || val == "true" {
					rule.Fatal = true
				} else if val == "false" {
					rule.Fatal = false
				} else {
					err = fmt.Errorf("want fatal or fatal=true|false")
				}
			default:
				err = fmt.Errorf("unknown key")
			}
			if err != nil {
				return Spec{}, fmt.Errorf("faultinject: option %q in segment %q: %v", kv, seg, err)
			}
		}
		if rule.ErrRate == 0 && rule.RespLossRate == 0 && rule.Delay == 0 {
			return Spec{}, fmt.Errorf("faultinject: segment %q injects nothing (set err, resploss, or delay)", seg)
		}
		spec.Rules = append(spec.Rules, rule)
	}
	return spec, nil
}

func parseRate(s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("rate %v out of [0,1]", f)
	}
	return f, nil
}
