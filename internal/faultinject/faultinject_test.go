package faultinject

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"dimboost/internal/transport"
)

// newPair builds a fault network over a MemNetwork with a counting echo
// server and returns the caller endpoint plus the handled-call counter.
func newPair(t *testing.T, spec Spec) (*Network, transport.Endpoint, *atomic.Int64) {
	t.Helper()
	n := New(transport.NewMemNetwork(), spec)
	t.Cleanup(func() { n.Close() })
	srv, err := n.Endpoint("srv")
	if err != nil {
		t.Fatal(err)
	}
	var handled atomic.Int64
	srv.Handle(func(from string, req transport.Message) (transport.Message, error) {
		handled.Add(1)
		return transport.Message{Op: req.Op, Body: req.Body}, nil
	})
	cl, err := n.Endpoint("cl")
	if err != nil {
		t.Fatal(err)
	}
	return n, cl, &handled
}

func TestScheduleAfterAndCount(t *testing.T) {
	// fail calls 3 and 4 (after=2, count=2) deterministically
	spec := Spec{Rules: []Rule{{Endpoint: "srv", After: 2, Count: 2, ErrRate: 1}}}
	n, cl, handled := newPair(t, spec)
	for i := 1; i <= 6; i++ {
		_, err := cl.Call("srv", transport.Message{Op: 1})
		wantErr := i == 3 || i == 4
		if (err != nil) != wantErr {
			t.Fatalf("call %d: err = %v, want error %v", i, err, wantErr)
		}
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("call %d: error does not wrap ErrInjected: %v", i, err)
			}
			if !transport.IsRetryable(err) {
				t.Fatalf("call %d: injected error should be retryable", i)
			}
		}
	}
	if handled.Load() != 4 {
		t.Fatalf("handler ran %d times, want 4", handled.Load())
	}
	if st := n.Stats(); st.Errors != 2 {
		t.Fatalf("stats = %+v, want 2 errors", st)
	}
}

func TestFatalErrorsAreNotRetryable(t *testing.T) {
	spec := Spec{Rules: []Rule{{Endpoint: "srv", ErrRate: 1, Fatal: true}}}
	_, cl, _ := newPair(t, spec)
	_, err := cl.Call("srv", transport.Message{Op: 1})
	if err == nil || transport.IsRetryable(err) {
		t.Fatalf("want non-retryable injected error, got %v", err)
	}
}

func TestResponseLossRunsHandler(t *testing.T) {
	spec := Spec{Rules: []Rule{{Endpoint: "srv", RespLossRate: 1, Count: 1}}}
	n, cl, handled := newPair(t, spec)
	if _, err := cl.Call("srv", transport.Message{Op: 1}); err == nil || !transport.IsRetryable(err) {
		t.Fatalf("want retryable response-loss error, got %v", err)
	}
	// the side effect happened even though the caller saw an error
	if handled.Load() != 1 {
		t.Fatalf("handler ran %d times, want 1", handled.Load())
	}
	if _, err := cl.Call("srv", transport.Message{Op: 1}); err != nil {
		t.Fatalf("rule expired, call should succeed: %v", err)
	}
	if st := n.Stats(); st.RespLosses != 1 {
		t.Fatalf("stats = %+v, want 1 response loss", st)
	}
}

func TestOpFilter(t *testing.T) {
	spec := Spec{Rules: []Rule{{Endpoint: "srv", Op: 7, ErrRate: 1}}}
	_, cl, _ := newPair(t, spec)
	if _, err := cl.Call("srv", transport.Message{Op: 1}); err != nil {
		t.Fatalf("op 1 should pass: %v", err)
	}
	if _, err := cl.Call("srv", transport.Message{Op: 7}); err == nil {
		t.Fatal("op 7 should fail")
	}
}

func TestGlobMatch(t *testing.T) {
	spec := Spec{Rules: []Rule{{Endpoint: "server-*", ErrRate: 1}}}
	n := New(transport.NewMemNetwork(), spec)
	defer n.Close()
	for _, name := range []string{"server-0", "server-1", "worker-0"} {
		ep, err := n.Endpoint(name)
		if err != nil {
			t.Fatal(err)
		}
		ep.Handle(func(string, transport.Message) (transport.Message, error) {
			return transport.Message{}, nil
		})
	}
	cl, _ := n.Endpoint("cl")
	if _, err := cl.Call("worker-0", transport.Message{}); err != nil {
		t.Fatalf("worker-0 should pass: %v", err)
	}
	if _, err := cl.Call("server-1", transport.Message{}); err == nil {
		t.Fatal("server-1 should fail")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n, cl, _ := newPair(t, Spec{})
	n.Partition("cl", "srv")
	if _, err := cl.Call("srv", transport.Message{}); err == nil || !transport.IsRetryable(err) {
		t.Fatalf("partitioned call: got %v", err)
	}
	n.Heal("cl", "srv")
	if _, err := cl.Call("srv", transport.Message{}); err != nil {
		t.Fatalf("healed call: %v", err)
	}
	if st := n.Stats(); st.Partitions != 1 {
		t.Fatalf("stats = %+v, want 1 partition refusal", st)
	}
}

func TestDelayInjection(t *testing.T) {
	spec := Spec{Rules: []Rule{{Endpoint: "srv", Delay: 30 * time.Millisecond, Count: 1}}}
	_, cl, _ := newPair(t, spec)
	start := time.Now()
	if _, err := cl.Call("srv", transport.Message{}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("first call took %v, want >= 30ms delay", d)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() []bool {
		spec := Spec{Seed: 42, Rules: []Rule{{Endpoint: "srv", ErrRate: 0.5}}}
		_, cl, _ := newPair(t, spec)
		var outcomes []bool
		for i := 0; i < 40; i++ {
			_, err := cl.Call("srv", transport.Message{})
			outcomes = append(outcomes, err != nil)
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: outcomes diverge despite identical seed", i)
		}
	}
}

func TestRetryEndpointRecoversInjectedFaults(t *testing.T) {
	// two transient failures, then success — a retrying caller never sees
	// an error
	spec := Spec{Rules: []Rule{{Endpoint: "srv", ErrRate: 1, Count: 2}}}
	_, cl, handled := newPair(t, spec)
	rep := transport.NewRetryEndpoint(cl, transport.RetryPolicy{
		MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: time.Millisecond,
	})
	if _, err := rep.Call("srv", transport.Message{Op: 1}); err != nil {
		t.Fatalf("retries should absorb 2 transient faults: %v", err)
	}
	if handled.Load() != 1 {
		t.Fatalf("handler ran %d times, want 1", handled.Load())
	}
}

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("seed=7;server-*:err=0.05,count=100;server-1:resploss=0.2,after=10,delay=2ms,op=6;master:err=1,fatal")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 7 || len(spec.Rules) != 3 {
		t.Fatalf("spec = %+v", spec)
	}
	r := spec.Rules[1]
	if r.Endpoint != "server-1" || r.RespLossRate != 0.2 || r.After != 10 || r.Delay != 2*time.Millisecond || r.Op != 6 {
		t.Fatalf("rule = %+v", r)
	}
	if !spec.Rules[2].Fatal {
		t.Fatal("fatal flag lost")
	}
	for _, bad := range []string{
		"server-0",                // no options
		"server-0:err=2",          // rate out of range
		"server-0:bogus=1",        // unknown key
		"server-0:after=3",        // injects nothing
		"seed=x",                  // bad seed
		"server-0:delay=notadur",  // bad duration
		"server-0:err=1,op=9999",  // op out of range
		"server-0:err=1,fatal=no", // bad fatal value
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q should fail to parse", bad)
		}
	}
}
