package ooc

import (
	"encoding/binary"
	"os"
	"unsafe"
)

// pageSize is the mmap alignment unit; every spill segment starts on a page
// boundary so mapped regions can be reinterpreted as typed slices.
var pageSize = int64(os.Getpagesize())

// alignPage rounds n up to a page multiple.
func alignPage(n int64) int64 {
	return (n + pageSize - 1) &^ (pageSize - 1)
}

// The spill file is written in the process's native byte order and read back
// by the same process within the same run (it is unlinked scratch, never an
// interchange format), so mapped segments can be reinterpreted in place.
// Offsets inside a segment keep natural alignment: int64s at 0, int32s after
// (rows+1)×8, uint16s after nnz×4 — all fine on a page-aligned base.

func castI64(b []byte, n int) []int64 {
	if n == 0 {
		return []int64{}
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n)
}

func castI32(b []byte, n int) []int32 {
	if n == 0 {
		return []int32{}
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
}

func castU16(b []byte, n int) []uint16 {
	if n == 0 {
		return []uint16{}
	}
	return unsafe.Slice((*uint16)(unsafe.Pointer(&b[0])), n)
}

// Encode/decode helpers for the pread fallback (platforms without mmap) and
// the segment writer. binary.NativeEndian matches the cast layout above.

func putI64s(b []byte, src []int64) {
	for i, v := range src {
		binary.NativeEndian.PutUint64(b[i*8:], uint64(v))
	}
}

func putI32s(b []byte, src []int32) {
	for i, v := range src {
		binary.NativeEndian.PutUint32(b[i*4:], uint32(v))
	}
}

func putU16s(b []byte, src []uint16) {
	for i, v := range src {
		binary.NativeEndian.PutUint16(b[i*2:], v)
	}
}

func getI64s(b []byte, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.NativeEndian.Uint64(b[i*8:]))
	}
	return out
}

func getI32s(b []byte, n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.NativeEndian.Uint32(b[i*4:]))
	}
	return out
}

func getU16s(b []byte, n int) []uint16 {
	out := make([]uint16, n)
	for i := range out {
		out[i] = binary.NativeEndian.Uint16(b[i*2:])
	}
	return out
}
