//go:build linux

package ooc

import (
	"bufio"
	"os"
	"strconv"
	"strings"
)

// PeakRSS returns the process's lifetime peak resident set size in bytes
// (VmHWM from /proc/self/status). The second result is false where the
// kernel interface is unavailable. The bench harness compares the *growth*
// of this value across an out-of-core run against the configured budget plus
// the documented slack, since the absolute value includes the Go runtime and
// everything the process did before.
func PeakRSS() (int64, bool) {
	return procStatusBytes("VmHWM:")
}

// CurrentRSS returns the process's current resident set size in bytes
// (VmRSS), where available.
func CurrentRSS() (int64, bool) {
	return procStatusBytes("VmRSS:")
}

func procStatusBytes(field string) (int64, bool) {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0, false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, field) {
			continue
		}
		parts := strings.Fields(line[len(field):])
		if len(parts) < 1 {
			return 0, false
		}
		kb, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return 0, false
		}
		return kb << 10, true
	}
	return 0, false
}
