//go:build !linux

package ooc

// PeakRSS returns the process's lifetime peak resident set size in bytes
// where the platform exposes it; on this platform it does not.
func PeakRSS() (int64, bool) { return 0, false }

// CurrentRSS returns the process's current resident set size in bytes where
// the platform exposes it; on this platform it does not.
func CurrentRSS() (int64, bool) { return 0, false }
