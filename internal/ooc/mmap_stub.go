//go:build !unix

package ooc

import (
	"errors"
	"os"
)

// mmapSupported reports whether read-only file mappings are available; when
// false the spill store falls back to pread + decode.
const mmapSupported = false

var errNoMmap = errors.New("ooc: mmap not supported on this platform")

func mmapAt(f *os.File, off, length int64) ([]byte, error) {
	return nil, errNoMmap
}

func munmap(b []byte) error { return nil }
