package ooc

import (
	"sync"

	"dimboost/internal/obs"
)

// metrics is the package's obs instrument set: spill/read traffic, cache
// effectiveness, and the resident-bytes gauges the bench harness compares
// against the configured budget.
type metrics struct {
	spillBytes   *obs.Counter
	readSource   *obs.Counter
	readBinned   *obs.Counter
	hitsSource   *obs.Counter
	hitsBinned   *obs.Counter
	missesSource *obs.Counter
	missesBinned *obs.Counter
	evictSource  *obs.Counter
	evictBinned  *obs.Counter
	resident     *obs.Gauge
	residentPeak *obs.Gauge
	budget       *obs.Gauge
}

var (
	metricsOnce sync.Once
	metricsVal  *metrics
)

func oocMetrics() *metrics {
	metricsOnce.Do(func() {
		r := obs.Default()
		src := obs.L("cache", "source")
		bin := obs.L("cache", "binned")
		metricsVal = &metrics{
			spillBytes:   r.Counter("dimboost_ooc_spill_bytes_total", "Bytes written to binned spill files."),
			readSource:   r.Counter("dimboost_ooc_read_bytes_total", "Bytes read back from disk into the chunk caches.", src),
			readBinned:   r.Counter("dimboost_ooc_read_bytes_total", "Bytes read back from disk into the chunk caches.", bin),
			hitsSource:   r.Counter("dimboost_ooc_cache_hits_total", "Chunk pins satisfied by a resident entry.", src),
			hitsBinned:   r.Counter("dimboost_ooc_cache_hits_total", "Chunk pins satisfied by a resident entry.", bin),
			missesSource: r.Counter("dimboost_ooc_cache_misses_total", "Chunk pins that had to load from disk.", src),
			missesBinned: r.Counter("dimboost_ooc_cache_misses_total", "Chunk pins that had to load from disk.", bin),
			evictSource:  r.Counter("dimboost_ooc_cache_evictions_total", "Resident chunks evicted to stay under budget.", src),
			evictBinned:  r.Counter("dimboost_ooc_cache_evictions_total", "Resident chunks evicted to stay under budget.", bin),
			resident:     r.Gauge("dimboost_ooc_resident_bytes", "Bytes currently resident under the out-of-core budget."),
			residentPeak: r.Gauge("dimboost_ooc_resident_peak_bytes", "High-water mark of budget-accounted resident bytes."),
			budget:       r.Gauge("dimboost_ooc_budget_bytes", "Configured out-of-core memory budget (0 = unlimited)."),
		}
	})
	return metricsVal
}

// cacheMetrics returns the (hits, misses, evictions, readBytes) counters of
// the named cache.
func cacheMetrics(name string) (hits, misses, evict, read *obs.Counter) {
	m := oocMetrics()
	if name == "binned" {
		return m.hitsBinned, m.missesBinned, m.evictBinned, m.readBinned
	}
	return m.hitsSource, m.missesSource, m.evictSource, m.readSource
}
