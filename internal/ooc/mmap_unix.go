//go:build unix

package ooc

import (
	"os"
	"syscall"
)

// mmapSupported reports whether read-only file mappings are available; when
// false the spill store falls back to pread + decode.
const mmapSupported = true

// mmapAt maps [off, off+length) of f read-only. off must be page-aligned
// (the spill store aligns every segment); length may be arbitrary.
func mmapAt(f *os.File, off, length int64) ([]byte, error) {
	if length == 0 {
		return []byte{}, nil
	}
	return syscall.Mmap(int(f.Fd()), off, int(length), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmap releases a mapping returned by mmapAt.
func munmap(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	return syscall.Munmap(b)
}
