package ooc

import (
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"dimboost/internal/dataset"
	"dimboost/internal/parallel"
)

// Options configure an out-of-core Source.
type Options struct {
	// Budget bounds the bytes the source cache, the binned spill cache, and
	// the resident label column may hold together. 0 means unlimited.
	Budget Budget
	// ChunkRows is the row count per disk chunk. Values < 1 default to
	// parallel.RowChunk. The chunk size is a storage knob only: training
	// results are bit-identical for every value, because the accumulation
	// grids (batch size, sketch chunk) never depend on it.
	ChunkRows int
	// Parallelism is the number of workers that may pin chunks concurrently
	// — the same value as core.Config.Parallelism. Values < 1 mean
	// runtime.GOMAXPROCS(0). It sets the deadlock-freedom floor
	// (MinBudget), so it must not understate the true worker count.
	Parallelism int
	// SpillDir is where per-tree binned spill files are created; "" uses
	// the OS temp directory.
	SpillDir string
}

func (o Options) normalized() Options {
	if o.ChunkRows < 1 {
		o.ChunkRows = parallel.RowChunk
	}
	if o.Parallelism < 1 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.SpillDir == "" {
		o.SpillDir = os.TempDir()
	}
	return o
}

// Source is a disk-resident training dataset: a chunked binary file served
// through a bounded pinned cache, plus the one per-row input kept resident —
// the label column (4 bytes/row). It is safe for concurrent use by up to
// Options.Parallelism workers, each pinning at most one chunk at a time.
//
// I/O failures after Open are sticky: the failing pass records the error
// (Err) and the trainer aborts at its next phase boundary instead of
// training on silently wrong data.
type Source struct {
	cf     *dataset.ChunkedFile
	opt    Options
	labels []float32
	tr     *Tracker

	minBudget  Budget
	srcCap     int64 // capacity of the source chunk cache
	spillCap   int64 // capacity handed to each SpilledBinned's segment cache
	fixedBytes int64 // labels + chunk index, reserved for the Source's lifetime

	cache  *cache[*dataset.Dataset]
	dsPool sync.Pool // recycled *dataset.Dataset chunk buffers

	err atomic.Value // error
}

// Open opens a binary dataset file for out-of-core training under the given
// options. A non-zero budget below MinBudget fails with *BudgetError.
func Open(path string, opt Options) (*Source, error) {
	opt = opt.normalized()
	cf, err := dataset.OpenChunked(path, opt.ChunkRows)
	if err != nil {
		return nil, err
	}
	labels, err := cf.ReadLabels()
	if err != nil {
		cf.Close()
		return nil, err
	}
	s := &Source{cf: cf, opt: opt, labels: labels, tr: &Tracker{}}

	// Budget floor and split. The floor admits one pinned chunk per worker
	// plus one in flight, for both caches, on top of the fixed resident
	// state; see DESIGN.md "Out-of-core training".
	p := int64(opt.Parallelism)
	maxSrc := cf.MaxChunkBytes()
	maxSeg := s.maxSegBound()
	s.fixedBytes = int64(len(labels))*4 + int64(cf.NumChunks()+1)*8
	srcFloor := (p + 1) * maxSrc
	spillFloor := (p + 1) * maxSeg
	s.minBudget = Budget(s.fixedBytes + srcFloor + spillFloor)
	if opt.Budget > 0 && opt.Budget < s.minBudget {
		cf.Close()
		return nil, &BudgetError{Budget: opt.Budget, Min: s.minBudget, Parallelism: opt.Parallelism}
	}
	if opt.Budget == 0 {
		const unbounded = int64(1) << 62
		s.srcCap, s.spillCap = unbounded, unbounded
	} else {
		// Split the surplus above the floors proportionally, so both caches
		// scale with the budget.
		surplus := int64(opt.Budget) - int64(s.minBudget)
		extraSrc := surplus * srcFloor / (srcFloor + spillFloor)
		s.srcCap = srcFloor + extraSrc
		s.spillCap = spillFloor + (surplus - extraSrc)
	}
	s.tr.Reserve(s.fixedBytes)
	oocMetrics().budget.Set(int64(opt.Budget))

	_, _, _, readBytes := cacheMetrics("source")
	s.cache = newCache("source", s.srcCap, s.tr,
		func(c int) int64 { return cf.ChunkBytes(c) },
		func(c int) (*dataset.Dataset, error) {
			d, _ := s.dsPool.Get().(*dataset.Dataset)
			if d == nil {
				d = new(dataset.Dataset)
			}
			if err := cf.ReadChunk(c, d); err != nil {
				s.dsPool.Put(d)
				return nil, err
			}
			readBytes.Add(cf.ChunkBytes(c))
			return d, nil
		},
		func(d *dataset.Dataset) { s.dsPool.Put(d) },
	)
	return s, nil
}

// maxSegBound returns the worst-case resident size of one binned spill
// segment: every source nonzero kept, wide (uint16) bins, page-aligned.
func (s *Source) maxSegBound() int64 {
	var m int64
	for c := 0; c < s.cf.NumChunks(); c++ {
		lo, hi := s.cf.ChunkBounds(c)
		b := segBytes(hi-lo, s.cf.ChunkNNZ(c), true)
		if b > m {
			m = b
		}
	}
	return alignPage(m)
}

// Close releases the source's caches and file handle.
func (s *Source) Close() error {
	s.cache.drop()
	s.tr.Release(s.fixedBytes)
	return s.cf.Close()
}

// NumRows returns the dataset's row count.
func (s *Source) NumRows() int { return s.cf.NumRows() }

// NumFeatures returns the dataset's feature dimensionality.
func (s *Source) NumFeatures() int { return s.cf.NumFeatures() }

// NNZ returns the dataset's stored-entry count.
func (s *Source) NNZ() int64 { return s.cf.NNZ() }

// Labels returns the resident label column, indexed by global row.
func (s *Source) Labels() []float32 { return s.labels }

// Path returns the backing file path.
func (s *Source) Path() string { return s.cf.Path() }

// ChunkRows returns the rows-per-chunk granularity.
func (s *Source) ChunkRows() int { return s.cf.ChunkRows() }

// NumChunks returns the number of chunks in the fixed grid.
func (s *Source) NumChunks() int { return s.cf.NumChunks() }

// ChunkBounds returns chunk c's global row range [lo, hi).
func (s *Source) ChunkBounds(c int) (lo, hi int) { return s.cf.ChunkBounds(c) }

// Budget returns the configured budget (0 = unlimited).
func (s *Source) Budget() Budget { return s.opt.Budget }

// MinBudget returns the smallest budget that admits this dataset at the
// configured parallelism — the deadlock-freedom floor callers are told to
// retry with when Open rejects their budget.
func (s *Source) MinBudget() Budget { return s.minBudget }

// Tracker returns the source's resident-bytes accounting.
func (s *Source) Tracker() *Tracker { return s.tr }

// Chunk pins chunk c and returns its rows as a self-contained Dataset whose
// local row i is global row ChunkBounds(c).lo + i. The release function must
// be called exactly once; the Dataset must not be used after release.
func (s *Source) Chunk(c int) (*dataset.Dataset, func(), error) {
	return s.cache.pin(c)
}

// fail records a sticky I/O error; the first error wins.
func (s *Source) fail(err error) {
	if err != nil {
		s.err.CompareAndSwap(nil, err)
	}
}

// Err returns the first I/O error recorded by any streaming pass, or nil.
// The trainer checks it at phase boundaries.
func (s *Source) Err() error {
	if e := s.err.Load(); e != nil {
		return e.(error)
	}
	return nil
}

// ForEachChunk streams every chunk through the pool, calling fn with the
// pinned chunk and its global row range. Chunks run concurrently; fn must
// not retain d past its return. Failed chunk loads record a sticky error
// (Err) and are skipped.
func (s *Source) ForEachChunk(pool *parallel.Pool, fn func(c, lo, hi int, d *dataset.Dataset)) error {
	pool.Tasks(s.NumChunks(), func(c int) {
		d, release, err := s.Chunk(c)
		if err != nil {
			s.fail(err)
			return
		}
		lo, hi := s.ChunkBounds(c)
		fn(c, lo, hi, d)
		release()
	})
	return s.Err()
}

// ForEachChunkSeq streams every chunk sequentially in ascending order —
// the out-of-core replacement for a single in-row-order pass over the whole
// dataset (e.g. sketch construction, which must insert in row order to stay
// bit-identical to the in-memory path).
func (s *Source) ForEachChunkSeq(fn func(c, lo, hi int, d *dataset.Dataset) error) error {
	for c := 0; c < s.NumChunks(); c++ {
		d, release, err := s.Chunk(c)
		if err != nil {
			s.fail(err)
			return err
		}
		lo, hi := s.ChunkBounds(c)
		err = fn(c, lo, hi, d)
		release()
		if err != nil {
			return err
		}
	}
	return s.Err()
}

// ForRowRange walks global rows [lo, hi) chunk run by chunk run, pinning one
// chunk at a time: fn sees the pinned chunk, its base row, and the global
// sub-range [rlo, rhi) it covers (local row = global - base). It is the
// building block for passes whose accumulation grid (e.g.
// parallel.SketchChunk) is coarser than the storage grid. Safe for
// concurrent use from pool workers; each call pins at most one chunk at a
// time. Load failures record a sticky error and stop the walk.
func (s *Source) ForRowRange(lo, hi int, fn func(d *dataset.Dataset, base, rlo, rhi int)) {
	for at := lo; at < hi; {
		c := at / s.cf.ChunkRows()
		clo, chi := s.ChunkBounds(c)
		end := min(hi, chi)
		d, release, err := s.Chunk(c)
		if err != nil {
			s.fail(err)
			return
		}
		fn(d, clo, at, end)
		release()
		at = end
	}
}

// runEnd returns the end of the maximal prefix of rows (ascending global row
// ids, starting at i) that live in the same chunk as rows[i].
func runEnd(rows []int32, i, chunkRows int) int {
	c := int(rows[i]) / chunkRows
	j := i + 1
	for j < len(rows) && int(rows[j])/chunkRows == c {
		j++
	}
	return j
}
