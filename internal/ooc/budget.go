// Package ooc is the out-of-core training subsystem: it turns memory from a
// ceiling into a config knob. A Source serves a disk-resident binary dataset
// (internal/dataset's chunked format) through a bounded, pinned chunk cache;
// a SpilledBinned writes the per-tree quantized CSR mirror to a memory-mapped
// spill file in parallel.RowChunk-aligned segments and streams histogram
// builds and split classification over it. Every pass preserves the fixed
// chunk grids and ordered reductions of internal/parallel, so training under
// a budget is bit-identical (Float64bits) to the in-memory path — the
// paper's §7.1 "disk" data-reading level, with determinism carried over for
// free.
package ooc

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// Budget is a memory budget in bytes. Zero means unlimited (the in-memory
// path); positive values bound the bytes the out-of-core caches may keep
// resident at once.
type Budget int64

// Byte-size units accepted by ParseBudget.
const (
	KiB Budget = 1 << 10
	MiB Budget = 1 << 20
	GiB Budget = 1 << 30
)

// ParseBudget parses a human byte size: a plain integer is bytes, and the
// suffixes KiB/MiB/GiB (or their lowercase/short forms k, m, g, kb, mb, gb)
// scale by binary powers. "0" and "" mean unlimited.
func ParseBudget(s string) (Budget, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, nil
	}
	unit := Budget(1)
	lower := strings.ToLower(t)
	for _, u := range []struct {
		suffix string
		mult   Budget
	}{
		{"kib", KiB}, {"mib", MiB}, {"gib", GiB},
		{"kb", KiB}, {"mb", MiB}, {"gb", GiB},
		{"k", KiB}, {"m", MiB}, {"g", GiB},
		{"b", 1},
	} {
		if strings.HasSuffix(lower, u.suffix) {
			unit = u.mult
			t = strings.TrimSpace(t[:len(t)-len(u.suffix)])
			break
		}
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("ooc: bad budget %q", s)
	}
	return Budget(v * float64(unit)), nil
}

// String renders the budget in the largest exact-ish binary unit.
func (b Budget) String() string {
	switch {
	case b == 0:
		return "unlimited"
	case b%GiB == 0:
		return fmt.Sprintf("%dGiB", b/GiB)
	case b%MiB == 0:
		return fmt.Sprintf("%dMiB", b/MiB)
	case b%KiB == 0:
		return fmt.Sprintf("%dKiB", b/KiB)
	}
	return fmt.Sprintf("%dB", int64(b))
}

// Bytes returns the budget as a byte count.
func (b Budget) Bytes() int64 { return int64(b) }

// BudgetError reports a budget too small to hold even one working set of
// chunks: below the floor, a bounded pinned cache could deadlock with every
// resident entry pinned, so Open rejects the configuration up front with the
// exact minimum the caller should retry with.
type BudgetError struct {
	// Budget is the rejected configured budget.
	Budget Budget
	// Min is the smallest budget that admits this dataset at this
	// parallelism (Source.MinBudget).
	Min Budget
	// Parallelism is the worker count the floor was computed for.
	Parallelism int
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("ooc: memory budget %s is below the minimum %s for this dataset at parallelism %d (labels + one chunk working set per worker); raise -mem-budget to at least %d bytes",
		e.Budget, e.Min, e.Parallelism, int64(e.Min))
}

// Tracker accounts the bytes the subsystem currently keeps resident and the
// peak it ever reached. Both caches and the fixed per-source state reserve
// through one tracker, so Peak is directly comparable to the configured
// budget: training must keep Peak ≤ Budget exactly (process RSS additionally
// carries the Go runtime and the trainer's per-row state — see DESIGN.md).
type Tracker struct {
	cur  atomic.Int64
	peak atomic.Int64
}

// Reserve records n more resident bytes and updates the peak.
func (t *Tracker) Reserve(n int64) {
	c := t.cur.Add(n)
	for {
		p := t.peak.Load()
		if c <= p || t.peak.CompareAndSwap(p, c) {
			break
		}
	}
	m := oocMetrics()
	m.resident.Set(c)
	if pk := t.peak.Load(); pk > m.residentPeak.Value() {
		m.residentPeak.Set(pk)
	}
}

// Release records n resident bytes freed.
func (t *Tracker) Release(n int64) {
	oocMetrics().resident.Set(t.cur.Add(-n))
}

// Current returns the bytes currently resident.
func (t *Tracker) Current() int64 { return t.cur.Load() }

// Peak returns the high-water mark of resident bytes.
func (t *Tracker) Peak() int64 { return t.peak.Load() }
