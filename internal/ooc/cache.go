package ooc

import (
	"container/list"
	"fmt"
	"sync"

	"dimboost/internal/obs"
)

// cache is a bounded, pinned, single-flight chunk cache: the heart of the
// budget enforcement. Entries are keyed by chunk index, sized up front (both
// the source and the spill store know every chunk's byte count before
// loading), and pinned while in use. Capacity is enforced strictly — a load
// reserves its bytes before reading, evicting unpinned entries in LRU order
// and blocking on a condition variable when everything resident is pinned.
//
// Deadlock freedom is a capacity precondition, not a runtime protocol: every
// worker pins at most one entry of each cache at a time, so with capacity ≥
// (workers+1)×maxEntry an eviction or release always eventually admits a
// waiter. Source.MinBudget encodes exactly that floor and Open rejects
// budgets below it (BudgetError), so a configuration that could deadlock
// never constructs a cache.
type cache[V any] struct {
	capBytes int64
	tr       *Tracker
	size     func(c int) int64
	load     func(c int) (V, error)
	free     func(v V)

	hits, misses, evict *obs.Counter

	mu      sync.Mutex
	cond    *sync.Cond
	entries map[int]*cacheEntry[V]
	lru     *list.List // unpinned entries, front = most recently released
	used    int64
}

type cacheEntry[V any] struct {
	c       int
	val     V
	bytes   int64
	refs    int
	loading bool
	elem    *list.Element // non-nil iff refs == 0 and not loading
}

func newCache[V any](name string, capBytes int64, tr *Tracker, size func(c int) int64, load func(c int) (V, error), free func(v V)) *cache[V] {
	hits, misses, evict, _ := cacheMetrics(name)
	k := &cache[V]{
		capBytes: capBytes,
		tr:       tr,
		size:     size,
		load:     load,
		free:     free,
		hits:     hits,
		misses:   misses,
		evict:    evict,
		entries:  make(map[int]*cacheEntry[V]),
		lru:      list.New(),
	}
	k.cond = sync.NewCond(&k.mu)
	return k
}

// pin returns chunk c's value and a release function that must be called
// exactly once when the caller is done with it. The value stays resident —
// never evicted, never mutated — until released.
func (k *cache[V]) pin(c int) (V, func(), error) {
	var zero V
	k.mu.Lock()
	for {
		if e, ok := k.entries[c]; ok {
			if e.loading {
				// Another goroutine is loading this chunk (single-flight);
				// wait for it to finish or fail, then re-check.
				k.cond.Wait()
				continue
			}
			e.refs++
			if e.elem != nil {
				k.lru.Remove(e.elem)
				e.elem = nil
			}
			k.mu.Unlock()
			k.hits.Inc()
			return e.val, k.releaser(e), nil
		}
		need := k.size(c)
		if need > k.capBytes {
			k.mu.Unlock()
			return zero, nil, fmt.Errorf("ooc: chunk %d needs %d bytes, cache capacity is %d", c, need, k.capBytes)
		}
		if k.used+need <= k.capBytes {
			e := &cacheEntry[V]{c: c, bytes: need, loading: true}
			k.entries[c] = e
			k.used += need
			k.mu.Unlock()
			k.tr.Reserve(need)

			val, err := k.load(c)

			k.mu.Lock()
			if err != nil {
				delete(k.entries, c)
				k.used -= need
				k.cond.Broadcast()
				k.mu.Unlock()
				k.tr.Release(need)
				return zero, nil, err
			}
			e.val = val
			e.loading = false
			e.refs = 1
			k.cond.Broadcast()
			k.mu.Unlock()
			k.misses.Inc()
			return val, k.releaser(e), nil
		}
		// Over capacity: evict the least recently used unpinned entry, or
		// wait for a release when everything resident is pinned or loading.
		if back := k.lru.Back(); back != nil {
			k.evictLocked(back.Value.(*cacheEntry[V]))
			continue
		}
		k.cond.Wait()
	}
}

// releaser returns the one-shot unpin closure for e.
func (k *cache[V]) releaser(e *cacheEntry[V]) func() {
	return func() {
		k.mu.Lock()
		e.refs--
		if e.refs == 0 {
			e.elem = k.lru.PushFront(e)
		}
		k.cond.Broadcast()
		k.mu.Unlock()
	}
}

// evictLocked drops an unpinned entry; caller holds k.mu.
func (k *cache[V]) evictLocked(e *cacheEntry[V]) {
	k.lru.Remove(e.elem)
	e.elem = nil
	delete(k.entries, e.c)
	k.used -= e.bytes
	k.free(e.val)
	k.tr.Release(e.bytes)
	k.evict.Inc()
}

// drop evicts every unpinned entry. Callers drain all pins first (Close,
// end-of-tree teardown), so after drop the cache holds nothing.
func (k *cache[V]) drop() {
	k.mu.Lock()
	for k.lru.Len() > 0 {
		k.evictLocked(k.lru.Back().Value.(*cacheEntry[V]))
	}
	k.mu.Unlock()
}

// residentBytes returns the bytes currently held by the cache.
func (k *cache[V]) residentBytes() int64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.used
}
