package ooc

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"

	"dimboost/internal/histogram"
	"dimboost/internal/parallel"
)

// SpilledBinned is the disk-resident counterpart of histogram.Binned: one
// tree's quantized CSR mirror, written chunk by chunk to an unlinked spill
// file in parallel.RowChunk-aligned (more precisely, Source.ChunkRows-
// aligned) segments and read back through a bounded pinned cache —
// memory-mapped where the platform allows, pread + decode otherwise.
//
// Segment layout (native byte order, page-aligned start):
//
//	rowPtr (rows+1)×i64   chunk-local entry offsets
//	pos    nnz×i32        sampled position of each kept nonzero
//	bins   nnz×u8|u16     bin id (u16 iff any sampled feature has >256 buckets)
//
// Streaming histogram builds (BuildHistogram) and split classification
// (Classify) walk node rows run by run over these segments using exactly the
// in-memory accumulation grid and merge order, so every result is
// Float64bits-identical to histogram.BuildBinned / Binned.Bin on the full
// matrix.
type SpilledBinned struct {
	src    *Source
	layout *histogram.Layout
	wide   bool

	f       *os.File
	path    string
	unlinkd bool
	segs    []segMeta
	written int64

	cache *cache[*binnedSeg]

	// rowScratch recycles the local-row translation buffers of streaming
	// builds (≤ ChunkRows int32s per worker; part of the documented
	// fixed working set, not budget-accounted).
	rowScratch sync.Pool
}

type segMeta struct {
	off  int64
	rows int
	nnz  int64
}

// binnedSeg is one resident segment: a chunk-local Binned view over either a
// mapping of the spill file or decoded heap slices.
type binnedSeg struct {
	bin    histogram.Binned
	mapped []byte
}

// segBytes returns the byte size of a segment holding rows rows and nnz
// entries.
func segBytes(rows int, nnz int64, wide bool) int64 {
	w := int64(1)
	if wide {
		w = 2
	}
	return int64(rows+1)*8 + nnz*4 + nnz*w
}

// maxNarrowBuckets mirrors histogram.NewBinned's uint8/uint16 escalation
// threshold.
const maxNarrowBuckets = 256

// BuildBinned quantizes the dataset under the layout and spills the result —
// the out-of-core counterpart of histogram.NewBinned, run once per tree.
// Chunks quantize in parallel through the pool; each worker pins one source
// chunk, encodes its segment into a pooled buffer, and writes it at the
// chunk's precomputed offset, so the file content is independent of worker
// count and schedule.
func (s *Source) BuildBinned(l *histogram.Layout, pool *parallel.Pool) (*SpilledBinned, error) {
	wide := false
	for p := range l.Features {
		if l.Cands[p].NumBuckets() > maxNarrowBuckets {
			wide = true
			break
		}
	}
	nc := s.NumChunks()
	sb := &SpilledBinned{src: s, layout: l, wide: wide, segs: make([]segMeta, nc)}

	// Offsets are bounds computed from the *source* nonzero counts (feature
	// sampling can only keep fewer), so writers never depend on each other's
	// actual sizes and the build parallelizes freely. The gap between bound
	// and actual is disk-only waste, never resident.
	offs := make([]int64, nc+1)
	for c := 0; c < nc; c++ {
		lo, hi := s.ChunkBounds(c)
		offs[c+1] = offs[c] + alignPage(segBytes(hi-lo, s.cf.ChunkNNZ(c), wide))
	}

	f, err := os.CreateTemp(s.opt.SpillDir, "dimboost-spill-*.bin")
	if err != nil {
		return nil, err
	}
	sb.f, sb.path = f, f.Name()
	// Unlink immediately where the OS allows: the spill is pure scratch and
	// should vanish even on a crash. Close removes the path otherwise.
	if err := os.Remove(sb.path); err == nil {
		sb.unlinkd = true
	}

	var maxBound int64
	for c := 0; c < nc; c++ {
		if b := offs[c+1] - offs[c]; b > maxBound {
			maxBound = b
		}
	}
	// Encode buffers recycle through an explicit free list rather than a
	// sync.Pool: at most one buffer per concurrent task ever exists, so the
	// budget accounting (maxBound per buffer) is deterministic and bounded by
	// the worker count regardless of GC or race-detector pool behavior.
	var (
		bufMu   sync.Mutex
		bufFree [][]byte
		nBufs   int64
	)
	getBuf := func() []byte {
		bufMu.Lock()
		defer bufMu.Unlock()
		if n := len(bufFree); n > 0 {
			b := bufFree[n-1]
			bufFree = bufFree[:n-1]
			return b
		}
		nBufs++
		s.tr.Reserve(maxBound)
		return make([]byte, maxBound)
	}
	putBuf := func(b []byte) {
		bufMu.Lock()
		bufFree = append(bufFree, b)
		bufMu.Unlock()
	}

	pool.Tasks(nc, func(c int) {
		d, release, err := s.Chunk(c)
		if err != nil {
			s.fail(err)
			return
		}
		defer release()
		buf := getBuf()
		defer putBuf(buf)

		rows := d.NumRows()
		rowPtrB := buf[: (rows+1)*8 : (rows+1)*8]
		// Pass 1: count kept nonzeros per row straight into the rowPtr
		// section (cumulative), exactly like histogram.NewBinned's pass 1.
		binary.NativeEndian.PutUint64(rowPtrB, 0)
		kept := int64(0)
		for r := 0; r < rows; r++ {
			in := d.Row(r)
			for _, ft := range in.Indices {
				if l.Pos(ft) >= 0 {
					kept++
				}
			}
			binary.NativeEndian.PutUint64(rowPtrB[(r+1)*8:], uint64(kept))
		}
		// Pass 2: quantize into the pos and bin sections.
		posOff := int64(rows+1) * 8
		binOff := posOff + kept*4
		at := int64(0)
		for r := 0; r < rows; r++ {
			in := d.Row(r)
			for j, ft := range in.Indices {
				p := l.Pos(ft)
				if p < 0 {
					continue
				}
				k := l.Cands[p].Bucket(float64(in.Values[j]))
				binary.NativeEndian.PutUint32(buf[posOff+at*4:], uint32(p))
				if wide {
					binary.NativeEndian.PutUint16(buf[binOff+at*2:], uint16(k))
				} else {
					buf[binOff+at] = uint8(k)
				}
				at++
			}
		}
		n := segBytes(rows, kept, wide)
		if _, err := sb.f.WriteAt(buf[:n], offs[c]); err != nil {
			s.fail(fmt.Errorf("ooc: writing spill segment %d: %w", c, err))
			return
		}
		sb.segs[c] = segMeta{off: offs[c], rows: rows, nnz: kept}
	})
	// The encode buffers die with the free list here; release their
	// accounting.
	s.tr.Release(nBufs * maxBound)
	if err := s.Err(); err != nil {
		sb.Close()
		return nil, err
	}
	for _, m := range sb.segs {
		sb.written += segBytes(m.rows, m.nnz, wide)
	}
	oocMetrics().spillBytes.Add(sb.written)

	_, _, _, readBytes := cacheMetrics("binned")
	sb.cache = newCache("binned", s.spillCap, s.tr,
		func(c int) int64 {
			m := sb.segs[c]
			return alignPage(segBytes(m.rows, m.nnz, wide))
		},
		func(c int) (*binnedSeg, error) {
			seg, err := sb.loadSeg(c)
			if err == nil {
				readBytes.Add(segBytes(sb.segs[c].rows, sb.segs[c].nnz, wide))
			}
			return seg, err
		},
		func(seg *binnedSeg) {
			if seg.mapped != nil {
				munmap(seg.mapped)
			}
		},
	)
	return sb, nil
}

// loadSeg materializes segment c: mmap where supported, pread + decode
// otherwise. Both paths yield identical values.
func (sb *SpilledBinned) loadSeg(c int) (*binnedSeg, error) {
	m := sb.segs[c]
	n := segBytes(m.rows, m.nnz, sb.wide)
	posOff := int64(m.rows+1) * 8
	binOff := posOff + m.nnz*4
	if mmapSupported {
		data, err := mmapAt(sb.f, m.off, n)
		if err == nil {
			seg := &binnedSeg{mapped: data}
			seg.bin = histogram.Binned{
				Layout: sb.layout,
				RowPtr: castI64(data[:posOff], m.rows+1),
				Pos:    castI32(data[posOff:binOff], int(m.nnz)),
			}
			if sb.wide {
				seg.bin.Bins16 = castU16(data[binOff:], int(m.nnz))
			} else {
				seg.bin.Bins8 = data[binOff : binOff+m.nnz]
			}
			return seg, nil
		}
	}
	buf := make([]byte, n)
	if n > 0 {
		if _, err := sb.f.ReadAt(buf, m.off); err != nil {
			return nil, fmt.Errorf("ooc: reading spill segment %d: %w", c, err)
		}
	}
	seg := &binnedSeg{}
	seg.bin = histogram.Binned{
		Layout: sb.layout,
		RowPtr: getI64s(buf, m.rows+1),
		Pos:    getI32s(buf[posOff:], int(m.nnz)),
	}
	if sb.wide {
		seg.bin.Bins16 = getU16s(buf[binOff:], int(m.nnz))
	} else {
		seg.bin.Bins8 = append([]uint8(nil), buf[binOff:binOff+m.nnz]...)
	}
	return seg, nil
}

// Close evicts every resident segment (unmapping them) and deletes the
// spill file.
func (sb *SpilledBinned) Close() error {
	if sb.cache != nil {
		sb.cache.drop()
	}
	err := sb.f.Close()
	if !sb.unlinkd {
		os.Remove(sb.path)
	}
	return err
}

// Wide reports whether bin ids needed uint16 escalation.
func (sb *SpilledBinned) Wide() bool { return sb.wide }

// SpillBytes returns the payload bytes written to the spill file.
func (sb *SpilledBinned) SpillBytes() int64 { return sb.written }

// Seg pins segment c and returns its chunk-local Binned view (local row i is
// global row ChunkBounds(c).lo + i). The release function must be called
// exactly once; the view must not be used after release.
func (sb *SpilledBinned) Seg(c int) (*histogram.Binned, func(), error) {
	seg, release, err := sb.cache.pin(c)
	if err != nil {
		return nil, nil, err
	}
	return &seg.bin, release, nil
}

// localRows translates a run of ascending global rows into chunk-local ids
// using a pooled scratch buffer.
func (sb *SpilledBinned) localRows(run []int32, base int32) ([]int32, func()) {
	buf, _ := sb.rowScratch.Get().([]int32)
	if cap(buf) < len(run) {
		buf = make([]int32, len(run))
	}
	buf = buf[:len(run)]
	for i, r := range run {
		buf[i] = r - base
	}
	return buf, func() { sb.rowScratch.Put(buf[:0]) }
}

// BuildHistogram is histogram.BuildBinned over the spilled matrix: the same
// fixed batch grid and ascending-order merge, with each batch's rows walked
// run by run over pinned segments. The running zero-bucket gradient sums are
// carried across run boundaries (histogram.AccumSparseBinned), so every
// float lands in the same order as the in-memory build — bit-identical
// results at any parallelism and any chunk size.
func (sb *SpilledBinned) BuildHistogram(h *histogram.Histogram, rows []int32, grad, hess []float64, opts histogram.BuildOptions) {
	if opts.BatchSize < 1 {
		opts.BatchSize = 4096
	}
	nBatches := (len(rows) + opts.BatchSize - 1) / opts.BatchSize
	if nBatches <= 1 {
		sb.buildBatch(h, rows, grad, hess)
		return
	}
	p := parallel.New(opts.Parallelism)
	parallel.ReduceOrdered(p, len(rows), opts.BatchSize,
		func(_, lo, hi int) *histogram.Histogram {
			var part *histogram.Histogram
			if opts.Pool != nil {
				part = opts.Pool.Get()
			} else {
				part = histogram.New(h.Layout)
			}
			sb.buildBatch(part, rows[lo:hi], grad, hess)
			return part
		},
		func(_ int, part *histogram.Histogram) {
			h.Add(part)
			if opts.Pool != nil {
				opts.Pool.Put(part)
			}
		})
}

// buildBatch accumulates one batch of rows into h, chaining the zero-bucket
// sums across chunk runs.
func (sb *SpilledBinned) buildBatch(h *histogram.Histogram, batch []int32, grad, hess []float64) {
	chunkRows := sb.src.ChunkRows()
	var sumG, sumH float64
	for i := 0; i < len(batch); {
		c := int(batch[i]) / chunkRows
		j := runEnd(batch, i, chunkRows)
		view, release, err := sb.Seg(c)
		if err != nil {
			sb.src.fail(err)
			return
		}
		base, _ := sb.src.ChunkBounds(c)
		local, done := sb.localRows(batch[i:j], int32(base))
		sumG, sumH = histogram.AccumSparseBinned(h, view, local, grad[base:], hess[base:], sumG, sumH)
		done()
		release()
		i = j
	}
	histogram.FinishSparseZeros(h, sumG, sumH)
}

// Classify evaluates the split predicate bin(row, p) <= k for every given
// row (ascending global ids), writing the verdict into mask indexed by
// global row. The mask then backs a trivially concurrency-safe goLeft for
// tree.Index.SplitStable — identical to histogram.Binned.Bin on the full
// matrix, so out-of-core splits partition rows exactly like in-memory ones.
func (sb *SpilledBinned) Classify(pool *parallel.Pool, rows []int32, p int32, k int, mask []bool) {
	chunkRows := sb.src.ChunkRows()
	pool.For(len(rows), parallel.RowChunk, func(lo, hi int) {
		part := rows[lo:hi]
		for i := 0; i < len(part); {
			c := int(part[i]) / chunkRows
			j := runEnd(part, i, chunkRows)
			view, release, err := sb.Seg(c)
			if err != nil {
				sb.src.fail(err)
				return
			}
			base, _ := sb.src.ChunkBounds(c)
			for _, r := range part[i:j] {
				mask[r] = view.Bin(int(r)-base, p) <= k
			}
			release()
			i = j
		}
	})
}
