package ooc

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dimboost/internal/dataset"
	"dimboost/internal/histogram"
	"dimboost/internal/parallel"
	"dimboost/internal/sketch"
)

func TestParseBudget(t *testing.T) {
	cases := []struct {
		in   string
		want Budget
		err  bool
	}{
		{"", 0, false},
		{"0", 0, false},
		{"1024", 1024, false},
		{"64KiB", 64 * KiB, false},
		{"64kb", 64 * KiB, false},
		{"2m", 2 * MiB, false},
		{"1.5GiB", Budget(1.5 * float64(GiB)), false},
		{"512MiB", 512 * MiB, false},
		{"3g", 3 * GiB, false},
		{"100B", 100, false},
		{"  256 MiB ", 256 * MiB, false},
		{"nope", 0, true},
		{"-5MiB", 0, true},
	}
	for _, c := range cases {
		got, err := ParseBudget(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseBudget(%q) err=%v, want err=%v", c.in, err, c.err)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseBudget(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	if s := (512 * MiB).String(); s != "512MiB" {
		t.Errorf("String() = %q", s)
	}
	if s := Budget(0).String(); s != "unlimited" {
		t.Errorf("String() = %q", s)
	}
}

func TestTracker(t *testing.T) {
	var tr Tracker
	tr.Reserve(100)
	tr.Reserve(50)
	if tr.Current() != 150 || tr.Peak() != 150 {
		t.Fatalf("cur=%d peak=%d", tr.Current(), tr.Peak())
	}
	tr.Release(120)
	tr.Reserve(30)
	if tr.Current() != 60 || tr.Peak() != 150 {
		t.Fatalf("cur=%d peak=%d after release", tr.Current(), tr.Peak())
	}
}

// writeTestFile generates a synthetic dataset and writes it in the binary
// format, returning the path and the in-memory reference.
func writeTestFile(t *testing.T, cfg dataset.SyntheticConfig) (string, *dataset.Dataset) {
	t.Helper()
	d := dataset.Generate(cfg)
	path := filepath.Join(t.TempDir(), "train.bin")
	if err := dataset.WriteBinaryFile(path, d); err != nil {
		t.Fatal(err)
	}
	return path, d
}

func TestOpenRejectsTinyBudget(t *testing.T) {
	path, _ := writeTestFile(t, dataset.SyntheticConfig{NumRows: 1000, NumFeatures: 40, AvgNNZ: 8, Seed: 1})
	_, err := Open(path, Options{Budget: 1 * KiB, ChunkRows: 128, Parallelism: 2})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %v", err)
	}
	if be.Min <= be.Budget {
		t.Fatalf("BudgetError.Min %d should exceed rejected budget %d", be.Min, be.Budget)
	}
	// Retrying with exactly the advertised minimum must succeed.
	src, err := Open(path, Options{Budget: be.Min, ChunkRows: 128, Parallelism: 2})
	if err != nil {
		t.Fatalf("open at advertised MinBudget: %v", err)
	}
	src.Close()
}

func TestSourceChunksMatchFullRead(t *testing.T) {
	path, full := writeTestFile(t, dataset.SyntheticConfig{NumRows: 700, NumFeatures: 30, AvgNNZ: 6, Seed: 2, Zipf: 1.1})
	src, err := Open(path, Options{ChunkRows: 64, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.NumRows() != full.NumRows() || src.NumFeatures() != full.NumFeatures {
		t.Fatalf("shape %dx%d vs %dx%d", src.NumRows(), src.NumFeatures(), full.NumRows(), full.NumFeatures)
	}
	for i, l := range full.Labels {
		if src.Labels()[i] != l {
			t.Fatalf("label %d: %v vs %v", i, src.Labels()[i], l)
		}
	}
	for c := 0; c < src.NumChunks(); c++ {
		d, release, err := src.Chunk(c)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := src.ChunkBounds(c)
		for i := lo; i < hi; i++ {
			want, got := full.Row(i), d.Row(i-lo)
			if want.Label != got.Label || len(want.Indices) != len(got.Indices) {
				t.Fatalf("row %d differs", i)
			}
			for j := range want.Indices {
				if want.Indices[j] != got.Indices[j] || want.Values[j] != got.Values[j] {
					t.Fatalf("row %d entry %d differs", i, j)
				}
			}
		}
		release()
	}
}

func TestBudgetedCacheEvictsAndStaysUnderBudget(t *testing.T) {
	path, _ := writeTestFile(t, dataset.SyntheticConfig{NumRows: 4000, NumFeatures: 40, AvgNNZ: 10, Seed: 3})
	probe, err := Open(path, Options{ChunkRows: 128, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	budget := probe.MinBudget()
	probe.Close()

	src, err := Open(path, Options{Budget: budget, ChunkRows: 128, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	// Two full sequential passes: the tight budget forces evictions on the
	// second pass; accounting must never exceed the budget.
	for pass := 0; pass < 2; pass++ {
		for c := 0; c < src.NumChunks(); c++ {
			d, release, err := src.Chunk(c)
			if err != nil {
				t.Fatal(err)
			}
			_ = d.NumRows()
			release()
		}
	}
	if peak := src.Tracker().Peak(); peak > int64(budget) {
		t.Fatalf("tracker peak %d exceeds budget %d", peak, budget)
	}
	if src.cache.residentBytes() > src.srcCap {
		t.Fatalf("source cache %d over its cap %d", src.cache.residentBytes(), src.srcCap)
	}
}

func TestConcurrentPinsUnderTightBudget(t *testing.T) {
	path, _ := writeTestFile(t, dataset.SyntheticConfig{NumRows: 4000, NumFeatures: 40, AvgNNZ: 10, Seed: 4})
	const workers = 4
	probe, err := Open(path, Options{ChunkRows: 128, Parallelism: workers})
	if err != nil {
		t.Fatal(err)
	}
	budget := probe.MinBudget()
	probe.Close()
	src, err := Open(path, Options{Budget: budget, ChunkRows: 128, Parallelism: workers})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	// workers goroutines each pin one chunk at a time over a scattered
	// order: the deadlock-freedom floor must let all of them make progress.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			nc := src.NumChunks()
			for i := 0; i < nc; i++ {
				c := (i*7 + w*nc/workers) % nc
				d, release, err := src.Chunk(c)
				if err != nil {
					t.Error(err)
					return
				}
				lo, hi := src.ChunkBounds(c)
				if d.NumRows() != hi-lo {
					t.Errorf("chunk %d rows %d want %d", c, d.NumRows(), hi-lo)
				}
				release()
			}
		}(w)
	}
	wg.Wait()
	if peak := src.Tracker().Peak(); peak > int64(budget) {
		t.Fatalf("tracker peak %d exceeds budget %d", peak, budget)
	}
}

// layoutFor builds a full-feature layout from unweighted sketches, the same
// way the trainer's first tree does.
func layoutFor(t *testing.T, d *dataset.Dataset, k int) *histogram.Layout {
	t.Helper()
	set := sketch.NewSet(d.NumFeatures, 1/(2*float64(k)))
	set.AddDataset(d)
	l, err := histogram.NewLayout(histogram.AllFeatures(d.NumFeatures), set.Candidates(k), d.NumFeatures)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestSpilledBinnedMatchesInMemory(t *testing.T) {
	path, full := writeTestFile(t, dataset.SyntheticConfig{NumRows: 1500, NumFeatures: 50, AvgNNZ: 9, Seed: 5, Zipf: 1.2})
	src, err := Open(path, Options{ChunkRows: 128, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	l := layoutFor(t, full, 12)
	ref := histogram.NewBinned(full, l, 1)

	pool := parallel.New(2)
	sb, err := src.BuildBinned(l, pool)
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	if sb.Wide() != ref.Wide() {
		t.Fatalf("wide %v vs %v", sb.Wide(), ref.Wide())
	}

	// Every (row, position) bin must agree with the in-memory mirror.
	for c := 0; c < src.NumChunks(); c++ {
		view, release, err := sb.Seg(c)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := src.ChunkBounds(c)
		for r := lo; r < hi; r++ {
			for p := 0; p < l.NumFeatures(); p += 7 {
				if got, want := view.Bin(r-lo, int32(p)), ref.Bin(r, int32(p)); got != want {
					t.Fatalf("row %d pos %d: bin %d vs %d", r, p, got, want)
				}
			}
		}
		release()
	}

	// Streaming histogram build must be bit-identical to the in-memory one,
	// at both the direct (single-batch) and batched paths.
	n := full.NumRows()
	rows := make([]int32, n)
	grad := make([]float64, n)
	hess := make([]float64, n)
	for i := range rows {
		rows[i] = int32(i)
		grad[i] = math.Sin(float64(i)) * 0.7
		hess[i] = 0.1 + 0.9*math.Abs(math.Cos(float64(i)))
	}
	for _, batch := range []int{0, 256} {
		opts := histogram.BuildOptions{Parallelism: 2, BatchSize: batch}
		want := histogram.New(l)
		histogram.BuildBinned(want, ref, rows, grad, hess, opts)
		got := histogram.New(l)
		sb.BuildHistogram(got, rows, grad, hess, opts)
		for i := range want.G {
			if math.Float64bits(want.G[i]) != math.Float64bits(got.G[i]) ||
				math.Float64bits(want.H[i]) != math.Float64bits(got.H[i]) {
				t.Fatalf("batch %d: bucket %d G/H bits differ: %v/%v vs %v/%v",
					batch, i, want.G[i], want.H[i], got.G[i], got.H[i])
			}
		}
	}

	// Classification must agree with the in-memory predicate.
	mask := make([]bool, n)
	p := int32(3)
	k := l.Cands[p].NumBuckets() / 2
	sb.Classify(pool, rows, p, k, mask)
	for _, r := range rows {
		if want := ref.Bin(int(r), p) <= k; mask[r] != want {
			t.Fatalf("row %d classify %v want %v", r, mask[r], want)
		}
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestSpillFileIsScratch(t *testing.T) {
	path, full := writeTestFile(t, dataset.SyntheticConfig{NumRows: 300, NumFeatures: 20, AvgNNZ: 5, Seed: 6})
	dir := t.TempDir()
	src, err := Open(path, Options{ChunkRows: 64, Parallelism: 1, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	l := layoutFor(t, full, 8)
	sb, err := src.BuildBinned(l, parallel.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if sb.SpillBytes() <= 0 {
		t.Fatalf("SpillBytes = %d", sb.SpillBytes())
	}
	if err := sb.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close nothing of the spill may remain on disk.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		t.Fatalf("leftover spill file %s", e.Name())
	}
}
