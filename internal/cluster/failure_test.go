package cluster

import (
	"strings"
	"testing"
	"time"

	"dimboost/internal/dataset"
	"dimboost/internal/faultinject"
	"dimboost/internal/ps"
	"dimboost/internal/transport"
)

// testRetry is a fast retry policy for fault tests: enough attempts to ride
// out injected fault rates, millisecond backoff so tests stay quick.
func testRetry() *transport.RetryPolicy {
	return &transport.RetryPolicy{
		MaxAttempts: 6,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Jitter:      0.25,
		Seed:        1,
	}
}

// faultTrain runs TrainOn over a MemNetwork wrapped in the given fault spec.
func faultTrain(t *testing.T, d *dataset.Dataset, cfg Config, spec faultinject.Spec) (*Result, *faultinject.Network, error) {
	t.Helper()
	mem := transport.NewMemNetwork()
	t.Cleanup(func() { mem.Close() })
	fnet := faultinject.New(mem, spec)
	res, err := TrainOn(fnet, mem.Meter(), d, cfg)
	return res, fnet, err
}

// TestServerFailurePropagates: when a parameter server starts erroring
// mid-run and retries are disabled, training must fail cleanly with the
// injected error — not hang at a barrier or panic.
func TestServerFailurePropagates(t *testing.T) {
	d := testData(t, 300, 73)
	cfg := smallCfg(3, 2)
	_, _, err := faultTrain(t, d, cfg, faultinject.Spec{Rules: []faultinject.Rule{
		{Endpoint: ServerName(1), After: 10, ErrRate: 1},
	}})
	if err == nil {
		t.Fatal("expected training to fail")
	}
	if !strings.Contains(err.Error(), "injected fault") {
		t.Fatalf("error does not carry the cause: %v", err)
	}
}

// TestImmediateServerFailure: a server that fails fatally from the very
// first call.
func TestImmediateServerFailure(t *testing.T) {
	d := testData(t, 200, 75)
	cfg := smallCfg(2, 2)
	_, _, err := faultTrain(t, d, cfg, faultinject.Spec{Rules: []faultinject.Rule{
		{Endpoint: ServerName(0), ErrRate: 1, Fatal: true},
	}})
	if err == nil {
		t.Fatal("expected training to fail")
	}
}

// TestTransientFaultsRecoveredByRetry is the PR's headline scenario: a run
// whose worker→server RPCs randomly fail before delivery AND randomly lose
// responses after the handler ran must complete via retries and produce the
// exact model of a fault-free run. Lost responses make the server apply the
// push twice unless the idempotency envelope deduplicates the retry, so
// model equality here proves retried pushes never double-accumulate.
func TestTransientFaultsRecoveredByRetry(t *testing.T) {
	d := testData(t, 400, 81)
	cfg := smallCfg(3, 2)
	cfg.ExactWire = true
	cfg.Retry = testRetry()

	res, fnet, err := faultTrain(t, d, cfg, faultinject.Spec{
		Seed: 3,
		Rules: []faultinject.Rule{
			{Endpoint: "server-*", ErrRate: 0.03},
			{Endpoint: ServerName(1), RespLossRate: 0.05},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := fnet.Stats()
	if st.Errors == 0 || st.RespLosses == 0 {
		t.Fatalf("fault schedule injected nothing (stats %+v); the test is vacuous", st)
	}

	clean := cfg
	clean.Retry = nil
	ref, err := Train(d, clean)
	if err != nil {
		t.Fatal(err)
	}
	if !sameStructure(t, ref.Model, res.Model) {
		t.Fatalf("model diverged under %d injected errors and %d lost responses", st.Errors, st.RespLosses)
	}
}

// TestFatalFaultNotRetried: a fatal injected error must propagate
// immediately even with retries enabled. The rule faults exactly one call —
// if the transport retried it, the retry would succeed and training would
// complete, so a failed run proves no retry happened.
func TestFatalFaultNotRetried(t *testing.T) {
	d := testData(t, 200, 83)
	cfg := smallCfg(2, 2)
	cfg.Retry = testRetry()
	_, _, err := faultTrain(t, d, cfg, faultinject.Spec{Rules: []faultinject.Rule{
		{Endpoint: ServerName(0), Op: ps.OpPushHist, Count: 1, ErrRate: 1, Fatal: true},
	}})
	if err == nil {
		t.Fatal("fatal fault was absorbed — it must not be retried")
	}
	if !strings.Contains(err.Error(), "injected fault") {
		t.Fatalf("error does not carry the cause: %v", err)
	}
}

// TestRetriedTransientSingleFault: the complementary case — the same
// one-call fault, but retryable: training must succeed.
func TestRetriedTransientSingleFault(t *testing.T) {
	d := testData(t, 200, 83)
	cfg := smallCfg(2, 2)
	cfg.Retry = testRetry()
	res, fnet, err := faultTrain(t, d, cfg, faultinject.Spec{Rules: []faultinject.Rule{
		{Endpoint: ServerName(0), Op: ps.OpPushHist, Count: 1, ErrRate: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := fnet.Stats().Errors; got != 1 {
		t.Fatalf("expected exactly 1 injected error, got %d", got)
	}
	if len(res.Model.Trees) != cfg.NumTrees {
		t.Fatalf("got %d trees, want %d", len(res.Model.Trees), cfg.NumTrees)
	}
}

// TestMasterRejectsUnknownOp guards the barrier protocol.
func TestMasterRejectsUnknownOp(t *testing.T) {
	net := transport.NewMemNetwork()
	mep, _ := net.Endpoint(MasterName)
	mep.Handle(NewMaster(1).Handler())
	cl, _ := net.Endpoint("client")
	if _, err := cl.Call(MasterName, transport.Message{Op: 99}); err == nil {
		t.Fatal("unknown op should fail")
	}
}

// TestBarrierReusable drives the same barrier through several generations
// from concurrent goroutines.
func TestBarrierReusable(t *testing.T) {
	const workers = 4
	const rounds = 25
	net := transport.NewMemNetwork()
	mep, _ := net.Endpoint(MasterName)
	mep.Handle(NewMaster(workers).Handler())

	done := make(chan error, workers)
	for i := 0; i < workers; i++ {
		ep, err := net.Endpoint(WorkerName(i))
		if err != nil {
			t.Fatal(err)
		}
		go func(ep transport.Endpoint) {
			for r := 0; r < rounds; r++ {
				if err := barrier(ep, "phase"); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(ep)
	}
	for i := 0; i < workers; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
