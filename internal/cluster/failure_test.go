package cluster

import (
	"errors"
	"strings"
	"testing"

	"dimboost/internal/transport"
)

// failingNetwork wraps a MemNetwork and injects an error into one endpoint's
// handler after a number of successful calls.
type failingNetwork struct {
	*transport.MemNetwork
	target    string
	failAfter int
}

type failingEndpoint struct {
	transport.Endpoint
	net *failingNetwork
}

func (n *failingNetwork) Endpoint(name string) (transport.Endpoint, error) {
	ep, err := n.MemNetwork.Endpoint(name)
	if err != nil {
		return nil, err
	}
	if name == n.target {
		return &failingEndpoint{Endpoint: ep, net: n}, nil
	}
	return ep, nil
}

func (e *failingEndpoint) Handle(h transport.Handler) {
	calls := 0
	e.Endpoint.Handle(func(from string, req transport.Message) (transport.Message, error) {
		calls++
		if calls > e.net.failAfter {
			return transport.Message{}, errors.New("injected server failure")
		}
		return h(from, req)
	})
}

// TestServerFailurePropagates: when a parameter server starts erroring
// mid-run, training must fail cleanly with the server's error — not hang at
// a barrier or panic.
func TestServerFailurePropagates(t *testing.T) {
	d := testData(t, 300, 73)
	cfg := smallCfg(3, 2)
	net := &failingNetwork{
		MemNetwork: transport.NewMemNetwork(),
		target:     ServerName(1),
		failAfter:  10,
	}
	defer net.Close()
	_, err := TrainOn(net, net.Meter(), d, cfg)
	if err == nil {
		t.Fatal("expected training to fail")
	}
	if !strings.Contains(err.Error(), "injected server failure") {
		t.Fatalf("error does not carry the cause: %v", err)
	}
}

// TestImmediateServerFailure: a server that fails from the very first call.
func TestImmediateServerFailure(t *testing.T) {
	d := testData(t, 200, 75)
	cfg := smallCfg(2, 2)
	net := &failingNetwork{
		MemNetwork: transport.NewMemNetwork(),
		target:     ServerName(0),
		failAfter:  0,
	}
	defer net.Close()
	if _, err := TrainOn(net, net.Meter(), d, cfg); err == nil {
		t.Fatal("expected training to fail")
	}
}

// TestMasterRejectsUnknownOp guards the barrier protocol.
func TestMasterRejectsUnknownOp(t *testing.T) {
	net := transport.NewMemNetwork()
	mep, _ := net.Endpoint(MasterName)
	mep.Handle(NewMaster(1).Handler())
	cl, _ := net.Endpoint("client")
	if _, err := cl.Call(MasterName, transport.Message{Op: 99}); err == nil {
		t.Fatal("unknown op should fail")
	}
}

// TestBarrierReusable drives the same barrier through several generations
// from concurrent goroutines.
func TestBarrierReusable(t *testing.T) {
	const workers = 4
	const rounds = 25
	net := transport.NewMemNetwork()
	mep, _ := net.Endpoint(MasterName)
	mep.Handle(NewMaster(workers).Handler())

	done := make(chan error, workers)
	for i := 0; i < workers; i++ {
		ep, err := net.Endpoint(WorkerName(i))
		if err != nil {
			t.Fatal(err)
		}
		go func(ep transport.Endpoint) {
			for r := 0; r < rounds; r++ {
				if err := barrier(ep, "phase"); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(ep)
	}
	for i := 0; i < workers; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
