package cluster

import (
	"sync"
	"testing"

	"dimboost/internal/dataset"
	"dimboost/internal/transport"
)

// TestTCPClusterMatchesLocal stands up a full cluster over real TCP sockets
// (loopback) — 2 servers, a master, 3 workers as separate endpoints — and
// checks the trained model against the single-process reference.
func TestTCPClusterMatchesLocal(t *testing.T) {
	d := testData(t, 400, 71)
	cfg := smallCfg(3, 2)
	cfg.ExactWire = true

	// Endpoints with dynamic ports.
	eps := map[string]*transport.TCPEndpoint{}
	names := []string{MasterName, ServerName(0), ServerName(1), WorkerName(0), WorkerName(1), WorkerName(2)}
	for _, name := range names {
		ep, err := transport.NewTCPEndpoint(name, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		eps[name] = ep
	}
	// Full peer mesh.
	for _, a := range names {
		for _, b := range names {
			if a != b {
				eps[a].AddPeer(b, eps[b].Addr())
			}
		}
	}

	// Roles.
	ServeMaster(eps[MasterName], cfg.NumWorkers)
	for i := 0; i < cfg.NumServers; i++ {
		if err := ServeServer(eps[ServerName(i)], i, d.NumFeatures, cfg); err != nil {
			t.Fatal(err)
		}
	}

	shards := dataset.PartitionRows(d, cfg.NumWorkers)
	results := make([]*WorkerResult, cfg.NumWorkers)
	errs := make([]error, cfg.NumWorkers)
	var wg sync.WaitGroup
	for i := 0; i < cfg.NumWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = RunWorker(eps[WorkerName(i)], i, shards[i], d.NumFeatures, cfg)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	// All workers converge on the identical model.
	for i := 1; i < cfg.NumWorkers; i++ {
		if !sameStructure(t, results[0].Model, results[i].Model) {
			t.Fatalf("worker %d model differs from worker 0", i)
		}
	}
	// And the TCP run equals the in-process run with the same config.
	mem, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sameStructure(t, mem.Model, results[0].Model) {
		t.Fatal("TCP cluster model differs from in-process cluster model")
	}
	meanLoss, _ := results[0].Model.Evaluate(d)
	if meanLoss <= 0 {
		t.Fatal("implausible loss")
	}
}
