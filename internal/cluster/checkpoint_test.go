package cluster

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"dimboost/internal/faultinject"
	"dimboost/internal/ps"
)

// memSink captures checkpoints in memory.
type memSink struct {
	mu    sync.Mutex
	last  []byte
	saves int
}

func (s *memSink) Save(treesDone int, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.last = append(s.last[:0], data...)
	s.saves++
	return nil
}

func (s *memSink) latest(t *testing.T) *Checkpoint {
	t.Helper()
	s.mu.Lock()
	data := append([]byte(nil), s.last...)
	s.mu.Unlock()
	ck, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

// TestCheckpointEncodeDecodeRoundTrip: every field survives the wire codec.
func TestCheckpointEncodeDecodeRoundTrip(t *testing.T) {
	d := testData(t, 300, 91)
	cfg := smallCfg(2, 2)
	cfg.ExactWire = true
	sink := &memSink{}
	cfg.Checkpoint = sink
	res, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sink.saves != cfg.NumTrees {
		t.Fatalf("saved %d checkpoints, want one per tree (%d)", sink.saves, cfg.NumTrees)
	}
	ck := sink.latest(t)
	if ck.TreesDone != cfg.NumTrees {
		t.Fatalf("TreesDone %d, want %d", ck.TreesDone, cfg.NumTrees)
	}
	if !sameStructure(t, res.Model, ck.Model) {
		t.Fatal("decoded model differs from trained model")
	}
	if !reflect.DeepEqual(ck.Events, res.Events) {
		t.Fatalf("events round-trip mismatch: %+v vs %+v", ck.Events, res.Events)
	}
	if ck.Fingerprint != fingerprintOf(cfg) {
		t.Fatalf("fingerprint mismatch: %+v vs %+v", ck.Fingerprint, fingerprintOf(cfg))
	}

	// Corruptions must be rejected, not crash.
	enc := ck.Encode()
	for name, data := range map[string][]byte{
		"empty":     {},
		"bad-magic": append([]byte("XXXX"), enc[4:]...),
		"truncated": enc[:len(enc)/2],
	} {
		if _, err := DecodeCheckpoint(data); err == nil {
			t.Errorf("%s checkpoint decoded without error", name)
		}
	}
}

// TestCheckpointResumeAfterKill is the PR's second headline scenario: a
// 10-tree run is killed by a fatal injected fault on the 6th NEW_TREE (so
// exactly 5 trees are checkpointed), then resumed from the checkpoint — and
// the resumed model must be identical, node for node, to a never-killed run
// (ExactWire removes float32 wire noise, so "identical" is exact).
func TestCheckpointResumeAfterKill(t *testing.T) {
	d := testData(t, 400, 95)
	cfg := smallCfg(3, 2)
	cfg.NumTrees = 10
	cfg.ExactWire = true
	cfg.Retry = testRetry()

	// Reference: the same run, never killed.
	clean := cfg
	clean.Retry = nil
	ref, err := Train(d, clean)
	if err != nil {
		t.Fatal(err)
	}

	// Run 1: killed while starting tree 5 (0-based). The leader sends one
	// NEW_TREE per server per tree, so the 6th NEW_TREE seen by server-0
	// belongs to the 6th tree.
	sink := &memSink{}
	cfg.Checkpoint = sink
	_, _, err = faultTrain(t, d, cfg, faultinject.Spec{Rules: []faultinject.Rule{
		{Endpoint: ServerName(0), Op: ps.OpNewTree, After: 5, ErrRate: 1, Fatal: true},
	}})
	if err == nil {
		t.Fatal("expected the injected kill to fail the run")
	}
	ck := sink.latest(t)
	if ck.TreesDone != 5 {
		t.Fatalf("checkpoint holds %d trees, want 5", ck.TreesDone)
	}

	// Run 2: resume from the checkpoint on a fresh, healthy cluster.
	cfg2 := cfg
	cfg2.Checkpoint = &memSink{}
	cfg2.Resume = ck
	res, err := Train(d, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Model.Trees) != cfg.NumTrees {
		t.Fatalf("resumed run has %d trees, want %d", len(res.Model.Trees), cfg.NumTrees)
	}
	if !sameStructure(t, ref.Model, res.Model) {
		t.Fatal("resumed model differs from the never-killed run")
	}
	if len(res.Events) != cfg.NumTrees {
		t.Fatalf("resumed run reports %d events, want %d", len(res.Events), cfg.NumTrees)
	}
}

// TestResumeWithFeatureSampling exercises the RNG fast-forward: with
// FeatureSampleRatio < 1 each tree consumes a seeded random draw, so a
// resume that fails to replay the first k draws picks different features
// and diverges from the reference run.
func TestResumeWithFeatureSampling(t *testing.T) {
	d := testData(t, 400, 97)
	cfg := smallCfg(2, 2)
	cfg.NumTrees = 8
	cfg.ExactWire = true
	cfg.FeatureSampleRatio = 0.5

	ref, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}

	sink := &memSink{}
	killed := cfg
	killed.Checkpoint = sink
	killed.Retry = testRetry()
	_, _, err = faultTrain(t, d, killed, faultinject.Spec{Rules: []faultinject.Rule{
		{Endpoint: ServerName(0), Op: ps.OpNewTree, After: 3, ErrRate: 1, Fatal: true},
	}})
	if err == nil {
		t.Fatal("expected the injected kill to fail the run")
	}
	ck := sink.latest(t)
	if ck.TreesDone != 3 {
		t.Fatalf("checkpoint holds %d trees, want 3", ck.TreesDone)
	}

	resumed := cfg
	resumed.Resume = ck
	res, err := Train(d, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !sameStructure(t, ref.Model, res.Model) {
		t.Fatal("resumed model differs — RNG fast-forward is broken")
	}
}

// TestResumeFingerprintMismatch: resuming under changed hyper-parameters
// must be refused up front, not silently produce a chimera model.
func TestResumeFingerprintMismatch(t *testing.T) {
	d := testData(t, 200, 99)
	cfg := smallCfg(2, 2)
	sink := &memSink{}
	cfg.Checkpoint = sink
	if _, err := Train(d, cfg); err != nil {
		t.Fatal(err)
	}
	ck := sink.latest(t)

	for name, mutate := range map[string]func(*Config){
		"seed":  func(c *Config) { c.Seed++ },
		"depth": func(c *Config) { c.MaxDepth++ },
		"wire":  func(c *Config) { c.Bits = 0; c.ExactWire = true },
		"trees": func(c *Config) { c.NumTrees = ck.TreesDone - 1 },
	} {
		bad := cfg
		bad.Resume = ck
		mutate(&bad)
		if _, err := Train(d, bad); err == nil {
			t.Errorf("%s: mismatched resume accepted", name)
		} else if !strings.Contains(err.Error(), "checkpoint") {
			t.Errorf("%s: error does not mention the checkpoint: %v", name, err)
		}
	}

	// NumWorkers is deliberately NOT in the fingerprint: resuming on a
	// different topology is allowed.
	more := cfg
	more.Resume = ck
	more.Checkpoint = nil
	more.NumWorkers = 3
	more.NumTrees = cfg.NumTrees + 2
	if _, err := Train(d, more); err == nil {
		// NumTrees IS fingerprinted, so this must fail; the pure worker
		// change below must pass.
		t.Error("changed NumTrees accepted")
	}
	workersOnly := cfg
	workersOnly.Resume = ck
	workersOnly.Checkpoint = nil
	workersOnly.NumWorkers = 3
	workersOnly.NumTrees = cfg.NumTrees
	if ck.TreesDone == cfg.NumTrees {
		// Resume at the end: training should complete immediately with the
		// checkpointed trees.
		res, err := Train(d, workersOnly)
		if err != nil {
			t.Fatalf("worker-count change rejected: %v", err)
		}
		if len(res.Model.Trees) != cfg.NumTrees {
			t.Fatalf("got %d trees, want %d", len(res.Model.Trees), cfg.NumTrees)
		}
	}
}

// TestDirSink: atomic save, load, and the fresh-start (no checkpoint) case.
func TestDirSink(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	if ck, err := LoadCheckpoint(dir); err != nil || ck != nil {
		t.Fatalf("missing dir should load as (nil, nil), got (%v, %v)", ck, err)
	}
	sink, err := NewDirSink(dir)
	if err != nil {
		t.Fatal(err)
	}

	d := testData(t, 200, 93)
	cfg := smallCfg(2, 1)
	cfg.Checkpoint = sink
	res, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || ck.TreesDone != cfg.NumTrees {
		t.Fatalf("loaded checkpoint %+v, want %d trees", ck, cfg.NumTrees)
	}
	if !sameStructure(t, res.Model, ck.Model) {
		t.Fatal("loaded model differs from trained model")
	}
	// Only the rotating file remains — no leaked temp files.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != checkpointFile {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("checkpoint dir holds %v, want only %q", names, checkpointFile)
	}
}
