package cluster

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"dimboost/internal/core"
	"dimboost/internal/loss"
	"dimboost/internal/tree"
	"dimboost/internal/wire"
)

// Checkpoint is the state needed to resume a killed distributed run at tree
// k instead of tree 0: the trees boosted so far plus a fingerprint of the
// hyper-parameters that shaped them. Worker-local state (shard predictions,
// the feature-sampling RNG) is deliberately not stored — it is recomputed
// deterministically from the model on resume, which keeps checkpoints small
// and lets the worker count change between the original run and the resume.
type Checkpoint struct {
	// TreesDone is how many trees the model contains; boosting resumes at
	// tree TreesDone.
	TreesDone int
	// Model holds the finished trees.
	Model *core.Model
	// Events are the per-tree convergence events recorded so far.
	Events []core.TreeEvent
	// Fingerprint pins the hyper-parameters a resume must match.
	Fingerprint Fingerprint
}

// Fingerprint is the subset of Config that determines the boosting
// trajectory. NumWorkers and NumServers are excluded on purpose: resuming on
// a different topology is valid (predictions are recomputed per shard and
// feature sampling is seeded globally).
type Fingerprint struct {
	Seed               int64
	Loss               loss.Kind
	NumTrees           int
	MaxDepth           int
	NumCandidates      int
	FeatureSampleRatio float64
	Bits               uint
	PullBits           uint
	ExactWire          bool
	SparseWire         bool
}

// fingerprintOf derives the fingerprint of a config.
func fingerprintOf(cfg Config) Fingerprint {
	return Fingerprint{
		Seed:               cfg.Seed,
		Loss:               cfg.Loss,
		NumTrees:           cfg.NumTrees,
		MaxDepth:           cfg.MaxDepth,
		NumCandidates:      cfg.NumCandidates,
		FeatureSampleRatio: cfg.FeatureSampleRatio,
		Bits:               cfg.Bits,
		PullBits:           cfg.PullBits,
		ExactWire:          cfg.ExactWire,
		SparseWire:         cfg.SparseWire,
	}
}

// CheckpointSink receives the encoded checkpoint after every finished tree.
// Save must be durable when it returns: the driver treats a sink error as
// fatal rather than silently training on without checkpoint coverage.
type CheckpointSink interface {
	Save(treesDone int, data []byte) error
}

// checkpoint wire format
const (
	checkpointMagic = "DBCK"
	// Version 2 added the PullBits and SparseWire fingerprint fields.
	checkpointVersion = 2
)

// Encode serializes the checkpoint with the internal/wire codec.
func (c *Checkpoint) Encode() []byte {
	w := wire.NewWriter(4096)
	w.Raw([]byte(checkpointMagic))
	w.Uint32(checkpointVersion)
	fp := c.Fingerprint
	w.Int64(fp.Seed)
	w.Int32(int32(fp.Loss))
	w.Uint32(uint32(fp.NumTrees))
	w.Uint32(uint32(fp.MaxDepth))
	w.Uint32(uint32(fp.NumCandidates))
	w.Float64(fp.FeatureSampleRatio)
	w.Uint32(uint32(fp.Bits))
	w.Uint32(uint32(fp.PullBits))
	w.Bool(fp.ExactWire)
	w.Bool(fp.SparseWire)
	w.Uint32(uint32(c.TreesDone))
	w.Int32(int32(c.Model.Loss))
	w.Float64(c.Model.BaseScore)
	w.Uint32(uint32(len(c.Model.Trees)))
	for _, t := range c.Model.Trees {
		w.Uint32(uint32(t.MaxDepth))
		w.Uint32(uint32(len(t.Nodes)))
		for _, n := range t.Nodes {
			w.Bool(n.Used)
			w.Bool(n.Leaf)
			w.Int32(n.Feature)
			w.Float64(n.Value)
			w.Float64(n.Gain)
			w.Float64(n.Weight)
		}
	}
	w.Uint32(uint32(len(c.Events)))
	for _, e := range c.Events {
		w.Uint32(uint32(e.Tree))
		w.Float64(e.TrainLoss)
		w.Int64(int64(e.Elapsed))
	}
	return w.Bytes()
}

// DecodeCheckpoint parses a checkpoint written by Encode and validates the
// embedded trees.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	r := wire.NewReader(data)
	if len(data) < 8 || string(data[:4]) != checkpointMagic {
		return nil, fmt.Errorf("cluster: not a checkpoint (bad magic)")
	}
	r.Skip(4)
	if v := r.Uint32(); v != checkpointVersion {
		return nil, fmt.Errorf("cluster: unsupported checkpoint version %d", v)
	}
	var c Checkpoint
	c.Fingerprint.Seed = r.Int64()
	c.Fingerprint.Loss = loss.Kind(r.Int32())
	c.Fingerprint.NumTrees = int(r.Uint32())
	c.Fingerprint.MaxDepth = int(r.Uint32())
	c.Fingerprint.NumCandidates = int(r.Uint32())
	c.Fingerprint.FeatureSampleRatio = r.Float64()
	c.Fingerprint.Bits = uint(r.Uint32())
	c.Fingerprint.PullBits = uint(r.Uint32())
	c.Fingerprint.ExactWire = r.Bool()
	c.Fingerprint.SparseWire = r.Bool()
	c.TreesDone = int(r.Uint32())
	c.Model = &core.Model{Loss: loss.Kind(r.Int32()), BaseScore: r.Float64()}
	numTrees := int(r.Uint32())
	if r.Err() != nil {
		return nil, fmt.Errorf("cluster: decoding checkpoint: %w", r.Err())
	}
	for i := 0; i < numTrees; i++ {
		depth := int(r.Uint32())
		numNodes := int(r.Uint32())
		if r.Err() != nil {
			return nil, fmt.Errorf("cluster: decoding checkpoint tree %d: %w", i, r.Err())
		}
		if numNodes != tree.MaxNodes(depth) {
			return nil, fmt.Errorf("cluster: checkpoint tree %d has %d nodes for depth %d", i, numNodes, depth)
		}
		t := &tree.Tree{MaxDepth: depth, Nodes: make([]tree.Node, numNodes)}
		for j := range t.Nodes {
			t.Nodes[j] = tree.Node{
				Used:    r.Bool(),
				Leaf:    r.Bool(),
				Feature: r.Int32(),
				Value:   r.Float64(),
				Gain:    r.Float64(),
				Weight:  r.Float64(),
			}
		}
		if r.Err() != nil {
			return nil, fmt.Errorf("cluster: decoding checkpoint tree %d: %w", i, r.Err())
		}
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("cluster: checkpoint tree %d invalid: %w", i, err)
		}
		c.Model.Trees = append(c.Model.Trees, t)
	}
	numEvents := int(r.Uint32())
	if r.Err() != nil {
		return nil, fmt.Errorf("cluster: decoding checkpoint: %w", r.Err())
	}
	for i := 0; i < numEvents; i++ {
		c.Events = append(c.Events, core.TreeEvent{
			Tree:      int(r.Uint32()),
			TrainLoss: r.Float64(),
			Elapsed:   time.Duration(r.Int64()),
		})
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("cluster: decoding checkpoint: %w", r.Err())
	}
	if c.TreesDone != len(c.Model.Trees) {
		return nil, fmt.Errorf("cluster: checkpoint claims %d trees, holds %d", c.TreesDone, len(c.Model.Trees))
	}
	return &c, nil
}

// validateResume checks a resume point against the run's config.
func validateResume(c *Checkpoint, cfg Config) error {
	if c.Model == nil || c.TreesDone != len(c.Model.Trees) {
		return fmt.Errorf("cluster: malformed resume checkpoint")
	}
	if c.TreesDone > cfg.NumTrees {
		return fmt.Errorf("cluster: checkpoint has %d trees, config wants only %d", c.TreesDone, cfg.NumTrees)
	}
	if got, want := c.Fingerprint, fingerprintOf(cfg); got != want {
		return fmt.Errorf("cluster: checkpoint fingerprint %+v does not match config %+v", got, want)
	}
	return nil
}

// checkpointFile is the single rotating checkpoint a DirSink maintains.
const checkpointFile = "checkpoint.dimbck"

// DirSink persists checkpoints into a directory, atomically replacing one
// rotating file (write to a temp name, fsync, rename) so a crash mid-save
// leaves the previous checkpoint intact.
type DirSink struct {
	Dir string
}

// NewDirSink creates the directory (if needed) and returns a sink over it.
func NewDirSink(dir string) (*DirSink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: checkpoint dir: %w", err)
	}
	return &DirSink{Dir: dir}, nil
}

// Save implements CheckpointSink.
func (s *DirSink) Save(treesDone int, data []byte) error {
	tmp, err := os.CreateTemp(s.Dir, checkpointFile+".tmp-*")
	if err != nil {
		return fmt.Errorf("cluster: checkpoint save: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("cluster: checkpoint save: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("cluster: checkpoint save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("cluster: checkpoint save: %w", err)
	}
	if err := os.Rename(name, filepath.Join(s.Dir, checkpointFile)); err != nil {
		os.Remove(name)
		return fmt.Errorf("cluster: checkpoint save: %w", err)
	}
	return nil
}

// LoadCheckpoint reads the latest checkpoint from a DirSink directory.
// Returns (nil, nil) if no checkpoint exists yet — a fresh start.
func LoadCheckpoint(dir string) (*Checkpoint, error) {
	data, err := os.ReadFile(filepath.Join(dir, checkpointFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("cluster: loading checkpoint: %w", err)
	}
	return DecodeCheckpoint(data)
}
