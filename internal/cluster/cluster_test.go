package cluster

import (
	"math"
	"testing"

	"dimboost/internal/core"
	"dimboost/internal/dataset"
	"dimboost/internal/loss"
)

func testData(t *testing.T, rows int, seed int64) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.SyntheticConfig{
		NumRows: rows, NumFeatures: 120, AvgNNZ: 12, Seed: seed, Zipf: 1.2, NoiseStd: 0.2,
	})
}

func smallCfg(w, p int) Config {
	cfg := DefaultConfig(w, p)
	cfg.NumTrees = 5
	cfg.MaxDepth = 4
	cfg.NumCandidates = 10
	cfg.Parallelism = 1
	cfg.Bits = 0
	return cfg
}

// sameStructure compares models node by node, ignoring sub-tolerance float
// noise.
func sameStructure(t *testing.T, a, b *core.Model) bool {
	t.Helper()
	if len(a.Trees) != len(b.Trees) {
		t.Logf("tree counts %d vs %d", len(a.Trees), len(b.Trees))
		return false
	}
	for ti := range a.Trees {
		for ni := range a.Trees[ti].Nodes {
			x, y := a.Trees[ti].Nodes[ni], b.Trees[ti].Nodes[ni]
			if x.Used != y.Used || x.Leaf != y.Leaf || x.Feature != y.Feature || x.Value != y.Value {
				t.Logf("tree %d node %d: %+v vs %+v", ti, ni, x, y)
				return false
			}
			if math.Abs(x.Weight-y.Weight) > 1e-9 {
				t.Logf("tree %d node %d weight %v vs %v", ti, ni, x.Weight, y.Weight)
				return false
			}
		}
	}
	return true
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(4, 2).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.NumWorkers = 0 },
		func(c *Config) { c.NumServers = 0 },
		func(c *Config) { c.MaxDepth = 1 },
		func(c *Config) { c.NumTrees = 0 },
		func(c *Config) { c.Bits = 8; c.ExactWire = true },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(4, 2)
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
}

// TestSingleWorkerMatchesLocalTrainer is invariant 6 of DESIGN.md: with one
// worker and exact wire the distributed pipeline must reproduce the
// single-process trainer bit for bit (same sketches, same splits).
func TestSingleWorkerMatchesLocalTrainer(t *testing.T) {
	d := testData(t, 400, 51)
	for _, servers := range []int{1, 3} {
		cfg := smallCfg(1, servers)
		cfg.ExactWire = true
		res, err := Train(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := core.Train(d, cfg.Config)
		if err != nil {
			t.Fatal(err)
		}
		if !sameStructure(t, ref, res.Model) {
			t.Fatalf("p=%d: distributed model differs from local", servers)
		}
	}
}

// TestDistributedBinnedMatchesNoBinning: the quantized histogram pipeline
// must be invisible at the model level in the distributed trainer too —
// split values travel the wire as float64, so workers recover the exact
// bucket and partition identically either way.
func TestDistributedBinnedMatchesNoBinning(t *testing.T) {
	d := testData(t, 700, 57)
	for _, workers := range []int{1, 3} {
		cfg := smallCfg(workers, 2)
		cfg.ExactWire = true
		binned, err := Train(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.NoBinning = true
		float, err := Train(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !sameStructure(t, float.Model, binned.Model) {
			t.Fatalf("w=%d: binned distributed model differs from float path", workers)
		}
	}
}

func TestMultiWorkerProducesWorkingModel(t *testing.T) {
	d := testData(t, 1200, 53)
	train, test := d.Split(0.9)
	local, err := core.Train(train, smallCfg(1, 1).Config)
	if err != nil {
		t.Fatal(err)
	}
	localErr := loss.ErrorRate(test.Labels, local.PredictBatch(test))

	for _, tc := range []struct{ w, p int }{{2, 1}, {4, 3}, {5, 5}} {
		cfg := smallCfg(tc.w, tc.p)
		res, err := Train(train, cfg)
		if err != nil {
			t.Fatalf("w=%d p=%d: %v", tc.w, tc.p, err)
		}
		if len(res.Model.Trees) != cfg.NumTrees {
			t.Fatalf("w=%d p=%d: %d trees", tc.w, tc.p, len(res.Model.Trees))
		}
		distErr := loss.ErrorRate(test.Labels, res.Model.PredictBatch(test))
		if distErr > localErr+0.08 {
			t.Fatalf("w=%d p=%d: distributed err %.3f much worse than local %.3f", tc.w, tc.p, distErr, localErr)
		}
		// convergence events are monotone non-increasing in elapsed time
		for i := 1; i < len(res.Events); i++ {
			if res.Events[i].Elapsed < res.Events[i-1].Elapsed {
				t.Fatal("event times must be monotone")
			}
		}
	}
}

func TestAllWorkersAgreeOnModel(t *testing.T) {
	// the model must be identical on every worker: verify via determinism —
	// two runs with the same seed produce the same model even though worker
	// scheduling is nondeterministic. ExactWire removes float32 noise;
	// worker-ordered merging removes arrival-order noise.
	d := testData(t, 600, 57)
	cfg := smallCfg(3, 2)
	cfg.ExactWire = true
	a, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sameStructure(t, a.Model, b.Model) {
		t.Fatal("distributed training is not deterministic")
	}
}

func TestAblationsStillTrain(t *testing.T) {
	d := testData(t, 500, 59)
	base := smallCfg(3, 2)
	base.ExactWire = true
	ref, err := Train(d, base)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*Config){
		"no-two-phase": func(c *Config) { c.DisableTwoPhase = true },
		"no-scheduler": func(c *Config) { c.DisableScheduler = true },
		"both-off":     func(c *Config) { c.DisableTwoPhase = true; c.DisableScheduler = true },
	} {
		cfg := base
		mutate(&cfg)
		res, err := Train(d, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// two-phase and the scheduler are pure communication optimizations:
		// the model must not change. (The no-two-phase pull narrows shards
		// to float32, so compare with the float32-pull variant separately.)
		if name == "no-scheduler" {
			if !sameStructure(t, ref.Model, res.Model) {
				t.Fatalf("%s: model changed", name)
			}
		} else {
			_, e1 := ref.Model.Evaluate(d)
			_, e2 := res.Model.Evaluate(d)
			if math.Abs(e1-e2) > 0.05 {
				t.Fatalf("%s: error %v vs %v", name, e2, e1)
			}
		}
	}
}

func TestCompressedTrainingAccuracy(t *testing.T) {
	// §7.2: 8-bit histograms should not significantly damage accuracy.
	d := testData(t, 1500, 61)
	train, test := d.Split(0.9)

	full := smallCfg(4, 3)
	full.NumTrees = 8
	resFull, err := Train(train, full)
	if err != nil {
		t.Fatal(err)
	}
	comp := full
	comp.Bits = 8
	resComp, err := Train(train, comp)
	if err != nil {
		t.Fatal(err)
	}
	eFull := loss.ErrorRate(test.Labels, resFull.Model.PredictBatch(test))
	eComp := loss.ErrorRate(test.Labels, resComp.Model.PredictBatch(test))
	if eComp > eFull+0.05 {
		t.Fatalf("compressed err %.4f vs full %.4f — accuracy damaged", eComp, eFull)
	}
	// compression must reduce bytes moved
	if resComp.Stats.TotalBytes >= resFull.Stats.TotalBytes {
		t.Fatalf("compressed moved %d bytes, full %d", resComp.Stats.TotalBytes, resFull.Stats.TotalBytes)
	}
}

func TestTwoPhaseReducesTraffic(t *testing.T) {
	d := testData(t, 500, 63)
	base := smallCfg(3, 3)
	on, err := Train(d, base)
	if err != nil {
		t.Fatal(err)
	}
	off := base
	off.DisableTwoPhase = true
	offRes, err := Train(d, off)
	if err != nil {
		t.Fatal(err)
	}
	if on.Stats.TotalBytes >= offRes.Stats.TotalBytes {
		t.Fatalf("two-phase on moved %d bytes, off %d — should be less", on.Stats.TotalBytes, offRes.Stats.TotalBytes)
	}
}

func TestStatsPopulated(t *testing.T) {
	d := testData(t, 300, 65)
	res, err := Train(d, smallCfg(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.WallTime <= 0 || s.TotalBytes <= 0 || s.TotalMsgs <= 0 || s.MaxNodeBytes <= 0 {
		t.Fatalf("stats not populated: %+v", s)
	}
	if s.Compute.BuildHist <= 0 || s.Compute.Sketch <= 0 {
		t.Fatalf("compute phases empty: %+v", s.Compute)
	}
	if s.ModeledCommTime <= 0 {
		t.Fatal("modeled comm time empty")
	}
}

func TestFeatureSamplingDistributed(t *testing.T) {
	d := testData(t, 400, 67)
	cfg := smallCfg(3, 2)
	cfg.FeatureSampleRatio = 0.4
	res, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// all split features must come from within the feature space and the
	// model must be usable
	for _, tn := range res.Model.Trees {
		for _, nd := range tn.Nodes {
			if nd.Used && !nd.Leaf {
				if nd.Feature < 0 || int(nd.Feature) >= d.NumFeatures {
					t.Fatalf("split feature %d out of range", nd.Feature)
				}
			}
		}
	}
}

func TestRegressionDistributed(t *testing.T) {
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: 800, NumFeatures: 80, AvgNNZ: 10, Seed: 69, Regression: true, NoiseStd: 0.1, Zipf: 1.2})
	train, test := d.Split(0.9)
	cfg := smallCfg(3, 2)
	cfg.Loss = loss.Squared
	cfg.NumTrees = 10
	res, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	zero := loss.RMSE(test.Labels, make([]float64, test.NumRows()))
	got := loss.RMSE(test.Labels, res.Model.PredictBatch(test))
	if got >= zero {
		t.Fatalf("distributed regression RMSE %v not better than zero predictor %v", got, zero)
	}
}

func TestCompressedRunsAreDeterministic(t *testing.T) {
	// stochastic rounding is seeded per worker and servers merge in worker
	// order, so even 8-bit runs must reproduce exactly
	d := testData(t, 400, 77)
	cfg := smallCfg(3, 2)
	cfg.Bits = 8
	a, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sameStructure(t, a.Model, b.Model) {
		t.Fatal("compressed training is not deterministic")
	}
}
