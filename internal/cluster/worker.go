package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dimboost/internal/core"
	"dimboost/internal/dataset"
	"dimboost/internal/histogram"
	"dimboost/internal/loss"
	"dimboost/internal/parallel"
	"dimboost/internal/predict"
	"dimboost/internal/ps"
	"dimboost/internal/sketch"
	"dimboost/internal/transport"
	"dimboost/internal/tree"
)

// worker executes the seven-phase loop of Figure 7 on its data shard.
// Worker 0 is the leader: it samples features and pushes them to the PS.
type worker struct {
	id     int
	cfg    Config
	shard  *dataset.Dataset
	ep     transport.Endpoint
	client *ps.Client

	cands  []sketch.Candidates
	preds  []float64
	grad   []float64
	hess   []float64
	model  *core.Model
	lossFn loss.Func
	rng    *rand.Rand
	// pool is the shared chunked worker pool every local compute phase
	// (gradients, histogram builds, index splits, scoring) runs through —
	// the same machinery as the single-process trainer, with the same
	// any-parallelism bit-identity guarantee.
	pool *parallel.Pool

	times core.PhaseTimes
	// events records per-tree progress for convergence curves; only the
	// leader's events are reported.
	events []core.TreeEvent
	start  time.Time

	// computeLock, when non-nil, serializes compute sections across
	// workers so phase timers stay truthful on over-subscribed machines.
	computeLock *sync.Mutex

	// checkpoint, when non-nil, receives the encoded model after every
	// finished tree; the driver sets it on the leader only.
	checkpoint CheckpointSink
	// resume, when non-nil, restarts boosting after the checkpointed trees.
	resume *Checkpoint
}

func (wk *worker) barrier(phase string) error {
	start := time.Now()
	err := barrier(wk.ep, phase)
	clusterMetrics().spans.Record(wk.id, -1, -1, "barrier", start, time.Since(start))
	return err
}

// compute runs f inside the optional serialization lock and returns its
// duration.
func (wk *worker) compute(f func()) time.Duration {
	if wk.computeLock != nil {
		wk.computeLock.Lock()
		defer wk.computeLock.Unlock()
	}
	start := time.Now()
	f()
	return time.Since(start)
}

// run drives the full training loop and leaves the model in wk.model.
func (wk *worker) run() error {
	n := wk.shard.NumRows()
	wk.preds = make([]float64, n)
	wk.grad = make([]float64, n)
	wk.hess = make([]float64, n)
	wk.lossFn = loss.New(wk.cfg.Loss)
	wk.model = &core.Model{Loss: wk.cfg.Loss}
	wk.rng = rand.New(rand.NewSource(wk.cfg.Seed))
	wk.pool = parallel.New(wk.cfg.ResolvedParallelism())
	wk.start = time.Now()

	startTree := 0
	if wk.resume != nil {
		startTree = wk.resume.TreesDone
		wk.restoreFrom(wk.resume)
	}

	// Phase 1: CREATE_SKETCH — local sketches pushed to the PS.
	var set *sketch.Set
	ss := time.Now()
	sd := wk.compute(func() {
		set = sketch.NewSet(wk.shard.NumFeatures, wk.cfg.sketchEps())
		set.AddDataset(wk.shard)
	})
	wk.times.Sketch += sd
	clusterMetrics().spans.Record(wk.id, -1, -1, "sketch", ss, sd)
	if err := wk.client.PushSketches(set); err != nil {
		return err
	}
	if err := wk.barrier("CREATE_SKETCH"); err != nil {
		return err
	}

	// Phase 2: PULL_SKETCH — merged candidates for every feature.
	var err error
	wk.cands, err = wk.client.PullCandidates(wk.cfg.NumCandidates)
	if err != nil {
		return err
	}
	if err := wk.barrier("PULL_SKETCH"); err != nil {
		return err
	}

	for t := startTree; t < wk.cfg.NumTrees; t++ {
		if err := wk.trainTree(t); err != nil {
			return fmt.Errorf("cluster: worker %d tree %d: %w", wk.id, t, err)
		}
		if err := wk.saveCheckpoint(t + 1); err != nil {
			return err
		}
	}
	// FINISH: the leader would write the model out; here every worker holds
	// the identical model and the driver collects worker 0's.
	return wk.barrier("FINISH")
}

// restoreFrom adopts a checkpoint: the finished trees, shard predictions
// recomputed from them, and the feature-sampling RNG replayed past the
// consumed draws — after which boosting continues exactly as if the run had
// never been interrupted. Recomputing predictions replays one leaf-weight
// addition per row per tree in tree order through the compiled engine, the
// same accumulation training performed, so the restored predictions are
// bit-identical to the originals. (Training skips zero-weight leaves; the
// engine adds a +0 tree score instead, which is also a no-op since
// predictions accumulated from +0 by nonzero additions can never be -0.)
func (wk *worker) restoreFrom(ck *Checkpoint) {
	wk.model.BaseScore = ck.Model.BaseScore
	wk.model.Trees = append(wk.model.Trees, ck.Model.Trees...)
	wk.events = append(wk.events, ck.Events...)
	wk.compute(func() {
		n := wk.shard.NumRows()
		scratch := make([]float64, n)
		for _, tn := range ck.Model.Trees {
			eng, err := predict.Compile([]*tree.Tree{tn}, 0)
			if err != nil {
				// Checkpointed trees passed decode validation; an invalid
				// tree here means memory corruption — fall back to the
				// interpreted walk rather than lose the restore.
				for i := 0; i < n; i++ {
					if w := tn.Predict(wk.shard.Row(i)); w != 0 {
						wk.preds[i] += w
					}
				}
				continue
			}
			eng.Workers = wk.pool.Workers()
			eng.PredictBatchInto(wk.shard, scratch)
			wk.pool.For(n, parallel.RowChunk, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					wk.preds[i] += scratch[i]
				}
			})
		}
	})
	// Every worker draws one feature sample per tree (the leader pushes it,
	// the rest keep their RNGs in step), so fast-forward by replaying.
	for t := 0; t < ck.TreesDone; t++ {
		wk.sampleFeatures()
	}
}

// saveCheckpoint encodes the model state once tree treesDone−1 is finished
// and hands it to the sink. Only the leader carries a sink; a sink failure
// is fatal so a run never silently outlives its checkpoint coverage.
func (wk *worker) saveCheckpoint(treesDone int) error {
	if wk.checkpoint == nil {
		return nil
	}
	ck := &Checkpoint{
		TreesDone:   treesDone,
		Model:       wk.model,
		Events:      wk.events,
		Fingerprint: fingerprintOf(wk.cfg),
	}
	if err := wk.checkpoint.Save(treesDone, ck.Encode()); err != nil {
		return fmt.Errorf("cluster: checkpoint after tree %d: %w", treesDone-1, err)
	}
	return nil
}

// sampleFeatures draws the leader's per-tree feature subset.
func (wk *worker) sampleFeatures() []int32 {
	m := wk.shard.NumFeatures
	if wk.cfg.FeatureSampleRatio >= 1 {
		return histogram.AllFeatures(m)
	}
	k := int(wk.cfg.FeatureSampleRatio * float64(m))
	if k < 1 {
		k = 1
	}
	perm := wk.rng.Perm(m)[:k]
	out := make([]int32, k)
	for i, f := range perm {
		out[i] = int32(f)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// trainTree runs NEW_TREE → (BUILD_HISTOGRAM → FIND_SPLIT → SPLIT_TREE)* for
// one tree.
func (wk *worker) trainTree(t int) error {
	cfg := wk.cfg
	n := wk.shard.NumRows()
	m := clusterMetrics()
	treeStart := time.Now()

	// Phase 3: NEW_TREE — gradients, leader samples features.
	gs := time.Now()
	gd := wk.compute(func() {
		wk.pool.For(n, parallel.RowChunk, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				wk.grad[i], wk.hess[i] = wk.lossFn.Gradients(float64(wk.shard.Labels[i]), wk.preds[i])
			}
		})
	})
	wk.times.Gradients += gd
	m.spans.Record(wk.id, t, -1, "gradients", gs, gd)

	if wk.id == 0 {
		sampled := wk.sampleFeatures()
		if err := wk.client.NewTree(sampled); err != nil {
			return err
		}
	} else {
		// keep non-leader RNGs in step so every tree uses one draw
		wk.sampleFeatures()
	}
	if err := wk.barrier("NEW_TREE"); err != nil {
		return err
	}
	sampled, err := wk.client.PullSampled()
	if err != nil {
		return err
	}
	layout, err := histogram.NewLayout(sampled, wk.cands, wk.shard.NumFeatures)
	if err != nil {
		return err
	}

	// Quantize the shard once per tree: histogram construction and node
	// splitting both run on bin ids (Config.NoBinning ablates back to the
	// float path; models are bit-identical either way).
	var binned *histogram.Binned
	if !cfg.NoBinning {
		bs := time.Now()
		bd := wk.compute(func() {
			binned = histogram.NewBinned(wk.shard, layout, wk.pool.Workers())
		})
		wk.times.BuildHist += bd
		m.spans.Record(wk.id, t, -1, "binning", bs, bd)
	}

	tn := tree.New(cfg.MaxDepth)
	maxNodes := tree.MaxNodes(cfg.MaxDepth)
	idx := tree.NewIndex(n, maxNodes)
	type nodeState struct{ g, h float64 }
	states := make(map[int]nodeState, maxNodes)
	hasState := func(node int) (nodeState, bool) { s, ok := states[node]; return s, ok }

	active := []int{0}
	buildOpts := histogram.BuildOptions{
		Parallelism: wk.pool.Workers(),
		BatchSize:   cfg.BatchSize,
		Dense:       cfg.DenseBuild,
		Pool:        histogram.NewPool(layout),
	}
	// One reusable histogram buffer per tree: PushHistogram is synchronous,
	// so the buffer is free again once the push returns.
	hist := histogram.New(layout)

	for depth := 0; depth < cfg.MaxDepth && len(active) > 0; depth++ {
		layerStart := time.Now()
		var buildD, psD time.Duration
		atMax := depth == cfg.MaxDepth-1
		if atMax {
			// Last layer: no histograms needed; weights come from states.
			for _, node := range active {
				st, ok := hasState(node)
				if !ok {
					return fmt.Errorf("node %d reached max depth without state", node)
				}
				tn.SetLeaf(node, cfg.LearningRate*core.LeafWeight(st.g, st.h, cfg.Lambda))
			}
			break
		}

		// Phase 4: BUILD_HISTOGRAM — local histograms for active nodes,
		// pushed to the PS.
		for _, node := range active {
			bd := wk.compute(func() {
				hist.Reset()
				if binned != nil {
					histogram.BuildBinned(hist, binned, idx.Rows(node), wk.grad, wk.hess, buildOpts)
				} else {
					histogram.Build(hist, wk.shard, idx.Rows(node), wk.grad, wk.hess, buildOpts)
				}
			})
			wk.times.BuildHist += bd
			buildD += bd
			ps0 := time.Now()
			err := wk.client.PushHistogram(node, hist)
			psD += time.Since(ps0)
			if err != nil {
				return err
			}
		}
		if err := wk.barrier("BUILD_HISTOGRAM"); err != nil {
			return err
		}

		// Phase 5: FIND_SPLIT — the round-robin task scheduler (§6.2)
		// assigns the i-th active node to worker (i mod w); each
		// responsible worker finds the node's best split and pushes it.
		fs := time.Now()
		for i, node := range active {
			owner := i % cfg.NumWorkers
			if cfg.DisableScheduler {
				owner = 0 // a single agent handles every node (ablation)
			}
			if owner != wk.id {
				continue
			}
			var res ps.SplitResult
			if cfg.DisableTwoPhase {
				// Pull the full histogram shards and run Algorithm 1
				// locally (ablation; h/p bytes per server instead of one
				// split record).
				ps0 := time.Now()
				hist, err := wk.client.PullHistogram(node, layout)
				psD += time.Since(ps0)
				if err != nil {
					return err
				}
				tg, th := hist.FeatureTotals(0)
				res = ps.SplitResult{
					Split:     core.FindSplit(hist, tg, th, cfg.Lambda, cfg.Gamma, cfg.MinChildHessian),
					NodeG:     tg,
					NodeH:     th,
					HasTotals: true,
				}
			} else {
				ps0 := time.Now()
				r, err := wk.client.PullSplit(node, cfg.Lambda, cfg.Gamma, cfg.MinChildHessian)
				psD += time.Since(ps0)
				if err != nil {
					return err
				}
				res = r
			}
			ps0 := time.Now()
			err := wk.client.PushSplitResult(node, res)
			psD += time.Since(ps0)
			if err != nil {
				return err
			}
		}
		fd := time.Since(fs)
		wk.times.FindSplit += fd
		m.spans.Record(wk.id, t, depth, "find_split", fs, fd)
		if err := wk.barrier("FIND_SPLIT"); err != nil {
			return err
		}

		// Phase 6: SPLIT_TREE — pull split results, split nodes, update the
		// node-to-instance index.
		ps0 := time.Now()
		results, err := wk.client.PullSplitResults(active)
		psD += time.Since(ps0)
		if err != nil {
			return err
		}
		var next []int
		var splitErr error
		sps := time.Now()
		spd := wk.compute(func() {
			for _, node := range active {
				res, ok := results[node]
				if !ok {
					splitErr = fmt.Errorf("no split result for node %d", node)
					return
				}
				if _, seen := states[node]; !seen && res.HasTotals {
					states[node] = nodeState{res.NodeG, res.NodeH}
				}
				if !res.Split.Found {
					s := states[node]
					tn.SetLeaf(node, cfg.LearningRate*core.LeafWeight(s.g, s.h, cfg.Lambda))
					continue
				}
				sp := res.Split
				tn.SetSplit(node, sp.Feature, sp.Value, sp.Gain)
				// Split values travel the wire as float64, so the bin
				// recovery inside SplitPredicate stays exact.
				idx.SplitStable(node, core.SplitPredicate(wk.shard, binned, layout, sp), wk.pool)
				states[tree.Left(node)] = nodeState{sp.LeftG, sp.LeftH}
				states[tree.Right(node)] = nodeState{sp.RightG, sp.RightH}
				next = append(next, tree.Left(node), tree.Right(node))
			}
		})
		wk.times.SplitTree += spd
		m.spans.Record(wk.id, t, depth, "build_hist", layerStart, buildD)
		m.spans.Record(wk.id, t, depth, "split_tree", sps, spd)
		m.spans.Record(wk.id, t, depth, "ps_round_trip", layerStart, psD)
		if splitErr != nil {
			return splitErr
		}
		active = next
		if err := wk.barrier("SPLIT_TREE"); err != nil {
			return err
		}
	}

	// Update local predictions from the finished tree's leaves, chunked
	// over each leaf's rows.
	for node := range tn.Nodes {
		nd := &tn.Nodes[node]
		if !nd.Used || !nd.Leaf || nd.Weight == 0 {
			continue
		}
		rows := idx.Rows(node)
		w := nd.Weight
		wk.pool.For(len(rows), parallel.RowChunk, func(lo, hi int) {
			for _, r := range rows[lo:hi] {
				wk.preds[r] += w
			}
		})
	}
	wk.model.Trees = append(wk.model.Trees, tn)
	wk.events = append(wk.events, core.TreeEvent{
		Tree:      t,
		TrainLoss: loss.MeanLoss(wk.lossFn, wk.shard.Labels, wk.preds),
		Elapsed:   time.Since(wk.start),
	})
	m.spans.Record(wk.id, t, -1, "tree", treeStart, time.Since(treeStart))
	if wk.id == 0 {
		// The leader alone counts finished trees so the cluster-wide total
		// is not multiplied by the worker count.
		m.trees.Inc()
	}
	return nil
}
