package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dimboost/internal/compress"
	"dimboost/internal/core"
	"dimboost/internal/dataset"
	"dimboost/internal/ps"
	"dimboost/internal/simnet"
	"dimboost/internal/transport"
)

// Config extends the GBDT hyper-parameters with cluster topology and the
// communication options of §6.
type Config struct {
	core.Config

	// NumWorkers is w. Each worker gets one contiguous row shard.
	NumWorkers int
	// NumServers is p, the parameter-server count (Table 4 varies this).
	NumServers int
	// NumRanges is the range-hash partition granularity; 0 uses the
	// default.
	NumRanges int
	// Bits is the compressed histogram width r (§6.1); 0 sends float32.
	Bits uint
	// PullBits asks servers to fixed-point compress pull responses (merged
	// histograms, split statistics) at this width; 0 pulls raw floats.
	PullBits uint
	// ExactWire sends float64 histograms, for bit-reproducibility tests.
	ExactWire bool
	// SparseWire lets both wire directions elide zero histogram buckets
	// with the run-length sparse encoding whenever it is smaller. Lossless
	// (sparse spans keep the negotiated value width), so it composes with
	// ExactWire.
	SparseWire bool
	// DisableTwoPhase pulls raw histogram shards instead of server-side
	// splits (ablation, Table 3).
	DisableTwoPhase bool
	// DisableScheduler routes every split task to worker 0 (ablation,
	// Table 3).
	DisableScheduler bool
	// SerializeCompute makes workers take a shared lock around their
	// compute sections, so per-worker phase timers measure each worker's
	// own work instead of including time-sliced interference — essential
	// for meaningful per-worker statistics on machines with fewer cores
	// than workers. Results are unchanged; wall time on multi-core
	// machines grows.
	SerializeCompute bool

	// Retry, when non-nil, wraps every worker→server endpoint in a
	// transport.RetryEndpoint with this policy, so transient RPC failures
	// (timeouts, lost responses, recovering servers) are retried instead of
	// killing the run. Servers deduplicate the retried requests by their
	// idempotency envelope, so a retry after a lost response never
	// double-applies. Barrier calls to the master are deliberately not
	// retried: a barrier call increments the master's generation, so a
	// retried barrier would count one worker twice.
	Retry *transport.RetryPolicy
	// Checkpoint, when non-nil, receives the encoded model state after
	// every finished tree (leader worker only — all workers hold identical
	// models). A sink error is fatal: training stops rather than silently
	// continuing without checkpoint coverage.
	Checkpoint CheckpointSink
	// Resume, when non-nil, restarts boosting at Resume.TreesDone: workers
	// adopt the checkpointed trees, recompute their shard predictions from
	// them, and fast-forward the feature-sampling RNG, producing the same
	// model a never-killed run would have. The checkpoint's fingerprint
	// must match this config (see Fingerprint).
	Resume *Checkpoint
}

// DefaultConfig mirrors the paper's protocol: r=8 compressed histograms,
// two-phase split finding, and the round-robin scheduler all on.
func DefaultConfig(workers, servers int) Config {
	return Config{
		Config:     core.DefaultConfig(),
		NumWorkers: workers,
		NumServers: servers,
		Bits:       8,
	}
}

// Validate extends core validation with topology checks.
func (c Config) Validate() error {
	if err := c.Config.Validate(); err != nil {
		return err
	}
	if c.NumWorkers < 1 {
		return fmt.Errorf("cluster: NumWorkers %d < 1", c.NumWorkers)
	}
	if c.NumServers < 1 {
		return fmt.Errorf("cluster: NumServers %d < 1", c.NumServers)
	}
	if c.MaxDepth < 2 {
		// Root leaf weights require global gradient totals, which only
		// materialize through the first FIND_SPLIT round.
		return fmt.Errorf("cluster: MaxDepth must be >= 2, got %d", c.MaxDepth)
	}
	if c.Bits != 0 && c.ExactWire {
		return fmt.Errorf("cluster: Bits and ExactWire are mutually exclusive")
	}
	if c.PullBits != 0 && c.ExactWire {
		return fmt.Errorf("cluster: PullBits and ExactWire are mutually exclusive")
	}
	if c.Bits != 0 && !compress.ValidWidth(c.Bits) {
		return fmt.Errorf("cluster: unsupported Bits width %d", c.Bits)
	}
	if c.PullBits != 0 && !compress.ValidWidth(c.PullBits) {
		return fmt.Errorf("cluster: unsupported PullBits width %d", c.PullBits)
	}
	return nil
}

// sketchEps mirrors core.Config's default resolution.
func (c Config) sketchEps() float64 {
	if c.SketchEps > 0 {
		return c.SketchEps
	}
	return 1 / (2 * float64(c.NumCandidates))
}

// Stats aggregates a distributed run's measurements.
type Stats struct {
	// WallTime is the end-to-end in-process duration.
	WallTime time.Duration
	// LoadTime covers dataset partitioning (the paper's "data loading").
	LoadTime time.Duration
	// Compute is the maximum per-worker compute time (sketch + gradients +
	// histogram building + split finding + tree splitting).
	Compute core.PhaseTimes
	// Bytes/Msgs are per-node traffic maxima and totals from the meter.
	MaxNodeBytes int64
	MaxNodeMsgs  int64
	TotalBytes   int64
	TotalMsgs    int64
	// ModeledCommTime prices the measured traffic with the §3 cost model
	// (per-node maxima: α per message plus β per byte).
	ModeledCommTime time.Duration
}

// Result of a distributed training run.
type Result struct {
	Model  *core.Model
	Events []core.TreeEvent
	Stats  Stats
}

// TrainHooks customize the network and config Train builds internally — the
// seam dimboost-bench uses to run the paper's experiments under injected
// faults (-fault-spec) without threading fault plumbing through every
// experiment signature.
var TrainHooks struct {
	// WrapNetwork, when non-nil, wraps the in-process network (e.g. in a
	// faultinject.Network).
	WrapNetwork func(transport.Network) transport.Network
	// Config, when non-nil, edits the effective config just before TrainOn
	// (e.g. enabling retries to survive the injected faults).
	Config func(*Config)
}

// Train runs DimBoost's full distributed pipeline in process: p servers, one
// master, and w workers over a metered in-memory network.
func Train(d *dataset.Dataset, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if TrainHooks.Config != nil {
		TrainHooks.Config(&cfg)
	}
	mem := transport.NewMemNetwork()
	defer mem.Close()
	var net transport.Network = mem
	if TrainHooks.WrapNetwork != nil {
		net = TrainHooks.WrapNetwork(net)
	}
	return TrainOn(net, mem.Meter(), d, cfg)
}

// TrainOn runs the pipeline over a caller-supplied network (tests use this
// with TCP endpoints wrapped into the same interface). meter may be nil.
func TrainOn(net transport.Network, meter *transport.Meter, d *dataset.Dataset, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Resume != nil {
		if err := validateResume(cfg.Resume, cfg); err != nil {
			return nil, err
		}
	}
	start := time.Now()

	loadStart := time.Now()
	shards := dataset.PartitionRows(d, cfg.NumWorkers)
	loadTime := time.Since(loadStart)

	part, err := ps.NewPartition(d.NumFeatures, cfg.NumServers, cfg.NumRanges)
	if err != nil {
		return nil, err
	}

	// Servers.
	serverNames := make([]string, cfg.NumServers)
	for i := range serverNames {
		serverNames[i] = fmt.Sprintf("server-%d", i)
		ep, err := net.Endpoint(serverNames[i])
		if err != nil {
			return nil, err
		}
		srv := ps.NewServer(i, part, cfg.sketchEps())
		ep.Handle(srv.Handler())
	}

	// Master.
	mep, err := net.Endpoint(MasterName)
	if err != nil {
		return nil, err
	}
	mep.Handle(NewMaster(cfg.NumWorkers).Handler())

	// Workers.
	var computeLock *sync.Mutex
	if cfg.SerializeCompute {
		computeLock = &sync.Mutex{}
	}
	workers := make([]*worker, cfg.NumWorkers)
	for i := range workers {
		ep, err := net.Endpoint(fmt.Sprintf("worker-%d", i))
		if err != nil {
			return nil, err
		}
		client := ps.NewClient(clientEndpoint(ep, cfg), part, serverNames, i)
		client.Bits = cfg.Bits
		client.PullBits = cfg.PullBits
		client.Exact = cfg.ExactWire
		client.Sparse = cfg.SparseWire
		workers[i] = &worker{id: i, cfg: cfg, shard: shards[i], ep: ep, client: client, computeLock: computeLock, resume: cfg.Resume}
	}
	workers[0].checkpoint = cfg.Checkpoint

	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	for i, wk := range workers {
		wg.Add(1)
		go func(i int, wk *worker) {
			defer wg.Done()
			errs[i] = wk.run()
			if errs[i] != nil {
				// release peers blocked at barriers so the cluster shuts
				// down instead of deadlocking
				if aerr := abortMaster(wk.ep, errs[i].Error()); aerr != nil {
					errs[i] = errors.Join(errs[i], fmt.Errorf("cluster: abort notification failed: %w", aerr))
				}
			}
		}(i, wk)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: worker %d: %w", i, err)
		}
	}

	res := &Result{Model: workers[0].model, Events: workers[0].events}
	res.Stats.WallTime = time.Since(start)
	res.Stats.LoadTime = loadTime
	for _, wk := range workers {
		res.Stats.Compute = maxPhases(res.Stats.Compute, wk.times)
	}
	if meter != nil {
		mx := meter.MaxPerNode()
		tot := meter.Totals()
		res.Stats.MaxNodeBytes = maxInt64(mx.BytesSent, mx.BytesRecv)
		res.Stats.MaxNodeMsgs = mx.MsgsSent
		res.Stats.TotalBytes = tot.BytesSent
		res.Stats.TotalMsgs = tot.MsgsSent
		secs := simnet.Cost(res.Stats.MaxNodeMsgs, res.Stats.MaxNodeBytes, simnet.GigabitEthernet())
		res.Stats.ModeledCommTime = time.Duration(secs * float64(time.Second))
	}
	return res, nil
}

// clientEndpoint applies the config's retry policy to a worker→server
// endpoint. The worker's barrier calls keep using the raw endpoint.
func clientEndpoint(ep transport.Endpoint, cfg Config) transport.Endpoint {
	if cfg.Retry == nil {
		return ep
	}
	return transport.NewRetryEndpoint(ep, *cfg.Retry)
}

func maxPhases(a, b core.PhaseTimes) core.PhaseTimes {
	return core.PhaseTimes{
		Sketch:    maxDur(a.Sketch, b.Sketch),
		Gradients: maxDur(a.Gradients, b.Gradients),
		BuildHist: maxDur(a.BuildHist, b.BuildHist),
		FindSplit: maxDur(a.FindSplit, b.FindSplit),
		SplitTree: maxDur(a.SplitTree, b.SplitTree),
	}
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
