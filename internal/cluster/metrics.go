package cluster

import (
	"sync"

	"dimboost/internal/obs"
)

// clusterObs groups the worker-loop instruments. Workers record into the
// same "train" span log as the single-process trainer; the Worker field of
// each span tells the runtimes apart (the local trainer records -1).
type clusterObs struct {
	spans *obs.SpanLog
	trees *obs.Counter
}

var (
	coOnce sync.Once
	coInst *clusterObs
)

func clusterMetrics() *clusterObs {
	coOnce.Do(func() {
		r := obs.Default()
		coInst = &clusterObs{
			spans: r.SpanLog("train", 4096),
			trees: r.Counter("dimboost_train_trees_total", "Trees finished by the boosting loop."),
		}
	})
	return coInst
}
