package cluster

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dimboost/internal/faultinject"
	"dimboost/internal/obs"
)

// counterTotal sums every series of a counter family in a snapshot. The
// process-wide registry accumulates across tests, so assertions below work
// on before/after deltas, never absolute values.
func counterTotal(snaps []obs.Snapshot, name string) int64 {
	for _, s := range snaps {
		if s.Name != name {
			continue
		}
		var total int64
		for _, series := range s.Series {
			total += series.Value
		}
		return total
	}
	return 0
}

// TestDistributedObservability is the acceptance smoke run: a master plus
// workers training under fault injection must leave non-zero transport
// retries and per-phase tree timings on a live /metrics scrape, and the
// scrape must be syntactically valid Prometheus text format.
func TestDistributedObservability(t *testing.T) {
	before := obs.Default().Snapshot()

	d := testData(t, 400, 81)
	cfg := smallCfg(3, 2)
	cfg.Retry = testRetry()
	res, fnet, err := faultTrain(t, d, cfg, faultinject.Spec{
		Seed: 3,
		Rules: []faultinject.Rule{
			{Endpoint: "server-*", ErrRate: 0.03},
			{Endpoint: ServerName(1), RespLossRate: 0.05},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Model.Trees) != cfg.NumTrees {
		t.Fatalf("got %d trees, want %d", len(res.Model.Trees), cfg.NumTrees)
	}
	if st := fnet.Stats(); st.Errors == 0 {
		t.Fatalf("fault schedule injected nothing (stats %+v); the test is vacuous", st)
	}

	after := obs.Default().Snapshot()
	deltas := map[string]int64{}
	for _, name := range []string{
		"dimboost_transport_retries_total",
		"dimboost_transport_calls_total",
		"dimboost_ps_requests_total",
		"dimboost_ps_client_requests_total",
		"dimboost_train_trees_total",
	} {
		deltas[name] = counterTotal(after, name) - counterTotal(before, name)
		if deltas[name] <= 0 {
			t.Errorf("%s did not advance during the run (delta %d)", name, deltas[name])
		}
	}
	if deltas["dimboost_train_trees_total"] != int64(cfg.NumTrees) {
		t.Errorf("trees counter advanced by %d, want %d (leader-only counting)",
			deltas["dimboost_train_trees_total"], cfg.NumTrees)
	}

	// Scrape a live /metrics handler and validate the exposition syntax.
	srv := httptest.NewServer(obs.Default().Mux())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(bytes.NewReader(raw)); err != nil {
		t.Fatalf("exposition: %v", err)
	}
	text := string(raw)
	for _, want := range []string{
		"dimboost_transport_retries_total",
		`dimboost_train_phase_seconds_count{phase="build_hist"}`,
		`dimboost_train_phase_seconds_count{phase="ps_round_trip"}`,
		`dimboost_train_phase_seconds_count{phase="tree"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %s", want)
		}
	}

	// The span timeline must carry per-tree, per-layer worker phases.
	dbg := obs.Default().DebugSnapshot()
	events := dbg.Spans["train"]
	if len(events) == 0 {
		t.Fatal("no train spans recorded")
	}
	var sawLayer, sawPS bool
	for _, ev := range events {
		if ev.Worker >= 0 && ev.Tree >= 0 && ev.Layer >= 0 && ev.Phase == "build_hist" {
			sawLayer = true
		}
		if ev.Phase == "ps_round_trip" {
			sawPS = true
		}
	}
	if !sawLayer {
		t.Error("no per-layer build_hist span from any worker")
	}
	if !sawPS {
		t.Error("no ps_round_trip span recorded")
	}
}
