package cluster

import (
	"errors"
	"fmt"

	"dimboost/internal/core"
	"dimboost/internal/dataset"
	"dimboost/internal/ps"
	"dimboost/internal/transport"
)

// Endpoint naming convention shared by the in-process driver and the
// multi-process (TCP) deployment.

// ServerName returns the canonical endpoint name of parameter server i.
func ServerName(i int) string { return fmt.Sprintf("server-%d", i) }

// WorkerName returns the canonical endpoint name of worker i.
func WorkerName(i int) string { return fmt.Sprintf("worker-%d", i) }

// ServeServer installs parameter-server shard id's handler on the endpoint.
// The process then serves until the endpoint closes.
func ServeServer(ep transport.Endpoint, id, numFeatures int, cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	part, err := ps.NewPartition(numFeatures, cfg.NumServers, cfg.NumRanges)
	if err != nil {
		return err
	}
	ep.Handle(ps.NewServer(id, part, cfg.sketchEps()).Handler())
	return nil
}

// ServeMaster installs the barrier master on the endpoint.
func ServeMaster(ep transport.Endpoint, workers int) {
	ep.Handle(NewMaster(workers).Handler())
}

// WorkerResult is what one worker process produces.
type WorkerResult struct {
	Model  *core.Model
	Events []core.TreeEvent
	Times  core.PhaseTimes
}

// RunWorker executes worker id's training loop against an already-running
// master and server fleet reachable from ep by the canonical names. shard
// is this worker's row shard; numFeatures is the global dimensionality
// (identical on every node).
func RunWorker(ep transport.Endpoint, id int, shard *dataset.Dataset, numFeatures int, cfg Config) (*WorkerResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if shard.NumFeatures != numFeatures {
		return nil, fmt.Errorf("cluster: shard has %d features, cluster agreed on %d", shard.NumFeatures, numFeatures)
	}
	if cfg.Resume != nil {
		if err := validateResume(cfg.Resume, cfg); err != nil {
			return nil, err
		}
	}
	part, err := ps.NewPartition(numFeatures, cfg.NumServers, cfg.NumRanges)
	if err != nil {
		return nil, err
	}
	serverNames := make([]string, cfg.NumServers)
	for i := range serverNames {
		serverNames[i] = ServerName(i)
	}
	client := ps.NewClient(clientEndpoint(ep, cfg), part, serverNames, id)
	client.Bits = cfg.Bits
	client.PullBits = cfg.PullBits
	client.Exact = cfg.ExactWire
	client.Sparse = cfg.SparseWire
	wk := &worker{id: id, cfg: cfg, shard: shard, ep: ep, client: client, resume: cfg.Resume}
	if id == 0 {
		wk.checkpoint = cfg.Checkpoint
	}
	if err := wk.run(); err != nil {
		if aerr := abortMaster(ep, err.Error()); aerr != nil {
			err = errors.Join(err, fmt.Errorf("cluster: abort notification failed: %w", aerr))
		}
		return nil, err
	}
	return &WorkerResult{Model: wk.model, Events: wk.events, Times: wk.times}, nil
}
