package cluster

import (
	"fmt"
	"math"
	"testing"

	"dimboost/internal/core"
)

// identicalModels is the strict comparator of the wire differential test:
// everything prediction affects — structure, split values, leaf weights —
// must agree to the bit. The looser sameStructure tolerates sub-1e-9 weight
// noise; determinism claims ("Float64bits-identical to single-machine") need
// the real thing. Gain is deliberately excluded: it is diagnostic metadata
// whose summation order differs between the server-side two-phase fold and
// the local trainer's single pass, so its last ulp is not stable across
// pipelines.
func identicalModels(t *testing.T, a, b *core.Model) bool {
	t.Helper()
	if len(a.Trees) != len(b.Trees) {
		t.Logf("tree counts %d vs %d", len(a.Trees), len(b.Trees))
		return false
	}
	for ti := range a.Trees {
		for ni := range a.Trees[ti].Nodes {
			x, y := a.Trees[ti].Nodes[ni], b.Trees[ti].Nodes[ni]
			if x.Used != y.Used || x.Leaf != y.Leaf || x.Feature != y.Feature ||
				math.Float64bits(x.Value) != math.Float64bits(y.Value) ||
				math.Float64bits(x.Weight) != math.Float64bits(y.Weight) {
				t.Logf("tree %d node %d: %+v vs %+v", ti, ni, x, y)
				return false
			}
		}
	}
	return true
}

// TestWireDifferential trains the same tiny workload under every wire
// encoding combination and diffs each against the single-machine trainer.
//
// The determinism boundary it pins down (also recorded in DESIGN.md §14):
// ExactWire keeps every split decision — structure, features, cut values —
// Float64bits-identical to core.Train regardless of Sparse, because the
// sparse encoding carries float64 spans verbatim and elided buckets are
// exact zeros. Leaf weights agree to ≤1e-9 (invariant 6): node gradient
// totals are folded server-side in shard order, so their last ulps differ
// from the local trainer's single pass even on an exact wire. Any nonzero
// Bits/PullBits, or the default float32 wire, breaks value-level identity
// too; the test logs each lossy combination's validation-loss delta and
// bounds it. Within the distributed pipeline itself exact mode is fully
// bit-identical — see TestSparseWireIsInvisible and the determinism tests,
// which compare weights bitwise.
func TestWireDifferential(t *testing.T) {
	d := testData(t, 500, 81)
	train, test := d.Split(0.9)
	base := smallCfg(1, 2)
	base.NumTrees = 4

	ref, err := core.Train(train, base.Config)
	if err != nil {
		t.Fatal(err)
	}
	_, refErr := ref.Evaluate(test)

	type combo struct {
		bits, pullBits uint
		exact, sparse  bool
	}
	var combos []combo
	for _, bits := range []uint{0, 8} {
		for _, pullBits := range []uint{0, 8} {
			for _, sparse := range []bool{false, true} {
				combos = append(combos, combo{bits, pullBits, false, sparse})
			}
		}
	}
	combos = append(combos, combo{0, 0, true, false}, combo{0, 0, true, true})

	maxDelta := 0.0
	for _, c := range combos {
		name := fmt.Sprintf("bits=%d pull=%d exact=%v sparse=%v", c.bits, c.pullBits, c.exact, c.sparse)
		cfg := base
		cfg.Bits, cfg.PullBits, cfg.ExactWire, cfg.SparseWire = c.bits, c.pullBits, c.exact, c.sparse
		res, err := Train(train, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.exact {
			// Exact mode must reproduce the single-machine splits to the bit
			// (sameStructure compares Value with ==, weights to 1e-9), with
			// or without sparse payloads.
			if !sameStructure(t, ref, res.Model) {
				t.Fatalf("%s: model differs from single-machine trainer", name)
			}
			continue
		}
		_, gotErr := res.Model.Evaluate(test)
		delta := math.Abs(gotErr - refErr)
		maxDelta = math.Max(maxDelta, delta)
		t.Logf("%s: validation error %.4f (single-machine %.4f, |Δ| %.4f)", name, gotErr, refErr, delta)
		if delta > 0.08 {
			t.Fatalf("%s: validation error %.4f strays too far from single-machine %.4f", name, gotErr, refErr)
		}
	}
	t.Logf("max |Δ| validation error over lossy combos: %.4f", maxDelta)
}

// TestSparseWireIsInvisible: on raw-width wires sparse is a pure size
// optimization — flipping SparseWire must not change the model at all,
// because span values carry the same float32/float64 narrowing as the dense
// form and elided buckets are exact zeros. (Fixed-point widths are excluded
// on purpose: the stochastic rounder draws one random per encoded value, so
// skipping zeros shifts the stream and the quantized models legitimately
// diverge — that regime is covered by the differential bound above.)
func TestSparseWireIsInvisible(t *testing.T) {
	d := testData(t, 500, 83)
	cfg := smallCfg(3, 2)
	dense, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SparseWire = true
	sparse, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !identicalModels(t, dense.Model, sparse.Model) {
		t.Fatal("SparseWire changed the float32-wire model")
	}
}

// TestCompressedSparseDeterministicMultiWorker: the fully compressed
// configuration (8-bit both directions, sparse payloads, several workers)
// must still be run-to-run deterministic — stochastic rounding is seeded per
// worker, servers merge in worker order, and pull responses use the
// deterministic server-side encoder.
func TestCompressedSparseDeterministicMultiWorker(t *testing.T) {
	d := testData(t, 400, 85)
	cfg := smallCfg(3, 2)
	cfg.Bits, cfg.PullBits, cfg.SparseWire = 8, 8, true
	a, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !identicalModels(t, a.Model, b.Model) {
		t.Fatal("compressed sparse training is not deterministic")
	}
}

// TestExactSparseWithoutTwoPhase exercises the pullHistShard encodings: the
// ablation path pulls whole merged shards, so it is where pull-side sparse
// payloads carry the most traffic. Exact + sparse must stay bit-identical to
// exact + dense.
func TestExactSparseWithoutTwoPhase(t *testing.T) {
	d := testData(t, 400, 87)
	cfg := smallCfg(2, 2)
	cfg.ExactWire = true
	cfg.DisableTwoPhase = true
	dense, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SparseWire = true
	sparse, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !identicalModels(t, dense.Model, sparse.Model) {
		t.Fatal("sparse pull shards changed the exact-wire model")
	}
}

// TestPullCompressionReducesTraffic: asking servers to compress their
// responses must shrink total bytes moved relative to push-only compression.
func TestPullCompressionReducesTraffic(t *testing.T) {
	d := testData(t, 500, 89)
	cfg := smallCfg(3, 2)
	cfg.Bits = 8
	cfg.DisableTwoPhase = true // make pull traffic dominant
	pushOnly, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PullBits = 8
	both, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if both.Stats.TotalBytes >= pushOnly.Stats.TotalBytes {
		t.Fatalf("pull compression moved %d bytes, push-only %d", both.Stats.TotalBytes, pushOnly.Stats.TotalBytes)
	}
}
