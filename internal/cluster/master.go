// Package cluster is DimBoost's distributed runtime: a master coordinating
// synchronization barriers, w workers running the seven-phase training loop
// of §4.4 (CREATE_SKETCH → PULL_SKETCH → NEW_TREE → BUILD_HISTOGRAM →
// FIND_SPLIT → SPLIT_TREE → FINISH), and p parameter servers from
// internal/ps — all wired over an internal/transport network, in-process by
// default.
package cluster

import (
	"fmt"
	"sync"

	"dimboost/internal/transport"
	"dimboost/internal/wire"
)

// OpBarrier is the master's synchronization op: the call returns when all w
// workers have entered the same barrier generation.
const OpBarrier uint8 = 100

// OpAbort is sent by a worker that hit a fatal error; the master releases
// every barrier waiter (present and future) with an error so the cluster
// shuts down instead of deadlocking.
const OpAbort uint8 = 101

// MasterName is the master's endpoint name.
const MasterName = "master"

// Master supervises workers and enforces the phase barrier: one worker
// cannot proceed until all workers have finished the current phase (§4.4).
type Master struct {
	w       int
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	gen     uint64
	aborted string // non-empty once a worker aborted, with the reason
}

// NewMaster returns a master expecting w workers per barrier.
func NewMaster(w int) *Master {
	m := &Master{w: w}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Handler serves barrier calls. The handler blocks the calling worker until
// the barrier releases, which the in-memory transport translates into the
// worker goroutine parking — the same behaviour as a blocking RPC.
func (m *Master) Handler() transport.Handler {
	return func(from string, req transport.Message) (transport.Message, error) {
		switch req.Op {
		case OpAbort:
			r := wire.NewReader(req.Body)
			reason := r.String()
			m.mu.Lock()
			if m.aborted == "" {
				if reason == "" {
					reason = "unspecified"
				}
				m.aborted = reason
			}
			m.cond.Broadcast()
			m.mu.Unlock()
			return transport.Message{Op: OpAbort}, nil

		case OpBarrier:
			r := wire.NewReader(req.Body)
			phase := r.String()
			if err := r.Err(); err != nil {
				return transport.Message{}, err
			}
			m.mu.Lock()
			defer m.mu.Unlock()
			if m.aborted != "" {
				return transport.Message{}, fmt.Errorf("cluster: aborted: %s", m.aborted)
			}
			gen := m.gen
			m.n++
			if m.n == m.w {
				m.n = 0
				m.gen++
				m.cond.Broadcast()
			} else {
				for m.gen == gen && m.aborted == "" {
					m.cond.Wait()
				}
				if m.aborted != "" {
					return transport.Message{}, fmt.Errorf("cluster: aborted: %s", m.aborted)
				}
			}
			_ = phase // phases are informational; generation counting keeps order
			return transport.Message{Op: OpBarrier}, nil

		default:
			return transport.Message{}, fmt.Errorf("cluster: master: unknown op %d", req.Op)
		}
	}
}

// barrier is the worker-side call.
func barrier(ep transport.Endpoint, phase string) error {
	w := wire.NewWriter(len(phase) + 4)
	w.String(phase)
	_, err := ep.Call(MasterName, transport.Message{Op: OpBarrier, Body: w.Bytes()})
	if err != nil {
		return fmt.Errorf("cluster: barrier %s: %w", phase, err)
	}
	return nil
}

// abortMaster reports a fatal worker error so the master releases every
// barrier waiter. The abort is best-effort — the worker is going down either
// way — but its failure is returned so callers can surface it alongside the
// original error: an unreported abort means peers may be deadlocked at a
// barrier, which is exactly the situation worth logging.
func abortMaster(ep transport.Endpoint, reason string) error {
	w := wire.NewWriter(len(reason) + 4)
	w.String(reason)
	if _, err := ep.Call(MasterName, transport.Message{Op: OpAbort, Body: w.Bytes()}); err != nil {
		return err
	}
	return nil
}
