package wire

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.Uint8(7)
	w.Uint32(0xDEADBEEF)
	w.Uint64(1 << 60)
	w.Int32(-42)
	w.Int64(-1e15)
	w.Bool(true)
	w.Bool(false)
	w.Float32(3.5)
	w.Float64(math.Pi)
	w.String("dimboost")
	w.String("")

	r := NewReader(w.Bytes())
	if r.Uint8() != 7 || r.Uint32() != 0xDEADBEEF || r.Uint64() != 1<<60 {
		t.Fatal("unsigned round trip")
	}
	if r.Int32() != -42 || r.Int64() != -1e15 {
		t.Fatal("signed round trip")
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bool round trip")
	}
	if r.Float32() != 3.5 || r.Float64() != math.Pi {
		t.Fatal("float round trip")
	}
	if r.String() != "dimboost" || r.String() != "" {
		t.Fatal("string round trip")
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes remain", r.Remaining())
	}
}

func TestSliceRoundTrip(t *testing.T) {
	w := NewWriter(0)
	i32 := []int32{-1, 0, 1 << 30}
	u64 := []uint64{0, 42, 1 << 63}
	f64 := []float64{-1.5, 0, math.MaxFloat64}
	raw := []byte{1, 2, 3}
	w.Int32s(i32)
	w.Uint64s(u64)
	w.Float64s(f64)
	w.Bytes32(raw)
	w.Int32s(nil)

	r := NewReader(w.Bytes())
	if !reflect.DeepEqual(r.Int32s(), i32) {
		t.Fatal("int32s")
	}
	if !reflect.DeepEqual(r.Uint64s(), u64) {
		t.Fatal("uint64s")
	}
	if !reflect.DeepEqual(r.Float64s(), f64) {
		t.Fatal("float64s")
	}
	if !reflect.DeepEqual(r.Bytes32(), raw) {
		t.Fatal("bytes32")
	}
	if got := r.Int32s(); len(got) != 0 {
		t.Fatal("nil slice should decode empty")
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestFloat64sAs32(t *testing.T) {
	vs := []float64{1.5, -2.25, 1e10, 0}
	w := NewWriter(0)
	w.Float64sAs32(vs)
	if w.Len() != 4+4*4 {
		t.Fatalf("float32 wire size %d, want 20", w.Len())
	}
	r := NewReader(w.Bytes())
	got := r.Float64sFrom32()
	for i, v := range vs {
		if float32(v) != float32(got[i]) {
			t.Fatalf("idx %d: %v vs %v", i, got[i], v)
		}
	}
}

func TestTruncation(t *testing.T) {
	w := NewWriter(0)
	w.Uint64(1)
	data := w.Bytes()[:5]
	r := NewReader(data)
	r.Uint64()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", r.Err())
	}
	// sticky: further reads return zero values, error unchanged
	if r.Uint32() != 0 || !errors.Is(r.Err(), ErrTruncated) {
		t.Fatal("error should stick")
	}
}

func TestHostileLengthPrefix(t *testing.T) {
	// a declared element count far beyond the remaining bytes must fail
	// cleanly instead of allocating gigabytes
	w := NewWriter(0)
	w.Uint32(1 << 30) // bogus count
	r := NewReader(w.Bytes())
	if got := r.Float64s(); got != nil {
		t.Fatal("expected nil")
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("err = %v", r.Err())
	}
	r2 := NewReader(w.Bytes())
	if r2.String() != "" || r2.Err() == nil {
		t.Fatal("hostile string length accepted")
	}
}

func TestQuickRoundTripProperty(t *testing.T) {
	f := func(a uint64, b int32, s string, fs []float64, is []int32) bool {
		w := NewWriter(0)
		w.Uint64(a)
		w.Int32(b)
		w.String(s)
		w.Float64s(fs)
		w.Int32s(is)
		r := NewReader(w.Bytes())
		if r.Uint64() != a || r.Int32() != b || r.String() != s {
			return false
		}
		gfs := r.Float64s()
		gis := r.Int32s()
		if r.Err() != nil || r.Remaining() != 0 {
			return false
		}
		if len(gfs) != len(fs) || len(gis) != len(is) {
			return false
		}
		for i := range fs {
			if gfs[i] != fs[i] && !(math.IsNaN(gfs[i]) && math.IsNaN(fs[i])) {
				return false
			}
		}
		for i := range is {
			if gis[i] != is[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBytes32Copies(t *testing.T) {
	w := NewWriter(0)
	w.Bytes32([]byte{9, 9})
	buf := w.Bytes()
	r := NewReader(buf)
	got := r.Bytes32()
	buf[4] = 1 // mutate underlying buffer
	if got[0] != 9 {
		t.Fatal("Bytes32 must copy out of the receive buffer")
	}
}

func TestSkip(t *testing.T) {
	w := NewWriter(0)
	w.Uint32(7)
	w.Uint64(9)
	w.Uint32(11)
	r := NewReader(w.Bytes())
	if r.Uint32() != 7 {
		t.Fatal("first read")
	}
	r.Skip(8)
	if r.Uint32() != 11 || r.Err() != nil {
		t.Fatal("skip landed wrong")
	}
	// skipping past the end is a sticky truncation error
	r2 := NewReader(w.Bytes())
	r2.Skip(1000)
	if !errors.Is(r2.Err(), ErrTruncated) {
		t.Fatalf("err = %v", r2.Err())
	}
	r3 := NewReader(w.Bytes())
	r3.Skip(-1)
	if r3.Err() == nil {
		t.Fatal("negative skip accepted")
	}
	if r3.Remaining() != 16 {
		t.Fatal("failed skip moved the cursor")
	}
}

func TestRestAliases(t *testing.T) {
	w := NewWriter(0)
	w.Uint32(1)
	w.Uint32(2)
	r := NewReader(w.Bytes())
	r.Uint32()
	rest := r.Rest()
	if len(rest) != 4 {
		t.Fatalf("rest %d bytes", len(rest))
	}
	if r.Uint32() != 2 {
		t.Fatal("Rest consumed the buffer")
	}
}
