// Package wire provides the compact binary codec used by DimBoost's RPC
// layer. Messages are hand-encoded little-endian buffers: a Writer appends
// typed fields, a Reader consumes them with a sticky error, so message
// definitions read as straight-line code without reflection (the role Netty
// codecs play in the paper's Java implementation).
//
// Gradient histograms travel as float32 ("full precision" wire format, the
// h of the paper's cost model) or as compressed fixed-point payloads from
// internal/compress.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated is returned when a Reader runs past the end of its buffer.
var ErrTruncated = errors.New("wire: truncated message")

// Writer appends binary fields to a growing buffer.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the given capacity hint.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the current encoded size.
func (w *Writer) Len() int { return len(w.buf) }

// Uint8 appends one byte.
func (w *Writer) Uint8(v uint8) { w.buf = append(w.buf, v) }

// Uint32 appends a little-endian uint32.
func (w *Writer) Uint32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// Uint64 appends a little-endian uint64.
func (w *Writer) Uint64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// Int32 appends an int32.
func (w *Writer) Int32(v int32) { w.Uint32(uint32(v)) }

// Int64 appends an int64.
func (w *Writer) Int64(v int64) { w.Uint64(uint64(v)) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.Uint8(1)
	} else {
		w.Uint8(0)
	}
}

// Float32 appends an IEEE-754 float32.
func (w *Writer) Float32(v float32) { w.Uint32(math.Float32bits(v)) }

// Float64 appends an IEEE-754 float64.
func (w *Writer) Float64(v float64) { w.Uint64(math.Float64bits(v)) }

// String appends a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.Uint32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Bytes32 appends a length-prefixed byte slice.
func (w *Writer) Bytes32(b []byte) {
	w.Uint32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// Raw appends bytes verbatim, without a length prefix — for framing an
// already-encoded payload behind a header.
func (w *Writer) Raw(b []byte) {
	w.buf = append(w.buf, b...)
}

// Int32s appends a length-prefixed []int32.
func (w *Writer) Int32s(vs []int32) {
	w.Uint32(uint32(len(vs)))
	for _, v := range vs {
		w.Int32(v)
	}
}

// Uint32s appends a length-prefixed []uint32.
func (w *Writer) Uint32s(vs []uint32) {
	w.Uint32(uint32(len(vs)))
	for _, v := range vs {
		w.Uint32(v)
	}
}

// Uint64s appends a length-prefixed []uint64.
func (w *Writer) Uint64s(vs []uint64) {
	w.Uint32(uint32(len(vs)))
	for _, v := range vs {
		w.Uint64(v)
	}
}

// Float64s appends a length-prefixed []float64 at full precision.
func (w *Writer) Float64s(vs []float64) {
	w.Uint32(uint32(len(vs)))
	for _, v := range vs {
		w.Float64(v)
	}
}

// Float64sAs32 appends a length-prefixed []float64 narrowed to float32 — the
// paper's histogram wire format (4 bytes per bucket statistic).
func (w *Writer) Float64sAs32(vs []float64) {
	w.Uint32(uint32(len(vs)))
	for _, v := range vs {
		w.Float32(float32(v))
	}
}

// Reader consumes a buffer written by Writer. The first decoding error
// sticks; callers check Err once at the end.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader wraps a received buffer.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the sticky error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

// Rest returns the unread remainder of the buffer without consuming it.
// The slice aliases the reader's buffer.
func (r *Reader) Rest() []byte { return r.data[r.off:] }

// Skip advances past n bytes without decoding them.
func (r *Reader) Skip(n int) {
	if r.err != nil {
		return
	}
	if n < 0 || r.off+n > len(r.data) {
		r.err = fmt.Errorf("%w: skip %d at offset %d of %d", ErrTruncated, n, r.off, len(r.data))
		return
	}
	r.off += n
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.data) {
		r.err = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, r.off, len(r.data))
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// Uint8 reads one byte.
func (r *Reader) Uint8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Uint32 reads a uint32.
func (r *Reader) Uint32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Uint64 reads a uint64.
func (r *Reader) Uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int32 reads an int32.
func (r *Reader) Int32() int32 { return int32(r.Uint32()) }

// Int64 reads an int64.
func (r *Reader) Int64() int64 { return int64(r.Uint64()) }

// Bool reads a bool.
func (r *Reader) Bool() bool { return r.Uint8() != 0 }

// Float32 reads a float32.
func (r *Reader) Float32() float32 { return math.Float32frombits(r.Uint32()) }

// Float64 reads a float64.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// length reads and sanity-checks a collection length against the bytes that
// could possibly remain.
func (r *Reader) length(elemSize int) int {
	n := int(r.Uint32())
	if r.err != nil {
		return 0
	}
	if elemSize > 0 && n*elemSize > r.Remaining() {
		r.err = fmt.Errorf("%w: declared %d elements of %d bytes, %d bytes remain", ErrTruncated, n, elemSize, r.Remaining())
		return 0
	}
	return n
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.length(1)
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Bytes32 reads a length-prefixed byte slice (copied).
func (r *Reader) Bytes32() []byte {
	n := r.length(1)
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// Int32s reads a length-prefixed []int32.
func (r *Reader) Int32s() []int32 {
	n := r.length(4)
	if r.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = r.Int32()
	}
	return out
}

// Uint32s reads a length-prefixed []uint32.
func (r *Reader) Uint32s() []uint32 {
	n := r.length(4)
	if r.err != nil {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = r.Uint32()
	}
	return out
}

// Uint64s reads a length-prefixed []uint64.
func (r *Reader) Uint64s() []uint64 {
	n := r.length(8)
	if r.err != nil {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}

// Float64s reads a length-prefixed []float64.
func (r *Reader) Float64s() []float64 {
	n := r.length(8)
	if r.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()
	}
	return out
}

// Float64sFrom32 reads a length-prefixed []float32 widened to []float64,
// the inverse of Float64sAs32.
func (r *Reader) Float64sFrom32() []float64 {
	n := r.length(4)
	if r.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(r.Float32())
	}
	return out
}
