package wire

import (
	"bytes"
	"math"
	"testing"
)

// FuzzWireRoundTrip drives the codec from both ends. Forward: every fuzzed
// field written through Writer must read back exactly through Reader with no
// sticky error and no bytes left over. Backward: the same fuzzed byte blob
// fed to a Reader as a hostile message must never panic or over-allocate,
// whatever read sequence is applied — the property that protects the RPC
// layer from malformed peers.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint32(2), uint64(3), int32(-4), int64(-5), true,
		float32(1.5), 2.5, "hello", []byte{0xde, 0xad}, []byte{})
	f.Add(uint8(0), uint32(0), uint64(0), int32(0), int64(0), false,
		float32(math.Pi), math.MaxFloat64, "", []byte(nil), []byte{0xff, 0xff, 0xff, 0xff, 0x10})
	f.Add(uint8(255), uint32(math.MaxUint32), uint64(math.MaxUint64),
		int32(math.MinInt32), int64(math.MinInt64), true,
		float32(math.Inf(-1)), math.NaN(), "π≤", bytes.Repeat([]byte{7}, 100),
		[]byte{0x05, 0x00, 0x00, 0x00, 0x68, 0x69})
	f.Fuzz(func(t *testing.T, u8 uint8, u32 uint32, u64 uint64, i32 int32, i64 int64,
		b bool, f32 float32, f64 float64, s string, blob, raw []byte) {
		w := NewWriter(0)
		w.Uint8(u8)
		w.Uint32(u32)
		w.Uint64(u64)
		w.Int32(i32)
		w.Int64(i64)
		w.Bool(b)
		w.Float32(f32)
		w.Float64(f64)
		w.String(s)
		w.Bytes32(blob)
		w.Int32s([]int32{i32, 0, -i32})
		w.Uint32s([]uint32{u32, 0})
		w.Uint64s([]uint64{u64})
		w.Float64s([]float64{f64, -f64})
		w.Float64sAs32([]float64{f64})
		w.Raw(raw)

		r := NewReader(w.Bytes())
		check := func(name string, ok bool) {
			if !ok {
				t.Fatalf("%s did not round-trip", name)
			}
		}
		check("Uint8", r.Uint8() == u8)
		check("Uint32", r.Uint32() == u32)
		check("Uint64", r.Uint64() == u64)
		check("Int32", r.Int32() == i32)
		check("Int64", r.Int64() == i64)
		check("Bool", r.Bool() == b)
		check("Float32", math.Float32bits(r.Float32()) == math.Float32bits(f32))
		check("Float64", math.Float64bits(r.Float64()) == math.Float64bits(f64))
		check("String", r.String() == s)
		check("Bytes32", bytes.Equal(r.Bytes32(), blob))
		is := r.Int32s()
		check("Int32s", len(is) == 3 && is[0] == i32 && is[1] == 0 && is[2] == -i32)
		u32s := r.Uint32s()
		check("Uint32s", len(u32s) == 2 && u32s[0] == u32 && u32s[1] == 0)
		us := r.Uint64s()
		check("Uint64s", len(us) == 1 && us[0] == u64)
		fs := r.Float64s()
		check("Float64s", len(fs) == 2 &&
			math.Float64bits(fs[0]) == math.Float64bits(f64) &&
			math.Float64bits(fs[1]) == math.Float64bits(-f64))
		ns := r.Float64sFrom32()
		check("Float64sAs32", len(ns) == 1 &&
			math.Float32bits(float32(ns[0])) == math.Float32bits(float32(f64)))
		check("Raw remainder", bytes.Equal(r.Rest(), raw))
		r.Skip(len(raw))
		if r.Err() != nil {
			t.Fatalf("sticky error on well-formed message: %v", r.Err())
		}
		if r.Remaining() != 0 {
			t.Fatalf("%d bytes left over", r.Remaining())
		}

		// Hostile decode: the raw fuzz blob as a message. Every read either
		// yields a value or trips the sticky error; nothing may panic, and
		// declared collection lengths must never out-allocate the input.
		h := NewReader(raw)
		h.Uint8()
		_ = h.String()
		h.Bytes32()
		h.Int32s()
		h.Uint32s()
		h.Uint64s()
		h.Float64s()
		h.Float64sFrom32()
		h.Skip(3)
		h.Uint64()
		if h.Err() == nil && h.Remaining() > len(raw) {
			t.Fatal("reader invented bytes")
		}
	})
}
