// Package loadgen is an open-loop HTTP load generator for the serving
// tier. Open-loop means arrivals follow a fixed schedule independent of
// completions — the model of real user traffic, which does not slow down
// because the server is struggling. Driving an open-loop rate past
// capacity is exactly the overload the admission layer exists to survive,
// and the recorded shed rate + accepted-latency percentiles are the
// evidence it does.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Config describes one load run.
type Config struct {
	// URL receives POSTs (typically .../predict).
	URL string
	// Rate is the arrival rate in requests/second.
	Rate float64
	// Duration is how long arrivals keep coming; the run then waits for
	// stragglers (bounded by the client timeout).
	Duration time.Duration
	// Body is sent on every request.
	Body []byte
	// Bodies, when non-empty, overrides Body: arrival i sends
	// Bodies[i%len(Bodies)]. This is the many-small-requests mode for
	// exercising server-side coalescing — each arrival carries a distinct
	// (typically single-instance) payload, the way independent clients do.
	Bodies [][]byte
	// ContentType defaults to application/json.
	ContentType string
	// Tenant, when set, is sent as the X-Tenant header.
	Tenant string
	// Client defaults to an http.Client with a 30s timeout.
	Client *http.Client
}

// Result aggregates one run.
type Result struct {
	Sent     int         `json:"sent"`
	Accepted int         `json:"accepted"` // HTTP 200
	Shed     int         `json:"shed"`     // HTTP 429 + 503
	Errors   int         `json:"errors"`   // transport errors and other statuses
	Statuses map[int]int `json:"statuses"`
	// RetryAfterOnAllSheds reports whether every 429/503 carried a
	// Retry-After header — the admission contract.
	RetryAfterOnAllSheds bool `json:"retry_after_on_all_sheds"`

	Elapsed    time.Duration `json:"elapsed_ns"`
	Throughput float64       `json:"throughput_rps"` // accepted per second of elapsed
	ShedRate   float64       `json:"shed_rate"`      // shed / sent

	// Latency percentiles over accepted (200) requests only.
	P50 time.Duration `json:"p50_ns"`
	P95 time.Duration `json:"p95_ns"`
	P99 time.Duration `json:"p99_ns"`
}

// Run drives cfg.URL at cfg.Rate for cfg.Duration and aggregates the
// outcome. It never fails because the server sheds — shedding is a
// measured outcome, not an error — and returns an error only for
// unusable configuration.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("loadgen: no URL")
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: rate must be positive, got %g", cfg.Rate)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: duration must be positive, got %s", cfg.Duration)
	}
	ct := cfg.ContentType
	if ct == "" {
		ct = "application/json"
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}

	res := &Result{Statuses: map[int]int{}, RetryAfterOnAllSheds: true}
	var (
		mu        sync.Mutex
		wg        sync.WaitGroup
		accepted  []time.Duration
		interval  = time.Duration(float64(time.Second) / cfg.Rate)
		start     = time.Now()
		deadline  = start.Add(cfg.Duration)
		arrivalCt = 0
	)
	// Ticker granularity bottoms out around a millisecond; above ~1000 rps
	// the loop fires the per-tick deficit in a burst instead, keeping the
	// arrival *schedule* (rate × elapsed) exact even when individual ticks
	// are late or coarser than the inter-arrival gap.
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()

	fire := func(body []byte) {
		defer wg.Done()
		reqStart := time.Now()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.URL, strings.NewReader(string(body)))
		if err == nil {
			req.Header.Set("Content-Type", ct)
			if cfg.Tenant != "" {
				req.Header.Set("X-Tenant", cfg.Tenant)
			}
		}
		var resp *http.Response
		if err == nil {
			resp, err = client.Do(req)
		}
		lat := time.Since(reqStart)
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			res.Errors++
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
		res.Statuses[resp.StatusCode]++
		switch resp.StatusCode {
		case http.StatusOK:
			res.Accepted++
			accepted = append(accepted, lat)
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			res.Shed++
			if resp.Header.Get("Retry-After") == "" {
				res.RetryAfterOnAllSheds = false
			}
		default:
			res.Errors++
		}
	}

	// Open loop: arrivals follow the wall-clock schedule rate × elapsed,
	// regardless of how many earlier requests are still outstanding. Each
	// tick fires the accumulated deficit, so a late tick produces a burst
	// rather than a lost arrival.
	total := int(cfg.Rate*cfg.Duration.Seconds() + 0.5)
loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case now := <-tick.C:
			target := int(cfg.Rate * now.Sub(start).Seconds())
			if target > total {
				target = total
			}
			for arrivalCt < target {
				body := cfg.Body
				if len(cfg.Bodies) > 0 {
					body = cfg.Bodies[arrivalCt%len(cfg.Bodies)]
				}
				arrivalCt++
				wg.Add(1)
				go fire(body)
			}
			if now.After(deadline) || arrivalCt >= total {
				break loop
			}
		}
	}
	wg.Wait()

	res.Sent = arrivalCt
	res.Elapsed = time.Since(start)
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Accepted) / res.Elapsed.Seconds()
	}
	if res.Sent > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Sent)
	}
	res.P50 = percentile(accepted, 0.50)
	res.P95 = percentile(accepted, 0.95)
	res.P99 = percentile(accepted, 0.99)
	return res, nil
}

// percentile returns the p-quantile (nearest-rank) of the sample, 0 when
// empty. The input is sorted in place.
func percentile(sample []time.Duration, p float64) time.Duration {
	if len(sample) == 0 {
		return 0
	}
	sort.Slice(sample, func(a, b int) bool { return sample[a] < sample[b] })
	i := int(p*float64(len(sample))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sample) {
		i = len(sample) - 1
	}
	return sample[i]
}
