package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCountsOutcomes(t *testing.T) {
	// Every third request sheds with Retry-After; the rest succeed after a
	// small service time.
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%3 == 0 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		time.Sleep(time.Millisecond)
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	res, err := Run(context.Background(), Config{
		URL:      srv.URL,
		Rate:     200,
		Duration: 300 * time.Millisecond,
		Body:     []byte(`{}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if res.Accepted+res.Shed+res.Errors != res.Sent {
		t.Fatalf("accepted %d + shed %d + errors %d != sent %d",
			res.Accepted, res.Shed, res.Errors, res.Sent)
	}
	if res.Accepted == 0 || res.Shed == 0 {
		t.Fatalf("want both outcomes, got accepted %d shed %d", res.Accepted, res.Shed)
	}
	if !res.RetryAfterOnAllSheds {
		t.Fatal("every shed carried Retry-After")
	}
	if res.P50 <= 0 || res.P99 < res.P95 || res.P95 < res.P50 {
		t.Fatalf("percentiles not ordered: p50 %s p95 %s p99 %s", res.P50, res.P95, res.P99)
	}
	if res.Throughput <= 0 || res.ShedRate <= 0 || res.ShedRate >= 1 {
		t.Fatalf("throughput %f shed rate %f", res.Throughput, res.ShedRate)
	}
}

func TestRunFlagsMissingRetryAfter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests) // no Retry-After: contract violation
	}))
	defer srv.Close()

	res, err := Run(context.Background(), Config{
		URL: srv.URL, Rate: 100, Duration: 100 * time.Millisecond, Body: []byte(`{}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 || res.RetryAfterOnAllSheds {
		t.Fatalf("shed %d, retryAfterOnAllSheds %v — want sheds flagged", res.Shed, res.RetryAfterOnAllSheds)
	}
}

func TestRunTenantHeader(t *testing.T) {
	var sawTenant atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-Tenant") == "teamA" {
			sawTenant.Store(true)
		}
	}))
	defer srv.Close()
	if _, err := Run(context.Background(), Config{
		URL: srv.URL, Rate: 100, Duration: 50 * time.Millisecond, Tenant: "teamA",
	}); err != nil {
		t.Fatal(err)
	}
	if !sawTenant.Load() {
		t.Fatal("X-Tenant header never arrived")
	}
}

func TestRunConfigErrors(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{URL: "http://x", Rate: 0, Duration: time.Second},
		{URL: "http://x", Rate: 10, Duration: 0},
	} {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

func TestPercentile(t *testing.T) {
	sample := []time.Duration{5, 1, 3, 2, 4} // sorted: 1..5
	if p := percentile(sample, 0.5); p != 3 {
		t.Fatalf("p50 = %d, want 3", p)
	}
	if p := percentile(sample, 1.0); p != 5 {
		t.Fatalf("p100 = %d, want 5", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Fatalf("empty sample p50 = %d, want 0", p)
	}
}
