package baselines

import (
	"math"
	"testing"

	"dimboost/internal/core"
	"dimboost/internal/dataset"
	"dimboost/internal/loss"
)

func testCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.NumTrees = 4
	cfg.MaxDepth = 4
	cfg.NumCandidates = 10
	cfg.Parallelism = 1
	return cfg
}

func testData(t *testing.T, rows int, seed int64) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: rows, NumFeatures: 100, AvgNNZ: 12, Seed: seed, Zipf: 1.2, NoiseStd: 0.2})
	return d.Split(0.9)
}

func TestSystemStrings(t *testing.T) {
	want := []string{"MLlib", "XGBoost", "LightGBM", "TencentBoost", "DimBoost"}
	for i, sys := range Systems {
		if sys.String() != want[i] {
			t.Errorf("system %d: %s", i, sys)
		}
	}
	if System(42).String() != "System(42)" {
		t.Error("unknown system string")
	}
}

// TestAllSystemsMatchLocalModel: with sparse builds and full precision every
// aggregation strategy computes the same histogram sums, so every system
// must produce a model structurally identical to the single-process trainer.
func TestAllSystemsMatchLocalModel(t *testing.T) {
	train, _ := testData(t, 500, 81)
	cfg := testCfg()
	ref, err := core.Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []System{MLlibStyle, XGBoostStyle, LightGBMStyle, TencentBoostStyle} {
		for _, w := range []int{1, 2, 3, 4, 5} {
			model, _, err := Train(train, Options{Core: cfg, System: sys, Workers: w, SparseBuild: true})
			if err != nil {
				t.Fatalf("%s w=%d: %v", sys, w, err)
			}
			if len(model.Trees) != cfg.NumTrees {
				t.Fatalf("%s w=%d: %d trees", sys, w, len(model.Trees))
			}
			if !modelsAgree(ref, model) {
				t.Fatalf("%s w=%d: model structure differs from local reference", sys, w)
			}
		}
	}
}

// modelsAgree compares split structure, ignoring float noise in gains.
func modelsAgree(a, b *core.Model) bool {
	if len(a.Trees) != len(b.Trees) {
		return false
	}
	for ti := range a.Trees {
		for ni := range a.Trees[ti].Nodes {
			x, y := a.Trees[ti].Nodes[ni], b.Trees[ti].Nodes[ni]
			if x.Used != y.Used || x.Leaf != y.Leaf || x.Feature != y.Feature || x.Value != y.Value {
				return false
			}
			if math.Abs(x.Weight-y.Weight) > 1e-9 {
				return false
			}
		}
	}
	return true
}

func TestDenseDefaultStillCorrect(t *testing.T) {
	// the dense baseline build is slower but must not change the model
	train, _ := testData(t, 300, 83)
	cfg := testCfg()
	cfg.NumTrees = 2
	ref, err := core.Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := Train(train, Options{Core: cfg, System: XGBoostStyle, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !modelsAgree(ref, model) {
		t.Fatal("dense-build baseline changed the model")
	}
}

func TestDimBoostStyleTrains(t *testing.T) {
	train, test := testData(t, 800, 85)
	cfg := testCfg()
	model, stats, err := Train(train, Options{Core: cfg, System: DimBoostStyle, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	errRate := loss.ErrorRate(test.Labels, model.PredictBatch(test))
	if errRate > 0.49 {
		t.Fatalf("error rate %v no better than chance", errRate)
	}
	if stats.Bytes <= 0 || stats.ModeledTotalTime <= 0 {
		t.Fatalf("stats empty: %+v", stats)
	}
}

func TestTrafficOrderingMatchesTable1(t *testing.T) {
	// per-run total bytes: MLlib ≈ XGBoost ≈ TencentBoost-gather > DimBoost.
	// DimBoost additionally compresses (8-bit), so it must move the least.
	train, _ := testData(t, 400, 87)
	cfg := testCfg()
	cfg.NumTrees = 3
	bytesOf := map[System]int64{}
	for _, sys := range Systems {
		_, stats, err := Train(train, Options{Core: cfg, System: sys, Workers: 4, SparseBuild: true})
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if stats.Events == nil || stats.WallTime <= 0 {
			t.Fatalf("%s: missing stats", sys)
		}
		bytesOf[sys] = stats.Bytes
	}
	if bytesOf[DimBoostStyle] >= bytesOf[MLlibStyle] {
		t.Errorf("DimBoost moved %d bytes, MLlib %d", bytesOf[DimBoostStyle], bytesOf[MLlibStyle])
	}
	if bytesOf[DimBoostStyle] >= bytesOf[TencentBoostStyle] {
		t.Errorf("DimBoost moved %d bytes, TencentBoost %d", bytesOf[DimBoostStyle], bytesOf[TencentBoostStyle])
	}
	// LightGBM and MLlib move comparable total bytes ((w−1)/w·h·steps vs
	// (w−1)·h); LightGBM's advantage is per-node parallelism, covered by
	// TestModeledCommOrdering.
}

func TestModeledCommOrdering(t *testing.T) {
	// The per-node modeled communication time must reproduce the paper's
	// qualitative result for HIGH-dimensional data (large histograms, the
	// regime §3 analyzes): DimBoost < XGBoost < MLlib. At tiny h the
	// ordering legitimately flips (latency dominates, §3 Remarks), so this
	// test uses a 20K-feature dataset.
	train := dataset.Generate(dataset.SyntheticConfig{
		NumRows: 300, NumFeatures: 20_000, AvgNNZ: 30, Seed: 89, Zipf: 1.3, NoiseStd: 0.2,
	})
	cfg := testCfg()
	cfg.NumTrees = 2
	cfg.MaxDepth = 3
	modeled := map[System]float64{}
	for _, sys := range []System{MLlibStyle, XGBoostStyle, LightGBMStyle, DimBoostStyle} {
		_, stats, err := Train(train, Options{Core: cfg, System: sys, Workers: 5, SparseBuild: true})
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		modeled[sys] = stats.ModeledCommTime.Seconds()
	}
	if !(modeled[DimBoostStyle] < modeled[XGBoostStyle] && modeled[XGBoostStyle] < modeled[MLlibStyle]) {
		t.Fatalf("modeled comm out of order: dim=%v xgb=%v ml=%v",
			modeled[DimBoostStyle], modeled[XGBoostStyle], modeled[MLlibStyle])
	}
	if modeled[LightGBMStyle] >= modeled[MLlibStyle] {
		t.Fatalf("lightgbm %v should beat mllib %v", modeled[LightGBMStyle], modeled[MLlibStyle])
	}
}

func TestEventsMonotone(t *testing.T) {
	train, _ := testData(t, 300, 91)
	cfg := testCfg()
	_, stats, err := Train(train, Options{Core: cfg, System: LightGBMStyle, Workers: 3, SparseBuild: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Events) != cfg.NumTrees {
		t.Fatalf("%d events", len(stats.Events))
	}
	for i := 1; i < len(stats.Events); i++ {
		if stats.Events[i].TrainLoss > stats.Events[i-1].TrainLoss+1e-9 {
			t.Fatalf("train loss increased at %d", i)
		}
	}
}

func TestBadOptions(t *testing.T) {
	train, _ := testData(t, 50, 93)
	if _, _, err := Train(train, Options{Core: testCfg(), System: MLlibStyle, Workers: 0}); err == nil {
		t.Fatal("0 workers should fail")
	}
	bad := testCfg()
	bad.NumTrees = 0
	if _, _, err := Train(train, Options{Core: bad, System: MLlibStyle, Workers: 2}); err == nil {
		t.Fatal("invalid core config should fail")
	}
}

func TestNonPowerOfTwoLightGBM(t *testing.T) {
	// exercise the fold-in path end to end (w = 6, 7)
	train, _ := testData(t, 400, 95)
	cfg := testCfg()
	cfg.NumTrees = 2
	ref, err := core.Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{6, 7} {
		model, _, err := Train(train, Options{Core: cfg, System: LightGBMStyle, Workers: w, SparseBuild: true})
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if !modelsAgree(ref, model) {
			t.Fatalf("w=%d: model differs", w)
		}
	}
}
