// Package baselines implements the four competitor GBDT systems of the
// paper's evaluation (§2.3, §7.3) as faithful aggregation-strategy variants
// over the same algorithmic core:
//
//   - MLlibStyle        — all-to-one reduce to a coordinator (MapReduce)
//   - XGBoostStyle      — binomial-tree reduce to root + small broadcast
//   - LightGBMStyle     — recursive-halving ReduceScatter, split finding on
//     each worker's owned histogram block
//   - TencentBoostStyle — parameter-server scatter-gather, but the
//     responsible worker pulls the full merged histogram (no
//     two-phase split, no compression)
//   - DimBoostStyle     — the full system (delegates to internal/cluster)
//
// Following §5.1 ("most existing systems implicitly assume that the dataset
// is dense during histogram construction"), the four baselines default to
// the dense O(N·M) histogram build; SparseBuild overrides that when a
// benchmark wants to isolate communication effects.
package baselines

import (
	"fmt"
	"sync"
	"time"

	"dimboost/internal/cluster"
	"dimboost/internal/comm"
	"dimboost/internal/core"
	"dimboost/internal/dataset"
	"dimboost/internal/simnet"
)

// System selects the aggregation strategy.
type System int

// The five compared systems.
const (
	MLlibStyle System = iota
	XGBoostStyle
	LightGBMStyle
	TencentBoostStyle
	DimBoostStyle
)

// String implements fmt.Stringer.
func (s System) String() string {
	switch s {
	case MLlibStyle:
		return "MLlib"
	case XGBoostStyle:
		return "XGBoost"
	case LightGBMStyle:
		return "LightGBM"
	case TencentBoostStyle:
		return "TencentBoost"
	case DimBoostStyle:
		return "DimBoost"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// Systems lists all five in the paper's comparison order.
var Systems = []System{MLlibStyle, XGBoostStyle, LightGBMStyle, TencentBoostStyle, DimBoostStyle}

// Options configures a comparison run.
type Options struct {
	Core    core.Config
	System  System
	Workers int
	// Servers only applies to DimBoostStyle (its PS fleet size); 0 means
	// co-located (= Workers), the deployment §3 analyzes.
	Servers int
	// SparseBuild lets a baseline use the sparsity-aware construction, to
	// isolate communication effects from computation effects.
	SparseBuild bool
}

// Stats reports a run's measurements in a form comparable across systems.
type Stats struct {
	// WallTime is the measured in-process duration. On a single-core
	// machine the w workers time-slice one CPU, so WallTime approximates
	// the cluster's total compute rather than its critical path.
	WallTime time.Duration
	// MaxWorkerCompute is the largest per-worker compute time (gradient,
	// histogram building, split finding) — the per-machine critical path
	// on a real cluster.
	MaxWorkerCompute time.Duration
	// Bytes and Msgs are total traffic.
	Bytes, Msgs int64
	// ModeledCommTime prices per-node traffic maxima with the §3 cost
	// model on gigabit Ethernet: α·msgs + β·bytes.
	ModeledCommTime time.Duration
	// ModeledTotalTime = MaxWorkerCompute + ModeledCommTime: the
	// end-to-end estimate for a real cluster, the quantity Figure 12
	// compares.
	ModeledTotalTime time.Duration
	// Events traces per-tree training loss against wall time.
	Events []core.TreeEvent
}

// Train runs the selected system on the dataset and returns the model and
// run statistics.
func Train(d *dataset.Dataset, opts Options) (*core.Model, Stats, error) {
	if opts.Workers < 1 {
		return nil, Stats{}, fmt.Errorf("baselines: workers %d < 1", opts.Workers)
	}
	if opts.System == DimBoostStyle {
		return trainDimBoost(d, opts)
	}
	return trainMesh(d, opts)
}

// trainDimBoost delegates to the full cluster runtime.
func trainDimBoost(d *dataset.Dataset, opts Options) (*core.Model, Stats, error) {
	servers := opts.Servers
	if servers == 0 {
		servers = opts.Workers
	}
	cfg := cluster.Config{Config: opts.Core, NumWorkers: opts.Workers, NumServers: servers, Bits: 8, SerializeCompute: true}
	res, err := cluster.Train(d, cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	st := Stats{
		WallTime:         res.Stats.WallTime,
		MaxWorkerCompute: res.Stats.Compute.Total(),
		Bytes:            res.Stats.TotalBytes,
		Msgs:             res.Stats.TotalMsgs,
		ModeledCommTime:  res.Stats.ModeledCommTime,
		Events:           res.Events,
	}
	st.ModeledTotalTime = st.MaxWorkerCompute + st.ModeledCommTime
	return res.Model, st, nil
}

// trainMesh runs the four mesh-based baselines.
func trainMesh(d *dataset.Dataset, opts Options) (*core.Model, Stats, error) {
	if err := opts.Core.Validate(); err != nil {
		return nil, Stats{}, err
	}
	w := opts.Workers
	start := time.Now()

	// Candidates are computed centrally for all mesh baselines: every
	// compared system proposes quantile candidates the same way, so this
	// step is factored out of the comparison.
	probe, err := core.NewTrainer(d, opts.Core)
	if err != nil {
		return nil, Stats{}, err
	}
	cands := probe.Candidates()

	shards := dataset.PartitionRows(d, w)
	mesh := comm.NewMesh(w)
	var computeLock sync.Mutex
	workers := make([]*meshWorker, w)
	for r := 0; r < w; r++ {
		workers[r] = &meshWorker{
			rank:        r,
			opts:        opts,
			shard:       shards[r],
			mesh:        mesh,
			cands:       cands,
			start:       start,
			computeLock: &computeLock,
		}
	}
	errs := make([]error, w)
	var wg sync.WaitGroup
	for r := 0; r < w; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = workers[r].run()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return nil, Stats{}, fmt.Errorf("baselines: %s rank %d: %w", opts.System, r, err)
		}
	}

	st := Stats{
		WallTime: time.Since(start),
		Bytes:    mesh.BytesMoved(),
		Msgs:     mesh.MsgsMoved(),
		Events:   workers[0].events,
	}
	for _, wk := range workers {
		if wk.computeTime > st.MaxWorkerCompute {
			st.MaxWorkerCompute = wk.computeTime
		}
	}
	maxBytes, maxMsgs := mesh.MaxPerRank()
	p := simnet.GigabitEthernet()
	st.ModeledCommTime = time.Duration((p.Alpha*float64(maxMsgs) + p.Beta*float64(maxBytes)) * float64(time.Second))
	st.ModeledTotalTime = st.MaxWorkerCompute + st.ModeledCommTime
	return workers[0].model, st, nil
}
