package baselines

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dimboost/internal/comm"
	"dimboost/internal/core"
	"dimboost/internal/dataset"
	"dimboost/internal/histogram"
	"dimboost/internal/loss"
	"dimboost/internal/sketch"
	"dimboost/internal/tree"
)

// meshWorker is one rank of a mesh-based baseline trainer. All ranks follow
// the identical layer-wise loop; only the per-node histogram aggregation
// differs by system.
type meshWorker struct {
	rank  int
	opts  Options
	shard *dataset.Dataset
	mesh  *comm.Mesh
	cands []sketch.Candidates
	start time.Time

	model  *core.Model
	events []core.TreeEvent
	preds  []float64
	grad   []float64
	hess   []float64
	lossFn loss.Func
	rng    *rand.Rand

	// computeTime accumulates time spent in local computation (gradients,
	// histogram building, split finding) excluding mesh waits. Compute
	// sections serialize on computeLock so the timers measure each
	// worker's own work even when workers outnumber cores.
	computeTime time.Duration
	computeLock *sync.Mutex
}

// compute runs f under the serialization lock and returns its duration.
func (mw *meshWorker) compute(f func()) time.Duration {
	mw.computeLock.Lock()
	defer mw.computeLock.Unlock()
	start := time.Now()
	f()
	return time.Since(start)
}

// splitRec is the small split-decision payload exchanged between ranks,
// encoded as 11 float64s for mesh transport.
type splitRec struct {
	split     core.Split
	nodeG     float64
	nodeH     float64
	hasTotals bool
}

func (s splitRec) encode() []float64 {
	found, tot := 0.0, 0.0
	if s.split.Found {
		found = 1
	}
	if s.hasTotals {
		tot = 1
	}
	return []float64{found, float64(s.split.Feature), s.split.Value, s.split.Gain,
		s.split.LeftG, s.split.LeftH, s.split.RightG, s.split.RightH, s.nodeG, s.nodeH, tot}
}

func decodeSplitRec(v []float64) (splitRec, error) {
	if len(v) != 11 {
		return splitRec{}, fmt.Errorf("baselines: split record has %d fields", len(v))
	}
	return splitRec{
		split: core.Split{
			Found: v[0] != 0, Feature: int32(v[1]), Value: v[2], Gain: v[3],
			LeftG: v[4], LeftH: v[5], RightG: v[6], RightH: v[7],
		},
		nodeG: v[8], nodeH: v[9], hasTotals: v[10] != 0,
	}, nil
}

func (mw *meshWorker) run() error {
	cfg := mw.opts.Core
	n := mw.shard.NumRows()
	mw.preds = make([]float64, n)
	mw.grad = make([]float64, n)
	mw.hess = make([]float64, n)
	mw.lossFn = loss.New(cfg.Loss)
	mw.model = &core.Model{Loss: cfg.Loss}
	mw.rng = rand.New(rand.NewSource(cfg.Seed))

	for t := 0; t < cfg.NumTrees; t++ {
		if err := mw.trainTree(t); err != nil {
			return fmt.Errorf("tree %d: %w", t, err)
		}
	}
	return nil
}

// sampleFeatures draws the per-tree subset; every rank shares the seed so
// the draws agree without communication.
func (mw *meshWorker) sampleFeatures() []int32 {
	m := mw.shard.NumFeatures
	if mw.opts.Core.FeatureSampleRatio >= 1 {
		return histogram.AllFeatures(m)
	}
	k := int(mw.opts.Core.FeatureSampleRatio * float64(m))
	if k < 1 {
		k = 1
	}
	perm := mw.rng.Perm(m)[:k]
	out := make([]int32, k)
	for i, f := range perm {
		out[i] = int32(f)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func (mw *meshWorker) trainTree(t int) error {
	cfg := mw.opts.Core
	n := mw.shard.NumRows()
	mw.computeTime += mw.compute(func() {
		for i := 0; i < n; i++ {
			mw.grad[i], mw.hess[i] = mw.lossFn.Gradients(float64(mw.shard.Labels[i]), mw.preds[i])
		}
	})
	layout, err := histogram.NewLayout(mw.sampleFeatures(), mw.cands, mw.shard.NumFeatures)
	if err != nil {
		return err
	}

	tn := tree.New(cfg.MaxDepth)
	idx := tree.NewIndex(n, tree.MaxNodes(cfg.MaxDepth))
	type nodeState struct{ g, h float64 }
	states := map[int]nodeState{}

	buildOpts := histogram.BuildOptions{
		Parallelism: cfg.Parallelism,
		BatchSize:   cfg.BatchSize,
		Dense:       !mw.opts.SparseBuild,
	}

	active := []int{0}
	// One reusable histogram buffer per tree; the aggregation operators
	// copy data onto the mesh, so the buffer is free after each call.
	hist := histogram.New(layout)
	for depth := 0; depth < cfg.MaxDepth && len(active) > 0; depth++ {
		if depth == cfg.MaxDepth-1 {
			for _, node := range active {
				st, ok := states[node]
				if !ok {
					return fmt.Errorf("node %d has no state at max depth", node)
				}
				tn.SetLeaf(node, cfg.LearningRate*core.LeafWeight(st.g, st.h, cfg.Lambda))
			}
			break
		}
		var next []int
		for i, node := range active {
			mw.computeTime += mw.compute(func() {
				hist.Reset()
				histogram.Build(hist, mw.shard, idx.Rows(node), mw.grad, mw.hess, buildOpts)
			})

			rec, err := mw.aggregateAndSplit(node, i, hist, layout)
			if err != nil {
				return err
			}
			if _, seen := states[node]; !seen && rec.hasTotals {
				states[node] = nodeState{rec.nodeG, rec.nodeH}
			}
			if !rec.split.Found {
				st := states[node]
				tn.SetLeaf(node, cfg.LearningRate*core.LeafWeight(st.g, st.h, cfg.Lambda))
				continue
			}
			sp := rec.split
			tn.SetSplit(node, sp.Feature, sp.Value, sp.Gain)
			f, v := int(sp.Feature), sp.Value
			idx.Split(node, func(r int32) bool {
				return float64(mw.shard.Row(int(r)).Feature(f)) <= v
			})
			states[tree.Left(node)] = nodeState{sp.LeftG, sp.LeftH}
			states[tree.Right(node)] = nodeState{sp.RightG, sp.RightH}
			next = append(next, tree.Left(node), tree.Right(node))
		}
		active = next
	}

	for node := range tn.Nodes {
		nd := &tn.Nodes[node]
		if !nd.Used || !nd.Leaf || nd.Weight == 0 {
			continue
		}
		for _, r := range idx.Rows(node) {
			mw.preds[r] += nd.Weight
		}
	}
	mw.model.Trees = append(mw.model.Trees, tn)
	mw.events = append(mw.events, core.TreeEvent{
		Tree:      t,
		TrainLoss: loss.MeanLoss(mw.lossFn, mw.shard.Labels, mw.preds),
		Elapsed:   time.Since(mw.start),
	})
	return nil
}

// aggregateAndSplit merges the node's local histogram across ranks with the
// system's strategy and returns the agreed global split record. nodeIdx is
// the node's index within the active list (for round-robin assignment).
func (mw *meshWorker) aggregateAndSplit(node, nodeIdx int, h *histogram.Histogram, layout *histogram.Layout) (splitRec, error) {
	cfg := mw.opts.Core
	find := func(hist *histogram.Histogram) splitRec {
		tg, th := hist.FeatureTotals(0)
		return splitRec{
			split:     core.FindSplit(hist, tg, th, cfg.Lambda, cfg.Gamma, cfg.MinChildHessian),
			nodeG:     tg,
			nodeH:     th,
			hasTotals: true,
		}
	}
	w := mw.mesh.Size()
	if w == 1 {
		return find(h), nil
	}

	switch mw.opts.System {
	case MLlibStyle:
		merged := mw.mesh.ReduceToRoot(mw.rank, packRaw(h))
		var rec splitRec
		if mw.rank == 0 {
			rec = find(unpackRaw(merged, layout))
			for to := 1; to < w; to++ {
				mw.mesh.Send(mw.rank, to, rec.encode())
			}
			return rec, nil
		}
		return decodeSplitRec(mw.mesh.Recv(mw.rank, 0))

	case XGBoostStyle:
		merged := mw.mesh.BinomialReduceToRoot(mw.rank, packRaw(h))
		var payload []float64
		if mw.rank == 0 {
			payload = find(unpackRaw(merged, layout)).encode()
		}
		return decodeSplitRec(mw.mesh.BroadcastBinomial(mw.rank, payload))

	case LightGBMStyle:
		return mw.lightGBMAggregate(h, layout)

	case TencentBoostStyle:
		return mw.tencentAggregate(nodeIdx, h, layout, find)

	default:
		return splitRec{}, fmt.Errorf("baselines: system %v has no mesh aggregation", mw.opts.System)
	}
}

// lightGBMAggregate runs recursive-halving ReduceScatter over a
// feature-group-aligned padded vector, finds the best split on each owned
// group, and exchanges the small split records.
func (mw *meshWorker) lightGBMAggregate(h *histogram.Histogram, layout *histogram.Layout) (splitRec, error) {
	cfg := mw.opts.Core
	w := mw.mesh.Size()
	plan := newSegPlan(layout, w)
	res := mw.mesh.ReduceScatterHalving(mw.rank, plan.pack(h))

	var mine splitRec
	haveMine := false
	if res.Block != nil {
		group := res.Start / plan.L
		if hist, fLo, fHi, ok := plan.unpackGroup(res.Block, group, layout); ok {
			tg, th := hist.FeatureTotals(fLo)
			mine = splitRec{
				split:     core.FindSplitRange(hist, fLo, fHi, tg, th, cfg.Lambda, cfg.Gamma, cfg.MinChildHessian),
				nodeG:     tg,
				nodeH:     th,
				hasTotals: true,
			}
			haveMine = true
		}
	}
	// Exchange records: every participating rank broadcasts its record to
	// all (the "communicate local best splits" step); empty groups send a
	// not-found record so receive counts stay deterministic.
	participants := plan.participants(w)
	if participants[mw.rank] {
		payload := mine.encode()
		if !haveMine {
			payload = splitRec{}.encode()
		}
		for to := 0; to < w; to++ {
			if to != mw.rank {
				mw.mesh.Send(mw.rank, to, payload)
			}
		}
	}
	best := splitRec{}
	if haveMine {
		best = mine
	}
	for from := 0; from < w; from++ {
		if from == mw.rank || !participants[from] {
			continue
		}
		rec, err := decodeSplitRec(mw.mesh.Recv(mw.rank, from))
		if err != nil {
			return splitRec{}, err
		}
		best = foldRec(best, rec)
	}
	return best, nil
}

// tencentAggregate scatter-gathers blocks over the co-located PS, then the
// node's responsible worker pulls the full merged histogram (h bytes — no
// two-phase split) and distributes the decision.
func (mw *meshWorker) tencentAggregate(nodeIdx int, h *histogram.Histogram, layout *histogram.Layout, find func(*histogram.Histogram) splitRec) (splitRec, error) {
	w := mw.mesh.Size()
	owner := nodeIdx % w
	vecLen := 2 * layout.TotalBuckets
	res := mw.mesh.PSScatterGather(mw.rank, packRaw(h))
	// Full-histogram pull: every rank ships its merged block to the owner.
	if mw.rank != owner {
		header := append([]float64{float64(res.Start), float64(len(res.Block))}, res.Block...)
		mw.mesh.Send(mw.rank, owner, header)
		return decodeSplitRec(mw.mesh.Recv(mw.rank, owner))
	}
	full := make([]float64, vecLen)
	copy(full[res.Start:], res.Block)
	for from := 0; from < w; from++ {
		if from == owner {
			continue
		}
		msg := mw.mesh.Recv(mw.rank, from)
		start, ln := int(msg[0]), int(msg[1])
		copy(full[start:start+ln], msg[2:])
	}
	rec := find(unpackRaw(full, layout))
	payload := rec.encode()
	for to := 0; to < w; to++ {
		if to != owner {
			mw.mesh.Send(mw.rank, to, payload)
		}
	}
	return rec, nil
}

// foldRec merges two split records, keeping the better split and any totals.
func foldRec(a, b splitRec) splitRec {
	out := a
	if b.split.Better(a.split) {
		out.split = b.split
	}
	if !out.hasTotals && b.hasTotals {
		out.nodeG, out.nodeH, out.hasTotals = b.nodeG, b.nodeH, true
	}
	return out
}

// packRaw flattens a histogram as [G;H].
func packRaw(h *histogram.Histogram) []float64 {
	out := make([]float64, 0, 2*len(h.G))
	out = append(out, h.G...)
	out = append(out, h.H...)
	return out
}

// unpackRaw views a [G;H] vector as a histogram under the layout.
func unpackRaw(vec []float64, layout *histogram.Layout) *histogram.Histogram {
	t := layout.TotalBuckets
	return &histogram.Histogram{Layout: layout, G: vec[:t], H: vec[t : 2*t]}
}

// segPlan maps the histogram onto p2 equal-length padded segments whose
// boundaries align with feature-group boundaries, so recursive halving never
// cuts a feature's buckets apart.
type segPlan struct {
	p2 int // participating ranks (largest power of two <= w)
	L  int // per-segment length (2·maxGroupBuckets)
	// per group: sampled feature position range and bucket region
	fLo, fHi []int
	bLo, bSz []int
}

func newSegPlan(layout *histogram.Layout, w int) *segPlan {
	p2 := 1
	for p2*2 <= w {
		p2 *= 2
	}
	sp := &segPlan{p2: p2, fLo: make([]int, p2), fHi: make([]int, p2), bLo: make([]int, p2), bSz: make([]int, p2)}
	f := layout.NumFeatures()
	for g := 0; g < p2; g++ {
		lo, hi := comm.BlockRange(f, p2, g)
		sp.fLo[g], sp.fHi[g] = lo, hi
		bLo, _ := layout.BucketRange(lo)
		if lo == hi {
			sp.bLo[g], sp.bSz[g] = bLo, 0
			continue
		}
		_, bHi := layout.BucketRange(hi - 1)
		sp.bLo[g] = bLo
		sp.bSz[g] = bHi - bLo
		if 2*sp.bSz[g] > sp.L {
			sp.L = 2 * sp.bSz[g]
		}
	}
	if sp.L == 0 {
		sp.L = 2
	}
	return sp
}

// pack lays out each group's [G;H] region into its padded segment.
func (sp *segPlan) pack(h *histogram.Histogram) []float64 {
	vec := make([]float64, sp.p2*sp.L)
	for g := 0; g < sp.p2; g++ {
		base := g * sp.L
		lo, sz := sp.bLo[g], sp.bSz[g]
		copy(vec[base:base+sz], h.G[lo:lo+sz])
		copy(vec[base+sz:base+2*sz], h.H[lo:lo+sz])
	}
	return vec
}

// unpackGroup rebuilds a (mostly zero) full histogram holding only group g's
// buckets, plus the group's feature-position range. ok is false for empty
// groups.
func (sp *segPlan) unpackGroup(block []float64, g int, layout *histogram.Layout) (h *histogram.Histogram, fLo, fHi int, ok bool) {
	if g < 0 || g >= sp.p2 || sp.bSz[g] == 0 {
		return nil, 0, 0, false
	}
	h = histogram.New(layout)
	lo, sz := sp.bLo[g], sp.bSz[g]
	copy(h.G[lo:lo+sz], block[:sz])
	copy(h.H[lo:lo+sz], block[sz:2*sz])
	return h, sp.fLo[g], sp.fHi[g], true
}

// participants marks the ranks that own a block after the non-power-of-two
// fold-in (odd ranks below 2(w−p2) go idle).
func (sp *segPlan) participants(w int) []bool {
	r := w - sp.p2
	out := make([]bool, w)
	for rank := 0; rank < w; rank++ {
		out[rank] = !(rank < 2*r && rank%2 == 1)
	}
	return out
}
