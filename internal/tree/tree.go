// Package tree provides the regression-tree model trained by GBDT and the
// node-to-instance index used to build per-node gradient histograms without
// rescanning the dataset (§5.2).
//
// Trees use the paper's implicit complete-binary layout: a tree of maximal
// depth d occupies 2^d − 1 slots, node i has children 2i+1 and 2i+2 (the
// "state array" of the round-robin task scheduler, §6.2, uses the same
// numbering).
package tree

import (
	"fmt"
	"math/bits"

	"dimboost/internal/dataset"
)

// MaxNodes returns the slot count of a tree with the given maximal depth
// (depth 1 is a single leaf).
func MaxNodes(maxDepth int) int { return (1 << maxDepth) - 1 }

// LayerRange returns the [lo, hi) node-id range of layer l (the root is
// layer 0).
func LayerRange(l int) (lo, hi int) { return (1 << l) - 1, (1 << (l + 1)) - 1 }

// Depth returns the layer of node id i: ⌊log2(i+1)⌋ in pure integer math.
// (float64 Log2 loses exactness once i+1 has more significant bits than the
// mantissa holds — Depth(2^53) style ids would round to the wrong layer.)
func Depth(i int) int {
	return bits.Len(uint(i)+1) - 1
}

// Left and Right return the child ids of node i.
func Left(i int) int  { return 2*i + 1 }
func Right(i int) int { return 2*i + 2 }

// Parent returns the parent id of node i (undefined for the root).
func Parent(i int) int { return (i - 1) / 2 }

// Node is one slot of a regression tree. A node is unused (never created),
// an internal split, or a leaf with a prediction weight.
type Node struct {
	// Used marks whether this slot exists in the tree.
	Used bool
	// Leaf marks leaf nodes; leaves carry Weight, internal nodes carry
	// Feature/Value/Gain.
	Leaf bool
	// Feature is the global split feature id.
	Feature int32
	// Value is the split threshold: x[Feature] <= Value goes left. Missing
	// features read as 0.
	Value float64
	// Gain is the objective gain of this split (for model inspection).
	Gain float64
	// Weight is the leaf prediction, with shrinkage already applied.
	Weight float64
}

// Tree is a single regression tree in implicit layout.
type Tree struct {
	MaxDepth int
	Nodes    []Node
}

// New returns a tree of the given maximal depth whose root exists as a leaf
// of weight 0.
func New(maxDepth int) *Tree {
	if maxDepth < 1 {
		panic("tree: maxDepth must be >= 1")
	}
	t := &Tree{MaxDepth: maxDepth, Nodes: make([]Node, MaxNodes(maxDepth))}
	t.Nodes[0] = Node{Used: true, Leaf: true}
	return t
}

// SetSplit converts node i into an internal split and creates its children
// as leaves (their weights are set separately).
func (t *Tree) SetSplit(i int, feature int32, value, gain float64) {
	if Right(i) >= len(t.Nodes) {
		panic(fmt.Sprintf("tree: splitting node %d exceeds max depth %d", i, t.MaxDepth))
	}
	t.Nodes[i] = Node{Used: true, Feature: feature, Value: value, Gain: gain}
	t.Nodes[Left(i)] = Node{Used: true, Leaf: true}
	t.Nodes[Right(i)] = Node{Used: true, Leaf: true}
}

// SetLeaf makes node i a leaf with the given (already shrunk) weight.
func (t *Tree) SetLeaf(i int, weight float64) {
	t.Nodes[i] = Node{Used: true, Leaf: true, Weight: weight}
}

// Predict routes one instance from the root to a leaf and returns the leaf
// weight.
func (t *Tree) Predict(in dataset.Instance) float64 {
	i := 0
	for {
		n := &t.Nodes[i]
		if n.Leaf {
			return n.Weight
		}
		if float64(in.Feature(int(n.Feature))) <= n.Value {
			i = Left(i)
		} else {
			i = Right(i)
		}
	}
}

// PredictNode returns the leaf node id an instance lands in.
func (t *Tree) PredictNode(in dataset.Instance) int {
	i := 0
	for {
		if t.Nodes[i].Leaf {
			return i
		}
		n := &t.Nodes[i]
		if float64(in.Feature(int(n.Feature))) <= n.Value {
			i = Left(i)
		} else {
			i = Right(i)
		}
	}
}

// NumLeaves counts the leaves.
func (t *Tree) NumLeaves() int {
	n := 0
	for i := range t.Nodes {
		if t.Nodes[i].Used && t.Nodes[i].Leaf {
			n++
		}
	}
	return n
}

// Validate checks the structural invariants of the implicit layout: the root
// exists, children exist exactly for internal nodes, and unused slots have
// no used descendants.
func (t *Tree) Validate() error {
	if len(t.Nodes) != MaxNodes(t.MaxDepth) {
		return fmt.Errorf("tree: %d slots for depth %d", len(t.Nodes), t.MaxDepth)
	}
	if !t.Nodes[0].Used {
		return fmt.Errorf("tree: root missing")
	}
	for i := range t.Nodes {
		n := &t.Nodes[i]
		hasKids := Right(i) < len(t.Nodes)
		switch {
		case !n.Used:
			if hasKids && (t.Nodes[Left(i)].Used || t.Nodes[Right(i)].Used) {
				return fmt.Errorf("tree: unused node %d has used children", i)
			}
		case n.Leaf:
			if hasKids && (t.Nodes[Left(i)].Used || t.Nodes[Right(i)].Used) {
				return fmt.Errorf("tree: leaf %d has children", i)
			}
		default: // internal
			if !hasKids {
				return fmt.Errorf("tree: internal node %d at max depth", i)
			}
			if !t.Nodes[Left(i)].Used || !t.Nodes[Right(i)].Used {
				return fmt.Errorf("tree: internal node %d missing children", i)
			}
		}
	}
	return nil
}
