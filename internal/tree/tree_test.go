package tree

import (
	"testing"

	"dimboost/internal/dataset"
)

func TestLayoutHelpers(t *testing.T) {
	if MaxNodes(1) != 1 || MaxNodes(3) != 7 || MaxNodes(7) != 127 {
		t.Fatal("MaxNodes")
	}
	if Left(0) != 1 || Right(0) != 2 || Left(2) != 5 || Right(2) != 6 {
		t.Fatal("children")
	}
	if Parent(1) != 0 || Parent(2) != 0 || Parent(5) != 2 || Parent(6) != 2 {
		t.Fatal("parent")
	}
	for _, c := range []struct{ node, depth int }{{0, 0}, {1, 1}, {2, 1}, {3, 2}, {6, 2}, {7, 3}, {14, 3}} {
		if Depth(c.node) != c.depth {
			t.Errorf("Depth(%d) = %d, want %d", c.node, Depth(c.node), c.depth)
		}
	}
	lo, hi := LayerRange(0)
	if lo != 0 || hi != 1 {
		t.Fatal("layer 0")
	}
	lo, hi = LayerRange(2)
	if lo != 3 || hi != 7 {
		t.Fatal("layer 2")
	}
}

// TestDepthExhaustive checks Depth against its two defining invariants —
// every id of layer l as enumerated by LayerRange maps back to l, and layer
// boundaries (2^l−1 and 2^l−2) fall on the right side — exhaustively over
// the first layers, then at large ids where the old float64 Log2 formulation
// ran out of mantissa.
func TestDepthExhaustive(t *testing.T) {
	// Every node of the first 16 layers (65535 ids), via LayerRange.
	for l := 0; l < 16; l++ {
		lo, hi := LayerRange(l)
		for i := lo; i < hi; i++ {
			if got := Depth(i); got != l {
				t.Fatalf("Depth(%d) = %d, want layer %d", i, got, l)
			}
		}
	}
	// Layer boundaries across the full int range a node id can take: the
	// first id of layer l is 2^l−1, the last id of layer l−1 is 2^l−2.
	for l := 1; l < 62; l++ {
		first := (1 << l) - 1
		if got := Depth(first); got != l {
			t.Errorf("Depth(2^%d-1) = %d, want %d", l, got, l)
		}
		if got := Depth(first - 1); got != l-1 {
			t.Errorf("Depth(2^%d-2) = %d, want %d", l, got, l-1)
		}
	}
	// Interior ids past float64's 53-bit mantissa, where a Log2-based
	// formulation can round to the wrong layer.
	for _, c := range []struct{ node, depth int }{
		{1<<53 + 12345, 53},
		{1<<60 + 9e17, 60},
		{1<<62 - 2, 61},
	} {
		if got := Depth(c.node); got != c.depth {
			t.Errorf("Depth(%d) = %d, want %d", c.node, got, c.depth)
		}
	}
	// Depth agrees with the parent recurrence: Depth(child) = Depth(i)+1.
	for i := 0; i < 1000; i++ {
		if Depth(Left(i)) != Depth(i)+1 || Depth(Right(i)) != Depth(i)+1 {
			t.Fatalf("child depth recurrence broken at %d", i)
		}
	}
}

func inst(pairs map[int]float32) dataset.Instance {
	var idx []int32
	var val []float32
	for f := 0; f < 100; f++ {
		if v, ok := pairs[f]; ok {
			idx = append(idx, int32(f))
			val = append(val, v)
		}
	}
	return dataset.Instance{Indices: idx, Values: val}
}

func TestTreePredict(t *testing.T) {
	tr := New(3)
	// root splits on feature 2 at 0.5; left leaf -1; right splits on
	// feature 0 at 2 with leaves +1 / +2
	tr.SetSplit(0, 2, 0.5, 1.0)
	tr.SetLeaf(Left(0), -1)
	tr.SetSplit(Right(0), 0, 2, 0.7)
	tr.SetLeaf(Left(Right(0)), 1)
	tr.SetLeaf(Right(Right(0)), 2)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		in   dataset.Instance
		want float64
		node int
	}{
		{inst(map[int]float32{2: 0.3}), -1, 1},
		{inst(map[int]float32{}), -1, 1}, // missing feature 2 reads 0 <= 0.5
		{inst(map[int]float32{2: 0.9, 0: 1.5}), 1, 5},
		{inst(map[int]float32{2: 0.9, 0: 3}), 2, 6},
		{inst(map[int]float32{2: 0.9}), 1, 5}, // missing feature 0 reads 0 <= 2
	}
	for i, c := range cases {
		if got := tr.Predict(c.in); got != c.want {
			t.Errorf("case %d: Predict = %v, want %v", i, got, c.want)
		}
		if got := tr.PredictNode(c.in); got != c.node {
			t.Errorf("case %d: PredictNode = %v, want %v", i, got, c.node)
		}
	}
	if tr.NumLeaves() != 3 {
		t.Fatalf("NumLeaves = %d, want 3", tr.NumLeaves())
	}
}

func TestTreeBoundaryEquality(t *testing.T) {
	tr := New(2)
	tr.SetSplit(0, 1, 5, 1)
	tr.SetLeaf(1, 10)
	tr.SetLeaf(2, 20)
	// x == threshold goes left
	if got := tr.Predict(inst(map[int]float32{1: 5})); got != 10 {
		t.Fatalf("boundary: got %v, want left leaf", got)
	}
	if got := tr.Predict(inst(map[int]float32{1: 5.0001})); got != 20 {
		t.Fatalf("just above boundary: got %v, want right leaf", got)
	}
}

func TestTreeValidateCatchesCorruption(t *testing.T) {
	tr := New(3)
	tr.SetSplit(0, 0, 1, 1)
	tr.SetLeaf(1, 0)
	tr.SetLeaf(2, 0)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// leaf with used child
	tr.Nodes[3].Used = true
	if err := tr.Validate(); err == nil {
		t.Fatal("expected leaf-with-children error")
	}
	tr.Nodes[3].Used = false
	// internal node missing a child
	tr.Nodes[1] = Node{Used: true} // internal, children unset
	if err := tr.Validate(); err == nil {
		t.Fatal("expected missing-children error")
	}
	// missing root
	tr2 := New(2)
	tr2.Nodes[0].Used = false
	if err := tr2.Validate(); err == nil {
		t.Fatal("expected missing-root error")
	}
}

func TestTreePanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New(0) should panic")
			}
		}()
		New(0)
	}()
	func() {
		tr := New(2)
		defer func() {
			if recover() == nil {
				t.Error("splitting at max depth should panic")
			}
		}()
		tr.SetSplit(1, 0, 0, 0) // node 1's children would be 3,4 >= 3 slots
	}()
}

func TestIndexSplit(t *testing.T) {
	idx := NewIndex(10, MaxNodes(3))
	if idx.Len() != 10 || idx.Count(0) != 10 {
		t.Fatal("initial index")
	}
	// even rows left, odd right
	nl, nr := idx.Split(0, func(r int32) bool { return r%2 == 0 })
	if nl != 5 || nr != 5 {
		t.Fatalf("split sizes %d/%d", nl, nr)
	}
	seen := map[int32]bool{}
	for _, r := range idx.Rows(Left(0)) {
		if r%2 != 0 {
			t.Fatalf("row %d in left child", r)
		}
		seen[r] = true
	}
	for _, r := range idx.Rows(Right(0)) {
		if r%2 != 1 {
			t.Fatalf("row %d in right child", r)
		}
		seen[r] = true
	}
	if len(seen) != 10 {
		t.Fatalf("split lost rows: %d", len(seen))
	}
	// split a child again
	nl, nr = idx.Split(Left(0), func(r int32) bool { return r < 4 })
	if nl != 2 || nr != 3 { // rows 0,2 vs 4,6,8
		t.Fatalf("second split %d/%d", nl, nr)
	}
	if idx.Count(Left(Left(0))) != 2 {
		t.Fatal("grandchild count")
	}
}

func TestIndexSplitAllOneSide(t *testing.T) {
	idx := NewIndex(5, MaxNodes(2))
	nl, nr := idx.Split(0, func(int32) bool { return true })
	if nl != 5 || nr != 0 {
		t.Fatalf("all-left split %d/%d", nl, nr)
	}
	if idx.Count(Right(0)) != 0 || idx.Rows(Right(0)) != nil && len(idx.Rows(Right(0))) != 0 {
		t.Fatal("right child should be empty")
	}
	idx2 := NewIndex(5, MaxNodes(2))
	nl, nr = idx2.Split(0, func(int32) bool { return false })
	if nl != 0 || nr != 5 {
		t.Fatalf("all-right split %d/%d", nl, nr)
	}
}

func TestIndexUnsetNode(t *testing.T) {
	idx := NewIndex(3, MaxNodes(3))
	if idx.Rows(5) != nil {
		t.Fatal("unset node should have nil rows")
	}
	if idx.Count(5) != 0 {
		t.Fatal("unset node count")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("splitting unset node should panic")
		}
	}()
	idx.Split(5, func(int32) bool { return true })
}

func TestIndexEmptyNodeSplit(t *testing.T) {
	idx := NewIndex(4, MaxNodes(3))
	idx.Split(0, func(int32) bool { return true }) // right child empty
	nl, nr := idx.Split(Right(0), func(int32) bool { return true })
	if nl != 0 || nr != 0 {
		t.Fatalf("empty split %d/%d", nl, nr)
	}
}

func TestIndexPreservesMultisetProperty(t *testing.T) {
	// property-style: random splits at every layer keep the permutation a
	// permutation and children partition parents correctly
	for seed := int64(0); seed < 20; seed++ {
		idx := NewIndex(64, MaxNodes(4))
		rngState := uint64(seed*2654435761 + 1)
		next := func() uint64 {
			rngState ^= rngState << 13
			rngState ^= rngState >> 7
			rngState ^= rngState << 17
			return rngState
		}
		for layer := 0; layer < 3; layer++ {
			lo, hi := LayerRange(layer)
			for node := lo; node < hi; node++ {
				if idx.Count(node) == 0 && idx.Rows(node) == nil {
					continue
				}
				bit := next()
				idx.Split(node, func(r int32) bool { return (bit>>(uint(r)%64))&1 == 1 })
			}
		}
		// leaves partition all 64 rows
		seen := make(map[int32]int)
		lo, hi := LayerRange(3)
		for node := lo; node < hi; node++ {
			for _, r := range idx.Rows(node) {
				seen[r]++
			}
		}
		if len(seen) != 64 {
			t.Fatalf("seed %d: %d rows seen", seed, len(seen))
		}
		for r, c := range seen {
			if c != 1 {
				t.Fatalf("seed %d: row %d seen %d times", seed, r, c)
			}
		}
	}
}

func TestNewIndexFrom(t *testing.T) {
	rows := []int32{5, 2, 9, 7}
	idx := NewIndexFrom(rows, MaxNodes(2))
	if idx.Len() != 4 || idx.Count(0) != 4 {
		t.Fatalf("len %d count %d", idx.Len(), idx.Count(0))
	}
	got := idx.Rows(0)
	for i, r := range rows {
		if got[i] != r {
			t.Fatalf("row %d: %d want %d", i, got[i], r)
		}
	}
	// the input slice must be copied, not aliased
	rows[0] = 99
	if idx.Rows(0)[0] == 99 {
		t.Fatal("NewIndexFrom aliased caller slice")
	}
	// splitting works on the subset
	nl, nr := idx.Split(0, func(r int32) bool { return r < 7 })
	if nl != 2 || nr != 2 {
		t.Fatalf("split %d/%d", nl, nr)
	}
}
