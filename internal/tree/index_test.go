package tree

import (
	"math/rand"
	"reflect"
	"testing"

	"dimboost/internal/parallel"
)

func TestSplitIsStable(t *testing.T) {
	idx := NewIndex(10, MaxNodes(3))
	even := func(r int32) bool { return r%2 == 0 }
	nl, nr := idx.Split(0, even)
	if nl != 5 || nr != 5 {
		t.Fatalf("split sizes %d/%d, want 5/5", nl, nr)
	}
	wantL := []int32{0, 2, 4, 6, 8}
	wantR := []int32{1, 3, 5, 7, 9}
	if got := idx.Rows(Left(0)); !reflect.DeepEqual(got, wantL) {
		t.Fatalf("left rows %v, want %v (stable order)", got, wantL)
	}
	if got := idx.Rows(Right(0)); !reflect.DeepEqual(got, wantR) {
		t.Fatalf("right rows %v, want %v (stable order)", got, wantR)
	}
}

// TestSplitStableMatchesSequential drives random multi-level splits through
// pools of every size and demands the exact permutation the sequential
// partition produces — the property the trainer's bit-identity rests on.
func TestSplitStableMatchesSequential(t *testing.T) {
	const n = 50_000 // several RowChunk-sized chunks
	preds := make([]func(r int32) bool, 0, 3)
	rng := rand.New(rand.NewSource(7))
	salt := rng.Int31()
	preds = append(preds,
		func(r int32) bool { return (r^salt)%3 != 0 },
		func(r int32) bool { return (r*1597334677)%100 < 37 },
		func(r int32) bool { return r%2 == 0 },
	)

	runSplits := func(p *parallel.Pool) *Index {
		idx := NewIndex(n, MaxNodes(4))
		active := []int{0}
		for _, pred := range preds {
			var next []int
			for _, node := range active {
				if p == nil {
					idx.Split(node, pred)
				} else {
					idx.SplitStable(node, pred, p)
				}
				next = append(next, Left(node), Right(node))
			}
			active = next
		}
		return idx
	}

	ref := runSplits(nil)
	for _, workers := range []int{1, 2, 3, 4, 8} {
		got := runSplits(parallel.New(workers))
		if !reflect.DeepEqual(got.pos, ref.pos) {
			t.Fatalf("workers=%d: permutation differs from sequential", workers)
		}
		if !reflect.DeepEqual(got.lo, ref.lo) || !reflect.DeepEqual(got.hi, ref.hi) {
			t.Fatalf("workers=%d: node ranges differ from sequential", workers)
		}
	}
}

func TestSplitStableKeepsAscendingRows(t *testing.T) {
	const n = 10_000
	idx := NewIndex(n, MaxNodes(3))
	p := parallel.New(4)
	idx.SplitStable(0, func(r int32) bool { return r%7 < 3 }, p)
	for _, node := range []int{Left(0), Right(0)} {
		rows := idx.Rows(node)
		for i := 1; i < len(rows); i++ {
			if rows[i] <= rows[i-1] {
				t.Fatalf("node %d rows not ascending at %d: %d after %d", node, i, rows[i], rows[i-1])
			}
		}
	}
}

func TestSplitEmptyAndDegenerate(t *testing.T) {
	idx := NewIndexFrom([]int32{4, 9}, MaxNodes(3))
	// All rows go left: right child is empty.
	nl, nr := idx.Split(0, func(int32) bool { return true })
	if nl != 2 || nr != 0 {
		t.Fatalf("sizes %d/%d, want 2/0", nl, nr)
	}
	if got := idx.Count(Right(0)); got != 0 {
		t.Fatalf("right count %d, want 0", got)
	}
	// Splitting an empty node must work and yield two empty children.
	nl, nr = idx.Split(Right(0), func(int32) bool { return false })
	if nl != 0 || nr != 0 {
		t.Fatalf("empty split sizes %d/%d", nl, nr)
	}
}
