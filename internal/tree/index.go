package tree

import (
	"fmt"

	"dimboost/internal/parallel"
)

// Index is the node-to-instance index of §5.2: a single permutation array of
// instance ids plus a [lo, hi) range per tree node. Splitting a node
// partitions its range stably — left-going instances keep their relative
// order, then right-going ones keep theirs — so a node's rows stay in
// ascending instance order forever. Stability is what makes the partition
// chunkable: per-chunk partitions concatenated in chunk order give exactly
// the sequential result, independent of how many workers ran them
// (DESIGN.md invariant 15).
type Index struct {
	pos     []int32
	lo, hi  []int32
	scratch []int32 // partition staging, lazily allocated, len(pos)
}

// NewIndex creates an index over n instances for a tree with maxNodes slots;
// all instances start in the root (node 0).
func NewIndex(n, maxNodes int) *Index {
	idx := &Index{
		pos: make([]int32, n),
		lo:  make([]int32, maxNodes),
		hi:  make([]int32, maxNodes),
	}
	for i := range idx.pos {
		idx.pos[i] = int32(i)
	}
	for i := range idx.lo {
		idx.lo[i] = -1
		idx.hi[i] = -1
	}
	idx.lo[0] = 0
	idx.hi[0] = int32(n)
	return idx
}

// NewIndexFrom creates an index over an explicit row subset (instance
// subsampling): only the given rows participate in the tree; the slice is
// copied.
func NewIndexFrom(rows []int32, maxNodes int) *Index {
	idx := &Index{
		pos: append([]int32(nil), rows...),
		lo:  make([]int32, maxNodes),
		hi:  make([]int32, maxNodes),
	}
	for i := range idx.lo {
		idx.lo[i] = -1
		idx.hi[i] = -1
	}
	idx.lo[0] = 0
	idx.hi[0] = int32(len(rows))
	return idx
}

// Rows returns the instance ids of node i as a subslice of the permutation
// array. The slice is invalidated by a later Split of node i.
func (x *Index) Rows(node int) []int32 {
	if x.lo[node] < 0 {
		return nil
	}
	return x.pos[x.lo[node]:x.hi[node]]
}

// Count returns the number of instances in node i.
func (x *Index) Count(node int) int {
	if x.lo[node] < 0 {
		return 0
	}
	return int(x.hi[node] - x.lo[node])
}

// Split partitions node's instances by goLeft: instances for which goLeft
// returns true move to the front of the range (child Left(node)), the rest
// to the back (child Right(node)), each group keeping its relative order.
// It returns the two child sizes.
func (x *Index) Split(node int, goLeft func(row int32) bool) (nLeft, nRight int) {
	return x.SplitStable(node, goLeft, nil)
}

// SplitStable is Split with the partition work spread over p's workers: the
// node's range is cut into the fixed parallel.RowChunk grid, every chunk is
// partitioned independently into the staging buffer (goLeft is called
// exactly once per row and must be safe for concurrent use), and the chunk
// results are concatenated in chunk order. Because the partition is stable,
// the concatenation equals the sequential partition bit for bit, for every
// worker count. A nil pool runs sequentially.
func (x *Index) SplitStable(node int, goLeft func(row int32) bool, p *parallel.Pool) (nLeft, nRight int) {
	l, r := x.lo[node], x.hi[node]
	if l < 0 {
		panic(fmt.Sprintf("tree: splitting unset node %d", node))
	}
	n := int(r - l)
	chunks := (n + parallel.RowChunk - 1) / parallel.RowChunk
	var mid int32
	if p == nil || p.Workers() == 1 || chunks <= 1 {
		mid = x.stablePartition(l, r, goLeft)
	} else {
		mid = x.stablePartitionParallel(l, r, chunks, goLeft, p)
	}
	left, right := Left(node), Right(node)
	x.lo[left], x.hi[left] = l, mid
	x.lo[right], x.hi[right] = mid, r
	return int(mid - l), int(r - mid)
}

// stablePartition partitions pos[l:r) by goLeft in place, preserving the
// relative order of both groups, and returns the boundary: lefts are
// compacted forward while rights stage in scratch and are copied back.
func (x *Index) stablePartition(l, r int32, goLeft func(row int32) bool) int32 {
	s := x.ensureScratch()
	w := l
	k := 0
	for i := l; i < r; i++ {
		row := x.pos[i]
		if goLeft(row) {
			x.pos[w] = row
			w++
		} else {
			s[k] = row
			k++
		}
	}
	copy(x.pos[w:r], s[:k])
	return w
}

// stablePartitionParallel is stablePartition over the fixed RowChunk grid.
// Pass 1 partitions each chunk into its own slice of the staging buffer
// (lefts forward from the chunk start, rights backward from the chunk end,
// i.e. reversed). Pass 2 computes per-chunk destination offsets from the
// left counts. Pass 3 copies every chunk's lefts and (re-reversed) rights to
// their final positions. All passes write disjoint ranges, and the result is
// defined purely by the grid, so any worker count produces the same
// permutation.
func (x *Index) stablePartitionParallel(l, r int32, chunks int, goLeft func(row int32) bool, p *parallel.Pool) int32 {
	s := x.ensureScratch()
	n := int(r - l)
	nL := make([]int32, chunks)
	p.ForChunks(n, parallel.RowChunk, func(c, lo, hi int) {
		a, b := l+int32(lo), l+int32(hi)
		w, e := a, b-1
		for i := a; i < b; i++ {
			row := x.pos[i]
			if goLeft(row) {
				s[w] = row
				w++
			} else {
				s[e] = row
				e--
			}
		}
		nL[c] = w - a
	})
	leftAt := make([]int32, chunks)
	rightAt := make([]int32, chunks)
	at := l
	for c, cl := range nL {
		leftAt[c] = at
		at += cl
	}
	mid := at
	for c, cl := range nL {
		rightAt[c] = at
		hi := min(int32(c+1)*parallel.RowChunk, int32(n))
		at += hi - int32(c)*parallel.RowChunk - cl
	}
	p.ForChunks(n, parallel.RowChunk, func(c, lo, hi int) {
		a, b := l+int32(lo), l+int32(hi)
		copy(x.pos[leftAt[c]:], s[a:a+nL[c]])
		w := rightAt[c]
		for i := b - 1; i >= a+nL[c]; i-- {
			x.pos[w] = s[i]
			w++
		}
	})
	return mid
}

// ensureScratch returns the staging buffer, allocating it on first use.
func (x *Index) ensureScratch() []int32 {
	if x.scratch == nil {
		x.scratch = make([]int32, len(x.pos))
	}
	return x.scratch
}

// Len returns the total number of indexed instances.
func (x *Index) Len() int { return len(x.pos) }
