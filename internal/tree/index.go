package tree

import "fmt"

// Index is the node-to-instance index of §5.2: a single permutation array of
// instance ids plus a [lo, hi) range per tree node. Splitting a node
// partitions its range in place with a two-directional scan-and-swap, so
// histogram builders can read a node's instances contiguously without
// scanning the dataset.
type Index struct {
	pos    []int32
	lo, hi []int32
}

// NewIndex creates an index over n instances for a tree with maxNodes slots;
// all instances start in the root (node 0).
func NewIndex(n, maxNodes int) *Index {
	idx := &Index{
		pos: make([]int32, n),
		lo:  make([]int32, maxNodes),
		hi:  make([]int32, maxNodes),
	}
	for i := range idx.pos {
		idx.pos[i] = int32(i)
	}
	for i := range idx.lo {
		idx.lo[i] = -1
		idx.hi[i] = -1
	}
	idx.lo[0] = 0
	idx.hi[0] = int32(n)
	return idx
}

// NewIndexFrom creates an index over an explicit row subset (instance
// subsampling): only the given rows participate in the tree; the slice is
// copied.
func NewIndexFrom(rows []int32, maxNodes int) *Index {
	idx := &Index{
		pos: append([]int32(nil), rows...),
		lo:  make([]int32, maxNodes),
		hi:  make([]int32, maxNodes),
	}
	for i := range idx.lo {
		idx.lo[i] = -1
		idx.hi[i] = -1
	}
	idx.lo[0] = 0
	idx.hi[0] = int32(len(rows))
	return idx
}

// Rows returns the instance ids of node i as a subslice of the permutation
// array. The slice is invalidated by a later Split of node i.
func (x *Index) Rows(node int) []int32 {
	if x.lo[node] < 0 {
		return nil
	}
	return x.pos[x.lo[node]:x.hi[node]]
}

// Count returns the number of instances in node i.
func (x *Index) Count(node int) int {
	if x.lo[node] < 0 {
		return 0
	}
	return int(x.hi[node] - x.lo[node])
}

// Split partitions node's instances by goLeft: instances for which goLeft
// returns true move to the front of the range (child Left(node)), the rest
// to the back (child Right(node)). It returns the two child sizes.
func (x *Index) Split(node int, goLeft func(row int32) bool) (nLeft, nRight int) {
	l, r := x.lo[node], x.hi[node]
	if l < 0 {
		panic(fmt.Sprintf("tree: splitting unset node %d", node))
	}
	i, j := l, r-1
	for i <= j {
		for i <= j && goLeft(x.pos[i]) {
			i++
		}
		for i <= j && !goLeft(x.pos[j]) {
			j--
		}
		if i < j {
			x.pos[i], x.pos[j] = x.pos[j], x.pos[i]
			i++
			j--
		}
	}
	mid := i
	left, right := Left(node), Right(node)
	x.lo[left], x.hi[left] = l, mid
	x.lo[right], x.hi[right] = mid, r
	return int(mid - l), int(r - mid)
}

// Len returns the total number of indexed instances.
func (x *Index) Len() int { return len(x.pos) }
