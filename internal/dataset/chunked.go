package dataset

import (
	"fmt"
	"os"
)

// ChunkedFile is an open binary dataset file served chunk by chunk — the
// chunk-iterator API of the disk storage level. It keeps only O(rows/chunk)
// state in memory (one row-pointer per chunk boundary); every payload byte
// stays on disk until a chunk is explicitly read. The out-of-core training
// subsystem (internal/ooc) builds its bounded chunk cache on top of this
// type.
//
// The whole structure of the file is validated at Open: header sanity, file
// size against the promised payload, and row-pointer monotonicity (streamed,
// never materialized). Per-chunk reads re-validate the chunk's interior row
// pointers against the chunk boundaries, so a file corrupted after Open
// still fails with ErrCorrupt instead of producing an inconsistent Dataset.
//
// A ChunkedFile is safe for concurrent ReadChunk calls (reads go through
// pread) but not for concurrent use with Close.
type ChunkedFile struct {
	f         *os.File
	h         binaryHeader
	path      string
	chunkRows int
	// chunkPtr[c] is rowPtr[min(c*chunkRows, rows)]: the nonzero offset of
	// each chunk boundary. len(chunkPtr) == NumChunks()+1.
	chunkPtr []int64
}

// OpenChunked opens a binary dataset file for chunked reading with the
// given rows-per-chunk granularity. It validates the header, the file size,
// and the full row-pointer chain in one streaming pass.
func OpenChunked(path string, chunkRows int) (*ChunkedFile, error) {
	if chunkRows < 1 {
		return nil, fmt.Errorf("dataset: chunkRows %d < 1", chunkRows)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	cf, err := newChunkedFile(f, path, chunkRows)
	if err != nil {
		f.Close()
		return nil, err
	}
	return cf, nil
}

func newChunkedFile(f *os.File, path string, chunkRows int) (*ChunkedFile, error) {
	h, err := readHeader(f)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < h.fileSize() {
		return nil, fmt.Errorf("%w: file is %d bytes, header promises %d", ErrTruncated, st.Size(), h.fileSize())
	}
	if st.Size() > h.fileSize() {
		return nil, fmt.Errorf("%w: %d trailing bytes past the %d-byte payload", ErrCorrupt, st.Size()-h.fileSize(), h.fileSize())
	}
	n := int(h.rows)
	chunks := (n + chunkRows - 1) / chunkRows
	cf := &ChunkedFile{
		f:         f,
		h:         h,
		path:      path,
		chunkRows: chunkRows,
		chunkPtr:  make([]int64, chunks+1),
	}
	// Stream the row-pointer region, validating monotonicity and capturing
	// the chunk-boundary offsets; the full array is never resident.
	slab := make([]int64, min(n+1, growSlab))
	prev := int64(0)
	for at := 0; at <= n; at += len(slab) {
		want := min(n+1-at, len(slab))
		if want == 0 {
			break
		}
		if err := readU64sAt(f, h.rowPtrOff()+int64(at)*8, slab[:want]); err != nil {
			return nil, err
		}
		for i := 0; i < want; i++ {
			p := slab[i]
			r := at + i
			if r == 0 && p != 0 {
				return nil, fmt.Errorf("%w: RowPtr[0] != 0", ErrCorrupt)
			}
			if p < prev {
				return nil, fmt.Errorf("%w: RowPtr not monotone at row %d (%d < %d)", ErrCorrupt, r, p, prev)
			}
			prev = p
			if r%chunkRows == 0 {
				cf.chunkPtr[r/chunkRows] = p
			}
		}
	}
	if uint64(prev) != h.nnz {
		return nil, fmt.Errorf("%w: RowPtr[rows]=%d, header nnz=%d", ErrCorrupt, prev, h.nnz)
	}
	cf.chunkPtr[chunks] = prev
	return cf, nil
}

// Close closes the underlying file.
func (cf *ChunkedFile) Close() error { return cf.f.Close() }

// Path returns the file path the ChunkedFile was opened from.
func (cf *ChunkedFile) Path() string { return cf.path }

// NumRows returns the dataset's row count.
func (cf *ChunkedFile) NumRows() int { return int(cf.h.rows) }

// NumFeatures returns the dataset's feature dimensionality.
func (cf *ChunkedFile) NumFeatures() int { return int(cf.h.features) }

// NNZ returns the total stored-entry count.
func (cf *ChunkedFile) NNZ() int64 { return int64(cf.h.nnz) }

// ChunkRows returns the rows-per-chunk granularity.
func (cf *ChunkedFile) ChunkRows() int { return cf.chunkRows }

// NumChunks returns the number of chunks in the fixed grid.
func (cf *ChunkedFile) NumChunks() int { return len(cf.chunkPtr) - 1 }

// ChunkOf returns the chunk index holding global row r.
func (cf *ChunkedFile) ChunkOf(r int) int { return r / cf.chunkRows }

// ChunkBounds returns chunk c's global row range [lo, hi).
func (cf *ChunkedFile) ChunkBounds(c int) (lo, hi int) {
	lo = c * cf.chunkRows
	hi = min(lo+cf.chunkRows, int(cf.h.rows))
	return
}

// ChunkNNZ returns the stored-entry count of chunk c.
func (cf *ChunkedFile) ChunkNNZ(c int) int64 { return cf.chunkPtr[c+1] - cf.chunkPtr[c] }

// ChunkBytes returns the in-memory CSR footprint of chunk c once read.
func (cf *ChunkedFile) ChunkBytes(c int) int64 {
	lo, hi := cf.ChunkBounds(c)
	rows := int64(hi - lo)
	return (rows+1)*8 + rows*4 + cf.ChunkNNZ(c)*8
}

// MaxChunkBytes returns the largest ChunkBytes over all chunks — the unit
// the out-of-core budget floor is expressed in.
func (cf *ChunkedFile) MaxChunkBytes() int64 {
	var m int64
	for c := 0; c < cf.NumChunks(); c++ {
		if b := cf.ChunkBytes(c); b > m {
			m = b
		}
	}
	return m
}

// ReadChunk reads chunk c into d, reusing d's backing arrays when they have
// capacity. The result is a self-contained Dataset whose local row i is
// global row ChunkBounds(c).lo + i.
func (cf *ChunkedFile) ReadChunk(c int, d *Dataset) error {
	if c < 0 || c >= cf.NumChunks() {
		return fmt.Errorf("dataset: chunk %d outside [0,%d)", c, cf.NumChunks())
	}
	lo, hi := cf.ChunkBounds(c)
	rows := hi - lo
	a, b := cf.chunkPtr[c], cf.chunkPtr[c+1]
	nnz := int(b - a)
	d.NumFeatures = int(cf.h.features)
	d.RowPtr = resize(d.RowPtr, rows+1)
	d.Labels = resize(d.Labels, rows)
	d.Indices = resize(d.Indices, nnz)
	d.Values = resize(d.Values, nnz)
	if err := readU64sAt(cf.f, cf.h.rowPtrOff()+int64(lo)*8, d.RowPtr); err != nil {
		return err
	}
	// Re-validate the interior pointers against the boundaries captured at
	// Open so the rebased chunk is structurally sound.
	prev := a
	for i, p := range d.RowPtr {
		if p < prev || p > b {
			return fmt.Errorf("%w: chunk %d RowPtr[%d]=%d outside [%d,%d]", ErrCorrupt, c, i, p, prev, b)
		}
		prev = p
		d.RowPtr[i] = p - a
	}
	if d.RowPtr[0] != 0 || d.RowPtr[rows] != int64(nnz) {
		return fmt.Errorf("%w: chunk %d extent [%d,%d) disagrees with boundaries", ErrCorrupt, c, d.RowPtr[0], d.RowPtr[rows])
	}
	if err := readF32sAt(cf.f, cf.h.labelsOff()+int64(lo)*4, d.Labels); err != nil {
		return err
	}
	if err := readI32sAt(cf.f, cf.h.indicesOff()+a*4, d.Indices); err != nil {
		return err
	}
	if err := readF32sAt(cf.f, cf.h.valuesOff()+a*4, d.Values); err != nil {
		return err
	}
	// Validate is row-local (sorted in-range indices, finite values), so
	// validating every chunk is exactly as strong as validating the whole
	// file — a corrupt payload fails here just like in ReadBinary.
	if err := d.Validate(); err != nil {
		return fmt.Errorf("%w: chunk %d: %v", ErrCorrupt, c, err)
	}
	return nil
}

// ReadLabels streams the full label column into a fresh array — the one
// per-row input the out-of-core trainer keeps resident (4 bytes per row).
func (cf *ChunkedFile) ReadLabels() ([]float32, error) {
	labels := make([]float32, cf.h.rows)
	const step = 1 << 18
	for at := 0; at < len(labels); at += step {
		end := min(at+step, len(labels))
		if err := readF32sAt(cf.f, cf.h.labelsOff()+int64(at)*4, labels[at:end]); err != nil {
			return nil, err
		}
	}
	return labels, nil
}

// resize returns s with length n, reallocating only when capacity is short.
func resize[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}
