package dataset

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	orig := Generate(SyntheticConfig{NumRows: 300, NumFeatures: 500, AvgNNZ: 15, Seed: 21, Zipf: 1.3})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatal("binary round trip changed the dataset")
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.bin")
	orig := Generate(SyntheticConfig{NumRows: 100, NumFeatures: 80, AvgNNZ: 8, Seed: 23})
	if err := WriteBinaryFile(path, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatal("file round trip changed the dataset")
	}
	if _, err := ReadBinaryFile(path + ".missing"); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestBinaryEmptyDataset(t *testing.T) {
	b := NewBuilder(5)
	empty := b.Build()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, empty); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 0 || back.NumFeatures != 5 {
		t.Fatalf("empty round trip: %d rows, %d features", back.NumRows(), back.NumFeatures)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOPE" + string(make([]byte, 60))),
	}
	for i, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// valid header but truncated payload
	d := Generate(SyntheticConfig{NumRows: 10, NumFeatures: 20, AvgNNZ: 4, Seed: 25})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated payload accepted")
	}
	// corrupting an index (out-of-range feature id) is caught by Validate
	raw := buf.Bytes()
	h := binaryHeader{rows: uint64(d.NumRows()), features: uint64(d.NumFeatures), nnz: uint64(d.NNZ())}
	cp := append([]byte(nil), raw...)
	cp[h.indicesOff()+1] = 0xFF // index becomes huge
	if _, err := ReadBinary(bytes.NewReader(cp)); err == nil {
		t.Fatal("corrupt index accepted")
	}
	// the pristine copy still reads fine
	if _, err := ReadBinary(bytes.NewReader(raw)); err != nil {
		t.Fatalf("baseline read failed: %v", err)
	}
}

func TestBinaryHeaderSanityCap(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(binaryMagic[:])
	buf.Write([]byte{1, 0, 0, 0})             // version
	buf.Write(bytes.Repeat([]byte{0xFF}, 24)) // absurd rows/features/nnz
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("absurd header accepted")
	}
}

func TestReadBinaryChunks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.bin")
	orig := Generate(SyntheticConfig{NumRows: 257, NumFeatures: 120, AvgNNZ: 9, Seed: 27, Zipf: 1.2})
	if err := WriteBinaryFile(path, orig); err != nil {
		t.Fatal(err)
	}
	for _, chunkRows := range []int{1, 7, 100, 257, 1000} {
		covered := 0
		err := ReadBinaryChunks(path, chunkRows, func(lo, hi int, chunk *Dataset) error {
			if lo != covered {
				t.Fatalf("chunkRows=%d: gap at %d", chunkRows, lo)
			}
			covered = hi
			if err := chunk.Validate(); err != nil {
				return err
			}
			if chunk.NumFeatures != orig.NumFeatures {
				t.Fatalf("chunk features %d", chunk.NumFeatures)
			}
			for i := 0; i < chunk.NumRows(); i++ {
				want := orig.Row(lo + i)
				got := chunk.Row(i)
				if got.Label != want.Label || !reflect.DeepEqual(got.Indices, want.Indices) {
					t.Fatalf("chunkRows=%d: row %d differs", chunkRows, lo+i)
				}
				for j := range want.Values {
					if got.Values[j] != want.Values[j] {
						t.Fatalf("chunkRows=%d: row %d value %d differs", chunkRows, lo+i, j)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("chunkRows=%d: %v", chunkRows, err)
		}
		if covered != 257 {
			t.Fatalf("chunkRows=%d: covered %d rows", chunkRows, covered)
		}
	}
}

func TestReadBinaryChunksErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.bin")
	orig := Generate(SyntheticConfig{NumRows: 20, NumFeatures: 10, AvgNNZ: 3, Seed: 29})
	if err := WriteBinaryFile(path, orig); err != nil {
		t.Fatal(err)
	}
	if err := ReadBinaryChunks(path, 0, nil); err == nil {
		t.Fatal("chunkRows=0 should fail")
	}
	if err := ReadBinaryChunks(path+".missing", 5, nil); err == nil {
		t.Fatal("missing file should fail")
	}
	// callback error propagates and stops iteration
	calls := 0
	sentinel := os.ErrClosed
	err := ReadBinaryChunks(path, 5, func(lo, hi int, chunk *Dataset) error {
		calls++
		return sentinel
	})
	if err != sentinel || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestBinarySmallerThanLibSVM(t *testing.T) {
	d := Generate(SyntheticConfig{NumRows: 500, NumFeatures: 1000, AvgNNZ: 20, Seed: 31, Zipf: 1.3})
	var bin, svm bytes.Buffer
	if err := WriteBinary(&bin, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteLibSVM(&svm, d); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= svm.Len() {
		t.Fatalf("binary %d bytes >= libsvm %d bytes", bin.Len(), svm.Len())
	}
}

func TestBinaryTypedErrors(t *testing.T) {
	d := Generate(SyntheticConfig{NumRows: 40, NumFeatures: 25, AvgNNZ: 5, Seed: 41})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"bad magic", []byte("NOPE" + string(make([]byte, 60))), ErrBadMagic},
		{"bad version", append([]byte("DIMB\x07\x00\x00\x00"), raw[8:]...), ErrBadVersion},
		{"truncated header", raw[:headerSize-2], ErrTruncated},
		{"truncated payload", raw[:len(raw)-5], ErrTruncated},
		{"trailing bytes", append(append([]byte(nil), raw...), 0xAB), ErrCorrupt},
	}
	for _, tc := range cases {
		if _, err := ReadBinary(bytes.NewReader(tc.data)); !errors.Is(err, tc.want) {
			t.Errorf("%s: err %v, want %v", tc.name, err, tc.want)
		}
	}
	// Non-monotone row pointers are structurally corrupt.
	cp := append([]byte(nil), raw...)
	for i := 0; i < 8; i++ {
		cp[headerSize+8+i] = 0xFF
	}
	if _, err := ReadBinary(bytes.NewReader(cp)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("non-monotone rowPtr: err %v, want ErrCorrupt", err)
	}
	// A lying nnz count is caught against the row-pointer chain.
	lying := append([]byte(nil), raw...)
	lying[24]++
	if _, err := ReadBinary(bytes.NewReader(lying)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("lying nnz: err %v, want ErrCorrupt", err)
	}
}

func TestChunkedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.bin")
	orig := Generate(SyntheticConfig{NumRows: 1000, NumFeatures: 200, AvgNNZ: 11, Seed: 43, Zipf: 1.2})
	if err := WriteBinaryFile(path, orig); err != nil {
		t.Fatal(err)
	}
	cf, err := OpenChunked(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if cf.NumRows() != 1000 || cf.NumFeatures() != orig.NumFeatures || cf.NNZ() != orig.NNZ() {
		t.Fatalf("shape %dx%d nnz %d", cf.NumRows(), cf.NumFeatures(), cf.NNZ())
	}
	if cf.NumChunks() != (1000+63)/64 {
		t.Fatalf("chunks %d", cf.NumChunks())
	}
	var totalNNZ, maxBytes int64
	var chunk Dataset
	for c := 0; c < cf.NumChunks(); c++ {
		lo, hi := cf.ChunkBounds(c)
		if cf.ChunkOf(lo) != c || cf.ChunkOf(hi-1) != c {
			t.Fatalf("ChunkOf disagrees with bounds of chunk %d", c)
		}
		totalNNZ += cf.ChunkNNZ(c)
		if b := cf.ChunkBytes(c); b > maxBytes {
			maxBytes = b
		}
		// Reuse one Dataset across reads to exercise buffer recycling.
		if err := cf.ReadChunk(c, &chunk); err != nil {
			t.Fatalf("chunk %d: %v", c, err)
		}
		if chunk.NumRows() != hi-lo {
			t.Fatalf("chunk %d: %d rows, want %d", c, chunk.NumRows(), hi-lo)
		}
		for i := 0; i < chunk.NumRows(); i++ {
			want, got := orig.Row(lo+i), chunk.Row(i)
			if want.Label != got.Label || !reflect.DeepEqual(want.Indices, got.Indices) || !reflect.DeepEqual(want.Values, got.Values) {
				t.Fatalf("row %d differs", lo+i)
			}
		}
	}
	if totalNNZ != orig.NNZ() {
		t.Fatalf("chunk nnz sum %d, want %d", totalNNZ, orig.NNZ())
	}
	if cf.MaxChunkBytes() != maxBytes {
		t.Fatalf("MaxChunkBytes %d, want %d", cf.MaxChunkBytes(), maxBytes)
	}
	labels, err := cf.ReadLabels()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(labels, orig.Labels) {
		t.Fatal("ReadLabels differs from original labels")
	}
	if err := cf.ReadChunk(cf.NumChunks(), &chunk); err == nil {
		t.Fatal("out-of-range chunk accepted")
	}
}

func TestChunkedFileRejectsDamage(t *testing.T) {
	dir := t.TempDir()
	orig := Generate(SyntheticConfig{NumRows: 64, NumFeatures: 40, AvgNNZ: 6, Seed: 47})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, orig); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	write := func(name string, b []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := OpenChunked(write("trunc.bin", raw[:len(raw)-3]), 16); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated file: %v, want ErrTruncated", err)
	}
	if _, err := OpenChunked(write("trail.bin", append(append([]byte(nil), raw...), 1, 2, 3)), 16); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing bytes: %v, want ErrCorrupt", err)
	}
	bad := append([]byte(nil), raw...)
	for i := 0; i < 8; i++ {
		bad[headerSize+16+i] = 0xFE
	}
	if _, err := OpenChunked(write("ptr.bin", bad), 16); !errors.Is(err, ErrCorrupt) {
		t.Errorf("non-monotone rowPtr: %v, want ErrCorrupt", err)
	}
	// Payload corruption (feature index out of range) surfaces at ReadChunk.
	h := binaryHeader{rows: uint64(orig.NumRows()), features: uint64(orig.NumFeatures), nnz: uint64(orig.NNZ())}
	idxBad := append([]byte(nil), raw...)
	idxBad[h.indicesOff()+2] = 0xFF
	cf, err := OpenChunked(write("idx.bin", idxBad), 16)
	if err != nil {
		t.Fatalf("structurally fine file rejected at open: %v", err)
	}
	defer cf.Close()
	var chunk Dataset
	if err := cf.ReadChunk(0, &chunk); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt index: %v, want ErrCorrupt", err)
	}
}
