package dataset

import (
	"math"
	"math/rand"
	"sort"
)

// SyntheticConfig describes a synthetic sparse classification or regression
// dataset. The experiment harness instantiates shapes that match the paper's
// datasets (Table 2): RCV1 (47K features, ~76 nnz), Synthesis (100K, ~100),
// Gender (330K, ~107) and Synthesis-2 (1K features, App. A.3) — with row
// counts scaled to a single machine.
type SyntheticConfig struct {
	NumRows     int
	NumFeatures int
	// AvgNNZ is the mean number of nonzero features per row.
	AvgNNZ int
	// Regression selects continuous labels (y = score + noise) instead of
	// binary {0,1} labels drawn from a logistic model.
	Regression bool
	// NoiseStd is the label-noise standard deviation.
	NoiseStd float64
	// Zipf skews feature popularity so low-index features occur most often,
	// mimicking one-hot encoded categorical data. Values around 1.3–1.7 are
	// realistic; 0 disables skew (uniform feature choice).
	Zipf float64
	// Seed makes generation deterministic.
	Seed int64
}

// RCV1Like returns a config shaped like the paper's RCV1 dataset, with the
// row count chosen by the caller.
func RCV1Like(rows int, seed int64) SyntheticConfig {
	return SyntheticConfig{NumRows: rows, NumFeatures: 47_000, AvgNNZ: 76, NoiseStd: 0.5, Zipf: 1.4, Seed: seed}
}

// SynthesisLike returns a config shaped like the paper's Synthesis dataset.
func SynthesisLike(rows int, seed int64) SyntheticConfig {
	return SyntheticConfig{NumRows: rows, NumFeatures: 100_000, AvgNNZ: 100, NoiseStd: 0.5, Zipf: 1.4, Seed: seed}
}

// GenderLike returns a config shaped like the paper's Gender dataset.
func GenderLike(rows int, seed int64) SyntheticConfig {
	return SyntheticConfig{NumRows: rows, NumFeatures: 330_000, AvgNNZ: 107, NoiseStd: 0.5, Zipf: 1.4, Seed: seed}
}

// Synthesis2Like returns a config shaped like the paper's low-dimensional
// Synthesis-2 dataset (App. A.3): 1000 features, comparatively dense rows.
func Synthesis2Like(rows int, seed int64) SyntheticConfig {
	return SyntheticConfig{NumRows: rows, NumFeatures: 1000, AvgNNZ: 200, NoiseStd: 0.5, Zipf: 0.8, Seed: seed}
}

// strongFraction is the probability that a nonzero entry lands on a
// signal-bearing "strong" feature.
const strongFraction = 0.35

// numStrong picks how many strong features a dataset has: enough that
// feature-prefix truncation (Table 5) removes a meaningful share of them,
// few enough that each appears often and is learnable at laptop row counts.
func numStrong(numFeatures int) int {
	n := numFeatures / 1000
	if n < 8 {
		n = 8
	}
	if n > numFeatures {
		n = numFeatures
	}
	return n
}

// Generate builds the dataset. Labels come from a sparse ground-truth
// linear model whose signal-bearing features are spread uniformly over the
// whole index range AND appear frequently: truncating features
// (SelectFeatures) therefore removes real, learnable signal — reproducing
// the paper's Table 5 behaviour where accuracy improves with
// dimensionality. The remaining "background" nonzeros follow a Zipf
// popularity law mimicking one-hot encoded categorical data.
func Generate(cfg SyntheticConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ns := numStrong(cfg.NumFeatures)
	// Strong features at evenly spaced indices across [0, M).
	strong := make([]int32, ns)
	weights := make(map[int32]float64, ns)
	for i := range strong {
		f := int32(int64(i) * int64(cfg.NumFeatures) / int64(ns))
		strong[i] = f
		weights[f] = rng.NormFloat64() * 2
	}

	var zipf *rand.Zipf
	if cfg.Zipf > 1 {
		zipf = rand.NewZipf(rng, cfg.Zipf, 1, uint64(cfg.NumFeatures-1))
	}

	b := NewBuilder(cfg.NumFeatures)
	seen := make(map[int32]struct{}, cfg.AvgNNZ*2)
	idxBuf := make([]int32, 0, cfg.AvgNNZ*2)
	valBuf := make([]float32, 0, cfg.AvgNNZ*2)
	norm := math.Sqrt(strongFraction*float64(cfg.AvgNNZ)) + 1
	for i := 0; i < cfg.NumRows; i++ {
		nnz := cfg.AvgNNZ/2 + rng.Intn(cfg.AvgNNZ+1)
		if nnz > cfg.NumFeatures {
			nnz = cfg.NumFeatures
		}
		clear(seen)
		idxBuf = idxBuf[:0]
		valBuf = valBuf[:0]
		for len(seen) < nnz {
			var f int32
			switch {
			case rng.Float64() < strongFraction:
				f = strong[rng.Intn(ns)]
			case zipf != nil:
				f = int32(zipf.Uint64())
			default:
				f = int32(rng.Intn(cfg.NumFeatures))
			}
			if _, dup := seen[f]; dup {
				continue
			}
			seen[f] = struct{}{}
			idxBuf = append(idxBuf, f)
		}
		sort.Slice(idxBuf, func(a, b int) bool { return idxBuf[a] < idxBuf[b] })
		score := 0.0
		for _, f := range idxBuf {
			v := float32(math.Abs(rng.NormFloat64()) + 0.1)
			valBuf = append(valBuf, v)
			if w, ok := weights[f]; ok {
				score += w * float64(v)
			}
		}
		// Normalize by the expected strong-feature count so the logit
		// stays O(1) regardless of sparsity.
		score /= norm
		score += rng.NormFloat64() * cfg.NoiseStd

		var label float32
		if cfg.Regression {
			label = float32(score)
		} else if 1/(1+math.Exp(-score)) > rng.Float64() {
			label = 1
		}
		if err := b.Add(idxBuf, valBuf, label); err != nil {
			panic(err) // indices are sorted and deduplicated by construction
		}
	}
	return b.Build()
}

// GenerateTrainTest generates one dataset and splits it 90/10, the paper's
// evaluation protocol (§7.1).
func GenerateTrainTest(cfg SyntheticConfig) (train, test *Dataset) {
	return Generate(cfg).Split(0.9)
}
