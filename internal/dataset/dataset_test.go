package dataset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mustBuild(t *testing.T, nf int, rows [][2][]float32, labels []float32) *Dataset {
	t.Helper()
	b := NewBuilder(nf)
	for i, r := range rows {
		idx := make([]int32, len(r[0]))
		for j, v := range r[0] {
			idx[j] = int32(v)
		}
		if err := b.Add(idx, r[1], labels[i]); err != nil {
			t.Fatalf("Add row %d: %v", i, err)
		}
	}
	return b.Build()
}

func TestBuilderRoundTrip(t *testing.T) {
	d := mustBuild(t, 10, [][2][]float32{
		{{0, 3, 7}, {1, 2, 3}},
		{{}, {}},
		{{9}, {-4.5}},
	}, []float32{1, 0, 1})

	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 3 {
		t.Fatalf("NumRows = %d, want 3", d.NumRows())
	}
	if d.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4", d.NNZ())
	}
	r0 := d.Row(0)
	if got := r0.Feature(3); got != 2 {
		t.Errorf("row0 feature 3 = %v, want 2", got)
	}
	if got := r0.Feature(4); got != 0 {
		t.Errorf("row0 feature 4 = %v, want 0", got)
	}
	if r0.NNZ() != 3 {
		t.Errorf("row0 NNZ = %d, want 3", r0.NNZ())
	}
	if d.Row(1).NNZ() != 0 {
		t.Errorf("row1 should be empty")
	}
	if got := d.Row(2).Feature(9); got != -4.5 {
		t.Errorf("row2 feature 9 = %v, want -4.5", got)
	}
}

func TestBuilderRejectsUnsortedIndices(t *testing.T) {
	b := NewBuilder(10)
	if err := b.Add([]int32{3, 1}, []float32{1, 1}, 0); err == nil {
		t.Fatal("expected error for unsorted indices")
	}
	if err := b.Add([]int32{2, 2}, []float32{1, 1}, 0); err == nil {
		t.Fatal("expected error for duplicate indices")
	}
}

func TestBuilderDropsZeros(t *testing.T) {
	b := NewBuilder(5)
	if err := b.Add([]int32{0, 1, 2}, []float32{1, 0, 2}, 1); err != nil {
		t.Fatal(err)
	}
	d := b.Build()
	if d.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2 (zero dropped)", d.NNZ())
	}
	if d.Row(0).Feature(1) != 0 {
		t.Fatal("zero-valued entry should read back as 0")
	}
}

func TestFromDenseAndToDense(t *testing.T) {
	rows := [][]float32{
		{1, 0, 2},
		{0, 0, 0},
		{0, 3, 0},
	}
	labels := []float32{1, 0, 1}
	d, err := FromDense(rows, labels)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	back := d.ToDense()
	if !reflect.DeepEqual(rows, back) {
		t.Fatalf("dense round trip mismatch: %v vs %v", rows, back)
	}
}

func TestFromDenseLengthMismatch(t *testing.T) {
	if _, err := FromDense([][]float32{{1}}, []float32{1, 2}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestInferredNumFeatures(t *testing.T) {
	b := NewBuilder(0)
	if err := b.Add([]int32{5, 17}, []float32{1, 1}, 0); err != nil {
		t.Fatal(err)
	}
	d := b.Build()
	if d.NumFeatures != 18 {
		t.Fatalf("inferred NumFeatures = %d, want 18", d.NumFeatures)
	}
}

func TestSelectFeatures(t *testing.T) {
	d := mustBuild(t, 100, [][2][]float32{
		{{1, 50, 99}, {1, 2, 3}},
		{{0, 10}, {4, 5}},
	}, []float32{1, 0})
	s := d.SelectFeatures(11)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumFeatures != 11 {
		t.Fatalf("NumFeatures = %d, want 11", s.NumFeatures)
	}
	if s.Row(0).NNZ() != 1 || s.Row(0).Feature(1) != 1 {
		t.Errorf("row0 should keep only feature 1")
	}
	if s.Row(1).NNZ() != 2 {
		t.Errorf("row1 should keep both features")
	}
	// limit beyond range is a no-op copy
	full := d.SelectFeatures(1000)
	if full.NumFeatures != 100 || full.NNZ() != d.NNZ() {
		t.Errorf("over-limit select should copy everything")
	}
}

func TestSubsetAndSplit(t *testing.T) {
	b := NewBuilder(3)
	for i := 0; i < 10; i++ {
		b.AddDense([]float32{float32(i), 0, 1}, float32(i))
	}
	d := b.Build()
	sub := d.Subset(2, 5)
	if sub.NumRows() != 3 {
		t.Fatalf("subset rows = %d, want 3", sub.NumRows())
	}
	if sub.Labels[0] != 2 || sub.Labels[2] != 4 {
		t.Errorf("subset picked wrong rows: %v", sub.Labels)
	}
	train, test := d.Split(0.9)
	if train.NumRows() != 9 || test.NumRows() != 1 {
		t.Fatalf("split sizes %d/%d, want 9/1", train.NumRows(), test.NumRows())
	}
	if test.Labels[0] != 9 {
		t.Errorf("test row should be the last one")
	}
}

func TestSubsetPanicsOnBadRange(t *testing.T) {
	d := mustBuild(t, 3, [][2][]float32{{{0}, {1}}}, []float32{1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Subset(0, 2)
}

func TestPartitionRows(t *testing.T) {
	b := NewBuilder(2)
	for i := 0; i < 11; i++ {
		b.AddDense([]float32{float32(i + 1), 1}, float32(i))
	}
	d := b.Build()
	shards := PartitionRows(d, 4)
	if len(shards) != 4 {
		t.Fatalf("got %d shards, want 4", len(shards))
	}
	total := 0
	next := float32(0)
	for i, s := range shards {
		total += s.NumRows()
		lo, hi := ShardRange(11, 4, i)
		if s.NumRows() != hi-lo {
			t.Errorf("shard %d rows %d, ShardRange says %d", i, s.NumRows(), hi-lo)
		}
		for _, l := range s.Labels {
			if l != next {
				t.Fatalf("shard %d out of order: label %v, want %v", i, l, next)
			}
			next++
		}
	}
	if total != 11 {
		t.Fatalf("shards cover %d rows, want 11", total)
	}
	// sizes differ by at most one
	for _, s := range shards {
		if s.NumRows() < 11/4 || s.NumRows() > 11/4+1 {
			t.Errorf("unbalanced shard size %d", s.NumRows())
		}
	}
}

func TestPartitionMoreWorkersThanRows(t *testing.T) {
	d := mustBuild(t, 2, [][2][]float32{{{0}, {1}}, {{1}, {2}}}, []float32{0, 1})
	shards := PartitionRows(d, 5)
	if len(shards) != 5 {
		t.Fatalf("got %d shards, want 5", len(shards))
	}
	n := 0
	for _, s := range shards {
		n += s.NumRows()
	}
	if n != 2 {
		t.Fatalf("shards cover %d rows, want 2", n)
	}
}

func TestShardRangeCoversExactly(t *testing.T) {
	check := func(numRows, w int) bool {
		if numRows < 0 || w <= 0 || numRows > 10000 || w > 100 {
			return true // skip out-of-scope inputs
		}
		prev := 0
		for i := 0; i < w; i++ {
			lo, hi := ShardRange(numRows, w, i)
			if lo != prev || hi < lo {
				return false
			}
			prev = hi
		}
		return prev == numRows
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(func(n, w uint16) bool {
		return check(int(n)%10001, int(w)%100+1)
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := SyntheticConfig{NumRows: 500, NumFeatures: 5000, AvgNNZ: 40, NoiseStd: 0.3, Zipf: 1.4, Seed: 7}
	d := Generate(cfg)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 500 || d.NumFeatures != 5000 {
		t.Fatalf("shape %dx%d", d.NumRows(), d.NumFeatures)
	}
	avg := d.AvgNNZ()
	if avg < 20 || avg > 70 {
		t.Errorf("avg nnz %.1f far from configured 40", avg)
	}
	pos := 0
	for _, l := range d.Labels {
		if l != 0 && l != 1 {
			t.Fatalf("binary label %v out of {0,1}", l)
		}
		if l == 1 {
			pos++
		}
	}
	if pos < 100 || pos > 400 {
		t.Errorf("label balance suspicious: %d/500 positive", pos)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := SyntheticConfig{NumRows: 100, NumFeatures: 1000, AvgNNZ: 20, Seed: 42, Zipf: 1.3}
	a, b := Generate(cfg), Generate(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed should generate identical datasets")
	}
	cfg.Seed = 43
	c := Generate(cfg)
	if reflect.DeepEqual(a.Values, c.Values) {
		t.Fatal("different seeds should differ")
	}
}

func TestGenerateRegressionLabels(t *testing.T) {
	cfg := SyntheticConfig{NumRows: 200, NumFeatures: 100, AvgNNZ: 10, Regression: true, NoiseStd: 0.1, Seed: 3}
	d := Generate(cfg)
	nonBinary := false
	for _, l := range d.Labels {
		if l != 0 && l != 1 {
			nonBinary = true
		}
	}
	if !nonBinary {
		t.Fatal("regression labels should be continuous")
	}
}

func TestGenerateTrainTest(t *testing.T) {
	train, test := GenerateTrainTest(SyntheticConfig{NumRows: 100, NumFeatures: 50, AvgNNZ: 5, Seed: 1})
	if train.NumRows() != 90 || test.NumRows() != 10 {
		t.Fatalf("split %d/%d, want 90/10", train.NumRows(), test.NumRows())
	}
}

func TestPaperShapePresets(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  SyntheticConfig
		m    int
	}{
		{"rcv1", RCV1Like(10, 1), 47_000},
		{"synthesis", SynthesisLike(10, 1), 100_000},
		{"gender", GenderLike(10, 1), 330_000},
		{"synthesis2", Synthesis2Like(10, 1), 1000},
	} {
		if tc.cfg.NumFeatures != tc.m {
			t.Errorf("%s: features %d, want %d", tc.name, tc.cfg.NumFeatures, tc.m)
		}
		d := Generate(tc.cfg)
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

func TestDatasetSizeBytes(t *testing.T) {
	d := mustBuild(t, 3, [][2][]float32{{{0, 1}, {1, 2}}}, []float32{1})
	// rowptr 2*8 + idx 2*4 + val 2*4 + labels 1*4
	if got := d.SizeBytes(); got != 16+8+8+4 {
		t.Fatalf("SizeBytes = %d", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := mustBuild(t, 5, [][2][]float32{{{0, 2}, {1, 2}}}, []float32{1})
	d.Indices[1] = 0 // duplicate of indices[0] => not strictly increasing
	if err := d.Validate(); err == nil {
		t.Fatal("expected validation error for unsorted indices")
	}
	d2 := mustBuild(t, 5, [][2][]float32{{{0}, {1}}}, []float32{1})
	d2.Indices[0] = 99
	if err := d2.Validate(); err == nil {
		t.Fatal("expected validation error for out-of-range index")
	}
	d3 := mustBuild(t, 5, [][2][]float32{{{0}, {1}}}, []float32{1})
	d3.Values[0] = float32(nan())
	if err := d3.Validate(); err == nil {
		t.Fatal("expected validation error for NaN value")
	}
}

func nan() float64 { return float64(0) / zero }

var zero float64 // defeat constant folding
