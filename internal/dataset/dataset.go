// Package dataset provides sparse and dense training-data containers for
// DimBoost, along with LibSVM I/O, row-wise partitioning for distributed
// workers, and synthetic high-dimensional generators used by the experiment
// harness.
//
// The primary container is Dataset, a compressed sparse row (CSR) matrix of
// float32 feature values plus a float32 label per row. High-dimensional
// datasets in the paper (RCV1, Synthesis, Gender) are extremely sparse
// (76–107 nonzeros out of 47K–330K features), so the CSR layout is the
// canonical representation; dense data is stored as rows whose nonzero
// entries happen to cover every column.
package dataset

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Instance is a single sparse training example: parallel Indices/Values
// arrays sorted by feature index, plus a label. Instances borrow their
// backing arrays from the Dataset they were taken from; callers must not
// mutate them.
type Instance struct {
	Indices []int32
	Values  []float32
	Label   float32
}

// Feature returns the value of feature f, or 0 if f is not present.
// Indices are sorted, so lookup is a binary search.
func (in Instance) Feature(f int) float32 {
	i := sort.Search(len(in.Indices), func(i int) bool { return in.Indices[i] >= int32(f) })
	if i < len(in.Indices) && in.Indices[i] == int32(f) {
		return in.Values[i]
	}
	return 0
}

// NNZ returns the number of stored (nonzero) entries.
func (in Instance) NNZ() int { return len(in.Indices) }

// Dataset is a CSR sparse matrix with labels. Row i occupies
// Indices[RowPtr[i]:RowPtr[i+1]] and Values[RowPtr[i]:RowPtr[i+1]];
// indices within a row are strictly increasing.
type Dataset struct {
	RowPtr      []int64
	Indices     []int32
	Values      []float32
	Labels      []float32
	NumFeatures int
}

// NumRows returns the number of instances.
func (d *Dataset) NumRows() int { return len(d.Labels) }

// NNZ returns the total number of stored entries.
func (d *Dataset) NNZ() int64 { return int64(len(d.Indices)) }

// Row returns the i-th instance. The returned Instance aliases the dataset's
// storage.
func (d *Dataset) Row(i int) Instance {
	lo, hi := d.RowPtr[i], d.RowPtr[i+1]
	return Instance{Indices: d.Indices[lo:hi], Values: d.Values[lo:hi], Label: d.Labels[i]}
}

// AvgNNZ returns the average number of nonzeros per row (the paper's z).
func (d *Dataset) AvgNNZ() float64 {
	if d.NumRows() == 0 {
		return 0
	}
	return float64(d.NNZ()) / float64(d.NumRows())
}

// SizeBytes estimates the in-memory footprint of the CSR arrays.
func (d *Dataset) SizeBytes() int64 {
	return int64(len(d.RowPtr))*8 + int64(len(d.Indices))*4 + int64(len(d.Values))*4 + int64(len(d.Labels))*4
}

// Validate checks structural invariants: monotone row pointers, sorted
// strictly-increasing indices within each row, indices within
// [0, NumFeatures), and finite values.
func (d *Dataset) Validate() error {
	n := d.NumRows()
	if len(d.RowPtr) != n+1 {
		return fmt.Errorf("dataset: RowPtr length %d, want %d", len(d.RowPtr), n+1)
	}
	if d.RowPtr[0] != 0 {
		return errors.New("dataset: RowPtr[0] != 0")
	}
	if d.RowPtr[n] != int64(len(d.Indices)) {
		return fmt.Errorf("dataset: RowPtr[n]=%d, want %d", d.RowPtr[n], len(d.Indices))
	}
	if len(d.Indices) != len(d.Values) {
		return fmt.Errorf("dataset: %d indices vs %d values", len(d.Indices), len(d.Values))
	}
	for i := 0; i < n; i++ {
		lo, hi := d.RowPtr[i], d.RowPtr[i+1]
		if lo > hi {
			return fmt.Errorf("dataset: row %d has negative extent", i)
		}
		prev := int32(-1)
		for j := lo; j < hi; j++ {
			idx := d.Indices[j]
			if idx <= prev {
				return fmt.Errorf("dataset: row %d indices not strictly increasing at %d", i, j)
			}
			if idx < 0 || int(idx) >= d.NumFeatures {
				return fmt.Errorf("dataset: row %d feature %d out of range [0,%d)", i, idx, d.NumFeatures)
			}
			if v := d.Values[j]; math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return fmt.Errorf("dataset: row %d value at feature %d not finite", i, idx)
			}
			prev = idx
		}
	}
	return nil
}

// Builder accumulates rows and produces a Dataset. It is not safe for
// concurrent use.
type Builder struct {
	rowPtr      []int64
	indices     []int32
	values      []float32
	labels      []float32
	numFeatures int
}

// NewBuilder returns a Builder for datasets with the given feature count.
// If numFeatures is 0 the dimensionality is inferred as maxIndex+1 at Build.
func NewBuilder(numFeatures int) *Builder {
	return &Builder{rowPtr: []int64{0}, numFeatures: numFeatures}
}

// Add appends one sparse row. Indices must be strictly increasing; zero
// values are dropped.
func (b *Builder) Add(indices []int32, values []float32, label float32) error {
	if len(indices) != len(values) {
		return fmt.Errorf("dataset: %d indices vs %d values", len(indices), len(values))
	}
	prev := int32(-1)
	for i, idx := range indices {
		if idx <= prev {
			return fmt.Errorf("dataset: indices not strictly increasing at position %d", i)
		}
		prev = idx
		if values[i] == 0 {
			continue
		}
		b.indices = append(b.indices, idx)
		b.values = append(b.values, values[i])
		if b.numFeatures == 0 && int(idx) >= b.numFeatures {
			// inferred below at Build; track nothing here
		}
	}
	b.rowPtr = append(b.rowPtr, int64(len(b.indices)))
	b.labels = append(b.labels, label)
	return nil
}

// AddDense appends one dense row, dropping zeros.
func (b *Builder) AddDense(row []float32, label float32) {
	for i, v := range row {
		if v != 0 {
			b.indices = append(b.indices, int32(i))
			b.values = append(b.values, v)
		}
	}
	b.rowPtr = append(b.rowPtr, int64(len(b.indices)))
	b.labels = append(b.labels, label)
}

// Build finalizes the dataset. The Builder must not be reused afterwards.
func (b *Builder) Build() *Dataset {
	nf := b.numFeatures
	if nf == 0 {
		for _, idx := range b.indices {
			if int(idx)+1 > nf {
				nf = int(idx) + 1
			}
		}
	}
	return &Dataset{
		RowPtr:      b.rowPtr,
		Indices:     b.indices,
		Values:      b.values,
		Labels:      b.labels,
		NumFeatures: nf,
	}
}

// FromDense converts a dense matrix with labels into a Dataset.
func FromDense(rows [][]float32, labels []float32) (*Dataset, error) {
	if len(rows) != len(labels) {
		return nil, fmt.Errorf("dataset: %d rows vs %d labels", len(rows), len(labels))
	}
	nf := 0
	for _, r := range rows {
		if len(r) > nf {
			nf = len(r)
		}
	}
	b := NewBuilder(nf)
	for i, r := range rows {
		b.AddDense(r, labels[i])
	}
	return b.Build(), nil
}

// ToDense materializes the dataset as a dense matrix. Intended for tests and
// the PCA substrate on reduced data; it allocates NumRows×NumFeatures floats.
func (d *Dataset) ToDense() [][]float32 {
	out := make([][]float32, d.NumRows())
	for i := range out {
		row := make([]float32, d.NumFeatures)
		in := d.Row(i)
		for j, idx := range in.Indices {
			row[idx] = in.Values[j]
		}
		out[i] = row
	}
	return out
}

// SelectFeatures returns a copy of the dataset restricted to features
// [0, limit), re-using the paper's "Gender-10K = first 10K features"
// protocol (§7.3.4). Entries with index >= limit are dropped.
func (d *Dataset) SelectFeatures(limit int) *Dataset {
	if limit >= d.NumFeatures {
		limit = d.NumFeatures
	}
	b := NewBuilder(limit)
	for i := 0; i < d.NumRows(); i++ {
		in := d.Row(i)
		cut := sort.Search(len(in.Indices), func(k int) bool { return in.Indices[k] >= int32(limit) })
		// Indices within a row are sorted, so the prefix is exactly the kept set.
		b.indices = append(b.indices, in.Indices[:cut]...)
		b.values = append(b.values, in.Values[:cut]...)
		b.rowPtr = append(b.rowPtr, int64(len(b.indices)))
		b.labels = append(b.labels, in.Label)
	}
	return b.Build()
}

// Subset returns a copy containing rows [lo, hi).
func (d *Dataset) Subset(lo, hi int) *Dataset {
	if lo < 0 || hi > d.NumRows() || lo > hi {
		panic(fmt.Sprintf("dataset: bad subset [%d,%d) of %d rows", lo, hi, d.NumRows()))
	}
	b := NewBuilder(d.NumFeatures)
	for i := lo; i < hi; i++ {
		in := d.Row(i)
		b.indices = append(b.indices, in.Indices...)
		b.values = append(b.values, in.Values...)
		b.rowPtr = append(b.rowPtr, int64(len(b.indices)))
		b.labels = append(b.labels, in.Label)
	}
	return b.Build()
}

// Gather returns a copy containing the given rows in order (rows may repeat
// — bootstrap sampling uses that).
func (d *Dataset) Gather(rows []int32) *Dataset {
	b := NewBuilder(d.NumFeatures)
	for _, r := range rows {
		in := d.Row(int(r))
		b.indices = append(b.indices, in.Indices...)
		b.values = append(b.values, in.Values...)
		b.rowPtr = append(b.rowPtr, int64(len(b.indices)))
		b.labels = append(b.labels, in.Label)
	}
	return b.Build()
}

// Split partitions the dataset into train/test by the given train fraction,
// using rows in order (the paper splits 90%/10%).
func (d *Dataset) Split(trainFrac float64) (train, test *Dataset) {
	cut := int(float64(d.NumRows()) * trainFrac)
	if cut < 0 {
		cut = 0
	}
	if cut > d.NumRows() {
		cut = d.NumRows()
	}
	return d.Subset(0, cut), d.Subset(cut, d.NumRows())
}
