package dataset

import (
	"strings"
	"testing"
)

// FuzzLibSVMParse asserts the parser's crash-safety contract: arbitrary
// input — malformed pairs, huge or negative indices, non-finite numbers,
// binary garbage — must either parse into a dataset that passes Validate or
// return an error. It must never panic, and a successful parse must
// round-trip through WriteLibSVM.
func FuzzLibSVMParse(f *testing.F) {
	seeds := []string{
		"",
		"1 1:0.5 3:1.25\n0 2:-1\n",
		"# comment\n\n-1 1:1e-3\n",
		"0.5 7:0.25 7:0.25\n",           // duplicate index → error
		"1 3:1 2:1\n",                   // decreasing indices → error
		"1 0:1\n",                       // 0 is below the 1-based minimum
		"1 -5:1\n",                      // negative index
		"1 99999999999999999999:1\n",    // index overflows int
		"1 4294967296:1\n",              // index-1 overflows int32
		"1 1:nan 2:inf\n",               // non-finite values
		"nan 1:1\n",                     // non-finite label
		"1e400 1:1\n",                   // label out of float range
		"1 1:1e400\n",                   // value out of float32 range
		"1 1\n",                         // pair without colon
		"abc 1:1\n",                     // unparsable label
		"1 :5\n1 3:\n",                  // empty index / empty value
		"1 " + strings.Repeat("x", 300), // long garbage token
		"0 2147483647:1\n",              // max feature id that still fits
		"\x00\xff\xfe 1:1\n",            // binary noise
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadLibSVM(strings.NewReader(string(data)), 0)
		if err != nil {
			return
		}
		if verr := d.Validate(); verr != nil {
			t.Fatalf("parse accepted input but Validate failed: %v\ninput: %q", verr, data)
		}
		var sb strings.Builder
		if werr := WriteLibSVM(&sb, d); werr != nil {
			t.Fatalf("WriteLibSVM on parsed dataset: %v", werr)
		}
		d2, rerr := ReadLibSVM(strings.NewReader(sb.String()), d.NumFeatures)
		if rerr != nil {
			t.Fatalf("re-parse of written output failed: %v\noutput: %q", rerr, sb.String())
		}
		if d2.NumRows() != d.NumRows() || d2.NNZ() != d.NNZ() {
			t.Fatalf("round trip changed shape: %dx%d -> %dx%d",
				d.NumRows(), d.NNZ(), d2.NumRows(), d2.NNZ())
		}
	})
}
