package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzLibSVMParse asserts the parser's crash-safety contract: arbitrary
// input — malformed pairs, huge or negative indices, non-finite numbers,
// binary garbage — must either parse into a dataset that passes Validate or
// return an error. It must never panic, and a successful parse must
// round-trip through WriteLibSVM.
func FuzzLibSVMParse(f *testing.F) {
	seeds := []string{
		"",
		"1 1:0.5 3:1.25\n0 2:-1\n",
		"# comment\n\n-1 1:1e-3\n",
		"0.5 7:0.25 7:0.25\n",           // duplicate index → error
		"1 3:1 2:1\n",                   // decreasing indices → error
		"1 0:1\n",                       // 0 is below the 1-based minimum
		"1 -5:1\n",                      // negative index
		"1 99999999999999999999:1\n",    // index overflows int
		"1 4294967296:1\n",              // index-1 overflows int32
		"1 1:nan 2:inf\n",               // non-finite values
		"nan 1:1\n",                     // non-finite label
		"1e400 1:1\n",                   // label out of float range
		"1 1:1e400\n",                   // value out of float32 range
		"1 1\n",                         // pair without colon
		"abc 1:1\n",                     // unparsable label
		"1 :5\n1 3:\n",                  // empty index / empty value
		"1 " + strings.Repeat("x", 300), // long garbage token
		"0 2147483647:1\n",              // max feature id that still fits
		"\x00\xff\xfe 1:1\n",            // binary noise
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadLibSVM(strings.NewReader(string(data)), 0)
		if err != nil {
			return
		}
		if verr := d.Validate(); verr != nil {
			t.Fatalf("parse accepted input but Validate failed: %v\ninput: %q", verr, data)
		}
		var sb strings.Builder
		if werr := WriteLibSVM(&sb, d); werr != nil {
			t.Fatalf("WriteLibSVM on parsed dataset: %v", werr)
		}
		d2, rerr := ReadLibSVM(strings.NewReader(sb.String()), d.NumFeatures)
		if rerr != nil {
			t.Fatalf("re-parse of written output failed: %v\noutput: %q", rerr, sb.String())
		}
		if d2.NumRows() != d.NumRows() || d2.NNZ() != d.NNZ() {
			t.Fatalf("round trip changed shape: %dx%d -> %dx%d",
				d.NumRows(), d.NNZ(), d2.NumRows(), d2.NNZ())
		}
	})
}

// FuzzBinaryRead asserts the binary reader's crash-safety contract over
// hostile bytes: truncated files, corrupt headers, lying counts, and
// non-monotone row pointers must all return a typed error — never panic and
// never allocate anywhere near the promised (possibly absurd) payload size.
// A successful parse must pass Validate, and the chunked reader must agree
// with the full reader on the same bytes.
func FuzzBinaryRead(f *testing.F) {
	seed := func(d *Dataset) []byte {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, d); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	valid := seed(Generate(SyntheticConfig{NumRows: 12, NumFeatures: 30, AvgNNZ: 4, Seed: 3, Zipf: 1.2}))
	empty := seed(NewBuilder(5).Build())
	f.Add(valid)
	f.Add(empty)
	f.Add(valid[:len(valid)/2])    // truncated payload
	f.Add(valid[:headerSize])      // header only
	f.Add(valid[:headerSize-3])    // truncated header
	f.Add([]byte("DIMB"))          // magic only
	f.Add([]byte("NOPE nonsense")) // bad magic
	f.Add(bytes.Repeat(valid, 2))  // trailing bytes
	lying := append([]byte(nil), valid...)
	lying[24] = 0xEE // nnz count no longer matches the row pointers
	f.Add(lying)
	badPtr := append([]byte(nil), valid...)
	badPtr[headerSize+8] = 0xFF // second row pointer jumps past nnz
	f.Add(badPtr)

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadBinary(bytes.NewReader(data))
		if err == nil {
			if verr := d.Validate(); verr != nil {
				t.Fatalf("ReadBinary accepted input but Validate failed: %v", verr)
			}
		}
		// The chunked reader must make the same accept/reject decision and
		// reassemble the same rows.
		path := filepath.Join(t.TempDir(), "fuzz.bin")
		if werr := os.WriteFile(path, data, 0o644); werr != nil {
			t.Fatal(werr)
		}
		rows := 0
		cerr := ReadBinaryChunks(path, 5, func(lo, hi int, chunk *Dataset) error {
			if verr := chunk.Validate(); verr != nil {
				t.Fatalf("chunk [%d,%d) invalid: %v", lo, hi, verr)
			}
			for i := 0; d != nil && i < chunk.NumRows(); i++ {
				want, got := d.Row(lo+i), chunk.Row(i)
				if want.Label != got.Label || len(want.Indices) != len(got.Indices) {
					t.Fatalf("row %d differs between full and chunked read", lo+i)
				}
			}
			rows = hi
			return nil
		})
		if (err == nil) != (cerr == nil) {
			t.Fatalf("full read err=%v, chunked read err=%v", err, cerr)
		}
		if err == nil && rows != d.NumRows() {
			t.Fatalf("chunked read covered %d of %d rows", rows, d.NumRows())
		}
	})
}
