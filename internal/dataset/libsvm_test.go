package dataset

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestReadLibSVMBasic(t *testing.T) {
	in := `1 1:0.5 3:2
# comment line

0 2:-1.25
1
`
	d, err := ReadLibSVM(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", d.NumRows())
	}
	if d.NumFeatures != 3 {
		t.Fatalf("features = %d, want 3 (inferred)", d.NumFeatures)
	}
	if got := d.Row(0).Feature(0); got != 0.5 {
		t.Errorf("row0 f0 = %v, want 0.5 (1-based conversion)", got)
	}
	if got := d.Row(0).Feature(2); got != 2 {
		t.Errorf("row0 f2 = %v, want 2", got)
	}
	if got := d.Row(1).Feature(1); got != -1.25 {
		t.Errorf("row1 f1 = %v", got)
	}
	if d.Row(2).NNZ() != 0 {
		t.Errorf("label-only row should have no features")
	}
	if d.Labels[0] != 1 || d.Labels[1] != 0 || d.Labels[2] != 1 {
		t.Errorf("labels = %v", d.Labels)
	}
}

func TestReadLibSVMExplicitNumFeatures(t *testing.T) {
	d, err := ReadLibSVM(strings.NewReader("1 2:1\n"), 100)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumFeatures != 100 {
		t.Fatalf("features = %d, want 100", d.NumFeatures)
	}
}

func TestReadLibSVMErrors(t *testing.T) {
	for _, bad := range []string{
		"x 1:1\n",     // bad label
		"1 1\n",       // missing colon
		"1 0:1\n",     // 0-based index not allowed
		"1 a:1\n",     // non-numeric index
		"1 1:zzz\n",   // bad value
		"1 2:1 1:2\n", // unsorted
	} {
		if _, err := ReadLibSVM(strings.NewReader(bad), 0); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestLibSVMRoundTrip(t *testing.T) {
	orig := Generate(SyntheticConfig{NumRows: 50, NumFeatures: 200, AvgNNZ: 10, Seed: 5, Zipf: 1.2})
	var buf bytes.Buffer
	if err := WriteLibSVM(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLibSVM(&buf, orig.NumFeatures)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig.RowPtr, back.RowPtr) ||
		!reflect.DeepEqual(orig.Indices, back.Indices) ||
		!reflect.DeepEqual(orig.Labels, back.Labels) {
		t.Fatal("libsvm round trip changed structure")
	}
	for i := range orig.Values {
		if orig.Values[i] != back.Values[i] {
			t.Fatalf("value %d: %v vs %v", i, orig.Values[i], back.Values[i])
		}
	}
}

func TestLibSVMFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.libsvm")
	orig := Generate(SyntheticConfig{NumRows: 10, NumFeatures: 30, AvgNNZ: 4, Seed: 9})
	if err := WriteLibSVMFile(path, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLibSVMFile(path, 30)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != orig.NumRows() || back.NNZ() != orig.NNZ() {
		t.Fatal("file round trip lost data")
	}
	if _, err := ReadLibSVMFile(filepath.Join(t.TempDir(), "missing"), 0); err == nil {
		t.Fatal("expected error for missing file")
	}
}
