package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// ReadLibSVM parses a dataset in LibSVM format:
//
//	<label> <index>:<value> <index>:<value> ...
//
// Indices in the file are 1-based (the LibSVM convention) and are converted
// to 0-based. Lines that are empty or start with '#' are skipped. If
// numFeatures is 0 the dimensionality is inferred.
func ReadLibSVM(r io.Reader, numFeatures int) (*Dataset, error) {
	b := NewBuilder(numFeatures)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var indices []int32
	var values []float32
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		label, err := strconv.ParseFloat(fields[0], 32)
		if err != nil {
			return nil, fmt.Errorf("libsvm: line %d: bad label %q: %v", lineNo, fields[0], err)
		}
		if math.IsNaN(label) || math.IsInf(label, 0) {
			return nil, fmt.Errorf("libsvm: line %d: non-finite label %q", lineNo, fields[0])
		}
		indices = indices[:0]
		values = values[:0]
		for _, f := range fields[1:] {
			colon := strings.IndexByte(f, ':')
			if colon < 0 {
				return nil, fmt.Errorf("libsvm: line %d: malformed pair %q", lineNo, f)
			}
			idx, err := strconv.Atoi(f[:colon])
			// 1-based on the wire; idx-1 must fit int32 or it would silently
			// wrap into a bogus (possibly still-increasing) feature id.
			if err != nil || idx < 1 || idx-1 > math.MaxInt32 {
				return nil, fmt.Errorf("libsvm: line %d: bad index %q", lineNo, f[:colon])
			}
			v, err := strconv.ParseFloat(f[colon+1:], 32)
			if err != nil {
				return nil, fmt.Errorf("libsvm: line %d: bad value %q: %v", lineNo, f[colon+1:], err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				// Dataset.Validate requires finite storage, and training
				// gradients would poison on NaN; out-of-range magnitudes are
				// already rejected by ParseFloat's bitSize 32.
				return nil, fmt.Errorf("libsvm: line %d: non-finite value %q", lineNo, f[colon+1:])
			}
			indices = append(indices, int32(idx-1))
			values = append(values, float32(v))
		}
		if err := b.Add(indices, values, float32(label)); err != nil {
			return nil, fmt.Errorf("libsvm: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// ReadLibSVMFile reads a LibSVM file from disk.
func ReadLibSVMFile(path string, numFeatures int) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadLibSVM(f, numFeatures)
}

// WriteLibSVM writes the dataset in LibSVM format with 1-based indices.
func WriteLibSVM(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < d.NumRows(); i++ {
		in := d.Row(i)
		if _, err := fmt.Fprintf(bw, "%g", in.Label); err != nil {
			return err
		}
		for j, idx := range in.Indices {
			if _, err := fmt.Fprintf(bw, " %d:%g", idx+1, in.Values[j]); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteLibSVMFile writes a LibSVM file to disk.
func WriteLibSVMFile(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteLibSVM(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
