package dataset

// PartitionRows splits the dataset into w contiguous row shards of
// near-equal size, one per worker (the paper's "Data Partitioning" step).
// When NumRows < w some shards are empty but w shards are always returned,
// so worker counts remain stable.
func PartitionRows(d *Dataset, w int) []*Dataset {
	if w <= 0 {
		panic("dataset: worker count must be positive")
	}
	shards := make([]*Dataset, w)
	n := d.NumRows()
	base, rem := n/w, n%w
	lo := 0
	for i := 0; i < w; i++ {
		sz := base
		if i < rem {
			sz++
		}
		shards[i] = d.Subset(lo, lo+sz)
		lo += sz
	}
	return shards
}

// ShardRange reports the [lo, hi) global row range of shard i out of w, using
// the same assignment as PartitionRows. It lets distributed workers map local
// row ids back to global ids without materializing shards.
func ShardRange(numRows, w, i int) (lo, hi int) {
	base, rem := numRows/w, numRows%w
	lo = base*i + min(i, rem)
	sz := base
	if i < rem {
		sz++
	}
	return lo, lo + sz
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
