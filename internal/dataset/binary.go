package dataset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary dataset format — the paper's data-reading module (§7.1) provides
// memory, disk, and memory-and-disk levels; this file implements the
// on-disk representation: a compact columnar layout that loads an order of
// magnitude faster than LibSVM text and supports chunked (out-of-core)
// reading for datasets larger than memory.
//
// Layout (little-endian):
//
//	magic   "DIMB"            4 bytes
//	version u32               currently 1
//	rows    u64
//	features u64
//	nnz     u64
//	rowPtr  (rows+1)×u64
//	labels  rows×f32
//	indices nnz×u32
//	values  nnz×f32

var binaryMagic = [4]byte{'D', 'I', 'M', 'B'}

const binaryVersion = 1

// Typed read errors. Every failure mode of the binary reader wraps one of
// these, so callers (and the out-of-core trainer) can distinguish a
// truncated file from a structurally corrupt one without string matching.
var (
	// ErrTruncated reports a file or stream that ends before the payload
	// its header promises.
	ErrTruncated = errors.New("dataset: binary data truncated")
	// ErrBadMagic reports a stream that does not start with "DIMB".
	ErrBadMagic = errors.New("dataset: bad binary magic")
	// ErrBadVersion reports an unsupported format version.
	ErrBadVersion = errors.New("dataset: unsupported binary version")
	// ErrCorrupt reports a structurally invalid payload: implausible or
	// inconsistent header counts, non-monotone row pointers, out-of-range
	// feature indices, or non-finite values.
	ErrCorrupt = errors.New("dataset: corrupt binary data")
)

// binaryHeader is the fixed-size file prefix.
type binaryHeader struct {
	rows, features, nnz uint64
}

const headerSize = 4 + 4 + 8 + 8 + 8

func (h binaryHeader) rowPtrOff() int64 { return headerSize }
func (h binaryHeader) labelsOff() int64 { return h.rowPtrOff() + int64(h.rows+1)*8 }
func (h binaryHeader) indicesOff() int64 {
	return h.labelsOff() + int64(h.rows)*4
}
func (h binaryHeader) valuesOff() int64 {
	return h.indicesOff() + int64(h.nnz)*4
}
func (h binaryHeader) fileSize() int64 { return h.valuesOff() + int64(h.nnz)*4 }

// WriteBinary writes the dataset in the binary format.
func WriteBinary(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var scratch [8]byte
	put32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	put64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:], v)
		_, err := bw.Write(scratch[:])
		return err
	}
	if err := put32(binaryVersion); err != nil {
		return err
	}
	if err := put64(uint64(d.NumRows())); err != nil {
		return err
	}
	if err := put64(uint64(d.NumFeatures)); err != nil {
		return err
	}
	if err := put64(uint64(d.NNZ())); err != nil {
		return err
	}
	for _, p := range d.RowPtr {
		if err := put64(uint64(p)); err != nil {
			return err
		}
	}
	for _, l := range d.Labels {
		if err := put32(float32bits(l)); err != nil {
			return err
		}
	}
	for _, idx := range d.Indices {
		if err := put32(uint32(idx)); err != nil {
			return err
		}
	}
	for _, v := range d.Values {
		if err := put32(float32bits(v)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteBinaryFile writes the dataset to a binary file.
func WriteBinaryFile(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readHeader parses and validates the fixed prefix.
func readHeader(r io.Reader) (binaryHeader, error) {
	var buf [headerSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return binaryHeader{}, fmt.Errorf("%w: binary header: %v", ErrTruncated, err)
	}
	if [4]byte(buf[:4]) != binaryMagic {
		return binaryHeader{}, fmt.Errorf("%w: got %q", ErrBadMagic, buf[:4])
	}
	if v := binary.LittleEndian.Uint32(buf[4:8]); v != binaryVersion {
		return binaryHeader{}, fmt.Errorf("%w: version %d, want %d", ErrBadVersion, v, binaryVersion)
	}
	h := binaryHeader{
		rows:     binary.LittleEndian.Uint64(buf[8:16]),
		features: binary.LittleEndian.Uint64(buf[16:24]),
		nnz:      binary.LittleEndian.Uint64(buf[24:32]),
	}
	const sane = 1 << 40
	if h.rows > sane || h.features > sane || h.nnz > sane {
		return binaryHeader{}, fmt.Errorf("%w: implausible header %+v", ErrCorrupt, h)
	}
	return h, nil
}

// validateRowPtr checks that a row-pointer array is a monotone prefix-sum
// chain from 0 to nnz.
func validateRowPtr(rowPtr []int64, nnz uint64) error {
	if len(rowPtr) == 0 || rowPtr[0] != 0 {
		return fmt.Errorf("%w: RowPtr[0] != 0", ErrCorrupt)
	}
	prev := int64(0)
	for i, p := range rowPtr {
		if p < prev {
			return fmt.Errorf("%w: RowPtr not monotone at row %d (%d < %d)", ErrCorrupt, i, p, prev)
		}
		prev = p
	}
	if uint64(prev) != nnz {
		return fmt.Errorf("%w: RowPtr[rows]=%d, header nnz=%d", ErrCorrupt, prev, nnz)
	}
	return nil
}

// ReadBinary loads a full dataset from the binary format (the "memory"
// storage level).
func ReadBinary(r io.Reader) (*Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	h, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	d := &Dataset{NumFeatures: int(h.features)}
	// Arrays grow as bytes actually arrive (growU64s and friends), so a
	// header promising petabytes fails with ErrTruncated instead of
	// attempting the full allocation up front.
	if d.RowPtr, err = growU64s(br, int(h.rows)+1); err != nil {
		return nil, err
	}
	if err := validateRowPtr(d.RowPtr, h.nnz); err != nil {
		return nil, err
	}
	if d.Labels, err = growF32s(br, int(h.rows)); err != nil {
		return nil, err
	}
	if d.Indices, err = growI32s(br, int(h.nnz)); err != nil {
		return nil, err
	}
	if d.Values, err = growF32s(br, int(h.nnz)); err != nil {
		return nil, err
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing bytes past the payload", ErrCorrupt)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return d, nil
}

// ReadBinaryFile loads a binary dataset file.
func ReadBinaryFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// ReadBinaryChunks streams a binary dataset file in row chunks of at most
// chunkRows without materializing the whole file — the "disk" storage
// level, for out-of-core preprocessing and sharding. fn receives each chunk
// (a self-contained Dataset whose rows are the global range [lo, hi)) and
// may return an error to stop.
func ReadBinaryChunks(path string, chunkRows int, fn func(lo, hi int, chunk *Dataset) error) error {
	cf, err := OpenChunked(path, chunkRows)
	if err != nil {
		return err
	}
	defer cf.Close()
	for c := 0; c < cf.NumChunks(); c++ {
		lo, hi := cf.ChunkBounds(c)
		chunk := new(Dataset)
		if err := cf.ReadChunk(c, chunk); err != nil {
			return err
		}
		if err := fn(lo, hi, chunk); err != nil {
			return err
		}
	}
	return nil
}

// --- raw array readers ---------------------------------------------------

// growSlab is the element count read per step by the incremental readers:
// large enough to amortize, small enough that a lying header never triggers
// a giant allocation.
const growSlab = 1 << 17

// growU64s reads n little-endian u64s, growing the destination as data
// arrives so truncated streams fail before allocating the promised total.
func growU64s(r io.Reader, n int) ([]int64, error) {
	dst := make([]int64, 0, min(n, growSlab))
	var buf [8 * 1024]byte
	for len(dst) < n {
		want := min(n-len(dst), len(buf)/8)
		if _, err := io.ReadFull(r, buf[:want*8]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		for i := 0; i < want; i++ {
			dst = append(dst, int64(binary.LittleEndian.Uint64(buf[i*8:])))
		}
	}
	return dst, nil
}

func growI32s(r io.Reader, n int) ([]int32, error) {
	dst := make([]int32, 0, min(n, growSlab))
	var buf [4 * 2048]byte
	for len(dst) < n {
		want := min(n-len(dst), len(buf)/4)
		if _, err := io.ReadFull(r, buf[:want*4]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		for i := 0; i < want; i++ {
			dst = append(dst, int32(binary.LittleEndian.Uint32(buf[i*4:])))
		}
	}
	return dst, nil
}

func growF32s(r io.Reader, n int) ([]float32, error) {
	dst := make([]float32, 0, min(n, growSlab))
	var buf [4 * 2048]byte
	for len(dst) < n {
		want := min(n-len(dst), len(buf)/4)
		if _, err := io.ReadFull(r, buf[:want*4]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		for i := 0; i < want; i++ {
			dst = append(dst, float32frombits(binary.LittleEndian.Uint32(buf[i*4:])))
		}
	}
	return dst, nil
}

func readU64sAt(f *os.File, off int64, dst []int64) error {
	buf := make([]byte, 8*len(dst))
	if len(buf) == 0 {
		return nil
	}
	if _, err := f.ReadAt(buf, off); err != nil {
		return fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return nil
}

func readI32sAt(f *os.File, off int64, dst []int32) error {
	buf := make([]byte, 4*len(dst))
	if len(buf) == 0 {
		return nil
	}
	if _, err := f.ReadAt(buf, off); err != nil {
		return fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return nil
}

func readF32sAt(f *os.File, off int64, dst []float32) error {
	buf := make([]byte, 4*len(dst))
	if len(buf) == 0 {
		return nil
	}
	if _, err := f.ReadAt(buf, off); err != nil {
		return fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	for i := range dst {
		dst[i] = float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return nil
}

func float32bits(f float32) uint32     { return math.Float32bits(f) }
func float32frombits(b uint32) float32 { return math.Float32frombits(b) }
