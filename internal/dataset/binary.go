package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary dataset format — the paper's data-reading module (§7.1) provides
// memory, disk, and memory-and-disk levels; this file implements the
// on-disk representation: a compact columnar layout that loads an order of
// magnitude faster than LibSVM text and supports chunked (out-of-core)
// reading for datasets larger than memory.
//
// Layout (little-endian):
//
//	magic   "DIMB"            4 bytes
//	version u32               currently 1
//	rows    u64
//	features u64
//	nnz     u64
//	rowPtr  (rows+1)×u64
//	labels  rows×f32
//	indices nnz×u32
//	values  nnz×f32

var binaryMagic = [4]byte{'D', 'I', 'M', 'B'}

const binaryVersion = 1

// binaryHeader is the fixed-size file prefix.
type binaryHeader struct {
	rows, features, nnz uint64
}

const headerSize = 4 + 4 + 8 + 8 + 8

func (h binaryHeader) rowPtrOff() int64 { return headerSize }
func (h binaryHeader) labelsOff() int64 { return h.rowPtrOff() + int64(h.rows+1)*8 }
func (h binaryHeader) indicesOff() int64 {
	return h.labelsOff() + int64(h.rows)*4
}
func (h binaryHeader) valuesOff() int64 {
	return h.indicesOff() + int64(h.nnz)*4
}

// WriteBinary writes the dataset in the binary format.
func WriteBinary(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var scratch [8]byte
	put32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	put64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:], v)
		_, err := bw.Write(scratch[:])
		return err
	}
	if err := put32(binaryVersion); err != nil {
		return err
	}
	if err := put64(uint64(d.NumRows())); err != nil {
		return err
	}
	if err := put64(uint64(d.NumFeatures)); err != nil {
		return err
	}
	if err := put64(uint64(d.NNZ())); err != nil {
		return err
	}
	for _, p := range d.RowPtr {
		if err := put64(uint64(p)); err != nil {
			return err
		}
	}
	for _, l := range d.Labels {
		if err := put32(float32bits(l)); err != nil {
			return err
		}
	}
	for _, idx := range d.Indices {
		if err := put32(uint32(idx)); err != nil {
			return err
		}
	}
	for _, v := range d.Values {
		if err := put32(float32bits(v)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteBinaryFile writes the dataset to a binary file.
func WriteBinaryFile(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readHeader parses and validates the fixed prefix.
func readHeader(r io.Reader) (binaryHeader, error) {
	var buf [headerSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return binaryHeader{}, fmt.Errorf("dataset: binary header: %w", err)
	}
	if [4]byte(buf[:4]) != binaryMagic {
		return binaryHeader{}, fmt.Errorf("dataset: bad magic %q", buf[:4])
	}
	if v := binary.LittleEndian.Uint32(buf[4:8]); v != binaryVersion {
		return binaryHeader{}, fmt.Errorf("dataset: unsupported binary version %d", v)
	}
	h := binaryHeader{
		rows:     binary.LittleEndian.Uint64(buf[8:16]),
		features: binary.LittleEndian.Uint64(buf[16:24]),
		nnz:      binary.LittleEndian.Uint64(buf[24:32]),
	}
	const sane = 1 << 40
	if h.rows > sane || h.features > sane || h.nnz > sane {
		return binaryHeader{}, fmt.Errorf("dataset: implausible header %+v", h)
	}
	return h, nil
}

// ReadBinary loads a full dataset from the binary format (the "memory"
// storage level).
func ReadBinary(r io.Reader) (*Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	h, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	d := &Dataset{
		RowPtr:      make([]int64, h.rows+1),
		Indices:     make([]int32, h.nnz),
		Values:      make([]float32, h.nnz),
		Labels:      make([]float32, h.rows),
		NumFeatures: int(h.features),
	}
	if err := readU64s(br, d.RowPtr); err != nil {
		return nil, err
	}
	if err := readF32s(br, d.Labels); err != nil {
		return nil, err
	}
	if err := readI32s(br, d.Indices); err != nil {
		return nil, err
	}
	if err := readF32s(br, d.Values); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: binary payload invalid: %w", err)
	}
	return d, nil
}

// ReadBinaryFile loads a binary dataset file.
func ReadBinaryFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// ReadBinaryChunks streams a binary dataset file in row chunks of at most
// chunkRows without materializing the whole file — the "disk" storage
// level, for out-of-core preprocessing and sharding. fn receives each chunk
// (a self-contained Dataset whose rows are the global range [lo, hi)) and
// may return an error to stop.
func ReadBinaryChunks(path string, chunkRows int, fn func(lo, hi int, chunk *Dataset) error) error {
	if chunkRows < 1 {
		return fmt.Errorf("dataset: chunkRows %d < 1", chunkRows)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	h, err := readHeader(f)
	if err != nil {
		return err
	}
	n := int(h.rows)
	// Row pointers are needed to locate chunk extents; they are 8 bytes per
	// row — small relative to the payload.
	rowPtr := make([]int64, n+1)
	if err := readU64sAt(f, h.rowPtrOff(), rowPtr); err != nil {
		return err
	}
	for lo := 0; lo < n; lo += chunkRows {
		hi := lo + chunkRows
		if hi > n {
			hi = n
		}
		a, b := rowPtr[lo], rowPtr[hi]
		chunk := &Dataset{
			RowPtr:      make([]int64, hi-lo+1),
			Indices:     make([]int32, b-a),
			Values:      make([]float32, b-a),
			Labels:      make([]float32, hi-lo),
			NumFeatures: int(h.features),
		}
		for i := range chunk.RowPtr {
			chunk.RowPtr[i] = rowPtr[lo+i] - a
		}
		if err := readF32sAt(f, h.labelsOff()+int64(lo)*4, chunk.Labels); err != nil {
			return err
		}
		if err := readI32sAt(f, h.indicesOff()+a*4, chunk.Indices); err != nil {
			return err
		}
		if err := readF32sAt(f, h.valuesOff()+a*4, chunk.Values); err != nil {
			return err
		}
		if err := fn(lo, hi, chunk); err != nil {
			return err
		}
	}
	return nil
}

// --- raw array readers ---------------------------------------------------

func readU64s(r io.Reader, dst []int64) error {
	buf := make([]byte, 8*len(dst))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return nil
}

func readI32s(r io.Reader, dst []int32) error {
	buf := make([]byte, 4*len(dst))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return nil
}

func readF32s(r io.Reader, dst []float32) error {
	buf := make([]byte, 4*len(dst))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return nil
}

func readU64sAt(f *os.File, off int64, dst []int64) error {
	buf := make([]byte, 8*len(dst))
	if _, err := f.ReadAt(buf, off); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return nil
}

func readI32sAt(f *os.File, off int64, dst []int32) error {
	buf := make([]byte, 4*len(dst))
	if len(buf) == 0 {
		return nil
	}
	if _, err := f.ReadAt(buf, off); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return nil
}

func readF32sAt(f *os.File, off int64, dst []float32) error {
	buf := make([]byte, 4*len(dst))
	if len(buf) == 0 {
		return nil
	}
	if _, err := f.ReadAt(buf, off); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return nil
}

func float32bits(f float32) uint32     { return math.Float32bits(f) }
func float32frombits(b uint32) float32 { return math.Float32frombits(b) }
