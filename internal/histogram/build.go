package histogram

import (
	"sync"

	"dimboost/internal/dataset"
)

// BuildDense is the traditional histogram construction the paper uses as a
// baseline: for every instance it enumerates every sampled feature,
// including zeros (O(N·M), §5.1). rows selects the instances (global row
// ids into d); grad/hess are per-row gradients indexed by global row id.
func BuildDense(h *Histogram, d *dataset.Dataset, rows []int32, grad, hess []float64) {
	l := h.Layout
	for _, r := range rows {
		in := d.Row(int(r))
		g, hs := grad[r], hess[r]
		for p, f := range l.Features {
			v := float64(in.Feature(int(f)))
			k := l.Cands[p].Bucket(v)
			idx := int(l.Offsets[p]) + k
			h.G[idx] += g
			h.H[idx] += hs
		}
	}
}

// BuildSparse is the sparsity-aware construction of Algorithm 2: gradients
// are accumulated once into per-feature zero buckets, and only nonzero
// entries are touched individually — O(z·N + M).
func BuildSparse(h *Histogram, d *dataset.Dataset, rows []int32, grad, hess []float64) {
	l := h.Layout
	var sumG, sumH float64
	for _, r := range rows {
		g, hs := grad[r], hess[r]
		sumG += g
		sumH += hs
		in := d.Row(int(r))
		for j, f := range in.Indices {
			p := l.Pos(f)
			if p < 0 {
				continue // feature not sampled this tree
			}
			c := l.Cands[p]
			k := c.Bucket(float64(in.Values[j]))
			base := int(l.Offsets[p])
			h.G[base+k] += g
			h.H[base+k] += hs
			z := base + c.ZeroBucket
			h.G[z] -= g
			h.H[z] -= hs
		}
	}
	for p := range l.Features {
		z := int(l.Offsets[p]) + l.Cands[p].ZeroBucket
		h.G[z] += sumG
		h.H[z] += sumH
	}
}

// BuildOptions control the parallel batch construction of §5.2.
type BuildOptions struct {
	// Parallelism is the number of builder goroutines (the paper's q
	// threads). Values < 1 mean 1.
	Parallelism int
	// BatchSize is the number of instances per batch (the paper's b).
	// Values < 1 use a default of 4096.
	BatchSize int
	// Dense switches to the traditional O(N·M) build, for ablation.
	Dense bool
}

func (o BuildOptions) normalized() BuildOptions {
	if o.Parallelism < 1 {
		o.Parallelism = 1
	}
	if o.BatchSize < 1 {
		o.BatchSize = 4096
	}
	return o
}

// Build constructs the histogram of one tree node over the given rows using
// the parallel batch method: the row range is cut into batches of
// opts.BatchSize, a pool of opts.Parallelism goroutines builds per-goroutine
// partial histograms, and the partials are merged in goroutine order. With
// Parallelism == 1 the result is bit-identical to BuildSparse/BuildDense.
func Build(h *Histogram, d *dataset.Dataset, rows []int32, grad, hess []float64, opts BuildOptions) {
	opts = opts.normalized()
	build := BuildSparse
	if opts.Dense {
		build = BuildDense
	}
	nBatches := (len(rows) + opts.BatchSize - 1) / opts.BatchSize
	if opts.Parallelism == 1 || nBatches <= 1 {
		build(h, d, rows, grad, hess)
		return
	}
	workers := opts.Parallelism
	if workers > nBatches {
		workers = nBatches
	}
	partials := make([]*Histogram, workers)
	batches := make(chan []int32, nBatches)
	for b := 0; b < nBatches; b++ {
		lo := b * opts.BatchSize
		hi := lo + opts.BatchSize
		if hi > len(rows) {
			hi = len(rows)
		}
		batches <- rows[lo:hi]
	}
	close(batches)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			part := New(h.Layout)
			for batch := range batches {
				build(part, d, batch, grad, hess)
			}
			partials[w] = part
		}(w)
	}
	wg.Wait()
	for _, part := range partials {
		h.Add(part)
	}
}
