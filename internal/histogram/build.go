package histogram

import (
	"dimboost/internal/dataset"
	"dimboost/internal/parallel"
)

// BuildDense is the traditional histogram construction the paper uses as a
// baseline: for every instance it enumerates every sampled feature,
// including zeros (O(N·M), §5.1). rows selects the instances (global row
// ids into d); grad/hess are per-row gradients indexed by global row id.
// Row indices and Layout.Features are both sorted, so one merge-walk per
// row replaces a per-feature binary search.
func BuildDense(h *Histogram, d *dataset.Dataset, rows []int32, grad, hess []float64) {
	l := h.Layout
	for _, r := range rows {
		in := d.Row(int(r))
		g, hs := grad[r], hess[r]
		j := 0
		for p, f := range l.Features {
			for j < len(in.Indices) && in.Indices[j] < f {
				j++
			}
			v := 0.0
			if j < len(in.Indices) && in.Indices[j] == f {
				v = float64(in.Values[j])
			}
			k := l.Cands[p].Bucket(v)
			idx := int(l.Offsets[p]) + k
			h.G[idx] += g
			h.H[idx] += hs
		}
	}
}

// BuildSparse is the sparsity-aware construction of Algorithm 2: gradients
// are accumulated once into per-feature zero buckets, and only nonzero
// entries are touched individually — O(z·N + M).
func BuildSparse(h *Histogram, d *dataset.Dataset, rows []int32, grad, hess []float64) {
	l := h.Layout
	var sumG, sumH float64
	for _, r := range rows {
		g, hs := grad[r], hess[r]
		sumG += g
		sumH += hs
		in := d.Row(int(r))
		for j, f := range in.Indices {
			p := l.Pos(f)
			if p < 0 {
				continue // feature not sampled this tree
			}
			c := l.Cands[p]
			k := c.Bucket(float64(in.Values[j]))
			base := int(l.Offsets[p])
			h.G[base+k] += g
			h.H[base+k] += hs
			z := base + c.ZeroBucket
			h.G[z] -= g
			h.H[z] -= hs
		}
	}
	for p := range l.Features {
		z := int(l.Offsets[p]) + l.Cands[p].ZeroBucket
		h.G[z] += sumG
		h.H[z] += sumH
	}
}

// BuildSparseBinned is BuildSparse over pre-quantized bin ids: the same
// accumulation in the same order (so results are bit-identical), but the
// inner loop is pure index arithmetic — no Pos lookup, no float compare,
// no binary search.
func BuildSparseBinned(h *Histogram, b *Binned, rows []int32, grad, hess []float64) {
	sumG, sumH := AccumSparseBinned(h, b, rows, grad, hess, 0, 0)
	FinishSparseZeros(h, sumG, sumH)
}

// AccumSparseBinned runs Algorithm 2's per-entry accumulation over rows
// without the final zero-bucket pass, threading the running gradient sums
// through so a batch can be split across several Binned views (the
// out-of-core streaming build walks one batch over multiple disk-resident
// chunk segments). rows index into b; grad/hess are indexed by the same row
// ids (callers slice them so local rows line up). Chaining calls and then
// applying FinishSparseZeros once performs float operations in exactly the
// order of BuildSparseBinned over the concatenated rows — bit-identical.
func AccumSparseBinned(h *Histogram, b *Binned, rows []int32, grad, hess []float64, sumG, sumH float64) (float64, float64) {
	if b.Bins16 != nil {
		return accumSparseBins(h, b, b.Bins16, rows, grad, hess, sumG, sumH)
	}
	return accumSparseBins(h, b, b.Bins8, rows, grad, hess, sumG, sumH)
}

// FinishSparseZeros applies the accumulated gradient sums to every sampled
// feature's zero bucket, completing a chain of AccumSparseBinned calls.
func FinishSparseZeros(h *Histogram, sumG, sumH float64) {
	for _, z := range h.Layout.zeroIdx {
		h.G[z] += sumG
		h.H[z] += sumH
	}
}

func accumSparseBins[T uint8 | uint16](h *Histogram, b *Binned, bins []T, rows []int32, grad, hess []float64, sumG, sumH float64) (float64, float64) {
	l := h.Layout
	offs, zeros := l.Offsets, l.zeroIdx
	pos := b.Pos
	for _, r := range rows {
		g, hs := grad[r], hess[r]
		sumG += g
		sumH += hs
		lo, hi := b.RowPtr[r], b.RowPtr[r+1]
		for j := lo; j < hi; j++ {
			p := pos[j]
			idx := int(offs[p]) + int(bins[j])
			h.G[idx] += g
			h.H[idx] += hs
			z := zeros[p]
			h.G[z] -= g
			h.H[z] -= hs
		}
	}
	return sumG, sumH
}

// BuildDenseBinned is BuildDense over pre-quantized bin ids: one merge-walk
// over the row's sampled entries supplies stored bins, every other sampled
// position contributes its zero bucket. Bit-identical to BuildDense.
func BuildDenseBinned(h *Histogram, b *Binned, rows []int32, grad, hess []float64) {
	if b.Bins16 != nil {
		buildDenseBins(h, b, b.Bins16, rows, grad, hess)
	} else {
		buildDenseBins(h, b, b.Bins8, rows, grad, hess)
	}
}

func buildDenseBins[T uint8 | uint16](h *Histogram, b *Binned, bins []T, rows []int32, grad, hess []float64) {
	l := h.Layout
	offs, zeros := l.Offsets, l.zeroIdx
	m := len(l.Features)
	for _, r := range rows {
		g, hs := grad[r], hess[r]
		j, hi := b.RowPtr[r], b.RowPtr[r+1]
		for p := 0; p < m; p++ {
			idx := int(zeros[p])
			if j < hi && int(b.Pos[j]) == p {
				idx = int(offs[p]) + int(bins[j])
				j++
			}
			h.G[idx] += g
			h.H[idx] += hs
		}
	}
}

// BuildOptions control the parallel batch construction of §5.2.
type BuildOptions struct {
	// Parallelism is the number of builder goroutines (the paper's q
	// threads). Values < 1 mean runtime.GOMAXPROCS(0). The result is
	// bit-identical for every value: the batch grid and the merge order
	// depend only on BatchSize.
	Parallelism int
	// BatchSize is the number of instances per batch (the paper's b).
	// Values < 1 use a default of 4096.
	BatchSize int
	// Dense switches to the traditional O(N·M) build, for ablation.
	Dense bool
	// Pool, when non-nil, supplies the per-goroutine partial histograms
	// instead of allocating fresh ones per Build call. The trainer shares
	// one pool across a whole tree, making steady-state builds
	// allocation-free.
	Pool *Pool
}

func (o BuildOptions) normalized() BuildOptions {
	if o.BatchSize < 1 {
		o.BatchSize = 4096
	}
	return o
}

// Build constructs the histogram of one tree node over the given rows using
// the parallel batch method: the row range is cut into batches of
// opts.BatchSize forming a fixed grid, every batch accumulates into its own
// partial histogram, and the partials are merged in ascending batch order
// (parallel.ReduceOrdered). Both the grid and the merge order are functions
// of (rows, BatchSize) alone, so the result is bit-identical for every
// Parallelism; a single-batch range builds directly into h, which is then
// bit-identical to BuildSparse/BuildDense.
func Build(h *Histogram, d *dataset.Dataset, rows []int32, grad, hess []float64, opts BuildOptions) {
	build := BuildSparse
	if opts.Dense {
		build = BuildDense
	}
	buildParallel(h, rows, opts, func(part *Histogram, batch []int32) {
		build(part, d, batch, grad, hess)
	})
}

// BuildBinned is Build over the quantized matrix: same batching, same
// deterministic merge order, but each batch accumulates straight from bin
// ids.
func BuildBinned(h *Histogram, b *Binned, rows []int32, grad, hess []float64, opts BuildOptions) {
	build := BuildSparseBinned
	if opts.Dense {
		build = BuildDenseBinned
	}
	buildParallel(h, rows, opts, func(part *Histogram, batch []int32) {
		build(part, b, batch, grad, hess)
	})
}

// buildParallel runs the shared batching/merging machinery over any
// per-batch builder. Partial histograms come from opts.Pool when set; eager
// prefix merging recycles each partial as soon as it is folded in, so a
// sequential run cycles a single pooled partial.
func buildParallel(h *Histogram, rows []int32, opts BuildOptions, build func(part *Histogram, batch []int32)) {
	opts = opts.normalized()
	nBatches := (len(rows) + opts.BatchSize - 1) / opts.BatchSize
	if nBatches <= 1 {
		build(h, rows)
		return
	}
	p := parallel.New(opts.Parallelism)
	parallel.ReduceOrdered(p, len(rows), opts.BatchSize,
		func(_, lo, hi int) *Histogram {
			var part *Histogram
			if opts.Pool != nil {
				part = opts.Pool.Get()
			} else {
				part = New(h.Layout)
			}
			build(part, rows[lo:hi])
			return part
		},
		func(_ int, part *Histogram) {
			h.Add(part)
			if opts.Pool != nil {
				opts.Pool.Put(part)
			}
		})
}
