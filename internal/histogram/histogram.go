// Package histogram implements gradient histograms — the central data
// structure of GBDT training (§2.2) — and the paper's two computation
// optimizations: sparsity-aware construction (Algorithm 2, §5.1) and
// parallel batch construction over a node-to-instance index (§5.2).
//
// A histogram summarizes, for every (sampled) feature and every split-
// candidate bucket, the sums of first-order (G) and second-order (H)
// gradients of the instances whose feature value falls in the bucket.
package histogram

import (
	"fmt"

	"dimboost/internal/sketch"
)

// Layout maps a sampled feature set to a flat bucket array. It is immutable
// after construction and shared by every histogram of a tree.
type Layout struct {
	// Features lists the sampled global feature ids in ascending order.
	Features []int32
	// Cands holds the split candidates of each sampled feature, parallel to
	// Features.
	Cands []sketch.Candidates
	// Offsets[p] is the index of the first bucket of sampled feature p in
	// the flat arrays; Offsets[len(Features)] == TotalBuckets.
	Offsets []int32
	// TotalBuckets is the flat array length.
	TotalBuckets int

	// posOf maps a global feature id to its position in Features, or -1.
	posOf []int32
	// zeroIdx[p] is the flat bucket index of sampled position p's zero
	// bucket, precomputed so the binned build paths need no Candidates
	// lookups in their inner loops.
	zeroIdx []int32
}

// NewLayout builds a layout for the given sampled features. cands must be
// indexed by global feature id and numFeatures is the global dimensionality.
// features must be sorted ascending and duplicate-free.
func NewLayout(features []int32, cands []sketch.Candidates, numFeatures int) (*Layout, error) {
	l := &Layout{
		Features: features,
		Cands:    make([]sketch.Candidates, len(features)),
		Offsets:  make([]int32, len(features)+1),
		posOf:    make([]int32, numFeatures),
		zeroIdx:  make([]int32, len(features)),
	}
	for i := range l.posOf {
		l.posOf[i] = -1
	}
	off := int32(0)
	prev := int32(-1)
	for p, f := range features {
		if f <= prev || int(f) >= numFeatures {
			return nil, fmt.Errorf("histogram: bad sampled feature %d at position %d", f, p)
		}
		prev = f
		l.Cands[p] = cands[f]
		l.Offsets[p] = off
		l.posOf[f] = int32(p)
		l.zeroIdx[p] = off + int32(cands[f].ZeroBucket)
		off += int32(cands[f].NumBuckets())
	}
	l.Offsets[len(features)] = off
	l.TotalBuckets = int(off)
	return l, nil
}

// AllFeatures returns the identity feature list [0, numFeatures), the σ=1
// case.
func AllFeatures(numFeatures int) []int32 {
	out := make([]int32, numFeatures)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// NumFeatures returns the number of sampled features.
func (l *Layout) NumFeatures() int { return len(l.Features) }

// Pos returns the sampled position of global feature f, or -1 when f is not
// sampled.
func (l *Layout) Pos(f int32) int32 { return l.posOf[f] }

// BucketRange returns the flat [lo, hi) bucket range of sampled position p.
func (l *Layout) BucketRange(p int) (lo, hi int) {
	return int(l.Offsets[p]), int(l.Offsets[p+1])
}

// SizeBytes returns the float32 wire size of one histogram under this
// layout: 2 statistics × TotalBuckets × 4 bytes — the paper's h (§3).
func (l *Layout) SizeBytes() int { return 2 * l.TotalBuckets * 4 }

// Histogram is the G/H bucket arrays for one tree node under a Layout.
type Histogram struct {
	Layout *Layout
	G, H   []float64
}

// New returns a zeroed histogram for the layout.
func New(l *Layout) *Histogram {
	return &Histogram{Layout: l, G: make([]float64, l.TotalBuckets), H: make([]float64, l.TotalBuckets)}
}

// Reset zeroes the histogram in place.
func (h *Histogram) Reset() {
	for i := range h.G {
		h.G[i] = 0
		h.H[i] = 0
	}
}

// Add accumulates other into h. Both must share a layout shape.
func (h *Histogram) Add(other *Histogram) {
	for i, g := range other.G {
		h.G[i] += g
	}
	for i, v := range other.H {
		h.H[i] += v
	}
}

// SetSub fills h with parent − child, the histogram-subtraction trick: a
// split node's second child histogram equals its parent's minus its
// sibling's, so only one child per split needs a data pass.
func (h *Histogram) SetSub(parent, child *Histogram) {
	for i := range h.G {
		h.G[i] = parent.G[i] - child.G[i]
	}
	for i := range h.H {
		h.H[i] = parent.H[i] - child.H[i]
	}
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	c := New(h.Layout)
	copy(c.G, h.G)
	copy(c.H, h.H)
	return c
}

// FeatureTotals sums the G and H buckets of sampled position p. By
// construction (Algorithm 2 and the dense build alike) every feature's
// buckets sum to the node totals, which is what lets a parameter-server
// shard recover node statistics from its own feature range alone (§6.3).
func (h *Histogram) FeatureTotals(p int) (g, hs float64) {
	lo, hi := h.Layout.BucketRange(p)
	for i := lo; i < hi; i++ {
		g += h.G[i]
		hs += h.H[i]
	}
	return
}

// Slice returns the flat bucket range [lo, hi) of the G and H arrays,
// aliased, for shard extraction.
func (h *Histogram) Slice(lo, hi int) (g, hs []float64) {
	return h.G[lo:hi], h.H[lo:hi]
}
