package histogram

import (
	"math/rand"
	"testing"

	"dimboost/internal/dataset"
	"dimboost/internal/sketch"
)

// requireBitIdentical asserts exact float64 equality — the binned builds
// promise bit-identity with the float builds, not mere closeness.
func requireBitIdentical(t *testing.T, ctx string, want, got *Histogram) {
	t.Helper()
	for i := range want.G {
		if want.G[i] != got.G[i] {
			t.Fatalf("%s: G[%d] = %v, want %v", ctx, i, got.G[i], want.G[i])
		}
		if want.H[i] != got.H[i] {
			t.Fatalf("%s: H[%d] = %v, want %v", ctx, i, got.H[i], want.H[i])
		}
	}
}

func TestBinnedMatchesFloatBitIdentical(t *testing.T) {
	d, cands, grad, hess := buildFixture(t, 300, 40, 8, 21)
	l, err := NewLayout(AllFeatures(40), cands, 40)
	if err != nil {
		t.Fatal(err)
	}
	rows := allRows(300)
	b := NewBinned(d, l, 4)
	if b.Wide() {
		t.Fatal("10 candidates must not escalate to uint16")
	}
	if b.NumRows() != 300 {
		t.Fatalf("NumRows = %d", b.NumRows())
	}

	hs, hb := New(l), New(l)
	BuildSparse(hs, d, rows, grad, hess)
	BuildSparseBinned(hb, b, rows, grad, hess)
	requireBitIdentical(t, "sparse", hs, hb)

	hd, hdb := New(l), New(l)
	BuildDense(hd, d, rows, grad, hess)
	BuildDenseBinned(hdb, b, rows, grad, hess)
	requireBitIdentical(t, "dense", hd, hdb)

	// Parallel: identical batching and merge order on both paths.
	for _, par := range []int{2, 4} {
		for _, batch := range []int{7, 64} {
			opts := BuildOptions{Parallelism: par, BatchSize: batch}
			pf, pb := New(l), New(l)
			Build(pf, d, rows, grad, hess, opts)
			BuildBinned(pb, b, rows, grad, hess, opts)
			requireBitIdentical(t, "parallel", pf, pb)
		}
	}
}

func TestBinnedSampledSubset(t *testing.T) {
	d, cands, grad, hess := buildFixture(t, 200, 30, 6, 22)
	sampled := []int32{0, 2, 5, 11, 17, 29}
	l, err := NewLayout(sampled, cands, 30)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBinned(d, l, 3)
	// The mirror must keep only sampled-feature entries.
	var kept int64
	for i := 0; i < d.NumRows(); i++ {
		in := d.Row(i)
		for _, f := range in.Indices {
			if l.Pos(f) >= 0 {
				kept++
			}
		}
	}
	if b.NNZ() != kept {
		t.Fatalf("binned NNZ %d, want %d", b.NNZ(), kept)
	}
	rows := allRows(200)
	hs, hb := New(l), New(l)
	BuildSparse(hs, d, rows, grad, hess)
	BuildSparseBinned(hb, b, rows, grad, hess)
	requireBitIdentical(t, "sampled sparse", hs, hb)
}

func TestBinnedBinAccessor(t *testing.T) {
	d, cands, _, _ := buildFixture(t, 150, 25, 5, 23)
	l, err := NewLayout(AllFeatures(25), cands, 25)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBinned(d, l, 2)
	for r := 0; r < d.NumRows(); r++ {
		in := d.Row(r)
		for p := int32(0); p < 25; p++ {
			want := l.Cands[p].Bucket(float64(in.Feature(int(p))))
			if got := b.Bin(r, p); got != want {
				t.Fatalf("row %d feature %d: bin %d, want %d", r, p, got, want)
			}
		}
	}
}

// wideFixture builds a dataset whose feature 0 has >256 buckets (forcing
// uint16 escalation) and whose values frequently land exactly on cut
// boundaries and above the largest cut (clamping).
func wideFixture(t *testing.T, seed int64, rows int) (*dataset.Dataset, []sketch.Candidates) {
	t.Helper()
	const features = 5
	var wideCuts []float64
	for i := -200; i <= 200; i++ {
		wideCuts = append(wideCuts, float64(i)*0.5)
	}
	narrowCuts := []float64{-1.5, 0, 0.25, 2, 8}
	cands := make([]sketch.Candidates, features)
	cands[0] = sketch.FromCuts(wideCuts)
	for f := 1; f < features; f++ {
		cands[f] = sketch.FromCuts(narrowCuts)
	}

	rng := rand.New(rand.NewSource(seed))
	bld := dataset.NewBuilder(features)
	for r := 0; r < rows; r++ {
		var idxs []int32
		var vals []float32
		for f := 0; f < features; f++ {
			if rng.Float64() < 0.5 {
				continue // zero-heavy rows
			}
			cuts := cands[f].Cuts
			var v float64
			switch rng.Intn(3) {
			case 0: // exactly on a cut boundary
				v = cuts[rng.Intn(len(cuts))]
			case 1: // above every cut: clamps into the last bucket
				v = cuts[len(cuts)-1] + 1 + rng.Float64()
			default:
				v = rng.NormFloat64() * 50
			}
			if v == 0 {
				continue // builder drops explicit zeros
			}
			idxs = append(idxs, int32(f))
			vals = append(vals, float32(v))
		}
		if err := bld.Add(idxs, vals, float32(r%2)); err != nil {
			t.Fatal(err)
		}
	}
	return bld.Build(), cands
}

func TestBinnedWideEscalation(t *testing.T) {
	d, cands := wideFixture(t, 31, 250)
	l, err := NewLayout(AllFeatures(5), cands, 5)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBinned(d, l, 4)
	if !b.Wide() {
		t.Fatal("401-bucket feature must escalate bin ids to uint16")
	}
	if b.Bins8 != nil || b.Bins16 == nil {
		t.Fatal("exactly Bins16 must be populated when Wide")
	}
	grad := make([]float64, d.NumRows())
	hess := make([]float64, d.NumRows())
	for i := range grad {
		grad[i] = float64(i%5) - 2
		hess[i] = 0.125 * float64(1+i%4)
	}
	rows := allRows(d.NumRows())
	hs, hb := New(l), New(l)
	BuildSparse(hs, d, rows, grad, hess)
	BuildSparseBinned(hb, b, rows, grad, hess)
	requireBitIdentical(t, "wide sparse", hs, hb)
	hd, hdb := New(l), New(l)
	BuildDense(hd, d, rows, grad, hess)
	BuildDenseBinned(hdb, b, rows, grad, hess)
	requireBitIdentical(t, "wide dense", hd, hdb)
}

func TestBinnedConstructionParallelism(t *testing.T) {
	d, cands, _, _ := buildFixture(t, 500, 60, 10, 24)
	l, err := NewLayout(AllFeatures(60), cands, 60)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewBinned(d, l, 1)
	for _, par := range []int{2, 3, 8, 1000} {
		b := NewBinned(d, l, par)
		if b.NNZ() != ref.NNZ() || len(b.RowPtr) != len(ref.RowPtr) {
			t.Fatalf("parallelism %d: shape mismatch", par)
		}
		for i := range ref.RowPtr {
			if b.RowPtr[i] != ref.RowPtr[i] {
				t.Fatalf("parallelism %d: RowPtr[%d]", par, i)
			}
		}
		for i := range ref.Pos {
			if b.Pos[i] != ref.Pos[i] || b.Bins8[i] != ref.Bins8[i] {
				t.Fatalf("parallelism %d: entry %d", par, i)
			}
		}
	}
}

func TestPoolRecycles(t *testing.T) {
	_, cands, grad, hess := buildFixture(t, 80, 10, 4, 25)
	l, err := NewLayout(AllFeatures(10), cands, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(l)
	h := p.Get()
	if len(h.G) != l.TotalBuckets {
		t.Fatal("pool histogram has wrong shape")
	}
	h.G[0] = 42
	p.Put(h)
	if p.Idle() != 1 {
		t.Fatalf("Idle = %d, want 1", p.Idle())
	}
	h2 := p.Get()
	if h2 != h {
		t.Fatal("pool did not recycle the returned histogram")
	}
	if h2.G[0] != 0 {
		t.Fatal("recycled histogram not zeroed")
	}
	// nil and foreign-layout puts are ignored.
	p.Put(nil)
	other, err := NewLayout(AllFeatures(10), cands, 10)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(New(other))
	if p.Idle() != 0 {
		t.Fatalf("Idle = %d after ignored puts", p.Idle())
	}
	_ = grad
	_ = hess
}

func TestBuildWithPoolMatchesWithout(t *testing.T) {
	d, cands, grad, hess := buildFixture(t, 600, 40, 9, 26)
	l, err := NewLayout(AllFeatures(40), cands, 40)
	if err != nil {
		t.Fatal(err)
	}
	rows := allRows(600)
	b := NewBinned(d, l, 4)
	ref := New(l)
	BuildBinned(ref, b, rows, grad, hess, BuildOptions{Parallelism: 4, BatchSize: 32})
	pool := NewPool(l)
	got := New(l)
	// Two passes through the same pool: the second reuses the first's
	// partials.
	for pass := 0; pass < 2; pass++ {
		got.Reset()
		BuildBinned(got, b, rows, grad, hess, BuildOptions{Parallelism: 4, BatchSize: 32, Pool: pool})
		requireBitIdentical(t, "pooled", ref, got)
	}
	if pool.Idle() == 0 {
		t.Fatal("pool never received the builder partials back")
	}
}
