package histogram

import (
	"sort"

	"dimboost/internal/dataset"
	"dimboost/internal/parallel"
)

// Binned is a quantized CSR mirror of a dataset restricted to a Layout's
// sampled features: every stored nonzero is reduced to its sampled position
// and its histogram bin id, computed once per tree from the split-candidate
// cuts. Histogram construction and node splitting then become pure integer
// arithmetic — no float comparisons and no per-nonzero binary searches —
// which is how production histogram systems (XGBoost, LightGBM) spend the
// dominant GBDT cost.
//
// Bin ids are uint8 when every sampled feature has at most 256 buckets (the
// common case: K split candidates per feature, K ≤ 255) and escalate to
// uint16 otherwise. Exactly one of Bins8/Bins16 is non-nil.
type Binned struct {
	Layout *Layout
	// RowPtr delimits row r's entries as [RowPtr[r], RowPtr[r+1]), exactly
	// like dataset.Dataset but counting only sampled-feature nonzeros.
	RowPtr []int64
	// Pos holds the sampled position (index into Layout.Features) of each
	// entry; ascending within a row.
	Pos []int32
	// Bins8/Bins16 hold the bin id of each entry, parallel to Pos.
	Bins8  []uint8
	Bins16 []uint16
}

// Wide reports whether bin ids needed uint16 escalation.
func (b *Binned) Wide() bool { return b.Bins16 != nil }

// NumRows returns the number of mirrored rows.
func (b *Binned) NumRows() int { return len(b.RowPtr) - 1 }

// NNZ returns the number of stored (sampled-feature) entries.
func (b *Binned) NNZ() int64 { return int64(len(b.Pos)) }

// SizeBytes estimates the in-memory footprint of the binned arrays.
func (b *Binned) SizeBytes() int64 {
	return int64(len(b.RowPtr))*8 + int64(len(b.Pos))*4 + int64(len(b.Bins8)) + int64(len(b.Bins16))*2
}

// Bin returns the bin id of sampled position p in row r; when the row
// stores no entry for p the value is zero and the feature's zero bucket is
// returned. Entries within a row are sorted by position, so lookup is a
// binary search over the row's (few) sampled nonzeros.
func (b *Binned) Bin(r int, p int32) int {
	lo, hi := b.RowPtr[r], b.RowPtr[r+1]
	row := b.Pos[lo:hi]
	i := sort.Search(len(row), func(i int) bool { return row[i] >= p })
	if i < len(row) && row[i] == p {
		if b.Bins16 != nil {
			return int(b.Bins16[lo+int64(i)])
		}
		return int(b.Bins8[lo+int64(i)])
	}
	return b.Layout.Cands[p].ZeroBucket
}

// maxNarrowBuckets is the largest per-feature bucket count representable in
// a uint8 bin id.
const maxNarrowBuckets = 256

// NewBinned quantizes every sampled-feature nonzero of d into its histogram
// bin under the layout, in parallel over row chunks (each row's entries are
// computed independently, so the result is the same at any parallelism;
// values < 1 mean runtime.GOMAXPROCS(0)). The result is reused across all
// nodes and layers of one tree; the quantization pays the per-nonzero binary
// search exactly once instead of once per layer.
func NewBinned(d *dataset.Dataset, l *Layout, parallelism int) *Binned {
	n := d.NumRows()
	b := &Binned{Layout: l, RowPtr: make([]int64, n+1)}
	wide := false
	for p := range l.Features {
		if l.Cands[p].NumBuckets() > maxNarrowBuckets {
			wide = true
			break
		}
	}

	pl := parallel.New(parallelism)

	// Pass 1: count each row's sampled nonzeros into RowPtr[r+1].
	pl.For(n, parallel.RowChunk, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			in := d.Row(r)
			kept := int64(0)
			for _, f := range in.Indices {
				if l.Pos(f) >= 0 {
					kept++
				}
			}
			b.RowPtr[r+1] = kept
		}
	})
	for r := 0; r < n; r++ {
		b.RowPtr[r+1] += b.RowPtr[r]
	}

	// Pass 2: quantize into the flat arrays.
	nnz := b.RowPtr[n]
	b.Pos = make([]int32, nnz)
	if wide {
		b.Bins16 = make([]uint16, nnz)
	} else {
		b.Bins8 = make([]uint8, nnz)
	}
	pl.For(n, parallel.RowChunk, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			in := d.Row(r)
			at := b.RowPtr[r]
			for j, f := range in.Indices {
				p := l.Pos(f)
				if p < 0 {
					continue
				}
				k := l.Cands[p].Bucket(float64(in.Values[j]))
				b.Pos[at] = p
				if wide {
					b.Bins16[at] = uint16(k)
				} else {
					b.Bins8[at] = uint8(k)
				}
				at++
			}
		}
	})
	return b
}
