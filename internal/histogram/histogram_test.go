package histogram

import (
	"math"
	"testing"

	"dimboost/internal/dataset"
	"dimboost/internal/sketch"
)

// buildFixture returns a dataset, per-feature candidates, and per-row
// gradients for tests.
func buildFixture(t testing.TB, rows, features, nnz int, seed int64) (*dataset.Dataset, []sketch.Candidates, []float64, []float64) {
	t.Helper()
	d := dataset.Generate(dataset.SyntheticConfig{NumRows: rows, NumFeatures: features, AvgNNZ: nnz, Seed: seed, Zipf: 1.3})
	set := sketch.NewSet(features, 0.02)
	set.AddDataset(d)
	cands := set.Candidates(10)
	grad := make([]float64, rows)
	hess := make([]float64, rows)
	for i := range grad {
		grad[i] = float64(i%7) - 3   // mix of signs
		hess[i] = 0.1 + float64(i%3) // positive
	}
	return d, cands, grad, hess
}

func allRows(n int) []int32 {
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	return rows
}

func TestLayoutBasics(t *testing.T) {
	_, cands, _, _ := buildFixture(t, 50, 20, 5, 1)
	l, err := NewLayout(AllFeatures(20), cands, 20)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumFeatures() != 20 {
		t.Fatalf("features = %d", l.NumFeatures())
	}
	total := 0
	for p := 0; p < 20; p++ {
		lo, hi := l.BucketRange(p)
		if lo != total {
			t.Fatalf("offset mismatch at %d", p)
		}
		if hi-lo != cands[p].NumBuckets() {
			t.Fatalf("bucket count mismatch at %d", p)
		}
		total = hi
		if l.Pos(int32(p)) != int32(p) {
			t.Fatalf("Pos(%d) = %d", p, l.Pos(int32(p)))
		}
	}
	if l.TotalBuckets != total {
		t.Fatalf("TotalBuckets = %d, want %d", l.TotalBuckets, total)
	}
	if l.SizeBytes() != 2*total*4 {
		t.Fatalf("SizeBytes = %d", l.SizeBytes())
	}
}

func TestLayoutSampledSubset(t *testing.T) {
	_, cands, _, _ := buildFixture(t, 50, 20, 5, 2)
	l, err := NewLayout([]int32{3, 7, 19}, cands, 20)
	if err != nil {
		t.Fatal(err)
	}
	if l.Pos(3) != 0 || l.Pos(7) != 1 || l.Pos(19) != 2 {
		t.Fatal("sampled positions wrong")
	}
	if l.Pos(0) != -1 || l.Pos(4) != -1 {
		t.Fatal("unsampled features must map to -1")
	}
}

func TestLayoutRejectsBadFeatures(t *testing.T) {
	_, cands, _, _ := buildFixture(t, 20, 10, 4, 3)
	if _, err := NewLayout([]int32{5, 3}, cands, 10); err == nil {
		t.Fatal("unsorted features should be rejected")
	}
	if _, err := NewLayout([]int32{3, 3}, cands, 10); err == nil {
		t.Fatal("duplicate features should be rejected")
	}
	if _, err := NewLayout([]int32{3, 10}, cands, 10); err == nil {
		t.Fatal("out-of-range feature should be rejected")
	}
}

// TestSparseEqualsDense is the core §5.1 invariant: Algorithm 2 and the
// traditional dense enumeration build the same histogram.
func TestSparseEqualsDense(t *testing.T) {
	d, cands, grad, hess := buildFixture(t, 300, 40, 8, 4)
	l, err := NewLayout(AllFeatures(40), cands, 40)
	if err != nil {
		t.Fatal(err)
	}
	rows := allRows(300)

	hd := New(l)
	BuildDense(hd, d, rows, grad, hess)
	hs := New(l)
	BuildSparse(hs, d, rows, grad, hess)

	for i := range hd.G {
		if math.Abs(hd.G[i]-hs.G[i]) > 1e-9 {
			t.Fatalf("G[%d]: dense %v vs sparse %v", i, hd.G[i], hs.G[i])
		}
		if math.Abs(hd.H[i]-hs.H[i]) > 1e-9 {
			t.Fatalf("H[%d]: dense %v vs sparse %v", i, hd.H[i], hs.H[i])
		}
	}
}

func TestSparseEqualsDenseWithSampling(t *testing.T) {
	d, cands, grad, hess := buildFixture(t, 200, 30, 6, 5)
	sampled := []int32{0, 2, 5, 11, 17, 29}
	l, err := NewLayout(sampled, cands, 30)
	if err != nil {
		t.Fatal(err)
	}
	rows := allRows(200)
	hd, hs := New(l), New(l)
	BuildDense(hd, d, rows, grad, hess)
	BuildSparse(hs, d, rows, grad, hess)
	for i := range hd.G {
		if math.Abs(hd.G[i]-hs.G[i]) > 1e-9 || math.Abs(hd.H[i]-hs.H[i]) > 1e-9 {
			t.Fatalf("bucket %d mismatch", i)
		}
	}
}

func TestSparseOnRowSubset(t *testing.T) {
	d, cands, grad, hess := buildFixture(t, 100, 25, 5, 6)
	l, _ := NewLayout(AllFeatures(25), cands, 25)
	rows := []int32{5, 17, 42, 43, 99}
	hd, hs := New(l), New(l)
	BuildDense(hd, d, rows, grad, hess)
	BuildSparse(hs, d, rows, grad, hess)
	for i := range hd.G {
		if math.Abs(hd.G[i]-hs.G[i]) > 1e-9 {
			t.Fatalf("bucket %d mismatch on subset", i)
		}
	}
}

// TestFeatureTotalsInvariant checks that every feature's buckets sum to the
// same node totals — the property the two-phase split finding relies on.
func TestFeatureTotalsInvariant(t *testing.T) {
	d, cands, grad, hess := buildFixture(t, 250, 30, 7, 7)
	l, _ := NewLayout(AllFeatures(30), cands, 30)
	rows := allRows(250)
	h := New(l)
	BuildSparse(h, d, rows, grad, hess)

	var wantG, wantH float64
	for _, r := range rows {
		wantG += grad[r]
		wantH += hess[r]
	}
	for p := 0; p < l.NumFeatures(); p++ {
		g, hs := h.FeatureTotals(p)
		if math.Abs(g-wantG) > 1e-9 || math.Abs(hs-wantH) > 1e-9 {
			t.Fatalf("feature %d totals (%v,%v), want (%v,%v)", p, g, hs, wantG, wantH)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	d, cands, grad, hess := buildFixture(t, 1000, 50, 10, 8)
	l, _ := NewLayout(AllFeatures(50), cands, 50)
	rows := allRows(1000)

	seq := New(l)
	BuildSparse(seq, d, rows, grad, hess)

	for _, par := range []int{2, 4, 8} {
		for _, batch := range []int{1, 7, 100, 5000} {
			h := New(l)
			Build(h, d, rows, grad, hess, BuildOptions{Parallelism: par, BatchSize: batch})
			for i := range seq.G {
				if math.Abs(seq.G[i]-h.G[i]) > 1e-8 {
					t.Fatalf("par=%d batch=%d: G[%d] %v vs %v", par, batch, i, h.G[i], seq.G[i])
				}
				if math.Abs(seq.H[i]-h.H[i]) > 1e-8 {
					t.Fatalf("par=%d batch=%d: H[%d] mismatch", par, batch, i)
				}
			}
		}
	}
}

func TestBuildDenseOption(t *testing.T) {
	d, cands, grad, hess := buildFixture(t, 100, 20, 5, 9)
	l, _ := NewLayout(AllFeatures(20), cands, 20)
	rows := allRows(100)
	hd := New(l)
	Build(hd, d, rows, grad, hess, BuildOptions{Dense: true, Parallelism: 3, BatchSize: 11})
	hs := New(l)
	BuildSparse(hs, d, rows, grad, hess)
	for i := range hd.G {
		if math.Abs(hd.G[i]-hs.G[i]) > 1e-9 {
			t.Fatalf("dense-parallel mismatch at %d", i)
		}
	}
}

func TestBuildEmptyRows(t *testing.T) {
	d, cands, grad, hess := buildFixture(t, 10, 5, 2, 10)
	l, _ := NewLayout(AllFeatures(5), cands, 5)
	h := New(l)
	Build(h, d, nil, grad, hess, BuildOptions{Parallelism: 4})
	for i := range h.G {
		if h.G[i] != 0 || h.H[i] != 0 {
			t.Fatal("empty build must stay zero")
		}
	}
}

func TestAddResetClone(t *testing.T) {
	d, cands, grad, hess := buildFixture(t, 60, 15, 4, 11)
	l, _ := NewLayout(AllFeatures(15), cands, 15)
	a, b := New(l), New(l)
	BuildSparse(a, d, allRows(30), grad, hess)
	rows2 := make([]int32, 30)
	for i := range rows2 {
		rows2[i] = int32(30 + i)
	}
	BuildSparse(b, d, rows2, grad, hess)

	sum := a.Clone()
	sum.Add(b)
	whole := New(l)
	BuildSparse(whole, d, allRows(60), grad, hess)
	for i := range whole.G {
		if math.Abs(whole.G[i]-sum.G[i]) > 1e-9 {
			t.Fatalf("partition additivity broken at %d", i)
		}
	}

	sum.Reset()
	for i := range sum.G {
		if sum.G[i] != 0 || sum.H[i] != 0 {
			t.Fatal("Reset left nonzero buckets")
		}
	}
	// Clone must be independent
	c := a.Clone()
	c.G[0] += 5
	if a.G[0] == c.G[0] {
		t.Fatal("Clone aliases parent")
	}
}

func TestSlice(t *testing.T) {
	d, cands, grad, hess := buildFixture(t, 40, 10, 3, 12)
	l, _ := NewLayout(AllFeatures(10), cands, 10)
	h := New(l)
	BuildSparse(h, d, allRows(40), grad, hess)
	lo, hi := l.BucketRange(3)
	g, hs := h.Slice(lo, hi)
	if len(g) != hi-lo || len(hs) != hi-lo {
		t.Fatal("slice lengths")
	}
	var sg float64
	for _, v := range g {
		sg += v
	}
	fg, _ := h.FeatureTotals(3)
	if math.Abs(sg-fg) > 1e-12 {
		t.Fatal("slice does not alias feature range")
	}
}
