package histogram

import (
	"sync"

	"dimboost/internal/obs"
)

var (
	poolOnce   sync.Once
	poolHits   *obs.Counter
	poolMisses *obs.Counter
)

func poolMetrics() (*obs.Counter, *obs.Counter) {
	poolOnce.Do(func() {
		r := obs.Default()
		poolHits = r.Counter("dimboost_train_hist_pool_hits_total", "Histogram pool Gets satisfied from the free list.")
		poolMisses = r.Counter("dimboost_train_hist_pool_misses_total", "Histogram pool Gets that had to allocate.")
	})
	return poolHits, poolMisses
}

// Pool recycles Histograms of one layout. A tree's histogram traffic — one
// per active node per layer plus one partial per builder goroutine per
// Build call — would otherwise allocate a fresh 2×TotalBuckets float64
// pair every time; the pool caps the working set at the peak number of
// simultaneously live histograms per tree. It is safe for concurrent use.
type Pool struct {
	layout *Layout
	cap    int
	mu     sync.Mutex
	free   []*Histogram
}

// NewPool creates an empty pool for the layout with an unbounded free list.
func NewPool(l *Layout) *Pool { return &Pool{layout: l} }

// NewPoolCap creates a pool that parks at most cap idle histograms; Puts
// beyond the cap drop the histogram for the GC instead (eviction). Values
// < 1 mean unbounded. Memory-budgeted callers use a small cap so idle
// histograms cannot pile up beyond the working set.
func NewPoolCap(l *Layout, cap int) *Pool { return &Pool{layout: l, cap: cap} }

// Get returns a zeroed histogram, recycling a previously Put one when
// available.
func (p *Pool) Get() *Histogram {
	p.mu.Lock()
	var h *Histogram
	if n := len(p.free); n > 0 {
		h = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	}
	p.mu.Unlock()
	hits, misses := poolMetrics()
	if h == nil {
		misses.Inc()
		return New(p.layout)
	}
	hits.Inc()
	h.Reset()
	return h
}

// Put returns a histogram to the pool for reuse. The caller must not touch
// h afterwards. nil histograms and histograms of a different layout are
// ignored, so subtraction caches can evict unconditionally.
func (p *Pool) Put(h *Histogram) {
	if h == nil || h.Layout != p.layout {
		return
	}
	p.mu.Lock()
	if p.cap < 1 || len(p.free) < p.cap {
		p.free = append(p.free, h)
	}
	p.mu.Unlock()
}

// Idle returns the number of histograms currently parked in the pool.
func (p *Pool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}
