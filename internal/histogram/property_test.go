package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dimboost/internal/dataset"
	"dimboost/internal/sketch"
)

// TestQuickSparseEqualsDense drives the §5.1 equivalence over randomly
// generated datasets, candidate counts, gradients, and row subsets.
func TestQuickSparseEqualsDense(t *testing.T) {
	f := func(seed int64, rowsRaw, featRaw, nnzRaw, kRaw uint8) bool {
		rows := int(rowsRaw)%120 + 5
		features := int(featRaw)%50 + 2
		nnz := int(nnzRaw)%(features/2+1) + 1
		k := int(kRaw)%15 + 2

		d := dataset.Generate(dataset.SyntheticConfig{
			NumRows: rows, NumFeatures: features, AvgNNZ: nnz, Seed: seed, Zipf: 1.2,
		})
		set := sketch.NewSet(features, 0.05)
		set.AddDataset(d)
		layout, err := NewLayout(AllFeatures(features), set.Candidates(k), features)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed + 1))
		grad := make([]float64, rows)
		hess := make([]float64, rows)
		for i := range grad {
			grad[i] = rng.NormFloat64()
			hess[i] = rng.Float64()
		}
		// random row subset
		var sel []int32
		for i := 0; i < rows; i++ {
			if rng.Float64() < 0.7 {
				sel = append(sel, int32(i))
			}
		}
		hd, hs := New(layout), New(layout)
		BuildDense(hd, d, sel, grad, hess)
		BuildSparse(hs, d, sel, grad, hess)
		for i := range hd.G {
			if math.Abs(hd.G[i]-hs.G[i]) > 1e-9 || math.Abs(hd.H[i]-hs.H[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBinnedEqualsFloat drives the binned/float bit-identity over
// random datasets, gradients, row subsets, parallelism settings, and — via
// crafted cut sets — zero-heavy rows, values exactly on cut boundaries, and
// >256-bucket features that force the uint16 bin-width escalation.
func TestQuickBinnedEqualsFloat(t *testing.T) {
	f := func(seed int64, rowsRaw, featRaw, nnzRaw, parRaw uint8, wide bool) bool {
		rng := rand.New(rand.NewSource(seed))
		var d *dataset.Dataset
		var cands []sketch.Candidates
		var features int
		if wide {
			// crafted fixture: a 401-bucket feature (uint16 escalation),
			// half the candidate draws exactly on cut boundaries, half the
			// rows zero at each feature
			features = 5
			d, cands = wideQuickFixture(rng, int(rowsRaw)%120+5)
		} else {
			rows := int(rowsRaw)%120 + 5
			features = int(featRaw)%50 + 2
			nnz := int(nnzRaw)%(features/2+1) + 1
			d = dataset.Generate(dataset.SyntheticConfig{
				NumRows: rows, NumFeatures: features, AvgNNZ: nnz, Seed: seed, Zipf: 1.2,
			})
			set := sketch.NewSet(features, 0.05)
			set.AddDataset(d)
			cands = set.Candidates(int(featRaw)%15 + 2)
		}
		layout, err := NewLayout(AllFeatures(features), cands, features)
		if err != nil {
			return false
		}
		n := d.NumRows()
		grad := make([]float64, n)
		hess := make([]float64, n)
		for i := range grad {
			grad[i] = rng.NormFloat64()
			hess[i] = rng.Float64()
		}
		var sel []int32
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.7 {
				sel = append(sel, int32(i))
			}
		}
		b := NewBinned(d, layout, int(parRaw)%4+1)
		if b.Wide() != wide {
			return false
		}

		exact := func(x, y *Histogram) bool {
			for i := range x.G {
				if x.G[i] != y.G[i] || x.H[i] != y.H[i] {
					return false
				}
			}
			return true
		}
		hs, hb := New(layout), New(layout)
		BuildSparse(hs, d, sel, grad, hess)
		BuildSparseBinned(hb, b, sel, grad, hess)
		if !exact(hs, hb) {
			return false
		}
		hd, hdb := New(layout), New(layout)
		BuildDense(hd, d, sel, grad, hess)
		BuildDenseBinned(hdb, b, sel, grad, hess)
		if !exact(hd, hdb) {
			return false
		}
		opts := BuildOptions{Parallelism: int(parRaw)%4 + 1, BatchSize: int(rowsRaw)%40 + 1, Pool: NewPool(layout)}
		pf, pb := New(layout), New(layout)
		Build(pf, d, sel, grad, hess, opts)
		BuildBinned(pb, b, sel, grad, hess, opts)
		return exact(pf, pb)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(97))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// wideQuickFixture mirrors wideFixture for the property test: feature 0
// gets 401 buckets, rows are zero-heavy, and values often sit exactly on
// cuts or above the largest cut.
func wideQuickFixture(rng *rand.Rand, rows int) (*dataset.Dataset, []sketch.Candidates) {
	const features = 5
	var wideCuts []float64
	for i := -200; i <= 200; i++ {
		wideCuts = append(wideCuts, float64(i)*0.5)
	}
	cands := make([]sketch.Candidates, features)
	cands[0] = sketch.FromCuts(wideCuts)
	for f := 1; f < features; f++ {
		cands[f] = sketch.FromCuts([]float64{-1.5, 0, 0.25, 2, 8})
	}
	bld := dataset.NewBuilder(features)
	for r := 0; r < rows; r++ {
		var idxs []int32
		var vals []float32
		for f := 0; f < features; f++ {
			if rng.Float64() < 0.5 {
				continue
			}
			cuts := cands[f].Cuts
			var v float64
			switch rng.Intn(3) {
			case 0:
				v = cuts[rng.Intn(len(cuts))]
			case 1:
				v = cuts[len(cuts)-1] + 1 + rng.Float64()
			default:
				v = rng.NormFloat64() * 50
			}
			if v == 0 {
				continue
			}
			idxs = append(idxs, int32(f))
			vals = append(vals, float32(v))
		}
		if err := bld.Add(idxs, vals, float32(r%2)); err != nil {
			panic(err)
		}
	}
	return bld.Build(), cands
}

// TestQuickSubtractionIdentity: parent − left child == right child, for
// random splits.
func TestQuickSubtractionIdentity(t *testing.T) {
	f := func(seed int64, pivotRaw uint8) bool {
		const rows, features = 80, 20
		d := dataset.Generate(dataset.SyntheticConfig{
			NumRows: rows, NumFeatures: features, AvgNNZ: 6, Seed: seed, Zipf: 1.2,
		})
		set := sketch.NewSet(features, 0.05)
		set.AddDataset(d)
		layout, err := NewLayout(AllFeatures(features), set.Candidates(8), features)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed + 2))
		grad := make([]float64, rows)
		hess := make([]float64, rows)
		for i := range grad {
			grad[i] = rng.NormFloat64()
			hess[i] = rng.Float64()
		}
		pivot := int32(pivotRaw)%rows + 1
		var left, right, all []int32
		for i := int32(0); i < rows; i++ {
			all = append(all, i)
			if i < pivot {
				left = append(left, i)
			} else {
				right = append(right, i)
			}
		}
		parent, lh, want := New(layout), New(layout), New(layout)
		BuildSparse(parent, d, all, grad, hess)
		BuildSparse(lh, d, left, grad, hess)
		BuildSparse(want, d, right, grad, hess)
		got := New(layout)
		got.SetSub(parent, lh)
		for i := range got.G {
			if math.Abs(got.G[i]-want.G[i]) > 1e-9 || math.Abs(got.H[i]-want.H[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(98))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
