package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dimboost/internal/dataset"
	"dimboost/internal/sketch"
)

// TestQuickSparseEqualsDense drives the §5.1 equivalence over randomly
// generated datasets, candidate counts, gradients, and row subsets.
func TestQuickSparseEqualsDense(t *testing.T) {
	f := func(seed int64, rowsRaw, featRaw, nnzRaw, kRaw uint8) bool {
		rows := int(rowsRaw)%120 + 5
		features := int(featRaw)%50 + 2
		nnz := int(nnzRaw)%(features/2+1) + 1
		k := int(kRaw)%15 + 2

		d := dataset.Generate(dataset.SyntheticConfig{
			NumRows: rows, NumFeatures: features, AvgNNZ: nnz, Seed: seed, Zipf: 1.2,
		})
		set := sketch.NewSet(features, 0.05)
		set.AddDataset(d)
		layout, err := NewLayout(AllFeatures(features), set.Candidates(k), features)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed + 1))
		grad := make([]float64, rows)
		hess := make([]float64, rows)
		for i := range grad {
			grad[i] = rng.NormFloat64()
			hess[i] = rng.Float64()
		}
		// random row subset
		var sel []int32
		for i := 0; i < rows; i++ {
			if rng.Float64() < 0.7 {
				sel = append(sel, int32(i))
			}
		}
		hd, hs := New(layout), New(layout)
		BuildDense(hd, d, sel, grad, hess)
		BuildSparse(hs, d, sel, grad, hess)
		for i := range hd.G {
			if math.Abs(hd.G[i]-hs.G[i]) > 1e-9 || math.Abs(hd.H[i]-hs.H[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSubtractionIdentity: parent − left child == right child, for
// random splits.
func TestQuickSubtractionIdentity(t *testing.T) {
	f := func(seed int64, pivotRaw uint8) bool {
		const rows, features = 80, 20
		d := dataset.Generate(dataset.SyntheticConfig{
			NumRows: rows, NumFeatures: features, AvgNNZ: 6, Seed: seed, Zipf: 1.2,
		})
		set := sketch.NewSet(features, 0.05)
		set.AddDataset(d)
		layout, err := NewLayout(AllFeatures(features), set.Candidates(8), features)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed + 2))
		grad := make([]float64, rows)
		hess := make([]float64, rows)
		for i := range grad {
			grad[i] = rng.NormFloat64()
			hess[i] = rng.Float64()
		}
		pivot := int32(pivotRaw)%rows + 1
		var left, right, all []int32
		for i := int32(0); i < rows; i++ {
			all = append(all, i)
			if i < pivot {
				left = append(left, i)
			} else {
				right = append(right, i)
			}
		}
		parent, lh, want := New(layout), New(layout), New(layout)
		BuildSparse(parent, d, all, grad, hess)
		BuildSparse(lh, d, left, grad, hess)
		BuildSparse(want, d, right, grad, hess)
		got := New(layout)
		got.SetSub(parent, lh)
		for i := range got.G {
			if math.Abs(got.G[i]-want.G[i]) > 1e-9 || math.Abs(got.H[i]-want.H[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(98))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
