package histogram

import (
	"sync"
	"testing"
)

// TestPoolCapEvicts pins NewPoolCap's eviction contract: Puts beyond the cap
// drop the histogram instead of growing the free list.
func TestPoolCapEvicts(t *testing.T) {
	_, cands, _, _ := buildFixture(t, 80, 10, 4, 27)
	l, err := NewLayout(AllFeatures(10), cands, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPoolCap(l, 2)
	hs := []*Histogram{p.Get(), p.Get(), p.Get(), p.Get()}
	for _, h := range hs {
		p.Put(h)
	}
	if p.Idle() != 2 {
		t.Fatalf("Idle = %d, want cap 2", p.Idle())
	}
	// Unbounded when cap < 1.
	u := NewPoolCap(l, 0)
	for _, h := range hs {
		u.Put(h)
	}
	if u.Idle() != 4 {
		t.Fatalf("unbounded Idle = %d, want 4", u.Idle())
	}
}

// TestPoolNoAliasingUnderConcurrency hammers one small-cap pool from many
// goroutines and asserts the core safety property behind every pooled build:
// a Get never returns a histogram that another goroutine still holds. The
// tiny cap forces constant evictions and fresh allocations, interleaving the
// free list's push/pop under contention. Each holder writes a unique tag into
// its histogram and verifies it before Put — any aliasing shows up as a
// clobbered tag (and as a race under -race).
func TestPoolNoAliasingUnderConcurrency(t *testing.T) {
	_, cands, _, _ := buildFixture(t, 80, 10, 4, 28)
	l, err := NewLayout(AllFeatures(10), cands, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPoolCap(l, 2)

	var mu sync.Mutex
	live := make(map[*Histogram]int)

	const workers = 8
	const rounds = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				h := p.Get()
				mu.Lock()
				if prev, ok := live[h]; ok {
					mu.Unlock()
					t.Errorf("Get returned a histogram still held by goroutine %d", prev)
					return
				}
				live[h] = w
				mu.Unlock()

				tag := float64(w*rounds + i + 1)
				if h.G[0] != 0 || h.H[0] != 0 {
					t.Errorf("Get returned a non-zeroed histogram")
				}
				h.G[0], h.H[0] = tag, -tag
				// A second touch after other goroutines have had a chance
				// to Get/Put: aliasing would clobber the tag.
				if h.G[0] != tag || h.H[0] != -tag {
					t.Errorf("histogram mutated while held: G[0]=%v H[0]=%v want %v/%v", h.G[0], h.H[0], tag, -tag)
				}

				mu.Lock()
				delete(live, h)
				mu.Unlock()
				p.Put(h)
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentBuildsShareCappedPool runs several full binned builds at once
// against a single cap-forced pool and requires every result to stay
// bit-identical to an unpooled reference — partial-histogram buffers recycled
// across concurrent builders must never leak accumulations between builds.
func TestConcurrentBuildsShareCappedPool(t *testing.T) {
	d, cands, grad, hess := buildFixture(t, 600, 40, 9, 29)
	l, err := NewLayout(AllFeatures(40), cands, 40)
	if err != nil {
		t.Fatal(err)
	}
	rows := allRows(600)
	b := NewBinned(d, l, 4)
	ref := New(l)
	BuildBinned(ref, b, rows, grad, hess, BuildOptions{Parallelism: 2, BatchSize: 32})

	// Cap far below the partial traffic of builds×workers so the pool is
	// constantly evicting and re-allocating while builders run.
	pool := NewPoolCap(l, 1)
	const builds = 6
	results := make([]*Histogram, builds)
	var wg sync.WaitGroup
	for i := 0; i < builds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got := New(l)
			BuildBinned(got, b, rows, grad, hess, BuildOptions{Parallelism: 2, BatchSize: 32, Pool: pool})
			results[i] = got
		}(i)
	}
	wg.Wait()
	for _, got := range results {
		requireBitIdentical(t, "concurrent pooled build", ref, got)
	}
	if pool.Idle() > 1 {
		t.Fatalf("Idle = %d exceeds cap 1", pool.Idle())
	}
}
