package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"dimboost/internal/core"
	"dimboost/internal/dataset"
	"dimboost/internal/loadgen"
	"dimboost/internal/loss"
	"dimboost/internal/predict"
	"dimboost/internal/serve"
	"dimboost/internal/tree"
)

// ServeBenchResult is the overload scenario's record: the measured
// capacity of a deliberately small admission window, then an open-loop
// run at ~4× that capacity. A healthy admission layer keeps accepted
// latency near the unloaded service time and sheds the excess with
// 429/503 + Retry-After; a broken one lets latency and in-flight work
// grow without bound.
type ServeBenchResult struct {
	Rows, Features, Trees    int
	BatchPerRequest          int
	MaxConcurrent            int
	QueueDepth               int
	QueueTimeout             time.Duration
	ServiceTime              time.Duration // unloaded per-request latency (closed loop)
	CapacityRPS              float64       // MaxConcurrent / ServiceTime
	OfferedRPS               float64       // open-loop arrival rate
	Load                     *loadgen.Result
	ScoresVerified           bool
	QuotaShed429             int // sheds from the second, quota-limited pass
	QuotaRetryAfterOnAllShed bool
	Coalesce                 *CoalesceBenchResult
}

// CoalesceBenchResult records the paired coalescing pass: the same
// open-loop stream of distinct single-instance requests driven at the same
// offered rate against the same server configuration, first with
// server-side coalescing off, then on. The model is a wide standardized
// ensemble — the regime where scoring a row alone pays the full
// absent-feature negative-prefix pass that batched tiles share.
type CoalesceBenchResult struct {
	Trees, Features int
	SoloRowCost     time.Duration // engine-only per-row cost scored alone
	TiledRowCost    time.Duration // engine-only per-row cost in full batches
	OfferedRPS      float64
	Duration        time.Duration
	Window          time.Duration
	Off, On         *loadgen.Result
	// ThroughputRatio is accepted throughput on/off at identical offered
	// load; P99Ratio is accepted p99 off/on. Either ≥2 satisfies the
	// acceptance gate.
	ThroughputRatio float64
	P99Ratio        float64
	Stats           serve.CoalesceStats // from the coalesced pass
	MeanOccupancy   float64
	CoalesceShed    int64 // ErrCoalesceFull rejections (must be 0)
	BitIdentical    bool  // coalesced HTTP scores == solo engine scores, Float64bits
}

// ServeBench trains a model, fronts it with a small admission window, and
// drives open-loop load past capacity — the serving-tier counterpart of
// the training fault-injection scenarios. Two passes: a saturation pass
// (limiter shedding 503s) and a quota pass (a starved tenant shedding
// 429s), both recording the Retry-After contract.
func ServeBench(w io.Writer, scale Scale) (*ServeBenchResult, error) {
	rows := scale.rows(6000)
	const features = 10_000
	d := genderScaled(rows, features, 53)
	train, test := d.Split(0.9)

	cfg := expConfig()
	cfg.NumTrees = 20
	cfg.MaxDepth = 6
	model, err := core.Train(train, cfg)
	if err != nil {
		return nil, err
	}

	// Request body: a fixed batch of real test rows. The batch is large on
	// purpose: per-request service time must dominate client/scheduler
	// overhead, or an in-process open-loop generator on a small host can
	// never actually reach overload (arrival intervals drop below what a
	// ticker delivers).
	batch := 1024
	if test.NumRows() < batch {
		batch = test.NumRows()
	}
	type jsonInstance struct {
		Indices []int32   `json:"indices"`
		Values  []float32 `json:"values"`
	}
	var req struct {
		Instances []jsonInstance `json:"instances"`
	}
	want := make([]float64, batch)
	for i := 0; i < batch; i++ {
		in := test.Row(i)
		req.Instances = append(req.Instances, jsonInstance{Indices: in.Indices, Values: in.Values})
		want[i] = model.Predict(in)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}

	res := &ServeBenchResult{
		Rows: train.NumRows(), Features: features, Trees: len(model.Trees),
		BatchPerRequest: batch,
		MaxConcurrent:   2, QueueDepth: 8, QueueTimeout: 100 * time.Millisecond,
	}
	h := serve.New(model)
	h.Limiter = serve.NewLimiter(serve.AdmissionConfig{
		MaxConcurrent: res.MaxConcurrent,
		QueueDepth:    res.QueueDepth,
		QueueTimeout:  res.QueueTimeout,
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	url := srv.URL + "/predict"

	// Correctness gate: one scored response must match the model exactly
	// before any throughput number means anything.
	scores, err := postPredict(url, body)
	if err != nil {
		return nil, err
	}
	for i := range want {
		if math.Abs(scores[i]-want[i]) > 1e-9 {
			return nil, fmt.Errorf("serve bench: score %d = %v, want %v", i, scores[i], want[i])
		}
	}
	res.ScoresVerified = true

	// Calibrate: closed-loop sequential requests give the unloaded service
	// time, hence the admission window's capacity.
	const calibration = 15
	start := time.Now()
	for i := 0; i < calibration; i++ {
		if _, err := postPredict(url, body); err != nil {
			return nil, err
		}
	}
	res.ServiceTime = time.Since(start) / calibration
	res.CapacityRPS = float64(res.MaxConcurrent) / res.ServiceTime.Seconds()

	// Open-loop overload at ~4× capacity, clamped so the arrival ticker
	// stays in a range it can actually deliver.
	res.OfferedRPS = 4 * res.CapacityRPS
	if res.OfferedRPS > 5000 {
		res.OfferedRPS = 5000
	}
	duration := time.Duration(float64(3*time.Second) * float64(scale))
	if duration < 300*time.Millisecond {
		duration = 300 * time.Millisecond
	}
	load, err := loadgen.Run(context.Background(), loadgen.Config{
		URL:      url,
		Rate:     res.OfferedRPS,
		Duration: duration,
		Body:     body,
	})
	if err != nil {
		return nil, err
	}
	res.Load = load

	// Quota pass: a tenant with a near-empty bucket against the same
	// server; everything past the burst sheds as 429 + Retry-After.
	h.Quota = serve.NewQuotas(serve.QuotaConfig{Rate: 1, Burst: 3})
	qload, err := loadgen.Run(context.Background(), loadgen.Config{
		URL:      url,
		Rate:     40,
		Duration: duration / 2,
		Body:     body,
		Tenant:   "starved",
	})
	if err != nil {
		return nil, err
	}
	h.Quota = nil
	res.QuotaShed429 = qload.Statuses[http.StatusTooManyRequests]
	res.QuotaRetryAfterOnAllShed = qload.RetryAfterOnAllSheds

	res.Coalesce, err = coalescePass(scale)
	if err != nil {
		return nil, fmt.Errorf("coalesce pass: %w", err)
	}

	section(w, fmt.Sprintf("Serving — overload admission (%d×%d train, %d trees, %d rows/request)",
		res.Rows, res.Features, res.Trees, res.BatchPerRequest))
	fmt.Fprintf(w, "admission window: %d concurrent + %d queued, %s queue timeout\n",
		res.MaxConcurrent, res.QueueDepth, res.QueueTimeout)
	fmt.Fprintf(w, "unloaded service time %s  →  capacity ≈ %.0f req/s; offered %.0f req/s for %s\n",
		fmtDur(res.ServiceTime), res.CapacityRPS, res.OfferedRPS, duration.Round(time.Millisecond))
	fmt.Fprintf(w, "%-28s %12s\n", "sent", fmt.Sprint(load.Sent))
	fmt.Fprintf(w, "%-28s %12s\n", "accepted (200)", fmt.Sprintf("%d (%.0f req/s)", load.Accepted, load.Throughput))
	fmt.Fprintf(w, "%-28s %12s\n", "shed (429/503)", fmt.Sprintf("%d (%.1f%%)", load.Shed, 100*load.ShedRate))
	fmt.Fprintf(w, "%-28s %12s\n", "errors", fmt.Sprint(load.Errors))
	fmt.Fprintf(w, "%-28s %12s %12s %12s\n", "accepted latency", fmtDur(load.P50), fmtDur(load.P95), fmtDur(load.P99))
	fmt.Fprintf(w, "%-28s %12v\n", "Retry-After on every shed", load.RetryAfterOnAllSheds)
	fmt.Fprintf(w, "quota pass (1 req/s, burst 3): %d×429, Retry-After on all: %v\n",
		res.QuotaShed429, res.QuotaRetryAfterOnAllShed)
	fmt.Fprintln(w, "scores verified against the model before load; only 200s enter the percentiles.")

	c := res.Coalesce
	section(w, fmt.Sprintf("Serving — request coalescing (%d standardized trees, %d features, 1-instance requests)",
		c.Trees, c.Features))
	fmt.Fprintf(w, "engine per-row cost: %s solo, %s tiled (%.2fx)\n",
		fmtDur(c.SoloRowCost), fmtDur(c.TiledRowCost), float64(c.SoloRowCost)/float64(c.TiledRowCost))
	fmt.Fprintf(w, "offered %.0f req/s for %s, window %s, identical admission both passes\n",
		c.OfferedRPS, c.Duration.Round(time.Millisecond), c.Window)
	fmt.Fprintf(w, "%-18s %14s %14s\n", "", "coalesce off", "coalesce on")
	fmt.Fprintf(w, "%-18s %14s %14s\n", "accepted",
		fmt.Sprintf("%d (%.0f/s)", c.Off.Accepted, c.Off.Throughput),
		fmt.Sprintf("%d (%.0f/s)", c.On.Accepted, c.On.Throughput))
	fmt.Fprintf(w, "%-18s %14s %14s\n", "shed",
		fmt.Sprintf("%d (%.1f%%)", c.Off.Shed, 100*c.Off.ShedRate),
		fmt.Sprintf("%d (%.1f%%)", c.On.Shed, 100*c.On.ShedRate))
	fmt.Fprintf(w, "%-18s %14s %14s\n", "p50 / p99",
		fmtDur(c.Off.P50)+" / "+fmtDur(c.Off.P99),
		fmtDur(c.On.P50)+" / "+fmtDur(c.On.P99))
	fmt.Fprintf(w, "throughput ratio %.2fx, p99 ratio %.2fx; mean batch occupancy %.2f "+
		"(flushes: %d full, %d linger, %d solo, %d drain), coalescer sheds %d\n",
		c.ThroughputRatio, c.P99Ratio, c.MeanOccupancy,
		c.Stats.Full, c.Stats.Linger, c.Stats.Solo, c.Stats.Drain, c.CoalesceShed)
	fmt.Fprintf(w, "coalesced scores bit-identical to solo under concurrent submission: %v\n", c.BitIdentical)
	return res, nil
}

// randServeTree grows one full depth-6 tree over a standardized feature
// space: 63 splits with thresholds drawn from the data distribution (unit
// normal, so roughly half are negative) and exactly 64 leaves — the
// bitvector backend's cap, i.e. the densest tree that backend serves.
func randServeTree(rng *rand.Rand, features int) *tree.Tree {
	const depth = 6
	t := tree.New(depth + 1)
	var grow func(node, d int)
	grow = func(node, d int) {
		if d > depth {
			t.SetLeaf(node, math.Round(rng.NormFloat64()*1000)/1000)
			return
		}
		t.SetSplit(node, int32(rng.Intn(features)), math.Round(rng.NormFloat64()*100)/100, rng.Float64())
		grow(tree.Left(node), d+1)
		grow(tree.Right(node), d+1)
	}
	grow(0, 1)
	return t
}

// standardizedInstance draws one sparse row of zero-mean features — the
// shape that pays the engine's full per-row absent-feature pass when
// scored alone.
func standardizedInstance(rng *rand.Rand, features int) dataset.Instance {
	n := 6 + rng.Intn(10)
	seen := map[int32]bool{}
	var idx []int32
	for len(idx) < n {
		f := int32(rng.Intn(features))
		if !seen[f] {
			seen[f] = true
			idx = append(idx, f)
		}
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(math.Round(rng.NormFloat64()*1000) / 1000)
	}
	return dataset.Instance{Indices: idx, Values: vals}
}

// coalescePass drives the same open-loop stream of distinct
// single-instance requests at the same offered rate against the same
// admission configuration twice — coalescing off, then on — and then
// holds a concurrent sample of coalesced responses to bit-equality with
// solo engine scores.
func coalescePass(scale Scale) (*CoalesceBenchResult, error) {
	// A wide standardized ensemble: solo scoring pays the absent-feature
	// negative-prefix pass per row; coalesced tiles pay it once per 16
	// rows. Trees scale down for smoke runs (floor 200).
	trees := scale.rows(4096)
	const features = 5000
	rng := rand.New(rand.NewSource(71))
	model := &core.Model{Loss: loss.Squared, BaseScore: 0.5}
	for i := 0; i < trees; i++ {
		model.Trees = append(model.Trees, randServeTree(rng, features))
	}
	eng, err := model.Compiled()
	if err != nil {
		return nil, err
	}
	if eng.Backend() != predict.BackendBitvector {
		return nil, fmt.Errorf("expected bitvector backend, got %v", eng.Backend())
	}

	// Distinct single-instance request bodies, round-robined by the
	// generator the way independent clients would arrive.
	const distinct = 256
	instances := make([]dataset.Instance, distinct)
	bodies := make([][]byte, distinct)
	want := make([]uint64, distinct)
	type jsonInstance struct {
		Indices []int32   `json:"indices"`
		Values  []float32 `json:"values"`
	}
	for i := range bodies {
		instances[i] = standardizedInstance(rng, features)
		b, err := json.Marshal(map[string][]jsonInstance{"instances": {
			{Indices: instances[i].Indices, Values: instances[i].Values},
		}})
		if err != nil {
			return nil, err
		}
		bodies[i] = b
		want[i] = math.Float64bits(eng.Predict(instances[i]))
	}

	res := &CoalesceBenchResult{Trees: trees, Features: features, Window: 500 * time.Microsecond}

	// Engine-only calibration: per-row cost alone vs in full batches.
	start := time.Now()
	for _, in := range instances {
		eng.Predict(in)
	}
	res.SoloRowCost = time.Since(start) / distinct
	out := make([]float64, distinct)
	start = time.Now()
	eng.PredictInstancesInto(instances, out)
	res.TiledRowCost = time.Since(start) / distinct

	admission := serve.AdmissionConfig{MaxConcurrent: 8, QueueDepth: 128, QueueTimeout: 50 * time.Millisecond}
	// Bound the generator's connection pool: thousands of 1-instance
	// requests in flight against a saturated server must queue client-side
	// for a connection, not exhaust file descriptors and turn the
	// measurement into kernel accept-retry behavior. Both passes share the
	// same bound.
	client := &http.Client{
		Timeout: 60 * time.Second,
		Transport: &http.Transport{
			MaxConnsPerHost:     256,
			MaxIdleConnsPerHost: 256,
		},
	}
	runPass := func(coalesce bool, rate float64, dur time.Duration) (*loadgen.Result, *serve.Handler, func(), error) {
		h := serve.New(model)
		h.Limiter = serve.NewLimiter(admission)
		if coalesce {
			h.EnableCoalescing(serve.CoalesceConfig{Window: res.Window})
		}
		srv := httptest.NewServer(h)
		cleanup := func() { srv.Close(); h.Close() }
		load, err := loadgen.Run(context.Background(), loadgen.Config{
			URL:      srv.URL + "/predict",
			Rate:     rate,
			Duration: dur,
			Bodies:   bodies,
			Client:   client,
		})
		if err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		return load, h, cleanup, nil
	}

	// Calibrate the uncoalesced request latency closed-loop, then offer
	// ~2.5× that capacity to both passes: past solo capacity, within reach
	// of the coalesced configuration.
	{
		h := serve.New(model)
		srv := httptest.NewServer(h)
		const calibration = 10
		start := time.Now()
		for i := 0; i < calibration; i++ {
			if _, err := postPredict(srv.URL+"/predict", bodies[i%distinct]); err != nil {
				srv.Close()
				return nil, err
			}
		}
		soloLatency := time.Since(start) / calibration
		srv.Close()
		res.OfferedRPS = 2.5 / soloLatency.Seconds()
	}
	if res.OfferedRPS > 6000 {
		res.OfferedRPS = 6000
	}
	res.Duration = time.Duration(float64(3*time.Second) * float64(scale))
	if res.Duration < 400*time.Millisecond {
		res.Duration = 400 * time.Millisecond
	}

	offLoad, _, offCleanup, err := runPass(false, res.OfferedRPS, res.Duration)
	if err != nil {
		return nil, err
	}
	offCleanup()
	res.Off = offLoad

	onLoad, onH, onCleanup, err := runPass(true, res.OfferedRPS, res.Duration)
	if err != nil {
		return nil, err
	}
	res.On = onLoad
	res.Stats = onH.Coalescer().Stats()
	res.MeanOccupancy = res.Stats.MeanOccupancy()
	res.CoalesceShed = res.Stats.Rejected

	if res.Off.Throughput > 0 {
		res.ThroughputRatio = res.On.Throughput / res.Off.Throughput
	}
	if res.On.P99 > 0 {
		res.P99Ratio = float64(res.Off.P99) / float64(res.On.P99)
	}

	// Bit-identity gate, on the still-running coalesced server under
	// concurrent submission: every coalesced HTTP score must equal the
	// solo engine score exactly.
	res.BitIdentical = true
	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		bitErr  error
		next    int
		workers = 4
	)
	srv := httptest.NewServer(onH)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= distinct {
					return
				}
				scores, err := postPredict(srv.URL+"/predict", bodies[i])
				mu.Lock()
				if err != nil {
					bitErr = err
					res.BitIdentical = false
				} else if len(scores) != 1 || math.Float64bits(scores[0]) != want[i] {
					res.BitIdentical = false
					bitErr = fmt.Errorf("body %d: coalesced score %v != solo bits", i, scores)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	srv.Close()
	onCleanup()
	if bitErr != nil {
		return nil, bitErr
	}
	return res, nil
}

// postPredict sends one scoring request and returns the scores.
func postPredict(url string, body []byte) ([]float64, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("predict: HTTP %d: %s", resp.StatusCode, b)
	}
	var out struct {
		Scores []float64 `json:"scores"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Scores, nil
}
