package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"time"

	"dimboost/internal/core"
	"dimboost/internal/loadgen"
	"dimboost/internal/serve"
)

// ServeBenchResult is the overload scenario's record: the measured
// capacity of a deliberately small admission window, then an open-loop
// run at ~4× that capacity. A healthy admission layer keeps accepted
// latency near the unloaded service time and sheds the excess with
// 429/503 + Retry-After; a broken one lets latency and in-flight work
// grow without bound.
type ServeBenchResult struct {
	Rows, Features, Trees    int
	BatchPerRequest          int
	MaxConcurrent            int
	QueueDepth               int
	QueueTimeout             time.Duration
	ServiceTime              time.Duration // unloaded per-request latency (closed loop)
	CapacityRPS              float64       // MaxConcurrent / ServiceTime
	OfferedRPS               float64       // open-loop arrival rate
	Load                     *loadgen.Result
	ScoresVerified           bool
	QuotaShed429             int // sheds from the second, quota-limited pass
	QuotaRetryAfterOnAllShed bool
}

// ServeBench trains a model, fronts it with a small admission window, and
// drives open-loop load past capacity — the serving-tier counterpart of
// the training fault-injection scenarios. Two passes: a saturation pass
// (limiter shedding 503s) and a quota pass (a starved tenant shedding
// 429s), both recording the Retry-After contract.
func ServeBench(w io.Writer, scale Scale) (*ServeBenchResult, error) {
	rows := scale.rows(6000)
	const features = 10_000
	d := genderScaled(rows, features, 53)
	train, test := d.Split(0.9)

	cfg := expConfig()
	cfg.NumTrees = 20
	cfg.MaxDepth = 6
	model, err := core.Train(train, cfg)
	if err != nil {
		return nil, err
	}

	// Request body: a fixed batch of real test rows. The batch is large on
	// purpose: per-request service time must dominate client/scheduler
	// overhead, or an in-process open-loop generator on a small host can
	// never actually reach overload (arrival intervals drop below what a
	// ticker delivers).
	batch := 1024
	if test.NumRows() < batch {
		batch = test.NumRows()
	}
	type jsonInstance struct {
		Indices []int32   `json:"indices"`
		Values  []float32 `json:"values"`
	}
	var req struct {
		Instances []jsonInstance `json:"instances"`
	}
	want := make([]float64, batch)
	for i := 0; i < batch; i++ {
		in := test.Row(i)
		req.Instances = append(req.Instances, jsonInstance{Indices: in.Indices, Values: in.Values})
		want[i] = model.Predict(in)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}

	res := &ServeBenchResult{
		Rows: train.NumRows(), Features: features, Trees: len(model.Trees),
		BatchPerRequest: batch,
		MaxConcurrent:   2, QueueDepth: 8, QueueTimeout: 100 * time.Millisecond,
	}
	h := serve.New(model)
	h.Limiter = serve.NewLimiter(serve.AdmissionConfig{
		MaxConcurrent: res.MaxConcurrent,
		QueueDepth:    res.QueueDepth,
		QueueTimeout:  res.QueueTimeout,
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	url := srv.URL + "/predict"

	// Correctness gate: one scored response must match the model exactly
	// before any throughput number means anything.
	scores, err := postPredict(url, body)
	if err != nil {
		return nil, err
	}
	for i := range want {
		if math.Abs(scores[i]-want[i]) > 1e-9 {
			return nil, fmt.Errorf("serve bench: score %d = %v, want %v", i, scores[i], want[i])
		}
	}
	res.ScoresVerified = true

	// Calibrate: closed-loop sequential requests give the unloaded service
	// time, hence the admission window's capacity.
	const calibration = 15
	start := time.Now()
	for i := 0; i < calibration; i++ {
		if _, err := postPredict(url, body); err != nil {
			return nil, err
		}
	}
	res.ServiceTime = time.Since(start) / calibration
	res.CapacityRPS = float64(res.MaxConcurrent) / res.ServiceTime.Seconds()

	// Open-loop overload at ~4× capacity, clamped so the arrival ticker
	// stays in a range it can actually deliver.
	res.OfferedRPS = 4 * res.CapacityRPS
	if res.OfferedRPS > 5000 {
		res.OfferedRPS = 5000
	}
	duration := time.Duration(float64(3*time.Second) * float64(scale))
	if duration < 300*time.Millisecond {
		duration = 300 * time.Millisecond
	}
	load, err := loadgen.Run(context.Background(), loadgen.Config{
		URL:      url,
		Rate:     res.OfferedRPS,
		Duration: duration,
		Body:     body,
	})
	if err != nil {
		return nil, err
	}
	res.Load = load

	// Quota pass: a tenant with a near-empty bucket against the same
	// server; everything past the burst sheds as 429 + Retry-After.
	h.Quota = serve.NewQuotas(serve.QuotaConfig{Rate: 1, Burst: 3})
	qload, err := loadgen.Run(context.Background(), loadgen.Config{
		URL:      url,
		Rate:     40,
		Duration: duration / 2,
		Body:     body,
		Tenant:   "starved",
	})
	if err != nil {
		return nil, err
	}
	h.Quota = nil
	res.QuotaShed429 = qload.Statuses[http.StatusTooManyRequests]
	res.QuotaRetryAfterOnAllShed = qload.RetryAfterOnAllSheds

	section(w, fmt.Sprintf("Serving — overload admission (%d×%d train, %d trees, %d rows/request)",
		res.Rows, res.Features, res.Trees, res.BatchPerRequest))
	fmt.Fprintf(w, "admission window: %d concurrent + %d queued, %s queue timeout\n",
		res.MaxConcurrent, res.QueueDepth, res.QueueTimeout)
	fmt.Fprintf(w, "unloaded service time %s  →  capacity ≈ %.0f req/s; offered %.0f req/s for %s\n",
		fmtDur(res.ServiceTime), res.CapacityRPS, res.OfferedRPS, duration.Round(time.Millisecond))
	fmt.Fprintf(w, "%-28s %12s\n", "sent", fmt.Sprint(load.Sent))
	fmt.Fprintf(w, "%-28s %12s\n", "accepted (200)", fmt.Sprintf("%d (%.0f req/s)", load.Accepted, load.Throughput))
	fmt.Fprintf(w, "%-28s %12s\n", "shed (429/503)", fmt.Sprintf("%d (%.1f%%)", load.Shed, 100*load.ShedRate))
	fmt.Fprintf(w, "%-28s %12s\n", "errors", fmt.Sprint(load.Errors))
	fmt.Fprintf(w, "%-28s %12s %12s %12s\n", "accepted latency", fmtDur(load.P50), fmtDur(load.P95), fmtDur(load.P99))
	fmt.Fprintf(w, "%-28s %12v\n", "Retry-After on every shed", load.RetryAfterOnAllSheds)
	fmt.Fprintf(w, "quota pass (1 req/s, burst 3): %d×429, Retry-After on all: %v\n",
		res.QuotaShed429, res.QuotaRetryAfterOnAllShed)
	fmt.Fprintln(w, "scores verified against the model before load; only 200s enter the percentiles.")
	return res, nil
}

// postPredict sends one scoring request and returns the scores.
func postPredict(url string, body []byte) ([]float64, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("predict: HTTP %d: %s", resp.StatusCode, b)
	}
	var out struct {
		Scores []float64 `json:"scores"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Scores, nil
}
