package experiments

import (
	"fmt"
	"io"
	"time"

	"dimboost/internal/cluster"
	"dimboost/internal/core"
	"dimboost/internal/dataset"
	"dimboost/internal/loss"
	"dimboost/internal/pca"
)

// Table4Row is one parameter-server-count measurement.
type Table4Row struct {
	Servers     int
	ModeledTime time.Duration
	CommTime    time.Duration
}

// Table4 reproduces Table 4: the impact of the parameter-server count p on
// end-to-end run time (the paper scales p from 5 to 50 and sees 2.2×).
// Fewer servers concentrate histogram traffic on fewer nodes, inflating the
// per-node β term of the cost model.
func Table4(w io.Writer, scale Scale) ([]Table4Row, error) {
	d := dataset.Generate(dataset.SyntheticConfig{
		NumRows: scale.rows(5_000), NumFeatures: 330_000, AvgNNZ: 107, NoiseStd: 0.3, Zipf: 1.4, Seed: 41,
	})
	cfg := expConfig()
	cfg.NumTrees = 3
	cfg.MaxDepth = 4

	section(w, fmt.Sprintf("Table 4 — impact of parameter servers (Gender-like %d×%d, w=10)", d.NumRows(), d.NumFeatures))
	fmt.Fprintf(w, "%10s %16s %16s\n", "#servers", "modeled total", "modeled comm")
	var out []Table4Row
	for _, p := range []int{2, 5, 10} {
		ccfg := cluster.DefaultConfig(10, p)
		ccfg.Config = cfg
		ccfg.SerializeCompute = true
		res, err := cluster.Train(d, ccfg)
		if err != nil {
			return nil, err
		}
		row := Table4Row{
			Servers:     p,
			ModeledTime: res.Stats.Compute.Total() + res.Stats.ModeledCommTime,
			CommTime:    res.Stats.ModeledCommTime,
		}
		out = append(out, row)
		fmt.Fprintf(w, "%10d %16s %16s\n", p, fmtDur(row.ModeledTime), fmtDur(row.CommTime))
	}
	fmt.Fprintln(w, "paper shape: time falls as servers are added (38 → 23 → 17 min for p = 5/20/50).")
	return out, nil
}

// Table5Row is one feature-dimension measurement.
type Table5Row struct {
	Features  int
	TestError float64
	AUC       float64
}

// Table5 reproduces Table 5: test error against the feature dimension,
// training on the first 10K/100K/330K features of a Gender-shaped dataset.
// Signal-bearing features span the whole index range, so truncation loses
// real information.
func Table5(w io.Writer, scale Scale) ([]Table5Row, error) {
	full := dataset.Generate(dataset.GenderLike(scale.rows(20_000), 51))
	train, test := full.Split(0.9)

	cfg := expConfig()
	cfg.NumTrees = 15
	cfg.MaxDepth = 6

	section(w, fmt.Sprintf("Table 5 — impact of feature dimension (Gender-like, %d rows)", full.NumRows()))
	fmt.Fprintf(w, "%12s %12s %10s\n", "#features", "test error", "auc")
	var out []Table5Row
	for _, m := range []int{10_000, 100_000, 330_000} {
		trainM, testM := train.SelectFeatures(m), test.SelectFeatures(m)
		model, err := core.Train(trainM, cfg)
		if err != nil {
			return nil, err
		}
		preds := model.PredictBatch(testM)
		auc, _ := loss.AUC(testM.Labels, preds)
		row := Table5Row{Features: m, TestError: loss.ErrorRate(testM.Labels, preds), AUC: auc}
		out = append(out, row)
		fmt.Fprintf(w, "%12d %12.4f %10.4f\n", m, row.TestError, row.AUC)
	}
	fmt.Fprintln(w, "paper shape: error falls with dimensionality (0.3014 → 0.2714 → 0.2514).")
	return out, nil
}

// Table6Result compares PCA-reduced training against direct training.
type Table6Result struct {
	PCATime      time.Duration
	ReducedTrain time.Duration
	ReducedError float64
	DirectTrain  time.Duration
	DirectError  float64
}

// Table6 reproduces Table 6: reduce the dimensionality with PCA, train on
// the projection, and compare against training directly on the sparse
// high-dimensional data. The paper reduced Gender 330K→10K with Spark
// MLlib's PCA (64 min) and lost accuracy (0.2785 vs 0.2514); here the
// feature space is 50K→128 with the same conclusion: the PCA step costs
// more than it saves and the projection loses information.
func Table6(w io.Writer, scale Scale) (*Table6Result, error) {
	d := dataset.Generate(dataset.SyntheticConfig{
		NumRows: scale.rows(8_000), NumFeatures: 50_000, AvgNNZ: 107, NoiseStd: 0.3, Zipf: 1.4, Seed: 61,
	})
	train, test := d.Split(0.9)
	cfg := expConfig()
	cfg.NumTrees = 10
	cfg.MaxDepth = 5

	res := &Table6Result{}

	start := time.Now()
	model, err := core.Train(train, cfg)
	if err != nil {
		return nil, err
	}
	res.DirectTrain = time.Since(start)
	res.DirectError = loss.ErrorRate(test.Labels, model.PredictBatch(test))

	start = time.Now()
	fit, err := pca.Fit(train, 128, pca.Options{Seed: 62})
	if err != nil {
		return nil, err
	}
	redTrain, err := fit.Transform(train)
	if err != nil {
		return nil, err
	}
	redTest, err := fit.Transform(test)
	if err != nil {
		return nil, err
	}
	res.PCATime = time.Since(start)

	start = time.Now()
	redModel, err := core.Train(redTrain, cfg)
	if err != nil {
		return nil, err
	}
	res.ReducedTrain = time.Since(start)
	res.ReducedError = loss.ErrorRate(redTest.Labels, redModel.PredictBatch(redTest))

	section(w, fmt.Sprintf("Table 6 — impact of dimension reduction (%d×%d → 128 dims)", train.NumRows(), train.NumFeatures))
	fmt.Fprintf(w, "%-14s %12s %14s %12s %12s\n", "method", "PCA time", "training time", "total", "test error")
	fmt.Fprintf(w, "%-14s %12s %14s %12s %12.4f\n", "with PCA", fmtDur(res.PCATime), fmtDur(res.ReducedTrain),
		fmtDur(res.PCATime+res.ReducedTrain), res.ReducedError)
	fmt.Fprintf(w, "%-14s %12s %14s %12s %12.4f\n", "without PCA", "0", fmtDur(res.DirectTrain),
		fmtDur(res.DirectTrain), res.DirectError)
	fmt.Fprintln(w, "paper shape: PCA dominates the budget (64+9 vs 17 min) and degrades accuracy (0.2785 vs 0.2514).")
	return res, nil
}
