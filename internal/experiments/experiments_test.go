package experiments

import (
	"io"
	"strings"
	"testing"

	"dimboost/internal/simnet"
)

// quick is a tiny scale for smoke tests.
const quick = Scale(0.04)

func TestTable1ShapesHold(t *testing.T) {
	var sb strings.Builder
	rows := Table1(&sb)
	if len(rows) != 6*4 {
		t.Fatalf("%d rows", len(rows))
	}
	byKey := map[[2]int]Table1Row{}
	for _, r := range rows {
		byKey[[2]int{int(r.System), r.Workers}] = r
	}
	for _, w := range []int{16, 32, 64} {
		dim := byKey[[2]int{int(simnet.DimBoost), w}]
		xgb := byKey[[2]int{int(simnet.XGBoost), w}]
		ml := byKey[[2]int{int(simnet.MLlib), w}]
		for _, c := range []struct{ a, b float64 }{
			{dim.PaperCost, xgb.PaperCost},
			{xgb.PaperCost, ml.PaperCost},
			{dim.SimCost, xgb.SimCost},
			{xgb.SimCost, ml.SimCost},
		} {
			if c.a >= c.b {
				t.Fatalf("w=%d: ordering violated (%v >= %v)", w, c.a, c.b)
			}
		}
		if dim.Steps != 1 || ml.Steps != 1 {
			t.Fatalf("w=%d: one-step systems report %d/%d steps", w, dim.Steps, ml.Steps)
		}
	}
	// LightGBM at 50 workers (not a power of two) costs more than at 64
	l50 := byKey[[2]int{int(simnet.LightGBM), 50}]
	l64 := byKey[[2]int{int(simnet.LightGBM), 64}]
	if l50.PaperCost <= l64.PaperCost {
		t.Fatalf("lightgbm non-pow2 penalty missing: %v <= %v", l50.PaperCost, l64.PaperCost)
	}
	if !strings.Contains(sb.String(), "DimBoost") {
		t.Fatal("report missing system names")
	}
}

func TestTable3Quick(t *testing.T) {
	res, err := Table3(io.Discard, quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.RootSparse >= res.RootDense {
		t.Fatalf("sparsity-aware build (%v) not faster than dense (%v)", res.RootSparse, res.RootDense)
	}
	if float64(res.RootDense)/float64(res.RootSparse) < 5 {
		t.Fatalf("dense/sparse ratio %.1f implausibly small for 33K features",
			float64(res.RootDense)/float64(res.RootSparse))
	}
	if res.LastLayerIndexed >= res.LastLayerNoIndex {
		t.Fatalf("node-to-instance index (%v) not faster than full scans (%v)",
			res.LastLayerIndexed, res.LastLayerNoIndex)
	}
	if res.TreeCompressed >= res.TreeBase {
		t.Fatalf("all optimizations (%v) not faster than none (%v)", res.TreeCompressed, res.TreeBase)
	}
	if res.ErrCompressed > res.ErrFullPrec+0.08 {
		t.Fatalf("compression damaged accuracy: %.4f vs %.4f", res.ErrCompressed, res.ErrFullPrec)
	}
}

func TestFig1Quick(t *testing.T) {
	rows, err := Fig1(io.Discard, quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// XGBoost grows with dimensionality much faster than DimBoost
	xgbGrowth := float64(rows[len(rows)-1].XGBoost) / float64(rows[0].XGBoost)
	dimGrowth := float64(rows[len(rows)-1].DimBoost) / float64(rows[0].DimBoost)
	if xgbGrowth <= dimGrowth {
		t.Fatalf("growth: xgboost %.1fx vs dimboost %.1fx — shape inverted", xgbGrowth, dimGrowth)
	}
	// and is slower at the largest dimension
	last := rows[len(rows)-1]
	if last.XGBoost <= last.DimBoost {
		t.Fatalf("at 40K features xgboost (%v) should exceed dimboost (%v)", last.XGBoost, last.DimBoost)
	}
}

func TestFig12Quick(t *testing.T) {
	rows, err := Fig12(io.Discard, RCV1, quick)
	if err != nil {
		t.Fatal(err)
	}
	times := map[string]float64{}
	for _, r := range rows {
		if r.Skipped == "" {
			times[r.System.String()] = r.ModeledTime.Seconds()
			if len(r.Convergence) == 0 {
				t.Fatalf("%s: no convergence events", r.System)
			}
		}
	}
	if len(times) != 5 {
		t.Fatalf("expected 5 systems on rcv1, got %d", len(times))
	}
	if times["DimBoost"] >= times["MLlib"] {
		t.Fatalf("dimboost (%v) not faster than mllib (%v)", times["DimBoost"], times["MLlib"])
	}
	if times["DimBoost"] >= times["XGBoost"] {
		t.Fatalf("dimboost (%v) not faster than xgboost (%v)", times["DimBoost"], times["XGBoost"])
	}
}

func TestFig12GenderSkips(t *testing.T) {
	rows, err := Fig12(io.Discard, Gender, Scale(0.02))
	if err != nil {
		t.Fatal(err)
	}
	skipped := 0
	ran := 0
	for _, r := range rows {
		if r.Skipped != "" {
			skipped++
		} else {
			ran++
		}
	}
	if skipped != 2 || ran != 3 {
		t.Fatalf("gender: %d skipped / %d ran, want 2/3", skipped, ran)
	}
}

func TestFig12UnknownDataset(t *testing.T) {
	if _, err := Fig12(io.Discard, "bogus", quick); err == nil {
		t.Fatal("expected error")
	}
}

func TestTable4Quick(t *testing.T) {
	rows, err := Table4(io.Discard, Scale(0.02))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// more servers -> less (or equal) modeled comm
	if rows[len(rows)-1].CommTime > rows[0].CommTime {
		t.Fatalf("comm did not shrink with servers: %v -> %v", rows[0].CommTime, rows[len(rows)-1].CommTime)
	}
}

func TestTable5Quick(t *testing.T) {
	rows, err := Table5(io.Discard, Scale(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// AUC improves with dimensionality (error is noisier at small scale)
	if rows[2].AUC <= rows[0].AUC {
		t.Fatalf("AUC did not improve with features: %.4f -> %.4f", rows[0].AUC, rows[2].AUC)
	}
}

func TestTable6Quick(t *testing.T) {
	res, err := Table6(io.Discard, Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if res.PCATime+res.ReducedTrain <= res.DirectTrain {
		t.Fatalf("PCA pipeline (%v) should cost more than direct training (%v)",
			res.PCATime+res.ReducedTrain, res.DirectTrain)
	}
}

func TestFig13Quick(t *testing.T) {
	rows, err := Fig13(io.Discard, Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	// per-worker compute shrinks as workers grow (rcv1 sweep, where data
	// work dominates the per-node histogram floor even at test scale)
	if rows[2].Compute >= rows[0].Compute {
		t.Fatalf("rcv1 compute did not shrink: w=1 %v vs w=5 %v", rows[0].Compute, rows[2].Compute)
	}
	for _, r := range rows {
		if r.Compute <= 0 || r.Comm <= 0 {
			t.Fatalf("row %+v missing decomposition", r)
		}
	}
}

func TestFig14Quick(t *testing.T) {
	rows, err := Fig14(io.Discard, quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	var dim, xgb float64
	for _, r := range rows {
		switch r.System.String() {
		case "DimBoost":
			dim = r.ModeledTime.Seconds()
		case "XGBoost":
			xgb = r.ModeledTime.Seconds()
		}
	}
	if dim >= xgb {
		t.Fatalf("low-dim: dimboost (%v) not faster than xgboost (%v)", dim, xgb)
	}
}

func TestA1(t *testing.T) {
	rows := A1(io.Discard)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// bias must be far below the one-shot step size
		if r.MeanBias > r.WorstStep/5 {
			t.Fatalf("bits=%d: bias %v vs step %v — not unbiased", r.Bits, r.MeanBias, r.WorstStep)
		}
	}
	// steps shrink with more bits
	if rows[len(rows)-1].WorstStep >= rows[0].WorstStep {
		t.Fatal("error step should shrink with bit width")
	}
}

func TestCommQuick(t *testing.T) {
	res, err := Comm(io.Discard, quick)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ExactVerified {
		t.Fatal("exact wire gate did not run")
	}
	if len(res.Levels) != 3 {
		t.Fatalf("%d levels", len(res.Levels))
	}
	full := res.Levels[len(res.Levels)-1]
	if full.RatioVsRaw < CommMinRatio {
		t.Fatalf("byte reduction %.2fx below the %.0fx floor", full.RatioVsRaw, CommMinRatio)
	}
	if full.EncodingBytes["sparse/encode"] == 0 {
		t.Fatal("fully compressed level encoded no sparse vectors")
	}
	if res.Levels[0].EncodingBytes["sparse/encode"] != 0 {
		t.Fatalf("raw level encoded sparse vectors: %v", res.Levels[0].EncodingBytes)
	}
}

func TestServeBenchQuick(t *testing.T) {
	res, err := ServeBench(io.Discard, quick)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ScoresVerified {
		t.Fatal("scores not verified")
	}
	l := res.Load
	if l.Sent == 0 {
		t.Fatal("no load sent")
	}
	if l.Accepted+l.Shed+l.Errors != l.Sent {
		t.Fatalf("accepted %d + shed %d + errors %d != sent %d", l.Accepted, l.Shed, l.Errors, l.Sent)
	}
	if l.Shed > 0 && !l.RetryAfterOnAllSheds {
		t.Fatal("a shed response was missing Retry-After")
	}
	if l.Accepted > 0 && (l.P50 <= 0 || l.P99 < l.P50) {
		t.Fatalf("bad percentiles: p50 %s p99 %s", l.P50, l.P99)
	}
	if res.QuotaShed429 == 0 || !res.QuotaRetryAfterOnAllShed {
		t.Fatalf("quota pass: %d 429s, retry-after %v", res.QuotaShed429, res.QuotaRetryAfterOnAllShed)
	}
	c := res.Coalesce
	if c == nil {
		t.Fatal("no coalesce pass")
	}
	if !c.BitIdentical {
		t.Fatal("coalesced scores not bit-identical to solo")
	}
	if c.MeanOccupancy <= 1 {
		t.Fatalf("mean batch occupancy %.2f, want > 1 — coalescing never merged anything", c.MeanOccupancy)
	}
	if c.CoalesceShed != 0 {
		t.Fatalf("%d requests shed by the coalescer's pending bound", c.CoalesceShed)
	}
	if c.On.Accepted == 0 || c.Off.Accepted == 0 {
		t.Fatalf("paired passes accepted %d/%d requests", c.Off.Accepted, c.On.Accepted)
	}
}
