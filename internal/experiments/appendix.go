package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"dimboost/internal/compress"
)

// A1Row is one bit-width measurement of the quantization study.
type A1Row struct {
	Bits         uint
	MeanBias     float64 // |E[decode] − value| averaged over probes
	WorstStep    float64 // worst-case one-shot error bound
	CompressionX float64 // ratio vs float32
}

// A1 empirically verifies Appendix A.1: the stochastic fixed-point
// compressor is unbiased — the expectation of a decoded histogram entry
// equals the original — at every supported bit width, while the worst-case
// one-shot error shrinks as 2^-(d-1).
func A1(w io.Writer) []A1Row {
	rng := rand.New(rand.NewSource(71))
	values := make([]float64, 64)
	for i := range values {
		values[i] = rng.NormFloat64() * 10
	}
	const trials = 3000

	section(w, "Appendix A.1 — unbiasedness of low-precision gradient histograms")
	fmt.Fprintf(w, "%6s %14s %14s %14s\n", "bits", "mean |bias|", "max step", "compression")
	var out []A1Row
	for _, bits := range compress.SupportedBits {
		enc := compress.NewEncoder(72)
		sums := make([]float64, len(values))
		var step float64
		for t := 0; t < trials; t++ {
			c, err := enc.Encode(values, bits)
			if err != nil {
				panic(err)
			}
			step = c.MaxError()
			for i, v := range compress.Decode(c) {
				sums[i] += v
			}
		}
		var bias float64
		for i, v := range values {
			bias += math.Abs(sums[i]/trials - v)
		}
		bias /= float64(len(values))
		row := A1Row{Bits: bits, MeanBias: bias, WorstStep: step, CompressionX: 32 / float64(bits)}
		out = append(out, row)
		fmt.Fprintf(w, "%6d %14.6f %14.6f %13.1fx\n", bits, row.MeanBias, row.WorstStep, row.CompressionX)
	}
	fmt.Fprintln(w, "bias stays near zero at every width (E[q''] = q); only the variance grows as bits shrink.")
	return out
}
