package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"dimboost/internal/core"
	"dimboost/internal/predict"
)

// PredictResult reports the serving-path comparison: the same trained
// ensemble scored with the interpreted tree walk, the compiled
// structure-of-arrays engine, and the QuickScorer-style bitvector engine,
// single-threaded and parallel.
type PredictResult struct {
	Rows     int
	Features int
	Trees    int
	AvgNNZ   float64
	// Backend is what automatic selection picks for this ensemble.
	Backend          string
	CompileSoA       time.Duration
	CompileBitvector time.Duration
	EngineFeatures   int // compact feature-space size after remapping
	EngineNodes      int
	EngineConditions int // bitvector backend's compiled condition count
	// Per-pass wall time over the full batch (best of three passes).
	Interpreted       time.Duration
	SoASerial         time.Duration
	SoAParallel       time.Duration
	BitvectorSerial   time.Duration
	BitvectorParallel time.Duration
}

// Speedup is the headline number: the bitvector engine against the SoA
// engine, both single-worker at equal batch size.
func (r *PredictResult) Speedup() float64 {
	return float64(r.SoASerial) / float64(r.BitvectorSerial)
}

// Predict benchmarks the inference path the way §5 benchmarks histogram
// construction: a Gender-shaped high-dimensional sparse dataset, a trained
// production-depth ensemble, and the same predictions produced by the naïve
// per-node binary search, the SoA engine, and the bitvector engine. All
// three are verified bit-identical before timings are reported.
func Predict(w io.Writer, scale Scale) (*PredictResult, error) {
	rows := scale.rows(20_000)
	const features = 33_000
	d := genderScaled(rows, features, 47)
	train, test := d.Split(0.9)

	cfg := expConfig()
	// 512 trees fills exactly one of the bitvector backend's cache blocks;
	// depth 6 keeps every tree within a 32-bit leaf mask. At this size the
	// SoA engine's node arrays outgrow L2 while the bitvector condition
	// stream stays resident — the regime the backend is built for.
	cfg.NumTrees = 512
	cfg.MaxDepth = 6
	model, err := core.Train(train, cfg)
	if err != nil {
		return nil, err
	}

	compileStart := time.Now()
	soa, err := predict.CompileBackend(model.Trees, model.BaseScore, predict.BackendSoA)
	if err != nil {
		return nil, err
	}
	compileSoA := time.Since(compileStart)
	compileStart = time.Now()
	bv, err := predict.CompileBackend(model.Trees, model.BaseScore, predict.BackendBitvector)
	if err != nil {
		return nil, err
	}
	compileBV := time.Since(compileStart)
	auto, err := model.Compiled()
	if err != nil {
		return nil, err
	}

	res := &PredictResult{
		Rows: test.NumRows(), Features: test.NumFeatures, Trees: len(model.Trees),
		AvgNNZ: test.AvgNNZ(), Backend: auto.Backend().String(),
		CompileSoA: compileSoA, CompileBitvector: compileBV,
		EngineFeatures: soa.NumFeatures(), EngineNodes: soa.NumNodes(),
		EngineConditions: bv.NumConditions(),
	}

	want := model.PredictBatchInterpreted(test)
	for _, eng := range []*predict.Engine{soa, bv} {
		got := eng.PredictBatch(test)
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				return nil, fmt.Errorf("predict: row %d %s engine %v != interpreted %v",
					i, eng.Backend(), got[i], want[i])
			}
		}
	}

	res.Interpreted = bestOf(3, func() { model.PredictBatchInterpreted(test) })
	out := make([]float64, test.NumRows())
	// The serial head-to-head runs as interleaved rounds — one SoA pass then
	// one bitvector pass per round, minimum over five rounds each — so slow
	// host drift (noisy neighbors, frequency steps) lands on both engines
	// instead of on whichever was measured second.
	soa.Workers = 1
	bv.Workers = 1
	res.SoASerial, res.BitvectorSerial = pairedBest(5,
		func() { soa.PredictBatchInto(test, out) },
		func() { bv.PredictBatchInto(test, out) })
	soa.Workers = 0
	res.SoAParallel = bestOf(3, func() { soa.PredictBatchInto(test, out) })
	bv.Workers = 0
	res.BitvectorParallel = bestOf(3, func() { bv.PredictBatchInto(test, out) })

	section(w, fmt.Sprintf("Serving — interpreted vs SoA vs bitvector inference (%d×%d, %d trees, z=%.0f)",
		res.Rows, res.Features, res.Trees, res.AvgNNZ))
	fmt.Fprintf(w, "engines: %d nodes / %d bitvector conditions, %d/%d features referenced, compiled in %s (soa) / %s (bitvector); auto picks %s\n",
		res.EngineNodes, res.EngineConditions, res.EngineFeatures, res.Features,
		fmtDur(res.CompileSoA), fmtDur(res.CompileBitvector), res.Backend)
	fmt.Fprintf(w, "%-24s %12s %12s\n", "path", "batch time", "speedup")
	fmt.Fprintf(w, "%-24s %12s %12s\n", "interpreted", fmtDur(res.Interpreted), "1.0x")
	for _, row := range []struct {
		name string
		d    time.Duration
	}{
		{"soa (1 worker)", res.SoASerial},
		{"soa (parallel)", res.SoAParallel},
		{"bitvector (1 worker)", res.BitvectorSerial},
		{"bitvector (parallel)", res.BitvectorParallel},
	} {
		fmt.Fprintf(w, "%-24s %12s %11.1fx\n", row.name, fmtDur(row.d),
			float64(res.Interpreted)/float64(row.d))
	}
	fmt.Fprintf(w, "bitvector vs soa (1 worker, equal batch): %.2fx\n", res.Speedup())
	fmt.Fprintln(w, "predictions verified bit-identical across all rows and engines before timing.")
	return res, nil
}

// bestOf runs f n times and returns the fastest wall time.
func bestOf(n int, f func()) time.Duration {
	best := time.Duration(math.MaxInt64)
	for i := 0; i < n; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// pairedBest interleaves n timed passes of f and g round-robin and returns
// each one's fastest wall time. Interleaving keeps the two measurement
// windows co-located, so machine-wide slowdowns bias a ratio of the two
// results far less than two back-to-back bestOf calls would.
func pairedBest(n int, f, g func()) (bestF, bestG time.Duration) {
	bestF, bestG = time.Duration(math.MaxInt64), time.Duration(math.MaxInt64)
	for i := 0; i < n; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < bestF {
			bestF = d
		}
		start = time.Now()
		g()
		if d := time.Since(start); d < bestG {
			bestG = d
		}
	}
	return bestF, bestG
}
