package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"dimboost/internal/core"
	"dimboost/internal/predict"
)

// PredictResult reports the serving-path comparison: the same trained
// ensemble scored with the interpreted tree walk versus the compiled
// structure-of-arrays engine, single-threaded and parallel.
type PredictResult struct {
	Rows     int
	Features int
	Trees    int
	AvgNNZ   float64
	Compile  time.Duration
	// Per-pass wall time over the full batch (best of three passes).
	Interpreted      time.Duration
	CompiledSerial   time.Duration
	CompiledParallel time.Duration
	// EngineFeatures is the compact feature-space size after remapping.
	EngineFeatures int
	EngineNodes    int
}

// Predict benchmarks the inference path the way §5 benchmarks histogram
// construction: a Gender-shaped high-dimensional sparse dataset, a trained
// ensemble, and the same predictions produced by the naïve per-node binary
// search versus the precomputed (compiled) layout. Predictions are verified
// bit-identical before timings are reported.
func Predict(w io.Writer, scale Scale) (*PredictResult, error) {
	rows := scale.rows(20_000)
	const features = 33_000
	d := genderScaled(rows, features, 47)
	train, test := d.Split(0.9)

	cfg := expConfig()
	cfg.NumTrees = 20
	cfg.MaxDepth = 6
	model, err := core.Train(train, cfg)
	if err != nil {
		return nil, err
	}

	compileStart := time.Now()
	eng, err := predict.Compile(model.Trees, model.BaseScore)
	if err != nil {
		return nil, err
	}
	res := &PredictResult{
		Rows: test.NumRows(), Features: test.NumFeatures, Trees: len(model.Trees),
		AvgNNZ: test.AvgNNZ(), Compile: time.Since(compileStart),
		EngineFeatures: eng.NumFeatures(), EngineNodes: eng.NumNodes(),
	}

	want := model.PredictBatchInterpreted(test)
	got := eng.PredictBatch(test)
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			return nil, fmt.Errorf("predict: row %d compiled %v != interpreted %v", i, got[i], want[i])
		}
	}

	res.Interpreted = bestOf(3, func() { model.PredictBatchInterpreted(test) })
	out := make([]float64, test.NumRows())
	eng.Workers = 1
	res.CompiledSerial = bestOf(3, func() { eng.PredictBatchInto(test, out) })
	eng.Workers = 0
	res.CompiledParallel = bestOf(3, func() { eng.PredictBatchInto(test, out) })

	section(w, fmt.Sprintf("Serving — interpreted vs compiled inference (%d×%d, %d trees, z=%.0f)",
		res.Rows, res.Features, res.Trees, res.AvgNNZ))
	fmt.Fprintf(w, "engine: %d nodes, %d/%d features referenced, compiled in %s\n",
		res.EngineNodes, res.EngineFeatures, res.Features, fmtDur(res.Compile))
	fmt.Fprintf(w, "%-22s %12s %12s\n", "path", "batch time", "speedup")
	fmt.Fprintf(w, "%-22s %12s %12s\n", "interpreted", fmtDur(res.Interpreted), "1.0x")
	fmt.Fprintf(w, "%-22s %12s %11.1fx\n", "compiled (1 worker)", fmtDur(res.CompiledSerial),
		float64(res.Interpreted)/float64(res.CompiledSerial))
	fmt.Fprintf(w, "%-22s %12s %11.1fx\n", "compiled (parallel)", fmtDur(res.CompiledParallel),
		float64(res.Interpreted)/float64(res.CompiledParallel))
	fmt.Fprintln(w, "predictions verified bit-identical across all rows before timing.")
	return res, nil
}

// bestOf runs f n times and returns the fastest wall time.
func bestOf(n int, f func()) time.Duration {
	best := time.Duration(math.MaxInt64)
	for i := 0; i < n; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}
