package experiments

import (
	"fmt"
	"io"

	"dimboost/internal/simnet"
)

// Table1Row is one (system, workers) cell of the communication cost model.
type Table1Row struct {
	System    simnet.System
	Workers   int
	Steps     int
	PaperCost float64 // closed form of Table 1, seconds
	SimCost   float64 // schedule simulation, seconds
}

// Table1 reproduces Table 1: the communication cost of aggregating one
// gradient histogram under each system's collective, both as the paper's
// closed forms and as a discrete simulation of the actual communication
// schedules (which also drive the live implementations in internal/comm).
// The histogram size is the paper's GradHist row for the Gender dataset:
// h = 2·K·M·σ·4 bytes with K=20, M=330K, σ=1 ≈ 52.8 MB.
func Table1(w io.Writer) []Table1Row {
	params := simnet.GigabitEthernet()
	const h = 2 * 20 * 330_000 * 4 // bytes

	section(w, "Table 1 — communication cost of histogram aggregation (h = 52.8 MB, 1 GbE)")
	fmt.Fprintf(w, "%-10s %8s %7s %14s %14s\n", "system", "workers", "steps", "paper model", "simulated")
	var rows []Table1Row
	for _, workers := range []int{4, 8, 16, 32, 50, 64} {
		for _, sys := range simnet.Systems {
			sched := simnet.ScheduleFor(sys, workers, h)
			row := Table1Row{
				System:    sys,
				Workers:   workers,
				Steps:     sched.NumRounds(),
				PaperCost: simnet.PaperCost(sys, workers, h, params),
				SimCost:   simnet.Evaluate(sched, params),
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-10s %8d %7d %13.3fs %13.3fs\n",
				row.System, row.Workers, row.Steps, row.PaperCost, row.SimCost)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "paper shape: DimBoost ≈ LightGBM(pow2) < XGBoost < MLlib for large h;")
	fmt.Fprintln(w, "LightGBM doubles off powers of two (w = 50).")
	return rows
}
