// Package experiments regenerates every table and figure of the paper's
// evaluation (§7 and Appendix A) at laptop scale. Each experiment prints a
// human-readable table mirroring the paper's and returns structured rows for
// the benchmark harness.
//
// Scaling: the paper ran 0.7M–122M row datasets on a 50-node cluster; these
// experiments run the same code paths on synthetic datasets matched in
// dimensionality and sparsity (Table 2 shapes) but with row counts that fit
// one machine. Communication is executed over the in-process transports and
// *priced* with the paper's own α/β/γ cost model (§3) for 1 Gb Ethernet, so
// "modeled time" columns are comparable across systems the way the paper's
// wall-clock numbers are. Absolute values differ from the paper; the shape —
// who wins and by roughly what factor — is the reproduction target.
package experiments

import (
	"fmt"
	"io"
	"time"

	"dimboost/internal/core"
	"dimboost/internal/dataset"
)

// Scale multiplies dataset row counts; 1.0 is the default laptop scale,
// smaller values give quick smoke runs for `go test -bench`.
type Scale float64

func (s Scale) rows(base int) int {
	n := int(float64(base) * float64(s))
	if n < 200 {
		n = 200
	}
	return n
}

// Parallelism, when positive, overrides the training pool size every
// experiment config uses (dimboost-bench -parallelism). Timings change;
// trained models do not — the pool is bit-deterministic at any size.
var Parallelism int

// expConfig is the shared hyper-parameter protocol of the experiments
// (§7.1, with K and depth trimmed to laptop scale).
func expConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.NumTrees = 5
	cfg.MaxDepth = 5
	cfg.NumCandidates = 12
	cfg.Parallelism = 1 // the experiment host has a single core
	cfg.LearningRate = 0.1
	if Parallelism > 0 {
		cfg.Parallelism = Parallelism
	}
	return cfg
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// genderScaled returns a Gender-shaped dataset with a reduced feature space
// (the full 330K features stay available through featScale=1).
func genderScaled(rows, features int, seed int64) *dataset.Dataset {
	return dataset.Generate(dataset.SyntheticConfig{
		NumRows:     rows,
		NumFeatures: features,
		AvgNNZ:      107,
		NoiseStd:    0.3,
		Zipf:        1.4,
		Seed:        seed,
	})
}

// section prints an underlined heading.
func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n", title)
	for range title {
		fmt.Fprint(w, "-")
	}
	fmt.Fprintln(w)
}
