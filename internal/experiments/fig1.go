package experiments

import (
	"fmt"
	"io"
	"time"

	"dimboost/internal/baselines"
	"dimboost/internal/dataset"
)

// Fig1Row is one x-axis point of Figure 1.
type Fig1Row struct {
	Features int
	XGBoost  time.Duration
	DimBoost time.Duration
}

// Fig1 reproduces Figure 1: run time versus feature count for XGBoost and
// DimBoost on Gender-shaped data. XGBoost's dense histogram construction
// and full-histogram tree reduce make its cost grow with M; DimBoost's
// sparsity-aware build is O(z·N + M) and its communication is compressed
// and sharded, so its curve stays nearly flat.
func Fig1(w io.Writer, scale Scale) ([]Fig1Row, error) {
	rows := scale.rows(3_000)
	cfg := expConfig()
	cfg.NumTrees = 2
	cfg.MaxDepth = 4

	section(w, fmt.Sprintf("Figure 1 — run time vs #features (Gender-like, %d rows, w=4, modeled 1 GbE)", rows))
	fmt.Fprintf(w, "%10s %14s %14s %9s\n", "#features", "XGBoost", "DimBoost", "ratio")
	var out []Fig1Row
	for _, m := range []int{5_000, 10_000, 20_000, 40_000} {
		d := dataset.Generate(dataset.SyntheticConfig{
			NumRows: rows, NumFeatures: m, AvgNNZ: 107, NoiseStd: 0.3, Zipf: 1.4, Seed: int64(m),
		})
		_, xgb, err := baselines.Train(d, baselines.Options{Core: cfg, System: baselines.XGBoostStyle, Workers: 4})
		if err != nil {
			return nil, err
		}
		_, dim, err := baselines.Train(d, baselines.Options{Core: cfg, System: baselines.DimBoostStyle, Workers: 4})
		if err != nil {
			return nil, err
		}
		row := Fig1Row{Features: m, XGBoost: xgb.ModeledTotalTime, DimBoost: dim.ModeledTotalTime}
		out = append(out, row)
		fmt.Fprintf(w, "%10d %14s %14s %8.1fx\n", m, fmtDur(row.XGBoost), fmtDur(row.DimBoost),
			float64(row.XGBoost)/float64(row.DimBoost))
	}
	fmt.Fprintln(w, "paper shape: XGBoost's curve rises steeply with dimensionality; DimBoost's stays flat.")
	return out, nil
}
