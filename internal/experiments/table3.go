package experiments

import (
	"fmt"
	"io"
	"time"

	"dimboost/internal/cluster"
	"dimboost/internal/core"
	"dimboost/internal/histogram"
	"dimboost/internal/loss"
	"dimboost/internal/sketch"
	"dimboost/internal/tree"
)

// Table3Result mirrors the paper's optimization-ablation table (§7.2).
type Table3Result struct {
	// Building the root-node histogram.
	RootDense          time.Duration
	RootSparse         time.Duration
	RootSparseParallel time.Duration
	// Quantized pipeline: one-time per-tree binning cost, and the root
	// build over bin ids.
	BinnedQuantize time.Duration
	RootBinned     time.Duration
	// Building every histogram of the last layer.
	LastLayerNoIndex time.Duration
	LastLayerIndexed time.Duration
	// Building one full tree over the distributed runtime, optimizations
	// consolidated cumulatively.
	TreeBase       time.Duration // no scheduler, no two-phase, float32
	TreeScheduler  time.Duration // + round-robin scheduler
	TreeTwoPhase   time.Duration // + two-phase split finding
	TreeCompressed time.Duration // + 8-bit histograms
	ErrFullPrec    float64       // test error, float32 histograms
	ErrCompressed  float64       // test error, 8-bit histograms
}

// Table3 reproduces Table 3: the effect of each proposed optimization,
// consolidated gradually. The dataset is Gender-shaped with the feature
// space scaled to 33K so the dense baseline finishes (the paper's 330K×122M
// dense build took 52272 s on 50 machines; the dense/sparse *ratio* is the
// reproduction target — it grows with M/z).
func Table3(w io.Writer, scale Scale) (*Table3Result, error) {
	rows := scale.rows(20_000)
	if rows < 8_000 {
		// below this the O(M) per-histogram floor drowns the per-row work
		// the micro-benchmarks measure
		rows = 8_000
	}
	const features = 33_000
	d := genderScaled(rows, features, 31)
	res := &Table3Result{}

	// --- Histogram construction micro-benchmarks -----------------------
	set := sketch.NewSet(features, 0.04)
	set.AddDataset(d)
	cands := set.Candidates(12)
	layout, err := histogram.NewLayout(histogram.AllFeatures(features), cands, features)
	if err != nil {
		return nil, err
	}
	grad := make([]float64, rows)
	hess := make([]float64, rows)
	for i := range grad {
		grad[i] = float64(i%5) - 2
		hess[i] = 0.25
	}
	all := make([]int32, rows)
	for i := range all {
		all[i] = int32(i)
	}

	timeIt := func(f func()) time.Duration {
		start := time.Now()
		f()
		return time.Since(start)
	}
	res.RootDense = timeIt(func() {
		h := histogram.New(layout)
		histogram.BuildDense(h, d, all, grad, hess)
	})
	res.RootSparse = timeIt(func() {
		h := histogram.New(layout)
		histogram.BuildSparse(h, d, all, grad, hess)
	})
	res.RootSparseParallel = timeIt(func() {
		h := histogram.New(layout)
		histogram.Build(h, d, all, grad, hess, histogram.BuildOptions{Parallelism: 4, BatchSize: 4096})
	})
	var binned *histogram.Binned
	res.BinnedQuantize = timeIt(func() {
		binned = histogram.NewBinned(d, layout, 4)
	})
	res.RootBinned = timeIt(func() {
		h := histogram.New(layout)
		histogram.BuildSparseBinned(h, binned, all, grad, hess)
	})

	// --- Last layer: node-to-instance index vs full scans ---------------
	// Train one real tree, then rebuild its last layer's histograms two
	// ways: reading each node's contiguous index range, or — without the
	// index — scanning the whole dataset per node and routing every
	// instance through the tree to test membership (what a system must do
	// when it does not maintain node-to-instance positions).
	treeCfg := expConfig()
	treeCfg.NumTrees = 1
	treeCfg.MaxDepth = 6
	oneTree, err := core.Train(d, treeCfg)
	if err != nil {
		return nil, err
	}
	tn := oneTree.Trees[0]
	idx := tree.NewIndex(rows, tree.MaxNodes(treeCfg.MaxDepth))
	var splitByTree func(node int)
	splitByTree = func(node int) {
		nd := tn.Nodes[node]
		if !nd.Used || nd.Leaf {
			return
		}
		f, v := int(nd.Feature), nd.Value
		idx.Split(node, func(r int32) bool { return float64(d.Row(int(r)).Feature(f)) <= v })
		splitByTree(tree.Left(node))
		splitByTree(tree.Right(node))
	}
	splitByTree(0)

	lastLo, lastHi := tree.LayerRange(treeCfg.MaxDepth - 1)
	var lastNodes []int
	for node := lastLo; node < lastHi; node++ {
		if tn.Nodes[node].Used && idx.Count(node) > 0 {
			lastNodes = append(lastNodes, node)
		}
	}
	reuse := histogram.New(layout)
	res.LastLayerIndexed = timeIt(func() {
		for _, node := range lastNodes {
			reuse.Reset()
			histogram.BuildSparse(reuse, d, idx.Rows(node), grad, hess)
		}
	})
	rowsBuf := make([]int32, 0, rows)
	res.LastLayerNoIndex = timeIt(func() {
		for _, node := range lastNodes {
			rowsBuf = rowsBuf[:0]
			for r := 0; r < rows; r++ {
				if tn.PredictNode(d.Row(r)) == node {
					rowsBuf = append(rowsBuf, int32(r))
				}
			}
			reuse.Reset()
			histogram.BuildSparse(reuse, d, rowsBuf, grad, hess)
		}
	})

	// --- Whole-tree distributed ablation --------------------------------
	treeData := genderScaled(scale.rows(6_000), features, 33)
	train, test := treeData.Split(0.9)
	base := cluster.DefaultConfig(4, 4)
	base.Config = expConfig()
	base.NumTrees = 3
	base.Bits = 0
	base.DisableScheduler = true
	base.DisableTwoPhase = true
	base.SerializeCompute = true

	perTree := func(cfg cluster.Config) (time.Duration, float64, error) {
		r, err := cluster.Train(train, cfg)
		if err != nil {
			return 0, 0, err
		}
		modeled := r.Stats.Compute.Total() + r.Stats.ModeledCommTime
		preds := r.Model.PredictBatch(test)
		errRate := loss.ErrorRate(test.Labels, preds)
		return modeled / time.Duration(cfg.NumTrees), errRate, nil
	}

	var err2 error
	if res.TreeBase, res.ErrFullPrec, err2 = perTree(base); err2 != nil {
		return nil, err2
	}
	cfg := base
	cfg.DisableScheduler = false
	if res.TreeScheduler, _, err2 = perTree(cfg); err2 != nil {
		return nil, err2
	}
	cfg.DisableTwoPhase = false
	if res.TreeTwoPhase, _, err2 = perTree(cfg); err2 != nil {
		return nil, err2
	}
	cfg.Bits = 8
	if res.TreeCompressed, res.ErrCompressed, err2 = perTree(cfg); err2 != nil {
		return nil, err2
	}

	section(w, fmt.Sprintf("Table 3 — effect of proposed optimizations (Gender-like %d×%d)", rows, features))
	fmt.Fprintf(w, "%-58s %12s\n", "configuration", "time")
	fmt.Fprintf(w, "%-58s %12s\n", "build root node: dense (traditional)", fmtDur(res.RootDense))
	fmt.Fprintf(w, "%-58s %12s   (%0.0fx)\n", "build root node: + sparsity-aware", fmtDur(res.RootSparse),
		float64(res.RootDense)/float64(res.RootSparse))
	fmt.Fprintf(w, "%-58s %12s\n", "build root node: + parallel batches (1-core machine)", fmtDur(res.RootSparseParallel))
	fmt.Fprintf(w, "%-58s %12s   (amortized over all nodes of a tree)\n", "quantize dataset to bin ids (once per tree)", fmtDur(res.BinnedQuantize))
	fmt.Fprintf(w, "%-58s %12s   (%0.1fx vs sparse float)\n", "build root node: + quantized bin ids", fmtDur(res.RootBinned),
		float64(res.RootSparse)/float64(res.RootBinned))
	fmt.Fprintf(w, "%-58s %12s\n", "build last layer: without node-to-instance index", fmtDur(res.LastLayerNoIndex))
	fmt.Fprintf(w, "%-58s %12s   (%0.2fx)\n", "build last layer: + node-to-instance index", fmtDur(res.LastLayerIndexed),
		float64(res.LastLayerNoIndex)/float64(res.LastLayerIndexed))
	fmt.Fprintf(w, "%-58s %12s\n", "build a tree (w=4,p=4): sparse only", fmtDur(res.TreeBase))
	fmt.Fprintf(w, "%-58s %12s\n", "build a tree: + task scheduler", fmtDur(res.TreeScheduler))
	fmt.Fprintf(w, "%-58s %12s\n", "build a tree: + two-phase split", fmtDur(res.TreeTwoPhase))
	fmt.Fprintf(w, "%-58s %12s   (%0.2fx vs sparse only)\n", "build a tree: + low-precision (8-bit) histograms",
		fmtDur(res.TreeCompressed), float64(res.TreeBase)/float64(res.TreeCompressed))
	fmt.Fprintf(w, "test error: full precision %.4f, 8-bit %.4f (paper: 0.2509 vs 0.2514)\n",
		res.ErrFullPrec, res.ErrCompressed)
	return res, nil
}
