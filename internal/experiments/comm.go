package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"dimboost/internal/cluster"
	"dimboost/internal/core"
	"dimboost/internal/ps"
)

// CommMinRatio is the byte-reduction floor the fully compressed wire must
// clear against the raw float32 encoding on the histogram ops. §6.1 promises
// roughly 4× from 8-bit fixed point alone; sparse payloads must not give that
// back on a high-dimensional workload.
const CommMinRatio = 4.0

// CommQualitySlack bounds how far any compressed level's validation error may
// stray from the raw-wire run on the held-out split ("equal model quality").
// The effective bound adds two binomial standard deviations of the test-set
// error estimate, so small -scale smoke runs don't fail on counting noise.
const CommQualitySlack = 0.05

// CommLevel is one wire-encoding setting's measured distributed run.
type CommLevel struct {
	Name     string
	Bits     uint // push width (0 = raw float32)
	PullBits uint // pull width (0 = raw floats)
	Sparse   bool

	// HistBytes sums the handler payload bytes of the histogram-carrying
	// ops (push_hist/in, pull_split/out, pull_hist_shard/out,
	// pull_split_results/out) — the traffic the encoding choice governs.
	HistBytes int64
	// EncodingBytes breaks the run's encoded vector bytes down by wire
	// encoding (float32 / fixed / float64 / sparse), encode direction.
	EncodingBytes map[string]int64
	// TotalBytes is the meter's whole-cluster byte count, control plane
	// included.
	TotalBytes int64
	// RatioVsRaw is rawHistBytes / HistBytes.
	RatioVsRaw float64
	// ValError is the held-out error rate of the trained model.
	ValError    float64
	ModeledComm time.Duration
	Wall        time.Duration
}

// CommResult reports the communication-efficiency comparison: the same
// high-dimensional workload trained distributed under raw, fixed-point, and
// fixed-point+sparse wire encodings, with logical bytes-on-wire attributed to
// each and model quality checked against the raw run.
type CommResult struct {
	Rows     int
	Features int
	Workers  int
	Servers  int
	// RefError is the single-machine trainer's held-out error rate.
	RefError float64
	// ExactVerified records that the exact+sparse wire reproduced the
	// single-machine splits bit-for-bit before any lossy level ran.
	ExactVerified bool
	Levels        []CommLevel
}

// histOps are the "op/direction" keys of ps.WireBytes whose payloads carry
// histogram or split-statistic vectors — the bytes wire compression targets.
var histOps = []string{
	"push_hist/in",
	"pull_split/out",
	"pull_hist_shard/out",
	"pull_split_results/out",
}

// sameSplits demands that two models agree on every split decision to the
// bit — structure, features, cut values — and on leaf weights to 1e-9
// (invariant 6: node totals fold server-side in shard order, so weight ulps
// differ between the distributed and local pipelines even on an exact wire).
func sameSplits(a, b *core.Model) error {
	if len(a.Trees) != len(b.Trees) {
		return fmt.Errorf("%d trees != %d", len(b.Trees), len(a.Trees))
	}
	for ti := range a.Trees {
		an, bn := a.Trees[ti].Nodes, b.Trees[ti].Nodes
		if len(an) != len(bn) {
			return fmt.Errorf("tree %d: %d nodes != %d", ti, len(bn), len(an))
		}
		for ni := range an {
			x, y := an[ni], bn[ni]
			if x.Used != y.Used || x.Leaf != y.Leaf || x.Feature != y.Feature ||
				math.Float64bits(x.Value) != math.Float64bits(y.Value) ||
				math.Abs(x.Weight-y.Weight) > 1e-9 {
				return fmt.Errorf("tree %d node %d: %+v vs %+v", ti, ni, x, y)
			}
		}
	}
	return nil
}

// Comm measures the wire-compression ladder of §6 end to end: the same
// Gender-shaped high-dimensional workload trains distributed (w workers, p
// servers) under three encodings — raw float32, 8-bit fixed point both
// directions, and 8-bit fixed point with sparse payloads — while the PS
// byte counters attribute logical bytes-on-wire to each histogram op and
// encoding. Before the ladder runs, an exact+sparse run must reproduce the
// single-machine splits bit-for-bit (the differential gate); afterwards the
// fully compressed level must beat raw by CommMinRatio on histogram bytes
// while staying within CommQualitySlack of the raw run's validation error.
func Comm(w io.Writer, scale Scale) (*CommResult, error) {
	rows := scale.rows(3000)
	const features = 4000
	d := genderScaled(rows, features, 71)
	train, test := d.Split(0.85)

	ccfg := expConfig()
	// A finer candidate grid widens the dense histograms without touching
	// the nonzero buckets sparse spans carry — the regime §6.1 targets.
	ccfg.NumCandidates = 20

	res := &CommResult{Rows: d.NumRows(), Features: features, Workers: 3, Servers: 2}

	ref, err := core.Train(train, ccfg)
	if err != nil {
		return nil, err
	}
	_, res.RefError = ref.Evaluate(test)

	// Differential gate: the lossless wire (float64 vectors, sparse
	// payloads) must reproduce the single-machine split decisions exactly.
	exactCfg := cluster.Config{Config: ccfg, NumWorkers: 1, NumServers: res.Servers,
		ExactWire: true, SparseWire: true}
	exact, err := cluster.Train(train, exactCfg)
	if err != nil {
		return nil, fmt.Errorf("comm: exact wire: %w", err)
	}
	if err := sameSplits(ref, exact.Model); err != nil {
		return nil, fmt.Errorf("comm: exact sparse wire diverged from the single-machine trainer: %w", err)
	}
	res.ExactVerified = true

	settings := []struct {
		name           string
		bits, pullBits uint
		sparse         bool
	}{
		{"raw", 0, 0, false},
		{"fixed8", 8, 8, false},
		{"fixed8+sparse", 8, 8, true},
	}
	for _, set := range settings {
		cfg := cluster.Config{Config: ccfg, NumWorkers: res.Workers, NumServers: res.Servers,
			Bits: set.bits, PullBits: set.pullBits, SparseWire: set.sparse}
		opsBefore, encBefore := ps.WireBytes()
		start := time.Now()
		r, err := cluster.Train(train, cfg)
		wall := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("comm: %s: %w", set.name, err)
		}
		opsAfter, encAfter := ps.WireBytes()

		l := CommLevel{Name: set.name, Bits: set.bits, PullBits: set.pullBits, Sparse: set.sparse,
			Wall: wall, TotalBytes: r.Stats.TotalBytes, ModeledComm: r.Stats.ModeledCommTime}
		for _, k := range histOps {
			l.HistBytes += opsAfter[k] - opsBefore[k]
		}
		l.EncodingBytes = map[string]int64{}
		for k, v := range encAfter {
			if dv := v - encBefore[k]; dv > 0 {
				l.EncodingBytes[k] = dv
			}
		}
		_, l.ValError = r.Model.Evaluate(test)
		res.Levels = append(res.Levels, l)
	}

	raw := &res.Levels[0]
	raw.RatioVsRaw = 1
	noise := 2 * math.Sqrt(raw.ValError*(1-raw.ValError)/float64(test.NumRows()))
	slack := CommQualitySlack + noise
	for i := 1; i < len(res.Levels); i++ {
		l := &res.Levels[i]
		if l.HistBytes <= 0 {
			return nil, fmt.Errorf("comm: %s moved no histogram bytes", l.Name)
		}
		l.RatioVsRaw = float64(raw.HistBytes) / float64(l.HistBytes)
		if delta := math.Abs(l.ValError - raw.ValError); delta > slack {
			return nil, fmt.Errorf("comm: %s validation error %.4f strays %.4f from raw %.4f (slack %.3f)",
				l.Name, l.ValError, delta, raw.ValError, slack)
		}
	}
	full := res.Levels[len(res.Levels)-1]
	if full.RatioVsRaw < CommMinRatio {
		return nil, fmt.Errorf("comm: %s reduced histogram bytes only %.2fx vs raw (%d vs %d), need >= %.0fx",
			full.Name, full.RatioVsRaw, full.HistBytes, raw.HistBytes, CommMinRatio)
	}

	section(w, fmt.Sprintf("Communication efficiency — %d×%d, %d workers, %d servers, %d trees",
		res.Rows, res.Features, res.Workers, res.Servers, ccfg.NumTrees))
	fmt.Fprintf(w, "%-14s %12s %9s %12s %10s %9s %8s\n",
		"encoding", "hist bytes", "vs raw", "total bytes", "modeled", "val err", "wall")
	for _, l := range res.Levels {
		fmt.Fprintf(w, "%-14s %12d %8.2fx %12d %10s %9.4f %8s\n",
			l.Name, l.HistBytes, l.RatioVsRaw, l.TotalBytes,
			fmtDur(l.ModeledComm), l.ValError, fmtDur(l.Wall))
	}
	fmt.Fprintf(w, "single-machine reference val err %.4f; exact sparse wire verified bit-identical splits.\n",
		res.RefError)
	fmt.Fprintf(w, "byte reduction %.2fx (fixed8+sparse vs raw) on histogram ops.\n", full.RatioVsRaw)
	return res, nil
}
