package experiments

import (
	"fmt"
	"io"
	"time"

	"dimboost/internal/cluster"
	"dimboost/internal/dataset"
)

// Fig13Row is one (dataset, workers) scalability measurement with the run
// time decomposed into loading, computation, and communication — the
// breakdown of Appendix A.2.
type Fig13Row struct {
	Dataset string
	Workers int
	Load    time.Duration
	Compute time.Duration
	Comm    time.Duration
}

// Fig13 reproduces Figure 13 (Appendix A.2): DimBoost's scalability with
// worker count on RCV1-shaped (w ∈ {1,2,5}; w=1 needs no communication in
// the paper, here the co-located server round-trip remains but moves no
// network bytes) and Synthesis-shaped data (w ∈ {10,20,50}).
func Fig13(w io.Writer, scale Scale) ([]Fig13Row, error) {
	cfg := expConfig()
	cfg.NumTrees = 3
	cfg.MaxDepth = 4

	type ds struct {
		name    string
		gen     dataset.SyntheticConfig
		workers []int
	}
	// Row counts are chosen so each worker's data work (N·z/w) dominates
	// the per-node O(M) histogram floor — the regime where the paper's
	// near-linear compute scaling is visible.
	sets := []ds{
		{
			name:    "RCV1",
			gen:     dataset.SyntheticConfig{NumRows: scale.rows(60_000), NumFeatures: 47_000, AvgNNZ: 76, NoiseStd: 0.3, Zipf: 1.4, Seed: 131},
			workers: []int{1, 2, 5},
		},
		{
			// The paper scales Synthesis across 10/20/50 workers with 1M
			// rows per worker; at laptop row counts the per-node O(M)
			// histogram floor dominates beyond ~20 workers, so the sweep
			// stops there.
			name:    "Synthesis",
			gen:     dataset.SyntheticConfig{NumRows: scale.rows(100_000), NumFeatures: 100_000, AvgNNZ: 100, NoiseStd: 0.3, Zipf: 1.4, Seed: 132},
			workers: []int{5, 10, 20},
		},
	}

	var out []Fig13Row
	for _, s := range sets {
		d := dataset.Generate(s.gen)
		section(w, fmt.Sprintf("Figure 13 (%s-like, %d×%d) — scalability and time breakdown",
			s.name, d.NumRows(), d.NumFeatures))
		fmt.Fprintf(w, "%8s %12s %12s %12s %12s\n", "workers", "load", "compute", "comm", "total")
		for _, workers := range s.workers {
			ccfg := cluster.DefaultConfig(workers, workers)
			ccfg.Config = cfg
			ccfg.SerializeCompute = true
			res, err := cluster.Train(d, ccfg)
			if err != nil {
				return nil, fmt.Errorf("%s w=%d: %w", s.name, workers, err)
			}
			row := Fig13Row{
				Dataset: s.name,
				Workers: workers,
				Load:    res.Stats.LoadTime,
				Compute: res.Stats.Compute.Local(),
				Comm:    res.Stats.ModeledCommTime + res.Stats.Compute.FindSplit,
			}
			out = append(out, row)
			fmt.Fprintf(w, "%8d %12s %12s %12s %12s\n", workers,
				fmtDur(row.Load), fmtDur(row.Compute), fmtDur(row.Comm), fmtDur(row.Load+row.Compute+row.Comm))
		}
	}
	fmt.Fprintln(w, "\npaper shape: per-worker compute shrinks with w (sublinear — split finding does")
	fmt.Fprintln(w, "not scale with rows); communication grows only mildly thanks to the PS sharding.")
	return out, nil
}
