package experiments

import (
	"fmt"
	"io"
	"time"

	"dimboost/internal/baselines"
	"dimboost/internal/dataset"
	"dimboost/internal/loss"
)

// Fig14Row is one system's result on the low-dimensional dataset.
type Fig14Row struct {
	System      baselines.System
	ModeledTime time.Duration
	TestError   float64
}

// Fig14 reproduces Figure 14 (Appendix A.3): the comparison on a
// low-dimensional dataset (Synthesis-2: 1000 features). Histograms are
// small, so communication matters less and DimBoost's advantage comes from
// the parallel training paradigm rather than aggregation.
func Fig14(w io.Writer, scale Scale) ([]Fig14Row, error) {
	d := dataset.Generate(dataset.SyntheticConfig{
		NumRows: scale.rows(20_000), NumFeatures: 1000, AvgNNZ: 200, NoiseStd: 0.3, Zipf: 0.8, Seed: 141,
	})
	train, test := d.Split(0.9)

	cfg := expConfig()
	cfg.NumTrees = 4
	cfg.MaxDepth = 5

	section(w, fmt.Sprintf("Figure 14 — low-dimensional dataset (Synthesis-2-like, %d×%d, w=5)",
		train.NumRows(), train.NumFeatures))
	fmt.Fprintf(w, "%-14s %14s %10s\n", "system", "modeled time", "test-err")
	var out []Fig14Row
	for _, sys := range baselines.Systems {
		model, stats, err := baselines.Train(train, baselines.Options{Core: cfg, System: sys, Workers: 5})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sys, err)
		}
		preds := model.PredictBatch(test)
		row := Fig14Row{System: sys, ModeledTime: stats.ModeledTotalTime, TestError: loss.ErrorRate(test.Labels, preds)}
		out = append(out, row)
		fmt.Fprintf(w, "%-14s %14s %10.4f\n", sys, fmtDur(row.ModeledTime), row.TestError)
	}
	fmt.Fprintln(w, "paper shape: DimBoost still fastest (7.8x vs XGBoost, 4.5x vs TencentBoost in the paper).")
	return out, nil
}
