package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"dimboost/internal/core"
)

// TrainParallelLevel is one parallelism setting's measured run: total wall
// time plus the per-phase breakdown accumulated by the trainer.
type TrainParallelLevel struct {
	Parallelism int
	Total       time.Duration
	Phases      core.PhaseTimes
}

// TrainParallelResult reports single-machine training of the same dataset
// at increasing pool sizes. Models are verified bit-identical across all
// levels before timings are reported — the speedup column measures the
// chunked pool, never a different model.
type TrainParallelResult struct {
	Rows       int
	Features   int
	Trees      int
	GOMAXPROCS int
	Levels     []TrainParallelLevel
}

// TrainParallel times the training loop through the shared chunked worker
// pool at Parallelism 1/2/4/8 on a Gender-shaped sparse dataset. Because the
// chunk grid and reduction order are fixed (DESIGN.md §11), every level must
// produce the bit-identical model; the run fails loudly if any threshold or
// leaf weight differs. Wall-clock speedup is bounded by GOMAXPROCS — on a
// single-core host all levels time alike and only the determinism claim is
// exercised.
func TrainParallel(w io.Writer, scale Scale) (*TrainParallelResult, error) {
	rows := scale.rows(12_000)
	const features = 10_000
	d := genderScaled(rows, features, 53)

	cfg := expConfig()
	cfg.NumTrees = 5
	cfg.MaxDepth = 5

	res := &TrainParallelResult{
		Rows: d.NumRows(), Features: features, Trees: cfg.NumTrees,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	var ref *core.Model
	for _, p := range []int{1, 2, 4, 8} {
		c := cfg
		c.Parallelism = p
		tr, err := core.NewTrainer(d, c)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		m, err := tr.Train()
		if err != nil {
			return nil, err
		}
		total := time.Since(start)
		if ref == nil {
			ref = m
		} else if err := sameModelBits(ref, m); err != nil {
			return nil, fmt.Errorf("train-parallel: parallelism=%d model diverged: %w", p, err)
		}
		res.Levels = append(res.Levels, TrainParallelLevel{Parallelism: p, Total: total, Phases: tr.Times})
	}

	section(w, fmt.Sprintf("Training parallelism — chunked pool, bit-identical models (%d×%d, %d trees, GOMAXPROCS=%d)",
		res.Rows, res.Features, res.Trees, res.GOMAXPROCS))
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s %10s %10s %8s\n",
		"parallelism", "total", "grad", "sketch", "build", "find", "split", "speedup")
	base := res.Levels[0].Total
	for _, l := range res.Levels {
		fmt.Fprintf(w, "%-12d %10s %10s %10s %10s %10s %10s %7.2fx\n",
			l.Parallelism, fmtDur(l.Total),
			fmtDur(l.Phases.Gradients), fmtDur(l.Phases.Sketch), fmtDur(l.Phases.BuildHist),
			fmtDur(l.Phases.FindSplit), fmtDur(l.Phases.SplitTree),
			float64(base)/float64(l.Total))
	}
	fmt.Fprintln(w, "models verified bit-identical across all parallelism levels.")
	return res, nil
}

// sameModelBits demands Float64bits equality on every node of every tree.
func sameModelBits(a, b *core.Model) error {
	if math.Float64bits(a.BaseScore) != math.Float64bits(b.BaseScore) {
		return fmt.Errorf("base score %v != %v", b.BaseScore, a.BaseScore)
	}
	if len(a.Trees) != len(b.Trees) {
		return fmt.Errorf("%d trees != %d", len(b.Trees), len(a.Trees))
	}
	for ti := range a.Trees {
		an, bn := a.Trees[ti].Nodes, b.Trees[ti].Nodes
		if len(an) != len(bn) {
			return fmt.Errorf("tree %d: %d nodes != %d", ti, len(bn), len(an))
		}
		for ni := range an {
			x, y := an[ni], bn[ni]
			if x.Used != y.Used || x.Leaf != y.Leaf || x.Feature != y.Feature ||
				math.Float64bits(x.Value) != math.Float64bits(y.Value) ||
				math.Float64bits(x.Weight) != math.Float64bits(y.Weight) {
				return fmt.Errorf("tree %d node %d: %+v != %+v", ti, ni, y, x)
			}
		}
	}
	return nil
}
