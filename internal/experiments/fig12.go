package experiments

import (
	"fmt"
	"io"
	"time"

	"dimboost/internal/baselines"
	"dimboost/internal/core"
	"dimboost/internal/dataset"
	"dimboost/internal/loss"
)

// Fig12Row is one system's end-to-end result on one dataset.
type Fig12Row struct {
	System      baselines.System
	ModeledTime time.Duration
	TestError   float64
	// Convergence traces train loss against elapsed time.
	Convergence []core.TreeEvent
	Skipped     string // non-empty when the system is excluded, with reason
}

// Fig12Dataset names the three evaluation datasets.
type Fig12Dataset string

// The paper's three end-to-end datasets (Table 2), shape-matched.
const (
	RCV1      Fig12Dataset = "rcv1"
	Synthesis Fig12Dataset = "synthesis"
	Gender    Fig12Dataset = "gender"
)

// Fig12 reproduces Figure 12: end-to-end comparison of the five systems on
// the given dataset (run time bars + convergence curves). RCV1 and
// Synthesis run with w=5 (the paper's Cluster-1); Gender runs with w=10
// (scaled from the paper's 50-worker Cluster-2). Following the paper,
// LightGBM and MLlib are excluded on Gender (LightGBM could not run in the
// paper's production environment; MLlib did not finish) — here MLlib's
// dense all-to-one run at 330K features is prohibitively slow on one
// machine, which is the same phenomenon at our scale.
func Fig12(w io.Writer, which Fig12Dataset, scale Scale) ([]Fig12Row, error) {
	var d *dataset.Dataset
	var workers int
	var systems []baselines.System
	skip := map[baselines.System]string{}

	switch which {
	case RCV1:
		d = dataset.Generate(dataset.SyntheticConfig{
			NumRows: scale.rows(6_000), NumFeatures: 47_000, AvgNNZ: 76, NoiseStd: 0.3, Zipf: 1.4, Seed: 101,
		})
		workers = 5
		systems = baselines.Systems
	case Synthesis:
		d = dataset.Generate(dataset.SyntheticConfig{
			NumRows: scale.rows(6_000), NumFeatures: 100_000, AvgNNZ: 100, NoiseStd: 0.3, Zipf: 1.4, Seed: 102,
		})
		workers = 5
		systems = baselines.Systems
	case Gender:
		d = dataset.Generate(dataset.SyntheticConfig{
			NumRows: scale.rows(2_500), NumFeatures: 330_000, AvgNNZ: 107, NoiseStd: 0.3, Zipf: 1.4, Seed: 103,
		})
		workers = 10
		systems = []baselines.System{baselines.XGBoostStyle, baselines.TencentBoostStyle, baselines.DimBoostStyle}
		skip[baselines.MLlibStyle] = "did not finish in endurable time (paper §7.3.2)"
		skip[baselines.LightGBMStyle] = "unsupported in the production environment (paper §7.3.2)"
	default:
		return nil, fmt.Errorf("experiments: unknown fig12 dataset %q", which)
	}
	train, test := d.Split(0.9)

	cfg := expConfig()
	cfg.NumTrees = 3
	cfg.MaxDepth = 4

	section(w, fmt.Sprintf("Figure 12 (%s) — end-to-end comparison (%d×%d, w=%d, modeled 1 GbE)",
		which, train.NumRows(), train.NumFeatures, workers))
	fmt.Fprintf(w, "%-14s %14s %10s   %s\n", "system", "modeled time", "test-err", "convergence (train loss per tree)")

	var out []Fig12Row
	for _, sys := range baselines.Systems {
		if reason, ok := skip[sys]; ok {
			out = append(out, Fig12Row{System: sys, Skipped: reason})
			fmt.Fprintf(w, "%-14s %14s — %s\n", sys, "skipped", reason)
			continue
		}
		found := false
		for _, s := range systems {
			if s == sys {
				found = true
			}
		}
		if !found {
			continue
		}
		model, stats, err := baselines.Train(train, baselines.Options{Core: cfg, System: sys, Workers: workers})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sys, err)
		}
		preds := model.PredictBatch(test)
		row := Fig12Row{
			System:      sys,
			ModeledTime: stats.ModeledTotalTime,
			TestError:   loss.ErrorRate(test.Labels, preds),
			Convergence: stats.Events,
		}
		out = append(out, row)
		fmt.Fprintf(w, "%-14s %14s %10.4f   ", sys, fmtDur(row.ModeledTime), row.TestError)
		for _, ev := range row.Convergence {
			fmt.Fprintf(w, "%.3f@%s ", ev.TrainLoss, fmtDur(ev.Elapsed))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "paper shape: DimBoost fastest; TencentBoost/LightGBM next; XGBoost slower; MLlib slowest.")
	return out, nil
}
