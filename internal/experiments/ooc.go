package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"dimboost/internal/core"
	"dimboost/internal/dataset"
	"dimboost/internal/ooc"
)

// OOCSlack is the documented allowance between the accounted memory budget
// and the observed process RSS growth of a budgeted run. The budget bounds
// what the out-of-core data path keeps resident (chunk caches, spill
// segments, encode buffers, labels); outside it live the Go runtime, the
// per-row training state (predictions, gradients, hessians — ~24 bytes per
// row), per-tree histograms, and GC lag. The ooc bench fails if RSS growth
// exceeds budget + OOCSlack.
const OOCSlack = 64 * ooc.MiB

// OOCLevel is one budget setting's measured run.
type OOCLevel struct {
	Budget      ooc.Budget
	TrackerPeak int64
	RSSGrowth   int64 // VmRSS delta across the run; -1 where unsupported
	Wall        time.Duration
}

// OOCResult reports budget-constrained out-of-core training against the
// in-memory baseline on the same data. Models are verified bit-identical
// across every budget level and the baseline before timings are reported.
type OOCResult struct {
	Rows         int
	Features     int
	FileBytes    int64
	MinBudget    ooc.Budget
	Levels       []OOCLevel
	InMemoryWall time.Duration
	BitIdentical bool
}

// OOC trains the same Gender-shaped dataset from disk under three memory
// budgets — scaled off the probed minimum working set so every level is
// admissible at any -scale — then in-memory as the baseline. The run fails
// if the accounted peak ever exceeds its budget, if RSS growth exceeds
// budget + OOCSlack, or if any model differs from the baseline by a single
// bit. Budgeted levels run before the baseline so their RSS deltas are not
// hidden under a previously grown heap.
func OOC(w io.Writer, scale Scale) (*OOCResult, error) {
	rows := scale.rows(40_000)
	const features = 10_000
	d := genderScaled(rows, features, 61)

	dir, err := os.MkdirTemp("", "dimboost-ooc-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "train.bin")
	if err := dataset.WriteBinaryFile(path, d); err != nil {
		return nil, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}

	cfg := expConfig()
	cfg.NumTrees = 5
	cfg.MaxDepth = 5

	// ChunkRows below the default keeps the per-chunk working set — and with
	// it the minimum admissible budget — well under the file size, so the
	// budget levels genuinely constrain the run. The accumulation grids do
	// not depend on the storage chunking, so results stay bit-identical.
	const chunkRows = 1024
	probe, err := ooc.Open(path, ooc.Options{Parallelism: cfg.ResolvedParallelism(), ChunkRows: chunkRows, SpillDir: dir})
	if err != nil {
		return nil, err
	}
	minBudget := probe.MinBudget()
	probe.Close()

	res := &OOCResult{
		Rows: d.NumRows(), Features: features,
		FileBytes: st.Size(), MinBudget: minBudget,
	}
	budgets := []ooc.Budget{
		minBudget + minBudget/4,
		2 * minBudget,
		4 * minBudget,
	}

	var ref *core.Model
	for _, b := range budgets {
		runtime.GC()
		rss0, rssOK := ooc.CurrentRSS()
		src, err := ooc.Open(path, ooc.Options{
			Budget:      b,
			Parallelism: cfg.ResolvedParallelism(),
			ChunkRows:   chunkRows,
			SpillDir:    dir,
		})
		if err != nil {
			return nil, fmt.Errorf("ooc: budget %s: %w", b, err)
		}
		c := cfg
		c.MemoryBudget = b
		tr, err := core.NewTrainerFromSource(src, c)
		if err != nil {
			src.Close()
			return nil, err
		}
		start := time.Now()
		m, err := tr.Train()
		wall := time.Since(start)
		if err != nil {
			src.Close()
			return nil, fmt.Errorf("ooc: budget %s: %w", b, err)
		}
		peak := src.Tracker().Peak()
		src.Close()
		runtime.GC()

		level := OOCLevel{Budget: b, TrackerPeak: peak, RSSGrowth: -1, Wall: wall}
		if rss1, ok := ooc.CurrentRSS(); ok && rssOK {
			level.RSSGrowth = rss1 - rss0
			if level.RSSGrowth < 0 {
				level.RSSGrowth = 0
			}
		}
		if peak > int64(b) {
			return nil, fmt.Errorf("ooc: budget %s: accounted peak %d exceeds the budget", b, peak)
		}
		if level.RSSGrowth > int64(b+OOCSlack) {
			return nil, fmt.Errorf("ooc: budget %s: RSS grew %d bytes, above budget + %s slack", b, level.RSSGrowth, OOCSlack)
		}
		if ref == nil {
			ref = m
		} else if err := sameModelBits(ref, m); err != nil {
			return nil, fmt.Errorf("ooc: budget %s model diverged: %w", b, err)
		}
		res.Levels = append(res.Levels, level)
	}

	// In-memory baseline: same data, same config, unconstrained.
	start := time.Now()
	m, err := core.Train(d, cfg)
	if err != nil {
		return nil, err
	}
	res.InMemoryWall = time.Since(start)
	if err := sameModelBits(ref, m); err != nil {
		return nil, fmt.Errorf("ooc: in-memory baseline diverged: %w", err)
	}
	res.BitIdentical = true

	section(w, fmt.Sprintf("Out-of-core training — %d×%d (%s on disk), %d trees, min budget %s",
		res.Rows, res.Features, ooc.Budget(res.FileBytes), cfg.NumTrees, minBudget))
	fmt.Fprintf(w, "%-14s %14s %14s %10s\n", "budget", "tracker peak", "rss growth", "wall")
	for _, l := range res.Levels {
		rss := "n/a"
		if l.RSSGrowth >= 0 {
			rss = fmt.Sprintf("%d", l.RSSGrowth)
		}
		fmt.Fprintf(w, "%-14s %14d %14s %10s\n", l.Budget, l.TrackerPeak, rss, fmtDur(l.Wall))
	}
	fmt.Fprintf(w, "%-14s %14s %14s %10s\n", "in-memory", "-", "-", fmtDur(res.InMemoryWall))
	fmt.Fprintln(w, "models verified bit-identical across all budgets and the in-memory baseline.")
	return res, nil
}
