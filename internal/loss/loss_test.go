package loss

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if Logistic.String() != "logistic" || Squared.String() != "squared" {
		t.Fatal("Kind.String broken")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind string")
	}
}

func TestParseKind(t *testing.T) {
	k, err := ParseKind("logistic")
	if err != nil || k != Logistic {
		t.Fatal("parse logistic")
	}
	k, err = ParseKind("squared")
	if err != nil || k != Squared {
		t.Fatal("parse squared")
	}
	if _, err := ParseKind("hinge"); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestNewPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Kind(42))
}

func TestSigmoid(t *testing.T) {
	cases := map[float64]float64{
		0:    0.5,
		100:  1,
		-100: 0,
	}
	for x, want := range cases {
		if got := Sigmoid(x); math.Abs(got-want) > 1e-9 {
			t.Errorf("Sigmoid(%v) = %v, want %v", x, got, want)
		}
	}
	// symmetry: sigmoid(-x) = 1 - sigmoid(x)
	for _, x := range []float64{0.1, 1, 5, 37} {
		if d := Sigmoid(-x) + Sigmoid(x) - 1; math.Abs(d) > 1e-12 {
			t.Errorf("sigmoid symmetry violated at %v: %v", x, d)
		}
	}
}

func TestLogisticLossValues(t *testing.T) {
	f := New(Logistic)
	// pred=0 => p=0.5 => loss = ln 2 for either label
	if got := f.Loss(1, 0); math.Abs(got-math.Ln2) > 1e-12 {
		t.Errorf("loss(1,0) = %v, want ln2", got)
	}
	if got := f.Loss(0, 0); math.Abs(got-math.Ln2) > 1e-12 {
		t.Errorf("loss(0,0) = %v, want ln2", got)
	}
	// confident correct prediction: near-zero loss
	if got := f.Loss(1, 50); got > 1e-10 {
		t.Errorf("loss(1,50) = %v, want ~0", got)
	}
	// confident wrong prediction: ~|pred|
	if got := f.Loss(0, 50); math.Abs(got-50) > 1e-6 {
		t.Errorf("loss(0,50) = %v, want ~50", got)
	}
	// numerically stable at extremes
	for _, p := range []float64{-1000, 1000} {
		for _, y := range []float64{0, 1} {
			if v := f.Loss(y, p); math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("loss(%v,%v) = %v not finite", y, p, v)
			}
		}
	}
}

func TestLogisticGradientsMatchNumerical(t *testing.T) {
	f := New(Logistic)
	const h = 1e-5
	for _, y := range []float64{0, 1} {
		for _, pred := range []float64{-3, -0.5, 0, 0.7, 2.5} {
			g, hess := f.Gradients(y, pred)
			numG := (f.Loss(y, pred+h) - f.Loss(y, pred-h)) / (2 * h)
			if math.Abs(g-numG) > 1e-6 {
				t.Errorf("y=%v pred=%v: g=%v, numerical %v", y, pred, g, numG)
			}
			numH := (f.Loss(y, pred+h) - 2*f.Loss(y, pred) + f.Loss(y, pred-h)) / (h * h)
			if math.Abs(hess-numH) > 1e-4 {
				t.Errorf("y=%v pred=%v: h=%v, numerical %v", y, pred, hess, numH)
			}
		}
	}
}

func TestLogisticHessianFloor(t *testing.T) {
	f := New(Logistic)
	_, h := f.Gradients(1, 10000)
	if h <= 0 {
		t.Fatalf("hessian %v must stay positive", h)
	}
}

func TestSquaredLoss(t *testing.T) {
	f := New(Squared)
	if got := f.Loss(3, 5); got != 2 {
		t.Errorf("loss(3,5) = %v, want 2", got)
	}
	g, h := f.Gradients(3, 5)
	if g != 2 || h != 1 {
		t.Errorf("gradients = %v,%v, want 2,1", g, h)
	}
	const eps = 1e-6
	numG := (f.Loss(3, 5+eps) - f.Loss(3, 5-eps)) / (2 * eps)
	if math.Abs(numG-g) > 1e-4 {
		t.Errorf("numerical gradient %v vs %v", numG, g)
	}
}

func TestGradientDirectionProperty(t *testing.T) {
	// property: for logistic loss, gradient sign pushes prediction toward
	// the label; hessian is always in (0, 0.25].
	f := New(Logistic)
	check := func(predRaw float64, label bool) bool {
		pred := math.Mod(predRaw, 20)
		if math.IsNaN(pred) {
			return true
		}
		y := 0.0
		if label {
			y = 1.0
		}
		g, h := f.Gradients(y, pred)
		if h <= 0 || h > 0.25+1e-12 {
			return false
		}
		if y == 1 && g > 0 && Sigmoid(pred) <= 1 && g >= 1 {
			return false
		}
		// g = p - y in (-1, 1)
		return g > -1 && g < 1
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMeanLoss(t *testing.T) {
	f := New(Squared)
	got := MeanLoss(f, []float32{1, 2}, []float64{1, 4})
	if got != 1 { // (0 + 2)/2
		t.Fatalf("MeanLoss = %v, want 1", got)
	}
	if MeanLoss(f, nil, nil) != 0 {
		t.Fatal("empty MeanLoss should be 0")
	}
}

func TestErrorRate(t *testing.T) {
	labels := []float32{1, 0, 1, 0}
	preds := []float64{2.0, -1.0, -0.5, 3.0} // correct, correct, wrong, wrong
	if got := ErrorRate(labels, preds); got != 0.5 {
		t.Fatalf("ErrorRate = %v, want 0.5", got)
	}
	if ErrorRate(nil, nil) != 0 {
		t.Fatal("empty ErrorRate should be 0")
	}
}

func TestRMSE(t *testing.T) {
	got := RMSE([]float32{0, 0}, []float64{3, 4})
	want := math.Sqrt(12.5)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMSE = %v, want %v", got, want)
	}
}

func TestAUCPerfectAndInverted(t *testing.T) {
	labels := []float32{0, 0, 1, 1}
	if auc, err := AUC(labels, []float64{0.1, 0.2, 0.8, 0.9}); err != nil || auc != 1 {
		t.Fatalf("perfect AUC = %v, %v", auc, err)
	}
	if auc, _ := AUC(labels, []float64{0.9, 0.8, 0.2, 0.1}); auc != 0 {
		t.Fatalf("inverted AUC = %v, want 0", auc)
	}
}

func TestAUCRandomIsHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 20000
	labels := make([]float32, n)
	preds := make([]float64, n)
	for i := range labels {
		if rng.Float64() < 0.5 {
			labels[i] = 1
		}
		preds[i] = rng.Float64()
	}
	auc, err := AUC(labels, preds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.02 {
		t.Fatalf("random AUC = %v, want ~0.5", auc)
	}
}

func TestAUCTies(t *testing.T) {
	// all predictions identical -> AUC must be exactly 0.5 by midranks
	labels := []float32{0, 1, 0, 1, 1}
	preds := []float64{3, 3, 3, 3, 3}
	auc, err := AUC(labels, preds)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0.5 {
		t.Fatalf("all-ties AUC = %v, want 0.5", auc)
	}
}

func TestAUCErrors(t *testing.T) {
	if _, err := AUC([]float32{1, 1}, []float64{0.1, 0.2}); err == nil {
		t.Fatal("single-class AUC should error")
	}
	if _, err := AUC([]float32{1}, []float64{0.1, 0.2}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestAUCInvarianceToMonotoneTransform(t *testing.T) {
	labels := []float32{0, 1, 0, 1, 0, 1, 1, 0}
	preds := []float64{-2, 0.5, -1, 2, 0.1, 0.4, 3, -0.2}
	a1, err := AUC(labels, preds)
	if err != nil {
		t.Fatal(err)
	}
	trans := make([]float64, len(preds))
	for i, p := range preds {
		trans[i] = Sigmoid(p) // strictly monotone
	}
	a2, err := AUC(labels, trans)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a1-a2) > 1e-12 {
		t.Fatalf("AUC not invariant: %v vs %v", a1, a2)
	}
}
