// Package loss provides the differentiable objectives GBDT trains against —
// logistic loss for binary classification and squared loss for regression —
// together with the evaluation metrics used by the paper (classification
// error, log loss, RMSE, AUC). Losses expose first- and second-order
// gradients (g_i, h_i) as required by the second-order objective of §2.2.
package loss

import (
	"fmt"
	"math"
)

// Kind selects a loss function.
type Kind int

const (
	// Logistic is binary cross-entropy on labels in {0,1}; the model's raw
	// prediction is a logit. g = p - y, h = p(1-p).
	Logistic Kind = iota
	// Squared is ½(y - ŷ)²; g = ŷ - y, h = 1.
	Squared
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Logistic:
		return "logistic"
	case Squared:
		return "squared"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a string ("logistic" or "squared") to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "logistic":
		return Logistic, nil
	case "squared":
		return Squared, nil
	}
	return 0, fmt.Errorf("loss: unknown kind %q", s)
}

// Func computes per-instance losses and gradients. Implementations are
// stateless and safe for concurrent use.
type Func interface {
	// Loss returns l(y, pred) where pred is the raw model output (a logit
	// for classification).
	Loss(y, pred float64) float64
	// Gradients returns the first- and second-order gradients of the loss
	// with respect to pred.
	Gradients(y, pred float64) (g, h float64)
	// Kind reports which loss this is.
	Kind() Kind
}

// New returns the Func for a Kind.
func New(k Kind) Func {
	switch k {
	case Logistic:
		return logisticLoss{}
	case Squared:
		return squaredLoss{}
	default:
		panic(fmt.Sprintf("loss: unknown kind %d", int(k)))
	}
}

type logisticLoss struct{}

func (logisticLoss) Kind() Kind { return Logistic }

// Sigmoid is the standard logistic function, numerically stable for large
// |x|.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

func (logisticLoss) Loss(y, pred float64) float64 {
	// -[y log p + (1-y) log(1-p)] computed stably from the logit:
	// log(1+exp(pred)) - y*pred.
	var lse float64
	if pred > 0 {
		lse = pred + math.Log1p(math.Exp(-pred))
	} else {
		lse = math.Log1p(math.Exp(pred))
	}
	return lse - y*pred
}

func (logisticLoss) Gradients(y, pred float64) (g, h float64) {
	p := Sigmoid(pred)
	g = p - y
	h = p * (1 - p)
	if h < 1e-16 {
		h = 1e-16 // keep the Newton step bounded
	}
	return
}

type squaredLoss struct{}

func (squaredLoss) Kind() Kind { return Squared }

func (squaredLoss) Loss(y, pred float64) float64 {
	d := pred - y
	return 0.5 * d * d
}

func (squaredLoss) Gradients(y, pred float64) (g, h float64) {
	return pred - y, 1
}
