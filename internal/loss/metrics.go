package loss

import (
	"errors"
	"math"
	"sort"
)

// MeanLoss returns the average loss over parallel label/prediction slices.
func MeanLoss(f Func, labels []float32, preds []float64) float64 {
	if len(labels) == 0 {
		return 0
	}
	var sum float64
	for i, y := range labels {
		sum += f.Loss(float64(y), preds[i])
	}
	return sum / float64(len(labels))
}

// ErrorRate returns the binary classification error: predictions are logits,
// classified positive when sigmoid(pred) > 0.5 (i.e. pred > 0). This is the
// paper's "test error" metric (Tables 5, 6).
func ErrorRate(labels []float32, preds []float64) float64 {
	if len(labels) == 0 {
		return 0
	}
	wrong := 0
	for i, y := range labels {
		predicted := float32(0)
		if preds[i] > 0 {
			predicted = 1
		}
		if predicted != y {
			wrong++
		}
	}
	return float64(wrong) / float64(len(labels))
}

// RMSE returns the root mean squared error of raw predictions.
func RMSE(labels []float32, preds []float64) float64 {
	if len(labels) == 0 {
		return 0
	}
	var sum float64
	for i, y := range labels {
		d := preds[i] - float64(y)
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(labels)))
}

// AUC returns the area under the ROC curve for binary labels in {0,1} given
// raw scores (any monotone transform of probability works). Ties are handled
// by the standard midrank method. It returns an error when only one class is
// present.
func AUC(labels []float32, preds []float64) (float64, error) {
	n := len(labels)
	if n != len(preds) {
		return 0, errors.New("loss: labels and predictions differ in length")
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return preds[order[a]] < preds[order[b]] })

	var nPos, nNeg float64
	var rankSum float64 // sum of ranks of positives, with midranks for ties
	i := 0
	for i < n {
		j := i
		for j < n && preds[order[j]] == preds[order[i]] {
			j++
		}
		midRank := float64(i+j+1) / 2 // ranks are 1-based: (i+1 + j) / 2
		for k := i; k < j; k++ {
			if labels[order[k]] == 1 {
				nPos++
				rankSum += midRank
			} else {
				nNeg++
			}
		}
		i = j
	}
	if nPos == 0 || nNeg == 0 {
		return 0, errors.New("loss: AUC undefined with a single class")
	}
	return (rankSum - nPos*(nPos+1)/2) / (nPos * nNeg), nil
}
