package loss

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteAUC counts concordant/discordant pairs directly — O(n²), the
// definition of AUC.
func bruteAUC(labels []float32, preds []float64) (float64, bool) {
	var concordant, ties, pairs float64
	for i := range labels {
		for j := range labels {
			if labels[i] == 1 && labels[j] == 0 {
				pairs++
				switch {
				case preds[i] > preds[j]:
					concordant++
				case preds[i] == preds[j]:
					ties++
				}
			}
		}
	}
	if pairs == 0 {
		return 0, false
	}
	return (concordant + ties/2) / pairs, true
}

func TestAUCMatchesBruteForce(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%40 + 4
		rng := rand.New(rand.NewSource(seed))
		labels := make([]float32, n)
		preds := make([]float64, n)
		pos := 0
		for i := range labels {
			if rng.Float64() < 0.5 {
				labels[i] = 1
				pos++
			}
			// quantized scores so ties actually occur
			preds[i] = float64(rng.Intn(6)) / 2
		}
		if pos == 0 || pos == n {
			return true // AUC undefined; covered elsewhere
		}
		want, ok := bruteAUC(labels, preds)
		if !ok {
			return true
		}
		got, err := AUC(labels, preds)
		if err != nil {
			return false
		}
		return math.Abs(got-want) < 1e-12
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLogLossConvexityInPrediction(t *testing.T) {
	// property: logistic loss is convex in pred — midpoint below average
	f := New(Logistic)
	check := func(aRaw, bRaw float64, label bool) bool {
		a := math.Mod(aRaw, 10)
		b := math.Mod(bRaw, 10)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		y := 0.0
		if label {
			y = 1
		}
		mid := f.Loss(y, (a+b)/2)
		avg := (f.Loss(y, a) + f.Loss(y, b)) / 2
		return mid <= avg+1e-12
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNewtonStepReducesLoss(t *testing.T) {
	// property: one Newton step pred - g/h decreases logistic loss
	f := New(Logistic)
	check := func(predRaw float64, label bool) bool {
		pred := math.Mod(predRaw, 8)
		if math.IsNaN(pred) {
			return true
		}
		y := 0.0
		if label {
			y = 1
		}
		g, h := f.Gradients(y, pred)
		next := pred - g/h
		return f.Loss(y, next) <= f.Loss(y, pred)+1e-9
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(14))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
