package core

import (
	"math"
	"testing"

	"dimboost/internal/dataset"
)

// bitIdentical demands Float64bits equality on every threshold and leaf
// weight — the invariant-15 contract, far stricter than sameStructure.
func bitIdentical(t *testing.T, a, b *Model) bool {
	t.Helper()
	if math.Float64bits(a.BaseScore) != math.Float64bits(b.BaseScore) {
		t.Logf("base score %v vs %v", a.BaseScore, b.BaseScore)
		return false
	}
	if len(a.Trees) != len(b.Trees) {
		t.Logf("tree count %d vs %d", len(a.Trees), len(b.Trees))
		return false
	}
	for ti := range a.Trees {
		if len(a.Trees[ti].Nodes) != len(b.Trees[ti].Nodes) {
			t.Logf("tree %d node count differs", ti)
			return false
		}
		for ni := range a.Trees[ti].Nodes {
			x, y := a.Trees[ti].Nodes[ni], b.Trees[ti].Nodes[ni]
			if x.Used != y.Used || x.Leaf != y.Leaf || x.Feature != y.Feature {
				t.Logf("tree %d node %d structure: %+v vs %+v", ti, ni, x, y)
				return false
			}
			if math.Float64bits(x.Value) != math.Float64bits(y.Value) {
				t.Logf("tree %d node %d threshold bits: %x vs %x (%v vs %v)",
					ti, ni, math.Float64bits(x.Value), math.Float64bits(y.Value), x.Value, y.Value)
				return false
			}
			if math.Float64bits(x.Weight) != math.Float64bits(y.Weight) {
				t.Logf("tree %d node %d weight bits: %x vs %x (%v vs %v)",
					ti, ni, math.Float64bits(x.Weight), math.Float64bits(y.Weight), x.Weight, y.Weight)
				return false
			}
		}
	}
	return true
}

// TestModelIndependentOfParallelism is the hard contract of the shared
// worker pool: for every covered configuration, training at any Parallelism
// produces the bit-identical model — fixed chunk grids plus ordered
// reductions leave no place for the worker count to leak into the floats.
// Run under -race in CI, this also shakes out data races in every phase.
func TestModelIndependentOfParallelism(t *testing.T) {
	// 6000 rows spans two RowChunk row chunks; 150 features spans three
	// PosChunk split-finding ranges; BatchSize 512 gives the root ~12
	// histogram batches. Every fan-out path sees real multi-chunk grids.
	train := dataset.Generate(dataset.SyntheticConfig{NumRows: 6000, NumFeatures: 150, AvgNNZ: 12, Seed: 51, Zipf: 1.2, NoiseStd: 0.2})
	val := dataset.Generate(dataset.SyntheticConfig{NumRows: 1200, NumFeatures: 150, AvgNNZ: 12, Seed: 52, Zipf: 1.2, NoiseStd: 0.2})

	base := smallConfig()
	base.NumTrees = 3
	base.MaxDepth = 4
	base.BatchSize = 512

	warmInit, err := Train(train, base)
	if err != nil {
		t.Fatal(err)
	}

	variants := []struct {
		name   string
		mutate func(*Config)
		setup  func(*Trainer)
	}{
		{"default", func(c *Config) {}, nil},
		{"instance-sampling", func(c *Config) { c.InstanceSampleRatio = 0.6 }, nil},
		{"weighted-candidates", func(c *Config) { c.WeightedCandidates = true }, nil},
		{"no-node-index", func(c *Config) { c.NoNodeIndex = true }, nil},
		{"hist-subtraction", func(c *Config) { c.HistSubtraction = true }, nil},
		{"validation-early-stop", func(c *Config) { c.NumTrees = 6; c.EarlyStoppingRounds = 2 },
			func(tr *Trainer) { tr.Validation = val }},
		{"warm-start", func(c *Config) {},
			func(tr *Trainer) { tr.Init = warmInit }},
	}

	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			trainAt := func(p int) *Model {
				cfg := base
				v.mutate(&cfg)
				cfg.Parallelism = p
				tr, err := NewTrainer(train, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if v.setup != nil {
					v.setup(tr)
				}
				m, err := tr.Train()
				if err != nil {
					t.Fatal(err)
				}
				return m
			}
			ref := trainAt(1)
			for _, p := range []int{2, 3, 4, 8} {
				if got := trainAt(p); !bitIdentical(t, ref, got) {
					t.Fatalf("Parallelism=%d: model differs in bits from Parallelism=1", p)
				}
			}
		})
	}
}
