package core

import (
	"os"
	"path/filepath"
	"testing"

	"dimboost/internal/dataset"
	"dimboost/internal/ooc"
)

// TestOutOfCoreBitIdentical is the acceptance property of the out-of-core
// subsystem: training under a memory budget at least 10× smaller than the
// dataset produces a Float64bits-identical model to unconstrained in-memory
// training, at multiple parallelism levels — and the budget accounting never
// exceeds the configured budget. Run under -race in CI, it also shakes out
// data races in the chunk caches and streaming passes.
func TestOutOfCoreBitIdentical(t *testing.T) {
	// 40k rows × ~20 nnz ≈ 7 MB on disk; the budget below is under 700 KB,
	// so the ratio asserted further down holds with margin. ChunkRows 256
	// keeps the per-chunk working set (and with it MinBudget) small.
	gen := dataset.SyntheticConfig{NumRows: 40000, NumFeatures: 80, AvgNNZ: 20, Seed: 71, Zipf: 1.2, NoiseStd: 0.2}
	train := dataset.Generate(gen)
	path := filepath.Join(t.TempDir(), "train.bin")
	if err := dataset.WriteBinaryFile(path, train); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	const budget = 640 * ooc.KiB
	const chunkRows = 256
	if st.Size() < 10*int64(budget) {
		t.Fatalf("dataset %d bytes is not ≥ 10× the %d-byte budget; grow the dataset", st.Size(), int64(budget))
	}

	base := DefaultConfig()
	base.NumTrees = 3
	base.MaxDepth = 4
	base.NumCandidates = 12
	base.BatchSize = 1024
	base.FeatureSampleRatio = 0.8

	variants := []struct {
		name   string
		mut    func(*Config)
		levels []int
	}{
		{"plain", func(c *Config) {}, []int{1, 2, 4}},
		{"weighted+subtraction", func(c *Config) {
			c.WeightedCandidates = true
			c.HistSubtraction = true
		}, []int{1, 4}},
	}

	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			cfg := base
			v.mut(&cfg)
			cfg.Parallelism = 1
			want, err := Train(train, cfg)
			if err != nil {
				t.Fatalf("in-memory train: %v", err)
			}

			for _, p := range v.levels {
				cfg := base
				v.mut(&cfg)
				cfg.Parallelism = p
				cfg.MemoryBudget = budget
				src, err := ooc.Open(path, ooc.Options{
					Budget:      budget,
					ChunkRows:   chunkRows,
					Parallelism: p,
				})
				if err != nil {
					t.Fatalf("P=%d: %v", p, err)
				}
				tr, err := NewTrainerFromSource(src, cfg)
				if err != nil {
					src.Close()
					t.Fatalf("P=%d: %v", p, err)
				}
				got, err := tr.Train()
				if err != nil {
					src.Close()
					t.Fatalf("P=%d train: %v", p, err)
				}
				if peak := src.Tracker().Peak(); peak > int64(budget) {
					t.Errorf("P=%d: accounted peak %d exceeds budget %d", p, peak, int64(budget))
				}
				src.Close()
				if !bitIdentical(t, want, got) {
					t.Fatalf("P=%d: out-of-core model differs from in-memory model", p)
				}
			}
		})
	}
}

// TestOutOfCoreRejectsResidentOnlyModes pins the constructor contract: the
// ablations that intrinsically require a resident dataset fail fast.
func TestOutOfCoreRejectsResidentOnlyModes(t *testing.T) {
	train := dataset.Generate(dataset.SyntheticConfig{NumRows: 500, NumFeatures: 20, AvgNNZ: 5, Seed: 9})
	path := filepath.Join(t.TempDir(), "train.bin")
	if err := dataset.WriteBinaryFile(path, train); err != nil {
		t.Fatal(err)
	}
	src, err := ooc.Open(path, ooc.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for _, mut := range []func(*Config){
		func(c *Config) { c.InstanceSampleRatio = 0.5 },
		func(c *Config) { c.NoNodeIndex = true },
		func(c *Config) { c.NoBinning = true },
		func(c *Config) { c.DenseBuild = true },
	} {
		cfg := DefaultConfig()
		cfg.NumTrees = 1
		mut(&cfg)
		if _, err := NewTrainerFromSource(src, cfg); err == nil {
			t.Errorf("config %+v: want error, got nil", cfg)
		}
	}
}

// TestTrainOutOfCoreConvenience exercises the one-call API end to end with a
// small budget.
func TestTrainOutOfCoreConvenience(t *testing.T) {
	train := dataset.Generate(dataset.SyntheticConfig{NumRows: 3000, NumFeatures: 30, AvgNNZ: 8, Seed: 10, Zipf: 1.1})
	path := filepath.Join(t.TempDir(), "train.bin")
	if err := dataset.WriteBinaryFile(path, train); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.NumTrees = 2
	cfg.MaxDepth = 3
	cfg.Parallelism = 2
	want, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := TrainOutOfCore(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bitIdentical(t, want, got) {
		t.Fatal("TrainOutOfCore model differs from in-memory model")
	}
}
